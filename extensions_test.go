package probtopk_test

import (
	"math"
	"math/rand"
	"testing"

	"probtopk"
	"probtopk/internal/fixtures"
)

func TestVectorEditDistance(t *testing.T) {
	cases := []struct {
		a, b []string
		want int
	}{
		{[]string{"T1", "T2"}, []string{"T2", "T1"}, 0},
		{[]string{"T1", "T2"}, []string{"T1", "T3"}, 1},
		{[]string{"T1", "T2"}, []string{"T3", "T4"}, 2},
		{[]string{"T1"}, nil, 1},
		{nil, nil, 0},
	}
	for _, c := range cases {
		if got := probtopk.VectorEditDistance(c.a, c.b); got != c.want {
			t.Fatalf("VectorEditDistance(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

// TestTypicalSpreadSoldier: the paper's 3-Typical-Top2 vectors (T2,T6),
// (T7,T6), (T7,T3) have pairwise edit distances 1, 2, 1.
func TestTypicalSpreadSoldier(t *testing.T) {
	lines, err := probtopk.CTypicalTopK(fixtures.Soldier(), 2, 3, probtopk.Exact())
	if err != nil {
		t.Fatal(err)
	}
	mean, max := probtopk.TypicalSpread(lines)
	if max != 2 {
		t.Fatalf("max = %d, want 2", max)
	}
	if math.Abs(mean-4.0/3.0) > 1e-12 {
		t.Fatalf("mean = %v, want 4/3", mean)
	}
	if m, x := probtopk.TypicalSpread(lines[:1]); m != 0 || x != 0 {
		t.Fatal("single vector should have zero spread")
	}
}

func TestExpectedRankTopK(t *testing.T) {
	got, err := probtopk.ExpectedRankTopK(fixtures.Soldier(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("len = %d", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].Rank < got[i-1].Rank {
			t.Fatal("not sorted by expected rank")
		}
	}
	// T5 (certain, expected rank 1.9) must be among the top 3: every other
	// tuple is absent with probability ≥ 0.5, inflating its expected rank.
	found := false
	for _, tp := range got {
		if tp.ID == "T5" {
			found = true
			if math.Abs(tp.Rank-1.9) > 1e-12 {
				t.Fatalf("E[rank T5] = %v, want 1.9", tp.Rank)
			}
		}
	}
	if !found {
		t.Fatalf("T5 missing from expected-rank top-3: %+v", got)
	}
	if _, err := probtopk.ExpectedRankTopK(fixtures.Soldier(), 0); err == nil {
		t.Fatal("k=0 should error")
	}
	if _, err := probtopk.ExpectedRankTopK(nil, 2); err == nil {
		t.Fatal("nil table should error")
	}
}

func TestStreamPublicAPI(t *testing.T) {
	s, err := probtopk.NewStream(7)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := probtopk.NewStream(0); err == nil {
		t.Fatal("capacity 0 should error")
	}
	for _, tp := range fixtures.Soldier().Tuples() {
		if _, err := s.Push(tp); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 7 || s.Capacity() != 7 {
		t.Fatalf("len=%d cap=%d", s.Len(), s.Capacity())
	}
	dist, err := s.TopKDistribution(2, probtopk.Exact())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dist.Mean()-fixtures.SoldierExpectedScore) > 1e-9 {
		t.Fatalf("windowed mean = %v", dist.Mean())
	}
	u, ok := dist.UTopK()
	if !ok || u.Vector[0] != "T2" || u.Vector[1] != "T6" {
		t.Fatalf("windowed U-Topk = %+v", u)
	}
	// Push one more reading for soldier2: T7 (oldest... T1) slides out.
	ev, err := s.Push(probtopk.Tuple{ID: "T8", Score: 10, Prob: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if ev == nil || ev.ID != "T1" {
		t.Fatalf("evicted = %+v, want T1", ev)
	}
	if got := s.Tuples(); got[0].ID != "T7" {
		t.Fatalf("rank-ordered window head = %+v", got[0])
	}
	// Normalize option flows through.
	norm, err := s.TopKDistribution(2, &probtopk.Options{Threshold: -1, MaxLines: -1, Normalize: true})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(norm.TotalMass()-1) > 1e-12 {
		t.Fatalf("normalized mass = %v", norm.TotalMass())
	}
}

// TestStreamMatchesBatchRandom: windowed queries equal batch queries over
// the same contents under default (approximate) options too.
func TestStreamMatchesBatchRandom(t *testing.T) {
	r := rand.New(rand.NewSource(66))
	s, err := probtopk.NewStream(12)
	if err != nil {
		t.Fatal(err)
	}
	var recent []probtopk.Tuple
	for step := 0; step < 40; step++ {
		tp := probtopk.Tuple{ID: "t", Score: r.Float64() * 100, Prob: 0.1 + 0.8*r.Float64()}
		if _, err := s.Push(tp); err != nil {
			t.Fatal(err)
		}
		recent = append(recent, tp)
		if len(recent) > 12 {
			recent = recent[1:]
		}
		if step%7 != 6 {
			continue
		}
		batchTable := probtopk.NewTable()
		for _, bt := range recent {
			batchTable.Add(bt)
		}
		windowed, err := s.TopKDistribution(3, nil)
		if err != nil {
			t.Fatal(err)
		}
		batch, err := probtopk.TopKDistribution(batchTable, 3, nil)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(windowed.Mean()-batch.Mean()) > 1e-9 {
			t.Fatalf("step %d: windowed mean %v vs batch %v", step, windowed.Mean(), batch.Mean())
		}
		if math.Abs(windowed.TotalMass()-batch.TotalMass()) > 1e-9 {
			t.Fatalf("step %d: mass mismatch", step)
		}
	}
}

// TestParallelOptionPublic: Parallelism produces identical results through
// the public API.
func TestParallelOptionPublic(t *testing.T) {
	tab := probtopk.NewTable()
	r := rand.New(rand.NewSource(9))
	for i := 0; i < 60; i++ {
		g := ""
		prob := 0.1 + 0.4*r.Float64()
		if i%2 == 0 {
			g = string(rune('a' + i/6)) // groups of ≤ 3 members
			prob = 0.05 + 0.25*r.Float64()
		}
		tab.Add(probtopk.Tuple{ID: "t", Score: r.Float64() * 100, Prob: prob, Group: g})
	}
	serial, err := probtopk.TopKDistribution(tab, 5, &probtopk.Options{Threshold: -1, MaxLines: -1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := probtopk.TopKDistribution(tab, 5, &probtopk.Options{Threshold: -1, MaxLines: -1, Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	if serial.Len() != par.Len() || math.Abs(serial.Mean()-par.Mean()) > 1e-12 {
		t.Fatalf("parallel differs: %d/%v vs %d/%v", serial.Len(), serial.Mean(), par.Len(), par.Mean())
	}
}
