package probtopk

import (
	"fmt"
	"time"

	"probtopk/internal/core"
	"probtopk/internal/engine"
	"probtopk/internal/uncertain"
)

// DefaultEngineCacheSize is the number of prepared tables a NewEngine engine
// retains (each distinct table occupies at most one slot).
const DefaultEngineCacheSize = engine.DefaultCacheSize

// Engine is a reusable, concurrency-safe query engine for serving repeated
// top-k queries:
//
//   - The prepared (validated, sorted, indexed) form of each queried state
//     is cached keyed by its snapshot identity (Snapshot.ID), so repeated
//     queries over an unchanged table skip preparation entirely; mutating
//     the table mints a fresh snapshot whose new identity transparently
//     invalidates, and — identities being process-unique and never reused —
//     a cached preparation can never be served for different contents,
//     whatever happens to table pointers, versions or clones.
//   - Per-query dynamic-programming scratch is drawn from a process-wide
//     pool, so steady-state queries allocate near-zero. Results are
//     bit-identical to the uncached, freshly allocated path.
//   - Batches of (k, threshold) queries against one table share the
//     preparation, the Theorem-2 prefix sums and the unit decomposition,
//     fanned out over a bounded worker pool.
//
// Every query method comes in two forms: the *Table form takes the table's
// current snapshot and queries that (so the usual Table contract applies to
// the call itself), and the *Snapshot form queries an immutable snapshot
// the caller already holds — those hold no lock and no reference to the
// table, so they can run concurrently with mutations, and every query of a
// multi-step read (distribution, then baselines, then typical sets) sees
// the same frozen state.
//
// The package-level query functions (TopKDistribution, CTypicalTopK, the
// baseline semantics) route through a shared default engine, so plain
// library use gets the caching for free. Construct a dedicated Engine to
// isolate cache capacity or statistics per workload.
//
// An Engine holds references to the snapshots it has prepared (at most
// cacheSize of them, least-recently-used evicted first); call Invalidate to
// release a table's entry eagerly.
type Engine struct {
	e *engine.Engine
}

// NewEngine returns an engine with the default prepared-table cache size.
func NewEngine() *Engine { return NewEngineWithCache(DefaultEngineCacheSize) }

// NewEngineWithCache returns an engine whose cache holds up to cacheSize
// prepared tables. cacheSize <= 0 disables caching — every query prepares
// afresh — which is the configuration to benchmark the uncached path
// against.
func NewEngineWithCache(cacheSize int) *Engine {
	return &Engine{e: engine.New(cacheSize)}
}

// NewEngineSharded returns an engine whose prepared-table cache is split
// into shards independently locked partitions, routed by table identity,
// with the cacheSize budget divided evenly across them. Serving layers
// that shard tables (internal/server with -shards) pass their shard count
// so cache traffic for unrelated tables never contends on one mutex;
// results are identical to an unpartitioned engine. shards < 1 means one
// partition; cacheSize <= 0 disables caching.
func NewEngineSharded(cacheSize, shards int) *Engine {
	return &Engine{e: engine.NewPartitioned(cacheSize, shards)}
}

// defaultEngine backs the package-level query functions.
var defaultEngine = NewEngine()

// Invalidate drops any preparation of t cached by the package's shared
// default engine. The package-level query functions retain (up to the
// default cache size) the most recently queried tables and their prepared
// forms; long-running processes that query many short-lived tables should
// call Invalidate when done with one, or use a dedicated Engine whose
// lifetime they control.
func Invalidate(t *Table) { defaultEngine.Invalidate(t) }

// EngineStats is a snapshot of an engine's prepared-table cache and query
// counters.
type EngineStats struct {
	// Hits and Misses count Prepare calls served from / filled into the
	// cache; Evictions counts entries dropped by the LRU bound.
	Hits, Misses, Evictions uint64
	// Entries is the current number of cached prepared tables.
	Entries int
	// PartitionEntries is the per-partition entry count of a sharded
	// engine's cache (length 1 for an unsharded one, nil with caching
	// disabled).
	PartitionEntries []int
	// Queries counts the main-algorithm distribution computations the
	// engine has run (each member of a batch counts once); QueryTime is
	// their cumulative wall-clock time. A serving layer exports these to
	// track the mean dynamic-programming cost.
	Queries   uint64
	QueryTime time.Duration
	// ViewPrepares counts cache misses served by materializing a snapshot's
	// attached dynamic-index view (reusing the index's unchanged rank
	// prefix) instead of sorting from scratch.
	ViewPrepares uint64
	// IndexMutations, IndexMemoHits, IndexSuffixRebuilds, IndexFullRebuilds
	// and IndexViewRebuilds surface the process-wide dynamic-index
	// maintenance counters (every uncertain.Index in the process reports
	// there): O(log n) mutations applied, materializations answered from the
	// memo, suffix-reusing rebuilds, from-scratch rebuilds, and
	// materializations performed by frozen views.
	IndexMutations      uint64
	IndexMemoHits       uint64
	IndexSuffixRebuilds uint64
	IndexFullRebuilds   uint64
	IndexViewRebuilds   uint64
}

// CacheStats returns a snapshot of the engine's cache counters.
func (e *Engine) CacheStats() EngineStats {
	s := e.e.Stats()
	return EngineStats{
		Hits: s.Hits, Misses: s.Misses, Evictions: s.Evictions, Entries: s.Entries,
		PartitionEntries: s.PartEntries,
		Queries:          s.Queries, QueryTime: time.Duration(s.QueryNanos),
		ViewPrepares:   s.ViewPrepares,
		IndexMutations: s.Index.Mutations, IndexMemoHits: s.Index.MemoHits,
		IndexSuffixRebuilds: s.Index.SuffixMaterializations,
		IndexFullRebuilds:   s.Index.FullMaterializations,
		IndexViewRebuilds:   s.Index.ViewMaterializations,
	}
}

// Invalidate drops any cached preparation of t's latest snapshot, releasing
// the engine's references to it.
func (e *Engine) Invalidate(t *Table) { e.e.Invalidate(t) }

// InvalidateSnapshot drops the cached preparation of the snapshot with the
// given identity, if present.
func (e *Engine) InvalidateSnapshot(id uint64) { e.e.InvalidateSnapshot(id) }

// TopKDistribution computes the score distribution of the top-k tuple
// vectors of t, like the package-level function, with this engine's cache.
func (e *Engine) TopKDistribution(t *Table, k int, opts *Options) (*Distribution, error) {
	if t == nil {
		return nil, ErrNilTable
	}
	return e.TopKDistributionSnapshot(t.Snapshot(), k, opts)
}

// TopKDistributionSnapshot computes the score distribution of the top-k
// tuple vectors of the snapshot's frozen contents. It holds no lock and no
// reference to the owning table, so it can run concurrently with mutations.
func (e *Engine) TopKDistributionSnapshot(s *Snapshot, k int, opts *Options) (*Distribution, error) {
	if s == nil {
		return nil, ErrNilSnapshot
	}
	prep, err := e.e.PrepareSnapshot(s)
	if err != nil {
		return nil, err
	}
	params, alg := opts.resolve()
	params.K = k
	var res *core.Result
	switch alg {
	case AlgorithmMain:
		res, err = e.e.DistributionPrepared(prep, params)
	case AlgorithmStateExpansion:
		res, err = core.StateExpansion(prep, params)
	case AlgorithmKCombo:
		res, err = core.KCombo(prep, params)
	default:
		return nil, fmt.Errorf("probtopk: unknown algorithm %v", alg)
	}
	if err != nil {
		return nil, err
	}
	if opts != nil && opts.Normalize {
		res.Dist.Normalize()
	}
	return &Distribution{dist: res.Dist, prepared: prep, ScanDepth: res.ScanDepth, K: k}, nil
}

// BatchQuery is one member of a TopKDistributionBatch: a k and a per-query
// probability threshold carrying the same sentinel semantics as
// Options.Threshold (0 means the 0.001 paper default, negative means exact).
type BatchQuery struct {
	K         int
	Threshold float64
}

// TopKDistributionBatch answers many (k, threshold) queries against one
// table with the main algorithm, sharing a single (cached) preparation and
// scan across all of them. opts supplies the shared options; each query's K
// and Threshold override it. Queries fan out over up to opts.Parallelism
// goroutines (values below 2 run serially, each query's own unit-level
// parallelism then still applies). Results are indexed like queries.
func (e *Engine) TopKDistributionBatch(t *Table, queries []BatchQuery, opts *Options) ([]*Distribution, error) {
	if t == nil {
		return nil, ErrNilTable
	}
	return e.TopKDistributionBatchSnapshot(t.Snapshot(), queries, opts)
}

// TopKDistributionBatchSnapshot is TopKDistributionBatch over an immutable
// snapshot: every member of the batch is guaranteed to answer against the
// same frozen state, however long the batch runs.
func (e *Engine) TopKDistributionBatchSnapshot(s *Snapshot, queries []BatchQuery, opts *Options) ([]*Distribution, error) {
	if s == nil {
		return nil, ErrNilSnapshot
	}
	prep, err := e.e.PrepareSnapshot(s)
	if err != nil {
		return nil, err
	}
	params, alg := opts.resolve()
	if alg != AlgorithmMain {
		return nil, fmt.Errorf("probtopk: batch execution supports only AlgorithmMain, got %v", alg)
	}
	qs := make([]engine.Query, len(queries))
	for i, q := range queries {
		qs[i] = engine.Query{K: q.K, Threshold: resolveThreshold(q.Threshold)}
	}
	results, err := e.e.BatchPrepared(prep, params, qs, params.Parallelism)
	if err != nil {
		return nil, err
	}
	out := make([]*Distribution, len(results))
	for i, res := range results {
		if opts != nil && opts.Normalize {
			res.Dist.Normalize()
		}
		out[i] = &Distribution{dist: res.Dist, prepared: prep, ScanDepth: res.ScanDepth, K: queries[i].K}
	}
	return out, nil
}

// CTypicalTopK computes the top-k score distribution of t with this
// engine's cache and returns the c typical vectors; see the package-level
// CTypicalTopK.
func (e *Engine) CTypicalTopK(t *Table, k, c int, opts *Options) ([]Line, error) {
	dist, err := e.TopKDistribution(t, k, opts)
	if err != nil {
		return nil, err
	}
	lines, _, err := dist.Typical(c)
	return lines, err
}

// CTypicalTopKSnapshot is CTypicalTopK over an immutable snapshot.
func (e *Engine) CTypicalTopKSnapshot(s *Snapshot, k, c int, opts *Options) ([]Line, error) {
	dist, err := e.TopKDistributionSnapshot(s, k, opts)
	if err != nil {
		return nil, err
	}
	lines, _, err := dist.Typical(c)
	return lines, err
}

// prepareSnapshot returns the cached prepared form of s via this engine.
func (e *Engine) prepareSnapshot(s *Snapshot) (*uncertain.Prepared, error) {
	if s == nil {
		return nil, ErrNilSnapshot
	}
	return e.e.PrepareSnapshot(s)
}
