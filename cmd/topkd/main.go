// Command topkd is the HTTP/JSON daemon serving top-k queries on uncertain
// tables: upload tables as CSV or JSON, append tuples, and query top-k
// score distributions (single or batched), c-typical answer sets and the
// §5 baseline semantics. Tables are served as immutable snapshots:
// queries hold no lock while they compute, appends never wait behind
// queries, and answers can never be stale. Repeated identical queries are
// served from a derived-answer cache; GET /debug/stats exposes the
// counters.
//
// Usage:
//
//	topkd -addr :8080
//	topkd -addr :8080 -load 'data/*.csv'
//	topkd -addr :8080 -data-dir /var/lib/topkd
//
// Each file matched by -load is served as a table named after its base name
// (data/fleet.csv → "fleet"). With -data-dir, every mutation is appended to
// a write-ahead log under that directory before it is acknowledged, the
// hosted tables are periodically checkpointed into a snapshot file (see
// -checkpoint-every), and a restart recovers every table by replaying
// snapshot + WAL. -fsync selects the durability policy: "always" (the
// default) fsyncs every mutation before acknowledging it; "batch" keeps
// that guarantee but group-commits, so concurrent mutations of one shard
// share fsyncs (see -max-batch-delay); "never" trades crash-durability of
// the most recent mutations for much faster writes. -load runs after
// recovery, so a loaded CSV replaces a recovered table of the same name
// (and is itself logged).
//
// -shards N (default GOMAXPROCS, capped at 256) splits the serving stack
// N ways by table name: the registry, the mutation/durability mutex and
// the WAL (one segment sequence per shard under -data-dir); the
// prepared-query cache is split into N partitions too (routed by table
// identity rather than name). Mutations of tables on different shards
// never serialize; queries are lock-free either way and unaffected. A
// -data-dir written under a different shard count (including by a
// pre-sharding build) is migrated in place at boot. See the package
// documentation of internal/server (or the repository README) for the
// endpoint reference and recovery semantics.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"

	"probtopk"
	"probtopk/internal/persist"
	"probtopk/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	load := flag.String("load", "", "glob of CSV table files to serve at startup")
	answerCache := flag.Int("answer-cache", 0,
		"derived-answer cache entries (0 = default, negative = disabled)")
	engineCache := flag.Int("engine-cache", 0,
		"prepared-table cache entries (0 = default, negative = disabled)")
	dataDir := flag.String("data-dir", "",
		"directory for durable state (WAL + snapshot checkpoints); empty = in-memory only")
	fsync := flag.String("fsync", "always",
		"durability policy with -data-dir: always (fsync every mutation), batch (group-commit: same guarantee, concurrent mutations share fsyncs), never (faster; a crash may lose the newest acknowledged mutations); true/false are aliases for always/never")
	maxBatchDelay := flag.Duration("max-batch-delay", 0,
		"with -fsync=batch: how long a group commit lingers collecting more mutations to share its fsync (0 = batch only what queued during the previous fsync)")
	checkpointEvery := flag.Int("checkpoint-every", 256,
		"checkpoint hosted tables into the snapshot file and truncate the WAL after this many logged mutations (0 = never)")
	shards := flag.Int("shards", min(runtime.GOMAXPROCS(0), persist.MaxShards),
		"shard the serving stack (registry, mutation mutex, WAL, prepared cache) this many ways by table name; 1 disables sharding")
	pprofOn := flag.Bool("pprof", false,
		"mount net/http/pprof profiling handlers under /debug/pprof/ (exposes internals; off by default)")
	flag.Parse()

	srv, _, err := buildServer(config{
		answerCache: *answerCache, engineCache: *engineCache,
		dataDir: *dataDir, fsync: *fsync, maxBatchDelay: *maxBatchDelay,
		checkpointEvery: *checkpointEvery,
		shards:          *shards,
		pprof:           *pprofOn,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "topkd:", err)
		os.Exit(1)
	}
	names, err := loadTables(srv, *load)
	if err != nil {
		fmt.Fprintln(os.Stderr, "topkd:", err)
		os.Exit(1)
	}
	for _, name := range names {
		log.Printf("topkd: serving table %q", name)
	}
	log.Printf("topkd: listening on %s", *addr)
	if err := http.ListenAndServe(*addr, srv); err != nil {
		fmt.Fprintln(os.Stderr, "topkd:", err)
		os.Exit(1)
	}
}

// config is the daemon's resolved flag set.
type config struct {
	answerCache     int
	engineCache     int
	dataDir         string
	fsync           string
	maxBatchDelay   time.Duration
	checkpointEvery int
	shards          int
	pprof           bool
}

// parseFsync maps the -fsync flag to the persist fsync/batch pair. The
// boolean spellings stay accepted: -fsync=false scripts predate the batch
// policy.
func parseFsync(v string) (fsync, batch bool, err error) {
	switch strings.ToLower(v) {
	case "always", "true", "1":
		return true, false, nil
	case "batch":
		return true, true, nil
	case "never", "false", "0":
		return false, false, nil
	default:
		return false, false, fmt.Errorf("bad -fsync value %q (want always, batch or never)", v)
	}
}

// buildServer opens the durability backend (when configured), recovers and
// restores its tables, and returns the ready server alongside the manager
// (nil without -data-dir; the daemon holds it for the process lifetime).
// Split from main so the restart test exercises the daemon's real boot
// sequence, including releasing the data-dir lock between lives.
func buildServer(cfg config) (*server.Server, *persist.Manager, error) {
	var durable *persist.Manager
	var recovered map[string]*probtopk.Table
	if cfg.dataDir != "" {
		fsync, batch, err := parseFsync(cfg.fsync)
		if err != nil {
			return nil, nil, err
		}
		man, tables, err := persist.Open(cfg.dataDir, persist.Options{
			Fsync:           fsync,
			BatchFsync:      batch,
			MaxBatchDelay:   cfg.maxBatchDelay,
			CheckpointEvery: cfg.checkpointEvery,
			Shards:          cfg.shards,
		})
		if err != nil {
			return nil, nil, fmt.Errorf("opening -data-dir %s: %v", cfg.dataDir, err)
		}
		durable, recovered = man, tables
		info := man.ReplayInfo()
		note := ""
		if info.Truncated {
			note = fmt.Sprintf(" (torn tail: %d bytes truncated)", info.DroppedBytes)
		}
		log.Printf("topkd: recovered %d tables from %s, %d WAL records replayed%s",
			len(recovered), cfg.dataDir, info.Records, note)
	}
	srv := server.New(server.Config{
		AnswerCacheSize: cfg.answerCache,
		EngineCacheSize: cfg.engineCache,
		Shards:          cfg.shards,
		Durability:      durable,
		EnablePprof:     cfg.pprof,
	})
	names := make([]string, 0, len(recovered))
	for name := range recovered {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if err := srv.RestoreTable(name, recovered[name]); err != nil {
			return nil, nil, fmt.Errorf("restoring table %q: %v", name, err)
		}
		log.Printf("topkd: restored table %q (%d tuples)", name, recovered[name].Len())
	}
	return srv, durable, nil
}

// tableName derives the registry name for a loaded file: the base name
// without its extension.
func tableName(path string) string {
	base := filepath.Base(path)
	return strings.TrimSuffix(base, filepath.Ext(base))
}

// loadTables installs every CSV file matching the glob and returns the
// table names, sorted by filepath.Glob order.
func loadTables(srv *server.Server, glob string) ([]string, error) {
	if glob == "" {
		return nil, nil
	}
	paths, err := filepath.Glob(glob)
	if err != nil {
		return nil, fmt.Errorf("bad -load pattern %q: %v", glob, err)
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("-load pattern %q matches no files", glob)
	}
	var names []string
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		tab, err := probtopk.ReadTableCSV(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("loading %s: %v", path, err)
		}
		name := tableName(path)
		if _, err := srv.CreateTable(name, tab); err != nil {
			return nil, fmt.Errorf("loading %s: %v", path, err)
		}
		names = append(names, name)
	}
	return names, nil
}
