// Command topkd is the HTTP/JSON daemon serving top-k queries on uncertain
// tables: upload tables as CSV or JSON, append tuples, and query top-k
// score distributions (single or batched), c-typical answer sets and the
// §5 baseline semantics. Tables are served as immutable snapshots:
// queries hold no lock while they compute, appends never wait behind
// queries, and answers can never be stale. Repeated identical queries are
// served from a derived-answer cache; GET /debug/stats exposes the
// counters.
//
// Usage:
//
//	topkd -addr :8080
//	topkd -addr :8080 -load 'data/*.csv'
//	topkd -addr :8080 -data-dir /var/lib/topkd
//	topkd -addr :8080 -data-dir /var/lib/topkd -repl-addr :8081
//	topkd -addr :8090 -follow leader-host:8081
//
// Each file matched by -load is served as a table named after its base name
// (data/fleet.csv → "fleet"). With -data-dir, every mutation is appended to
// a write-ahead log under that directory before it is acknowledged, the
// hosted tables are periodically checkpointed into a snapshot file (see
// -checkpoint-every), and a restart recovers every table by replaying
// snapshot + WAL. -fsync selects the durability policy: "always" (the
// default) fsyncs every mutation before acknowledging it; "batch" keeps
// that guarantee but group-commits, so concurrent mutations of one shard
// share fsyncs (see -max-batch-delay); "never" trades crash-durability of
// the most recent mutations for much faster writes. -load runs after
// recovery, so a loaded CSV replaces a recovered table of the same name
// (and is itself logged).
//
// -shards N (default GOMAXPROCS, capped at 256) splits the serving stack
// N ways by table name: the registry, the mutation/durability mutex and
// the WAL (one segment sequence per shard under -data-dir); the
// prepared-query cache is split into N partitions too (routed by table
// identity rather than name). Mutations of tables on different shards
// never serialize; queries are lock-free either way and unaffected. A
// -data-dir written under a different shard count (including by a
// pre-sharding build) is migrated in place at boot. See the package
// documentation of internal/server (or the repository README) for the
// endpoint reference and recovery semantics.
//
// # Replication
//
// -repl-addr (requires -data-dir) additionally serves the committed WAL
// stream to followers: every mutation that has been acknowledged durable —
// and only those — is shipped, in commit order. -follow <leader-repl-addr>
// starts a read-only follower instead: it keeps no local data directory,
// resyncs its full state from the leader on connect, applies the stream
// into its own registry, and serves queries from local snapshots — a
// follower query never touches the leader. Write endpoints on a follower
// answer 403 naming the leader. Per-shard staleness (applied vs leader
// committed position, bytes behind, seconds since the last applied record)
// is on GET /debug/stats. A follower that loses its leader reconnects with
// jittered exponential backoff and resumes — or resyncs, when the leader
// has checkpointed past its position — automatically.
//
// # Overload protection
//
// The daemon runs a Stochastic Fair BLUE throttler by default (-fairness,
// disable with -fairness=false): requests carry a client identity (the
// X-Topk-Client header, or the remote IP), cold-query computations pass a
// bounded-concurrency gate (-fairness-concurrency, -fairness-wait), and a
// client that repeatedly exhausts that capacity is shed with 429 +
// Retry-After while everyone else keeps their full service — cache hits
// never touch the gate, so warm traffic cannot be shed. Drop
// probabilities decay when shortage stops (-fairness-decay), and the hash
// levels re-seed periodically (-fairness-rotate) so a client that
// collides with a flooder is separated from it. Shed counters and
// per-level bucket occupancy are on GET /debug/stats.
//
// # Shutdown
//
// On SIGINT/SIGTERM the daemon stops accepting connections, drains
// in-flight requests (up to -shutdown-timeout, then forcibly closes), then
// closes replication and the durability backend, so every acknowledged
// mutation is on disk (per the fsync policy) before the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"probtopk"
	"probtopk/internal/persist"
	"probtopk/internal/repl"
	"probtopk/internal/server"
	"probtopk/internal/server/fairness"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	load := flag.String("load", "", "glob of CSV table files to serve at startup")
	answerCache := flag.Int("answer-cache", 0,
		"derived-answer cache entries (0 = default, negative = disabled)")
	engineCache := flag.Int("engine-cache", 0,
		"prepared-table cache entries (0 = default, negative = disabled)")
	dataDir := flag.String("data-dir", "",
		"directory for durable state (WAL + snapshot checkpoints); empty = in-memory only")
	fsync := flag.String("fsync", "always",
		"durability policy with -data-dir: always (fsync every mutation), batch (group-commit: same guarantee, concurrent mutations share fsyncs), never (faster; a crash may lose the newest acknowledged mutations); true/false are aliases for always/never")
	maxBatchDelay := flag.Duration("max-batch-delay", 0,
		"with -fsync=batch: how long a group commit lingers collecting more mutations to share its fsync (0 = batch only what queued during the previous fsync)")
	checkpointEvery := flag.Int("checkpoint-every", 256,
		"checkpoint hosted tables into the snapshot file and truncate the WAL after this many logged mutations (0 = never)")
	shards := flag.Int("shards", min(runtime.GOMAXPROCS(0), persist.MaxShards),
		"shard the serving stack (registry, mutation mutex, WAL, prepared cache) this many ways by table name; 1 disables sharding")
	pprofOn := flag.Bool("pprof", false,
		"mount net/http/pprof profiling handlers under /debug/pprof/ (exposes internals; off by default)")
	replAddr := flag.String("repl-addr", "",
		"serve the committed WAL stream to followers on this address (requires -data-dir)")
	follow := flag.String("follow", "",
		"run as a read-only follower of the leader at this replication address (excludes -data-dir, -load and -repl-addr)")
	shutdownTimeout := flag.Duration("shutdown-timeout", 10*time.Second,
		"how long SIGINT/SIGTERM waits for in-flight requests before closing their connections")
	fairnessOn := flag.Bool("fairness", true,
		"shed unfair load: SFB throttling by client id (X-Topk-Client header or remote IP) plus a bounded-concurrency gate on cold-query computes; sheds answer 429 with Retry-After")
	fairLevels := flag.Int("fairness-levels", 0,
		"SFB hash levels (0 = default)")
	fairBuckets := flag.Int("fairness-buckets", 0,
		"SFB buckets per level (0 = default)")
	fairConcurrency := flag.Int("fairness-concurrency", 0,
		"concurrent cold-query computations admitted (0 = 2 x GOMAXPROCS)")
	fairWaiters := flag.Int("fairness-waiters", 0,
		"callers that may queue for a compute slot (0 = 2 x -fairness-concurrency)")
	fairWait := flag.Duration("fairness-wait", 0,
		"how long a caller may wait for a compute slot before being shed (0 = default)")
	fairIncrement := flag.Float64("fairness-increment", 0,
		"drop-probability increment per genuine-shortage shed (0 = default)")
	fairDecrement := flag.Float64("fairness-decrement", 0,
		"drop-probability decrement per decay interval (0 = default)")
	fairDecay := flag.Duration("fairness-decay", 0,
		"decay interval: how often idle buckets shed drop probability (0 = default)")
	fairRotate := flag.Duration("fairness-rotate", 0,
		"how often one SFB level re-seeds, separating hash-collided clients (0 = default, negative = never)")
	fairRetryAfter := flag.Duration("fairness-retry-after", 0,
		"Retry-After advertised on 429 shed responses (0 = default)")
	flag.Parse()

	err := run(config{
		addr: *addr, load: *load,
		answerCache: *answerCache, engineCache: *engineCache,
		dataDir: *dataDir, fsync: *fsync, maxBatchDelay: *maxBatchDelay,
		checkpointEvery: *checkpointEvery,
		shards:          *shards,
		pprof:           *pprofOn,
		replAddr:        *replAddr,
		follow:          *follow,
		shutdownTimeout: *shutdownTimeout,
		fairness:        *fairnessOn,
		fairnessCfg: fairness.Config{
			Levels:        *fairLevels,
			Buckets:       *fairBuckets,
			MaxConcurrent: *fairConcurrency,
			MaxWaiters:    *fairWaiters,
			MaxWait:       *fairWait,
			Increment:     *fairIncrement,
			Decrement:     *fairDecrement,
			DecayInterval: *fairDecay,
			RotateEvery:   *fairRotate,
			RetryAfter:    *fairRetryAfter,
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "topkd:", err)
		os.Exit(1)
	}
}

// config is the daemon's resolved flag set.
type config struct {
	addr            string
	load            string
	answerCache     int
	engineCache     int
	dataDir         string
	fsync           string
	maxBatchDelay   time.Duration
	checkpointEvery int
	shards          int
	pprof           bool
	replAddr        string
	follow          string
	shutdownTimeout time.Duration
	fairness        bool
	fairnessCfg     fairness.Config
}

// validate rejects flag combinations with no coherent meaning.
func (cfg config) validate() error {
	if cfg.follow != "" {
		if cfg.dataDir != "" {
			return errors.New("-follow and -data-dir are mutually exclusive: a follower replicates the leader's durable state and keeps none of its own")
		}
		if cfg.load != "" {
			return errors.New("-follow and -load are mutually exclusive: a follower is read-only and serves the leader's tables")
		}
		if cfg.replAddr != "" {
			return errors.New("-follow and -repl-addr are mutually exclusive: chained replication is not supported")
		}
	}
	if cfg.replAddr != "" && cfg.dataDir == "" {
		return errors.New("-repl-addr requires -data-dir: followers catch up from the leader's WAL segments and checkpoint")
	}
	if !cfg.fairness && cfg.fairnessCfg != (fairness.Config{}) {
		return errors.New("-fairness-* tuning flags require fairness; drop them or remove -fairness=false")
	}
	return nil
}

// run is the daemon's whole life: build, listen, serve, shut down. Split
// from main (and from the flag values) so tests can drive real daemon
// lifecycles in-process.
func run(cfg config) error {
	if err := cfg.validate(); err != nil {
		return err
	}
	srv, durable, err := buildServer(cfg)
	if err != nil {
		return err
	}
	d := &daemon{httpSrv: newHTTPServer(srv), timeout: cfg.shutdownTimeout}
	if durable != nil {
		d.closeManager = durable.Close
	}

	names, err := loadTables(srv, cfg.load)
	if err != nil {
		d.Shutdown() // release the data-dir lock and WAL
		return err
	}
	for _, name := range names {
		log.Printf("topkd: serving table %q", name)
	}

	switch {
	case cfg.follow != "":
		fol := repl.NewFollower(cfg.follow, srv)
		srv.SetReplicationStats(followerStats(fol))
		go fol.Run()
		d.closeRepl = fol.Close
		log.Printf("topkd: following leader at %s (read-only)", cfg.follow)
	case cfg.replAddr != "":
		ld := repl.NewLeader(durable)
		ln, err := net.Listen("tcp", cfg.replAddr)
		if err != nil {
			d.Shutdown()
			return fmt.Errorf("replication listen: %v", err)
		}
		srv.SetReplicationStats(leaderStats(ld))
		go func() {
			if err := ld.Serve(ln); err != nil {
				log.Printf("topkd: replication listener failed: %v", err)
			}
		}()
		d.closeRepl = func() { ld.Close() }
		log.Printf("topkd: replicating on %s", ln.Addr())
	}

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		d.Shutdown()
		return err
	}
	log.Printf("topkd: listening on %s", ln.Addr())

	serveErr := make(chan error, 1)
	go func() { serveErr <- d.httpSrv.Serve(ln) }()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)

	select {
	case err := <-serveErr:
		d.Shutdown() // the listener died on its own; still close cleanly
		return err
	case s := <-sig:
		log.Printf("topkd: received %v, draining (up to %s)", s, d.timeout)
		return d.Shutdown()
	}
}

// newHTTPServer wraps the handler in an http.Server with the slow-client
// protections a bare ListenAndServe never gets: a header read timeout (a
// connection cannot hold a goroutine by trickling its request line) and an
// idle timeout for keep-alive connections.
func newHTTPServer(h http.Handler) *http.Server {
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
}

// daemon owns the orderly teardown: drain HTTP first (in-flight mutations
// may still need the WAL), then stop replication, then close the
// durability backend. Shutdown is idempotent and safe from any goroutine —
// whoever loses the race simply observes the first caller's result.
type daemon struct {
	httpSrv      *http.Server
	timeout      time.Duration
	closeRepl    func()
	closeManager func() error

	once sync.Once
	err  error
}

// Shutdown runs the teardown exactly once and returns its error.
func (d *daemon) Shutdown() error {
	d.once.Do(func() {
		if d.httpSrv != nil {
			ctx, cancel := context.WithTimeout(context.Background(), d.timeout)
			if err := d.httpSrv.Shutdown(ctx); err != nil {
				// Drain deadline hit: cut the stragglers' connections.
				d.httpSrv.Close()
				d.err = fmt.Errorf("drain incomplete after %s: %v", d.timeout, err)
			}
			cancel()
		}
		if d.closeRepl != nil {
			d.closeRepl()
		}
		if d.closeManager != nil {
			if err := d.closeManager(); err != nil && d.err == nil {
				d.err = err
			}
		}
	})
	return d.err
}

// followerStats adapts a follower's status to the /debug/stats block.
func followerStats(f *repl.Follower) func() *server.ReplicationJSON {
	return func() *server.ReplicationJSON {
		st := f.Status()
		out := &server.ReplicationJSON{
			Role:           "follower",
			Leader:         st.LeaderAddr,
			Connected:      st.Connected,
			Resets:         st.Resets,
			Reconnects:     st.Reconnects,
			AppliedRecords: st.AppliedRecords,
			ApplyErrors:    st.ApplyErrors,
		}
		now := time.Now()
		for _, sh := range st.Shards {
			age := 0.0
			if !sh.LastApplied.IsZero() {
				age = now.Sub(sh.LastApplied).Seconds()
			}
			out.Shards = append(out.Shards, server.ReplicationShardJSON{
				Shard:          sh.Shard,
				AppliedRecords: sh.AppliedRecords,
				AppliedSeg:     sh.Applied.Seg,
				AppliedOff:     sh.Applied.Off,
				LeaderSeg:      sh.Leader.Seg,
				LeaderOff:      sh.Leader.Off,
				BehindBytes:    sh.Behind(),
				AgeSeconds:     age,
			})
		}
		return out
	}
}

// leaderStats adapts a leader's counters to the /debug/stats block.
func leaderStats(ld *repl.Leader) func() *server.ReplicationJSON {
	return func() *server.ReplicationJSON {
		st := ld.Status()
		return &server.ReplicationJSON{
			Role:       "leader",
			Followers:  st.Followers,
			Resets:     st.Resets,
			FramesSent: st.FramesSent,
			BytesSent:  st.BytesSent,
		}
	}
}

// parseFsync maps the -fsync flag to the persist fsync/batch pair. The
// boolean spellings stay accepted: -fsync=false scripts predate the batch
// policy.
func parseFsync(v string) (fsync, batch bool, err error) {
	switch strings.ToLower(v) {
	case "always", "true", "1":
		return true, false, nil
	case "batch":
		return true, true, nil
	case "never", "false", "0":
		return false, false, nil
	default:
		return false, false, fmt.Errorf("bad -fsync value %q (want always, batch or never)", v)
	}
}

// buildServer opens the durability backend (when configured), recovers and
// restores its tables, and returns the ready server alongside the manager
// (nil without -data-dir; the daemon holds it for the process lifetime).
// Split from run so the restart test exercises the daemon's real boot
// sequence, including releasing the data-dir lock between lives.
func buildServer(cfg config) (*server.Server, *persist.Manager, error) {
	var durable *persist.Manager
	var recovered map[string]*probtopk.Table
	if cfg.dataDir != "" {
		fsync, batch, err := parseFsync(cfg.fsync)
		if err != nil {
			return nil, nil, err
		}
		man, tables, err := persist.Open(cfg.dataDir, persist.Options{
			Fsync:           fsync,
			BatchFsync:      batch,
			MaxBatchDelay:   cfg.maxBatchDelay,
			CheckpointEvery: cfg.checkpointEvery,
			Shards:          cfg.shards,
		})
		if err != nil {
			return nil, nil, fmt.Errorf("opening -data-dir %s: %v", cfg.dataDir, err)
		}
		durable, recovered = man, tables
		info := man.ReplayInfo()
		note := ""
		if info.Truncated {
			note = fmt.Sprintf(" (torn tail: %d bytes truncated)", info.DroppedBytes)
		}
		log.Printf("topkd: recovered %d tables from %s, %d WAL records replayed%s",
			len(recovered), cfg.dataDir, info.Records, note)
	}
	scfg := server.Config{
		AnswerCacheSize: cfg.answerCache,
		EngineCacheSize: cfg.engineCache,
		Shards:          cfg.shards,
		Durability:      durable,
		EnablePprof:     cfg.pprof,
		FollowerOf:      cfg.follow,
	}
	if cfg.fairness {
		fc := cfg.fairnessCfg
		scfg.Fairness = &fc
	}
	srv := server.New(scfg)
	names := make([]string, 0, len(recovered))
	for name := range recovered {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if err := srv.RestoreTable(name, recovered[name]); err != nil {
			return nil, nil, fmt.Errorf("restoring table %q: %v", name, err)
		}
		log.Printf("topkd: restored table %q (%d tuples)", name, recovered[name].Len())
	}
	return srv, durable, nil
}

// tableName derives the registry name for a loaded file: the base name
// without its extension.
func tableName(path string) string {
	base := filepath.Base(path)
	return strings.TrimSuffix(base, filepath.Ext(base))
}

// loadTables installs every CSV file matching the glob and returns the
// table names, sorted by filepath.Glob order.
func loadTables(srv *server.Server, glob string) ([]string, error) {
	if glob == "" {
		return nil, nil
	}
	paths, err := filepath.Glob(glob)
	if err != nil {
		return nil, fmt.Errorf("bad -load pattern %q: %v", glob, err)
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("-load pattern %q matches no files", glob)
	}
	var names []string
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		tab, err := probtopk.ReadTableCSV(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("loading %s: %v", path, err)
		}
		name := tableName(path)
		if _, err := srv.CreateTable(name, tab); err != nil {
			return nil, fmt.Errorf("loading %s: %v", path, err)
		}
		names = append(names, name)
	}
	return names, nil
}
