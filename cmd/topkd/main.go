// Command topkd is the HTTP/JSON daemon serving top-k queries on uncertain
// tables: upload tables as CSV or JSON, append tuples, and query top-k
// score distributions (single or batched), c-typical answer sets and the
// §5 baseline semantics. Tables are served as immutable snapshots:
// queries hold no lock while they compute, appends never wait behind
// queries, and answers can never be stale. Repeated identical queries are
// served from a derived-answer cache; GET /debug/stats exposes the
// counters.
//
// Usage:
//
//	topkd -addr :8080
//	topkd -addr :8080 -load 'data/*.csv'
//
// Each file matched by -load is served as a table named after its base name
// (data/fleet.csv → "fleet"). See the package documentation of
// internal/server (or the repository README) for the endpoint reference.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"strings"

	"probtopk"
	"probtopk/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	load := flag.String("load", "", "glob of CSV table files to serve at startup")
	answerCache := flag.Int("answer-cache", 0,
		"derived-answer cache entries (0 = default, negative = disabled)")
	engineCache := flag.Int("engine-cache", 0,
		"prepared-table cache entries (0 = default, negative = disabled)")
	flag.Parse()

	srv := server.New(server.Config{
		AnswerCacheSize: *answerCache,
		EngineCacheSize: *engineCache,
	})
	names, err := loadTables(srv, *load)
	if err != nil {
		fmt.Fprintln(os.Stderr, "topkd:", err)
		os.Exit(1)
	}
	for _, name := range names {
		log.Printf("topkd: serving table %q", name)
	}
	log.Printf("topkd: listening on %s (%d tables)", *addr, len(names))
	if err := http.ListenAndServe(*addr, srv); err != nil {
		fmt.Fprintln(os.Stderr, "topkd:", err)
		os.Exit(1)
	}
}

// tableName derives the registry name for a loaded file: the base name
// without its extension.
func tableName(path string) string {
	base := filepath.Base(path)
	return strings.TrimSuffix(base, filepath.Ext(base))
}

// loadTables installs every CSV file matching the glob and returns the
// table names, sorted by filepath.Glob order.
func loadTables(srv *server.Server, glob string) ([]string, error) {
	if glob == "" {
		return nil, nil
	}
	paths, err := filepath.Glob(glob)
	if err != nil {
		return nil, fmt.Errorf("bad -load pattern %q: %v", glob, err)
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("-load pattern %q matches no files", glob)
	}
	var names []string
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		tab, err := probtopk.ReadTableCSV(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("loading %s: %v", path, err)
		}
		name := tableName(path)
		if _, err := srv.CreateTable(name, tab); err != nil {
			return nil, fmt.Errorf("loading %s: %v", path, err)
		}
		names = append(names, name)
	}
	return names, nil
}
