package main

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"probtopk/internal/persist"
)

func TestValidateFlagCombos(t *testing.T) {
	bad := []config{
		{follow: "h:1", dataDir: "/x"},
		{follow: "h:1", load: "*.csv"},
		{follow: "h:1", replAddr: ":9"},
		{replAddr: ":9"},
	}
	for _, cfg := range bad {
		if err := cfg.validate(); err == nil {
			t.Errorf("validate(%+v) accepted a contradictory flag set", cfg)
		}
	}
	good := []config{
		{},
		{follow: "h:1"},
		{dataDir: "/x", replAddr: ":9"},
		{dataDir: "/x"},
	}
	for _, cfg := range good {
		if err := cfg.validate(); err != nil {
			t.Errorf("validate(%+v) = %v", cfg, err)
		}
	}
}

// TestShutdownClosesManagerOnce hammers Shutdown from many goroutines and
// checks the durability backend is closed exactly once, after the HTTP
// drain, no matter who calls first.
func TestShutdownClosesManagerOnce(t *testing.T) {
	var closes atomic.Int32
	d := &daemon{
		httpSrv: newHTTPServer(http.NewServeMux()),
		timeout: time.Second,
		closeManager: func() error {
			closes.Add(1)
			return nil
		},
	}
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := d.Shutdown(); err != nil {
				t.Errorf("Shutdown: %v", err)
			}
		}()
	}
	wg.Wait()
	if got := closes.Load(); got != 1 {
		t.Fatalf("manager closed %d times, want exactly 1", got)
	}
	// A late straggler still sees the recorded result, not a second close.
	if err := d.Shutdown(); err != nil {
		t.Fatalf("repeat Shutdown: %v", err)
	}
	if got := closes.Load(); got != 1 {
		t.Fatalf("repeat Shutdown closed the manager again (%d times)", got)
	}
}

// TestShutdownErrorPropagates checks a failing manager close surfaces from
// the first Shutdown and is replayed to later callers.
func TestShutdownErrorPropagates(t *testing.T) {
	wantErr := fmt.Errorf("wal: boom")
	d := &daemon{timeout: time.Second, closeManager: func() error { return wantErr }}
	if err := d.Shutdown(); err != wantErr {
		t.Fatalf("Shutdown = %v, want %v", err, wantErr)
	}
	if err := d.Shutdown(); err != wantErr {
		t.Fatalf("repeat Shutdown = %v, want %v", err, wantErr)
	}
}

// TestGracefulShutdownDrains is the graceful-stop variant of the kill-9
// smoke: a batch-fsync daemon takes concurrent appends over real HTTP
// while it is shut down. Every append that was acknowledged (200) must be
// durable in the next life; every refusal (503, or a cut connection) must
// have left no partial state behind — the table either has the tuple or
// it does not, and acknowledgement decides which is required.
func TestGracefulShutdownDrains(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "data")
	cfg := config{dataDir: dir, fsync: "batch", maxBatchDelay: time.Millisecond,
		checkpointEvery: 64, shards: 2}
	srv, man, err := buildServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d := &daemon{httpSrv: newHTTPServer(srv), timeout: 10 * time.Second, closeManager: man.Close}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go d.httpSrv.Serve(ln)
	base := "http://" + ln.Addr().String()

	put, err := http.NewRequest("PUT", base+"/tables/fleet", strings.NewReader(fleetCSV))
	if err != nil {
		t.Fatal(err)
	}
	put.Header.Set("Content-Type", "text/csv")
	resp, err := http.DefaultClient.Do(put)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 201 {
		t.Fatalf("put: %d", resp.StatusCode)
	}

	// Concurrent appenders, each with unique tuple IDs, racing Shutdown.
	const writers, perWriter = 8, 50
	acked := make([][]bool, writers)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		acked[w] = make([]bool, perWriter)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				body := fmt.Sprintf(`{"tuples":[{"id":"w%d-%d","score":%d,"prob":0.5}]}`, w, i, 1000+w*perWriter+i)
				resp, err := http.Post(base+"/tables/fleet/tuples", "application/json", strings.NewReader(body))
				if err != nil {
					return // connection cut by shutdown: unacknowledged
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode == 200 {
					acked[w][i] = true
				}
			}
		}(w)
	}
	time.Sleep(20 * time.Millisecond) // let the writers land some appends
	if err := d.Shutdown(); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	wg.Wait()

	// Next life: every acknowledged append must have survived.
	man2, tables, err := persist.Open(dir, persist.Options{Shards: cfg.shards})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer man2.Close()
	fleet := tables["fleet"]
	if fleet == nil {
		t.Fatalf("table fleet lost")
	}
	have := make(map[string]bool)
	for _, tp := range fleet.Tuples() {
		have[tp.ID] = true
	}
	ackedN := 0
	for w := range acked {
		for i, ok := range acked[w] {
			id := fmt.Sprintf("w%d-%d", w, i)
			if ok {
				ackedN++
				if !have[id] {
					t.Errorf("acknowledged append %s lost across graceful shutdown", id)
				}
			}
		}
	}
	if ackedN == 0 {
		t.Fatalf("no append was acknowledged before shutdown; the race never happened")
	}
	t.Logf("graceful shutdown: %d acknowledged appends, all durable; %d tuples recovered", ackedN, len(have))
}
