package main

// Two-process integration tests: a real leader and a real follower topkd,
// driven over HTTP and the replication port, with kill -9, SIGSTOP and
// SIGTERM — the failure modes the replication design promises to survive.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"probtopk/internal/server"
)

// buildTopkd compiles the daemon binary once per test run.
func buildTopkd(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "topkd")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// topkdProc is one running daemon process with its parsed listen addresses.
type topkdProc struct {
	cmd      *exec.Cmd
	addr     string // HTTP address
	replAddr string // replication address ("" unless -repl-addr)
	exited   chan error

	mu  sync.Mutex
	log bytes.Buffer
}

func (p *topkdProc) logs() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.log.String()
}

// startTopkd launches the binary and waits for its "listening on" line
// (and, when expectRepl, its "replicating on" line).
func startTopkd(t *testing.T, bin string, expectRepl bool, args ...string) *topkdProc {
	t.Helper()
	p := &topkdProc{cmd: exec.Command(bin, args...), exited: make(chan error, 1)}
	stderr, err := p.cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.cmd.Start(); err != nil {
		t.Fatalf("starting %s: %v", bin, err)
	}
	addrCh := make(chan string, 1)
	replCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			p.mu.Lock()
			p.log.WriteString(line + "\n")
			p.mu.Unlock()
			if _, after, ok := strings.Cut(line, "topkd: listening on "); ok {
				select {
				case addrCh <- after:
				default:
				}
			}
			if _, after, ok := strings.Cut(line, "topkd: replicating on "); ok {
				select {
				case replCh <- after:
				default:
				}
			}
		}
		p.exited <- p.cmd.Wait()
	}()
	t.Cleanup(func() {
		p.cmd.Process.Kill()
		select {
		case <-p.exited:
		case <-time.After(5 * time.Second):
		}
	})
	wait := func(ch chan string, what string) string {
		select {
		case v := <-ch:
			return v
		case err := <-p.exited:
			t.Fatalf("topkd exited before %s: %v\n%s", what, err, p.logs())
		case <-time.After(20 * time.Second):
			t.Fatalf("timed out waiting for %s\n%s", what, p.logs())
		}
		return ""
	}
	if expectRepl {
		p.replAddr = wait(replCh, "replication address")
	}
	p.addr = wait(addrCh, "listen address")
	return p
}

func httpDo(t *testing.T, method, url, contentType, body string) (int, string, http.Header) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	client := &http.Client{Timeout: 15 * time.Second}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b), resp.Header
}

func procStats(t *testing.T, p *topkdProc) server.StatsResponse {
	t.Helper()
	code, body, _ := httpDo(t, "GET", "http://"+p.addr+"/debug/stats", "", "")
	if code != 200 {
		t.Fatalf("stats: %d %s", code, body)
	}
	var st server.StatsResponse
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("stats body: %v\n%s", err, body)
	}
	return st
}

func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestLeaderFollowerProcesses is the end-to-end replication scenario:
// leader with tables and live writes, follower catches up and serves
// byte-identical answers, survives kill -9 and re-syncs, keeps serving
// while the leader is SIGSTOPped, refuses writes with the leader's
// address, and the leader shuts down cleanly on SIGTERM.
func TestLeaderFollowerProcesses(t *testing.T) {
	if testing.Short() {
		t.Skip("two-process test")
	}
	bin := buildTopkd(t)
	dataDir := filepath.Join(t.TempDir(), "data")

	leader := startTopkd(t, bin, true,
		"-addr=127.0.0.1:0", "-data-dir="+dataDir, "-repl-addr=127.0.0.1:0",
		"-fsync=batch", "-max-batch-delay=1ms", "-shards=2", "-checkpoint-every=32")

	for _, name := range []string{"fleet", "radar"} {
		code, body, _ := httpDo(t, "PUT", "http://"+leader.addr+"/tables/"+name, "text/csv", fleetCSV)
		if code != 201 {
			t.Fatalf("put %s: %d %s", name, code, body)
		}
	}

	follower := startTopkd(t, bin, false, "-addr=127.0.0.1:0", "-follow="+leader.replAddr)
	waitUntil(t, "follower connect and initial sync", func() bool {
		st := procStats(t, follower)
		return st.Replication != nil && st.Replication.Connected &&
			st.Replication.AppliedRecords >= 2
	})

	// Staleness is on /debug/stats: one entry per leader WAL shard, with
	// positions and age. Leader positions arrive with the first heartbeat.
	waitUntil(t, "heartbeat to carry leader positions", func() bool {
		st := procStats(t, follower)
		if st.Replication == nil || len(st.Replication.Shards) != 2 {
			return false
		}
		for _, sh := range st.Replication.Shards {
			if sh.LeaderSeg == 0 {
				return false
			}
		}
		return true
	})
	st := procStats(t, follower)
	if st.Replication.Role != "follower" || st.Replication.Leader != leader.replAddr {
		t.Fatalf("replication block = %+v", st.Replication)
	}
	if lst := procStats(t, leader); lst.Replication == nil || lst.Replication.Role != "leader" || lst.Replication.Followers != 1 {
		t.Fatalf("leader replication block = %+v", lst.Replication)
	}

	// Queries answer byte-identically on both processes.
	topk := func(p *topkdProc, table string) string {
		code, body, _ := httpDo(t, "GET", "http://"+p.addr+"/tables/"+table+"/topk?k=2", "", "")
		if code != 200 {
			t.Fatalf("topk on %s: %d %s", p.addr, code, body)
		}
		return body
	}
	waitUntil(t, "identical /topk", func() bool { return topk(leader, "fleet") == topk(follower, "fleet") })

	// Writes on the follower: 403 naming the leader.
	code, body, hdr := httpDo(t, "POST", "http://"+follower.addr+"/tables/fleet/tuples",
		"application/json", `{"tuples":[{"id":"nope","score":1,"prob":0.5}]}`)
	if code != 403 || !strings.Contains(body, leader.replAddr) {
		t.Fatalf("follower write = %d %s", code, body)
	}
	if got := hdr.Get("X-Topk-Leader"); got != leader.replAddr {
		t.Fatalf("X-Topk-Leader = %q, want %q", got, leader.replAddr)
	}

	// kill -9 the follower mid-stream: writes keep flowing on the leader.
	stop := make(chan struct{})
	var wrote sync.WaitGroup
	wrote.Add(1)
	go func() {
		defer wrote.Done()
		client := &http.Client{Timeout: 15 * time.Second}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			body := fmt.Sprintf(`{"tuples":[{"id":"live-%d","score":%d,"prob":0.5}]}`, i, 500+i)
			resp, err := client.Post("http://"+leader.addr+"/tables/fleet/tuples",
				"application/json", strings.NewReader(body))
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()
	time.Sleep(50 * time.Millisecond)
	follower.cmd.Process.Kill() // SIGKILL, no goodbye
	<-follower.exited
	time.Sleep(100 * time.Millisecond) // leader keeps committing without it
	close(stop)
	wrote.Wait()

	// A fresh follower process re-syncs everything it missed.
	catchUpStart := time.Now()
	follower2 := startTopkd(t, bin, false, "-addr=127.0.0.1:0", "-follow="+leader.replAddr)
	waitUntil(t, "restarted follower to catch up", func() bool {
		st := procStats(t, follower2)
		if st.Replication == nil || !st.Replication.Connected {
			return false
		}
		return topk(leader, "fleet") == topk(follower2, "fleet") &&
			topk(leader, "radar") == topk(follower2, "radar")
	})
	st2 := procStats(t, follower2)
	t.Logf("cold follower caught up in %v (%d records applied, %d resets)",
		time.Since(catchUpStart).Round(time.Millisecond),
		st2.Replication.AppliedRecords, st2.Replication.Resets)
	lstats := procStats(t, leader)
	fstats := procStats(t, follower2)
	if lstats.Tables != fstats.Tables {
		t.Fatalf("table counts diverge: leader %d, follower %d", lstats.Tables, fstats.Tables)
	}

	// SIGSTOP the leader: follower reads never touch it, so queries keep
	// answering at full speed from local snapshots.
	if err := leader.cmd.Process.Signal(syscall.SIGSTOP); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		start := time.Now()
		topk(follower2, "fleet")
		if d := time.Since(start); d > 5*time.Second {
			t.Fatalf("follower query took %s with the leader stalled", d)
		}
	}
	if err := leader.cmd.Process.Signal(syscall.SIGCONT); err != nil {
		t.Fatal(err)
	}

	// SIGTERM the leader: graceful drain, clean exit.
	if err := leader.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-leader.exited:
		if err != nil {
			t.Fatalf("leader exit after SIGTERM: %v\n%s", err, leader.logs())
		}
	case <-time.After(20 * time.Second):
		t.Fatalf("leader did not exit after SIGTERM\n%s", leader.logs())
	}
}
