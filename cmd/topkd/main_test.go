package main

import (
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"strings"

	"probtopk/internal/server"
	"probtopk/internal/server/fairness"
)

const fleetCSV = `id,score,prob,group
car1,80,0.9,
car2,70,0.4,lane3
car3,65,0.5,lane3
`

func TestTableName(t *testing.T) {
	cases := map[string]string{
		"fleet.csv":           "fleet",
		"data/fleet.csv":      "fleet",
		"/abs/path/radar.CSV": "radar",
		"noext":               "noext",
	}
	for in, want := range cases {
		if got := tableName(in); got != want {
			t.Errorf("tableName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestLoadTables(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"fleet.csv", "radar.csv"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(fleetCSV), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	srv := server.New(server.Config{})
	names, err := loadTables(srv, filepath.Join(dir, "*.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 {
		t.Fatalf("names = %v", names)
	}

	// The loaded tables answer queries.
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, httptest.NewRequest("GET", "/tables/fleet/topk?k=2", nil))
	if w.Code != 200 {
		t.Fatalf("query status %d: %s", w.Code, w.Body.String())
	}
	var dist server.DistributionResponse
	if err := json.Unmarshal(w.Body.Bytes(), &dist); err != nil {
		t.Fatal(err)
	}
	if dist.K != 2 || len(dist.Lines) == 0 {
		t.Fatalf("dist = %+v", dist)
	}
}

func TestLoadTablesEmptyGlobIsNoop(t *testing.T) {
	names, err := loadTables(server.New(server.Config{}), "")
	if err != nil || names != nil {
		t.Fatalf("loadTables(\"\") = %v, %v", names, err)
	}
}

func TestLoadTablesErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := loadTables(server.New(server.Config{}), filepath.Join(dir, "*.csv")); err == nil {
		t.Fatal("empty match should error")
	}
	bad := filepath.Join(dir, "bad.csv")
	if err := os.WriteFile(bad, []byte("id,score,prob,group\nx,1,7,\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadTables(server.New(server.Config{}), bad); err == nil {
		t.Fatal("invalid CSV should error")
	}
}

func TestParseFsync(t *testing.T) {
	cases := []struct {
		in           string
		fsync, batch bool
	}{
		{"always", true, false}, {"true", true, false}, {"1", true, false},
		{"ALWAYS", true, false},
		{"batch", true, true}, {"Batch", true, true},
		{"never", false, false}, {"false", false, false}, {"0", false, false},
	}
	for _, c := range cases {
		fsync, batch, err := parseFsync(c.in)
		if err != nil || fsync != c.fsync || batch != c.batch {
			t.Errorf("parseFsync(%q) = %v, %v, %v; want %v, %v", c.in, fsync, batch, err, c.fsync, c.batch)
		}
	}
	if _, _, err := parseFsync("sometimes"); err == nil {
		t.Error("parseFsync(\"sometimes\") should error")
	}
	if _, _, err := buildServer(config{dataDir: t.TempDir(), fsync: "sometimes"}); err == nil {
		t.Error("buildServer should reject a bad -fsync value")
	}
}

// TestBatchedRestartRecoversTables boots the daemon with -fsync=batch,
// mutates, and checks the next life (under -fsync=always, to prove the
// on-disk format is policy-independent) serves the same data.
func TestBatchedRestartRecoversTables(t *testing.T) {
	dir := t.TempDir()
	cfg := config{dataDir: filepath.Join(dir, "data"), fsync: "batch",
		maxBatchDelay: 2 * time.Millisecond, checkpointEvery: 0}

	srv1, man1, err := buildServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	put := httptest.NewRequest("PUT", "/tables/fleet", strings.NewReader(fleetCSV))
	put.Header.Set("Content-Type", "text/csv")
	w := httptest.NewRecorder()
	srv1.ServeHTTP(w, put)
	if w.Code != 201 {
		t.Fatalf("put: %d %s", w.Code, w.Body.String())
	}
	w = httptest.NewRecorder()
	srv1.ServeHTTP(w, httptest.NewRequest("POST", "/tables/fleet/tuples",
		strings.NewReader(`{"tuples": [{"id": "car4", "score": 90, "prob": 0.7}]}`)))
	if w.Code != 200 {
		t.Fatalf("append: %d %s", w.Code, w.Body.String())
	}
	man1.Close()

	cfg.fsync = "always"
	srv2, man2, err := buildServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer man2.Close()
	var info server.TableInfo
	w = httptest.NewRecorder()
	srv2.ServeHTTP(w, httptest.NewRequest("GET", "/tables/fleet", nil))
	if err := json.Unmarshal(w.Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}
	if info.Tuples != 4 {
		t.Fatalf("batched mutations lost across restart: %+v", info)
	}
}

// TestRestartRecoversTables drives the daemon's real boot sequence
// (buildServer) twice over one data directory: mutations served by the
// first life must be answered identically by the second, and -load must
// still override a recovered table by name.
func TestRestartRecoversTables(t *testing.T) {
	dir := t.TempDir()
	cfg := config{dataDir: filepath.Join(dir, "data"), fsync: "never", checkpointEvery: 3}

	srv1, man1, err := buildServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	put := httptest.NewRequest("PUT", "/tables/fleet", strings.NewReader(fleetCSV))
	put.Header.Set("Content-Type", "text/csv")
	w := httptest.NewRecorder()
	srv1.ServeHTTP(w, put)
	if w.Code != 201 {
		t.Fatalf("put: %d %s", w.Code, w.Body.String())
	}
	w = httptest.NewRecorder()
	srv1.ServeHTTP(w, httptest.NewRequest("POST", "/tables/fleet/tuples",
		strings.NewReader(`{"tuples": [{"id": "car4", "score": 90, "prob": 0.7}]}`)))
	if w.Code != 200 {
		t.Fatalf("append: %d %s", w.Code, w.Body.String())
	}
	w = httptest.NewRecorder()
	srv1.ServeHTTP(w, httptest.NewRequest("GET", "/tables/fleet/topk?k=2", nil))
	if w.Code != 200 {
		t.Fatalf("query: %d", w.Code)
	}
	before := w.Body.String()

	// Second life: no process state survives but the data dir. Closing the
	// manager is the "crash" — it flushes nothing, only releases the
	// data-dir lock the next life needs.
	man1.Close()
	srv2, man2, err := buildServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w = httptest.NewRecorder()
	srv2.ServeHTTP(w, httptest.NewRequest("GET", "/tables/fleet/topk?k=2", nil))
	if w.Code != 200 || w.Body.String() != before {
		t.Fatalf("recovered answer differs:\nbefore %s\nafter  %d %s", before, w.Code, w.Body.String())
	}

	// -load replaces the recovered table (and the replacement is durable).
	csvPath := filepath.Join(dir, "fleet.csv")
	if err := os.WriteFile(csvPath, []byte("id,score,prob,group\nonly,50,0.5,\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	man2.Close()
	srv3, man3, err := buildServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := loadTables(srv3, csvPath); err != nil {
		t.Fatal(err)
	}
	var info server.TableInfo
	w = httptest.NewRecorder()
	srv3.ServeHTTP(w, httptest.NewRequest("GET", "/tables/fleet", nil))
	if err := json.Unmarshal(w.Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}
	if info.Tuples != 1 {
		t.Fatalf("-load did not replace recovered table: %+v", info)
	}
	man3.Close()
	srv4, man4, err := buildServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer man4.Close()
	w = httptest.NewRecorder()
	srv4.ServeHTTP(w, httptest.NewRequest("GET", "/tables/fleet", nil))
	if err := json.Unmarshal(w.Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}
	if info.Tuples != 1 {
		t.Fatalf("replacement not durable: %+v", info)
	}
}

// The fairness flag set: tuning flags without fairness are rejected, and
// the built server exposes (or omits) the stats block accordingly.
func TestFairnessFlags(t *testing.T) {
	bad := config{fairness: false, fairnessCfg: fairness.Config{Levels: 4}}
	if err := bad.validate(); err == nil {
		t.Fatal("tuning flags with -fairness=false were accepted")
	}

	stats := func(cfg config) server.StatsResponse {
		t.Helper()
		srv, _, err := buildServer(cfg)
		if err != nil {
			t.Fatal(err)
		}
		w := httptest.NewRecorder()
		srv.ServeHTTP(w, httptest.NewRequest("GET", "/debug/stats", nil))
		var st server.StatsResponse
		if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
			t.Fatalf("stats: %v", err)
		}
		return st
	}
	on := stats(config{fairness: true, fairnessCfg: fairness.Config{MaxConcurrent: 3}})
	if on.Fairness == nil || len(on.Fairness.Levels) != fairness.DefaultLevels {
		t.Fatalf("fairness block missing or malformed with -fairness: %+v", on.Fairness)
	}
	off := stats(config{})
	if off.Fairness != nil {
		t.Fatal("fairness block present with -fairness=false")
	}
}
