package main

import (
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"probtopk/internal/server"
)

const fleetCSV = `id,score,prob,group
car1,80,0.9,
car2,70,0.4,lane3
car3,65,0.5,lane3
`

func TestTableName(t *testing.T) {
	cases := map[string]string{
		"fleet.csv":           "fleet",
		"data/fleet.csv":      "fleet",
		"/abs/path/radar.CSV": "radar",
		"noext":               "noext",
	}
	for in, want := range cases {
		if got := tableName(in); got != want {
			t.Errorf("tableName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestLoadTables(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"fleet.csv", "radar.csv"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(fleetCSV), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	srv := server.New(server.Config{})
	names, err := loadTables(srv, filepath.Join(dir, "*.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 {
		t.Fatalf("names = %v", names)
	}

	// The loaded tables answer queries.
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, httptest.NewRequest("GET", "/tables/fleet/topk?k=2", nil))
	if w.Code != 200 {
		t.Fatalf("query status %d: %s", w.Code, w.Body.String())
	}
	var dist server.DistributionResponse
	if err := json.Unmarshal(w.Body.Bytes(), &dist); err != nil {
		t.Fatal(err)
	}
	if dist.K != 2 || len(dist.Lines) == 0 {
		t.Fatalf("dist = %+v", dist)
	}
}

func TestLoadTablesEmptyGlobIsNoop(t *testing.T) {
	names, err := loadTables(server.New(server.Config{}), "")
	if err != nil || names != nil {
		t.Fatalf("loadTables(\"\") = %v, %v", names, err)
	}
}

func TestLoadTablesErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := loadTables(server.New(server.Config{}), filepath.Join(dir, "*.csv")); err == nil {
		t.Fatal("empty match should error")
	}
	bad := filepath.Join(dir, "bad.csv")
	if err := os.WriteFile(bad, []byte("id,score,prob,group\nx,1,7,\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadTables(server.New(server.Config{}), bad); err == nil {
		t.Fatal("invalid CSV should error")
	}
}
