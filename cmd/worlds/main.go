// Command worlds enumerates the possible worlds of a small uncertain table
// (CSV with header id,score,prob,group) and the top-k vector(s) of each
// world — reproducing the paper's Figure 2 for the battlefield example.
//
// Usage:
//
//	worlds -k 2 soldiers.csv
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"probtopk/internal/uncertain"
	"probtopk/internal/worlds"
)

func main() {
	k := flag.Int("k", 2, "top-k size reported per world")
	limit := flag.Int("limit", 10000, "maximum number of worlds to enumerate")
	flag.Parse()

	if err := run(*k, *limit, flag.Arg(0), os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "worlds:", err)
		os.Exit(1)
	}
}

func run(k, limit int, path string, w io.Writer) error {
	var in io.Reader = os.Stdin
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	table, err := uncertain.ReadCSV(in)
	if err != nil {
		return err
	}
	p, err := uncertain.Prepare(table)
	if err != nil {
		return err
	}
	all, err := worlds.All(p, limit)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%d possible worlds\n", len(all))
	fmt.Fprintf(w, "%-4s  %-30s  %-10s  %s\n", "#", "world", "prob", fmt.Sprintf("top-%d", k))
	var mass float64
	for i, world := range all {
		mass += world.Prob
		var topk string
		if vs := worlds.TopKVectors(p, world, k); len(vs) > 0 {
			var parts []string
			for _, v := range vs {
				parts = append(parts, "("+strings.Join(p.IDs(v), ",")+")")
			}
			topk = strings.Join(parts, " ")
		} else {
			topk = "—"
		}
		fmt.Fprintf(w, "W%-3d  {%-28s}  %-10.6g  %s\n",
			i+1, strings.Join(p.IDs(world.Present), ","), world.Prob, topk)
	}
	fmt.Fprintf(w, "total probability: %.6f\n", mass)
	return nil
}
