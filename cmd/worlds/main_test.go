package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const soldierCSV = `id,score,prob,group
T1,49,0.4,
T2,60,0.4,soldier2
T3,110,0.4,soldier3
T4,80,0.3,soldier2
T5,56,1,
T6,58,0.5,soldier3
T7,125,0.3,soldier2
`

func TestRunFigure2(t *testing.T) {
	path := filepath.Join(t.TempDir(), "soldiers.csv")
	if err := os.WriteFile(path, []byte(soldierCSV), 0o600); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := run(2, 100, path, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "18 possible worlds") {
		t.Fatalf("expected 18 worlds:\n%s", out)
	}
	if !strings.Contains(out, "total probability: 1.000000") {
		t.Fatalf("world probabilities should sum to 1:\n%s", out)
	}
	// The most probable top-2 appears: world {T2,T5,T6} has top-2 (T2,T6).
	if !strings.Contains(out, "(T2,T6)") {
		t.Fatalf("missing (T2,T6) top-2:\n%s", out)
	}
}

func TestRunLimit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "soldiers.csv")
	if err := os.WriteFile(path, []byte(soldierCSV), 0o600); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := run(2, 5, path, &sb); err == nil {
		t.Fatal("limit 5 should fail on 18 worlds")
	}
}

func TestRunMissingFile(t *testing.T) {
	var sb strings.Builder
	if err := run(2, 10, "/nonexistent.csv", &sb); err == nil {
		t.Fatal("missing file should error")
	}
}
