package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const soldierCSV = `id,score,prob,group
T1,49,0.4,
T2,60,0.4,soldier2
T3,110,0.4,soldier3
T4,80,0.3,soldier2
T5,56,1,
T6,58,0.5,soldier3
T7,125,0.3,soldier2
`

const areaCSV = `id,prob,group,speed_limit,length,delay
seg1/b1,0.6,seg1,50,200,80
seg1/b2,0.4,seg1,50,200,240
seg2,1.0,,30,100,90
seg3/b1,0.5,seg3,60,500,100
seg3/b2,0.5,seg3,60,500,400
`

func writeFile(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "table.csv")
	if err := os.WriteFile(path, []byte(content), 0o600); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunSoldier(t *testing.T) {
	path := writeFile(t, soldierCSV)
	var sb strings.Builder
	if err := run(2, 3, 0, -1, 0, "main", "", "", path, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"mean 164.100",
		"U-Top2:  score 118.000  vector T2,T6  probability 0.2000",
		"3-Typical-Top2 (expected distance 6.600):",
		"score    235.000  vector T7,T3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunHistogram(t *testing.T) {
	path := writeFile(t, soldierCSV)
	var sb strings.Builder
	if err := run(2, 1, 0.001, 100, 50, "main", "", "", path, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "histogram (bucket width 50)") {
		t.Fatalf("missing histogram:\n%s", sb.String())
	}
}

func TestRunAlgorithms(t *testing.T) {
	for _, alg := range []string{"main", "state-expansion", "k-combo"} {
		path := writeFile(t, soldierCSV)
		var sb strings.Builder
		if err := run(2, 1, 0, -1, 0, alg, "", "", path, &sb); err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if !strings.Contains(sb.String(), "mean 164.100") {
			t.Fatalf("%s: wrong mean:\n%s", alg, sb.String())
		}
	}
	path := writeFile(t, soldierCSV)
	var sb strings.Builder
	if err := run(2, 1, 0, -1, 0, "nonsense", "", "", path, &sb); err == nil {
		t.Fatal("unknown algorithm should error")
	}
}

func TestRunScoreExpression(t *testing.T) {
	path := writeFile(t, areaCSV)
	var sb strings.Builder
	if err := run(2, 2, 0, -1, 0, "main", "speed_limit / (length / delay)", "", path, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	// seg1/b2 score = 50/(200/240) = 60; seg3/b2 = 60/(500/400) = 48.
	if !strings.Contains(out, "table: 5 tuples") {
		t.Fatalf("missing table summary:\n%s", out)
	}
	if !strings.Contains(out, "U-Top2") {
		t.Fatalf("missing U-Topk:\n%s", out)
	}
}

func TestRunWhereFilter(t *testing.T) {
	path := writeFile(t, areaCSV)
	var sb strings.Builder
	// Only seg3 rows (speed_limit 60) survive; k=1 over two exclusive bins.
	err := run(1, 1, 0, -1, 0, "main", "speed_limit / (length / delay)", "speed_limit >= 60", path, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "table: 2 tuples") {
		t.Fatalf("filter not applied:\n%s", sb.String())
	}
	// -where without -score is rejected.
	if err := run(1, 1, 0, -1, 0, "main", "", "a > 1", path, &sb); err == nil {
		t.Fatal("-where without -score should error")
	}
	// A filter matching nothing is rejected.
	if err := run(1, 1, 0, -1, 0, "main", "delay", "speed_limit > 999", path, &sb); err == nil {
		t.Fatal("empty filter result should error")
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	if err := run(2, 1, 0, -1, 0, "main", "", "", "/nonexistent/file.csv", &sb); err == nil {
		t.Fatal("missing file should error")
	}
	bad := writeFile(t, "id,score\nx,1\n")
	if err := run(2, 1, 0, -1, 0, "main", "", "", bad, &sb); err == nil {
		t.Fatal("bad csv should error")
	}
	area := writeFile(t, areaCSV)
	if err := run(2, 1, 0, -1, 0, "main", "no_such_col + 1", "", area, &sb); err == nil {
		t.Fatal("bad expression should error")
	}
}
