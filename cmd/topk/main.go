// Command topk runs a probabilistic top-k query over an uncertain table in
// CSV form and reports the score distribution, the U-Topk answer, and the
// c-Typical-Topk answers.
//
// Without -score, the CSV must have the header id,score,prob,group. With
// -score EXPR, the CSV is an uncertain relation — header columns id and prob
// (group optional) plus numeric attribute columns — and EXPR is the scoring
// expression over those attributes, as in the paper's §5.2 query:
//
//	topk -k 5 -c 3 table.csv
//	topk -k 10 -ptau 0.0001 -lines 500 -hist 25 < table.csv
//	topk -k 5 -score 'speed_limit / (length / delay)' area.csv
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"probtopk"
	"probtopk/internal/query"
)

func main() {
	k := flag.Int("k", 5, "number of tuples in a top-k vector")
	c := flag.Int("c", 3, "number of typical answers to report")
	ptau := flag.Float64("ptau", 0.001, "probability threshold pτ (0 = exact)")
	lines := flag.Int("lines", probtopk.DefaultMaxLines, "max distribution lines (0 = library default, negative = unlimited)")
	hist := flag.Float64("hist", 0, "histogram bucket width (0 = print raw lines)")
	alg := flag.String("algorithm", "main", "algorithm: main, state-expansion, k-combo")
	score := flag.String("score", "", "scoring expression over relation attributes ('' = CSV has a score column)")
	where := flag.String("where", "", "row filter predicate over relation attributes (requires -score)")
	flag.Parse()

	if err := run(*k, *c, *ptau, *lines, *hist, *alg, *score, *where, flag.Arg(0), os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "topk:", err)
		os.Exit(1)
	}
}

func run(k, c int, ptau float64, lines int, hist float64, alg, score, where, path string, w io.Writer) error {
	var in io.Reader = os.Stdin
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	table, err := loadTable(in, score, where)
	if err != nil {
		return err
	}
	opts := &probtopk.Options{Threshold: ptau, MaxLines: lines}
	if ptau == 0 {
		opts.Threshold = -1 // exact
	}
	switch alg {
	case "main":
		opts.Algorithm = probtopk.AlgorithmMain
	case "state-expansion":
		opts.Algorithm = probtopk.AlgorithmStateExpansion
	case "k-combo":
		opts.Algorithm = probtopk.AlgorithmKCombo
	default:
		return fmt.Errorf("unknown algorithm %q", alg)
	}

	dist, err := probtopk.TopKDistribution(table, k, opts)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "table: %d tuples, scan depth %d\n", table.Len(), dist.ScanDepth)
	fmt.Fprintf(w, "top-%d score: mass %.4f, mean %.3f, median %.3f, span [%.3f, %.3f]\n\n",
		k, dist.TotalMass(), dist.Mean(), dist.Median(), dist.Min(), dist.Max())

	if hist > 0 {
		fmt.Fprintf(w, "histogram (bucket width %g):\n", hist)
		for _, b := range dist.Histogram(hist) {
			fmt.Fprintf(w, "  [%10.3f, %10.3f)  %s %.4f\n", b.Lo, b.Hi, bar(b.Prob), b.Prob)
		}
	} else {
		fmt.Fprintf(w, "distribution (%d lines):\n", dist.Len())
		for _, l := range dist.Lines() {
			fmt.Fprintf(w, "  score %10.3f  prob %.4f  vector %s (p=%.4f)\n",
				l.Score, l.Prob, strings.Join(l.Vector, ","), l.VectorProb)
		}
	}

	if u, ok := dist.UTopK(); ok {
		fmt.Fprintf(w, "\nU-Top%d:  score %.3f  vector %s  probability %.4f\n",
			k, u.Score, strings.Join(u.Vector, ","), u.VectorProb)
	}
	typ, cost, err := dist.Typical(c)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%d-Typical-Top%d (expected distance %.3f):\n", c, k, cost)
	for _, l := range typ {
		fmt.Fprintf(w, "  score %10.3f  vector %s  probability %.4f\n",
			l.Score, strings.Join(l.Vector, ","), l.VectorProb)
	}
	return nil
}

// loadTable reads either a plain uncertain table (empty scoreExpr) or a
// relation whose score is computed from the expression, optionally filtered
// by a WHERE predicate first.
func loadTable(in io.Reader, scoreExpr, where string) (*probtopk.Table, error) {
	if scoreExpr == "" {
		if where != "" {
			return nil, fmt.Errorf("topk: -where requires -score (a relation input)")
		}
		return probtopk.ReadTableCSV(in)
	}
	rel, err := query.ReadCSV(in)
	if err != nil {
		return nil, err
	}
	if where != "" {
		if rel, err = rel.Filter(where); err != nil {
			return nil, err
		}
		if rel.Len() == 0 {
			return nil, fmt.Errorf("topk: no rows satisfy the filter %q", where)
		}
	}
	return rel.Table(scoreExpr)
}

func bar(p float64) string {
	n := int(p * 200)
	if n > 40 {
		n = 40
	}
	return strings.Repeat("█", n)
}
