package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"probtopk/internal/bench"
)

func TestCollectSingleFigures(t *testing.T) {
	figs, err := collect("3")
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 1 || figs[0].ID != "fig3" {
		t.Fatalf("figs = %+v", figs)
	}
	figs, err = collect("3, 9")
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 2 || figs[1].ID != "fig9" {
		t.Fatalf("figs = %v, %v", figs[0].ID, figs[1].ID)
	}
	figs, err = collect("13")
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 3 { // three subplots
		t.Fatalf("fig13 subplots = %d", len(figs))
	}
}

func TestCollectUnknown(t *testing.T) {
	if _, err := collect("99"); err == nil || !strings.Contains(err.Error(), "unknown figure") {
		t.Fatalf("err = %v", err)
	}
}

func TestRenderedFigure3(t *testing.T) {
	figs, err := collect("3")
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := bench.Render(&sb, figs[0]); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"fig3", "U-Topk", "164.1", "0.76"} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("render missing %q:\n%s", want, sb.String())
		}
	}
}

func TestCollectServing(t *testing.T) {
	figs, err := collect("serving")
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 1 || figs[0].ID != "serving" {
		t.Fatalf("figs = %+v", figs)
	}
	if len(figs[0].Series) != 2 {
		t.Fatalf("series = %d, want cold and hit", len(figs[0].Series))
	}
	for _, s := range figs[0].Series {
		if len(s.X) == 0 || len(s.X) != len(s.Y) {
			t.Fatalf("series %q: %d/%d points", s.Name, len(s.X), len(s.Y))
		}
	}
}

func TestWriteJSONSnapshot(t *testing.T) {
	figs, err := collect("3")
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := bench.WriteJSON(&sb, figs); err != nil {
		t.Fatal(err)
	}
	var decoded []struct {
		ID     string `json:"id"`
		Title  string `json:"title"`
		Series []struct {
			Name string    `json:"name"`
			X    []float64 `json:"x"`
			Y    []float64 `json:"y"`
		} `json:"series"`
		Markers []struct {
			Name  string  `json:"name"`
			Score float64 `json:"score"`
		} `json:"markers"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &decoded); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v\n%s", err, sb.String())
	}
	if len(decoded) != 1 || decoded[0].ID != "fig3" || len(decoded[0].Series) == 0 {
		t.Fatalf("decoded = %+v", decoded)
	}
	if len(decoded[0].Markers) == 0 {
		t.Fatal("fig3 should carry U-Topk/typical markers")
	}
}

func TestCollectMutation(t *testing.T) {
	if testing.Short() {
		t.Skip("runs slow queries to measure contention")
	}
	figs, err := collect("mutation")
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 1 || figs[0].ID != "mutation" {
		t.Fatalf("figs = %+v", figs)
	}
	if len(figs[0].Series) != 2 {
		t.Fatalf("series = %d, want uncontended and contended", len(figs[0].Series))
	}
	for _, s := range figs[0].Series {
		if len(s.X) == 0 || len(s.X) != len(s.Y) {
			t.Fatalf("series %q: %d/%d points", s.Name, len(s.X), len(s.Y))
		}
	}
}

// compareFixtures builds a baseline/new figure pair where `factor` scales
// every new Y value.
func compareFixtures(factor float64) (oldFigs, newFigs []*bench.Figure) {
	mk := func(scale float64) []*bench.Figure {
		return []*bench.Figure{{
			ID:    "durability",
			Title: "t",
			Series: []bench.Series{
				{Name: "append wal (ms)", X: []float64{0, 1, 2}, Y: []float64{1 * scale, 2 * scale, 3 * scale}},
				{Name: "append in-memory (ms)", X: []float64{0, 1, 2}, Y: []float64{0.5 * scale, 0.5 * scale, 0.5 * scale}},
			},
		}}
	}
	return mk(1), mk(factor)
}

func TestCompareWithinTolerancePasses(t *testing.T) {
	oldFigs, newFigs := compareFixtures(1.2) // 20% slower, tolerance 30%
	var sb strings.Builder
	if regs := compareFigures(&sb, oldFigs, newFigs, 0.30, 0.05); len(regs) != 0 {
		t.Fatalf("unexpected regressions: %v", regs)
	}
	if !strings.Contains(sb.String(), "durability") {
		t.Fatalf("report missing figure id:\n%s", sb.String())
	}
}

func TestCompareFailsOnRegression(t *testing.T) {
	oldFigs, newFigs := compareFixtures(1.5) // 50% slower
	var sb strings.Builder
	regs := compareFigures(&sb, oldFigs, newFigs, 0.30, 0.05)
	if len(regs) != 2 { // both series regressed
		t.Fatalf("regressions = %v", regs)
	}
	if !strings.Contains(sb.String(), "REGRESSION") {
		t.Fatalf("report missing REGRESSION marker:\n%s", sb.String())
	}
}

func TestCompareFailsOnMissingFigureOrSeries(t *testing.T) {
	oldFigs, newFigs := compareFixtures(1)
	newFigs[0].Series = newFigs[0].Series[:1] // drop one series
	if regs := compareFigures(&strings.Builder{}, oldFigs, newFigs, 0.30, 0.05); len(regs) != 1 ||
		!strings.Contains(regs[0], "missing") {
		t.Fatalf("regs = %v", regs)
	}
	if regs := compareFigures(&strings.Builder{}, oldFigs, nil, 0.30, 0.05); len(regs) != 1 ||
		!strings.Contains(regs[0], "missing") {
		t.Fatalf("regs = %v", regs)
	}
}

func TestRunCompareEndToEnd(t *testing.T) {
	dir := t.TempDir()
	oldFigs, newFigs := compareFixtures(1.05)
	write := func(name string, figs []*bench.Figure) string {
		path := filepath.Join(dir, name)
		var sb strings.Builder
		if err := bench.WriteJSON(&sb, figs); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	oldPath, newPath := write("old.json", oldFigs), write("new.json", newFigs)
	if err := runCompare(oldPath, newPath, 0.30, 0.05); err != nil {
		t.Fatalf("within tolerance: %v", err)
	}
	_, slow := compareFixtures(2)
	slowPath := write("slow.json", slow)
	if err := runCompare(oldPath, slowPath, 0.30, 0.05); err == nil {
		t.Fatal("2x regression passed the gate")
	}
	if err := runCompare(oldPath, filepath.Join(dir, "nope.json"), 0.30, 0.05); err == nil {
		t.Fatal("missing file passed the gate")
	}
}
