package main

import (
	"strings"
	"testing"

	"probtopk/internal/bench"
)

func TestCollectSingleFigures(t *testing.T) {
	figs, err := collect("3")
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 1 || figs[0].ID != "fig3" {
		t.Fatalf("figs = %+v", figs)
	}
	figs, err = collect("3, 9")
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 2 || figs[1].ID != "fig9" {
		t.Fatalf("figs = %v, %v", figs[0].ID, figs[1].ID)
	}
	figs, err = collect("13")
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 3 { // three subplots
		t.Fatalf("fig13 subplots = %d", len(figs))
	}
}

func TestCollectUnknown(t *testing.T) {
	if _, err := collect("99"); err == nil || !strings.Contains(err.Error(), "unknown figure") {
		t.Fatalf("err = %v", err)
	}
}

func TestRenderedFigure3(t *testing.T) {
	figs, err := collect("3")
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := bench.Render(&sb, figs[0]); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"fig3", "U-Topk", "164.1", "0.76"} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("render missing %q:\n%s", want, sb.String())
		}
	}
}
