// Command topk-bench regenerates the figures of the paper's empirical study
// (§5). Each figure is printed as an ASCII chart or table with the U-Topk
// and 3-Typical positions marked; -csv emits machine-readable rows and
// -json emits one JSON array of figure objects ({id, title, series,
// markers, notes}), the snapshot format tracked across PRs:
//
//	topk-bench -fig 9 -json > BENCH_fig9.json
//	topk-bench -fig serving -json > BENCH_serving.json
//	topk-bench -fig mutation -json > BENCH_mutation.json
//	topk-bench -fig durability -json > BENCH_durability.json
//
// Besides the paper's numbered figures, the special figures "serving"
// (HTTP serving path, cold vs derived-answer cache hit), "mutation"
// (append latency uncontended vs under concurrent slow queries — the
// snapshot-isolation guarantee), "dynamic" (mid-rank push cost of the
// suffix-era flat slice vs the O(log n) dynamic prepared index),
// "durability" (append latency in-memory vs WAL vs WAL+fsync — the price of
// each durability level), "dpkernel" (per-cell cost of the DP's fused
// combine+coalesce kernel, in µs) and "overload" (well-behaved-client
// latency percentiles with and without a flooding client behind the SFB
// throttler, plus the recompute cost each cache admission policy pays)
// measure this build's serving stack; they are not part of -fig all.
//
// Usage:
//
//	topk-bench -fig all
//	topk-bench -fig 3,9,13
//	topk-bench -fig 8 -csv
//	topk-bench -fig serving -json
//
// # Benchmark-regression gate
//
// -compare checks a fresh JSON snapshot against a baseline and exits
// non-zero when any series' MEDIAN is more than -tolerance (default 0.30
// = 30%) slower AND the difference clears the -floor noise floor (default
// 0.05 ms) — the CI gate that keeps the serving/mutation/durability
// figures from silently regressing. Compare snapshots from the same
// machine: against a baseline generated on different hardware the ratios
// measure the hardware (CI regenerates the baseline from the base commit
// on the same runner):
//
//	topk-bench -fig serving,mutation,durability -json > BENCH_new.json
//	topk-bench -compare -tolerance 0.30 BENCH_baseline.json BENCH_new.json
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"probtopk/internal/bench"
)

func main() {
	fig := flag.String("fig", "all", "comma-separated figure numbers (3, 8, 9, 10, 11, 12, 13, 14, 15, 16), 'serving', 'mutation', 'dynamic', 'durability', 'dpkernel', 'overload', or 'all'")
	csv := flag.Bool("csv", false, "emit CSV rows instead of ASCII charts")
	jsonOut := flag.Bool("json", false, "emit one JSON array of figure objects instead of ASCII charts")
	compare := flag.Bool("compare", false, "compare two BENCH_*.json snapshots (old new) and fail on regression")
	tolerance := flag.Float64("tolerance", defaultTolerance, "allowed relative slowdown per series before -compare fails")
	floor := flag.Float64("floor", defaultFloor, "absolute slack in ms a -compare difference must also exceed (noise floor for µs-scale series)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the figure run to this file (go tool pprof)")
	memProfile := flag.String("memprofile", "", "write an allocation profile taken after the figure run to this file")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "topk-bench:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "topk-bench:", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "topk-bench:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live-heap accounting before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "topk-bench:", err)
			}
		}()
	}

	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "topk-bench: -compare needs two arguments: old.json new.json")
			os.Exit(2)
		}
		if err := runCompare(flag.Arg(0), flag.Arg(1), *tolerance, *floor); err != nil {
			fmt.Fprintln(os.Stderr, "topk-bench:", err)
			os.Exit(1)
		}
		return
	}
	if *csv && *jsonOut {
		fmt.Fprintln(os.Stderr, "topk-bench: -csv and -json are mutually exclusive")
		os.Exit(1)
	}
	figs, err := collect(*fig)
	if err != nil {
		fmt.Fprintln(os.Stderr, "topk-bench:", err)
		os.Exit(1)
	}
	if *jsonOut {
		if err := bench.WriteJSON(os.Stdout, figs); err != nil {
			fmt.Fprintln(os.Stderr, "topk-bench:", err)
			os.Exit(1)
		}
		return
	}
	for _, f := range figs {
		if *csv {
			err = bench.WriteCSV(os.Stdout, f)
		} else {
			err = bench.Render(os.Stdout, f)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "topk-bench:", err)
			os.Exit(1)
		}
	}
}

func collect(spec string) ([]*bench.Figure, error) {
	if spec == "all" {
		return bench.All()
	}
	var figs []*bench.Figure
	one := func(f *bench.Figure, err error) error {
		if err != nil {
			return err
		}
		figs = append(figs, f)
		return nil
	}
	many := func(fs []*bench.Figure, err error) error {
		if err != nil {
			return err
		}
		figs = append(figs, fs...)
		return nil
	}
	for _, tok := range strings.Split(spec, ",") {
		var err error
		switch strings.TrimSpace(tok) {
		case "3":
			err = one(bench.Fig3())
		case "8":
			err = many(bench.Fig8())
		case "9":
			err = one(bench.Fig9())
		case "10":
			err = one(bench.Fig10())
		case "11":
			err = one(bench.Fig11())
		case "12":
			err = one(bench.Fig12())
		case "13":
			err = many(bench.Fig13())
		case "14":
			err = one(bench.Fig14())
		case "15":
			err = one(bench.Fig15())
		case "16":
			err = one(bench.Fig16())
		case "serving":
			err = one(bench.FigServing())
		case "mutation":
			err = one(bench.FigMutation())
		case "dynamic":
			err = one(bench.FigDynamic())
		case "durability":
			err = one(bench.FigDurability())
		case "dpkernel":
			err = one(bench.FigDPKernel())
		case "overload":
			err = one(bench.FigOverload())
		default:
			err = fmt.Errorf("unknown figure %q", tok)
		}
		if err != nil {
			return nil, err
		}
	}
	return figs, nil
}
