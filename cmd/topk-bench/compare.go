package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"probtopk/internal/bench"
)

// defaultTolerance is the allowed relative slowdown before -compare fails:
// a series may be up to 30% slower than the baseline (CI runner noise)
// before the gate trips. defaultFloor is the absolute slack in
// milliseconds a difference must additionally clear — see compareFigures.
const (
	defaultTolerance = 0.30
	defaultFloor     = 0.05
)

// loadFigures decodes one BENCH_*.json snapshot (the array topk-bench
// -json emits).
func loadFigures(path string) ([]*bench.Figure, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var figs []*bench.Figure
	if err := json.Unmarshal(data, &figs); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return figs, nil
}

// seriesMedian is the median Y of a series (the benchmark figures plot
// latencies in milliseconds, so lower is better). The median, not the
// mean: the figures sample microsecond-scale operations whose noise is
// one-sided (GC pauses, cold caches inflate a few samples), and a gate on
// the mean would trip on a single outlier.
func seriesMedian(s bench.Series) (float64, bool) {
	if len(s.Y) == 0 {
		return 0, false
	}
	ys := append([]float64(nil), s.Y...)
	sort.Float64s(ys)
	n := len(ys)
	if n%2 == 1 {
		return ys[n/2], true
	}
	return (ys[n/2-1] + ys[n/2]) / 2, true
}

// compareFigures checks every baseline series against the fresh run: a
// series whose median exceeds the baseline median by more than tolerance
// AND by more than the absolute floor — or a figure/series the fresh run
// no longer produces — is a regression. The floor exists because the
// microsecond-scale series (cache hits, in-memory appends) drift tens of
// microseconds between runs on shared CI hardware whatever the build does;
// a sub-floor difference is noise, while any regression worth gating on
// clears a 0.05 ms floor easily. It writes a per-series report to w and
// returns the regression messages.
func compareFigures(w io.Writer, oldFigs, newFigs []*bench.Figure, tolerance, floor float64) []string {
	newByID := make(map[string]*bench.Figure, len(newFigs))
	for _, f := range newFigs {
		newByID[f.ID] = f
	}
	var regressions []string
	fmt.Fprintf(w, "%-14s %-28s %12s %12s %8s\n", "figure", "series", "base median", "new median", "ratio")
	for _, of := range oldFigs {
		nf, ok := newByID[of.ID]
		if !ok {
			regressions = append(regressions, fmt.Sprintf("figure %q missing from the new snapshot", of.ID))
			continue
		}
		newByName := make(map[string]bench.Series, len(nf.Series))
		for _, s := range nf.Series {
			newByName[s.Name] = s
		}
		for _, os := range of.Series {
			oldMed, ok := seriesMedian(os)
			if !ok {
				continue // empty baseline series constrains nothing
			}
			ns, ok := newByName[os.Name]
			if !ok {
				regressions = append(regressions, fmt.Sprintf("%s: series %q missing from the new snapshot", of.ID, os.Name))
				continue
			}
			newMed, ok := seriesMedian(ns)
			if !ok {
				regressions = append(regressions, fmt.Sprintf("%s: series %q is empty in the new snapshot", of.ID, os.Name))
				continue
			}
			ratio := 0.0
			if oldMed > 0 {
				ratio = newMed / oldMed
			}
			verdict := ""
			if oldMed > 0 && newMed > oldMed*(1+tolerance) && newMed-oldMed > floor {
				verdict = "  REGRESSION"
				regressions = append(regressions, fmt.Sprintf(
					"%s / %s: %.4g -> %.4g (%.0f%% over the baseline, tolerance %.0f%%)",
					of.ID, os.Name, oldMed, newMed, (ratio-1)*100, tolerance*100))
			}
			fmt.Fprintf(w, "%-14s %-28s %12.4g %12.4g %7.2fx%s\n",
				of.ID, os.Name, oldMed, newMed, ratio, verdict)
		}
	}
	return regressions
}

// runCompare is the -compare entry point: old and new are BENCH_*.json
// paths; a non-nil error means the gate failed.
func runCompare(oldPath, newPath string, tolerance, floor float64) error {
	oldFigs, err := loadFigures(oldPath)
	if err != nil {
		return err
	}
	newFigs, err := loadFigures(newPath)
	if err != nil {
		return err
	}
	regressions := compareFigures(os.Stdout, oldFigs, newFigs, tolerance, floor)
	if len(regressions) > 0 {
		return fmt.Errorf("%d benchmark regression(s):\n  %s",
			len(regressions), strings.Join(regressions, "\n  "))
	}
	fmt.Printf("no regressions beyond %.0f%% (and %.3g ms) against %s\n", tolerance*100, floor, oldPath)
	return nil
}
