// Package probtopk implements top-k queries on uncertain (probabilistic)
// relations with score-distribution semantics, reproducing
//
//	Tingjian Ge, Stan Zdonik, Samuel Madden.
//	"Top-k Queries on Uncertain Data: On Score Distribution and Typical
//	Answers." SIGMOD 2009.
//
// # Data model
//
// An uncertain table holds tuples with a ranking score and a membership
// probability; tuples sharing a mutual-exclusion (ME) group key are
// alternatives of which at most one can exist (§2.1 of the paper). Under
// possible-worlds semantics, every world has one or more top-k tuple vectors
// (several only under score ties, §2.3), and the total score of the top-k is
// a random variable.
//
// # What the library computes
//
// TopKDistribution returns that random variable's full probability mass
// function — the paper's central object — computed with a dynamic program
// that is linear in the scan depth, handles ME groups via rule-tuple
// compression and per-unit exit points, handles non-injective (tied) scoring
// functions, and bounds its output size with the paper's line-coalescing
// strategy. Each distribution line also carries the most probable top-k
// vector achieving that score.
//
// Typical selects the c-Typical-Topk answers (Definitions 1 and 2): the c
// vectors whose scores minimize the expected distance from a random top-k
// score. UTopK, UKRanks, PTk and GlobalTopK provide the pre-existing
// semantics the paper compares against.
//
// # Snapshots and mutation
//
// A Table is the mutable builder of the model; everything above it works on
// the immutable Snapshot it publishes. Table.Snapshot freezes the current
// contents under a process-unique identity, copy-on-write: an unchanged
// table hands out the same snapshot on every call (so caches keep
// hitting), and a mutation lazily mints a fresh one without copying any
// tuples. A snapshot, once obtained, never changes — queries over it hold
// no lock, see exactly the state it froze, and can run while the owning
// table keeps mutating; a multi-step read (distribution, then baselines,
// then typical sets over one Snapshot) is guaranteed a consistent state
// throughout. Because identities are never reused within a process, they
// are sound cache keys: an answer derived from a superseded snapshot is
// unreachable by construction, so cached answers can never be stale —
// not across mutations, clones, or delete/recreate cycles.
//
// # Serving engine
//
// All queries route through a reusable Engine built for repeated queries
// over slowly-changing data. The prepared (validated, sorted, indexed) form
// of each queried state is cached keyed by its snapshot identity —
// repeated queries over an unchanged table skip preparation entirely, and
// any mutation transparently invalidates. Per-query dynamic-programming
// scratch is pooled, so steady-state queries allocate near-zero, with
// results bit-identical to fresh allocation. Engine.TopKDistributionBatch
// evaluates many (k, threshold) queries against one table, sharing the
// preparation and scan and fanning out over a bounded worker pool. Every
// query method has a *Snapshot form (TopKDistributionSnapshot, the
// baseline semantics, batches) for lock-free reads concurrent with
// mutation. The package-level functions use a shared default engine;
// construct one with NewEngine to isolate cache capacity and statistics
// per workload.
//
// # Dynamic index
//
// Mutation-heavy workloads are served by a fully dynamic prepared index
// (internal/uncertain's Index): a persistent order-statistic treap over the
// canonical rank order whose subtree aggregates answer prefix sums in
// O(log n), with per-ME-group sub-treaps replacing the flat partial-sum
// tables. Insert, Delete and Update cost O(log n) structural work wherever
// in the rank order the change lands — there is no O(n) shift and no
// ME-churn full-rebuild fallback — and the flat prepared form the dynamic
// program consumes is materialized lazily, re-deriving only the rank suffix
// below the lowest changed position. Materialized answers are bit-identical
// to preparing the same contents from scratch (a randomized differential
// harness and fuzzer enforce this operation by operation), and an unchanged
// index keeps returning the same prepared value, so downstream memos stay
// warm. Because the tree is persistent (mutations path-copy, never touching
// published nodes), freezing the index is O(1): the server's tables and
// Stream windows attach frozen index views to the snapshots they publish,
// and the engine materializes from the view instead of sorting — mutation
// cost on the serving path drops from O(n log n) per re-prepare to
// polylogarithmic per operation (the topk-bench "dynamic" figure tracks the
// win; at a 100,000-tuple window a mid-rank push is ~130x faster than the
// retired suffix-era maintenance).
//
// Stream maintains a sliding window on exactly this index: each Push
// inserts the new tuple and deletes the evicted one in O(log W); repeated
// queries over an unchanged window reuse the materialized prepared state
// outright (Stream.Stats counts how pushes and queries resolved).
// Stream.Freeze publishes the window contents as a Snapshot, bridging the
// single-owner window to concurrent engine queries.
//
// # HTTP serving
//
// cmd/topkd serves the whole query surface over HTTP/JSON: named tables
// uploaded as CSV or JSON and mutated by appending tuples, with endpoints
// for top-k distributions (single and batched), c-typical answer sets and
// the baseline semantics, all routed through one shared Engine. The server
// publishes each table state as an atomic snapshot: queries load it and
// hold nothing while the dynamic program runs, so a slow query never
// delays an append and appends never wait behind queries (the
// mutate-under-query benchmark and the "mutation" figure of topk-bench
// track this). Successful answers are additionally cached as encoded JSON
// keyed by (table, snapshot identity, canonical query fingerprint), so
// repeated identical queries skip the dynamic program entirely, and a
// cached answer can never be served stale, however fills race with
// mutations; GET /debug/stats exposes the counters. See internal/server
// for the endpoint reference and the repository README for a curl
// quickstart.
//
// # Overload protection & fairness
//
// topkd ships with admission control on (-fairness=false disables it),
// built so that protection only engages under genuine shortage. Queries
// that miss the derived-answer cache must acquire a bounded compute slot
// before running the dynamic program; cache hits never touch the gate, so
// warm traffic is structurally immune to shedding. When the gate is
// saturated a request is shed with 429 + Retry-After, and the shed is
// charged to the client that caused it: a Stochastic Fair BLUE throttler
// (internal/server/fairness) hashes each client — the X-Topk-Client
// header, falling back to the remote IP — into a few levels of
// constant-memory buckets whose drop probability rises on queue-full
// sheds and decays when the pressure stops; a client is dropped at the
// door only when every one of its buckets is hot, so well-behaved
// clients colliding with a flooder on some level keep a clean bucket
// elsewhere and pass (per-level seed rotation makes even a full
// collision transient). Concurrent identical cold queries coalesce into
// one flight (internal/server/flight) keyed by table, snapshot identity
// and canonical fingerprint — a stampede runs the dynamic program once,
// and the never-reused snapshot identity in the key makes a stale fill
// impossible however mutations race the flight. The answer cache itself
// admits by measured recompute cost (GDSF), so one expensive answer is
// not evicted to make room for a churn of cheap one-offs. GET
// /debug/stats reports the shed counters, per-client attribution and
// per-level bucket occupancy; the topk-bench "overload" figure and the
// CI overload drill hold the guarantee in place: a flooding client is
// shed while a well-behaved client sees zero errors and an unchanged
// p99.
//
// # Durability
//
// With topkd -data-dir, hosted tables survive restarts: every mutation is
// appended to a segmented, CRC32C-framed write-ahead log BEFORE its new
// snapshot is published (internal/wal), and the registry is periodically
// checkpointed into a versioned snapshot file that truncates the WAL
// behind it (internal/persist). -fsync selects the policy: "always" (the
// default) fsyncs each mutation before acknowledging it, so an
// acknowledged mutation survives a machine crash; "batch" gives the SAME
// guarantee via group commit — mutations arriving concurrently on one
// shard share a single write+fsync, multiplying aggregate durable-append
// throughput under concurrency, at the price of at most -max-batch-delay
// plus one in-flight fsync of added latency (the default delay of 0 uses
// no timer: a commit carries what queued during the previous fsync, so a
// lone writer is unaffected). A failed group fsync rejects every mutation
// in the batch with a 503, rolls their records back off disk and marks
// the log broken, exactly as a failed solo fsync does; per-table ordering
// of logged and published mutations is identical under every policy.
// -fsync=never is much faster and still recovers a clean prefix of the
// history. Recovery
// replays snapshot + WAL, truncating a torn or corrupt tail cleanly
// rather than mis-replaying it. Snapshot identities are process-unique
// and re-minted on every boot, so recovered tables can never collide with
// any cache entry from a previous life. Queries are unaffected by all of
// this — they read immutable snapshots and never touch the log. The
// crash-injection property test (internal/persist/crashtest) drives
// randomized mutate/checkpoint/crash/recover interleavings and asserts
// recovered tables answer bit-identically to the pre-crash oracle.
//
// # Sharding
//
// topkd -shards N (default GOMAXPROCS) splits the serving stack N ways by
// table name — shard = fnv32a(name) % N (persist.ShardOf) routes the
// registry slice, the mutation/durability mutex and the WAL segment
// sequence (wal-sNN-%08d.seg); the prepared-query cache is split into N
// partitions of its own, routed by table identity (NewEngineSharded). So
// durable mutations of tables on different shards — clone, validate, log,
// fsync — proceed in parallel instead of serializing behind one global
// mutex. Queries are unaffected:
// they were already lock-free over immutable snapshots, and answers are
// byte-identical at any shard count. The snapshot file (format v2)
// records one checkpoint watermark per shard; a data directory written
// under a different shard count — including by a pre-sharding build
// (format v1) — is migrated in place at boot, atomically: the directory
// is readable by exactly one layout at every crash point.
// BenchmarkAppendDurableSharded tracks the aggregate durable-append
// throughput gain, and GET /debug/stats reports per-shard counters.
//
// # Replication
//
// topkd -repl-addr makes a durable leader stream its committed WAL
// frames to follower processes started with topkd -follow; each
// follower replays the stream into its own registry (internal/repl) and
// serves the full read surface from local snapshots. Frames are tapped
// after the fsync that acknowledges them, so a follower only ever
// serves acknowledged-durable state — a record whose group-commit fsync
// failed is rolled back on the leader and never shipped. Follower reads
// never touch the leader: a stalled or dead leader leaves queries
// answering at full speed from the last replayed state. Followers are
// memoryless across restarts — on (re)connect the leader continues from
// retained WAL segments or, past a checkpoint truncation, resyncs a
// table snapshot at the checkpoint watermark plus the WAL tail — and
// reconnect with jittered exponential backoff. Per-shard staleness
// (records applied, position vs. the leader's committed position,
// bytes behind, age) is reported under GET /debug/stats; client writes
// on a follower answer 403 with an X-Topk-Leader header naming the
// leader. The daemon also shuts down gracefully on SIGINT/SIGTERM:
// in-flight HTTP drains under -shutdown-timeout, then replication
// closes, then the WAL.
//
// # Quick start
//
//	table := probtopk.NewTable()
//	table.AddIndependent("T1", 49, 0.4)
//	table.AddExclusive("T2", "soldier2", 60, 0.4)
//	// ... more tuples ...
//	dist, err := probtopk.TopKDistribution(table, 2, nil)
//	if err != nil { ... }
//	fmt.Println(dist.Mean(), dist.Median())
//	typ, _, err := dist.Typical(3)      // 3-Typical-Top2 answers
//	u, ok := dist.UTopK()               // the U-Topk baseline answer
//
// See the examples directory for complete programs, DESIGN.md for the system
// inventory, and EXPERIMENTS.md for the reproduction of every figure in the
// paper's evaluation.
package probtopk
