package probtopk

import (
	"probtopk/internal/stream"
)

// Stream is a sliding window over an uncertain tuple stream, extending the
// paper's semantics to the continuous setting its related work points at
// (sliding-window top-k on uncertain streams). The window holds the most
// recent tuples; TopKDistribution answers the paper's query over the current
// contents. Not safe for concurrent use.
type Stream struct {
	w *stream.Window
}

// NewStream creates a sliding window holding the most recent capacity
// tuples.
func NewStream(capacity int) (*Stream, error) {
	w, err := stream.NewWindow(capacity)
	if err != nil {
		return nil, err
	}
	return &Stream{w: w}, nil
}

// Push appends a tuple, evicting and returning the oldest one when the
// window is full. ME group constraints bind among the members currently in
// the window; a group whose in-window probabilities exceed 1 surfaces as an
// error on the next query, and heals as members slide out.
func (s *Stream) Push(t Tuple) (evicted *Tuple, err error) {
	return s.w.Push(t)
}

// Len returns the number of tuples currently in the window.
func (s *Stream) Len() int { return s.w.Len() }

// Capacity returns the window size.
func (s *Stream) Capacity() int { return s.w.Capacity() }

// Tuples returns the window contents in rank order.
func (s *Stream) Tuples() []Tuple { return s.w.Snapshot() }

// TopKDistribution computes the top-k score distribution of the current
// window contents; options as in the package-level TopKDistribution. The
// result supports the same statistics, Typical and UTopK accessors.
func (s *Stream) TopKDistribution(k int, opts *Options) (*Distribution, error) {
	params, _ := opts.resolve()
	res, err := s.w.TopK(k, params)
	if err != nil {
		return nil, err
	}
	if opts != nil && opts.Normalize {
		res.Dist.Normalize()
	}
	return &Distribution{dist: res.Dist, prepared: res.Prepared, ScanDepth: res.WindowLen, K: k}, nil
}
