package probtopk

import (
	"fmt"

	"probtopk/internal/core"
	"probtopk/internal/stream"
)

// Stream is a sliding window over an uncertain tuple stream, extending the
// paper's semantics to the continuous setting its related work points at
// (sliding-window top-k on uncertain streams). The window holds the most
// recent tuples; TopKDistribution answers the paper's query over the current
// contents.
//
// The window maintains its rank order in a fully dynamic prepared index:
// every Push inserts the new tuple and deletes the evicted one with O(log W)
// structural work, wherever in the rank order they land — ME-group churn no
// longer forces a full rebuild. The flat prepared form the query consumes is
// materialized lazily, re-deriving only the rank suffix below the lowest
// changed position, and repeated queries over an unchanged window reuse it
// outright; answers are bit-identical to preparing the window contents from
// scratch. Not safe for concurrent use.
type Stream struct {
	w *stream.Window
}

// NewStream creates a sliding window holding the most recent capacity
// tuples.
func NewStream(capacity int) (*Stream, error) {
	w, err := stream.NewWindow(capacity)
	if err != nil {
		return nil, err
	}
	return &Stream{w: w}, nil
}

// Push appends a tuple, evicting and returning the oldest one when the
// window is full. ME group constraints bind among the members currently in
// the window; a group whose in-window probabilities exceed 1 surfaces as an
// error on the next query, and heals as members slide out.
func (s *Stream) Push(t Tuple) (evicted *Tuple, err error) {
	return s.w.Push(t)
}

// Len returns the number of tuples currently in the window.
func (s *Stream) Len() int { return s.w.Len() }

// Capacity returns the window size.
func (s *Stream) Capacity() int { return s.w.Capacity() }

// Tuples returns the window contents in rank order.
func (s *Stream) Tuples() []Tuple { return s.w.Snapshot() }

// Freeze publishes the current window contents as an immutable Snapshot
// with a fresh identity. The Stream itself is single-owner, but the
// returned snapshot is not: hand it to an Engine (TopKDistributionSnapshot,
// the baseline semantics, batches) from any goroutine while the owner keeps
// pushing — the frozen contents never change, and the engine caches the
// preparation under the snapshot's identity. This is the bridge from the
// streaming window to the concurrent serving layer.
func (s *Stream) Freeze() (*Snapshot, error) { return s.w.Freeze() }

// StreamStats counts a Stream's dynamic-index maintenance: how pushes and
// queries resolved against the incrementally maintained prepared state.
type StreamStats struct {
	// CachedQueries is the number of queries that reused the memoized
	// prepared state without any rebuild (no pushes since the last query).
	CachedQueries int
	// SuffixRebuilds is the number of materializations that reused the
	// unchanged higher-ranked prefix of the previous prepared state.
	SuffixRebuilds int
	// FullRebuilds is the number of materializations from scratch (only the
	// first successful build — ME churn no longer forces one).
	FullRebuilds int
	// PolylogMutations is the number of index mutations (inserts and
	// evictions), each costing O(log W) structural work.
	PolylogMutations int
}

// Stats returns the window's prepared-state maintenance counters.
func (s *Stream) Stats() StreamStats {
	st := s.w.Stats()
	return StreamStats{
		CachedQueries:    st.CachedQueries,
		SuffixRebuilds:   st.SuffixRebuilds,
		FullRebuilds:     st.FullRebuilds,
		PolylogMutations: st.PolylogMutations,
	}
}

// TopKDistribution computes the top-k score distribution of the current
// window contents; options as in the package-level TopKDistribution,
// including Options.Algorithm — all three algorithms run against the
// window's incrementally maintained prepared state. The result supports the
// same statistics, Typical and UTopK accessors.
func (s *Stream) TopKDistribution(k int, opts *Options) (*Distribution, error) {
	params, alg := opts.resolve()
	params.K = k
	var (
		res *stream.Result
		err error
	)
	switch alg {
	case AlgorithmMain:
		res, err = s.w.TopK(k, params)
	case AlgorithmStateExpansion, AlgorithmKCombo:
		prep, perr := s.w.Prepared()
		if perr != nil {
			return nil, perr
		}
		var cres *core.Result
		if alg == AlgorithmStateExpansion {
			cres, err = core.StateExpansion(prep, params)
		} else {
			cres, err = core.KCombo(prep, params)
		}
		if err == nil {
			res = &stream.Result{Dist: cres.Dist, Prepared: prep,
				WindowLen: s.w.Len(), ScanDepth: cres.ScanDepth}
		}
	default:
		return nil, fmt.Errorf("probtopk: unknown algorithm %v", alg)
	}
	if err != nil {
		return nil, err
	}
	if opts != nil && opts.Normalize {
		res.Dist.Normalize()
	}
	return &Distribution{dist: res.Dist, prepared: res.Prepared, ScanDepth: res.ScanDepth, K: k}, nil
}
