package probtopk

import (
	"errors"
	"fmt"
	"io"

	"probtopk/internal/core"
	"probtopk/internal/pmf"
	"probtopk/internal/uncertain"
)

// Tuple is one uncertain tuple: an identifier, a ranking score, a membership
// probability in (0, 1], and an optional ME group key ("" = independent).
type Tuple = uncertain.Tuple

// Table is an uncertain table: tuples plus the mutual-exclusion rules
// implied by their group keys. Create one with NewTable, populate it with
// Add/AddIndependent/AddExclusive, then query it with TopKDistribution.
type Table = uncertain.Table

// Snapshot is an immutable snapshot of a table's contents with a
// process-unique identity, obtained from Table.Snapshot (or frozen from raw
// tuples with NewSnapshot). Snapshots are the unit of isolation for
// concurrent serving: a query over a Snapshot holds no lock and sees
// exactly the state the snapshot was taken from, while the owning table
// keeps mutating. Unchanged tables hand out the same snapshot, so the
// engine's prepared cache — keyed by Snapshot.ID — still hits across
// repeated queries; a mutation lazily mints a fresh snapshot (copy-on-write,
// no tuple copying) whose new identity transparently invalidates.
type Snapshot = uncertain.Snapshot

// NewSnapshot freezes a copy of the given tuples as a standalone snapshot
// with a fresh identity.
func NewSnapshot(tuples []Tuple) *Snapshot { return uncertain.NewSnapshot(tuples) }

// NewTable returns an empty uncertain table.
func NewTable() *Table { return uncertain.NewTable() }

// ReadTableCSV parses a table from CSV with header id,score,prob,group.
func ReadTableCSV(r io.Reader) (*Table, error) { return uncertain.ReadCSV(r) }

// Algorithm selects which §3 algorithm computes the distribution.
type Algorithm int

const (
	// AlgorithmMain is the paper's dynamic program (§3.2–3.4), the default.
	AlgorithmMain Algorithm = iota
	// AlgorithmStateExpansion is the exponential baseline of Figure 4.
	AlgorithmStateExpansion
	// AlgorithmKCombo enumerates k-combinations, O(n^k).
	AlgorithmKCombo
)

// String returns the algorithm's name.
func (a Algorithm) String() string {
	switch a {
	case AlgorithmMain:
		return "main"
	case AlgorithmStateExpansion:
		return "state-expansion"
	case AlgorithmKCombo:
		return "k-combo"
	default:
		return fmt.Sprintf("algorithm(%d)", int(a))
	}
}

// DefaultMaxLines is the default cap on distribution lines (the paper's c';
// §3.2.1 suggests a constant around 200).
const DefaultMaxLines = 200

// Options tune a TopKDistribution computation. The zero value (or nil) means:
// main algorithm, threshold 0.001, 200 lines, paper-style plain-average
// coalescing, unnormalized output.
type Options struct {
	// Algorithm selects the computation strategy.
	Algorithm Algorithm
	// Threshold is the paper's pτ: vectors with probability at or below it
	// may be dropped and the Theorem-2 scan depth derives from it.
	//
	// SENTINEL: the zero value does NOT mean "threshold zero". Threshold ==
	// 0 — including the zero Options value and a nil *Options — is replaced
	// by the 0.001 default the paper's experiments use. An exact,
	// unthresholded computation is requested with any NEGATIVE value (or
	// with Exact(), which also lifts the line cap). There is no way to ask
	// for a literal threshold of exactly 0 other than a negative sentinel;
	// positive values are used as given.
	Threshold float64
	// MaxLines caps the number of lines in every intermediate and final
	// distribution. Negative means unlimited; 0 is replaced by
	// DefaultMaxLines.
	MaxLines int
	// WeightedCoalesce switches line coalescing from the paper's plain
	// average to a probability-weighted average that preserves the mean.
	WeightedCoalesce bool
	// Normalize rescales the final distribution to total mass 1. Without it
	// the total mass is Pr(a top-k vector exists), i.e. that at least k
	// tuples co-exist.
	Normalize bool
	// Parallelism lets the main algorithm process its independent
	// dynamic-programming units on up to this many goroutines. The result is
	// bit-identical to serial execution. The zero value auto-tunes: large
	// queries fan out over min(GOMAXPROCS, units) workers, small ones run
	// serially. 1 or negative forces serial; ≥ 2 sets the count explicitly.
	Parallelism int
}

// resolveThreshold maps the public Threshold sentinel (see
// Options.Threshold) to the core parameter: negative → 0 (exact), 0 → the
// 0.001 paper default, positive → itself.
func resolveThreshold(t float64) float64 {
	switch {
	case t < 0:
		return 0
	case t == 0:
		return 0.001
	default:
		return t
	}
}

func (o *Options) resolve() (core.Params, Algorithm) {
	opts := Options{}
	if o != nil {
		opts = *o
	}
	p := core.Params{TrackVectors: true}
	p.Threshold = resolveThreshold(opts.Threshold)
	switch {
	case opts.MaxLines < 0:
		p.MaxLines = 0
	case opts.MaxLines == 0:
		p.MaxLines = DefaultMaxLines
	default:
		p.MaxLines = opts.MaxLines
	}
	if opts.WeightedCoalesce {
		p.CoalesceMode = pmf.CoalesceWeightedAverage
	}
	p.Parallelism = opts.Parallelism
	return p, opts.Algorithm
}

// Exact returns Options that compute the exact distribution: full scan, no
// pruning, unlimited lines.
func Exact() *Options { return &Options{Threshold: -1, MaxLines: -1} }

// Line is one atom of a top-k score distribution as seen by callers: a total
// score, its probability, and the most probable top-k vector achieving it.
type Line struct {
	// Score is the total score of the aggregated top-k vectors.
	Score float64
	// Prob is the probability mass at Score.
	Prob float64
	// Vector lists the tuple IDs of the most probable top-k vector with this
	// score, highest-ranked first. Empty for distributions not derived from
	// a table (see NewDistribution).
	Vector []string
	// VectorProb is the exact probability that Vector is a top-k vector.
	VectorProb float64
}

// Distribution is the score distribution of top-k vectors — the paper's
// primary query answer — along with the statistics needed to interpret it.
type Distribution struct {
	dist     *pmf.Dist
	prepared *uncertain.Prepared
	// ScanDepth is the number of tuples examined under Theorem 2.
	ScanDepth int
	// K is the query's k.
	K int
}

// ErrNilTable is returned when a nil table is queried.
var ErrNilTable = errors.New("probtopk: nil table")

// ErrNilSnapshot is returned when a nil snapshot is queried.
var ErrNilSnapshot = errors.New("probtopk: nil snapshot")

// TopKDistribution computes the score distribution of the top-k tuple
// vectors of t. A nil opts uses the defaults documented on Options.
//
// Queries route through the package's shared default Engine: t's current
// snapshot is taken and its prepared form cached against the snapshot's
// identity, so repeated queries over an unchanged table skip preparation,
// and per-query scratch is pooled. Results are identical to an uncached
// computation.
func TopKDistribution(t *Table, k int, opts *Options) (*Distribution, error) {
	return defaultEngine.TopKDistribution(t, k, opts)
}

// TopKDistributionSnapshot is TopKDistribution over an immutable snapshot:
// the computation holds no reference to any table and may run concurrently
// with mutations of the snapshot's origin.
func TopKDistributionSnapshot(s *Snapshot, k int, opts *Options) (*Distribution, error) {
	return defaultEngine.TopKDistributionSnapshot(s, k, opts)
}

// NewDistribution builds a Distribution directly from (score, probability)
// pairs, without an underlying table. This supports using the c-Typical
// machinery on arbitrary discrete distributions (e.g. the biased-coin
// typical-set demonstration of the paper's Example 2). Probabilities must be
// positive; scores need not be distinct (duplicates are combined).
func NewDistribution(scores, probs []float64) (*Distribution, error) {
	if len(scores) != len(probs) {
		return nil, fmt.Errorf("probtopk: %d scores but %d probabilities", len(scores), len(probs))
	}
	if len(scores) == 0 {
		return nil, errors.New("probtopk: empty distribution")
	}
	lines := make([]pmf.Line, len(scores))
	for i := range scores {
		if probs[i] <= 0 {
			return nil, fmt.Errorf("probtopk: probability %v at index %d not positive", probs[i], i)
		}
		lines[i] = pmf.Line{Score: scores[i], Prob: probs[i]}
	}
	return &Distribution{dist: pmf.FromLines(lines)}, nil
}

// line converts an internal line, translating tuple positions to IDs.
func (d *Distribution) line(l pmf.Line) Line {
	out := Line{Score: l.Score, Prob: l.Prob, VectorProb: l.VecProb}
	if d.prepared != nil && l.Vec != nil {
		out.Vector = d.prepared.IDs(l.Vec.Slice())
	}
	return out
}

// Lines returns the distribution as (score, probability, vector) lines in
// ascending score order.
func (d *Distribution) Lines() []Line {
	out := make([]Line, 0, d.dist.Len())
	for _, l := range d.dist.Lines() {
		out = append(out, d.line(l))
	}
	return out
}

// Len returns the number of distinct score lines.
func (d *Distribution) Len() int { return d.dist.Len() }

// TotalMass returns the summed probability of all lines: the probability
// that a top-k vector exists (1 after Normalize).
func (d *Distribution) TotalMass() float64 { return d.dist.TotalMass() }

// Mean returns the expected top-k total score, conditioned on existence.
func (d *Distribution) Mean() float64 { return d.dist.Mean() }

// Variance returns the conditional variance of the top-k total score.
func (d *Distribution) Variance() float64 { return d.dist.Variance() }

// StdDev returns the conditional standard deviation of the top-k total score.
func (d *Distribution) StdDev() float64 { return d.dist.StdDev() }

// Median returns the weighted median score.
func (d *Distribution) Median() float64 { return d.dist.Median() }

// Quantile returns the smallest score at or above the given conditional
// cumulative probability q ∈ [0, 1].
func (d *Distribution) Quantile(q float64) float64 { return d.dist.Quantile(q) }

// CDF returns Pr(top-k total score ≤ x).
func (d *Distribution) CDF(x float64) float64 { return d.dist.CDF(x) }

// TailProb returns Pr(top-k total score > x).
func (d *Distribution) TailProb(x float64) float64 { return d.dist.TailProb(x) }

// Min returns the smallest score with positive probability.
func (d *Distribution) Min() float64 { return d.dist.Min() }

// Max returns the largest score with positive probability.
func (d *Distribution) Max() float64 { return d.dist.Max() }

// Span returns Max − Min.
func (d *Distribution) Span() float64 { return d.dist.Span() }

// Bucket is one bar of a histogram view of the distribution.
type Bucket struct {
	Lo, Hi float64 // [Lo, Hi)
	Prob   float64
}

// Histogram aggregates the distribution into buckets of the given width —
// the paper's "any granularity of precision" access path (§2.2 usage 1).
func (d *Distribution) Histogram(width float64) []Bucket {
	bs := d.dist.Histogram(width)
	out := make([]Bucket, len(bs))
	for i, b := range bs {
		out[i] = Bucket{Lo: b.Lo, Hi: b.Hi, Prob: b.Prob}
	}
	return out
}

// ExpectedMinDistance evaluates the Definition-1 objective for an arbitrary
// point set: E[min_i |S − points_i|].
func (d *Distribution) ExpectedMinDistance(points []float64) float64 {
	return d.dist.ExpectedMinDistance(points)
}

// UTopK returns the U-Topk answer [Soliman et al.]: the most probable top-k
// vector, as the line carrying it. ok is false when the distribution is
// empty. Line coalescing preserves this answer exactly.
func (d *Distribution) UTopK() (Line, bool) {
	l, ok := d.dist.MaxVecProbLine()
	if !ok {
		return Line{}, false
	}
	return d.line(l), true
}
