package probtopk_test

import (
	"math"
	"strings"
	"testing"

	"probtopk"
	"probtopk/internal/fixtures"
)

func soldier() *probtopk.Table { return fixtures.Soldier() }

func mustDist(t *testing.T, tab *probtopk.Table, k int, opts *probtopk.Options) *probtopk.Distribution {
	t.Helper()
	d, err := probtopk.TopKDistribution(tab, k, opts)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestSoldierEndToEnd walks the whole §1/§2 narrative through the public API.
func TestSoldierEndToEnd(t *testing.T) {
	d := mustDist(t, soldier(), 2, probtopk.Exact())
	if d.Len() != 9 {
		t.Fatalf("lines = %d, want 9", d.Len())
	}
	if math.Abs(d.TotalMass()-1) > 1e-12 {
		t.Fatalf("mass = %v", d.TotalMass())
	}
	if math.Abs(d.Mean()-fixtures.SoldierExpectedScore) > 1e-9 {
		t.Fatalf("mean = %v", d.Mean())
	}
	if math.Abs(d.TailProb(118)-fixtures.SoldierTailAboveUTopk) > 1e-12 {
		t.Fatalf("tail = %v", d.TailProb(118))
	}
	u, ok := d.UTopK()
	if !ok {
		t.Fatal("no U-Topk")
	}
	if u.Score != 118 || math.Abs(u.VectorProb-0.2) > 1e-12 {
		t.Fatalf("U-Topk = %+v", u)
	}
	if len(u.Vector) != 2 || u.Vector[0] != "T2" || u.Vector[1] != "T6" {
		t.Fatalf("U-Topk vector = %v", u.Vector)
	}
	typ, cost, err := d.Typical(3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cost-fixtures.SoldierTypical3Dist) > 1e-9 {
		t.Fatalf("cost = %v, want %v", cost, fixtures.SoldierTypical3Dist)
	}
	wantScores := fixtures.SoldierTypical3Scores()
	for i, l := range typ {
		if math.Abs(l.Score-wantScores[i]) > 1e-9 {
			t.Fatalf("typical scores = %+v", typ)
		}
	}
	one, _, err := d.Typical(1)
	if err != nil {
		t.Fatal(err)
	}
	if one[0].Score != 170 || one[0].Vector[0] != "T3" || one[0].Vector[1] != "T2" {
		t.Fatalf("1-typical = %+v", one[0])
	}
	scores, err := d.TypicalScores(3)
	if err != nil || len(scores) != 3 || scores[0] != 118 {
		t.Fatalf("TypicalScores = %v, %v", scores, err)
	}
}

func TestAlgorithmsViaPublicAPI(t *testing.T) {
	for _, alg := range []probtopk.Algorithm{
		probtopk.AlgorithmMain, probtopk.AlgorithmStateExpansion, probtopk.AlgorithmKCombo,
	} {
		opts := &probtopk.Options{Algorithm: alg, Threshold: -1, MaxLines: -1}
		d := mustDist(t, soldier(), 2, opts)
		if d.Len() != 9 || math.Abs(d.Mean()-164.1) > 1e-9 {
			t.Fatalf("%v: wrong distribution (%d lines, mean %v)", alg, d.Len(), d.Mean())
		}
		if !strings.Contains(alg.String(), "") {
			t.Fatal("unreachable")
		}
	}
	if probtopk.Algorithm(99).String() == "" {
		t.Fatal("unknown algorithm should still stringify")
	}
	if _, err := probtopk.TopKDistribution(soldier(), 2, &probtopk.Options{Algorithm: probtopk.Algorithm(99)}); err == nil {
		t.Fatal("unknown algorithm should error")
	}
}

func TestDefaultsApplied(t *testing.T) {
	// nil options: threshold 0.001, 200 lines.
	d := mustDist(t, soldier(), 2, nil)
	if d.Len() != 9 {
		t.Fatalf("default opts changed the toy result: %d lines", d.Len())
	}
	if d.ScanDepth != 7 {
		t.Fatalf("scan depth = %d", d.ScanDepth)
	}
}

func TestNormalizeOption(t *testing.T) {
	tab := probtopk.NewTable()
	tab.AddIndependent("a", 10, 0.5)
	tab.AddIndependent("b", 5, 0.5)
	d := mustDist(t, tab, 2, &probtopk.Options{Threshold: -1, MaxLines: -1})
	if math.Abs(d.TotalMass()-0.25) > 1e-12 {
		t.Fatalf("mass = %v, want 0.25 (both tuples must appear)", d.TotalMass())
	}
	n := mustDist(t, tab, 2, &probtopk.Options{Threshold: -1, MaxLines: -1, Normalize: true})
	if math.Abs(n.TotalMass()-1) > 1e-12 {
		t.Fatalf("normalized mass = %v", n.TotalMass())
	}
}

func TestHistogramAndStats(t *testing.T) {
	d := mustDist(t, soldier(), 2, probtopk.Exact())
	h := d.Histogram(50)
	var mass float64
	for _, b := range h {
		if b.Hi-b.Lo != 50 {
			t.Fatalf("bucket width %v", b.Hi-b.Lo)
		}
		mass += b.Prob
	}
	if math.Abs(mass-1) > 1e-12 {
		t.Fatalf("histogram mass = %v", mass)
	}
	if d.Min() != 116 || d.Max() != 235 || d.Span() != 119 {
		t.Fatalf("range = [%v, %v]", d.Min(), d.Max())
	}
	if d.Median() != 170 {
		t.Fatalf("median = %v", d.Median())
	}
	if q := d.Quantile(0.9); q != 190 && q != 235 {
		t.Fatalf("q90 = %v", q)
	}
	if d.Variance() <= 0 || d.StdDev() <= 0 {
		t.Fatal("variance should be positive")
	}
	if cdf := d.CDF(118); math.Abs(cdf-0.24) > 1e-12 {
		t.Fatalf("CDF(118) = %v", cdf)
	}
	emd := d.ExpectedMinDistance([]float64{118, 183, 235})
	if math.Abs(emd-6.6) > 1e-9 {
		t.Fatalf("EMD = %v", emd)
	}
}

func TestCTypicalTopKConvenience(t *testing.T) {
	lines, err := probtopk.CTypicalTopK(soldier(), 2, 3, probtopk.Exact())
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 3 || lines[0].Score != 118 || lines[2].Score != 235 {
		t.Fatalf("lines = %+v", lines)
	}
}

func TestUTopKConvenience(t *testing.T) {
	l, err := probtopk.UTopK(soldier(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if l.Score != 118 || l.Vector[0] != "T2" {
		t.Fatalf("UTopK = %+v", l)
	}
	if _, err := probtopk.UTopK(soldier(), 10); err == nil {
		t.Fatal("k > co-existing tuples should error")
	}
}

func TestCategory2Baselines(t *testing.T) {
	ranks, err := probtopk.UKRanks(soldier(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranks) != 2 || ranks[0].ID != "T7" || math.Abs(ranks[0].Prob-0.3) > 1e-12 {
		t.Fatalf("UKRanks = %+v", ranks)
	}
	pt, err := probtopk.PTk(soldier(), 2, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	for _, tp := range pt {
		if tp.InTopK < 0.25 {
			t.Fatalf("PTk returned %+v below threshold", tp)
		}
	}
	gt, err := probtopk.GlobalTopK(soldier(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(gt) != 2 {
		t.Fatalf("GlobalTopK = %+v", gt)
	}
	if gt[0].InTopK < gt[1].InTopK {
		t.Fatal("GlobalTopK not sorted")
	}
	all, err := probtopk.InTopKProbs(soldier(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 7 {
		t.Fatalf("InTopKProbs = %d rows", len(all))
	}
	var ids []string
	for _, tp := range all {
		ids = append(ids, tp.ID)
	}
	if strings.Join(ids, ",") != "T7,T3,T4,T2,T6,T5,T1" {
		t.Fatalf("rank order = %v", ids)
	}
}

func TestScanDepthPublic(t *testing.T) {
	n, err := probtopk.ScanDepth(soldier(), 2, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if n < 2 || n > 7 {
		t.Fatalf("scan depth = %d", n)
	}
	full, err := probtopk.ScanDepth(soldier(), 2, 0)
	if err != nil || full != 7 {
		t.Fatalf("full depth = %d, %v", full, err)
	}
}

func TestNewDistribution(t *testing.T) {
	d, err := probtopk.NewDistribution([]float64{1, 2, 2, 3}, []float64{0.2, 0.1, 0.1, 0.6})
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 3 { // duplicate score combined
		t.Fatalf("len = %d", d.Len())
	}
	typ, _, err := d.Typical(1)
	if err != nil {
		t.Fatal(err)
	}
	// Costs: at 1 → 1.4, at 2 → 0.8, at 3 → 0.6; the unique optimum is 3.
	if typ[0].Score != 3 {
		t.Fatalf("typical = %+v", typ)
	}
	if len(typ[0].Vector) != 0 {
		t.Fatal("table-free distribution should have no vectors")
	}
	cases := []struct {
		s, p []float64
	}{
		{[]float64{1}, []float64{1, 2}},
		{nil, nil},
		{[]float64{1}, []float64{0}},
		{[]float64{1}, []float64{-1}},
	}
	for i, c := range cases {
		if _, err := probtopk.NewDistribution(c.s, c.p); err == nil {
			t.Fatalf("case %d should error", i)
		}
	}
}

func TestErrorPaths(t *testing.T) {
	if _, err := probtopk.TopKDistribution(nil, 2, nil); err != probtopk.ErrNilTable {
		t.Fatalf("err = %v", err)
	}
	if _, err := probtopk.TopKDistribution(probtopk.NewTable(), 2, nil); err == nil {
		t.Fatal("empty table should error")
	}
	bad := probtopk.NewTable().AddIndependent("x", 1, 2)
	if _, err := probtopk.TopKDistribution(bad, 1, nil); err == nil {
		t.Fatal("invalid probability should error")
	}
	if _, err := probtopk.TopKDistribution(soldier(), 0, nil); err == nil {
		t.Fatal("k = 0 should error")
	}
	if _, err := probtopk.UKRanks(nil, 2); err != probtopk.ErrNilTable {
		t.Fatal("nil table should error")
	}
	if _, err := probtopk.ScanDepth(nil, 2, 0.1); err != probtopk.ErrNilTable {
		t.Fatal("nil table should error")
	}
	if probtopk.ErrNoVector.Error() == "" {
		t.Fatal("error string empty")
	}
}

func TestCSVRoundTripPublic(t *testing.T) {
	var sb strings.Builder
	if err := soldier().WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	tab, err := probtopk.ReadTableCSV(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if tab.Len() != 7 {
		t.Fatalf("len = %d", tab.Len())
	}
	d := mustDist(t, tab, 2, probtopk.Exact())
	if math.Abs(d.Mean()-164.1) > 1e-9 {
		t.Fatalf("mean after round trip = %v", d.Mean())
	}
}

// TestExample2Coin reproduces the paper's Example 2: for 20 tosses of a 0.6
// coin scored by the number of heads, the maximum-probability outcome (all
// heads, ≈ 3.66e-5) is atypical, while the 1-typical score is 12 with
// probability ≈ 0.18.
func TestExample2Coin(t *testing.T) {
	n := 20
	p := 0.6
	scores := make([]float64, n+1)
	probs := make([]float64, n+1)
	for h := 0; h <= n; h++ {
		scores[h] = float64(h)
		// C(n, h) p^h (1-p)^(n-h)
		c := 1.0
		for i := 0; i < h; i++ {
			c = c * float64(n-i) / float64(i+1)
		}
		probs[h] = c * math.Pow(p, float64(h)) * math.Pow(1-p, float64(n-h))
	}
	d, err := probtopk.NewDistribution(scores, probs)
	if err != nil {
		t.Fatal(err)
	}
	if allHeads := probs[n]; math.Abs(allHeads-3.66e-5) > 1e-7 {
		t.Fatalf("Pr(all heads) = %v, want ≈ 3.66e-5", allHeads)
	}
	typ, _, err := d.Typical(1)
	if err != nil {
		t.Fatal(err)
	}
	if typ[0].Score != 12 {
		t.Fatalf("1-typical score = %v, want 12", typ[0].Score)
	}
	if math.Abs(typ[0].Prob-0.18) > 0.005 {
		t.Fatalf("Pr(12 heads) = %v, want ≈ 0.18", typ[0].Prob)
	}
	if math.Abs(d.TailProb(19.5)-3.66e-5) > 1e-7 {
		t.Fatalf("tail above 19.5 = %v", d.TailProb(19.5))
	}
}
