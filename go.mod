module probtopk

go 1.24
