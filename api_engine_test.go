package probtopk_test

import (
	"math"
	"strings"
	"testing"

	"probtopk"
	"probtopk/internal/fixtures"
)

// sameLines asserts two public distributions are bit-identical.
func sameLines(t *testing.T, label string, got, want *probtopk.Distribution) {
	t.Helper()
	gl, wl := got.Lines(), want.Lines()
	if len(gl) != len(wl) {
		t.Fatalf("%s: %d lines, want %d", label, len(gl), len(wl))
	}
	for i := range wl {
		if gl[i].Score != wl[i].Score || gl[i].Prob != wl[i].Prob || gl[i].VectorProb != wl[i].VectorProb {
			t.Fatalf("%s: line %d = %+v, want %+v", label, i, gl[i], wl[i])
		}
		if strings.Join(gl[i].Vector, ",") != strings.Join(wl[i].Vector, ",") {
			t.Fatalf("%s: line %d vector %v, want %v", label, i, gl[i].Vector, wl[i].Vector)
		}
	}
}

// deepTable is built so the 0.001 default threshold actually prunes: with
// 40 high-probability tuples the Theorem-2 bound for (k=2, pτ=0.001) stops
// the scan around depth 21, while an exact query must scan all 40.
func deepTable() *probtopk.Table {
	tab := probtopk.NewTable()
	for i := 0; i < 40; i++ {
		tab.AddIndependent("t", float64(100-i), 0.9)
	}
	return tab
}

// TestThresholdSentinel pins the Options.Threshold sentinel behavior:
// the zero value (and nil options) means the 0.001 paper default — NOT
// "threshold zero" — and an exact computation requires a negative value
// (Exact()). This is a regression fence around the documented sentinel.
func TestThresholdSentinel(t *testing.T) {
	tab := deepTable()

	zero := mustDist(t, tab, 2, &probtopk.Options{})
	nilOpts := mustDist(t, tab, 2, nil)
	explicitDefault := mustDist(t, tab, 2, &probtopk.Options{Threshold: 0.001})
	exact := mustDist(t, tab, 2, probtopk.Exact())
	negative := mustDist(t, tab, 2, &probtopk.Options{Threshold: -1, MaxLines: -1})

	// Zero value and nil both resolve to the explicit 0.001 default.
	sameLines(t, "zero options vs explicit 0.001", zero, explicitDefault)
	sameLines(t, "nil options vs explicit 0.001", nilOpts, explicitDefault)
	if zero.ScanDepth != explicitDefault.ScanDepth {
		t.Fatalf("zero-Options scan depth %d != explicit default %d",
			zero.ScanDepth, explicitDefault.ScanDepth)
	}
	// Any negative threshold (with the line cap lifted) is the exact path.
	sameLines(t, "negative threshold vs Exact()", negative, exact)

	// The default threshold genuinely prunes this table, so the zero value
	// is observably NOT an exact-threshold-zero request.
	if exact.ScanDepth != tab.Len() {
		t.Fatalf("exact scan depth = %d, want the full table %d", exact.ScanDepth, tab.Len())
	}
	if zero.ScanDepth >= exact.ScanDepth {
		t.Fatalf("default threshold did not prune: scan depth %d vs exact %d",
			zero.ScanDepth, exact.ScanDepth)
	}
}

// TestStreamAlgorithmHonored: Stream.TopKDistribution must honor
// Options.Algorithm — the exact baselines agree with the main DP on the
// window contents, and an unknown algorithm errors.
func TestStreamAlgorithmHonored(t *testing.T) {
	s, err := probtopk.NewStream(8)
	if err != nil {
		t.Fatal(err)
	}
	for _, tp := range fixtures.Soldier().Tuples() {
		if _, err := s.Push(tp); err != nil {
			t.Fatal(err)
		}
	}
	exact := probtopk.Exact()
	main, err := s.TopKDistribution(2, exact)
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []probtopk.Algorithm{
		probtopk.AlgorithmStateExpansion, probtopk.AlgorithmKCombo,
	} {
		opts := *exact
		opts.Algorithm = alg
		got, err := s.TopKDistribution(2, &opts)
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if got.Len() != main.Len() {
			t.Fatalf("%v: %d lines, want %d", alg, got.Len(), main.Len())
		}
		for i, gl := range got.Lines() {
			wl := main.Lines()[i]
			if math.Abs(gl.Score-wl.Score) > 1e-9 || math.Abs(gl.Prob-wl.Prob) > 1e-9 {
				t.Fatalf("%v line %d: %+v vs main %+v", alg, i, gl, wl)
			}
		}
	}
	bad := &probtopk.Options{Algorithm: probtopk.Algorithm(42)}
	if _, err := s.TopKDistribution(2, bad); err == nil ||
		!strings.Contains(err.Error(), "unknown algorithm") {
		t.Fatalf("unknown algorithm on a stream: err = %v, want unknown-algorithm error", err)
	}
}

// TestEngineCachedMatchesUncached: the caching engine returns results
// bit-identical to a cache-disabled engine, and actually hits its cache.
func TestEngineCachedMatchesUncached(t *testing.T) {
	cached := probtopk.NewEngine()
	uncached := probtopk.NewEngineWithCache(0)
	tab := fixtures.Soldier()
	for i := 0; i < 5; i++ {
		a, err := cached.TopKDistribution(tab, 2, nil)
		if err != nil {
			t.Fatal(err)
		}
		b, err := uncached.TopKDistribution(tab, 2, nil)
		if err != nil {
			t.Fatal(err)
		}
		sameLines(t, "cached vs uncached", a, b)
	}
	if s := cached.CacheStats(); s.Hits != 4 || s.Misses != 1 {
		t.Fatalf("cached stats = %+v, want 4 hits / 1 miss", s)
	}
	if s := uncached.CacheStats(); s.Hits != 0 {
		t.Fatalf("uncached stats = %+v, want 0 hits", s)
	}

	// Mutation invalidates: the result reflects the new table contents.
	tab.AddIndependent("XL", 1000, 1)
	d, err := cached.TopKDistribution(tab, 1, probtopk.Exact())
	if err != nil {
		t.Fatal(err)
	}
	if d.Max() != 1000 {
		t.Fatalf("after mutation max = %v, want the new tuple's 1000", d.Max())
	}
}

// TestEngineBatch: the public batch API matches per-query results, applies
// per-query thresholds with the documented sentinel, and supports fan-out.
func TestEngineBatch(t *testing.T) {
	e := probtopk.NewEngine()
	tab := fixtures.Soldier()
	queries := []probtopk.BatchQuery{
		{K: 1}, {K: 2}, {K: 2, Threshold: -1}, {K: 3, Threshold: 0.01},
	}
	for _, par := range []int{0, 3} {
		opts := &probtopk.Options{Parallelism: par}
		dists, err := e.TopKDistributionBatch(tab, queries, opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(dists) != len(queries) {
			t.Fatalf("%d results for %d queries", len(dists), len(queries))
		}
		for i, q := range queries {
			want := mustDist(t, tab, q.K, &probtopk.Options{Threshold: q.Threshold})
			sameLines(t, "batch query", dists[i], want)
			if dists[i].K != q.K {
				t.Fatalf("query %d: K = %d, want %d", i, dists[i].K, q.K)
			}
		}
	}
	if _, err := e.TopKDistributionBatch(nil, queries, nil); err == nil {
		t.Fatal("nil table batch should error")
	}
	bad := &probtopk.Options{Algorithm: probtopk.AlgorithmKCombo}
	if _, err := e.TopKDistributionBatch(tab, queries, bad); err == nil {
		t.Fatal("non-main algorithm batch should error")
	}
}

// TestEngineCTypical: the engine's one-call c-Typical form matches the
// package-level one.
func TestEngineCTypical(t *testing.T) {
	e := probtopk.NewEngine()
	tab := fixtures.Soldier()
	got, err := e.CTypicalTopK(tab, 2, 3, probtopk.Exact())
	if err != nil {
		t.Fatal(err)
	}
	want, err := probtopk.CTypicalTopK(tab, 2, 3, probtopk.Exact())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%d typical lines, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Score != want[i].Score || got[i].Prob != want[i].Prob {
			t.Fatalf("typical %d: %+v vs %+v", i, got[i], want[i])
		}
	}
}
