package probtopk

import (
	"probtopk/internal/baselines"
	"probtopk/internal/core"
	"probtopk/internal/uncertain"
)

// The baseline semantics below are Engine methods sharing the engine's
// prepared-table cache: computing several of them over the same table — the
// typical comparison workload — prepares it once. The package-level
// functions delegate to the shared default engine.

// UTopK computes the U-Topk answer [Soliman, Ilyas, Chang]: the top-k tuple
// vector with the highest probability of being a top-k vector. Equivalent to
// TopKDistribution(t, k, Exact()) followed by Distribution.UTopK, which
// callers already holding a Distribution should prefer.
func UTopK(t *Table, k int) (Line, error) { return defaultEngine.UTopK(t, k) }

// UTopK computes the U-Topk answer with this engine's cache; see the
// package-level UTopK.
func (e *Engine) UTopK(t *Table, k int) (Line, error) {
	if t == nil {
		return Line{}, ErrNilTable
	}
	return e.UTopKSnapshot(t.Snapshot(), k)
}

// UTopKSnapshot computes the U-Topk answer over an immutable snapshot.
func (e *Engine) UTopKSnapshot(s *Snapshot, k int) (Line, error) {
	dist, err := e.TopKDistributionSnapshot(s, k, Exact())
	if err != nil {
		return Line{}, err
	}
	l, ok := dist.UTopK()
	if !ok {
		return Line{}, ErrNoVector
	}
	return l, nil
}

// ErrNoVector is returned when no k tuples can co-exist, so no top-k vector
// exists.
var ErrNoVector = errNoVector{}

type errNoVector struct{}

func (errNoVector) Error() string { return "probtopk: no top-k vector exists" }

// RankedTuple is one row of a U-kRanks answer: the tuple most likely to
// occupy a given rank.
type RankedTuple struct {
	Rank  int
	ID    string
	Score float64
	Prob  float64
}

// UKRanks computes the U-kRanks answer [Soliman, Ilyas, Chang]: for each
// rank r = 1..k, the tuple with the highest probability of ranking exactly
// r-th across all possible worlds. As the paper's §1 observes, the same
// tuple may win several ranks, and the returned tuples need not be able to
// co-exist.
func UKRanks(t *Table, k int) ([]RankedTuple, error) { return defaultEngine.UKRanks(t, k) }

// UKRanks computes the U-kRanks answer with this engine's cache; see the
// package-level UKRanks.
func (e *Engine) UKRanks(t *Table, k int) ([]RankedTuple, error) {
	if t == nil {
		return nil, ErrNilTable
	}
	return e.UKRanksSnapshot(t.Snapshot(), k)
}

// UKRanksSnapshot computes the U-kRanks answer over an immutable snapshot.
func (e *Engine) UKRanksSnapshot(s *Snapshot, k int) ([]RankedTuple, error) {
	prep, err := e.prepareSnapshot(s)
	if err != nil {
		return nil, err
	}
	answers, err := baselines.UKRanks(prep, k)
	if err != nil {
		return nil, err
	}
	out := make([]RankedTuple, 0, len(answers))
	for _, a := range answers {
		rt := RankedTuple{Rank: a.Rank, Prob: a.Prob}
		if a.Position >= 0 {
			tp := prep.Tuples[a.Position]
			rt.ID = tp.ID
			rt.Score = tp.Score
		}
		out = append(out, rt)
	}
	return out, nil
}

// TupleProb reports a tuple together with its probability of being among the
// top-k.
type TupleProb struct {
	ID     string
	Score  float64
	Prob   float64 // membership probability
	InTopK float64 // probability of being in the top-k
}

// PTk computes the probabilistic threshold top-k answer [Hua et al.]: every
// tuple whose probability of being in the top-k is at least threshold, in
// rank order.
func PTk(t *Table, k int, threshold float64) ([]TupleProb, error) {
	return defaultEngine.PTk(t, k, threshold)
}

// PTk computes the probabilistic threshold top-k answer with this engine's
// cache; see the package-level PTk.
func (e *Engine) PTk(t *Table, k int, threshold float64) ([]TupleProb, error) {
	if t == nil {
		return nil, ErrNilTable
	}
	return e.PTkSnapshot(t.Snapshot(), k, threshold)
}

// PTkSnapshot computes the probabilistic threshold top-k answer over an
// immutable snapshot.
func (e *Engine) PTkSnapshot(s *Snapshot, k int, threshold float64) ([]TupleProb, error) {
	prep, err := e.prepareSnapshot(s)
	if err != nil {
		return nil, err
	}
	positions, err := baselines.PTk(prep, k, threshold)
	if err != nil {
		return nil, err
	}
	probs, err := baselines.InTopkProbs(prep, k)
	if err != nil {
		return nil, err
	}
	return tupleProbs(prep, positions, probs), nil
}

// GlobalTopK computes the Global-Topk answer [Zhang, Chomicki]: the k tuples
// with the highest probability of being in the top-k, most probable first.
func GlobalTopK(t *Table, k int) ([]TupleProb, error) { return defaultEngine.GlobalTopK(t, k) }

// GlobalTopK computes the Global-Topk answer with this engine's cache; see
// the package-level GlobalTopK.
func (e *Engine) GlobalTopK(t *Table, k int) ([]TupleProb, error) {
	if t == nil {
		return nil, ErrNilTable
	}
	return e.GlobalTopKSnapshot(t.Snapshot(), k)
}

// GlobalTopKSnapshot computes the Global-Topk answer over an immutable
// snapshot.
func (e *Engine) GlobalTopKSnapshot(s *Snapshot, k int) ([]TupleProb, error) {
	prep, err := e.prepareSnapshot(s)
	if err != nil {
		return nil, err
	}
	positions, err := baselines.GlobalTopk(prep, k)
	if err != nil {
		return nil, err
	}
	probs, err := baselines.InTopkProbs(prep, k)
	if err != nil {
		return nil, err
	}
	return tupleProbs(prep, positions, probs), nil
}

// InTopKProbs returns, for every tuple in rank order, its probability of
// being among the top-k — the marginal the category-2 semantics build on.
func InTopKProbs(t *Table, k int) ([]TupleProb, error) { return defaultEngine.InTopKProbs(t, k) }

// InTopKProbs returns the in-top-k marginals with this engine's cache; see
// the package-level InTopKProbs.
func (e *Engine) InTopKProbs(t *Table, k int) ([]TupleProb, error) {
	if t == nil {
		return nil, ErrNilTable
	}
	return e.InTopKProbsSnapshot(t.Snapshot(), k)
}

// InTopKProbsSnapshot returns the in-top-k marginals over an immutable
// snapshot.
func (e *Engine) InTopKProbsSnapshot(s *Snapshot, k int) ([]TupleProb, error) {
	prep, err := e.prepareSnapshot(s)
	if err != nil {
		return nil, err
	}
	probs, err := baselines.InTopkProbs(prep, k)
	if err != nil {
		return nil, err
	}
	positions := make([]int, prep.Len())
	for i := range positions {
		positions[i] = i
	}
	return tupleProbs(prep, positions, probs), nil
}

// ExpectedRankTuple reports a tuple with its expected rank across all
// possible worlds.
type ExpectedRankTuple struct {
	ID    string
	Score float64
	Prob  float64
	// Rank is the expected 0-based rank: the expected number of
	// higher-ranked co-existing tuples when present, the expected world size
	// when absent.
	Rank float64
}

// ExpectedRankTopK computes the expected-rank semantics contemporaneous with
// the paper (Cormode, Li, Yi; ICDE 2009): the k tuples with the smallest
// rank averaged over all possible worlds, in increasing expected-rank order.
func ExpectedRankTopK(t *Table, k int) ([]ExpectedRankTuple, error) {
	return defaultEngine.ExpectedRankTopK(t, k)
}

// ExpectedRankTopK computes the expected-rank answer with this engine's
// cache; see the package-level ExpectedRankTopK.
func (e *Engine) ExpectedRankTopK(t *Table, k int) ([]ExpectedRankTuple, error) {
	if t == nil {
		return nil, ErrNilTable
	}
	return e.ExpectedRankTopKSnapshot(t.Snapshot(), k)
}

// ExpectedRankTopKSnapshot computes the expected-rank answer over an
// immutable snapshot.
func (e *Engine) ExpectedRankTopKSnapshot(s *Snapshot, k int) ([]ExpectedRankTuple, error) {
	prep, err := e.prepareSnapshot(s)
	if err != nil {
		return nil, err
	}
	positions, err := baselines.ExpectedRankTopk(prep, k)
	if err != nil {
		return nil, err
	}
	ranks := baselines.ExpectedRanks(prep)
	out := make([]ExpectedRankTuple, 0, len(positions))
	for _, pos := range positions {
		tp := prep.Tuples[pos]
		out = append(out, ExpectedRankTuple{ID: tp.ID, Score: tp.Score, Prob: tp.Prob, Rank: ranks[pos]})
	}
	return out, nil
}

// ScanDepth returns how many tuples (in rank order) the algorithms must
// examine for a top-k query with probability threshold ptau, per Theorem 2.
// ptau ≤ 0 means the whole table.
func ScanDepth(t *Table, k int, ptau float64) (int, error) {
	return defaultEngine.ScanDepth(t, k, ptau)
}

// ScanDepth returns the Theorem-2 scan depth with this engine's cache; see
// the package-level ScanDepth.
func (e *Engine) ScanDepth(t *Table, k int, ptau float64) (int, error) {
	if t == nil {
		return 0, ErrNilTable
	}
	return e.ScanDepthSnapshot(t.Snapshot(), k, ptau)
}

// ScanDepthSnapshot returns the Theorem-2 scan depth over an immutable
// snapshot.
func (e *Engine) ScanDepthSnapshot(s *Snapshot, k int, ptau float64) (int, error) {
	prep, err := e.prepareSnapshot(s)
	if err != nil {
		return 0, err
	}
	return core.ScanDepth(prep, k, ptau), nil
}

func tupleProbs(prep *uncertain.Prepared, positions []int, probs []float64) []TupleProb {
	out := make([]TupleProb, 0, len(positions))
	for _, pos := range positions {
		tp := prep.Tuples[pos]
		out = append(out, TupleProb{ID: tp.ID, Score: tp.Score, Prob: tp.Prob, InTopK: probs[pos]})
	}
	return out
}
