package probtopk_test

import (
	"fmt"

	"probtopk"
)

// battlefield builds the paper's Example 1 table: sensor estimates of
// soldiers' need for medical attention, with mutually exclusive readings per
// soldier.
func battlefield() *probtopk.Table {
	t := probtopk.NewTable()
	t.AddIndependent("T1", 49, 0.4)
	t.AddExclusive("T2", "soldier2", 60, 0.4)
	t.AddExclusive("T3", "soldier3", 110, 0.4)
	t.AddExclusive("T4", "soldier2", 80, 0.3)
	t.AddIndependent("T5", 56, 1.0)
	t.AddExclusive("T6", "soldier3", 58, 0.5)
	t.AddExclusive("T7", "soldier2", 125, 0.3)
	return t
}

func ExampleTopKDistribution() {
	dist, err := probtopk.TopKDistribution(battlefield(), 2, probtopk.Exact())
	if err != nil {
		panic(err)
	}
	fmt.Printf("expected top-2 score: %.1f\n", dist.Mean())
	fmt.Printf("lines: %d, mass: %.2f\n", dist.Len(), dist.TotalMass())
	fmt.Printf("Pr(score > 118) = %.2f\n", dist.TailProb(118))
	// Output:
	// expected top-2 score: 164.1
	// lines: 9, mass: 1.00
	// Pr(score > 118) = 0.76
}

func ExampleDistribution_UTopK() {
	dist, err := probtopk.TopKDistribution(battlefield(), 2, probtopk.Exact())
	if err != nil {
		panic(err)
	}
	u, _ := dist.UTopK()
	fmt.Printf("U-Top2 vector %v, score %.0f, probability %.2f\n", u.Vector, u.Score, u.VectorProb)
	// Output:
	// U-Top2 vector [T2 T6], score 118, probability 0.20
}

func ExampleDistribution_Typical() {
	dist, err := probtopk.TopKDistribution(battlefield(), 2, probtopk.Exact())
	if err != nil {
		panic(err)
	}
	lines, cost, err := dist.Typical(3)
	if err != nil {
		panic(err)
	}
	for _, l := range lines {
		fmt.Printf("score %.0f vector %v (probability %.2f)\n", l.Score, l.Vector, l.VectorProb)
	}
	fmt.Printf("expected distance: %.1f\n", cost)
	// Output:
	// score 118 vector [T2 T6] (probability 0.20)
	// score 183 vector [T7 T6] (probability 0.15)
	// score 235 vector [T7 T3] (probability 0.12)
	// expected distance: 6.6
}

func ExampleUKRanks() {
	ranks, err := probtopk.UKRanks(battlefield(), 2)
	if err != nil {
		panic(err)
	}
	for _, r := range ranks {
		fmt.Printf("rank %d: %s (probability %.2f)\n", r.Rank, r.ID, r.Prob)
	}
	// Output:
	// rank 1: T7 (probability 0.30)
	// rank 2: T6 (probability 0.50)
}
