// Benchmarks regenerating the performance dimension of every figure in the
// paper's §5 (see DESIGN.md §3 for the figure-to-bench index):
//
//	Fig. 3     BenchmarkFig03ToyPipeline
//	Fig. 8     BenchmarkFig08CartelDistribution
//	Fig. 9     BenchmarkFig09ScanDepth
//	Fig. 10    BenchmarkFig10Main / Fig10StateExpansion / Fig10KCombo
//	Fig. 11    BenchmarkFig11MEPortion
//	Fig. 12    BenchmarkFig12MaxLines
//	Fig. 13    BenchmarkFig13Correlation
//	Fig. 14    BenchmarkFig14WideScores
//	Fig. 15    BenchmarkFig15WideGaps
//	Fig. 16    BenchmarkFig16BigGroups
//
// plus ablation benches for the c-Typical solvers (naive O(cn²) vs
// divide-and-conquer) and the line-coalescing strategy.
package probtopk_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"probtopk"
	"probtopk/internal/baselines"
	"probtopk/internal/cartel"
	"probtopk/internal/core"
	"probtopk/internal/fixtures"
	"probtopk/internal/pmf"
	"probtopk/internal/synth"
	"probtopk/internal/typical"
	"probtopk/internal/uncertain"
)

// cartelPrep lazily builds the shared §5.3 performance table (300 road
// segments, two quantile delay bins each — the same table the figure harness
// in internal/bench uses).
var cartelPrep = sync.OnceValues(func() (*uncertain.Prepared, error) {
	area := cartel.GenerateArea(cartel.Config{Segments: 300, Seed: 7})
	tab, err := area.CongestionTable(2, 0)
	if err != nil {
		return nil, err
	}
	return uncertain.Prepare(tab)
})

func mustCartel(b *testing.B) *uncertain.Prepared {
	b.Helper()
	p, err := cartelPrep()
	if err != nil {
		b.Fatal(err)
	}
	return p
}

func benchParams(k int) core.Params {
	return core.Params{K: k, Threshold: 0.001, MaxLines: 100, TrackVectors: true}
}

// BenchmarkFig03ToyPipeline runs the complete Example-1 pipeline: prepare,
// exact distribution, U-Topk, 3-Typical.
func BenchmarkFig03ToyPipeline(b *testing.B) {
	tab := fixtures.Soldier()
	for i := 0; i < b.N; i++ {
		dist, err := probtopk.TopKDistribution(tab, 2, probtopk.Exact())
		if err != nil {
			b.Fatal(err)
		}
		if _, ok := dist.UTopK(); !ok {
			b.Fatal("no U-Topk")
		}
		if _, _, err := dist.Typical(3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig08CartelDistribution measures the Figure-8 per-area workload:
// distribution + markers at k = 5 and 10.
func BenchmarkFig08CartelDistribution(b *testing.B) {
	p := mustCartel(b)
	for _, k := range []int{5, 10} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := core.Distribution(p, benchParams(k))
				if err != nil {
					b.Fatal(err)
				}
				if _, err := typical.Select(res.Dist, 3); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig09ScanDepth measures the Theorem-2 stopping-condition scan.
func BenchmarkFig09ScanDepth(b *testing.B) {
	p := mustCartel(b)
	for _, k := range []int{10, 30, 60} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if core.ScanDepth(p, k, 0.001) == 0 {
					b.Fatal("zero depth")
				}
			}
		})
	}
}

// BenchmarkFig10Main sweeps k for the main algorithm (the flat curve of
// Figure 10).
func BenchmarkFig10Main(b *testing.B) {
	p := mustCartel(b)
	for _, k := range []int{10, 20, 30, 40, 50, 60} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Distribution(p, benchParams(k)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// naivePrefix truncates the table to the Theorem-2 prefix for k, the same
// input the naive baselines receive in the Figure-10 harness (exact mode —
// threshold pruning on near-0.5 probabilities would otherwise hide their
// exponential cost).
func naivePrefix(b *testing.B, k int) *uncertain.Prepared {
	b.Helper()
	p := mustCartel(b)
	sub, err := uncertain.Prepare(p.TruncateTable(core.ScanDepth(p, k, 0.001)))
	if err != nil {
		b.Fatal(err)
	}
	return sub
}

// BenchmarkFig10StateExpansion sweeps k for the exponential baseline; ks are
// small because the state space explodes (the paper's cut-off curve).
func BenchmarkFig10StateExpansion(b *testing.B) {
	for _, k := range []int{2, 3, 4} {
		sub := naivePrefix(b, k)
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				params := core.Params{K: k, MaxLines: 100, TrackVectors: true}
				if _, err := core.StateExpansion(sub, params); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig10KCombo sweeps k for the combination-enumeration baseline.
func BenchmarkFig10KCombo(b *testing.B) {
	for _, k := range []int{2, 3, 4} {
		sub := naivePrefix(b, k)
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				params := core.Params{K: k, MaxLines: 100, TrackVectors: true}
				if _, err := core.KCombo(sub, params); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig11MEPortion varies the fraction of mutually exclusive tuples
// via single-bin (point-estimate) segments.
func BenchmarkFig11MEPortion(b *testing.B) {
	area := cartel.GenerateArea(cartel.Config{Segments: 300, Seed: 7})
	for _, single := range []float64{0.9, 0.6, 0.3} {
		tab, err := area.CongestionTable(2, single)
		if err != nil {
			b.Fatal(err)
		}
		p, err := uncertain.Prepare(tab)
		if err != nil {
			b.Fatal(err)
		}
		n := core.ScanDepth(p, 20, 0.001)
		portion := float64(p.MExclusiveCount(n)) / float64(n)
		b.Run(fmt.Sprintf("portion=%.2f", portion), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Distribution(p, benchParams(20)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig12MaxLines varies the line-coalescing budget at k = 30.
func BenchmarkFig12MaxLines(b *testing.B) {
	p := mustCartel(b)
	for _, lines := range []int{50, 100, 200, 300, 400, 500} {
		b.Run(fmt.Sprintf("lines=%d", lines), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				params := benchParams(30)
				params.MaxLines = lines
				if _, err := core.Distribution(p, params); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func synthPrep(b *testing.B, cfg synth.Config) *uncertain.Prepared {
	b.Helper()
	tab, err := synth.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	p, err := uncertain.Prepare(tab)
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// BenchmarkFig13Correlation runs the top-10 synthetic workload per ρ.
func BenchmarkFig13Correlation(b *testing.B) {
	for _, rho := range []float64{0, 0.8, -0.8} {
		p := synthPrep(b, synth.Config{N: 300, Rho: rho, Seed: 1309})
		b.Run(fmt.Sprintf("rho=%v", rho), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Distribution(p, benchParams(10)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig14WideScores is the σ = 100 variant.
func BenchmarkFig14WideScores(b *testing.B) {
	p := synthPrep(b, synth.Config{N: 300, ScoreStd: 100, Seed: 1309})
	for i := 0; i < b.N; i++ {
		if _, err := core.Distribution(p, benchParams(10)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig15WideGaps is the d ∈ [1, 40] ME-gap variant.
func BenchmarkFig15WideGaps(b *testing.B) {
	p := synthPrep(b, synth.Config{N: 300, GapMin: 1, GapMax: 40, Seed: 1309})
	for i := 0; i < b.N; i++ {
		if _, err := core.Distribution(p, benchParams(10)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig16BigGroups is the group-size ∈ [2, 10] variant.
func BenchmarkFig16BigGroups(b *testing.B) {
	p := synthPrep(b, synth.Config{N: 300, SizeMin: 2, SizeMax: 10, MEPortion: 0.6, Seed: 1309})
	for i := 0; i < b.N; i++ {
		if _, err := core.Distribution(p, benchParams(10)); err != nil {
			b.Fatal(err)
		}
	}
}

// randomPMF builds an n-line distribution for the typical-selection and
// coalescing ablations.
func randomPMF(n int, seed int64) *pmf.Dist {
	r := rand.New(rand.NewSource(seed))
	lines := make([]pmf.Line, n)
	for i := range lines {
		lines[i] = pmf.Line{Score: r.Float64() * 1000, Prob: r.Float64()}
	}
	return pmf.FromLines(lines)
}

// BenchmarkTypicalSelect ablates the divide-and-conquer c-Typical solver
// against the paper's Figure-7 O(cn²) pseudocode on a 500-line distribution.
func BenchmarkTypicalSelect(b *testing.B) {
	d := randomPMF(500, 2)
	for _, c := range []int{1, 3, 10} {
		b.Run(fmt.Sprintf("dc/c=%d", c), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := typical.Select(d, c); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("naive/c=%d", c), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := typical.SelectNaive(d, c); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCoalesce ablates the closest-pair line coalescing (§3.2.1).
func BenchmarkCoalesce(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			src := randomPMF(n, 3)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d := src.Clone()
				d.Coalesce(200, pmf.CoalescePlainAverage)
			}
		})
	}
}

// BenchmarkUKRanks measures the category-2 baseline machinery (the
// Poisson-binomial rank convolution) on the road table.
func BenchmarkUKRanks(b *testing.B) {
	p := mustCartel(b)
	for i := 0; i < b.N; i++ {
		if _, err := baselines.UKRanks(p, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWorstCaseExact measures the exact (uncapped) DP where every
// combination has a distinct score — the O(n^k) line blow-up §3.2.1 warns
// about, here bounded by a small n.
func BenchmarkWorstCaseExact(b *testing.B) {
	r := rand.New(rand.NewSource(4))
	tab := uncertain.NewTable()
	for i := 0; i < 24; i++ {
		tab.AddIndependent(fmt.Sprintf("t%d", i), 100+r.Float64()*100, 0.3+0.4*r.Float64())
	}
	p, err := uncertain.Prepare(tab)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := core.Distribution(p, core.Params{K: 6, TrackVectors: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// servingTable builds the repeated-query serving workload: a large table
// whose preparation (validate + sort + index) dominates a single
// default-threshold query, which is exactly the cost the engine's
// prepared-table cache amortizes away.
func servingTable(n int) *probtopk.Table {
	r := rand.New(rand.NewSource(11))
	tab := probtopk.NewTable()
	for i := 0; i < n; i++ {
		tab.AddIndependent(fmt.Sprintf("t%d", i), 1000*r.Float64(), 0.5+0.5*r.Float64())
	}
	return tab
}

// BenchmarkEngineRepeatedQuery measures repeated same-table queries through
// the caching engine against the uncached path (a cache-disabled engine,
// i.e. calling TopKDistribution in a loop with preparation from scratch
// each time). Results are bit-identical (TestEngineCachedMatchesUncached);
// the cached path amortizes preparation across the steady state.
func BenchmarkEngineRepeatedQuery(b *testing.B) {
	tab := servingTable(20000)
	for _, bench := range []struct {
		name   string
		engine *probtopk.Engine
	}{
		{"cached", probtopk.NewEngine()},
		{"uncached-loop", probtopk.NewEngineWithCache(0)},
	} {
		b.Run(bench.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				dist, err := bench.engine.TopKDistribution(tab, 5, nil)
				if err != nil {
					b.Fatal(err)
				}
				if dist.Len() == 0 {
					b.Fatal("empty distribution")
				}
			}
		})
	}
}

// BenchmarkEngineBatch measures a mixed (k, threshold) batch against one
// prepared table, serial vs fanned out over the bounded worker pool.
func BenchmarkEngineBatch(b *testing.B) {
	tab := servingTable(20000)
	queries := make([]probtopk.BatchQuery, 16)
	for i := range queries {
		queries[i] = probtopk.BatchQuery{K: 2 + i%8, Threshold: 0.001}
	}
	e := probtopk.NewEngine()
	for _, par := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", par), func(b *testing.B) {
			opts := &probtopk.Options{Parallelism: par}
			for i := 0; i < b.N; i++ {
				if _, err := e.TopKDistributionBatch(tab, queries, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStreamPushQuery measures the windowed push+query cycle, whose
// cost the incremental prepared-state maintenance (suffix re-prepare
// instead of per-query sort) bounds.
func BenchmarkStreamPushQuery(b *testing.B) {
	r := rand.New(rand.NewSource(12))
	s, err := probtopk.NewStream(512)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 512; i++ {
		s.Push(probtopk.Tuple{ID: "t", Score: 1000 * r.Float64(), Prob: 0.5 + 0.5*r.Float64()})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Push(probtopk.Tuple{ID: "t", Score: 1000 * r.Float64(), Prob: 0.5 + 0.5*r.Float64()}); err != nil {
			b.Fatal(err)
		}
		if _, err := s.TopKDistribution(5, nil); err != nil {
			b.Fatal(err)
		}
	}
}
