package engine

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"probtopk/internal/core"
	"probtopk/internal/pmf"
	"probtopk/internal/uncertain"
)

func randomTable(r *rand.Rand, n int, groupFrac float64) *uncertain.Table {
	tab := uncertain.NewTable()
	mass := make(map[string]float64)
	for i := 0; i < n; i++ {
		prob := 0.05 + 0.25*r.Float64()
		group := ""
		if r.Float64() < groupFrac {
			g := fmt.Sprintf("g%d", r.Intn(3))
			if mass[g]+prob <= 1 {
				group = g
				mass[g] += prob
			}
		}
		tab.Add(uncertain.Tuple{
			ID:    fmt.Sprintf("t%d", i),
			Score: math.Floor(100 * r.Float64()),
			Prob:  prob,
			Group: group,
		})
	}
	return tab
}

func sameDist(t *testing.T, label string, got, want *pmf.Dist) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("%s: %d lines, want %d", label, got.Len(), want.Len())
	}
	for i := 0; i < want.Len(); i++ {
		g, w := got.Line(i), want.Line(i)
		if g.Score != w.Score || g.Prob != w.Prob || g.VecProb != w.VecProb {
			t.Fatalf("%s: line %d = %+v, want %+v", label, i, g, w)
		}
		gs, ws := g.Vec.Slice(), w.Vec.Slice()
		if len(gs) != len(ws) {
			t.Fatalf("%s: line %d vector %v, want %v", label, i, gs, ws)
		}
		for j := range gs {
			if gs[j] != ws[j] {
				t.Fatalf("%s: line %d vector %v, want %v", label, i, gs, ws)
			}
		}
	}
}

// TestCacheHitMiss: repeated Prepare over an unchanged table returns the
// identical Prepared from cache; mutating the table invalidates.
func TestCacheHitMiss(t *testing.T) {
	e := New(8)
	tab := randomTable(rand.New(rand.NewSource(1)), 20, 0.3)

	p1, err := e.Prepare(tab)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := e.Prepare(tab)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Fatal("second Prepare over unchanged table did not hit the cache")
	}
	if s := e.Stats(); s.Hits != 1 || s.Misses != 1 || s.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / 1 entry", s)
	}

	tab.AddIndependent("fresh", 55, 0.5)
	p3, err := e.Prepare(tab)
	if err != nil {
		t.Fatal(err)
	}
	if p3 == p1 {
		t.Fatal("Prepare after mutation returned the stale Prepared")
	}
	if p3.Len() != tab.Len() {
		t.Fatalf("stale preparation: %d tuples, table has %d", p3.Len(), tab.Len())
	}
	// The stale version is replaced, not kept alongside.
	if s := e.Stats(); s.Misses != 2 || s.Entries != 1 {
		t.Fatalf("stats after mutation = %+v, want 2 misses / 1 entry", s)
	}
}

// TestCacheEvictionAndInvalidate: the LRU bound holds, and Invalidate
// releases an entry.
func TestCacheEvictionAndInvalidate(t *testing.T) {
	e := New(2)
	r := rand.New(rand.NewSource(2))
	tabs := []*uncertain.Table{
		randomTable(r, 8, 0), randomTable(r, 8, 0), randomTable(r, 8, 0),
	}
	for _, tab := range tabs {
		if _, err := e.Prepare(tab); err != nil {
			t.Fatal(err)
		}
	}
	if s := e.Stats(); s.Entries != 2 || s.Evictions != 1 {
		t.Fatalf("stats = %+v, want 2 entries / 1 eviction", s)
	}
	// tabs[0] was evicted (LRU); tabs[2] is cached.
	if _, err := e.Prepare(tabs[2]); err != nil {
		t.Fatal(err)
	}
	if s := e.Stats(); s.Hits != 1 {
		t.Fatalf("stats = %+v, want 1 hit on the resident table", s)
	}
	e.Invalidate(tabs[2])
	if s := e.Stats(); s.Entries != 1 {
		t.Fatalf("after Invalidate: %d entries, want 1", s.Entries)
	}
}

// TestCacheDisabled: cache size 0 prepares afresh every time.
func TestCacheDisabled(t *testing.T) {
	e := New(0)
	tab := randomTable(rand.New(rand.NewSource(3)), 12, 0.2)
	p1, err := e.Prepare(tab)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := e.Prepare(tab)
	if err != nil {
		t.Fatal(err)
	}
	if p1 == p2 {
		t.Fatal("cache-disabled engine returned a cached Prepared")
	}
}

// TestPooledScratchBitIdentical: query results through the engine's pooled
// (and warmed, recycled) scratch are bit-identical to a fresh zero Scratch
// on every trial — the pooling is purely an allocation optimisation.
func TestPooledScratchBitIdentical(t *testing.T) {
	e := New(8)
	r := rand.New(rand.NewSource(4))
	for trial := 0; trial < 30; trial++ {
		tab := randomTable(r, 10+r.Intn(20), 0.4)
		if tab.Validate() != nil {
			continue
		}
		params := core.Params{
			K: 1 + r.Intn(4), Threshold: 0.001, MaxLines: 50, TrackVectors: true,
		}
		got, err := e.Distribution(tab, params)
		if err != nil {
			t.Fatal(err)
		}
		prep, err := uncertain.Prepare(tab)
		if err != nil {
			t.Fatal(err)
		}
		want, err := core.DistributionScratch(prep, params, new(core.Scratch))
		if err != nil {
			t.Fatal(err)
		}
		sameDist(t, fmt.Sprintf("trial %d", trial), got.Dist, want.Dist)
	}
}

// TestBatchMatchesIndividual: batch execution (serial and fanned out) gives
// exactly the per-query results.
func TestBatchMatchesIndividual(t *testing.T) {
	e := New(8)
	tab := randomTable(rand.New(rand.NewSource(5)), 40, 0.3)
	queries := []Query{
		{K: 1, Threshold: 0.001}, {K: 2, Threshold: 0.001}, {K: 3, Threshold: 0},
		{K: 2, Threshold: 0.05}, {K: 5, Threshold: 0.001}, {K: 4, Threshold: 0.01},
	}
	base := core.Params{MaxLines: 100, TrackVectors: true}
	for _, workers := range []int{1, 4} {
		results, err := e.Batch(tab, base, queries, workers)
		if err != nil {
			t.Fatal(err)
		}
		if len(results) != len(queries) {
			t.Fatalf("workers=%d: %d results for %d queries", workers, len(results), len(queries))
		}
		for i, q := range queries {
			params := base
			params.K = q.K
			params.Threshold = q.Threshold
			want, err := e.Distribution(tab, params)
			if err != nil {
				t.Fatal(err)
			}
			sameDist(t, fmt.Sprintf("workers=%d query %d", workers, i), results[i].Dist, want.Dist)
			if results[i].ScanDepth != want.ScanDepth {
				t.Fatalf("workers=%d query %d: scan depth %d, want %d",
					workers, i, results[i].ScanDepth, want.ScanDepth)
			}
		}
	}
	// The whole exercise prepared the table exactly once.
	if s := e.Stats(); s.Misses != 1 {
		t.Fatalf("stats = %+v, want a single preparation", s)
	}
}

// TestBatchError: an invalid query aborts the batch in both execution modes.
func TestBatchError(t *testing.T) {
	e := New(4)
	tab := randomTable(rand.New(rand.NewSource(6)), 10, 0)
	queries := []Query{{K: 2, Threshold: 0.001}, {K: 0, Threshold: 0.001}}
	for _, workers := range []int{1, 2} {
		if _, err := e.Batch(tab, core.Params{TrackVectors: true}, queries, workers); err == nil {
			t.Fatalf("workers=%d: k=0 should error", workers)
		}
	}
}

// TestConcurrentQueries: many goroutines querying one engine and table get
// identical answers (run with -race to exercise the cache and scratch pool).
func TestConcurrentQueries(t *testing.T) {
	e := New(4)
	tab := randomTable(rand.New(rand.NewSource(7)), 30, 0.3)
	params := core.Params{K: 3, Threshold: 0.001, MaxLines: 60, TrackVectors: true}
	want, err := e.Distribution(tab, params)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errc := make(chan error, 32)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				res, err := e.Distribution(tab, params)
				if err != nil {
					errc <- err
					return
				}
				if res.Dist.Len() != want.Dist.Len() || res.Dist.TotalMass() != want.Dist.TotalMass() {
					errc <- fmt.Errorf("concurrent result diverged: %v vs %v", res.Dist, want.Dist)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

func TestQueryLatencyCounters(t *testing.T) {
	e := New(4)
	tab := randomTable(rand.New(rand.NewSource(3)), 30, 0.3)
	if _, err := e.Distribution(tab, core.Params{K: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Batch(tab, core.Params{}, []Query{{K: 1}, {K: 2}, {K: 3}}, 2); err != nil {
		t.Fatal(err)
	}
	s := e.Stats()
	if s.Queries != 4 {
		t.Fatalf("Queries = %d, want 4", s.Queries)
	}
	if s.QueryNanos == 0 {
		t.Fatal("QueryNanos = 0, want > 0")
	}
}

// TestCacheNoCrossServeAcrossCloneAndRecreate regression-tests the
// identity-keyed cache against the scenarios the old (pointer, version) key
// could get wrong: a clone shares its origin's Version, and a recreated
// table built by the same number of Adds shares it too — the cache must
// serve each its own preparation.
func TestCacheNoCrossServeAcrossCloneAndRecreate(t *testing.T) {
	e := New(8)
	tab := uncertain.NewTable()
	tab.AddIndependent("a", 10, 0.5)
	tab.AddIndependent("b", 5, 0.5)
	p1, err := e.Prepare(tab)
	if err != nil {
		t.Fatal(err)
	}

	clone := tab.Clone()
	clone.AddIndependent("c", 99, 0.5)
	pc, err := e.Prepare(clone)
	if err != nil {
		t.Fatal(err)
	}
	if pc == p1 || pc.Len() != 3 {
		t.Fatalf("clone served its origin's preparation: %v", pc)
	}
	// The origin still hits its own entry.
	back, err := e.Prepare(tab)
	if err != nil {
		t.Fatal(err)
	}
	if back != p1 {
		t.Fatal("origin's cache entry was clobbered by the clone")
	}

	// Recreate: same Add count and Version as tab, different contents.
	again := uncertain.NewTable()
	again.AddIndependent("a", 77, 0.5)
	again.AddIndependent("b", 5, 0.5)
	if again.Version() != tab.Version() {
		t.Fatalf("precondition: versions differ (%d vs %d)", again.Version(), tab.Version())
	}
	pa, err := e.Prepare(again)
	if err != nil {
		t.Fatal(err)
	}
	if pa == p1 || pa.Tuples[0].Score != 77 {
		t.Fatalf("recreated table served stale contents: %+v", pa.Tuples[0])
	}
}

// TestPrepareSnapshotConcurrentWithMutation: queries over earlier snapshots
// run (and cache) correctly while the table keeps mutating — the lock-free
// read guarantee at the engine layer. Run with -race.
func TestPrepareSnapshotConcurrentWithMutation(t *testing.T) {
	e := New(8)
	tab := randomTable(rand.New(rand.NewSource(9)), 40, 0.3)
	var wg sync.WaitGroup
	for step := 0; step < 60; step++ {
		s := tab.Snapshot()
		wantLen := tab.Len()
		wg.Add(1)
		go func() {
			defer wg.Done()
			prep, err := e.PrepareSnapshot(s)
			if err != nil {
				t.Error(err)
				return
			}
			if prep.Len() != wantLen {
				t.Errorf("prepared %d tuples, want %d", prep.Len(), wantLen)
				return
			}
			if _, err := e.DistributionPrepared(prep, core.Params{K: 2, Threshold: 0.001}); err != nil {
				t.Error(err)
			}
		}()
		tab.AddIndependent(fmt.Sprintf("new%d", step), float64(step%50), 0.4)
	}
	wg.Wait()

	// A late insert of an old snapshot must not shadow the current state:
	// after everything drains, preparing the current snapshot returns the
	// current contents.
	prep, err := e.Prepare(tab)
	if err != nil {
		t.Fatal(err)
	}
	if prep.Len() != tab.Len() {
		t.Fatalf("current preparation has %d tuples, want %d", prep.Len(), tab.Len())
	}
}

// TestInvalidateSnapshot: dropping a snapshot's entry forces a re-prepare
// without touching other entries.
func TestInvalidateSnapshot(t *testing.T) {
	e := New(8)
	tab := randomTable(rand.New(rand.NewSource(10)), 10, 0)
	s := tab.Snapshot()
	p1, err := e.PrepareSnapshot(s)
	if err != nil {
		t.Fatal(err)
	}
	e.InvalidateSnapshot(s.ID())
	if st := e.Stats(); st.Entries != 0 {
		t.Fatalf("entries = %d after InvalidateSnapshot", st.Entries)
	}
	p2, err := e.PrepareSnapshot(s)
	if err != nil {
		t.Fatal(err)
	}
	if p1 == p2 {
		t.Fatal("invalidated entry was still served")
	}
}

// TestInvalidateNilTable: Invalidate(nil) is a safe no-op, as it was before
// identity keying.
func TestInvalidateNilTable(t *testing.T) {
	e := New(4)
	e.Invalidate(nil) // must not panic
	if st := e.Stats(); st.Entries != 0 {
		t.Fatalf("entries = %d", st.Entries)
	}
}

// TestInvalidateAfterDeleteRecreate covers the delete-recreate lifecycle
// the durable registry performs on recovery: the original table's entry is
// invalidated on delete, a re-created table with identical contents gets a
// FRESH identity (recovery re-mints identities on every boot), and neither
// Invalidate of the dead table nor late traffic on the new one can
// resurrect or disturb the other's cache entries.
func TestInvalidateAfterDeleteRecreate(t *testing.T) {
	e := New(8)
	old := randomTable(rand.New(rand.NewSource(20)), 12, 0.5)
	oldSnap := old.Snapshot()
	oldPrep, err := e.PrepareSnapshot(oldSnap)
	if err != nil {
		t.Fatal(err)
	}
	// "Delete": the server invalidates by table on the remove path.
	e.Invalidate(old)
	if st := e.Stats(); st.Entries != 0 {
		t.Fatalf("entries = %d after delete", st.Entries)
	}
	// "Recreate": identical contents, fresh identity (as after recovery).
	fresh := uncertain.NewTable()
	for _, tp := range old.Tuples() {
		fresh.Add(tp)
	}
	freshSnap := fresh.Snapshot()
	if freshSnap.ID() == oldSnap.ID() || freshSnap.Owner() == oldSnap.Owner() {
		t.Fatalf("recreate reused identity: %d/%d", freshSnap.ID(), freshSnap.Owner())
	}
	freshPrep, err := e.PrepareSnapshot(freshSnap)
	if err != nil {
		t.Fatal(err)
	}
	if freshPrep == oldPrep {
		t.Fatal("recreated table served the dead table's preparation")
	}
	// Invalidating the DEAD table again must not touch the new entry...
	e.Invalidate(old)
	e.InvalidateSnapshot(oldSnap.ID())
	if p, err := e.PrepareSnapshot(freshSnap); err != nil || p != freshPrep {
		t.Fatalf("stale invalidation disturbed the live entry: %p vs %p (%v)", p, freshPrep, err)
	}
	// ...and invalidating the new table must not resurrect the old one.
	e.Invalidate(fresh)
	if st := e.Stats(); st.Entries != 0 {
		t.Fatalf("entries = %d after invalidating recreate", st.Entries)
	}
}

// TestInvalidateSnapshotAfterSupersede covers InvalidateSnapshot on the
// byOwner supersede path: once a newer snapshot of the same table is
// cached, the older entry is gone, and invalidating the old ID is a no-op
// that must not drop the newer entry. A late re-insert of the OLD snapshot
// (a slow query finishing after a mutation) is cached by ID without
// touching the owner index — Invalidate(table) then removes the latest
// entry, and InvalidateSnapshot is what reclaims the late straggler.
func TestInvalidateSnapshotAfterSupersede(t *testing.T) {
	e := New(8)
	tab := randomTable(rand.New(rand.NewSource(21)), 10, 0.3)
	s1 := tab.Snapshot()
	if _, err := e.PrepareSnapshot(s1); err != nil {
		t.Fatal(err)
	}
	tab.AddIndependent("extra", 55, 0.5)
	s2 := tab.Snapshot()
	p2, err := e.PrepareSnapshot(s2) // supersedes s1's entry eagerly
	if err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.Entries != 1 {
		t.Fatalf("entries = %d after supersede", st.Entries)
	}
	e.InvalidateSnapshot(s1.ID()) // stale ID: must be a no-op
	if p, err := e.PrepareSnapshot(s2); err != nil || p != p2 {
		t.Fatalf("stale InvalidateSnapshot dropped the live entry (%v)", err)
	}

	// Late straggler: the superseded snapshot is re-prepared after the
	// fact (a slow query), landing in the cache by ID only.
	if _, err := e.PrepareSnapshot(s1); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.Entries != 2 {
		t.Fatalf("entries = %d with straggler", st.Entries)
	}
	// The owner index still points at the LATEST snapshot: invalidating
	// the table removes s2's entry, not the straggler...
	e.Invalidate(tab)
	if p, err := e.PrepareSnapshot(s1); err != nil {
		t.Fatal(err)
	} else if st := e.Stats(); st.Entries != 1 || st.Hits == 0 && p == nil {
		t.Fatalf("straggler lost with the owner entry: %+v", st)
	}
	// ...and InvalidateSnapshot reclaims the straggler by its own ID.
	e.InvalidateSnapshot(s1.ID())
	if st := e.Stats(); st.Entries != 0 {
		t.Fatalf("entries = %d after reclaiming straggler", st.Entries)
	}
}
