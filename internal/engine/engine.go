// Package engine provides the reusable, concurrency-safe query engine that
// turns the one-shot batch algorithms of internal/core into something that
// can sit behind a server:
//
//   - Prepared-table caching. uncertain.Prepare sorts, validates and indexes
//     a table; for repeated queries over slowly-changing data that dominates
//     small-query cost. The engine caches Prepared values keyed by the
//     (table pointer, mutation version) pair, so queries over an unchanged
//     table skip preparation entirely and any mutation (which bumps the
//     version) transparently invalidates.
//   - Pooled scratch. Every query draws its dynamic-programming working
//     state (grid combiner, coalescer, recycled intermediate distributions)
//     from the process-wide core.Scratch pool, so steady-state queries
//     allocate near-zero. Results are bit-identical to fresh allocation.
//   - Batched multi-query execution. Many (k, threshold) queries against
//     one prepared table share the preparation, the precomputed Theorem-2
//     prefix sums and the memoized unit decomposition, fanned out over a
//     bounded worker pool.
//
// An Engine is safe for concurrent use; tables must not be mutated while
// queries over them are in flight (the usual Table contract).
package engine

import (
	"container/list"
	"sync"
	"sync/atomic"
	"time"

	"probtopk/internal/core"
	"probtopk/internal/uncertain"
)

// DefaultCacheSize is the default number of prepared tables an Engine
// retains. Each distinct *Table occupies at most one slot (only the latest
// version of a table is reachable, so stale versions are dropped eagerly).
const DefaultCacheSize = 64

// Engine is a reusable query engine with a bounded LRU cache of prepared
// tables. The zero value is not usable; construct with New.
type Engine struct {
	cacheCap int

	mu    sync.Mutex
	byTab map[*uncertain.Table]*list.Element // of *cacheEntry
	lru   *list.List                         // front = most recently used

	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64

	queries    atomic.Uint64
	queryNanos atomic.Uint64
}

type cacheEntry struct {
	tab     *uncertain.Table
	version uint64
	prep    *uncertain.Prepared
}

// New returns an Engine whose prepared-table cache holds up to cacheSize
// tables. cacheSize <= 0 disables caching: every query prepares afresh
// (scratch pooling and batching still apply), which is the configuration
// benchmarks use as the uncached baseline.
func New(cacheSize int) *Engine {
	return &Engine{
		cacheCap: cacheSize,
		byTab:    make(map[*uncertain.Table]*list.Element),
		lru:      list.New(),
	}
}

// Stats is a snapshot of the engine's cache and query counters.
type Stats struct {
	Hits, Misses, Evictions uint64
	Entries                 int
	// Queries counts the distribution computations the engine has run
	// (each member of a batch counts once); QueryNanos is their cumulative
	// wall-clock time in nanoseconds. Together they give the mean DP cost a
	// serving layer can export.
	Queries    uint64
	QueryNanos uint64
}

// Stats returns a snapshot of the cache counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	n := e.lru.Len()
	e.mu.Unlock()
	return Stats{
		Hits:       e.hits.Load(),
		Misses:     e.misses.Load(),
		Evictions:  e.evictions.Load(),
		Entries:    n,
		Queries:    e.queries.Load(),
		QueryNanos: e.queryNanos.Load(),
	}
}

// recordQueries adds n computed queries taking d to the latency counters.
func (e *Engine) recordQueries(n int, d time.Duration) {
	e.queries.Add(uint64(n))
	e.queryNanos.Add(uint64(d))
}

// Prepare returns the Prepared form of t, from cache when t has not been
// mutated since it was last prepared, preparing and caching it otherwise.
// The returned Prepared is shared: it is immutable and safe for concurrent
// readers, but must be discarded once the table mutates.
func (e *Engine) Prepare(t *uncertain.Table) (*uncertain.Prepared, error) {
	if e.cacheCap <= 0 {
		e.misses.Add(1)
		return uncertain.Prepare(t)
	}
	version := t.Version()
	e.mu.Lock()
	if el, ok := e.byTab[t]; ok {
		ent := el.Value.(*cacheEntry)
		if ent.version == version {
			e.lru.MoveToFront(el)
			e.mu.Unlock()
			e.hits.Add(1)
			return ent.prep, nil
		}
		// The table mutated: the old version is unreachable, drop it now
		// rather than letting it age out.
		e.lru.Remove(el)
		delete(e.byTab, t)
	}
	e.mu.Unlock()
	e.misses.Add(1)
	// Prepare outside the lock: sorting a large table must not block
	// concurrent cache hits. A racing prepare of the same version does
	// redundant work but stays correct (last insert wins).
	prep, err := uncertain.Prepare(t)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	if el, ok := e.byTab[t]; ok {
		e.lru.Remove(el)
	}
	e.byTab[t] = e.lru.PushFront(&cacheEntry{tab: t, version: version, prep: prep})
	for e.lru.Len() > e.cacheCap {
		oldest := e.lru.Back()
		e.lru.Remove(oldest)
		delete(e.byTab, oldest.Value.(*cacheEntry).tab)
		e.evictions.Add(1)
	}
	e.mu.Unlock()
	return prep, nil
}

// Invalidate drops any cached preparation of t, releasing the engine's
// references to both the table and its Prepared form.
func (e *Engine) Invalidate(t *uncertain.Table) {
	e.mu.Lock()
	if el, ok := e.byTab[t]; ok {
		e.lru.Remove(el)
		delete(e.byTab, t)
	}
	e.mu.Unlock()
}

// Distribution answers one main-algorithm query over t, using the cached
// preparation and pooled scratch.
func (e *Engine) Distribution(t *uncertain.Table, params core.Params) (*core.Result, error) {
	prep, err := e.Prepare(t)
	if err != nil {
		return nil, err
	}
	return e.DistributionPrepared(prep, params)
}

// DistributionPrepared answers one main-algorithm query over an
// already-prepared table with pooled scratch.
func (e *Engine) DistributionPrepared(p *uncertain.Prepared, params core.Params) (*core.Result, error) {
	s := core.GetScratch()
	defer core.PutScratch(s)
	start := time.Now()
	res, err := core.DistributionScratch(p, params, s)
	e.recordQueries(1, time.Since(start))
	return res, err
}

// Query is one member of a batch: a (k, threshold) pair evaluated against
// the shared prepared table. Threshold carries core.Params semantics
// (0 means exact; callers resolve any public-API sentinel beforehand).
type Query struct {
	K         int
	Threshold float64
}

// Batch answers many (k, threshold) queries against one table, sharing a
// single (cached) preparation, the precomputed prefix sums and the memoized
// unit decomposition. workers bounds the fan-out goroutines; values below 2
// run the batch serially on the calling goroutine. When fanning out, each
// query's DP runs serially (base.Parallelism is ignored) — the batch itself
// is the parallelism.
//
// Results are indexed like queries. The first error (by query index) aborts
// the batch.
func (e *Engine) Batch(t *uncertain.Table, base core.Params, queries []Query, workers int) ([]*core.Result, error) {
	prep, err := e.Prepare(t)
	if err != nil {
		return nil, err
	}
	return e.BatchPrepared(prep, base, queries, workers)
}

// BatchPrepared is Batch against an already-prepared table.
func (e *Engine) BatchPrepared(p *uncertain.Prepared, base core.Params, queries []Query, workers int) ([]*core.Result, error) {
	results := make([]*core.Result, len(queries))
	if len(queries) == 0 {
		return results, nil
	}
	// Force the memoization of the unit decomposition before fanning out so
	// every query shares one computation of it.
	p.AllUnits()
	if workers > len(queries) {
		workers = len(queries)
	}
	if workers < 2 {
		s := core.GetScratch()
		defer core.PutScratch(s)
		for i, q := range queries {
			params := base
			params.K = q.K
			params.Threshold = q.Threshold
			start := time.Now()
			res, err := core.DistributionScratch(p, params, s)
			e.recordQueries(1, time.Since(start))
			if err != nil {
				return nil, err
			}
			results[i] = res
		}
		return results, nil
	}
	errs := make([]error, len(queries))
	next := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			s := core.GetScratch()
			defer core.PutScratch(s)
			for i := range next {
				params := base
				params.K = queries[i].K
				params.Threshold = queries[i].Threshold
				params.Parallelism = 0 // the batch is the parallelism
				start := time.Now()
				results[i], errs[i] = core.DistributionScratch(p, params, s)
				e.recordQueries(1, time.Since(start))
			}
		}()
	}
	for i := range queries {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}
