// Package engine provides the reusable, concurrency-safe query engine that
// turns the one-shot batch algorithms of internal/core into something that
// can sit behind a server:
//
//   - Prepared-table caching. uncertain.Prepare sorts, validates and indexes
//     a table; for repeated queries over slowly-changing data that dominates
//     small-query cost. The engine caches Prepared values keyed by the
//     snapshot identity (uncertain.Snapshot.ID): queries over an unchanged
//     table hand out the same snapshot and skip preparation entirely, a
//     mutation mints a fresh snapshot whose ID transparently misses, and —
//     because IDs are process-unique and never reused — a cached entry can
//     never be served for different contents, whatever happens to table
//     pointers, versions or clones.
//   - Pooled scratch. Every query draws its dynamic-programming working
//     state (grid combiner, coalescer, recycled intermediate distributions)
//     from the process-wide core.Scratch pool, so steady-state queries
//     allocate near-zero. Results are bit-identical to fresh allocation.
//   - Batched multi-query execution. Many (k, threshold) queries against
//     one prepared table share the preparation, the precomputed Theorem-2
//     prefix sums and the memoized unit decomposition, fanned out over a
//     bounded worker pool.
//
// An Engine is safe for concurrent use. Queries that enter through a
// *Table must follow the usual Table contract (no mutation concurrent with
// the call itself), but queries that enter through a Snapshot hold nothing:
// the table may keep mutating while they run.
package engine

import (
	"container/list"
	"sync"
	"sync/atomic"
	"time"

	"probtopk/internal/core"
	"probtopk/internal/uncertain"
)

// DefaultCacheSize is the default number of prepared snapshots an Engine
// retains. Each table occupies at most one slot in the steady state: a
// newer snapshot of the same owner eagerly drops the superseded entry.
const DefaultCacheSize = 64

// Engine is a reusable query engine with a bounded LRU cache of prepared
// snapshots, split into one or more independently locked partitions. The
// zero value is not usable; construct with New or NewPartitioned.
type Engine struct {
	cacheCap int // total budget across partitions; <= 0 disables caching
	parts    []*cachePart

	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64

	queries    atomic.Uint64
	queryNanos atomic.Uint64

	// viewPrepares counts cache misses that were served by materializing the
	// snapshot's attached dynamic-index view (suffix reuse, shared memo)
	// instead of a from-scratch sort.
	viewPrepares atomic.Uint64
}

// cachePart is one independently locked slice of the prepared-snapshot
// cache. Entries are routed by table identity (Snapshot.Owner), so all
// snapshots of one table live in one partition — the byOwner supersede
// index stays sound — while unrelated tables stop contending on one lock.
type cachePart struct {
	cap int

	mu sync.Mutex
	// byID indexes every cached entry by its snapshot identity — the sound
	// lookup key.
	byID map[uint64]*list.Element // of *cacheEntry
	// byOwner tracks, per table identity, the entry for that table's LATEST
	// cached snapshot, so a newer snapshot can eagerly reclaim the
	// superseded one instead of letting it age out of the LRU.
	byOwner map[uint64]*list.Element
	lru     *list.List // front = most recently used
}

type cacheEntry struct {
	id    uint64 // snapshot identity
	owner uint64 // table identity
	prep  *uncertain.Prepared
}

// New returns an Engine whose prepared-snapshot cache holds up to cacheSize
// entries in a single partition. cacheSize <= 0 disables caching: every
// query prepares afresh (scratch pooling and batching still apply), which
// is the configuration benchmarks use as the uncached baseline.
func New(cacheSize int) *Engine {
	return NewPartitioned(cacheSize, 1)
}

// NewPartitioned returns an Engine whose prepared-snapshot cache is split
// into parts independently locked partitions, routed by table identity.
// The cacheSize budget is divided evenly (rounded up) across partitions;
// cacheSize <= 0 disables caching entirely, parts < 1 means one partition.
// Sharded serving layers pass their shard count so preparation-cache
// traffic for unrelated tables never meets on one mutex.
func NewPartitioned(cacheSize, parts int) *Engine {
	if parts < 1 {
		parts = 1
	}
	e := &Engine{cacheCap: cacheSize}
	if cacheSize <= 0 {
		return e
	}
	per := (cacheSize + parts - 1) / parts
	for i := 0; i < parts; i++ {
		e.parts = append(e.parts, &cachePart{
			cap:     per,
			byID:    make(map[uint64]*list.Element),
			byOwner: make(map[uint64]*list.Element),
			lru:     list.New(),
		})
	}
	return e
}

// part routes a table identity to its cache partition.
func (e *Engine) part(owner uint64) *cachePart {
	return e.parts[owner%uint64(len(e.parts))]
}

// Stats is a snapshot of the engine's cache and query counters.
type Stats struct {
	Hits, Misses, Evictions uint64
	Entries                 int
	// PartEntries is the current entry count of each cache partition
	// (length 1 for an unpartitioned engine, nil with caching disabled).
	PartEntries []int
	// Queries counts the distribution computations the engine has run
	// (each member of a batch counts once); QueryNanos is their cumulative
	// wall-clock time in nanoseconds. Together they give the mean DP cost a
	// serving layer can export.
	Queries    uint64
	QueryNanos uint64
	// ViewPrepares counts cache misses served from a snapshot's attached
	// dynamic-index view instead of a from-scratch sort.
	ViewPrepares uint64
	// Index aggregates the dynamic-index maintenance counters
	// (uncertain.IndexTotals) across the whole process — every index behind
	// this engine's snapshots reports there, whoever owns it.
	Index uncertain.IndexStats
}

// Stats returns a snapshot of the cache counters.
func (e *Engine) Stats() Stats {
	st := Stats{
		Hits:         e.hits.Load(),
		Misses:       e.misses.Load(),
		Evictions:    e.evictions.Load(),
		Queries:      e.queries.Load(),
		QueryNanos:   e.queryNanos.Load(),
		ViewPrepares: e.viewPrepares.Load(),
		Index:        uncertain.IndexTotals(),
	}
	for _, p := range e.parts {
		p.mu.Lock()
		n := p.lru.Len()
		p.mu.Unlock()
		st.PartEntries = append(st.PartEntries, n)
		st.Entries += n
	}
	return st
}

// recordQueries adds n computed queries taking d to the latency counters.
func (e *Engine) recordQueries(n int, d time.Duration) {
	e.queries.Add(uint64(n))
	e.queryNanos.Add(uint64(d))
}

// Prepare returns the Prepared form of t's current snapshot, from cache
// when possible. The returned Prepared is immutable and safe for concurrent
// readers for as long as the caller likes — it belongs to the snapshot, not
// to the table's future states.
func (e *Engine) Prepare(t *uncertain.Table) (*uncertain.Prepared, error) {
	if e.cacheCap <= 0 {
		e.misses.Add(1)
		return uncertain.Prepare(t)
	}
	return e.PrepareSnapshot(t.Snapshot())
}

// prepareContents builds the Prepared form of s, preferring its attached
// dynamic-index view — which reuses the index's unchanged rank prefix and
// shares the owner's memoized Prepared — over a from-scratch sort.
func (e *Engine) prepareContents(s *uncertain.Snapshot) (*uncertain.Prepared, error) {
	if v := s.IndexView(); v != nil && v.Len() == s.Len() {
		prep, err := v.Materialize()
		if err == nil {
			e.viewPrepares.Add(1)
			return prep, nil
		}
		// Invalid contents: fall through so the error comes from the same
		// validation path (and with the same wording) as uncached prepares.
	}
	return s.Prepare()
}

// PrepareSnapshot returns the Prepared form of s, keyed by its identity:
// from cache on a repeat, prepared and cached otherwise. A snapshot carrying
// a dynamic-index view (published by a mutate path that maintains an
// uncertain.Index) is materialized from the view instead of re-sorted.
func (e *Engine) PrepareSnapshot(s *uncertain.Snapshot) (*uncertain.Prepared, error) {
	if e.cacheCap <= 0 {
		e.misses.Add(1)
		return e.prepareContents(s)
	}
	id := s.ID()
	p := e.part(s.Owner())
	p.mu.Lock()
	if el, ok := p.byID[id]; ok {
		p.lru.MoveToFront(el)
		p.mu.Unlock()
		e.hits.Add(1)
		return el.Value.(*cacheEntry).prep, nil
	}
	p.mu.Unlock()
	e.misses.Add(1)
	// Prepare outside the lock: sorting a large snapshot must not block
	// concurrent cache hits. A racing prepare of the same snapshot does
	// redundant work but stays correct (the first insert wins).
	prep, err := e.prepareContents(s)
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	e.evictions.Add(p.insertLocked(&cacheEntry{id: id, owner: s.Owner(), prep: prep}))
	p.mu.Unlock()
	return prep, nil
}

// insertLocked adds ent to the partition, returning how many entries the
// LRU bound evicted. A newer snapshot of the same owner supersedes that
// owner's previous entry, which is dropped eagerly (it is unreachable
// through the table; a holder of the old snapshot re-prepares). An OLDER
// snapshot arriving late — a slow query racing a mutation — is cached by
// ID without disturbing the owner index, so it never shadows the current
// state's entry. Callers hold p.mu.
func (p *cachePart) insertLocked(ent *cacheEntry) (evicted uint64) {
	if el, ok := p.byID[ent.id]; ok {
		// A racing prepare of the same snapshot beat us; keep the resident
		// entry (identical contents) fresh.
		p.lru.MoveToFront(el)
		return 0
	}
	ownerIndexed := true
	if el, ok := p.byOwner[ent.owner]; ok {
		if el.Value.(*cacheEntry).id < ent.id {
			p.removeLocked(el)
		} else {
			ownerIndexed = false
		}
	}
	el := p.lru.PushFront(ent)
	p.byID[ent.id] = el
	if ownerIndexed {
		p.byOwner[ent.owner] = el
	}
	for p.lru.Len() > p.cap {
		p.removeLocked(p.lru.Back())
		evicted++
	}
	return evicted
}

// removeLocked unlinks el from every index. Callers hold p.mu.
func (p *cachePart) removeLocked(el *list.Element) {
	ent := el.Value.(*cacheEntry)
	p.lru.Remove(el)
	delete(p.byID, ent.id)
	if cur, ok := p.byOwner[ent.owner]; ok && cur == el {
		delete(p.byOwner, ent.owner)
	}
}

// Invalidate drops the cached preparation of t's latest snapshot, releasing
// the engine's reference to it. (Entries for t's older snapshots were
// already dropped when the newer one was cached.) A nil table is a no-op.
func (e *Engine) Invalidate(t *uncertain.Table) {
	if t == nil || e.cacheCap <= 0 {
		return
	}
	p := e.part(t.Identity())
	p.mu.Lock()
	if el, ok := p.byOwner[t.Identity()]; ok {
		p.removeLocked(el)
	}
	p.mu.Unlock()
}

// InvalidateSnapshot drops the cache entry for the snapshot with the given
// identity, if present. Only the snapshot ID is known, not its owner, so
// every partition is checked — the operation is rare (explicit cache
// release), the partitions few.
func (e *Engine) InvalidateSnapshot(id uint64) {
	for _, p := range e.parts {
		p.mu.Lock()
		if el, ok := p.byID[id]; ok {
			p.removeLocked(el)
			p.mu.Unlock()
			return
		}
		p.mu.Unlock()
	}
}

// Distribution answers one main-algorithm query over t, using the cached
// preparation and pooled scratch.
func (e *Engine) Distribution(t *uncertain.Table, params core.Params) (*core.Result, error) {
	prep, err := e.Prepare(t)
	if err != nil {
		return nil, err
	}
	return e.DistributionPrepared(prep, params)
}

// DistributionPrepared answers one main-algorithm query over an
// already-prepared table with pooled scratch.
func (e *Engine) DistributionPrepared(p *uncertain.Prepared, params core.Params) (*core.Result, error) {
	s := core.GetScratch()
	defer core.PutScratch(s)
	start := time.Now()
	res, err := core.DistributionScratch(p, params, s)
	e.recordQueries(1, time.Since(start))
	return res, err
}

// Query is one member of a batch: a (k, threshold) pair evaluated against
// the shared prepared table. Threshold carries core.Params semantics
// (0 means exact; callers resolve any public-API sentinel beforehand).
type Query struct {
	K         int
	Threshold float64
}

// Batch answers many (k, threshold) queries against one table, sharing a
// single (cached) preparation, the precomputed prefix sums and the memoized
// unit decomposition. workers bounds the fan-out goroutines; values below 2
// run the batch serially on the calling goroutine. When fanning out, each
// query's DP runs serially (base.Parallelism is ignored) — the batch itself
// is the parallelism.
//
// Results are indexed like queries. The first error (by query index) aborts
// the batch.
func (e *Engine) Batch(t *uncertain.Table, base core.Params, queries []Query, workers int) ([]*core.Result, error) {
	prep, err := e.Prepare(t)
	if err != nil {
		return nil, err
	}
	return e.BatchPrepared(prep, base, queries, workers)
}

// BatchPrepared is Batch against an already-prepared table.
func (e *Engine) BatchPrepared(p *uncertain.Prepared, base core.Params, queries []Query, workers int) ([]*core.Result, error) {
	results := make([]*core.Result, len(queries))
	if len(queries) == 0 {
		return results, nil
	}
	// Force the memoization of the unit decomposition before fanning out so
	// every query shares one computation of it.
	p.AllUnits()
	if workers > len(queries) {
		workers = len(queries)
	}
	if workers < 2 {
		s := core.GetScratch()
		defer core.PutScratch(s)
		for i, q := range queries {
			params := base
			params.K = q.K
			params.Threshold = q.Threshold
			start := time.Now()
			res, err := core.DistributionScratch(p, params, s)
			e.recordQueries(1, time.Since(start))
			if err != nil {
				return nil, err
			}
			results[i] = res
		}
		return results, nil
	}
	errs := make([]error, len(queries))
	next := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			s := core.GetScratch()
			defer core.PutScratch(s)
			for i := range next {
				params := base
				params.K = queries[i].K
				params.Threshold = queries[i].Threshold
				params.Parallelism = 1 // serial DP: the batch is the parallelism
				start := time.Now()
				results[i], errs[i] = core.DistributionScratch(p, params, s)
				e.recordQueries(1, time.Since(start))
			}
		}()
	}
	for i := range queries {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}
