package cartel

import (
	"math"
	"testing"

	"probtopk/internal/uncertain"
)

func TestGenerateAreaShape(t *testing.T) {
	a := GenerateArea(Config{Segments: 50, Seed: 1})
	if len(a.Segments) != 50 {
		t.Fatalf("segments = %d", len(a.Segments))
	}
	for _, s := range a.Segments {
		if s.LengthM < 80 || s.LengthM > 2000 {
			t.Fatalf("length out of range: %v", s.LengthM)
		}
		if s.SpeedLimitKPH < 30 || s.SpeedLimitKPH > 80 {
			t.Fatalf("speed limit out of range: %v", s.SpeedLimitKPH)
		}
		if len(s.Delays) < 8 || len(s.Delays) > 40 {
			t.Fatalf("measurement count out of range: %d", len(s.Delays))
		}
		free := s.FreeFlowDelay()
		for _, d := range s.Delays {
			if d < free*0.99 {
				t.Fatalf("delay %v below free-flow %v", d, free)
			}
		}
	}
}

func TestGenerateAreaDeterministic(t *testing.T) {
	a := GenerateArea(Config{Segments: 10, Seed: 42})
	b := GenerateArea(Config{Segments: 10, Seed: 42})
	for i := range a.Segments {
		if a.Segments[i].ID != b.Segments[i].ID || a.Segments[i].LengthM != b.Segments[i].LengthM {
			t.Fatal("generation not deterministic")
		}
		for j := range a.Segments[i].Delays {
			if a.Segments[i].Delays[j] != b.Segments[i].Delays[j] {
				t.Fatal("delays not deterministic")
			}
		}
	}
}

func TestCongestionScore(t *testing.T) {
	s := Segment{LengthM: 200, SpeedLimitKPH: 50}
	// score = 50 / (200 / delay); at delay 80 s → 20.
	if got := s.CongestionScore(80); math.Abs(got-20) > 1e-12 {
		t.Fatalf("score = %v", got)
	}
	// Free-flow delay: 200 m at 50 km/h = 14.4 s.
	if got := s.FreeFlowDelay(); math.Abs(got-14.4) > 1e-9 {
		t.Fatalf("free-flow = %v", got)
	}
}

func TestCongestionTable(t *testing.T) {
	a := GenerateArea(Config{Segments: 40, Seed: 7})
	tab, err := a.CongestionTable(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.Validate(); err != nil {
		t.Fatal(err)
	}
	p, err := uncertain.Prepare(tab)
	if err != nil {
		t.Fatal(err)
	}
	// Each segment's group mass is exactly 1 (frequencies sum to 1).
	perGroup := map[string]float64{}
	for _, tp := range tab.Tuples() {
		if tp.Group != "" {
			perGroup[tp.Group] += tp.Prob
		}
	}
	for g, m := range perGroup {
		if math.Abs(m-1) > 1e-9 {
			t.Fatalf("group %s mass = %v", g, m)
		}
	}
	// At most 4 bins per segment; group sizes respect that.
	for g := 0; g < p.NumGroups(); g++ {
		if n := len(p.GroupMembers(g)); n > 4 {
			t.Fatalf("group with %d bins", n)
		}
	}
}

func TestSingleBinFraction(t *testing.T) {
	a := GenerateArea(Config{Segments: 60, Seed: 8})
	full, err := a.CongestionTable(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	half, err := a.CongestionTable(4, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	all, err := a.CongestionTable(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	countME := func(tab *uncertain.Table) int {
		p, err := uncertain.Prepare(tab)
		if err != nil {
			t.Fatal(err)
		}
		return p.MExclusiveCount(p.Len())
	}
	if !(countME(all) == 0 && countME(half) < countME(full)) {
		t.Fatalf("ME counts not decreasing: full=%d half=%d all=%d",
			countME(full), countME(half), countME(all))
	}
	// With a single bin every tuple is independent and probability 1.
	for _, tp := range all.Tuples() {
		if tp.Prob != 1 || tp.Group != "" {
			t.Fatalf("single-bin tuple %+v", tp)
		}
	}
}

func TestCongestionTableErrors(t *testing.T) {
	a := GenerateArea(Config{Segments: 5, Seed: 9})
	if _, err := a.CongestionTable(0, 0); err == nil {
		t.Fatal("bins=0 should error")
	}
	if _, err := a.CongestionTable(4, -0.1); err == nil {
		t.Fatal("negative fraction should error")
	}
	if _, err := a.CongestionTable(4, 2); err == nil {
		t.Fatal("fraction > 1 should error")
	}
}

func TestBinSamples(t *testing.T) {
	bins := binSamples([]float64{1, 1.1, 5, 9.9, 10}, 2)
	if len(bins) != 2 {
		t.Fatalf("bins = %+v", bins)
	}
	var mass float64
	for _, b := range bins {
		mass += b.freq
	}
	if math.Abs(mass-1) > 1e-12 {
		t.Fatalf("bin mass = %v", mass)
	}
	// Constant samples collapse to one bin.
	one := binSamples([]float64{3, 3, 3}, 4)
	if len(one) != 1 || one[0].freq != 1 || one[0].mean != 3 {
		t.Fatalf("constant bins = %+v", one)
	}
	if binSamples(nil, 3) != nil {
		t.Fatal("empty samples should give no bins")
	}
}
