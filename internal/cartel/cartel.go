// Package cartel is the reproduction substitute for the CarTel road-delay
// dataset used in the paper's §5.1–§5.3 (taxi-measured travel delays on
// Boston-area road segments).
//
// The original data is not publicly distributable, so this package
// synthesizes an area of road segments with per-segment delay measurements
// drawn from a three-regime traffic mixture (free flow / congested / jammed)
// and then applies exactly the pipeline the paper describes: the
// measurements of each segment are binned, each bin becomes one uncertain
// tuple whose value is the bin's sample average and whose probability is the
// bin's relative frequency, and the bins of a segment form one mutual
// exclusion group. The ranking score is the paper's congestion score
//
//	congestion_score = speed_limit / (length / delay),
//
// with speed_limit in km/h, length in meters and delay in seconds (the
// constant-factor unit mismatch is the paper's own and is preserved).
//
// The substitution preserves what the algorithms consume — (score,
// probability, ME-group) triples from multi-modal per-segment delay
// distributions — which is all §5's experiments depend on.
package cartel

import (
	"fmt"
	"math"
	"sort"

	"probtopk/internal/stats"
	"probtopk/internal/uncertain"
)

// Segment is one road segment with its raw delay measurements in seconds.
type Segment struct {
	ID            string
	LengthM       float64
	SpeedLimitKPH float64
	// Congestion is the segment's latent congestion level in [0, 1], used
	// by the generator to skew the measurement mixture. Retained for
	// inspection.
	Congestion float64
	Delays     []float64
}

// FreeFlowDelay returns the travel time in seconds at the speed limit.
func (s Segment) FreeFlowDelay() float64 {
	return s.LengthM / (s.SpeedLimitKPH / 3.6)
}

// Area is a collection of road segments (the paper queries random areas,
// e.g. a city, from the whole dataset).
type Area struct {
	Segments []Segment
}

// Config drives the synthetic area generator.
type Config struct {
	// Segments is the number of road segments (default 120).
	Segments int
	// MinMeasurements and MaxMeasurements bound the per-segment sample count
	// (defaults 8 and 40).
	MinMeasurements, MaxMeasurements int
	// Seed drives the deterministic generator.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Segments == 0 {
		c.Segments = 120
	}
	if c.MinMeasurements == 0 {
		c.MinMeasurements = 8
	}
	if c.MaxMeasurements == 0 {
		c.MaxMeasurements = 40
	}
	return c
}

// GenerateArea synthesizes one area.
//
// Segment lengths are log-uniform in [80 m, 2 km]; speed limits are drawn
// from common urban values. Each measurement multiplies the free-flow delay
// by a congestion factor from a mixture whose weights depend on the
// segment's latent congestion level: free flow (factor ≈ 1), congested
// (factor 1.5–4), or jammed (factor 4–12, heavy tailed). This mirrors the
// multi-modal delay distributions CarTel observes on real roads.
func GenerateArea(cfg Config) *Area {
	cfg = cfg.withDefaults()
	rng := stats.New(cfg.Seed)
	limits := []float64{30, 40, 50, 60, 80}
	area := &Area{Segments: make([]Segment, cfg.Segments)}
	for i := range area.Segments {
		length := 80 * math.Exp(rng.Float64()*math.Log(2000.0/80.0))
		congestion := rng.Float64()
		s := Segment{
			ID:            fmt.Sprintf("seg%03d", i+1),
			LengthM:       length,
			SpeedLimitKPH: limits[rng.Intn(len(limits))],
			Congestion:    congestion,
		}
		free := s.FreeFlowDelay()
		n := rng.IntBetween(cfg.MinMeasurements, cfg.MaxMeasurements)
		for j := 0; j < n; j++ {
			s.Delays = append(s.Delays, free*congestionFactor(rng, congestion))
		}
		area.Segments[i] = s
	}
	return area
}

// congestionFactor draws one delay multiplier from the three-regime mixture.
func congestionFactor(rng *stats.RNG, congestion float64) float64 {
	// Congested segments see fewer free-flow and more jammed measurements.
	wFree := 0.55 - 0.4*congestion
	wJam := 0.05 + 0.3*congestion
	u := rng.Float64()
	switch {
	case u < wFree:
		return 1 + math.Abs(rng.NormFloat64())*0.08
	case u < 1-wJam:
		return 1.5 + rng.ExpFloat64()*0.9
	default:
		return 4 + rng.ExpFloat64()*3
	}
}

// CongestionScore returns the paper's score for a given delay on s.
func (s Segment) CongestionScore(delay float64) float64 {
	return s.SpeedLimitKPH / (s.LengthM / delay)
}

// CongestionTable converts the area into the uncertain table the paper's
// query scans: for each segment, delay samples are split into up to bins
// equal-width bins; each non-empty bin becomes one tuple with the bin's mean
// delay converted to a congestion score and the bin's relative frequency as
// probability; the bins of one segment form an ME group. Segments with a
// single bin yield an independent tuple.
//
// singleBinFraction ∈ [0, 1] forces that leading fraction of segments to a
// single bin (a point estimate), which controls the portion of mutually
// exclusive tuples for the Figure-11 experiment.
func (a *Area) CongestionTable(bins int, singleBinFraction float64) (*uncertain.Table, error) {
	if bins < 1 {
		return nil, fmt.Errorf("cartel: bins must be ≥ 1, got %d", bins)
	}
	if singleBinFraction < 0 || singleBinFraction > 1 {
		return nil, fmt.Errorf("cartel: single-bin fraction must be in [0, 1], got %v", singleBinFraction)
	}
	tab := uncertain.NewTable()
	cut := int(singleBinFraction * float64(len(a.Segments)))
	for i, seg := range a.Segments {
		b := bins
		if i < cut {
			b = 1
		}
		dist := binSamples(seg.Delays, b)
		group := ""
		if len(dist) > 1 {
			group = seg.ID
		}
		for j, bin := range dist {
			tab.Add(uncertain.Tuple{
				ID:    fmt.Sprintf("%s/b%d", seg.ID, j+1),
				Score: seg.CongestionScore(bin.mean),
				Prob:  bin.freq,
				Group: group,
			})
		}
	}
	if err := tab.Validate(); err != nil {
		return nil, fmt.Errorf("cartel: generated table invalid: %w", err)
	}
	return tab, nil
}

type bin struct {
	mean float64
	freq float64
}

// binSamples groups samples into up to n equal-frequency (quantile) bins and
// returns each bin's mean and relative frequency (which sum to 1). Bins are
// ordered by ascending mean delay.
//
// Equal-frequency binning keeps every uncertain tuple's probability near
// 1/n, matching the membership-probability profile of the paper's dataset —
// the Theorem-2 scan depths of Figure 9 (≈50 at k=10 to ≈250 at k=60) only
// arise when the head of the score order carries substantial probability.
func binSamples(samples []float64, n int) []bin {
	if len(samples) == 0 {
		return nil
	}
	lo, hi := stats.MinMax(samples)
	if n == 1 || hi == lo {
		return []bin{{mean: stats.Mean(samples), freq: 1}}
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	if n > len(sorted) {
		n = len(sorted)
	}
	total := float64(len(sorted))
	base, rem := len(sorted)/n, len(sorted)%n
	var out []bin
	pos := 0
	for i := 0; i < n; i++ {
		size := base
		if i < rem {
			size++
		}
		chunk := sorted[pos : pos+size]
		pos += size
		out = append(out, bin{mean: stats.Mean(chunk), freq: float64(size) / total})
	}
	return out
}
