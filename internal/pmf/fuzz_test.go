package pmf

import (
	"math"
	"testing"
)

// fuzzStream turns the fuzz input into a deterministic value stream,
// wrapping around when exhausted so short inputs still build full cases.
type fuzzStream struct {
	data []byte
	pos  int
}

func (s *fuzzStream) next() byte {
	if len(s.data) == 0 {
		return 0
	}
	v := s.data[s.pos%len(s.data)]
	s.pos++
	return v
}

func (s *fuzzStream) f64() float64 { return float64(s.next()) / 255 }

// fuzzDist builds a sorted distribution and its AoS mirror from the stream.
func (s *fuzzStream) dist(n int, withVecs bool) (*Dist, []Line) {
	d := New()
	var ref []Line
	score := s.f64() * 10
	for i := 0; i < n; i++ {
		if i > 0 {
			if s.next()%4 == 0 {
				// exact tie with the previous line
			} else {
				score += 1e-3 + s.f64()*2
			}
		}
		l := Line{Score: score, Prob: 0.01 + s.f64()}
		if withVecs && s.next()%5 > 0 {
			var v *Vector
			for depth := int(s.next() % 3); depth >= 0; depth-- {
				v = &Vector{Tuple: int(s.next() % 50), Next: v}
			}
			l.Vec = v
			l.VecProb = s.f64() * l.Prob
			l.VecBound = score - s.f64()
		}
		d.appendCombine(l)
		ref = refAppendCombine(ref, l)
	}
	return d, ref
}

func linesMass(ls []Line) float64 {
	var k KahanSum
	for _, l := range ls {
		k.Add(l.Prob)
	}
	return k.Sum()
}

// FuzzCombineCoalesce drives the fused grid kernel, the exact merge and the
// closest-pair coalescer over inputs decoded from the fuzz data and checks
// them against the retired AoS reference plus the structural invariants:
// sorted output, positive masses, and conservation of total probability
// mass (Σ out = skipFactor·mass(skip) + Σ_b factor_b·mass(take)).
func FuzzCombineCoalesce(f *testing.F) {
	f.Add([]byte{0x00})
	f.Add([]byte{0xff, 0x10, 0x20, 0x30, 0x40, 0x50, 0x60, 0x70})
	f.Add([]byte("tracked weighted skiptrue me-groups and exact ties \x03\x07\x1f"))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 0, 0, 0, 255, 255, 128})
	f.Fuzz(func(t *testing.T, data []byte) {
		s := &fuzzStream{data: data}
		flags := s.next()
		trackVectors := flags&1 != 0
		weighted := flags&2 != 0
		useSkipTrue := flags&4 != 0
		mode := CoalescePlainAverage
		if weighted {
			mode = CoalesceWeightedAverage
		}
		var skipTrue func(float64) float64
		if useSkipTrue {
			skipTrue = func(b float64) float64 { return 0.55 + 0.4*math.Sin(b) }
		}
		nSkip := int(s.next() % 48)
		nTake := int(s.next() % 48)
		nBranch := 1 + int(s.next()%6)
		maxLines := int(s.next()) % 40 // 0 exercises the unlimited/exact path
		skipFactor := s.f64()
		skipD, skipRef := s.dist(nSkip, trackVectors)
		takeD, takeRef := s.dist(nTake, trackVectors)
		branches := make([]TakeBranch, nBranch)
		rem := 1.0
		for i := range branches {
			fac := s.f64() * rem * 0.8
			rem -= fac
			branches[i] = TakeBranch{Shift: s.f64() * 20, Factor: fac, Tuple: 100 + i}
		}

		check := func(label string, got *Dist, want []Line) {
			t.Helper()
			diffLines(t, label, got, want, trackVectors)
			sc := got.Scores()
			for i := 1; i < len(sc); i++ {
				if sc[i] < sc[i-1] {
					t.Fatalf("%s: scores out of order at %d: %v > %v", label, i, sc[i-1], sc[i])
				}
			}
			for i, p := range got.Probs() {
				if p <= 0 {
					t.Fatalf("%s: non-positive mass %v at line %d", label, p, i)
				}
			}
		}

		wantMass := skipFactor * linesMass(skipRef)
		for _, b := range branches {
			wantMass += b.Factor * linesMass(takeRef)
		}

		got := Combine(skipD, skipFactor, takeD, branches, trackVectors, skipTrue)
		check("Combine", got, refCombine(skipRef, skipFactor, takeRef, branches, trackVectors, skipTrue))
		if m := got.TotalMass(); math.Abs(m-wantMass) > 1e-9*math.Max(1, wantMass) {
			t.Fatalf("Combine: mass %v, inputs carry %v", m, wantMass)
		}

		var g GridCombiner
		got = g.Combine(nil, skipD, skipFactor, takeD, branches, maxLines, mode, trackVectors, skipTrue)
		check("GridCombiner.Combine", got,
			refGridCombine(skipRef, skipFactor, takeRef, branches, maxLines, mode, trackVectors, skipTrue))
		if m := got.TotalMass(); math.Abs(m-wantMass) > 1e-9*math.Max(1, wantMass) {
			t.Fatalf("GridCombiner.Combine: mass %v, inputs carry %v", m, wantMass)
		}

		if limit := 1 + int(s.next()%8); got.Len() > limit {
			ref := refCoalesce(got.Lines(), limit, mode)
			got.Coalesce(limit, mode)
			check("Coalesce", got, ref)
		}
	})
}
