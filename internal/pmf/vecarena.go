package pmf

// arenaChunkNodes is the nodes-per-chunk granularity of a VectorArena:
// 4096 × 24 bytes ≈ 96 KiB per chunk.
const arenaChunkNodes = 4096

// maxArenaChunks bounds how many chunks a Reset arena keeps for reuse
// (≈ 48 MiB). A pathological query can still grow past this while running;
// the excess is released at the next Reset.
const maxArenaChunks = 512

// VectorArena is a chunked slab allocator for Vector nodes. The dynamic
// program allocates hundreds of thousands of short-lived vector nodes per
// query — the single dominant allocation source — and all of them die
// together when the query's final distribution is detached
// (Dist.DetachVectors). Allocating them from a recycled slab removes that
// traffic from the garbage collector entirely.
//
// A nil *VectorArena is valid and falls back to heap allocation, so kernels
// take an arena unconditionally. An arena is not safe for concurrent use;
// the per-query Scratch owns one.
//
// Safety: nodes allocated from an arena are invalidated by Reset. Any
// distribution that outlives the arena's owner must call DetachVectors
// first. Arena nodes may only point (via Next) at nodes of the same arena or
// at nil — the DP builds every vector from nil upward within one query, so
// this holds by construction.
type VectorArena struct {
	chunks [][]Vector // every chunk ever allocated (recycled by Reset)
	used   int        // chunks[:used] are in use; cur is chunks[used-1]
	cur    []Vector   // active chunk, len = nodes handed out from it
}

// Prepend returns a node with the given tuple and next pointer: from the
// arena when a is non-nil, from the heap otherwise.
func (a *VectorArena) Prepend(next *Vector, tuple int) *Vector {
	if a == nil {
		return &Vector{Tuple: tuple, Next: next}
	}
	cur := a.cur
	if len(cur) == cap(cur) {
		cur = a.nextChunk()
	}
	n := len(cur)
	cur = cur[:n+1]
	a.cur = cur
	v := &cur[n]
	v.Tuple = tuple
	v.Next = next
	return v
}

// nextChunk advances to a fresh (possibly recycled) chunk.
func (a *VectorArena) nextChunk() []Vector {
	if a.used < len(a.chunks) {
		c := a.chunks[a.used][:0]
		a.used++
		return c
	}
	c := make([]Vector, 0, arenaChunkNodes)
	a.chunks = append(a.chunks, c)
	a.used++
	return c
}

// Reset invalidates every node handed out so far and makes their storage
// available for reuse. Stale node contents are not zeroed: they only ever
// point within the arena, so they cannot pin foreign memory.
func (a *VectorArena) Reset() {
	if a == nil {
		return
	}
	if len(a.chunks) > maxArenaChunks {
		a.chunks = a.chunks[:maxArenaChunks]
	}
	a.used = 0
	a.cur = nil
}
