package pmf

import "sort"

// TakeBranch describes one "take" alternative of the paper's distribution
// merging step (2): shift a source distribution by Shift (the tuple's score),
// scale by Factor (the tuple's probability), and prepend Tuple to every
// recorded vector. Rule tuples contribute one branch per constituent tuple
// (§3.3.1, second attempt, kept for the working algorithm of §3.3.2).
type TakeBranch struct {
	Shift  float64
	Factor float64
	Tuple  int
}

// Combine implements the distribution merging process of §3.2 in one pass:
//
//	(1) every line (v, p) of skip becomes (v, p·skipFactor);
//	(2) for every branch b, every line (v, p) of take becomes
//	    (v + b.Shift, p·b.Factor) with b.Tuple prepended to its vector;
//	(3) the results are unioned, lines with equal scores combined by adding
//	    probabilities and keeping the higher-probability vector.
//
// skip or take may be nil/empty (treated as no-mass distributions, i.e. the
// blocked "(0,0)" exit points of §3.3.2). trackVectors controls whether
// representative vectors are maintained. The inputs are not modified.
//
// skipTrue, when non-nil, supplies the boundary-aware skip factor used for
// VecProb: given a line's VecBound (the score of its vector's last member),
// it returns the probability that the skipped row contributes no tuple
// *ranked strictly above that score*. Tuples tied with the boundary need not
// be absent for the vector to remain a top-k vector, so this keeps VecProb
// equal to the exact vector probability under ties (with or without ME
// groups). When skipTrue is nil, VecProb scales by skipFactor, which yields
// the paper's path-probability semantics instead.
//
// The output is built by an (#branches+1)-way merge of already-sorted
// sources, so the cost is O(L·(B+1)) for L lines and B branches.
func Combine(skip *Dist, skipFactor float64, take *Dist, branches []TakeBranch, trackVectors bool, skipTrue func(bound float64) float64) *Dist {
	return CombineInto(nil, skip, skipFactor, take, branches, trackVectors, skipTrue)
}

// CombineInto is Combine reusing dst's line storage when dst is non-nil.
// dst must not be one of the inputs. The dynamic program calls this once per
// cell, so recycling the previous generation's distributions removes the
// dominant allocation cost.
func CombineInto(dst *Dist, skip *Dist, skipFactor float64, take *Dist, branches []TakeBranch, trackVectors bool, skipTrue func(bound float64) float64) *Dist {
	return combineInto(dst, skip, skipFactor, take, branches, trackVectors, skipTrue, nil)
}

// mergeSrc is one already-sorted input stream of the N-way merge: a view of a
// source distribution's arrays plus the shift/scale of its branch.
type mergeSrc struct {
	scores  []float64
	probs   []float64
	vecs    []*Vector
	vprobs  []float64
	vbounds []float64
	pos     int
	shift   float64
	factor  float64
	tuple   int // -1 for the skip source
	hasVec  bool
}

// asSrc views d through branch (shift, factor, tuple).
func (d *Dist) asSrc(shift, factor float64, tuple int) mergeSrc {
	s := mergeSrc{
		scores: d.scores, probs: d.probs,
		shift: shift, factor: factor, tuple: tuple, hasVec: d.hasVec,
	}
	if d.hasVec {
		s.vecs, s.vprobs, s.vbounds = d.vecs, d.vprobs, d.vbounds
	}
	return s
}

// combineInto is the exact (non-coalescing) merge kernel. Vector nodes are
// allocated from ar when non-nil, from the heap otherwise.
func combineInto(dst *Dist, skip *Dist, skipFactor float64, take *Dist, branches []TakeBranch, trackVectors bool, skipTrue func(bound float64) float64, ar *VectorArena) *Dist {
	var buf [8]mergeSrc
	srcs := buf[:0]
	if skip != nil && len(skip.scores) > 0 && skipFactor > 0 {
		srcs = append(srcs, skip.asSrc(0, skipFactor, -1))
	}
	if take != nil && len(take.scores) > 0 {
		for _, b := range branches {
			if b.Factor > 0 {
				srcs = append(srcs, take.asSrc(b.Shift, b.Factor, b.Tuple))
			}
		}
	}
	out := dst
	if out == nil {
		out = New()
	}
	out.reset(trackVectors)
	if len(srcs) == 0 {
		return out
	}
	total := 0
	for i := range srcs {
		total += len(srcs[i].scores)
	}
	out.ensureCap(total)
	// Shifting by a constant preserves score order, so each source is sorted;
	// repeatedly pull the source with the smallest current score. The number
	// of sources is small (1 + group size), so a linear min scan is fine.
	for {
		best := -1
		var bestScore float64
		for i := range srcs {
			s := &srcs[i]
			if s.pos >= len(s.scores) {
				continue
			}
			sc := s.scores[s.pos] + s.shift
			if best == -1 || sc < bestScore {
				best, bestScore = i, sc
			}
		}
		if best == -1 {
			break
		}
		s := &srcs[best]
		p := s.pos
		s.pos++
		prob := s.probs[p] * s.factor
		if !trackVectors {
			out.appendLine(bestScore, prob)
			continue
		}
		var vec *Vector
		var vp, vb float64
		if s.tuple >= 0 {
			// Take: the tuple's own probability is the exact factor for the
			// vector probability too. A take onto an empty vector is the
			// vector's last (deepest) member and fixes the boundary.
			var inVec *Vector
			var inVP float64
			if s.hasVec {
				inVec, inVP, vb = s.vecs[p], s.vprobs[p], s.vbounds[p]
			}
			vec = ar.Prepend(inVec, s.tuple)
			vp = inVP * s.factor
			if inVec == nil {
				vb = s.shift
			}
		} else {
			if s.hasVec {
				vec, vp, vb = s.vecs[p], s.vprobs[p], s.vbounds[p]
			}
			if skipTrue != nil {
				vp *= skipTrue(vb)
			} else {
				vp *= s.factor
			}
		}
		out.appendLineVec(bestScore, prob, vec, vp, vb)
	}
	return out
}

// Merge unions two distributions (both scaled by 1), combining equal scores.
// Used to merge per-unit final distributions in the ME-handling algorithm.
func Merge(a, b *Dist) *Dist {
	if a == nil || len(a.scores) == 0 {
		if b == nil {
			return New()
		}
		return b.Clone()
	}
	if b == nil || len(b.scores) == 0 {
		return a.Clone()
	}
	out := &Dist{hasVec: a.hasVec || b.hasVec}
	out.ensureCap(len(a.scores) + len(b.scores))
	i, j := 0, 0
	for i < len(a.scores) || j < len(b.scores) {
		switch {
		case i >= len(a.scores):
			out.appendCombine(b.Line(j))
			j++
		case j >= len(b.scores):
			out.appendCombine(a.Line(i))
			i++
		case a.scores[i] <= b.scores[j]:
			out.appendCombine(a.Line(i))
			i++
		default:
			out.appendCombine(b.Line(j))
			j++
		}
	}
	return out
}

// MergeAll merges a set of distributions pairwise (tournament order, to keep
// intermediate sizes balanced).
func MergeAll(ds []*Dist) *Dist {
	switch len(ds) {
	case 0:
		return New()
	case 1:
		return ds[0].Clone()
	}
	work := append([]*Dist(nil), ds...)
	for len(work) > 1 {
		merged := work[:0]
		for i := 0; i < len(work); i += 2 {
			if i+1 < len(work) {
				merged = append(merged, Merge(work[i], work[i+1]))
			} else {
				merged = append(merged, work[i])
			}
		}
		work = merged
	}
	return work[0]
}

// Shift returns a copy of d with every score moved by delta.
func (d *Dist) Shift(delta float64) *Dist {
	c := d.Clone()
	for i := range c.scores {
		c.scores[i] += delta
	}
	return c
}

// Scale returns a copy of d with every probability multiplied by f.
func (d *Dist) Scale(f float64) *Dist {
	if f == 0 {
		return New()
	}
	c := d.Clone()
	for i := range c.probs {
		c.probs[i] *= f
	}
	for i := range c.vprobs {
		c.vprobs[i] *= f
	}
	return c
}

// distSorter co-sorts all parallel arrays by score.
type distSorter struct{ d *Dist }

func (s distSorter) Len() int           { return len(s.d.scores) }
func (s distSorter) Less(i, j int) bool { return s.d.scores[i] < s.d.scores[j] }
func (s distSorter) Swap(i, j int) {
	d := s.d
	d.scores[i], d.scores[j] = d.scores[j], d.scores[i]
	d.probs[i], d.probs[j] = d.probs[j], d.probs[i]
	if d.hasVec {
		d.vecs[i], d.vecs[j] = d.vecs[j], d.vecs[i]
		d.vprobs[i], d.vprobs[j] = d.vprobs[j], d.vprobs[i]
		d.vbounds[i], d.vbounds[j] = d.vbounds[j], d.vbounds[i]
	}
}

// sortByScore re-sorts lines after an operation that may break order.
func (d *Dist) sortByScore() {
	if sort.Float64sAreSorted(d.scores) {
		return
	}
	sort.Stable(distSorter{d})
}
