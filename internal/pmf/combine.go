package pmf

import "sort"

// TakeBranch describes one "take" alternative of the paper's distribution
// merging step (2): shift a source distribution by Shift (the tuple's score),
// scale by Factor (the tuple's probability), and prepend Tuple to every
// recorded vector. Rule tuples contribute one branch per constituent tuple
// (§3.3.1, second attempt, kept for the working algorithm of §3.3.2).
type TakeBranch struct {
	Shift  float64
	Factor float64
	Tuple  int
}

// Combine implements the distribution merging process of §3.2 in one pass:
//
//	(1) every line (v, p) of skip becomes (v, p·skipFactor);
//	(2) for every branch b, every line (v, p) of take becomes
//	    (v + b.Shift, p·b.Factor) with b.Tuple prepended to its vector;
//	(3) the results are unioned, lines with equal scores combined by adding
//	    probabilities and keeping the higher-probability vector.
//
// skip or take may be nil/empty (treated as no-mass distributions, i.e. the
// blocked "(0,0)" exit points of §3.3.2). trackVectors controls whether
// representative vectors are maintained. The inputs are not modified.
//
// skipTrue, when non-nil, supplies the boundary-aware skip factor used for
// VecProb: given a line's VecBound (the score of its vector's last member),
// it returns the probability that the skipped row contributes no tuple
// *ranked strictly above that score*. Tuples tied with the boundary need not
// be absent for the vector to remain a top-k vector, so this keeps VecProb
// equal to the exact vector probability under ties (with or without ME
// groups). When skipTrue is nil, VecProb scales by skipFactor, which yields
// the paper's path-probability semantics instead.
//
// The output is built by an (#branches+1)-way merge of already-sorted
// sources, so the cost is O(L·(B+1)) for L lines and B branches.
func Combine(skip *Dist, skipFactor float64, take *Dist, branches []TakeBranch, trackVectors bool, skipTrue func(bound float64) float64) *Dist {
	return CombineInto(nil, skip, skipFactor, take, branches, trackVectors, skipTrue)
}

// CombineInto is Combine reusing dst's line storage when dst is non-nil.
// dst must not be one of the inputs. The dynamic program calls this once per
// cell, so recycling the previous generation's distributions removes the
// dominant allocation cost.
func CombineInto(dst *Dist, skip *Dist, skipFactor float64, take *Dist, branches []TakeBranch, trackVectors bool, skipTrue func(bound float64) float64) *Dist {
	type source struct {
		lines  []Line
		pos    int
		shift  float64
		factor float64
		tuple  int // -1 for the skip source
	}
	var srcs []source
	if skip != nil && len(skip.lines) > 0 && skipFactor > 0 {
		srcs = append(srcs, source{lines: skip.lines, factor: skipFactor, tuple: -1})
	}
	if take != nil && len(take.lines) > 0 {
		for _, b := range branches {
			if b.Factor > 0 {
				srcs = append(srcs, source{lines: take.lines, shift: b.Shift, factor: b.Factor, tuple: b.Tuple})
			}
		}
	}
	if len(srcs) == 0 {
		if dst != nil {
			dst.lines = dst.lines[:0]
			return dst
		}
		return New()
	}
	total := 0
	for i := range srcs {
		total += len(srcs[i].lines)
	}
	out := dst
	if out == nil {
		out = &Dist{lines: make([]Line, 0, total)}
	} else if cap(out.lines) < total {
		out.lines = make([]Line, 0, total)
	} else {
		out.lines = out.lines[:0]
	}
	// Shifting by a constant preserves score order, so each source is sorted;
	// repeatedly pull the source with the smallest current score. The number
	// of sources is small (1 + group size), so a linear min scan is fine.
	for {
		best := -1
		var bestScore float64
		for i := range srcs {
			s := &srcs[i]
			if s.pos >= len(s.lines) {
				continue
			}
			sc := s.lines[s.pos].Score + s.shift
			if best == -1 || sc < bestScore {
				best, bestScore = i, sc
			}
		}
		if best == -1 {
			break
		}
		s := &srcs[best]
		in := s.lines[s.pos]
		s.pos++
		l := Line{Score: in.Score + s.shift, Prob: in.Prob * s.factor}
		if trackVectors {
			if s.tuple >= 0 {
				// Take: the tuple's own probability is the exact factor for
				// the vector probability too. A take onto an empty vector is
				// the vector's last (deepest) member and fixes the boundary.
				l.Vec = in.Vec.Prepend(s.tuple)
				l.VecProb = in.VecProb * s.factor
				if in.Vec == nil {
					l.VecBound = s.shift
				} else {
					l.VecBound = in.VecBound
				}
			} else {
				l.Vec = in.Vec
				l.VecBound = in.VecBound
				if skipTrue != nil {
					l.VecProb = in.VecProb * skipTrue(in.VecBound)
				} else {
					l.VecProb = in.VecProb * s.factor
				}
			}
		}
		out.appendCombine(l)
	}
	return out
}

// Merge unions two distributions (both scaled by 1), combining equal scores.
// Used to merge per-unit final distributions in the ME-handling algorithm.
func Merge(a, b *Dist) *Dist {
	if a == nil || len(a.lines) == 0 {
		if b == nil {
			return New()
		}
		return b.Clone()
	}
	if b == nil || len(b.lines) == 0 {
		return a.Clone()
	}
	out := &Dist{lines: make([]Line, 0, len(a.lines)+len(b.lines))}
	i, j := 0, 0
	for i < len(a.lines) || j < len(b.lines) {
		switch {
		case i >= len(a.lines):
			out.appendCombine(b.lines[j])
			j++
		case j >= len(b.lines):
			out.appendCombine(a.lines[i])
			i++
		case a.lines[i].Score <= b.lines[j].Score:
			out.appendCombine(a.lines[i])
			i++
		default:
			out.appendCombine(b.lines[j])
			j++
		}
	}
	return out
}

// MergeAll merges a set of distributions pairwise (tournament order, to keep
// intermediate sizes balanced).
func MergeAll(ds []*Dist) *Dist {
	switch len(ds) {
	case 0:
		return New()
	case 1:
		return ds[0].Clone()
	}
	work := append([]*Dist(nil), ds...)
	for len(work) > 1 {
		next := work[:0:len(work)]
		var merged []*Dist
		for i := 0; i < len(work); i += 2 {
			if i+1 < len(work) {
				merged = append(merged, Merge(work[i], work[i+1]))
			} else {
				merged = append(merged, work[i])
			}
		}
		_ = next
		work = merged
	}
	return work[0]
}

// Shift returns a copy of d with every score moved by delta.
func (d *Dist) Shift(delta float64) *Dist {
	c := d.Clone()
	for i := range c.lines {
		c.lines[i].Score += delta
	}
	return c
}

// Scale returns a copy of d with every probability multiplied by f.
func (d *Dist) Scale(f float64) *Dist {
	if f == 0 {
		return New()
	}
	c := d.Clone()
	for i := range c.lines {
		c.lines[i].Prob *= f
		c.lines[i].VecProb *= f
	}
	return c
}

// sortByScore re-sorts lines after an operation that may break order.
func (d *Dist) sortByScore() {
	sort.Slice(d.lines, func(i, j int) bool { return d.lines[i].Score < d.lines[j].Score })
}
