package pmf

import "container/heap"

// CoalesceMode selects how the score of a merged line pair is chosen.
type CoalesceMode int

const (
	// CoalescePlainAverage uses the unweighted average of the two scores,
	// exactly as §3.2.1 of the paper prescribes ("the score value is their
	// average and the probability is their sum").
	CoalescePlainAverage CoalesceMode = iota
	// CoalesceWeightedAverage uses the probability-weighted average, which
	// preserves the distribution mean. Offered as an option; not the paper's
	// default.
	CoalesceWeightedAverage
)

// Coalesce reduces d to at most maxLines lines in place by repeatedly merging
// the two closest lines (by score): the merged score is chosen per mode, the
// probability is the sum, and the representative vector with the higher
// vector probability is kept. maxLines ≤ 0 means "no limit" (no-op).
// It returns the number of merges performed.
//
// Callers that coalesce in a loop (the dynamic program does so at every
// cell) should allocate one Coalescer and reuse it.
func (d *Dist) Coalesce(maxLines int, mode CoalesceMode) int {
	var c Coalescer
	return c.Coalesce(d, maxLines, mode)
}

// Coalescer runs closest-pair line coalescing with reusable scratch buffers,
// avoiding per-call allocation. The zero value is ready to use; a Coalescer
// must not be used concurrently.
type Coalescer struct {
	prev, next, ver []int
	h               gapHeap
}

// Coalesce applies the closest-pair strategy to d in place; see
// Dist.Coalesce for semantics.
func (c *Coalescer) Coalesce(d *Dist, maxLines int, mode CoalesceMode) int {
	if maxLines <= 0 || len(d.lines) <= maxLines {
		return 0
	}
	merges := len(d.lines) - maxLines
	if maxLines == 1 && mode == CoalesceWeightedAverage {
		d.coalesceToOne()
		return merges
	}
	c.run(d, maxLines, mode)
	return merges
}

// coalesceToOne collapses everything into a single mass-weighted line.
func (d *Dist) coalesceToOne() {
	var mass, wsum KahanSum
	best := d.lines[0]
	for _, l := range d.lines {
		mass.Add(l.Prob)
		wsum.Add(l.Score * l.Prob)
		if l.VecProb > best.VecProb {
			best = l
		}
	}
	m := mass.Sum()
	score := 0.0
	if m > 0 {
		score = wsum.Sum() / m
	}
	d.lines = d.lines[:1]
	d.lines[0] = Line{Score: score, Prob: m, Vec: best.Vec, VecProb: best.VecProb, VecBound: best.VecBound}
}

// gapEntry is a candidate pair of adjacent live lines in the coalescing
// doubly-linked list.
type gapEntry struct {
	left, right int     // indices into the node arrays
	gap         float64 // score distance at push time
	lv, rv      int     // node versions at push time (for lazy invalidation)
}

type gapHeap []gapEntry

func (h gapHeap) Len() int            { return len(h) }
func (h gapHeap) Less(i, j int) bool  { return h[i].gap < h[j].gap }
func (h gapHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *gapHeap) Push(x interface{}) { *h = append(*h, x.(gapEntry)) }
func (h *gapHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// grow resizes the scratch buffers to hold n nodes without reallocating on
// subsequent calls of the same or smaller size.
func (c *Coalescer) grow(n int) {
	if cap(c.prev) < n {
		c.prev = make([]int, n)
		c.next = make([]int, n)
		c.ver = make([]int, n)
		c.h = make(gapHeap, 0, 2*n)
	}
	c.prev = c.prev[:n]
	c.next = c.next[:n]
	c.ver = c.ver[:n]
	c.h = c.h[:0]
	for i := 0; i < n; i++ {
		c.prev[i] = i - 1
		c.next[i] = i + 1
		c.ver[i] = 0
	}
	c.next[n-1] = -1
}

// run implements the closest-pair strategy with a min-heap of adjacent gaps
// over a doubly-linked list, with lazy invalidation by node version.
// O((n + merges) log n).
func (c *Coalescer) run(d *Dist, maxLines int, mode CoalesceMode) {
	n := len(d.lines)
	lines := d.lines
	c.grow(n)
	prev, next, ver := c.prev, c.next, c.ver
	alive := n
	for i := 0; i+1 < n; i++ {
		c.h = append(c.h, gapEntry{left: i, right: i + 1, gap: lines[i+1].Score - lines[i].Score})
	}
	heap.Init(&c.h)
	for alive > maxLines {
		e := heap.Pop(&c.h).(gapEntry)
		if ver[e.left] != e.lv || ver[e.right] != e.rv {
			continue // stale entry
		}
		l, r := &lines[e.left], &lines[e.right]
		var score float64
		switch mode {
		case CoalesceWeightedAverage:
			if m := l.Prob + r.Prob; m > 0 {
				score = (l.Score*l.Prob + r.Score*r.Prob) / m
			} else {
				score = (l.Score + r.Score) / 2
			}
		default:
			score = (l.Score + r.Score) / 2
		}
		l.Prob += r.Prob
		if r.VecProb > l.VecProb {
			l.Vec, l.VecProb, l.VecBound = r.Vec, r.VecProb, r.VecBound
		}
		l.Score = score
		ver[e.left]++
		ver[e.right]++ // tombstone
		// Unlink right.
		nr := next[e.right]
		next[e.left] = nr
		if nr >= 0 {
			prev[nr] = e.left
		}
		alive--
		// Push refreshed gaps around the merged node.
		if p := prev[e.left]; p >= 0 {
			heap.Push(&c.h, gapEntry{left: p, right: e.left,
				gap: lines[e.left].Score - lines[p].Score, lv: ver[p], rv: ver[e.left]})
		}
		if nx := next[e.left]; nx >= 0 {
			heap.Push(&c.h, gapEntry{left: e.left, right: nx,
				gap: lines[nx].Score - lines[e.left].Score, lv: ver[e.left], rv: ver[nx]})
		}
	}
	out := d.lines[:0]
	for i := 0; i != -1; i = next[i] {
		out = append(out, lines[i])
	}
	// Plain averaging can reorder scores only in pathological equal-score
	// cases; restore the sorted invariant defensively.
	d.lines = out
	d.sortByScore()
}
