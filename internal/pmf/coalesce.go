package pmf

// CoalesceMode selects how the score of a merged line pair is chosen.
type CoalesceMode int

const (
	// CoalescePlainAverage uses the unweighted average of the two scores,
	// exactly as §3.2.1 of the paper prescribes ("the score value is their
	// average and the probability is their sum").
	CoalescePlainAverage CoalesceMode = iota
	// CoalesceWeightedAverage uses the probability-weighted average, which
	// preserves the distribution mean. Offered as an option; not the paper's
	// default.
	CoalesceWeightedAverage
)

// Coalesce reduces d to at most maxLines lines in place by repeatedly merging
// the two closest lines (by score): the merged score is chosen per mode, the
// probability is the sum, and the representative vector with the higher
// vector probability is kept. maxLines ≤ 0 means "no limit" (no-op).
// It returns the number of merges performed.
//
// Callers that coalesce in a loop (the dynamic program does so at every
// cell) should allocate one Coalescer and reuse it.
func (d *Dist) Coalesce(maxLines int, mode CoalesceMode) int {
	var c Coalescer
	return c.Coalesce(d, maxLines, mode)
}

// Coalescer runs closest-pair line coalescing with reusable scratch buffers,
// avoiding per-call allocation. The zero value is ready to use; a Coalescer
// must not be used concurrently.
type Coalescer struct {
	prev, next, ver []int
	h               []gapEntry
}

// Coalesce applies the closest-pair strategy to d in place; see
// Dist.Coalesce for semantics.
func (c *Coalescer) Coalesce(d *Dist, maxLines int, mode CoalesceMode) int {
	if maxLines <= 0 || len(d.scores) <= maxLines {
		return 0
	}
	merges := len(d.scores) - maxLines
	if maxLines == 1 && mode == CoalesceWeightedAverage {
		d.coalesceToOne()
		return merges
	}
	c.run(d, maxLines, mode)
	return merges
}

// coalesceToOne collapses everything into a single mass-weighted line.
func (d *Dist) coalesceToOne() {
	var mass, wsum KahanSum
	for i, p := range d.probs {
		mass.Add(p)
		wsum.Add(d.scores[i] * p)
	}
	best := 0
	if d.hasVec {
		for i, vp := range d.vprobs {
			if vp > d.vprobs[best] {
				best = i
			}
		}
	}
	m := mass.Sum()
	score := 0.0
	if m > 0 {
		score = wsum.Sum() / m
	}
	if d.hasVec {
		d.vecs[0], d.vprobs[0], d.vbounds[0] = d.vecs[best], d.vprobs[best], d.vbounds[best]
		d.vecs, d.vprobs, d.vbounds = d.vecs[:1], d.vprobs[:1], d.vbounds[:1]
	}
	d.scores, d.probs = d.scores[:1], d.probs[:1]
	d.scores[0], d.probs[0] = score, m
}

// gapEntry is a candidate pair of adjacent live lines in the coalescing
// doubly-linked list.
type gapEntry struct {
	left, right int     // indices into the node arrays
	gap         float64 // score distance at push time
	lv, rv      int     // node versions at push time (for lazy invalidation)
}

// siftDown restores the min-heap property below index i.
func siftDown(h []gapEntry, i int) {
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && h[r].gap < h[l].gap {
			m = r
		}
		if h[i].gap <= h[m].gap {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

// hpush adds an entry to the gap heap. Hand-rolled (vs container/heap) so
// entries never round-trip through an interface value: the DP coalesces at
// every cell and the per-Pop box was a measurable slice of total allocation.
func (c *Coalescer) hpush(e gapEntry) {
	h := append(c.h, e)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h[p].gap <= h[i].gap {
			break
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
	c.h = h
}

// hpop removes and returns the minimum-gap entry. The heap must be non-empty.
func (c *Coalescer) hpop() gapEntry {
	h := c.h
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	siftDown(h, 0)
	c.h = h
	return top
}

// grow resizes the scratch buffers to hold n nodes without reallocating on
// subsequent calls of the same or smaller size.
func (c *Coalescer) grow(n int) {
	if cap(c.prev) < n {
		c.prev = make([]int, n)
		c.next = make([]int, n)
		c.ver = make([]int, n)
		c.h = make([]gapEntry, 0, 2*n)
	}
	c.prev = c.prev[:n]
	c.next = c.next[:n]
	c.ver = c.ver[:n]
	c.h = c.h[:0]
	for i := 0; i < n; i++ {
		c.prev[i] = i - 1
		c.next[i] = i + 1
		c.ver[i] = 0
	}
	c.next[n-1] = -1
}

// run implements the closest-pair strategy with a min-heap of adjacent gaps
// over a doubly-linked list, with lazy invalidation by node version.
// O((n + merges) log n).
func (c *Coalescer) run(d *Dist, maxLines int, mode CoalesceMode) {
	n := len(d.scores)
	scores := d.scores
	probs := d.probs[:n]
	hasVec := d.hasVec
	var vecs []*Vector
	var vprobs, vbounds []float64
	if hasVec {
		vecs, vprobs, vbounds = d.vecs[:n], d.vprobs[:n], d.vbounds[:n]
	}
	c.grow(n)
	prev, next, ver := c.prev, c.next, c.ver
	alive := n
	for i := 0; i+1 < n; i++ {
		c.h = append(c.h, gapEntry{left: i, right: i + 1, gap: scores[i+1] - scores[i]})
	}
	for i := len(c.h)/2 - 1; i >= 0; i-- {
		siftDown(c.h, i)
	}
	for alive > maxLines {
		e := c.hpop()
		if ver[e.left] != e.lv || ver[e.right] != e.rv {
			continue // stale entry
		}
		l, r := e.left, e.right
		var score float64
		switch mode {
		case CoalesceWeightedAverage:
			if m := probs[l] + probs[r]; m > 0 {
				score = (scores[l]*probs[l] + scores[r]*probs[r]) / m
			} else {
				score = (scores[l] + scores[r]) / 2
			}
		default:
			score = (scores[l] + scores[r]) / 2
		}
		probs[l] += probs[r]
		if hasVec && vprobs[r] > vprobs[l] {
			vecs[l], vprobs[l], vbounds[l] = vecs[r], vprobs[r], vbounds[r]
		}
		scores[l] = score
		ver[l]++
		ver[r]++ // tombstone
		// Unlink right.
		nr := next[r]
		next[l] = nr
		if nr >= 0 {
			prev[nr] = l
		}
		alive--
		// Push refreshed gaps around the merged node.
		if p := prev[l]; p >= 0 {
			c.hpush(gapEntry{left: p, right: l, gap: scores[l] - scores[p], lv: ver[p], rv: ver[l]})
		}
		if nx := next[l]; nx >= 0 {
			c.hpush(gapEntry{left: l, right: nx, gap: scores[nx] - scores[l], lv: ver[l], rv: ver[nx]})
		}
	}
	// Compact the surviving lines in list order.
	w := 0
	for i := 0; i != -1; i = next[i] {
		scores[w] = scores[i]
		probs[w] = probs[i]
		if hasVec {
			vecs[w] = vecs[i]
			vprobs[w] = vprobs[i]
			vbounds[w] = vbounds[i]
		}
		w++
	}
	d.scores = scores[:w]
	d.probs = probs[:w]
	if hasVec {
		d.vecs = vecs[:w]
		d.vprobs = vprobs[:w]
		d.vbounds = vbounds[:w]
	}
	// Plain averaging can reorder scores only in pathological equal-score
	// cases; restore the sorted invariant defensively.
	d.sortByScore()
}
