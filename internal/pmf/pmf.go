// Package pmf implements the discrete probability-mass-function substrate
// used throughout probtopk.
//
// A distribution is a sorted sequence of "lines" (the paper's term for the
// vertical lines of a PMF plot): (score, probability) pairs, optionally
// annotated with a representative top-k tuple vector and that vector's own
// probability. The package provides the merge/shift/scale operations the
// paper's dynamic program is built from (§3.2), the closest-pair line
// coalescing strategy (§3.2.1), histogram views at arbitrary bucket widths,
// and the summary statistics (mean, variance, quantiles, expected minimum
// distance) needed for c-Typical-Topk and for the empirical study.
package pmf

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Eps is the relative tolerance under which two scores are considered equal
// and their lines combined by summing probabilities.
const Eps = 1e-9

// sameScore reports whether a and b are equal within Eps (relative to their
// magnitude, with an absolute floor of Eps).
func sameScore(a, b float64) bool {
	d := math.Abs(a - b)
	if d <= Eps {
		return true
	}
	m := math.Max(math.Abs(a), math.Abs(b))
	return d <= Eps*m
}

// Vector is a persistent (immutable, structurally shared) list of tuple
// positions forming a top-k vector. The dynamic program prepends tuples as it
// walks up the table, so the head is always the highest-ranked tuple.
// A nil *Vector is the empty vector.
type Vector struct {
	// Tuple is a position in the prepared (sorted) table, not an original
	// table index; callers translate via uncertain.Prepared.
	Tuple int
	Next  *Vector
}

// Prepend returns a new vector with t in front of v. v is not modified.
func (v *Vector) Prepend(t int) *Vector { return &Vector{Tuple: t, Next: v} }

// Len returns the number of tuples in the vector.
func (v *Vector) Len() int {
	n := 0
	for ; v != nil; v = v.Next {
		n++
	}
	return n
}

// Slice materializes the vector as a slice of tuple positions, highest rank
// first. A nil vector yields nil.
func (v *Vector) Slice() []int {
	if v == nil {
		return nil
	}
	s := make([]int, 0, 4)
	for ; v != nil; v = v.Next {
		s = append(s, v.Tuple)
	}
	return s
}

// Line is one atom of a discrete score distribution.
type Line struct {
	// Score is the total score of the top-k vectors aggregated in this line.
	Score float64
	// Prob is the total probability mass at Score.
	Prob float64
	// Vec is a representative top-k vector with this score: among all vectors
	// whose total score coalesced into this line, one with the highest
	// probability of being a top-k vector. Nil when vectors are not tracked.
	Vec *Vector
	// VecProb is the probability that Vec is a top-k vector. When the
	// producer supplies a boundary-aware skip adjustment (see Combine), this
	// is the exact vector probability even under score ties combined with
	// mutual exclusion — strictly stronger than the paper's Theorem 3, whose
	// max-probability claim fails when a tie group contains a tuple mutually
	// exclusive with a higher-ranked one.
	VecProb float64
	// VecBound is the score of Vec's k-th (lowest-ranked) member — the
	// boundary score that decides which higher-ranked absences Vec's
	// probability must pay for. Maintained by Combine.
	VecBound float64
}

// Dist is a discrete distribution over total scores: lines sorted by
// ascending score with no two lines closer than Eps. The zero value is an
// empty (all-mass-zero) distribution, which is the identity for Merge and the
// annihilator produced by blocked exit points (the paper's "(0, 0)" cells).
type Dist struct {
	lines []Line
}

// New returns an empty distribution.
func New() *Dist { return &Dist{} }

// Point returns the single-line distribution {(score, prob)}.
func Point(score, prob float64) *Dist {
	return &Dist{lines: []Line{{Score: score, Prob: prob}}}
}

// PointVec returns a single-line distribution carrying a representative
// vector.
func PointVec(score, prob float64, vec *Vector, vecProb float64) *Dist {
	return &Dist{lines: []Line{{Score: score, Prob: prob, Vec: vec, VecProb: vecProb}}}
}

// FromLines builds a distribution from arbitrary lines: they are sorted,
// lines with equal scores (within Eps) are combined, and lines with zero
// probability are dropped.
func FromLines(lines []Line) *Dist {
	ls := make([]Line, 0, len(lines))
	for _, l := range lines {
		if l.Prob != 0 {
			ls = append(ls, l)
		}
	}
	sort.Slice(ls, func(i, j int) bool { return ls[i].Score < ls[j].Score })
	d := &Dist{lines: make([]Line, 0, len(ls))}
	for _, l := range ls {
		d.appendCombine(l)
	}
	return d
}

// appendCombine appends l to the (already sorted) line slice, combining it
// with the last line when their scores match within Eps.
func (d *Dist) appendCombine(l Line) {
	n := len(d.lines)
	if n > 0 && sameScore(d.lines[n-1].Score, l.Score) {
		last := &d.lines[n-1]
		last.Prob += l.Prob
		if l.VecProb > last.VecProb {
			last.Vec = l.Vec
			last.VecProb = l.VecProb
			last.VecBound = l.VecBound
		}
		return
	}
	d.lines = append(d.lines, l)
}

// Len returns the number of lines.
func (d *Dist) Len() int { return len(d.lines) }

// Lines returns a copy of the underlying lines, sorted by ascending score.
func (d *Dist) Lines() []Line {
	out := make([]Line, len(d.lines))
	copy(out, d.lines)
	return out
}

// Line returns the i-th line (ascending score order).
func (d *Dist) Line(i int) Line { return d.lines[i] }

// Clone returns a deep copy of the line slice (vectors are shared, they are
// immutable).
func (d *Dist) Clone() *Dist {
	c := &Dist{lines: make([]Line, len(d.lines))}
	copy(c.lines, d.lines)
	return c
}

// IsEmpty reports whether the distribution has no mass.
func (d *Dist) IsEmpty() bool { return len(d.lines) == 0 }

// Reset empties d in place, keeping the line storage for reuse but clearing
// it so recycled distributions do not pin vector nodes of earlier queries.
func (d *Dist) Reset() {
	clear(d.lines)
	d.lines = d.lines[:0]
}

// TotalMass returns the sum of all line probabilities using compensated
// (Kahan) summation.
func (d *Dist) TotalMass() float64 {
	var s KahanSum
	for _, l := range d.lines {
		s.Add(l.Prob)
	}
	return s.Sum()
}

// Normalize scales the line probabilities so the total mass is 1 (a proper
// conditional PMF). Vector probabilities are left untouched: they are
// marginal probabilities of concrete events and do not change because the
// caller conditions the score view. No-op on an empty or zero-mass
// distribution.
func (d *Dist) Normalize() {
	m := d.TotalMass()
	if m <= 0 {
		return
	}
	inv := 1 / m
	for i := range d.lines {
		d.lines[i].Prob *= inv
	}
}

// Mean returns the expectation of the score under d. If the distribution is
// unnormalized the conditional mean (given the event the distribution covers)
// is returned. Returns NaN for an empty distribution.
func (d *Dist) Mean() float64 {
	if len(d.lines) == 0 {
		return math.NaN()
	}
	var num, den KahanSum
	for _, l := range d.lines {
		num.Add(l.Score * l.Prob)
		den.Add(l.Prob)
	}
	if den.Sum() == 0 {
		return math.NaN()
	}
	return num.Sum() / den.Sum()
}

// Variance returns the variance of the score under d (conditional on the
// covered event if unnormalized). Returns NaN for an empty distribution.
func (d *Dist) Variance() float64 {
	if len(d.lines) == 0 {
		return math.NaN()
	}
	mu := d.Mean()
	var num, den KahanSum
	for _, l := range d.lines {
		dd := l.Score - mu
		num.Add(dd * dd * l.Prob)
		den.Add(l.Prob)
	}
	if den.Sum() == 0 {
		return math.NaN()
	}
	return num.Sum() / den.Sum()
}

// StdDev returns the standard deviation of the score under d.
func (d *Dist) StdDev() float64 { return math.Sqrt(d.Variance()) }

// Min returns the smallest score with positive mass (NaN when empty).
func (d *Dist) Min() float64 {
	if len(d.lines) == 0 {
		return math.NaN()
	}
	return d.lines[0].Score
}

// Max returns the largest score with positive mass (NaN when empty).
func (d *Dist) Max() float64 {
	if len(d.lines) == 0 {
		return math.NaN()
	}
	return d.lines[len(d.lines)-1].Score
}

// Span returns Max − Min (0 when empty or single-line).
func (d *Dist) Span() float64 {
	if len(d.lines) < 2 {
		return 0
	}
	return d.Max() - d.Min()
}

// CDF returns Pr(S ≤ x) (relative to total mass 1; divide by TotalMass for
// unnormalized distributions if conditional semantics are wanted).
func (d *Dist) CDF(x float64) float64 {
	var s KahanSum
	for _, l := range d.lines {
		if l.Score > x && !sameScore(l.Score, x) {
			break
		}
		s.Add(l.Prob)
	}
	return s.Sum()
}

// TailProb returns Pr(S > x).
func (d *Dist) TailProb(x float64) float64 {
	var s KahanSum
	for i := len(d.lines) - 1; i >= 0; i-- {
		l := d.lines[i]
		if l.Score < x || sameScore(l.Score, x) {
			break
		}
		s.Add(l.Prob)
	}
	return s.Sum()
}

// Quantile returns the smallest score s with CDF(s) ≥ q·TotalMass. It treats
// the distribution as conditional (quantiles of the covered event). Returns
// NaN when empty or q outside [0,1].
func (d *Dist) Quantile(q float64) float64 {
	if len(d.lines) == 0 || q < 0 || q > 1 {
		return math.NaN()
	}
	target := q * d.TotalMass()
	var s KahanSum
	for _, l := range d.lines {
		s.Add(l.Prob)
		if s.Sum() >= target {
			return l.Score
		}
	}
	return d.lines[len(d.lines)-1].Score
}

// Median returns Quantile(0.5) — the weighted median, which minimizes the
// expected absolute distance E|S − s| over all s (the c = 1 typical score
// when restricted to support points).
func (d *Dist) Median() float64 { return d.Quantile(0.5) }

// MaxProbLine returns the line with the largest probability mass (the mode).
// ok is false when the distribution is empty.
func (d *Dist) MaxProbLine() (Line, bool) {
	if len(d.lines) == 0 {
		return Line{}, false
	}
	best := d.lines[0]
	for _, l := range d.lines[1:] {
		if l.Prob > best.Prob {
			best = l
		}
	}
	return best, true
}

// MaxVecProbLine returns the line whose representative vector has the largest
// vector probability; this is the U-Topk answer when vectors are tracked
// exactly (coalescing preserves the max since merges keep the better vector).
func (d *Dist) MaxVecProbLine() (Line, bool) {
	if len(d.lines) == 0 {
		return Line{}, false
	}
	best := d.lines[0]
	for _, l := range d.lines[1:] {
		if l.VecProb > best.VecProb {
			best = l
		}
	}
	return best, true
}

// ExpectedMinDistance returns E[min_i |S − points[i]|] under d, the
// c-Typical-Topk objective of Definition 1 (conditional on the covered event
// when unnormalized). points need not be sorted. Returns NaN when d is empty
// or points is empty.
func (d *Dist) ExpectedMinDistance(points []float64) float64 {
	if len(d.lines) == 0 || len(points) == 0 {
		return math.NaN()
	}
	ps := append([]float64(nil), points...)
	sort.Float64s(ps)
	var num, den KahanSum
	j := 0
	for _, l := range d.lines {
		for j+1 < len(ps) && ps[j+1] <= l.Score {
			j++
		}
		best := math.Abs(l.Score - ps[j])
		if j+1 < len(ps) {
			if alt := math.Abs(ps[j+1] - l.Score); alt < best {
				best = alt
			}
		}
		num.Add(best * l.Prob)
		den.Add(l.Prob)
	}
	if den.Sum() == 0 {
		return math.NaN()
	}
	return num.Sum() / den.Sum()
}

// Wasserstein1 returns the 1-Wasserstein (earth mover's) distance between d
// and o, treating both as distributions conditioned on their covered events
// (each is normalized first). It is the test metric for the accuracy loss of
// line coalescing. Returns NaN if either is empty.
func (d *Dist) Wasserstein1(o *Dist) float64 {
	if len(d.lines) == 0 || len(o.lines) == 0 {
		return math.NaN()
	}
	md, mo := d.TotalMass(), o.TotalMass()
	if md <= 0 || mo <= 0 {
		return math.NaN()
	}
	// W1 = ∫ |F_d(x) − F_o(x)| dx over the merged support.
	var w KahanSum
	var cd, co float64
	i, j := 0, 0
	prev := math.Min(d.lines[0].Score, o.lines[0].Score)
	for i < len(d.lines) || j < len(o.lines) {
		var x float64
		switch {
		case i >= len(d.lines):
			x = o.lines[j].Score
		case j >= len(o.lines):
			x = d.lines[i].Score
		default:
			x = math.Min(d.lines[i].Score, o.lines[j].Score)
		}
		w.Add(math.Abs(cd/md-co/mo) * (x - prev))
		for i < len(d.lines) && d.lines[i].Score <= x {
			cd += d.lines[i].Prob
			i++
		}
		for j < len(o.lines) && o.lines[j].Score <= x {
			co += o.lines[j].Prob
			j++
		}
		prev = x
	}
	return w.Sum()
}

// Bucket is one bar of a histogram view.
type Bucket struct {
	Lo, Hi float64 // [Lo, Hi)
	Prob   float64
}

// Histogram returns the distribution aggregated into buckets of the given
// width, aligned at multiples of width. This implements the paper's "access
// the distribution at any granularity of precision". Panics if width ≤ 0.
func (d *Dist) Histogram(width float64) []Bucket {
	if width <= 0 {
		panic("pmf: histogram width must be positive")
	}
	if len(d.lines) == 0 {
		return nil
	}
	var out []Bucket
	for _, l := range d.lines {
		lo := math.Floor(l.Score/width) * width
		if n := len(out); n > 0 && out[n-1].Lo == lo {
			out[n-1].Prob += l.Prob
			continue
		}
		out = append(out, Bucket{Lo: lo, Hi: lo + width, Prob: l.Prob})
	}
	return out
}

// NormalizeVectors rewrites every line's representative vector into
// ascending-position (i.e. rank) order. The ME-handling dynamic program
// builds vectors in row order, and rule-tuple rows may sit out of position
// relative to plain rows; one pass over the final lines restores the
// presentation invariant. Probabilities are untouched.
func (d *Dist) NormalizeVectors() {
	for i := range d.lines {
		v := d.lines[i].Vec
		if v == nil || v.Next == nil {
			continue
		}
		s := v.Slice()
		if sort.IntsAreSorted(s) {
			continue
		}
		sort.Ints(s)
		var nv *Vector
		for j := len(s) - 1; j >= 0; j-- {
			nv = nv.Prepend(s[j])
		}
		d.lines[i].Vec = nv
	}
}

// String renders a short human-readable summary.
func (d *Dist) String() string {
	if len(d.lines) == 0 {
		return "pmf{empty}"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "pmf{n=%d mass=%.6g span=[%.6g,%.6g] mean=%.6g}",
		len(d.lines), d.TotalMass(), d.Min(), d.Max(), d.Mean())
	return b.String()
}

// KahanSum is a compensated floating-point accumulator. The zero value is an
// empty sum ready to use.
type KahanSum struct {
	sum, c float64
}

// Add accumulates x.
func (k *KahanSum) Add(x float64) {
	y := x - k.c
	t := k.sum + y
	k.c = (t - k.sum) - y
	k.sum = t
}

// Sum returns the accumulated total.
func (k *KahanSum) Sum() float64 { return k.sum }

// Sum returns the compensated sum of xs.
func Sum(xs []float64) float64 {
	var k KahanSum
	for _, x := range xs {
		k.Add(x)
	}
	return k.Sum()
}
