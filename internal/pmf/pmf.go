// Package pmf implements the discrete probability-mass-function substrate
// used throughout probtopk.
//
// A distribution is a sorted sequence of "lines" (the paper's term for the
// vertical lines of a PMF plot): (score, probability) pairs, optionally
// annotated with a representative top-k tuple vector and that vector's own
// probability. The package provides the merge/shift/scale operations the
// paper's dynamic program is built from (§3.2), the closest-pair line
// coalescing strategy (§3.2.1), histogram views at arbitrary bucket widths,
// and the summary statistics (mean, variance, quantiles, expected minimum
// distance) needed for c-Typical-Topk and for the empirical study.
//
// # Memory layout
//
// Dist stores its lines as a structure of arrays: scores and probabilities
// live in two dense []float64 slices, and the vector-tracking annotations
// (representative vector, its probability and boundary score) live in three
// side-arrays that exist only when vectors are tracked. The dynamic
// program's hot kernels (Combine, GridCombiner.Combine, Coalescer) stream
// the score/prob arrays with tight scalar loops — 16 bytes per line through
// the cache instead of the 40 an array-of-structs layout would drag — and
// touch the vector side-arrays in separate passes only when a query tracks
// vectors. The Line struct remains the interchange format: Lines()/Line(i)
// materialize it for readers, FromLines accepts it from producers.
//
// Representative-vector nodes are bump-allocated from a VectorArena during
// a DP run (the per-line Prepend was the dominant allocation of the whole
// query path) and copied out into ordinary heap storage by
// Dist.DetachVectors before the arena is recycled, so finished results
// never alias scratch memory.
package pmf

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Eps is the relative tolerance under which two scores are considered equal
// and their lines combined by summing probabilities.
const Eps = 1e-9

// sameScore reports whether a and b are equal within Eps (relative to their
// magnitude, with an absolute floor of Eps). Written with plain compares —
// no math.Abs/math.Max calls — because every kernel's append path runs it
// once per output line.
func sameScore(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	if d <= Eps {
		return true
	}
	aa := a
	if aa < 0 {
		aa = -aa
	}
	bb := b
	if bb < 0 {
		bb = -bb
	}
	if bb > aa {
		aa = bb
	}
	return d <= Eps*aa
}

// Vector is a persistent (immutable, structurally shared) list of tuple
// positions forming a top-k vector. The dynamic program prepends tuples as it
// walks up the table, so the head is always the highest-ranked tuple.
// A nil *Vector is the empty vector.
type Vector struct {
	// Tuple is a position in the prepared (sorted) table, not an original
	// table index; callers translate via uncertain.Prepared.
	Tuple int
	Next  *Vector
}

// Prepend returns a new vector with t in front of v. v is not modified.
func (v *Vector) Prepend(t int) *Vector { return &Vector{Tuple: t, Next: v} }

// Len returns the number of tuples in the vector.
func (v *Vector) Len() int {
	n := 0
	for ; v != nil; v = v.Next {
		n++
	}
	return n
}

// Slice materializes the vector as a slice of tuple positions, highest rank
// first. A nil vector yields nil.
func (v *Vector) Slice() []int {
	if v == nil {
		return nil
	}
	s := make([]int, 0, 4)
	for ; v != nil; v = v.Next {
		s = append(s, v.Tuple)
	}
	return s
}

// Line is one atom of a discrete score distribution, the interchange format
// between Dist's internal structure-of-arrays layout and its callers.
type Line struct {
	// Score is the total score of the top-k vectors aggregated in this line.
	Score float64
	// Prob is the total probability mass at Score.
	Prob float64
	// Vec is a representative top-k vector with this score: among all vectors
	// whose total score coalesced into this line, one with the highest
	// probability of being a top-k vector. Nil when vectors are not tracked.
	Vec *Vector
	// VecProb is the probability that Vec is a top-k vector. When the
	// producer supplies a boundary-aware skip adjustment (see Combine), this
	// is the exact vector probability even under score ties combined with
	// mutual exclusion — strictly stronger than the paper's Theorem 3, whose
	// max-probability claim fails when a tie group contains a tuple mutually
	// exclusive with a higher-ranked one.
	VecProb float64
	// VecBound is the score of Vec's k-th (lowest-ranked) member — the
	// boundary score that decides which higher-ranked absences Vec's
	// probability must pay for. Maintained by Combine.
	VecBound float64
}

// Dist is a discrete distribution over total scores: lines sorted by
// ascending score with no two lines closer than Eps, stored as parallel
// arrays. The zero value is an empty (all-mass-zero) distribution, which is
// the identity for Merge and the annihilator produced by blocked exit points
// (the paper's "(0, 0)" cells).
type Dist struct {
	scores []float64
	probs  []float64
	// Vector side-arrays. hasVec marks them live; when false they are dead
	// storage kept only for capacity reuse and every annotation reads as the
	// zero Line fields. When true all three have the same length as scores.
	vecs    []*Vector
	vprobs  []float64
	vbounds []float64
	hasVec  bool
}

// New returns an empty distribution.
func New() *Dist { return &Dist{} }

// Point returns the single-line distribution {(score, prob)}.
func Point(score, prob float64) *Dist {
	return &Dist{scores: []float64{score}, probs: []float64{prob}}
}

// PointVec returns a single-line distribution carrying a representative
// vector.
func PointVec(score, prob float64, vec *Vector, vecProb float64) *Dist {
	return &Dist{
		scores: []float64{score}, probs: []float64{prob},
		vecs: []*Vector{vec}, vprobs: []float64{vecProb}, vbounds: []float64{0},
		hasVec: true,
	}
}

// FromLines builds a distribution from arbitrary lines: they are sorted,
// lines with equal scores (within Eps) are combined, and lines with zero
// probability are dropped.
func FromLines(lines []Line) *Dist {
	ls := make([]Line, 0, len(lines))
	for _, l := range lines {
		if l.Prob != 0 {
			ls = append(ls, l)
		}
	}
	sort.Slice(ls, func(i, j int) bool { return ls[i].Score < ls[j].Score })
	d := &Dist{scores: make([]float64, 0, len(ls)), probs: make([]float64, 0, len(ls))}
	for _, l := range ls {
		d.appendCombine(l)
	}
	return d
}

// enableVec switches the vector side-arrays on, zero-filling them to the
// current line count.
func (d *Dist) enableVec() {
	if d.hasVec {
		return
	}
	d.hasVec = true
	n := len(d.scores)
	d.vecs = growZero(d.vecs, n)
	d.vprobs = growZeroF(d.vprobs, n)
	d.vbounds = growZeroF(d.vbounds, n)
}

func growZero(s []*Vector, n int) []*Vector {
	if cap(s) < n {
		return make([]*Vector, n)
	}
	s = s[:n]
	clear(s)
	return s
}

func growZeroF(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	s = s[:n]
	clear(s)
	return s
}

// reset truncates d to zero lines, configuring the vector side-arrays for
// the given tracking mode while keeping all storage for reuse.
func (d *Dist) reset(trackVectors bool) {
	d.scores = d.scores[:0]
	d.probs = d.probs[:0]
	d.vecs = d.vecs[:0]
	d.vprobs = d.vprobs[:0]
	d.vbounds = d.vbounds[:0]
	d.hasVec = trackVectors
}

// ensureCap makes sure n lines can be appended without reallocating
// mid-kernel. Call on an empty (just-reset) distribution.
func (d *Dist) ensureCap(n int) {
	if cap(d.scores) < n {
		d.scores = make([]float64, 0, n)
	}
	if cap(d.probs) < n {
		d.probs = make([]float64, 0, n)
	}
	if !d.hasVec {
		return
	}
	if cap(d.vecs) < n {
		d.vecs = make([]*Vector, 0, n)
	}
	if cap(d.vprobs) < n {
		d.vprobs = make([]float64, 0, n)
	}
	if cap(d.vbounds) < n {
		d.vbounds = make([]float64, 0, n)
	}
}

// appendCombine appends l to the (already sorted) distribution, combining it
// with the last line when their scores match within Eps.
func (d *Dist) appendCombine(l Line) {
	if !d.hasVec && (l.Vec != nil || l.VecProb != 0 || l.VecBound != 0) {
		d.enableVec()
	}
	n := len(d.scores)
	if n > 0 && sameScore(d.scores[n-1], l.Score) {
		d.probs[n-1] += l.Prob
		if d.hasVec && l.VecProb > d.vprobs[n-1] {
			d.vecs[n-1] = l.Vec
			d.vprobs[n-1] = l.VecProb
			d.vbounds[n-1] = l.VecBound
		}
		return
	}
	d.scores = append(d.scores, l.Score)
	d.probs = append(d.probs, l.Prob)
	if d.hasVec {
		d.vecs = append(d.vecs, l.Vec)
		d.vprobs = append(d.vprobs, l.VecProb)
		d.vbounds = append(d.vbounds, l.VecBound)
	}
}

// appendLine is appendCombine for a bare (score, prob) line on a
// distribution whose vector side-arrays are off — the untracked kernels'
// fast path.
func (d *Dist) appendLine(score, prob float64) {
	n := len(d.scores)
	if n > 0 && sameScore(d.scores[n-1], score) {
		d.probs[n-1] += prob
		return
	}
	d.scores = append(d.scores, score)
	d.probs = append(d.probs, prob)
}

// appendLineVec is appendCombine for a fully annotated line on a
// distribution whose vector side-arrays are on.
func (d *Dist) appendLineVec(score, prob float64, vec *Vector, vecProb, vecBound float64) {
	n := len(d.scores)
	if n > 0 && sameScore(d.scores[n-1], score) {
		d.probs[n-1] += prob
		if vecProb > d.vprobs[n-1] {
			d.vecs[n-1] = vec
			d.vprobs[n-1] = vecProb
			d.vbounds[n-1] = vecBound
		}
		return
	}
	d.scores = append(d.scores, score)
	d.probs = append(d.probs, prob)
	d.vecs = append(d.vecs, vec)
	d.vprobs = append(d.vprobs, vecProb)
	d.vbounds = append(d.vbounds, vecBound)
}

// Len returns the number of lines.
func (d *Dist) Len() int { return len(d.scores) }

// Lines returns a copy of the distribution as lines, sorted by ascending
// score.
func (d *Dist) Lines() []Line {
	out := make([]Line, len(d.scores))
	for i := range d.scores {
		out[i] = d.Line(i)
	}
	return out
}

// Line returns the i-th line (ascending score order).
func (d *Dist) Line(i int) Line {
	l := Line{Score: d.scores[i], Prob: d.probs[i]}
	if d.hasVec {
		l.Vec = d.vecs[i]
		l.VecProb = d.vprobs[i]
		l.VecBound = d.vbounds[i]
	}
	return l
}

// Scores returns the line scores in ascending order as a read-only view of
// the distribution's internal storage: callers must not modify it, and it is
// invalidated by any mutation of d.
func (d *Dist) Scores() []float64 { return d.scores }

// Probs returns the line probabilities (parallel to Scores) as a read-only
// view with the same aliasing caveats.
func (d *Dist) Probs() []float64 { return d.probs }

// Clone returns a deep copy of the line storage (vectors are shared, they
// are immutable).
func (d *Dist) Clone() *Dist {
	c := &Dist{
		scores: append([]float64(nil), d.scores...),
		probs:  append([]float64(nil), d.probs...),
		hasVec: d.hasVec,
	}
	if d.hasVec {
		c.vecs = append([]*Vector(nil), d.vecs...)
		c.vprobs = append([]float64(nil), d.vprobs...)
		c.vbounds = append([]float64(nil), d.vbounds...)
	}
	return c
}

// IsEmpty reports whether the distribution has no mass.
func (d *Dist) IsEmpty() bool { return len(d.scores) == 0 }

// Reset empties d in place, keeping the line storage for reuse but clearing
// the vector pointers so recycled distributions do not pin vector nodes of
// earlier queries.
func (d *Dist) Reset() {
	clear(d.vecs)
	d.reset(false)
}

// TotalMass returns the sum of all line probabilities using compensated
// (Kahan) summation.
func (d *Dist) TotalMass() float64 {
	var s KahanSum
	for _, p := range d.probs {
		s.Add(p)
	}
	return s.Sum()
}

// Normalize scales the line probabilities so the total mass is 1 (a proper
// conditional PMF). Vector probabilities are left untouched: they are
// marginal probabilities of concrete events and do not change because the
// caller conditions the score view. No-op on an empty or zero-mass
// distribution.
func (d *Dist) Normalize() {
	m := d.TotalMass()
	if m <= 0 {
		return
	}
	inv := 1 / m
	for i := range d.probs {
		d.probs[i] *= inv
	}
}

// Mean returns the expectation of the score under d. If the distribution is
// unnormalized the conditional mean (given the event the distribution covers)
// is returned. Returns NaN for an empty distribution.
func (d *Dist) Mean() float64 {
	if len(d.scores) == 0 {
		return math.NaN()
	}
	var num, den KahanSum
	probs := d.probs[:len(d.scores)]
	for i, s := range d.scores {
		num.Add(s * probs[i])
		den.Add(probs[i])
	}
	if den.Sum() == 0 {
		return math.NaN()
	}
	return num.Sum() / den.Sum()
}

// Variance returns the variance of the score under d (conditional on the
// covered event if unnormalized). Returns NaN for an empty distribution.
func (d *Dist) Variance() float64 {
	if len(d.scores) == 0 {
		return math.NaN()
	}
	mu := d.Mean()
	var num, den KahanSum
	probs := d.probs[:len(d.scores)]
	for i, s := range d.scores {
		dd := s - mu
		num.Add(dd * dd * probs[i])
		den.Add(probs[i])
	}
	if den.Sum() == 0 {
		return math.NaN()
	}
	return num.Sum() / den.Sum()
}

// StdDev returns the standard deviation of the score under d.
func (d *Dist) StdDev() float64 { return math.Sqrt(d.Variance()) }

// Min returns the smallest score with positive mass (NaN when empty).
func (d *Dist) Min() float64 {
	if len(d.scores) == 0 {
		return math.NaN()
	}
	return d.scores[0]
}

// Max returns the largest score with positive mass (NaN when empty).
func (d *Dist) Max() float64 {
	if len(d.scores) == 0 {
		return math.NaN()
	}
	return d.scores[len(d.scores)-1]
}

// Span returns Max − Min (0 when empty or single-line).
func (d *Dist) Span() float64 {
	if len(d.scores) < 2 {
		return 0
	}
	return d.Max() - d.Min()
}

// CDF returns Pr(S ≤ x) (relative to total mass 1; divide by TotalMass for
// unnormalized distributions if conditional semantics are wanted).
func (d *Dist) CDF(x float64) float64 {
	var s KahanSum
	for i, sc := range d.scores {
		if sc > x && !sameScore(sc, x) {
			break
		}
		s.Add(d.probs[i])
	}
	return s.Sum()
}

// TailProb returns Pr(S > x).
func (d *Dist) TailProb(x float64) float64 {
	var s KahanSum
	for i := len(d.scores) - 1; i >= 0; i-- {
		sc := d.scores[i]
		if sc < x || sameScore(sc, x) {
			break
		}
		s.Add(d.probs[i])
	}
	return s.Sum()
}

// Quantile returns the smallest score s with CDF(s) ≥ q·TotalMass. It treats
// the distribution as conditional (quantiles of the covered event). Returns
// NaN when empty or q outside [0,1].
func (d *Dist) Quantile(q float64) float64 {
	if len(d.scores) == 0 || q < 0 || q > 1 {
		return math.NaN()
	}
	target := q * d.TotalMass()
	var s KahanSum
	for i, p := range d.probs {
		s.Add(p)
		if s.Sum() >= target {
			return d.scores[i]
		}
	}
	return d.scores[len(d.scores)-1]
}

// Median returns Quantile(0.5) — the weighted median, which minimizes the
// expected absolute distance E|S − s| over all s (the c = 1 typical score
// when restricted to support points).
func (d *Dist) Median() float64 { return d.Quantile(0.5) }

// MaxProbLine returns the line with the largest probability mass (the mode).
// ok is false when the distribution is empty.
func (d *Dist) MaxProbLine() (Line, bool) {
	if len(d.scores) == 0 {
		return Line{}, false
	}
	best := 0
	for i, p := range d.probs {
		if p > d.probs[best] {
			best = i
		}
	}
	return d.Line(best), true
}

// MaxVecProbLine returns the line whose representative vector has the largest
// vector probability; this is the U-Topk answer when vectors are tracked
// exactly (coalescing preserves the max since merges keep the better vector).
func (d *Dist) MaxVecProbLine() (Line, bool) {
	if len(d.scores) == 0 {
		return Line{}, false
	}
	if !d.hasVec {
		return d.Line(0), true
	}
	best := 0
	for i, vp := range d.vprobs {
		if vp > d.vprobs[best] {
			best = i
		}
	}
	return d.Line(best), true
}

// ExpectedMinDistance returns E[min_i |S − points[i]|] under d, the
// c-Typical-Topk objective of Definition 1 (conditional on the covered event
// when unnormalized). points need not be sorted. Returns NaN when d is empty
// or points is empty.
func (d *Dist) ExpectedMinDistance(points []float64) float64 {
	if len(d.scores) == 0 || len(points) == 0 {
		return math.NaN()
	}
	ps := append([]float64(nil), points...)
	sort.Float64s(ps)
	var num, den KahanSum
	j := 0
	for i, sc := range d.scores {
		for j+1 < len(ps) && ps[j+1] <= sc {
			j++
		}
		best := math.Abs(sc - ps[j])
		if j+1 < len(ps) {
			if alt := math.Abs(ps[j+1] - sc); alt < best {
				best = alt
			}
		}
		num.Add(best * d.probs[i])
		den.Add(d.probs[i])
	}
	if den.Sum() == 0 {
		return math.NaN()
	}
	return num.Sum() / den.Sum()
}

// Wasserstein1 returns the 1-Wasserstein (earth mover's) distance between d
// and o, treating both as distributions conditioned on their covered events
// (each is normalized first). It is the test metric for the accuracy loss of
// line coalescing. Returns NaN if either is empty.
func (d *Dist) Wasserstein1(o *Dist) float64 {
	if len(d.scores) == 0 || len(o.scores) == 0 {
		return math.NaN()
	}
	md, mo := d.TotalMass(), o.TotalMass()
	if md <= 0 || mo <= 0 {
		return math.NaN()
	}
	// W1 = ∫ |F_d(x) − F_o(x)| dx over the merged support.
	var w KahanSum
	var cd, co float64
	i, j := 0, 0
	prev := math.Min(d.scores[0], o.scores[0])
	for i < len(d.scores) || j < len(o.scores) {
		var x float64
		switch {
		case i >= len(d.scores):
			x = o.scores[j]
		case j >= len(o.scores):
			x = d.scores[i]
		default:
			x = math.Min(d.scores[i], o.scores[j])
		}
		w.Add(math.Abs(cd/md-co/mo) * (x - prev))
		for i < len(d.scores) && d.scores[i] <= x {
			cd += d.probs[i]
			i++
		}
		for j < len(o.scores) && o.scores[j] <= x {
			co += o.probs[j]
			j++
		}
		prev = x
	}
	return w.Sum()
}

// Bucket is one bar of a histogram view.
type Bucket struct {
	Lo, Hi float64 // [Lo, Hi)
	Prob   float64
}

// Histogram returns the distribution aggregated into buckets of the given
// width, aligned at multiples of width. This implements the paper's "access
// the distribution at any granularity of precision". Panics if width ≤ 0.
func (d *Dist) Histogram(width float64) []Bucket {
	if width <= 0 {
		panic("pmf: histogram width must be positive")
	}
	if len(d.scores) == 0 {
		return nil
	}
	var out []Bucket
	for i, sc := range d.scores {
		lo := math.Floor(sc/width) * width
		if n := len(out); n > 0 && out[n-1].Lo == lo {
			out[n-1].Prob += d.probs[i]
			continue
		}
		out = append(out, Bucket{Lo: lo, Hi: lo + width, Prob: d.probs[i]})
	}
	return out
}

// NormalizeVectors rewrites every line's representative vector into
// ascending-position (i.e. rank) order. The ME-handling dynamic program
// builds vectors in row order, and rule-tuple rows may sit out of position
// relative to plain rows; one pass over the final lines restores the
// presentation invariant. Probabilities are untouched.
func (d *Dist) NormalizeVectors() {
	if !d.hasVec {
		return
	}
	for i, v := range d.vecs {
		if v == nil || v.Next == nil {
			continue
		}
		s := v.Slice()
		if sort.IntsAreSorted(s) {
			continue
		}
		sort.Ints(s)
		var nv *Vector
		for j := len(s) - 1; j >= 0; j-- {
			nv = nv.Prepend(s[j])
		}
		d.vecs[i] = nv
	}
}

// DetachVectors rebuilds every representative vector into one freshly
// allocated node block owned by d. The dynamic program allocates its
// intermediate vector nodes from a recycled VectorArena; a result that
// outlives the query must detach before the arena is reset. Sharing between
// lines is not preserved (final vectors have at most k nodes each, so the
// copy is tiny compared to the DP that produced them).
func (d *Dist) DetachVectors() {
	if !d.hasVec {
		return
	}
	total := 0
	for _, v := range d.vecs {
		total += v.Len()
	}
	if total == 0 {
		return
	}
	nodes := make([]Vector, total)
	next := 0
	for i, v := range d.vecs {
		if v == nil {
			continue
		}
		head := &nodes[next]
		cur := head
		for {
			next++
			cur.Tuple = v.Tuple
			v = v.Next
			if v == nil {
				cur.Next = nil
				break
			}
			cur.Next = &nodes[next]
			cur = cur.Next
		}
		d.vecs[i] = head
	}
}

// String renders a short human-readable summary.
func (d *Dist) String() string {
	if len(d.scores) == 0 {
		return "pmf{empty}"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "pmf{n=%d mass=%.6g span=[%.6g,%.6g] mean=%.6g}",
		len(d.scores), d.TotalMass(), d.Min(), d.Max(), d.Mean())
	return b.String()
}

// KahanSum is a compensated floating-point accumulator. The zero value is an
// empty sum ready to use.
type KahanSum struct {
	sum, c float64
}

// Add accumulates x.
func (k *KahanSum) Add(x float64) {
	y := x - k.c
	t := k.sum + y
	k.c = (t - k.sum) - y
	k.sum = t
}

// Sum returns the accumulated total.
func (k *KahanSum) Sum() float64 { return k.sum }

// Sum returns the compensated sum of xs.
func Sum(xs []float64) float64 {
	var k KahanSum
	for _, x := range xs {
		k.Add(x)
	}
	return k.Sum()
}
