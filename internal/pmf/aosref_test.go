package pmf

// This file keeps an array-of-structs reference implementation of the
// combine/coalesce kernels: the layout the package used before the
// structure-of-arrays rewrite. The reference operates on []Line with the
// same algorithms, same merge orders and the same grid arithmetic
// (idx = int((score-lo) * invDelta)), so any divergence from the live
// kernels isolates a bug in the SoA layout or its bounds-check-free loop
// bodies rather than floating-point rearrangement.

import (
	"math"
	"math/rand"
	"testing"
)

// refAppendCombine mirrors Dist.appendCombine on a plain line slice.
func refAppendCombine(out []Line, l Line) []Line {
	if n := len(out); n > 0 && sameScore(out[n-1].Score, l.Score) {
		out[n-1].Prob += l.Prob
		if l.VecProb > out[n-1].VecProb {
			out[n-1].Vec = l.Vec
			out[n-1].VecProb = l.VecProb
			out[n-1].VecBound = l.VecBound
		}
		return out
	}
	return append(out, l)
}

// refSrc is one sorted input stream of the reference N-way merge.
type refSrc struct {
	lines  []Line
	pos    int
	shift  float64
	factor float64
	tuple  int
}

func refSources(skip []Line, skipFactor float64, take []Line, branches []TakeBranch) []refSrc {
	var srcs []refSrc
	if len(skip) > 0 && skipFactor > 0 {
		srcs = append(srcs, refSrc{lines: skip, factor: skipFactor, tuple: -1})
	}
	if len(take) > 0 {
		for _, b := range branches {
			if b.Factor > 0 {
				srcs = append(srcs, refSrc{lines: take, shift: b.Shift, factor: b.Factor, tuple: b.Tuple})
			}
		}
	}
	return srcs
}

// refLine transforms source line l through stream s, exactly as the live
// kernels do (take: prepend tuple, scale VecProb by the factor, a take onto
// an empty vector fixes the boundary; skip: boundary-aware or plain factor).
func (s *refSrc) refLine(l Line, trackVectors bool, skipTrue func(float64) float64) Line {
	out := Line{Score: l.Score + s.shift, Prob: l.Prob * s.factor}
	if !trackVectors {
		return out
	}
	if s.tuple >= 0 {
		out.Vec = &Vector{Tuple: s.tuple, Next: l.Vec}
		out.VecProb = l.VecProb * s.factor
		out.VecBound = l.VecBound
		if l.Vec == nil {
			out.VecBound = s.shift
		}
		return out
	}
	out.Vec, out.VecProb, out.VecBound = l.Vec, l.VecProb, l.VecBound
	if skipTrue != nil {
		out.VecProb *= skipTrue(out.VecBound)
	} else {
		out.VecProb *= s.factor
	}
	return out
}

// refCombine is the AoS mirror of combineInto: an N-way merge pulling the
// source with the smallest current shifted score (first source wins ties),
// appending with equal-score combination.
func refCombine(skip []Line, skipFactor float64, take []Line, branches []TakeBranch,
	trackVectors bool, skipTrue func(float64) float64) []Line {
	srcs := refSources(skip, skipFactor, take, branches)
	var out []Line
	for {
		best := -1
		var bestScore float64
		for i := range srcs {
			s := &srcs[i]
			if s.pos >= len(s.lines) {
				continue
			}
			sc := s.lines[s.pos].Score + s.shift
			if best == -1 || sc < bestScore {
				best, bestScore = i, sc
			}
		}
		if best == -1 {
			return out
		}
		s := &srcs[best]
		out = refAppendCombine(out, s.refLine(s.lines[s.pos], trackVectors, skipTrue))
		s.pos++
	}
}

// refCell is one AoS grid cell of the reference grid pass.
type refCell struct {
	prob, sum  float64
	count      int
	vec        *Vector
	vp, vb     float64
	tuple      int
	hasVec     bool
	hasElected bool
}

// refGridCombine mirrors GridCombiner.Combine, including its fallback
// conditions and the exact idx arithmetic of the live kernel.
func refGridCombine(skip []Line, skipFactor float64, take []Line, branches []TakeBranch,
	maxLines int, mode CoalesceMode, trackVectors bool, skipTrue func(float64) float64) []Line {
	if maxLines <= 0 || len(branches) >= 16 {
		return refExact(skip, skipFactor, take, branches, maxLines, mode, trackVectors, skipTrue)
	}
	srcs := refSources(skip, skipFactor, take, branches)
	if len(srcs) == 0 {
		return nil
	}
	total := 0
	lo, hi := 0.0, 0.0
	for i := range srcs {
		s := &srcs[i]
		total += len(s.lines)
		slo := s.lines[0].Score + s.shift
		shi := s.lines[len(s.lines)-1].Score + s.shift
		if i == 0 || slo < lo {
			lo = slo
		}
		if i == 0 || shi > hi {
			hi = shi
		}
	}
	if total <= maxLines || hi <= lo {
		return refExact(skip, skipFactor, take, branches, maxLines, mode, trackVectors, skipTrue)
	}
	invDelta := float64(maxLines-1) / (hi - lo)
	cells := make([]refCell, maxLines)
	weighted := mode == CoalesceWeightedAverage
	last := maxLines - 1
	for i := range srcs {
		s := &srcs[i]
		for _, l0 := range s.lines {
			l := s.refLine(l0, trackVectors, skipTrue)
			idx := int((l.Score - lo) * invDelta)
			if idx > last {
				idx = last
			} else if idx < 0 {
				idx = 0
			}
			c := &cells[idx]
			c.prob += l.Prob
			if weighted {
				c.sum += l.Score * l.Prob
			} else {
				c.sum += l.Score
			}
			c.count++
			if trackVectors && (!c.hasElected || l.VecProb > c.vp) {
				c.hasElected = true
				// The live kernel materialises the winner's prepend only at
				// emit; the reference already built the full vector, which is
				// equivalent.
				c.vec, c.vp, c.vb = l.Vec, l.VecProb, l.VecBound
			}
		}
	}
	var out []Line
	for i := range cells {
		c := &cells[i]
		if c.count == 0 || c.prob <= 0 {
			continue
		}
		var score float64
		if weighted {
			score = c.sum / c.prob
		} else {
			score = c.sum / float64(c.count)
		}
		l := Line{Score: score, Prob: c.prob}
		if trackVectors {
			l.Vec, l.VecProb, l.VecBound = c.vec, c.vp, c.vb
		}
		out = refAppendCombine(out, l)
	}
	return out
}

// refExact is refCombine followed by closest-pair coalescing when the merge
// exceeds maxLines — the mirror of GridCombiner.exact.
func refExact(skip []Line, skipFactor float64, take []Line, branches []TakeBranch,
	maxLines int, mode CoalesceMode, trackVectors bool, skipTrue func(float64) float64) []Line {
	out := refCombine(skip, skipFactor, take, branches, trackVectors, skipTrue)
	if maxLines > 0 && len(out) > maxLines {
		out = refCoalesce(out, maxLines, mode)
	}
	return out
}

// refCoalesce mirrors Coalescer.run (closest-pair via a min-heap of adjacent
// gaps over a doubly-linked list, lazy invalidation) over a line slice, with
// the same heap so equal-gap tie-breaking matches the live kernel.
func refCoalesce(lines []Line, maxLines int, mode CoalesceMode) []Line {
	if maxLines <= 0 || len(lines) <= maxLines {
		return lines
	}
	if maxLines == 1 && mode == CoalesceWeightedAverage {
		// coalesceToOne: single mass-weighted line keeping the best vector.
		var mass, wsum KahanSum
		best := 0
		for i, l := range lines {
			mass.Add(l.Prob)
			wsum.Add(l.Score * l.Prob)
			if l.VecProb > lines[best].VecProb {
				best = i
			}
		}
		m := mass.Sum()
		score := 0.0
		if m > 0 {
			score = wsum.Sum() / m
		}
		return []Line{{Score: score, Prob: m,
			Vec: lines[best].Vec, VecProb: lines[best].VecProb, VecBound: lines[best].VecBound}}
	}
	n := len(lines)
	ls := append([]Line(nil), lines...)
	prev := make([]int, n)
	next := make([]int, n)
	ver := make([]int, n)
	for i := range ls {
		prev[i], next[i] = i-1, i+1
	}
	next[n-1] = -1
	var c Coalescer // reuse the live heap container: same sift order
	for i := 0; i+1 < n; i++ {
		c.h = append(c.h, gapEntry{left: i, right: i + 1, gap: ls[i+1].Score - ls[i].Score})
	}
	for i := len(c.h)/2 - 1; i >= 0; i-- {
		siftDown(c.h, i)
	}
	alive := n
	for alive > maxLines {
		e := c.hpop()
		if ver[e.left] != e.lv || ver[e.right] != e.rv {
			continue
		}
		l, r := e.left, e.right
		var score float64
		switch mode {
		case CoalesceWeightedAverage:
			if m := ls[l].Prob + ls[r].Prob; m > 0 {
				score = (ls[l].Score*ls[l].Prob + ls[r].Score*ls[r].Prob) / m
			} else {
				score = (ls[l].Score + ls[r].Score) / 2
			}
		default:
			score = (ls[l].Score + ls[r].Score) / 2
		}
		ls[l].Prob += ls[r].Prob
		if ls[r].VecProb > ls[l].VecProb {
			ls[l].Vec, ls[l].VecProb, ls[l].VecBound = ls[r].Vec, ls[r].VecProb, ls[r].VecBound
		}
		ls[l].Score = score
		ver[l]++
		ver[r]++
		nr := next[r]
		next[l] = nr
		if nr >= 0 {
			prev[nr] = l
		}
		alive--
		if p := prev[l]; p >= 0 {
			c.hpush(gapEntry{left: p, right: l, gap: ls[l].Score - ls[p].Score, lv: ver[p], rv: ver[l]})
		}
		if nx := next[l]; nx >= 0 {
			c.hpush(gapEntry{left: l, right: nx, gap: ls[nx].Score - ls[l].Score, lv: ver[l], rv: ver[nx]})
		}
	}
	var out []Line
	for i := 0; i != -1; i = next[i] {
		out = append(out, ls[i])
	}
	// Mirror the defensive re-sort (stable, like sortByScore).
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Score < out[j-1].Score; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// --- equivalence harness -------------------------------------------------

const refTol = 1e-12

func closeEnough(a, b float64) bool {
	if a == b {
		return true
	}
	d := math.Abs(a - b)
	return d <= refTol || d <= refTol*math.Max(math.Abs(a), math.Abs(b))
}

func vecSlice(v *Vector) []int {
	if v == nil {
		return nil
	}
	return v.Slice()
}

func sameVec(a, b *Vector) bool {
	as, bs := vecSlice(a), vecSlice(b)
	if len(as) != len(bs) {
		return false
	}
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

func diffLines(t *testing.T, label string, got *Dist, want []Line, trackVectors bool) {
	t.Helper()
	gl := got.Lines()
	if len(gl) != len(want) {
		t.Fatalf("%s: %d lines, reference has %d", label, len(gl), len(want))
	}
	for i := range gl {
		g, w := gl[i], want[i]
		if !closeEnough(g.Score, w.Score) || !closeEnough(g.Prob, w.Prob) {
			t.Fatalf("%s: line %d = (%v, %v), reference (%v, %v)", label, i, g.Score, g.Prob, w.Score, w.Prob)
		}
		if !trackVectors {
			continue
		}
		if !closeEnough(g.VecProb, w.VecProb) || !closeEnough(g.VecBound, w.VecBound) {
			t.Fatalf("%s: line %d vecprob/bound = (%v, %v), reference (%v, %v)",
				label, i, g.VecProb, g.VecBound, w.VecProb, w.VecBound)
		}
		if !sameVec(g.Vec, w.Vec) {
			t.Fatalf("%s: line %d vector %v, reference %v", label, i, vecSlice(g.Vec), vecSlice(w.Vec))
		}
	}
}

// genDist builds a random sorted distribution (and its AoS mirror) with
// optional exact score ties and vector annotations.
func genDist(rng *rand.Rand, n int, ties, withVecs bool) (*Dist, []Line) {
	lines := make([]Line, 0, n)
	score := rng.Float64() * 10
	for i := 0; i < n; i++ {
		if i > 0 {
			if ties && rng.Intn(4) == 0 {
				// exact tie with the previous line (combined on build)
			} else {
				score += 1e-6 + rng.Float64()*3
			}
		}
		l := Line{Score: score, Prob: 0.01 + rng.Float64()}
		if withVecs && rng.Intn(5) > 0 {
			var v *Vector
			for d := rng.Intn(3); d >= 0; d-- {
				v = &Vector{Tuple: rng.Intn(50), Next: v}
			}
			l.Vec = v
			l.VecProb = rng.Float64() * l.Prob
			l.VecBound = score - rng.Float64()
		}
		lines = append(lines, l)
	}
	d := New()
	var ref []Line
	for _, l := range lines {
		d.appendCombine(l)
		ref = refAppendCombine(ref, l)
	}
	return d, ref
}

func genBranches(rng *rand.Rand, n int) []TakeBranch {
	bs := make([]TakeBranch, n)
	rem := 1.0
	for i := range bs {
		f := rng.Float64() * rem * 0.8
		rem -= f
		bs[i] = TakeBranch{Shift: rng.Float64() * 20, Factor: f, Tuple: 100 + i}
	}
	return bs
}

// TestSoADistEquivalence drives the live SoA kernels and the retired AoS
// reference over the same randomized inputs — ties, ME-style multi-branch
// groups, vector tracking on and off, both coalesce modes, boundary-aware
// and plain skip semantics — and requires agreement within 1e-12.
func TestSoADistEquivalence(t *testing.T) {
	skipTrue := func(b float64) float64 { return 0.55 + 0.4*math.Sin(b) }
	cases := []struct {
		name         string
		trackVectors bool
		ties         bool
		branches     int
		maxLines     int
		mode         CoalesceMode
		useSkipTrue  bool
	}{
		{"untracked/plain", false, false, 1, 16, CoalescePlainAverage, false},
		{"untracked/weighted", false, false, 1, 16, CoalesceWeightedAverage, false},
		{"untracked/ties", false, true, 1, 12, CoalescePlainAverage, false},
		{"tracked/plain", true, false, 1, 16, CoalescePlainAverage, false},
		{"tracked/weighted", true, false, 1, 16, CoalesceWeightedAverage, false},
		{"tracked/ties", true, true, 1, 12, CoalescePlainAverage, false},
		{"tracked/skiptrue", true, true, 1, 16, CoalescePlainAverage, true},
		{"tracked/me-group", true, false, 4, 16, CoalescePlainAverage, false},
		{"tracked/me-group-skiptrue", true, true, 5, 14, CoalesceWeightedAverage, true},
		{"tracked/exact-fallback", true, true, 2, 0, CoalescePlainAverage, true},
		{"tracked/wide-me-fallback", true, false, 16, 10, CoalescePlainAverage, false},
		{"tracked/small-fits", true, false, 1, 200, CoalescePlainAverage, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			var g GridCombiner
			for trial := 0; trial < 40; trial++ {
				nSkip, nTake := rng.Intn(40), 1+rng.Intn(40)
				skipD, skipRef := genDist(rng, nSkip, tc.ties, tc.trackVectors)
				takeD, takeRef := genDist(rng, nTake, tc.ties, tc.trackVectors)
				skipFactor := rng.Float64()
				branches := genBranches(rng, tc.branches)
				var st func(float64) float64
				if tc.useSkipTrue {
					st = skipTrue
				}

				got := Combine(skipD, skipFactor, takeD, branches, tc.trackVectors, st)
				want := refCombine(skipRef, skipFactor, takeRef, branches, tc.trackVectors, st)
				diffLines(t, "Combine", got, want, tc.trackVectors)

				got = g.Combine(nil, skipD, skipFactor, takeD, branches, tc.maxLines, tc.mode, tc.trackVectors, st)
				want = refGridCombine(skipRef, skipFactor, takeRef, branches, tc.maxLines, tc.mode, tc.trackVectors, st)
				diffLines(t, "GridCombiner.Combine", got, want, tc.trackVectors)

				// Standalone closest-pair coalescing of the exact merge.
				ex := Combine(skipD, skipFactor, takeD, branches, tc.trackVectors, st)
				exRef := refCombine(skipRef, skipFactor, takeRef, branches, tc.trackVectors, st)
				limit := 1 + rng.Intn(8)
				ex.Coalesce(limit, tc.mode)
				exRef = refCoalesce(exRef, limit, tc.mode)
				diffLines(t, "Coalesce", ex, exRef, tc.trackVectors)
			}
		})
	}
}

// TestSoAMergeAllEquivalence covers the per-unit merge used by the ME
// algorithm's final union.
func TestSoAMergeAllEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		k := 1 + rng.Intn(6)
		ds := make([]*Dist, k)
		var refs [][]Line
		for i := range ds {
			d, r := genDist(rng, rng.Intn(30), trial%2 == 0, true)
			ds[i] = d
			refs = append(refs, r)
		}
		got := MergeAll(ds)
		want := refMergeAll(refs)
		diffLines(t, "MergeAll", got, want, true)
	}
}

// refMergeAll mirrors MergeAll's tournament order exactly, so equal-score
// chains combine in the same sequence as the live kernel.
func refMergeAll(ds [][]Line) []Line {
	if len(ds) == 0 {
		return nil
	}
	work := append([][]Line(nil), ds...)
	for len(work) > 1 {
		var merged [][]Line
		for i := 0; i < len(work); i += 2 {
			if i+1 < len(work) {
				merged = append(merged, refMerge(work[i], work[i+1]))
			} else {
				merged = append(merged, work[i])
			}
		}
		work = merged
	}
	return work[0]
}

// refMerge mirrors Merge: a two-way union combining equal scores.
func refMerge(a, b []Line) []Line {
	var out []Line
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case i >= len(a):
			out = refAppendCombine(out, b[j])
			j++
		case j >= len(b):
			out = refAppendCombine(out, a[i])
			i++
		case a[i].Score <= b[j].Score:
			out = refAppendCombine(out, a[i])
			i++
		default:
			out = refAppendCombine(out, b[j])
			j++
		}
	}
	return out
}
