package pmf

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func mustApprox(t *testing.T, name string, got, want float64) {
	t.Helper()
	if !approx(got, want, 1e-9) {
		t.Fatalf("%s = %v, want %v", name, got, want)
	}
}

func TestEmptyDist(t *testing.T) {
	d := New()
	if !d.IsEmpty() {
		t.Fatal("New() not empty")
	}
	if d.TotalMass() != 0 {
		t.Fatalf("mass = %v", d.TotalMass())
	}
	if !math.IsNaN(d.Mean()) || !math.IsNaN(d.Min()) || !math.IsNaN(d.Max()) {
		t.Fatal("stats of empty dist should be NaN")
	}
	if d.Span() != 0 {
		t.Fatal("span of empty dist should be 0")
	}
	if _, ok := d.MaxProbLine(); ok {
		t.Fatal("MaxProbLine on empty dist should report !ok")
	}
}

func TestFromLinesCombinesEqualScores(t *testing.T) {
	d := FromLines([]Line{
		{Score: 2, Prob: 0.25},
		{Score: 1, Prob: 0.5},
		{Score: 2, Prob: 0.25, VecProb: 0.3},
	})
	if d.Len() != 2 {
		t.Fatalf("len = %d, want 2", d.Len())
	}
	mustApprox(t, "mass", d.TotalMass(), 1.0)
	l := d.Line(1)
	mustApprox(t, "combined prob", l.Prob, 0.5)
	mustApprox(t, "kept VecProb", l.VecProb, 0.3)
}

func TestFromLinesDropsZeroProb(t *testing.T) {
	d := FromLines([]Line{{Score: 1, Prob: 0}, {Score: 2, Prob: 0.5}})
	if d.Len() != 1 {
		t.Fatalf("len = %d, want 1", d.Len())
	}
}

func TestStats(t *testing.T) {
	// Figure 3 toy distribution from the paper (computed from Figure 2).
	d := FromLines([]Line{
		{Score: 116, Prob: 0.04}, {Score: 118, Prob: 0.20},
		{Score: 136, Prob: 0.03}, {Score: 138, Prob: 0.15},
		{Score: 170, Prob: 0.16}, {Score: 181, Prob: 0.03},
		{Score: 183, Prob: 0.15}, {Score: 190, Prob: 0.12},
		{Score: 235, Prob: 0.12},
	})
	mustApprox(t, "mass", d.TotalMass(), 1.0)
	mustApprox(t, "mean", d.Mean(), 164.1) // paper: expected top-2 total score 164.1
	mustApprox(t, "Pr(S>118)", d.TailProb(118), 0.76)
	mustApprox(t, "median", d.Median(), 170) // paper: 1-Typical score is 170
	mustApprox(t, "min", d.Min(), 116)
	mustApprox(t, "max", d.Max(), 235)
	mustApprox(t, "span", d.Span(), 119)
	// paper: 3-Typical scores {118, 183, 235} have expected distance 6.6.
	mustApprox(t, "E[min dist]", d.ExpectedMinDistance([]float64{118, 183, 235}), 6.6)
}

func TestCDFQuantileConsistency(t *testing.T) {
	d := FromLines([]Line{{Score: 1, Prob: 0.2}, {Score: 2, Prob: 0.3}, {Score: 5, Prob: 0.5}})
	mustApprox(t, "CDF(0)", d.CDF(0), 0)
	mustApprox(t, "CDF(1)", d.CDF(1), 0.2)
	mustApprox(t, "CDF(1.5)", d.CDF(1.5), 0.2)
	mustApprox(t, "CDF(2)", d.CDF(2), 0.5)
	mustApprox(t, "CDF(10)", d.CDF(10), 1.0)
	mustApprox(t, "Q(0)", d.Quantile(0), 1)
	mustApprox(t, "Q(0.2)", d.Quantile(0.2), 1)
	mustApprox(t, "Q(0.21)", d.Quantile(0.21), 2)
	mustApprox(t, "Q(1)", d.Quantile(1), 5)
	if !math.IsNaN(d.Quantile(-0.1)) || !math.IsNaN(d.Quantile(1.1)) {
		t.Fatal("out-of-range quantile should be NaN")
	}
}

func TestNormalize(t *testing.T) {
	d := FromLines([]Line{{Score: 1, Prob: 0.2, VecProb: 0.1}, {Score: 2, Prob: 0.3}})
	d.Normalize()
	mustApprox(t, "mass", d.TotalMass(), 1.0)
	mustApprox(t, "line prob", d.Line(0).Prob, 0.4)
	// Vector probabilities are marginals of real events; conditioning the
	// score view must not inflate them.
	mustApprox(t, "unscaled VecProb", d.Line(0).VecProb, 0.1)
}

func TestVector(t *testing.T) {
	var v *Vector
	if v.Len() != 0 || v.Slice() != nil {
		t.Fatal("nil vector should be empty")
	}
	v = v.Prepend(3).Prepend(1).Prepend(0)
	got := v.Slice()
	want := []int{0, 1, 3}
	if len(got) != len(want) {
		t.Fatalf("slice = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("slice = %v, want %v", got, want)
		}
	}
	// Structural sharing: prepending to a shared tail must not mutate it.
	tail := v.Next
	_ = tail.Prepend(9)
	if v.Slice()[1] != 1 {
		t.Fatal("prepend mutated shared tail")
	}
}

func TestCombineBasic(t *testing.T) {
	// One DP step: below = {(0,1)} with an empty vector of probability 1.
	below := PointVec(0, 1, nil, 1)
	got := Combine(below, 0.6, below, []TakeBranch{{Shift: 10, Factor: 0.4, Tuple: 7}}, true, nil)
	if got.Len() != 2 {
		t.Fatalf("len = %d, want 2", got.Len())
	}
	l0, l1 := got.Line(0), got.Line(1)
	mustApprox(t, "skip score", l0.Score, 0)
	mustApprox(t, "skip prob", l0.Prob, 0.6)
	mustApprox(t, "take score", l1.Score, 10)
	mustApprox(t, "take prob", l1.Prob, 0.4)
	if l1.Vec.Slice()[0] != 7 {
		t.Fatalf("take vector = %v", l1.Vec.Slice())
	}
	mustApprox(t, "take vecprob", l1.VecProb, 0.4)
}

func TestCombineEqualScoresKeepsBetterVector(t *testing.T) {
	a := PointVec(5, 0.2, (*Vector)(nil).Prepend(1), 0.2)
	b := PointVec(0, 0.7, (*Vector)(nil).Prepend(2), 0.7)
	// take shifts b by 5 with factor 0.5 → (5, 0.35, vec [3 2], vecprob 0.35)
	got := Combine(a, 1.0, b, []TakeBranch{{Shift: 5, Factor: 0.5, Tuple: 3}}, true, nil)
	if got.Len() != 1 {
		t.Fatalf("len = %d, want 1", got.Len())
	}
	l := got.Line(0)
	mustApprox(t, "prob", l.Prob, 0.55)
	mustApprox(t, "vecprob", l.VecProb, 0.35)
	if s := l.Vec.Slice(); len(s) != 2 || s[0] != 3 || s[1] != 2 {
		t.Fatalf("vector = %v, want [3 2]", s)
	}
}

func TestCombineMultiBranch(t *testing.T) {
	below := Point(0, 1)
	// Rule tuple with members (10, 0.3) and (8, 0.5): skip factor 0.2.
	got := Combine(below, 0.2, below, []TakeBranch{
		{Shift: 10, Factor: 0.3, Tuple: 0},
		{Shift: 8, Factor: 0.5, Tuple: 1},
	}, true, nil)
	if got.Len() != 3 {
		t.Fatalf("len = %d, want 3", got.Len())
	}
	mustApprox(t, "mass", got.TotalMass(), 1.0)
	mustApprox(t, "line0", got.Line(0).Score, 0)
	mustApprox(t, "line1", got.Line(1).Score, 8)
	mustApprox(t, "line2", got.Line(2).Score, 10)
}

func TestCombineEmptyInputs(t *testing.T) {
	if got := Combine(nil, 0.5, nil, nil, true, nil); !got.IsEmpty() {
		t.Fatal("nil inputs should give empty dist")
	}
	d := Point(1, 1)
	got := Combine(New(), 0.5, d, []TakeBranch{{Shift: 0, Factor: 0.0, Tuple: 0}}, true, nil)
	if !got.IsEmpty() {
		t.Fatal("zero-factor take of empty skip should be empty")
	}
	got = Combine(d, 0, d, nil, true, nil)
	if !got.IsEmpty() {
		t.Fatal("zero skip factor with no branches should be empty")
	}
}

func TestMerge(t *testing.T) {
	a := FromLines([]Line{{Score: 1, Prob: 0.25}, {Score: 3, Prob: 0.25}})
	b := FromLines([]Line{{Score: 1, Prob: 0.25}, {Score: 2, Prob: 0.25}})
	m := Merge(a, b)
	if m.Len() != 3 {
		t.Fatalf("len = %d, want 3", m.Len())
	}
	mustApprox(t, "mass", m.TotalMass(), 1.0)
	mustApprox(t, "combined", m.Line(0).Prob, 0.5)
	if got := Merge(nil, a); got.Len() != a.Len() {
		t.Fatal("merge with nil lost lines")
	}
	if got := Merge(a, New()); got.Len() != a.Len() {
		t.Fatal("merge with empty lost lines")
	}
}

func TestMergeAll(t *testing.T) {
	var ds []*Dist
	for i := 0; i < 7; i++ {
		ds = append(ds, Point(float64(i), 0.1))
	}
	m := MergeAll(ds)
	if m.Len() != 7 {
		t.Fatalf("len = %d, want 7", m.Len())
	}
	mustApprox(t, "mass", m.TotalMass(), 0.7)
	if !MergeAll(nil).IsEmpty() {
		t.Fatal("MergeAll(nil) should be empty")
	}
}

func TestShiftScale(t *testing.T) {
	d := FromLines([]Line{{Score: 1, Prob: 0.5}, {Score: 2, Prob: 0.5}})
	s := d.Shift(10)
	mustApprox(t, "shifted min", s.Min(), 11)
	mustApprox(t, "orig min unchanged", d.Min(), 1)
	sc := d.Scale(0.5)
	mustApprox(t, "scaled mass", sc.TotalMass(), 0.5)
	if !d.Scale(0).IsEmpty() {
		t.Fatal("scale by 0 should empty")
	}
}

func TestHistogram(t *testing.T) {
	d := FromLines([]Line{
		{Score: 1.2, Prob: 0.2}, {Score: 1.9, Prob: 0.1},
		{Score: 2.5, Prob: 0.3}, {Score: 7.1, Prob: 0.4},
	})
	h := d.Histogram(1.0)
	if len(h) != 3 {
		t.Fatalf("buckets = %d, want 3", len(h))
	}
	mustApprox(t, "bucket0", h[0].Prob, 0.3)
	mustApprox(t, "bucket1", h[1].Prob, 0.3)
	mustApprox(t, "bucket2", h[2].Prob, 0.4)
	mustApprox(t, "bucket0.Lo", h[0].Lo, 1.0)
	var total float64
	for _, b := range h {
		total += b.Prob
	}
	mustApprox(t, "histogram mass", total, d.TotalMass())
	defer func() {
		if recover() == nil {
			t.Fatal("Histogram(0) should panic")
		}
	}()
	d.Histogram(0)
}

func TestCoalesceBasic(t *testing.T) {
	d := FromLines([]Line{
		{Score: 0, Prob: 0.1}, {Score: 1, Prob: 0.1}, {Score: 1.05, Prob: 0.2},
		{Score: 5, Prob: 0.3}, {Score: 9, Prob: 0.3},
	})
	merges := d.Coalesce(4, CoalescePlainAverage)
	if merges != 1 {
		t.Fatalf("merges = %d, want 1", merges)
	}
	if d.Len() != 4 {
		t.Fatalf("len = %d, want 4", d.Len())
	}
	// Closest pair (1, 1.05) merged to plain average 1.025 with prob 0.3.
	l := d.Line(1)
	mustApprox(t, "merged score", l.Score, 1.025)
	mustApprox(t, "merged prob", l.Prob, 0.3)
	mustApprox(t, "mass", d.TotalMass(), 1.0)
}

func TestCoalesceNoopUnderLimit(t *testing.T) {
	d := FromLines([]Line{{Score: 0, Prob: 0.5}, {Score: 1, Prob: 0.5}})
	if m := d.Coalesce(2, CoalescePlainAverage); m != 0 {
		t.Fatalf("merges = %d, want 0", m)
	}
	if m := d.Coalesce(0, CoalescePlainAverage); m != 0 {
		t.Fatalf("maxLines=0 should be unlimited, merges = %d", m)
	}
}

func TestCoalesceToOne(t *testing.T) {
	d := FromLines([]Line{{Score: 0, Prob: 0.25}, {Score: 10, Prob: 0.75}})
	d2 := d.Clone()
	d.Coalesce(1, CoalesceWeightedAverage)
	if d.Len() != 1 {
		t.Fatalf("len = %d, want 1", d.Len())
	}
	mustApprox(t, "weighted score", d.Line(0).Score, 7.5)
	mustApprox(t, "mass", d.Line(0).Prob, 1.0)
	d2.Coalesce(1, CoalescePlainAverage)
	if d2.Len() != 1 {
		t.Fatalf("len = %d, want 1", d2.Len())
	}
	mustApprox(t, "plain score", d2.Line(0).Score, 5.0)
}

func TestCoalesceKeepsBestVector(t *testing.T) {
	v1 := (*Vector)(nil).Prepend(1)
	v2 := (*Vector)(nil).Prepend(2)
	d := FromLines([]Line{
		{Score: 0, Prob: 0.5, Vec: v1, VecProb: 0.1},
		{Score: 1, Prob: 0.5, Vec: v2, VecProb: 0.4},
	})
	d.Coalesce(1, CoalescePlainAverage)
	if d.Line(0).Vec.Slice()[0] != 2 {
		t.Fatal("coalesce dropped the higher-probability vector")
	}
	mustApprox(t, "vecprob", d.Line(0).VecProb, 0.4)
}

// Property: coalescing preserves total mass and respects the line cap, and
// the Wasserstein distance to the original is bounded by span (generous).
func TestCoalesceProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(200)
		lines := make([]Line, n)
		for i := range lines {
			lines[i] = Line{Score: r.Float64() * 1000, Prob: r.Float64()}
		}
		d := FromLines(lines)
		orig := d.Clone()
		mass := d.TotalMass()
		max := 1 + r.Intn(d.Len())
		d.Coalesce(max, CoalescePlainAverage)
		if d.Len() > max {
			return false
		}
		if !approx(d.TotalMass(), mass, 1e-9) {
			return false
		}
		// Sorted invariant.
		if !sort.SliceIsSorted(d.Lines(), func(i, j int) bool {
			return d.Line(i).Score < d.Line(j).Score
		}) {
			return false
		}
		w := orig.Wasserstein1(d)
		return w <= orig.Span()+1e-9
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: with a generous line budget the coalesced distribution is close
// to the exact one in Wasserstein distance (span/maxLines scale).
func TestCoalesceAccuracy(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 500
		lines := make([]Line, n)
		for i := range lines {
			lines[i] = Line{Score: r.Float64() * 100, Prob: r.Float64()}
		}
		d := FromLines(lines)
		d.Normalize()
		exact := d.Clone()
		d.Coalesce(100, CoalescePlainAverage)
		w := exact.Wasserstein1(d)
		// Each merge moves at most (span/100) of pairwise distance; W1 stays
		// well under a few bucket widths in practice. Generous bound: 5δ.
		if delta := exact.Span() / 100; w > 5*delta {
			t.Fatalf("trial %d: W1 = %v exceeds 5δ = %v", trial, w, 5*delta)
		}
	}
}

func TestWasserstein(t *testing.T) {
	a := FromLines([]Line{{Score: 0, Prob: 1}})
	b := FromLines([]Line{{Score: 3, Prob: 1}})
	mustApprox(t, "W1 point masses", a.Wasserstein1(b), 3)
	mustApprox(t, "W1 self", a.Wasserstein1(a), 0)
	if !math.IsNaN(a.Wasserstein1(New())) {
		t.Fatal("W1 to empty should be NaN")
	}
	// Unnormalized inputs are treated as conditional distributions.
	c := FromLines([]Line{{Score: 3, Prob: 0.5}})
	mustApprox(t, "W1 scaled", a.Wasserstein1(c), 3)
}

func TestExpectedMinDistanceUnsortedPoints(t *testing.T) {
	d := FromLines([]Line{{Score: 0, Prob: 0.5}, {Score: 10, Prob: 0.5}})
	mustApprox(t, "emd", d.ExpectedMinDistance([]float64{12, 1}), 1.5)
	if !math.IsNaN(d.ExpectedMinDistance(nil)) {
		t.Fatal("no points should be NaN")
	}
}

func TestKahanSum(t *testing.T) {
	var k KahanSum
	for i := 0; i < 1_000_000; i++ {
		k.Add(0.1)
	}
	if math.Abs(k.Sum()-100000) > 1e-6 {
		t.Fatalf("kahan sum drifted: %v", k.Sum())
	}
	mustApprox(t, "Sum()", Sum([]float64{0.1, 0.2, 0.3}), 0.6)
}

func TestMaxVecProbLine(t *testing.T) {
	d := FromLines([]Line{
		{Score: 1, Prob: 0.6, VecProb: 0.2},
		{Score: 2, Prob: 0.4, VecProb: 0.3},
	})
	l, ok := d.MaxVecProbLine()
	if !ok || l.Score != 2 {
		t.Fatalf("MaxVecProbLine = %+v, %v", l, ok)
	}
	m, ok := d.MaxProbLine()
	if !ok || m.Score != 1 {
		t.Fatalf("MaxProbLine = %+v, %v", m, ok)
	}
}

func TestString(t *testing.T) {
	if s := New().String(); s != "pmf{empty}" {
		t.Fatalf("String = %q", s)
	}
	if s := Point(1, 1).String(); s == "" {
		t.Fatal("String should not be empty")
	}
}

// Property: Combine conserves mass: out = skipFactor·mass(skip) + Σ f·mass(take).
func TestCombineMassConservation(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		mk := func() *Dist {
			n := 1 + r.Intn(30)
			ls := make([]Line, n)
			for i := range ls {
				ls[i] = Line{Score: r.Float64() * 50, Prob: r.Float64()}
			}
			return FromLines(ls)
		}
		skip, take := mk(), mk()
		sf := r.Float64()
		var branches []TakeBranch
		want := sf * skip.TotalMass()
		for i := 0; i < 1+r.Intn(3); i++ {
			b := TakeBranch{Shift: r.Float64() * 10, Factor: r.Float64() * 0.5, Tuple: i}
			branches = append(branches, b)
			want += b.Factor * take.TotalMass()
		}
		out := Combine(skip, sf, take, branches, true, nil)
		return approx(out.TotalMass(), want, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
