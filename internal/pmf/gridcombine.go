package pmf

// CombineCoalesce fuses the distribution-merging step (Combine) with line
// coalescing on a δ-grid, for the dynamic program's inner loop.
//
// §3.2.1 of the paper bounds the accuracy loss of coalescing by the bucket
// width δ = (smax − smin)/c': lines closer than δ may merge. The closest-pair
// strategy (Coalescer) realises that bound exactly but costs O(L log L) with
// a large constant per DP cell. This fused pass instead merges lines falling
// into the same δ-wide grid cell of the output's score range: the same ±δ
// guarantee, one linear pass, and — because a merged line materialises only
// one representative vector — at most maxLines vector-node allocations per
// cell instead of one per input line.
//
// Semantics match Combine followed by grid coalescing to at most maxLines
// lines: probabilities of merged lines add; the merged score is the plain or
// probability-weighted mean of its members per mode; the representative
// vector is the member with the highest (boundary-adjusted, see Combine)
// vector probability. maxLines ≤ 0 falls back to exact CombineInto.
func CombineCoalesce(dst *Dist, skip *Dist, skipFactor float64, take *Dist, branches []TakeBranch,
	maxLines int, mode CoalesceMode, trackVectors bool, skipTrue func(bound float64) float64) *Dist {
	var g GridCombiner
	return g.Combine(dst, skip, skipFactor, take, branches, maxLines, mode, trackVectors, skipTrue)
}

// gridCell accumulates the lines landing in one δ-wide interval.
type gridCell struct {
	prob      float64
	scoreSum  float64 // Σ s (plain mode)
	wScoreSum float64 // Σ s·p (weighted mode)
	count     int
	// Lazy representative vector: materialised only for surviving cells.
	vecProb  float64
	vecBound float64
	vecBase  *Vector
	vecTuple int
	hasVec   bool
}

// GridCombiner runs CombineCoalesce with a reusable cell buffer; the dynamic
// program calls it once per cell, so per-call allocation would dominate. The
// zero value is ready to use; not safe for concurrent use.
type GridCombiner struct {
	cells []gridCell
}

// Combine is CombineCoalesce against the reusable buffer; see its
// documentation.
func (g *GridCombiner) Combine(dst *Dist, skip *Dist, skipFactor float64, take *Dist, branches []TakeBranch,
	maxLines int, mode CoalesceMode, trackVectors bool, skipTrue func(bound float64) float64) *Dist {
	if maxLines <= 0 || len(branches) >= 16 {
		// Unlimited mode, or more rule-tuple branches than the fixed source
		// array holds: use the exact path (the latter is possible only for
		// ME groups with 15+ members and stays correct, just slower).
		out := CombineInto(dst, skip, skipFactor, take, branches, trackVectors, skipTrue)
		if maxLines > 0 && out.Len() > maxLines {
			out.Coalesce(maxLines, mode)
		}
		return out
	}
	type source struct {
		lines  []Line
		shift  float64
		factor float64
		tuple  int // -1 for the skip source
	}
	var srcs [16]source
	n := 0
	if skip != nil && len(skip.lines) > 0 && skipFactor > 0 {
		srcs[n] = source{lines: skip.lines, factor: skipFactor, tuple: -1}
		n++
	}
	if take != nil && len(take.lines) > 0 {
		for _, b := range branches {
			if b.Factor > 0 && n < len(srcs) {
				srcs[n] = source{lines: take.lines, shift: b.Shift, factor: b.Factor, tuple: b.Tuple}
				n++
			}
		}
	}
	if n == 0 {
		if dst != nil {
			dst.lines = dst.lines[:0]
			return dst
		}
		return New()
	}
	total := 0
	lo, hi := 0.0, 0.0
	for i := 0; i < n; i++ {
		s := &srcs[i]
		total += len(s.lines)
		slo := s.lines[0].Score + s.shift
		shi := s.lines[len(s.lines)-1].Score + s.shift
		if i == 0 || slo < lo {
			lo = slo
		}
		if i == 0 || shi > hi {
			hi = shi
		}
	}
	if total <= maxLines || hi <= lo {
		// Small enough (or zero span): the exact merge already fits.
		out := CombineInto(dst, skip, skipFactor, take, branches, trackVectors, skipTrue)
		if out.Len() > maxLines {
			// Zero span cannot reach here (all scores equal combine to one
			// line); small inputs may still exceed after ties split — coalesce
			// the remainder exactly.
			out.Coalesce(maxLines, mode)
		}
		return out
	}

	// Grid accumulation. idx = floor((s − lo)/δ) with δ chosen so at most
	// maxLines cells exist.
	delta := (hi - lo) / float64(maxLines-1)
	if cap(g.cells) < maxLines {
		g.cells = make([]gridCell, maxLines)
	}
	cells := g.cells[:maxLines]
	for i := range cells {
		cells[i] = gridCell{}
	}
	for i := 0; i < n; i++ {
		s := &srcs[i]
		isSkip := s.tuple < 0
		for li := range s.lines {
			in := &s.lines[li]
			score := in.Score + s.shift
			idx := int((score - lo) / delta)
			if idx >= maxLines {
				idx = maxLines - 1
			}
			c := &cells[idx]
			p := in.Prob * s.factor
			c.prob += p
			c.scoreSum += score
			c.wScoreSum += score * p
			c.count++
			if trackVectors {
				var vp, vb float64
				if isSkip {
					vb = in.VecBound
					if skipTrue != nil {
						vp = in.VecProb * skipTrue(in.VecBound)
					} else {
						vp = in.VecProb * s.factor
					}
				} else {
					vp = in.VecProb * s.factor
					if in.Vec == nil {
						vb = s.shift
					} else {
						vb = in.VecBound
					}
				}
				if !c.hasVec || vp > c.vecProb {
					c.hasVec = true
					c.vecProb = vp
					c.vecBound = vb
					c.vecBase = in.Vec
					if isSkip {
						c.vecTuple = -1
					} else {
						c.vecTuple = s.tuple
					}
				}
			}
		}
	}
	out := dst
	if out == nil {
		out = &Dist{lines: make([]Line, 0, maxLines)}
	} else if cap(out.lines) < maxLines {
		out.lines = make([]Line, 0, maxLines)
	} else {
		out.lines = out.lines[:0]
	}
	for i := range cells {
		c := &cells[i]
		if c.count == 0 || c.prob <= 0 {
			continue
		}
		var score float64
		if mode == CoalesceWeightedAverage {
			score = c.wScoreSum / c.prob
		} else {
			score = c.scoreSum / float64(c.count)
		}
		l := Line{Score: score, Prob: c.prob}
		if trackVectors && c.hasVec {
			l.VecProb = c.vecProb
			l.VecBound = c.vecBound
			if c.vecTuple >= 0 {
				l.Vec = c.vecBase.Prepend(c.vecTuple)
			} else {
				l.Vec = c.vecBase
			}
		}
		out.appendCombine(l)
	}
	return out
}
