package pmf

// CombineCoalesce fuses the distribution-merging step (Combine) with line
// coalescing on a δ-grid, for the dynamic program's inner loop.
//
// §3.2.1 of the paper bounds the accuracy loss of coalescing by the bucket
// width δ = (smax − smin)/c': lines closer than δ may merge. The closest-pair
// strategy (Coalescer) realises that bound exactly but costs O(L log L) with
// a large constant per DP cell. This fused pass instead merges lines falling
// into the same δ-wide grid cell of the output's score range: the same ±δ
// guarantee, one linear pass, and — because a merged line materialises only
// one representative vector — at most maxLines vector-node allocations per
// cell instead of one per input line.
//
// Semantics match Combine followed by grid coalescing to at most maxLines
// lines: probabilities of merged lines add; the merged score is the plain or
// probability-weighted mean of its members per mode; the representative
// vector is the member with the highest (boundary-adjusted, see Combine)
// vector probability. maxLines ≤ 0 falls back to exact CombineInto.
func CombineCoalesce(dst *Dist, skip *Dist, skipFactor float64, take *Dist, branches []TakeBranch,
	maxLines int, mode CoalesceMode, trackVectors bool, skipTrue func(bound float64) float64) *Dist {
	var g GridCombiner
	return g.Combine(dst, skip, skipFactor, take, branches, maxLines, mode, trackVectors, skipTrue)
}

// GridCombiner runs CombineCoalesce with a reusable cell buffer; the dynamic
// program calls it once per cell, so per-call allocation would dominate. The
// zero value is ready to use; not safe for concurrent use.
//
// The cell accumulators are parallel arrays (one slot per output grid cell):
// the score/probability arrays are cleared on every call, while the five
// vector arrays are cleared — and even allocated — only when the call tracks
// vectors, so the untracked path touches exactly 20 bytes of accumulator
// state per cell.
type GridCombiner struct {
	// Arena, when non-nil, supplies the vector nodes materialised for
	// surviving cells (and by the exact fallback path). Results built with an
	// arena must be detached (Dist.DetachVectors) before the arena is reset.
	Arena *VectorArena

	prob  []float64 // Σ p over member lines
	sum   []float64 // Σ s (plain mode) or Σ s·p (weighted mode)
	count []int32   // member lines

	// Representative-vector cell state, valid where cellHasVec is set. Only
	// cellHasVec needs clearing between calls: the others are fully
	// overwritten before first read.
	cellVP     []float64
	cellVB     []float64
	cellBase   []*Vector
	cellTuple  []int32
	cellHasVec []bool

	co Coalescer // for the exact-path overflow fallback
}

// gridSrc is one input stream of the grid pass.
type gridSrc struct {
	scores  []float64
	probs   []float64
	vecs    []*Vector
	vprobs  []float64
	vbounds []float64
	shift   float64
	factor  float64
	tuple   int // -1 for the skip source
	hasVec  bool
}

// exact runs the non-grid fallback (exact merge, then closest-pair coalesce
// if the result still exceeds maxLines).
func (g *GridCombiner) exact(dst *Dist, skip *Dist, skipFactor float64, take *Dist, branches []TakeBranch,
	maxLines int, mode CoalesceMode, trackVectors bool, skipTrue func(bound float64) float64) *Dist {
	out := combineInto(dst, skip, skipFactor, take, branches, trackVectors, skipTrue, g.Arena)
	if maxLines > 0 && out.Len() > maxLines {
		g.co.Coalesce(out, maxLines, mode)
	}
	return out
}

// Combine is CombineCoalesce against the reusable buffer; see its
// documentation.
func (g *GridCombiner) Combine(dst *Dist, skip *Dist, skipFactor float64, take *Dist, branches []TakeBranch,
	maxLines int, mode CoalesceMode, trackVectors bool, skipTrue func(bound float64) float64) *Dist {
	if maxLines <= 0 || len(branches) >= 16 {
		// Unlimited mode, or more rule-tuple branches than the fixed source
		// array holds: use the exact path (the latter is possible only for
		// ME groups with 15+ members and stays correct, just slower).
		return g.exact(dst, skip, skipFactor, take, branches, maxLines, mode, trackVectors, skipTrue)
	}
	var srcs [16]gridSrc
	n := 0
	if skip != nil && len(skip.scores) > 0 && skipFactor > 0 {
		srcs[n] = gridSrc{scores: skip.scores, probs: skip.probs, factor: skipFactor, tuple: -1, hasVec: skip.hasVec}
		if skip.hasVec {
			srcs[n].vecs, srcs[n].vprobs, srcs[n].vbounds = skip.vecs, skip.vprobs, skip.vbounds
		}
		n++
	}
	if take != nil && len(take.scores) > 0 {
		for _, b := range branches {
			if b.Factor > 0 && n < len(srcs) {
				srcs[n] = gridSrc{scores: take.scores, probs: take.probs, shift: b.Shift, factor: b.Factor, tuple: b.Tuple, hasVec: take.hasVec}
				if take.hasVec {
					srcs[n].vecs, srcs[n].vprobs, srcs[n].vbounds = take.vecs, take.vprobs, take.vbounds
				}
				n++
			}
		}
	}
	if n == 0 {
		out := dst
		if out == nil {
			out = New()
		}
		out.reset(trackVectors)
		return out
	}
	total := 0
	lo, hi := 0.0, 0.0
	for i := 0; i < n; i++ {
		s := &srcs[i]
		total += len(s.scores)
		slo := s.scores[0] + s.shift
		shi := s.scores[len(s.scores)-1] + s.shift
		if i == 0 || slo < lo {
			lo = slo
		}
		if i == 0 || shi > hi {
			hi = shi
		}
	}
	if total <= maxLines || hi <= lo {
		// Small enough (or zero span): the exact merge already fits. (Zero
		// span cannot overflow — equal scores combine to one line; small
		// inputs may still exceed after ties split, which exact handles by
		// coalescing the remainder.)
		return g.exact(dst, skip, skipFactor, take, branches, maxLines, mode, trackVectors, skipTrue)
	}

	// Grid accumulation. idx = floor((s − lo)·(1/δ)) with δ chosen so at most
	// maxLines cells exist; one multiply per line instead of a divide.
	invDelta := float64(maxLines-1) / (hi - lo)
	g.grow(maxLines, trackVectors)
	// Local [:maxLines] views plus the two-sided idx clamp below let the
	// compiler prove 0 ≤ idx < len for every cell-array access, so the inner
	// loops carry no bounds checks. (idx cannot actually go negative —
	// score ≥ lo — the low clamp exists purely for the prover.)
	prob := g.prob[:maxLines]
	sum := g.sum[:maxLines]
	count := g.count[:maxLines]
	last := maxLines - 1
	weighted := mode == CoalesceWeightedAverage
	for i := 0; i < n; i++ {
		s := &srcs[i]
		scores := s.scores
		probs := s.probs[:len(scores)]
		shift, factor := s.shift, s.factor
		if !trackVectors {
			// Untracked hot path: two mode-specialised scalar loops streaming
			// only the score/prob arrays.
			if weighted {
				for li, sc0 := range scores {
					sc := sc0 + shift
					idx := int((sc - lo) * invDelta)
					if idx > last {
						idx = last
					} else if idx < 0 {
						idx = 0
					}
					p := probs[li] * factor
					prob[idx] += p
					sum[idx] += sc * p
					count[idx]++
				}
			} else {
				for li, sc0 := range scores {
					sc := sc0 + shift
					idx := int((sc - lo) * invDelta)
					if idx > last {
						idx = last
					} else if idx < 0 {
						idx = 0
					}
					prob[idx] += probs[li] * factor
					sum[idx] += sc
					count[idx]++
				}
			}
			continue
		}
		// Tracked path: fused accumulation + representative-vector election,
		// specialised per source kind so the inner loops carry no
		// loop-invariant branching.
		cellVP := g.cellVP[:maxLines]
		cellVB := g.cellVB[:maxLines]
		cellBase := g.cellBase[:maxLines]
		cellTuple := g.cellTuple[:maxLines]
		cellHasVec := g.cellHasVec[:maxLines]
		svecs, svps, svbs := s.vecs, s.vprobs, s.vbounds
		if svecs != nil {
			svecs = svecs[:len(scores)]
			svps = svps[:len(scores)]
			svbs = svbs[:len(scores)]
		}
		switch {
		case s.tuple < 0 && skipTrue != nil:
			// Skip source with boundary-aware vector adjustment.
			for li, sc0 := range scores {
				sc := sc0 + shift
				idx := int((sc - lo) * invDelta)
				if idx > last {
					idx = last
				} else if idx < 0 {
					idx = 0
				}
				p := probs[li] * factor
				prob[idx] += p
				if weighted {
					sum[idx] += sc * p
				} else {
					sum[idx] += sc
				}
				count[idx]++
				var inVec *Vector
				var vp, vb float64
				if svecs != nil {
					inVec, vp, vb = svecs[li], svps[li], svbs[li]
				}
				vp *= skipTrue(vb)
				if !cellHasVec[idx] || vp > cellVP[idx] {
					cellHasVec[idx] = true
					cellVP[idx] = vp
					cellVB[idx] = vb
					cellBase[idx] = inVec
					cellTuple[idx] = -1
				}
			}
		case s.tuple < 0:
			// Skip source, path-probability semantics.
			for li, sc0 := range scores {
				sc := sc0 + shift
				idx := int((sc - lo) * invDelta)
				if idx > last {
					idx = last
				} else if idx < 0 {
					idx = 0
				}
				p := probs[li] * factor
				prob[idx] += p
				if weighted {
					sum[idx] += sc * p
				} else {
					sum[idx] += sc
				}
				count[idx]++
				var inVec *Vector
				var vp, vb float64
				if svecs != nil {
					inVec, vp, vb = svecs[li], svps[li], svbs[li]
				}
				vp *= factor
				if !cellHasVec[idx] || vp > cellVP[idx] {
					cellHasVec[idx] = true
					cellVP[idx] = vp
					cellVB[idx] = vb
					cellBase[idx] = inVec
					cellTuple[idx] = -1
				}
			}
		default:
			// Take source: the branch tuple joins the vector; a take onto an
			// empty vector fixes the boundary at the tuple's own score.
			tuple := int32(s.tuple)
			for li, sc0 := range scores {
				sc := sc0 + shift
				idx := int((sc - lo) * invDelta)
				if idx > last {
					idx = last
				} else if idx < 0 {
					idx = 0
				}
				p := probs[li] * factor
				prob[idx] += p
				if weighted {
					sum[idx] += sc * p
				} else {
					sum[idx] += sc
				}
				count[idx]++
				var inVec *Vector
				var vp, vb float64
				if svecs != nil {
					inVec, vp, vb = svecs[li], svps[li], svbs[li]
				}
				vp *= factor
				if inVec == nil {
					vb = shift
				}
				if !cellHasVec[idx] || vp > cellVP[idx] {
					cellHasVec[idx] = true
					cellVP[idx] = vp
					cellVB[idx] = vb
					cellBase[idx] = inVec
					cellTuple[idx] = tuple
				}
			}
		}
	}
	return g.emit(dst, maxLines, weighted, trackVectors)
}

// emit builds the output distribution from the surviving grid cells with
// direct indexed writes (the append/sameScore bookkeeping per line showed up
// in profiles). Cell averages are strictly increasing across cells — every
// member of cell i scores below every member of cell i+1 — so the output is
// sorted by construction and only adjacent emitted lines can collide within
// Eps, which the in-place merge below handles exactly like appendCombine.
func (g *GridCombiner) emit(dst *Dist, maxLines int, weighted, trackVectors bool) *Dist {
	out := dst
	if out == nil {
		out = New()
	}
	out.reset(trackVectors)
	out.ensureCap(maxLines)
	prob, sum, count := g.prob, g.sum, g.count
	oScores := out.scores[:maxLines]
	oProbs := out.probs[:maxLines]
	var oVecs []*Vector
	var oVPs, oVBs []float64
	if trackVectors {
		out.vecs = out.vecs[:maxLines]
		out.vprobs = out.vprobs[:maxLines]
		out.vbounds = out.vbounds[:maxLines]
		oVecs, oVPs, oVBs = out.vecs, out.vprobs, out.vbounds
	}
	ar := g.Arena
	w := 0
	for i := 0; i < maxLines; i++ {
		if count[i] == 0 || prob[i] <= 0 {
			continue
		}
		var score float64
		if weighted {
			score = sum[i] / prob[i]
		} else {
			score = sum[i] / float64(count[i])
		}
		if !trackVectors {
			if w > 0 && sameScore(oScores[w-1], score) {
				oProbs[w-1] += prob[i]
				continue
			}
			oScores[w] = score
			oProbs[w] = prob[i]
			w++
			continue
		}
		var vec *Vector
		var vp, vb float64
		if g.cellHasVec[i] {
			vp, vb = g.cellVP[i], g.cellVB[i]
			if t := g.cellTuple[i]; t >= 0 {
				vec = ar.Prepend(g.cellBase[i], int(t))
			} else {
				vec = g.cellBase[i]
			}
		}
		if w > 0 && sameScore(oScores[w-1], score) {
			oProbs[w-1] += prob[i]
			if vp > oVPs[w-1] {
				oVecs[w-1], oVPs[w-1], oVBs[w-1] = vec, vp, vb
			}
			continue
		}
		oScores[w] = score
		oProbs[w] = prob[i]
		oVecs[w] = vec
		oVPs[w] = vp
		oVBs[w] = vb
		w++
	}
	out.scores = oScores[:w]
	out.probs = oProbs[:w]
	if trackVectors {
		out.vecs = oVecs[:w]
		out.vprobs = oVPs[:w]
		out.vbounds = oVBs[:w]
	}
	return out
}

// grow sizes and clears the cell accumulators for a pass over maxLines
// cells. The vector arrays are left untouched (not even allocated) when the
// pass does not track vectors.
func (g *GridCombiner) grow(maxLines int, trackVectors bool) {
	if cap(g.prob) < maxLines {
		g.prob = make([]float64, maxLines)
		g.sum = make([]float64, maxLines)
		g.count = make([]int32, maxLines)
	}
	g.prob = g.prob[:maxLines]
	g.sum = g.sum[:maxLines]
	g.count = g.count[:maxLines]
	clear(g.prob)
	clear(g.sum)
	clear(g.count)
	if !trackVectors {
		// Drop any bases left by an earlier tracked pass so they don't pin
		// that query's vector nodes for the combiner's pooled lifetime.
		clear(g.cellBase)
		return
	}
	if cap(g.cellHasVec) < maxLines {
		g.cellVP = make([]float64, maxLines)
		g.cellVB = make([]float64, maxLines)
		g.cellBase = make([]*Vector, maxLines)
		g.cellTuple = make([]int32, maxLines)
		g.cellHasVec = make([]bool, maxLines)
	}
	g.cellVP = g.cellVP[:maxLines]
	g.cellVB = g.cellVB[:maxLines]
	g.cellBase = g.cellBase[:maxLines]
	g.cellTuple = g.cellTuple[:maxLines]
	g.cellHasVec = g.cellHasVec[:maxLines]
	// cellHasVec gates every read of the other four, which are overwritten
	// before first use; one byte per cell is the whole vector-state reset.
	clear(g.cellHasVec)
	// Dead cellBase pointers would pin vector nodes across queries; the
	// arena recycles nodes anyway, but heap-allocated vectors (no arena)
	// must not leak. Clearing pointers is still cheap.
	clear(g.cellBase)
}
