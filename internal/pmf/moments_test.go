package pmf

import (
	"math"
	"testing"
)

func binomial(n int, p float64) *Dist {
	lines := make([]Line, n+1)
	for h := 0; h <= n; h++ {
		c := 1.0
		for i := 0; i < h; i++ {
			c = c * float64(n-i) / float64(i+1)
		}
		lines[h] = Line{Score: float64(h), Prob: c * math.Pow(p, float64(h)) * math.Pow(1-p, float64(n-h))}
	}
	return FromLines(lines)
}

func TestSkewness(t *testing.T) {
	// Binomial(n, p) skewness = (1−2p)/sqrt(np(1−p)).
	for _, p := range []float64{0.2, 0.5, 0.8} {
		d := binomial(30, p)
		want := (1 - 2*p) / math.Sqrt(30*p*(1-p))
		if got := d.Skewness(); math.Abs(got-want) > 1e-9 {
			t.Fatalf("p=%v: skewness = %v, want %v", p, got, want)
		}
	}
	// Symmetric two-point distribution: zero skew.
	d := FromLines([]Line{{Score: -1, Prob: 0.5}, {Score: 1, Prob: 0.5}})
	if got := d.Skewness(); math.Abs(got) > 1e-12 {
		t.Fatalf("symmetric skewness = %v", got)
	}
	if !math.IsNaN(New().Skewness()) {
		t.Fatal("empty skewness should be NaN")
	}
	if !math.IsNaN(Point(5, 1).Skewness()) {
		t.Fatal("zero-variance skewness should be NaN")
	}
}

func TestExcessKurtosis(t *testing.T) {
	// Binomial(n, p) excess kurtosis = (1−6p(1−p))/(np(1−p)).
	for _, p := range []float64{0.3, 0.5} {
		d := binomial(40, p)
		want := (1 - 6*p*(1-p)) / (40 * p * (1 - p))
		if got := d.ExcessKurtosis(); math.Abs(got-want) > 1e-9 {
			t.Fatalf("p=%v: kurtosis = %v, want %v", p, got, want)
		}
	}
	// Two equal point masses: z = ±1 always, kurtosis = 1−3 = −2.
	d := FromLines([]Line{{Score: 0, Prob: 0.5}, {Score: 2, Prob: 0.5}})
	if got := d.ExcessKurtosis(); math.Abs(got+2) > 1e-12 {
		t.Fatalf("two-point kurtosis = %v, want -2", got)
	}
	if !math.IsNaN(New().ExcessKurtosis()) {
		t.Fatal("empty kurtosis should be NaN")
	}
}

func TestEntropy(t *testing.T) {
	// Uniform over 8 points: 3 bits.
	lines := make([]Line, 8)
	for i := range lines {
		lines[i] = Line{Score: float64(i), Prob: 0.125}
	}
	d := FromLines(lines)
	if got := d.Entropy(); math.Abs(got-3) > 1e-12 {
		t.Fatalf("uniform entropy = %v, want 3", got)
	}
	// Point mass: zero entropy.
	if got := Point(1, 1).Entropy(); got != 0 {
		t.Fatalf("point entropy = %v", got)
	}
	// Unnormalized mass is treated conditionally.
	half := FromLines([]Line{{Score: 0, Prob: 0.25}, {Score: 1, Prob: 0.25}})
	if got := half.Entropy(); math.Abs(got-1) > 1e-12 {
		t.Fatalf("conditional entropy = %v, want 1", got)
	}
	// Fair coin, 20 tosses: H = 20 bits per sequence but the COUNT
	// distribution is far narrower; sanity: between 2 and 4 bits.
	if got := binomial(20, 0.5).Entropy(); got < 2 || got > 4 {
		t.Fatalf("binomial entropy = %v", got)
	}
	if !math.IsNaN(New().Entropy()) {
		t.Fatal("empty entropy should be NaN")
	}
}
