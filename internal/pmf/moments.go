package pmf

import "math"

// Skewness returns the standardised third central moment of the score under
// d (conditional on the covered event when unnormalized): positive values
// mean a long right tail. The §5.4 experiments read distribution shape
// changes off this directly (e.g. Figure 16's drift toward lower scores).
// Returns NaN for empty or zero-variance distributions.
func (d *Dist) Skewness() float64 {
	if len(d.scores) == 0 {
		return math.NaN()
	}
	mu := d.Mean()
	sigma := d.StdDev()
	if sigma == 0 || math.IsNaN(sigma) {
		return math.NaN()
	}
	var num, den KahanSum
	probs := d.probs[:len(d.scores)]
	for i, sc := range d.scores {
		z := (sc - mu) / sigma
		num.Add(z * z * z * probs[i])
		den.Add(probs[i])
	}
	if den.Sum() == 0 {
		return math.NaN()
	}
	return num.Sum() / den.Sum()
}

// ExcessKurtosis returns the standardised fourth central moment minus 3
// (zero for a normal distribution): positive values mean heavier tails.
// Returns NaN for empty or zero-variance distributions.
func (d *Dist) ExcessKurtosis() float64 {
	if len(d.scores) == 0 {
		return math.NaN()
	}
	mu := d.Mean()
	sigma := d.StdDev()
	if sigma == 0 || math.IsNaN(sigma) {
		return math.NaN()
	}
	var num, den KahanSum
	probs := d.probs[:len(d.scores)]
	for i, sc := range d.scores {
		z := (sc - mu) / sigma
		num.Add(z * z * z * z * probs[i])
		den.Add(probs[i])
	}
	if den.Sum() == 0 {
		return math.NaN()
	}
	return num.Sum()/den.Sum() - 3
}

// Entropy returns the Shannon entropy (in bits) of the score distribution,
// treating it as conditional on the covered event. This is the quantity
// behind the paper's Example-2 analogy: the typical set of an n-fold source
// has about 2^(n·H) members, which is why the single most probable outcome
// is atypical. Returns NaN for empty distributions.
func (d *Dist) Entropy() float64 {
	if len(d.scores) == 0 {
		return math.NaN()
	}
	mass := d.TotalMass()
	if mass <= 0 {
		return math.NaN()
	}
	var h KahanSum
	for _, p := range d.probs {
		pp := p / mass
		if pp > 0 {
			h.Add(-pp * math.Log2(pp))
		}
	}
	return h.Sum()
}
