package uncertain

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// csvHeader is the canonical column layout for table CSV files.
var csvHeader = []string{"id", "score", "prob", "group"}

// WriteCSV writes the table in insertion order with a header row:
// id,score,prob,group (group empty for independent tuples).
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("uncertain: writing csv header: %w", err)
	}
	for _, tp := range t.tuples {
		rec := []string{
			tp.ID,
			strconv.FormatFloat(tp.Score, 'g', -1, 64),
			strconv.FormatFloat(tp.Prob, 'g', -1, 64),
			tp.Group,
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("uncertain: writing csv record: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a table written by WriteCSV (or any CSV with the same
// header). The header row is required so column order is unambiguous.
// Tuple ids must be unique: answers reference tuples by id, so a file with
// a repeated id is ambiguous and rejected.
func ReadCSV(r io.Reader) (*Table, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(csvHeader)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("uncertain: reading csv header: %w", err)
	}
	for i, want := range csvHeader {
		if header[i] != want {
			return nil, fmt.Errorf("uncertain: csv header column %d is %q, want %q", i, header[i], want)
		}
	}
	t := NewTable()
	seen := make(map[string]int)
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("uncertain: reading csv: %w", err)
		}
		score, err := strconv.ParseFloat(rec[1], 64)
		if err != nil {
			return nil, fmt.Errorf("uncertain: csv line %d: bad score %q: %w", line, rec[1], err)
		}
		prob, err := strconv.ParseFloat(rec[2], 64)
		if err != nil {
			return nil, fmt.Errorf("uncertain: csv line %d: bad prob %q: %w", line, rec[2], err)
		}
		if first, dup := seen[rec[0]]; dup {
			return nil, fmt.Errorf("uncertain: csv line %d: duplicate id %q (first on line %d)", line, rec[0], first)
		}
		seen[rec[0]] = line
		t.Add(Tuple{ID: rec[0], Score: score, Prob: prob, Group: rec[3]})
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}
