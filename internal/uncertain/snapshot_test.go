package uncertain

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
)

// contentsSig fingerprints tuple contents for identity-collision checks.
func contentsSig(tuples []Tuple) string {
	var b strings.Builder
	for _, tp := range tuples {
		fmt.Fprintf(&b, "%s|%v|%v|%s;", tp.ID, tp.Score, tp.Prob, tp.Group)
	}
	return b.String()
}

// TestSnapshotCopyOnWrite pins the copy-on-write contract: an unchanged
// table hands out the very same snapshot; a mutation mints a fresh one with
// a larger ID; and an old snapshot keeps serving exactly the contents it
// froze, untouched by later appends.
func TestSnapshotCopyOnWrite(t *testing.T) {
	tab := NewTable()
	tab.AddIndependent("a", 10, 0.5)
	s1 := tab.Snapshot()
	if s2 := tab.Snapshot(); s2 != s1 {
		t.Fatal("unchanged table minted a new snapshot")
	}
	if s1.ID() == 0 {
		t.Fatal("snapshot ID 0 — must never be a valid identity")
	}
	tab.AddIndependent("b", 20, 0.7)
	s3 := tab.Snapshot()
	if s3 == s1 || s3.ID() == s1.ID() {
		t.Fatal("mutation did not mint a new snapshot identity")
	}
	if s3.ID() <= s1.ID() {
		t.Fatalf("snapshot IDs not monotonic: %d then %d", s1.ID(), s3.ID())
	}
	if s1.Owner() != s3.Owner() || s1.Owner() != tab.Identity() {
		t.Fatalf("snapshots of one table must share its identity: %d, %d, table %d",
			s1.Owner(), s3.Owner(), tab.Identity())
	}
	// The old snapshot is frozen: length and contents are from its moment.
	if s1.Len() != 1 || s1.Tuple(0).ID != "a" {
		t.Fatalf("old snapshot mutated: %+v", s1.Tuples())
	}
	if s3.Len() != 2 || s3.Tuple(1).ID != "b" {
		t.Fatalf("new snapshot wrong: %+v", s3.Tuples())
	}
	// Both prepare to their own contents.
	p1, err := s1.Prepare()
	if err != nil {
		t.Fatal(err)
	}
	p3, err := s3.Prepare()
	if err != nil {
		t.Fatal(err)
	}
	if p1.Len() != 1 || p3.Len() != 2 {
		t.Fatalf("prepared lengths %d, %d", p1.Len(), p3.Len())
	}
}

// TestCloneSnapshotDistinctIdentity covers the exact trap the old
// (pointer, version) cache key and Version()-counts-only-Adds semantics got
// wrong: a clone shares its origin's Version, and a recreated table built
// by the same number of Adds shares it too — yet their snapshots must carry
// distinct identities so no cache can ever cross-serve them.
func TestCloneSnapshotDistinctIdentity(t *testing.T) {
	tab := NewTable()
	tab.AddIndependent("a", 10, 0.5)
	tab.AddIndependent("b", 20, 0.7)
	orig := tab.Snapshot()

	clone := tab.Clone()
	if clone.Version() != tab.Version() {
		t.Fatalf("precondition: clone version %d != %d", clone.Version(), tab.Version())
	}
	cs := clone.Snapshot()
	if cs.ID() == orig.ID() {
		t.Fatal("clone snapshot shares its origin's identity")
	}
	if cs.Owner() == orig.Owner() {
		t.Fatal("clone shares its origin's table identity")
	}

	// Delete/recreate: a fresh table with the same number of Adds (same
	// Version) and even the same contents gets fresh identities.
	again := NewTable()
	again.AddIndependent("a", 10, 0.5)
	again.AddIndependent("b", 20, 0.7)
	if again.Version() != tab.Version() {
		t.Fatalf("precondition: recreate version %d != %d", again.Version(), tab.Version())
	}
	as := again.Snapshot()
	if as.ID() == orig.ID() || as.ID() == cs.ID() {
		t.Fatal("recreated table reused a snapshot identity")
	}

	// Diverge the clone; the origin's snapshot must be unaffected and the
	// clone's next snapshot distinct again.
	clone.AddIndependent("c", 99, 0.9)
	cs2 := clone.Snapshot()
	if cs2.ID() == cs.ID() || cs2.Len() != 3 {
		t.Fatalf("diverged clone snapshot wrong: id %d len %d", cs2.ID(), cs2.Len())
	}
	if orig.Len() != 2 || cs.Len() != 2 {
		t.Fatal("divergence leaked into frozen snapshots")
	}
}

// TestSnapshotIdentityNeverCollides is the property test for the identity
// scheme: across randomized interleavings of mutation, Clone, and
// replace/delete-recreate (fresh tables landing in reused slots — the
// moral equivalent of pointer reuse), no snapshot identity is ever observed
// with two different contents, and repeated snapshots of an unchanged
// table are the identical object.
func TestSnapshotIdentityNeverCollides(t *testing.T) {
	r := rand.New(rand.NewSource(1309))
	seen := make(map[uint64]string) // snapshot ID → contents signature
	last := make(map[*Table]*Snapshot)
	tables := []*Table{NewTable()}

	record := func(tab *Table) {
		s := tab.Snapshot()
		sig := contentsSig(s.Tuples())
		if prev, ok := seen[s.ID()]; ok {
			if prev != sig {
				t.Fatalf("snapshot ID %d observed with two contents:\n%s\nvs\n%s", s.ID(), prev, sig)
			}
		} else {
			seen[s.ID()] = sig
		}
		if prevSnap, ok := last[tab]; ok && prevSnap.ID() == s.ID() && prevSnap != s {
			t.Fatalf("same ID %d from distinct snapshot objects", s.ID())
		}
		last[tab] = s
	}

	randTable := func(n int) *Table {
		fresh := NewTable()
		for i := 0; i < n; i++ {
			fresh.AddIndependent(fmt.Sprintf("r%d", r.Intn(50)), float64(r.Intn(100)), 0.1+0.8*r.Float64())
		}
		return fresh
	}

	for step := 0; step < 5000; step++ {
		switch r.Intn(6) {
		case 0: // mutate
			tab := tables[r.Intn(len(tables))]
			tab.AddIndependent(fmt.Sprintf("t%d", step), float64(r.Intn(100)), 0.5)
		case 1: // clone (same Version as origin)
			tables = append(tables, tables[r.Intn(len(tables))].Clone())
		case 2: // replace a slot: recreate with the same Add count as some
			// existing table, so Versions collide while contents differ
			donor := tables[r.Intn(len(tables))]
			tables[r.Intn(len(tables))] = randTable(donor.Len())
		default: // snapshot and check
			record(tables[r.Intn(len(tables))])
		}
		if len(tables) > 16 {
			tables = tables[len(tables)-16:]
		}
	}
	if len(seen) < 500 {
		t.Fatalf("property test exercised only %d distinct snapshots", len(seen))
	}
}

// TestSnapshotReadsConcurrentWithMutation drives the exact pattern the
// serving layer relies on: the owner keeps appending and re-snapshotting
// while other goroutines prepare and read earlier snapshots. Run under
// -race (CI does), this validates that the copy-on-write aliasing really
// shares no mutable memory.
func TestSnapshotReadsConcurrentWithMutation(t *testing.T) {
	tab := NewTable()
	for i := 0; i < 50; i++ {
		tab.AddIndependent(fmt.Sprintf("seed%d", i), float64(i), 0.5)
	}
	var wg sync.WaitGroup
	for step := 0; step < 200; step++ {
		s := tab.Snapshot()
		wantLen := tab.Len()
		wg.Add(1)
		go func() {
			defer wg.Done()
			if s.Len() != wantLen {
				t.Errorf("snapshot len %d, want %d", s.Len(), wantLen)
				return
			}
			prep, err := s.Prepare()
			if err != nil {
				t.Error(err)
				return
			}
			if prep.Len() != wantLen {
				t.Errorf("prepared len %d, want %d", prep.Len(), wantLen)
			}
		}()
		// Mutate while the reader is (probably) mid-prepare.
		tab.AddIndependent(fmt.Sprintf("t%d", step), float64(step%97), 0.5)
	}
	wg.Wait()
}

// TestSnapshotTableRoundTrip: materialising a snapshot back into a table
// yields equal contents with a fresh identity.
func TestSnapshotTableRoundTrip(t *testing.T) {
	tab := NewTable()
	tab.AddExclusive("a", "g", 10, 0.5)
	tab.AddExclusive("b", "g", 9, 0.4)
	tab.AddIndependent("c", 8, 0.9)
	s := tab.Snapshot()
	back := s.Table()
	if contentsSig(back.Tuples()) != contentsSig(tab.Tuples()) {
		t.Fatalf("round trip changed contents:\n%v\nvs\n%v", back.Tuples(), tab.Tuples())
	}
	if back.Snapshot().ID() == s.ID() {
		t.Fatal("materialised table reused the snapshot's identity")
	}
	// NewSnapshot copies: mutating the source slice later must not leak in.
	src := tab.Tuples()
	ns := NewSnapshot(src)
	src[0].ID = "mutated"
	if ns.Tuple(0).ID != "a" {
		t.Fatal("NewSnapshot aliased its input")
	}
}
