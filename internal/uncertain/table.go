// Package uncertain implements the tuple-level uncertain data model of the
// probabilistic database literature, as used by the paper (§2.1): an
// uncertain table is a set of tuples, each with a membership probability, and
// a set of mutual-exclusion (ME) rules. Each rule names an ME group, at most
// one tuple of which may appear in a possible world; the probabilities within
// a group sum to at most 1, and groups are independent of each other.
//
// The package also provides the derived structure the paper's algorithms
// need: the (score, probability)-descending sort order of §3.4, tie groups
// (§2.3), lead tuples and lead-tuple regions (§3.3.3), and the per-group
// prefix probability masses used by the exact StateExpansion baseline.
package uncertain

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// probSumTolerance is the slack allowed when validating that an ME group's
// probabilities sum to at most 1, to absorb floating-point noise in
// generated datasets.
const probSumTolerance = 1e-9

// Tuple is one uncertain tuple: an identifier, a ranking score, a membership
// probability, and an optional ME group key ("" means the tuple is alone in
// its own group, i.e. independent).
type Tuple struct {
	ID    string
	Score float64
	Prob  float64
	Group string
}

// Table is an uncertain table: an ordered collection of tuples plus the ME
// rules implied by their Group keys. The zero value is an empty table.
type Table struct {
	tuples []Tuple
}

// NewTable returns an empty table.
func NewTable() *Table { return &Table{} }

// Add appends a tuple. Returns the table for chaining.
func (t *Table) Add(tp Tuple) *Table {
	t.tuples = append(t.tuples, tp)
	return t
}

// AddIndependent appends an independent tuple (its own ME group).
func (t *Table) AddIndependent(id string, score, prob float64) *Table {
	return t.Add(Tuple{ID: id, Score: score, Prob: prob})
}

// AddExclusive appends a tuple belonging to the named ME group.
func (t *Table) AddExclusive(id, group string, score, prob float64) *Table {
	return t.Add(Tuple{ID: id, Score: score, Prob: prob, Group: group})
}

// Len returns the number of tuples.
func (t *Table) Len() int { return len(t.tuples) }

// Tuples returns a copy of the tuple slice in insertion order.
func (t *Table) Tuples() []Tuple {
	out := make([]Tuple, len(t.tuples))
	copy(out, t.tuples)
	return out
}

// Tuple returns the i-th tuple in insertion order.
func (t *Table) Tuple(i int) Tuple { return t.tuples[i] }

// Clone returns a deep copy.
func (t *Table) Clone() *Table {
	c := &Table{tuples: make([]Tuple, len(t.tuples))}
	copy(c.tuples, t.tuples)
	return c
}

// Validate checks the data-model invariants: every probability is in (0, 1],
// scores are finite, and each ME group's probabilities sum to at most 1.
func (t *Table) Validate() error {
	sums := make(map[string]float64)
	for i, tp := range t.tuples {
		if math.IsNaN(tp.Score) || math.IsInf(tp.Score, 0) {
			return fmt.Errorf("uncertain: tuple %d (%q) has non-finite score %v", i, tp.ID, tp.Score)
		}
		if !(tp.Prob > 0 && tp.Prob <= 1) {
			return fmt.Errorf("uncertain: tuple %d (%q) has probability %v outside (0, 1]", i, tp.ID, tp.Prob)
		}
		if tp.Group != "" {
			sums[tp.Group] += tp.Prob
		}
	}
	for g, s := range sums {
		if s > 1+probSumTolerance {
			return fmt.Errorf("uncertain: ME group %q has total probability %v > 1", g, s)
		}
	}
	return nil
}

// ErrEmptyTable is returned when an operation requires a non-empty table.
var ErrEmptyTable = errors.New("uncertain: empty table")

// PTuple is a tuple in a Prepared table: the original tuple plus its dense
// group identifier and lead flag.
type PTuple struct {
	// Orig is the tuple's index in the source table's insertion order.
	Orig  int
	ID    string
	Score float64
	Prob  float64
	// Group is a dense group identifier. Independent tuples get their own
	// singleton group.
	Group int
	// Lead reports whether this tuple is the first (highest-ranked) member
	// of its ME group in the prepared order. Singleton-group tuples are
	// always leads (§3.3.3).
	Lead bool
}

// Prepared is a validated table sorted in the canonical order of §3.4:
// descending by (score, probability), remaining ties broken by insertion
// order so the sort is total and deterministic. It caches the group
// structure, tie groups, and lead regions the algorithms need.
type Prepared struct {
	Tuples []PTuple

	// groupMembers[g] lists the prepared positions of group g's members in
	// rank order.
	groupMembers [][]int
	// tieStart[i] / tieEnd[i] give the half-open range of the tie group
	// containing position i.
	tieStart, tieEnd []int
}

// Prepare validates and sorts the table, returning the derived structure.
func Prepare(t *Table) (*Prepared, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if t.Len() == 0 {
		return nil, ErrEmptyTable
	}
	idx := make([]int, t.Len())
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		ta, tb := t.tuples[idx[a]], t.tuples[idx[b]]
		if ta.Score != tb.Score {
			return ta.Score > tb.Score
		}
		if ta.Prob != tb.Prob {
			return ta.Prob > tb.Prob
		}
		return idx[a] < idx[b]
	})
	p := &Prepared{Tuples: make([]PTuple, t.Len())}
	groupIDs := make(map[string]int)
	for pos, oi := range idx {
		tp := t.tuples[oi]
		var g int
		if tp.Group == "" {
			g = len(p.groupMembers)
			p.groupMembers = append(p.groupMembers, nil)
		} else if known, ok := groupIDs[tp.Group]; ok {
			g = known
		} else {
			g = len(p.groupMembers)
			groupIDs[tp.Group] = g
			p.groupMembers = append(p.groupMembers, nil)
		}
		p.Tuples[pos] = PTuple{
			Orig: oi, ID: tp.ID, Score: tp.Score, Prob: tp.Prob,
			Group: g, Lead: len(p.groupMembers[g]) == 0,
		}
		p.groupMembers[g] = append(p.groupMembers[g], pos)
	}
	p.buildTieGroups()
	return p, nil
}

func (p *Prepared) buildTieGroups() {
	n := len(p.Tuples)
	p.tieStart = make([]int, n)
	p.tieEnd = make([]int, n)
	for i := 0; i < n; {
		j := i + 1
		for j < n && p.Tuples[j].Score == p.Tuples[i].Score {
			j++
		}
		for q := i; q < j; q++ {
			p.tieStart[q], p.tieEnd[q] = i, j
		}
		i = j
	}
}

// Len returns the number of tuples.
func (p *Prepared) Len() int { return len(p.Tuples) }

// NumGroups returns the number of distinct ME groups (singletons included).
func (p *Prepared) NumGroups() int { return len(p.groupMembers) }

// GroupMembers returns the prepared positions of group g's members in rank
// order. The returned slice must not be modified.
func (p *Prepared) GroupMembers(g int) []int { return p.groupMembers[g] }

// GroupSize returns the number of members of tuple position i's group.
func (p *Prepared) GroupSize(i int) int { return len(p.groupMembers[p.Tuples[i].Group]) }

// TieGroup returns the half-open position range [start, end) of the tie
// group containing position i (§2.3). A tuple with a unique score is in a
// tie group of size one.
func (p *Prepared) TieGroup(i int) (start, end int) { return p.tieStart[i], p.tieEnd[i] }

// HasTies reports whether any tie group has more than one tuple.
func (p *Prepared) HasTies() bool {
	for i := range p.Tuples {
		if p.tieEnd[i]-p.tieStart[i] > 1 {
			return true
		}
	}
	return false
}

// MExclusiveCount returns the number of tuples among the first n positions
// that are mutually exclusive with at least one other tuple anywhere in the
// table (the paper's m in the O(kmn) bound).
func (p *Prepared) MExclusiveCount(n int) int {
	if n > len(p.Tuples) {
		n = len(p.Tuples)
	}
	m := 0
	for i := 0; i < n; i++ {
		if p.GroupSize(i) > 1 {
			m++
		}
	}
	return m
}

// PrefixMass returns the total probability of group g's members at prepared
// positions strictly less than pos. This is the "consumed" group mass seen
// by a scan that has processed positions [0, pos).
func (p *Prepared) PrefixMass(g, pos int) float64 {
	var s float64
	for _, m := range p.groupMembers[g] {
		if m >= pos {
			break
		}
		s += p.Tuples[m].Prob
	}
	return s
}

// GroupMassBefore returns, for group g, the total probability of members at
// positions strictly below limit. Identical to PrefixMass; kept as the
// reader-facing name used by rule-tuple compression.
func (p *Prepared) GroupMassBefore(g, limit int) float64 { return p.PrefixMass(g, limit) }

// UnitKind distinguishes the two kinds of dynamic-programming units of
// §3.3.3.
type UnitKind int

const (
	// UnitLeadRegion is a maximal contiguous run of lead tuples; one DP run
	// covers all exit points in the region.
	UnitLeadRegion UnitKind = iota
	// UnitNonLead is a single tuple that is not the first of its ME group;
	// it needs its own DP run with the group's higher-ranked members removed.
	UnitNonLead
)

// Unit is one dynamic-programming run: either a lead-tuple region or a
// single non-lead tuple, identified by the half-open position range
// [Start, End).
type Unit struct {
	Kind       UnitKind
	Start, End int
}

// Units decomposes positions [0, n) into the DP units of §3.3.3, in rank
// order: maximal lead-tuple regions interleaved with individual non-lead
// tuples.
func (p *Prepared) Units(n int) []Unit {
	if n > len(p.Tuples) {
		n = len(p.Tuples)
	}
	var units []Unit
	for i := 0; i < n; {
		if p.Tuples[i].Lead {
			j := i + 1
			for j < n && p.Tuples[j].Lead {
				j++
			}
			units = append(units, Unit{Kind: UnitLeadRegion, Start: i, End: j})
			i = j
		} else {
			units = append(units, Unit{Kind: UnitNonLead, Start: i, End: i + 1})
			i++
		}
	}
	return units
}

// TruncateTable materialises the first n prepared (rank-ordered) tuples as a
// fresh table, preserving ME group membership restricted to that prefix —
// the "truncated table" the paper's §3.3.2 extension reasons about. n beyond
// the table length is clamped.
func (p *Prepared) TruncateTable(n int) *Table {
	if n > len(p.Tuples) {
		n = len(p.Tuples)
	}
	t := NewTable()
	for i := 0; i < n; i++ {
		tp := p.Tuples[i]
		group := ""
		if p.GroupSize(i) > 1 {
			group = fmt.Sprintf("g%d", tp.Group)
		}
		t.Add(Tuple{ID: tp.ID, Score: tp.Score, Prob: tp.Prob, Group: group})
	}
	return t
}

// IDs translates prepared positions into tuple IDs.
func (p *Prepared) IDs(positions []int) []string {
	out := make([]string, len(positions))
	for i, pos := range positions {
		out[i] = p.Tuples[pos].ID
	}
	return out
}

// TotalScore sums the scores of the tuples at the given prepared positions.
func (p *Prepared) TotalScore(positions []int) float64 {
	var s float64
	for _, pos := range positions {
		s += p.Tuples[pos].Score
	}
	return s
}

// String renders a compact description, useful in test failure messages.
func (p *Prepared) String() string {
	return fmt.Sprintf("prepared{n=%d groups=%d}", len(p.Tuples), len(p.groupMembers))
}
