// Package uncertain implements the tuple-level uncertain data model of the
// probabilistic database literature, as used by the paper (§2.1): an
// uncertain table is a set of tuples, each with a membership probability, and
// a set of mutual-exclusion (ME) rules. Each rule names an ME group, at most
// one tuple of which may appear in a possible world; the probabilities within
// a group sum to at most 1, and groups are independent of each other.
//
// The package also provides the derived structure the paper's algorithms
// need: the (score, probability)-descending sort order of §3.4, tie groups
// (§2.3), lead tuples and lead-tuple regions (§3.3.3), and the per-group
// prefix probability masses used by the exact StateExpansion baseline.
package uncertain

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// probSumTolerance is the slack allowed when validating that an ME group's
// probabilities sum to at most 1, to absorb floating-point noise in
// generated datasets.
const probSumTolerance = 1e-9

// Tuple is one uncertain tuple: an identifier, a ranking score, a membership
// probability, and an optional ME group key ("" means the tuple is alone in
// its own group, i.e. independent).
type Tuple struct {
	ID    string
	Score float64
	Prob  float64
	Group string
}

// Table is an uncertain table: an ordered collection of tuples plus the ME
// rules implied by their Group keys. The zero value is an empty table.
//
// A Table is the mutable builder of the model; queries and caches work on
// the immutable Snapshot it publishes (see Table.Snapshot). Mutations must
// be externally synchronized with each other and with Snapshot calls, but a
// Snapshot, once obtained, is safe to read from any goroutine while the
// table keeps mutating.
type Table struct {
	tuples  []Tuple
	version uint64
	// id is the table's lazily minted process-unique identity; see Identity.
	id atomic.Uint64
	// snap memoizes the snapshot of the current contents: unchanged tables
	// hand out the same snapshot, mutations clear the memo so the next
	// Snapshot call lazily mints a fresh one (copy-on-write).
	snap atomic.Pointer[Snapshot]
}

// NewTable returns an empty table.
func NewTable() *Table { return &Table{} }

// Add appends a tuple. Returns the table for chaining.
func (t *Table) Add(tp Tuple) *Table {
	t.tuples = append(t.tuples, tp)
	t.version++
	t.snap.Store(nil)
	return t
}

// Version returns a counter that changes on every mutation of the table.
// It orders the states of ONE table; it does not identify contents across
// tables (a clone shares its origin's version, and two tables built by the
// same number of Adds share a version). Caches must key on Snapshot.ID,
// which is process-unique, instead.
func (t *Table) Version() uint64 { return t.version }

// Identity returns the table's process-unique identity, minted on first use
// and stable for the table's lifetime. Unlike the pointer, an identity is
// never reused within a process, and a Clone gets its own; caches use it to
// recognise "a later state of the same table" without risking collisions.
func (t *Table) Identity() uint64 {
	if id := t.id.Load(); id != 0 {
		return id
	}
	if t.id.CompareAndSwap(0, tableIDs.Add(1)) {
		return t.id.Load()
	}
	return t.id.Load()
}

// Snapshot returns an immutable snapshot of the current contents with a
// process-unique identity. Snapshots are copy-on-write: while the table is
// unchanged, every call returns the same *Snapshot (and therefore the same
// ID); a mutation clears the memo, and the next call mints a fresh snapshot
// — without copying the tuples, since the table's storage is append-only
// and the snapshot's view has its capacity clamped.
//
// Snapshot must be synchronized with mutations like any other read, but the
// returned Snapshot itself is immutable and safe for concurrent use.
func (t *Table) Snapshot() *Snapshot {
	if s := t.snap.Load(); s != nil {
		return s
	}
	s := &Snapshot{
		id:     snapshotIDs.Add(1),
		owner:  t.Identity(),
		tuples: t.tuples[:len(t.tuples):len(t.tuples)],
	}
	if t.snap.CompareAndSwap(nil, s) {
		return s
	}
	// A concurrent first Snapshot won the race; share its result so the
	// "unchanged table → same snapshot" contract holds.
	return t.snap.Load()
}

// AddIndependent appends an independent tuple (its own ME group).
func (t *Table) AddIndependent(id string, score, prob float64) *Table {
	return t.Add(Tuple{ID: id, Score: score, Prob: prob})
}

// AddExclusive appends a tuple belonging to the named ME group.
func (t *Table) AddExclusive(id, group string, score, prob float64) *Table {
	return t.Add(Tuple{ID: id, Score: score, Prob: prob, Group: group})
}

// Len returns the number of tuples.
func (t *Table) Len() int { return len(t.tuples) }

// Tuples returns a copy of the tuple slice in insertion order.
func (t *Table) Tuples() []Tuple {
	out := make([]Tuple, len(t.tuples))
	copy(out, t.tuples)
	return out
}

// Tuple returns the i-th tuple in insertion order.
func (t *Table) Tuple(i int) Tuple { return t.tuples[i] }

// Clone returns a deep copy with its own identity: the clone shares no
// storage, no snapshot memo, and — even though it shares its origin's
// Version — can never be confused with the original by an identity-keyed
// cache, because its snapshots carry a fresh owner and fresh IDs.
func (t *Table) Clone() *Table {
	c := &Table{tuples: make([]Tuple, len(t.tuples)), version: t.version}
	copy(c.tuples, t.tuples)
	return c
}

// CheckTuple validates one tuple's own invariants — finite score,
// probability in (0, 1] — independent of any group-mass constraint. It is
// the single per-tuple rule shared by Validate, PrepareSorted and the
// sliding window's Push. The message carries no package prefix; callers
// wrap it with their own context.
func CheckTuple(tp Tuple) error {
	if math.IsNaN(tp.Score) || math.IsInf(tp.Score, 0) {
		return fmt.Errorf("tuple %q has non-finite score %v", tp.ID, tp.Score)
	}
	if !(tp.Prob > 0 && tp.Prob <= 1) {
		return fmt.Errorf("tuple %q has probability %v outside (0, 1]", tp.ID, tp.Prob)
	}
	return nil
}

// checkGroupSums validates that each ME group's probabilities sum to at
// most 1.
func checkGroupSums(tuples []Tuple) error {
	sums := make(map[string]float64)
	for _, tp := range tuples {
		if tp.Group != "" {
			sums[tp.Group] += tp.Prob
		}
	}
	for g, s := range sums {
		if s > 1+probSumTolerance {
			return fmt.Errorf("uncertain: ME group %q has total probability %v > 1", g, s)
		}
	}
	return nil
}

// ValidateTuples checks the data-model invariants on a raw tuple slice —
// the same rules as Table.Validate — without requiring a Table. Replay
// paths (internal/persist) use it to vet recovered contents before they
// become live tables.
func ValidateTuples(tuples []Tuple) error { return validateTuples(tuples) }

// validateTuples checks the data-model invariants on a tuple slice; shared
// by Table.Validate and Snapshot.Validate.
func validateTuples(tuples []Tuple) error {
	for i, tp := range tuples {
		if err := CheckTuple(tp); err != nil {
			return fmt.Errorf("uncertain: at index %d: %w", i, err)
		}
	}
	return checkGroupSums(tuples)
}

// Validate checks the data-model invariants: every probability is in (0, 1],
// scores are finite, and each ME group's probabilities sum to at most 1.
func (t *Table) Validate() error { return validateTuples(t.tuples) }

// ErrEmptyTable is returned when an operation requires a non-empty table.
var ErrEmptyTable = errors.New("uncertain: empty table")

// PTuple is a tuple in a Prepared table: the original tuple plus its dense
// group identifier and lead flag.
type PTuple struct {
	// Orig is the tuple's index in the source table's insertion order.
	Orig  int
	ID    string
	Score float64
	Prob  float64
	// Group is a dense group identifier. Independent tuples get their own
	// singleton group.
	Group int
	// Lead reports whether this tuple is the first (highest-ranked) member
	// of its ME group in the prepared order. Singleton-group tuples are
	// always leads (§3.3.3).
	Lead bool
}

// Prepared is a validated table sorted in the canonical order of §3.4:
// descending by (score, probability), remaining ties broken by insertion
// order so the sort is total and deterministic. It caches the group
// structure, tie groups, and lead regions the algorithms need.
type Prepared struct {
	Tuples []PTuple

	// groupMembers[g] lists the prepared positions of group g's members in
	// rank order.
	groupMembers [][]int
	// groupCum[g][j] is the total probability of group g's first j members
	// in rank order, so PrefixMass answers with one binary search instead of
	// rescanning the member list.
	groupCum [][]float64
	// tieStart[i] / tieEnd[i] give the half-open range of the tie group
	// containing position i.
	tieStart, tieEnd []int
	// cumProb[i] is the total probability of the tuples at positions < i,
	// shared by every Theorem-2 scan over this table.
	cumProb []float64
	// allUnits memoizes the full §3.3.3 unit decomposition so repeated
	// queries (and multi-query batches) share it; see AllUnits.
	unitsOnce sync.Once
	allUnits  []Unit
}

// Prepare validates and sorts the table, returning the derived structure.
func Prepare(t *Table) (*Prepared, error) { return prepareTuples(t.tuples) }

// prepareTuples is the shared body of Prepare and Snapshot.Prepare. It
// never mutates tuples (the sort permutes an index array), so it is safe on
// a frozen snapshot's storage.
func prepareTuples(tuples []Tuple) (*Prepared, error) {
	if err := validateTuples(tuples); err != nil {
		return nil, err
	}
	if len(tuples) == 0 {
		return nil, ErrEmptyTable
	}
	idx := make([]int, len(tuples))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		ta, tb := tuples[idx[a]], tuples[idx[b]]
		if ta.Score != tb.Score {
			return ta.Score > tb.Score
		}
		if ta.Prob != tb.Prob {
			return ta.Prob > tb.Prob
		}
		return idx[a] < idx[b]
	})
	p := &Prepared{Tuples: make([]PTuple, len(tuples))}
	groupIDs := make(map[string]int)
	for pos, oi := range idx {
		tp := tuples[oi]
		var g int
		if tp.Group == "" {
			g = len(p.groupMembers)
			p.groupMembers = append(p.groupMembers, nil)
		} else if known, ok := groupIDs[tp.Group]; ok {
			g = known
		} else {
			g = len(p.groupMembers)
			groupIDs[tp.Group] = g
			p.groupMembers = append(p.groupMembers, nil)
		}
		p.Tuples[pos] = PTuple{
			Orig: oi, ID: tp.ID, Score: tp.Score, Prob: tp.Prob,
			Group: g, Lead: len(p.groupMembers[g]) == 0,
		}
		p.groupMembers[g] = append(p.groupMembers[g], pos)
	}
	p.buildDerived()
	return p, nil
}

// validateSorted checks the Prepare invariants on an already-sorted tuple
// slice — the same per-tuple and group-mass rules as Table.Validate — plus
// the canonical (score, probability)-descending order.
func validateSorted(tuples []Tuple) error {
	for i, tp := range tuples {
		if err := CheckTuple(tp); err != nil {
			return fmt.Errorf("uncertain: at position %d: %w", i, err)
		}
		if i > 0 {
			prev := tuples[i-1]
			if tp.Score > prev.Score || (tp.Score == prev.Score && tp.Prob > prev.Prob) {
				return fmt.Errorf("uncertain: tuples %d–%d violate the canonical (score, prob)-descending order", i-1, i)
			}
		}
	}
	return checkGroupSums(tuples)
}

// PrepareSorted builds a Prepared from tuples that are already in the
// canonical §3.4 order (descending score, then descending probability, with
// remaining ties in their desired insertion order). It performs the same
// validation as Prepare but skips the sort, which makes it the fast path for
// callers that maintain rank order incrementally (the sliding window).
//
// If prev is non-nil and from > 0, the caller guarantees that tuples[0:from]
// is identical to the first from tuples prev was built from, and that prev
// itself was built by PrepareSorted. The first from tuple rows and their
// ME group identities are then reused and only the rank suffix [from, n) is
// re-derived — the incremental "suffix re-prepare". The group-membership,
// tie-group and prefix-mass indexes are rebuilt (they hold positions, which
// shift with the suffix), but no sort and no prefix row construction happens.
// Prepared tables built this way use the prepared position itself as each
// tuple's Orig index.
func PrepareSorted(tuples []Tuple, prev *Prepared, from int) (*Prepared, error) {
	n := len(tuples)
	if n == 0 {
		return nil, ErrEmptyTable
	}
	if err := validateSorted(tuples); err != nil {
		return nil, err
	}
	if prev == nil || from > len(prev.Tuples) {
		from = 0
	}
	if from > n {
		from = n
	}
	p := &Prepared{Tuples: make([]PTuple, n)}
	groupIDs := make(map[string]int)
	// Recover the prefix's group-id assignments: ids are dense and assigned
	// in first-occurrence order, so the shared prefix reuses prev's ids and
	// the suffix continues numbering after them.
	for pos := 0; pos < from; pos++ {
		if g := tuples[pos].Group; g != "" {
			groupIDs[g] = prev.Tuples[pos].Group
		}
	}
	for pos := 0; pos < n; pos++ {
		tp := tuples[pos]
		var g int
		if pos < from {
			p.Tuples[pos] = prev.Tuples[pos]
			p.Tuples[pos].Orig = pos
			g = p.Tuples[pos].Group
			if g == len(p.groupMembers) {
				p.groupMembers = append(p.groupMembers, nil)
			}
		} else {
			if tp.Group == "" {
				g = len(p.groupMembers)
				p.groupMembers = append(p.groupMembers, nil)
			} else if known, ok := groupIDs[tp.Group]; ok {
				g = known
			} else {
				g = len(p.groupMembers)
				groupIDs[tp.Group] = g
				p.groupMembers = append(p.groupMembers, nil)
			}
			p.Tuples[pos] = PTuple{
				Orig: pos, ID: tp.ID, Score: tp.Score, Prob: tp.Prob,
				Group: g, Lead: len(p.groupMembers[g]) == 0,
			}
		}
		p.groupMembers[g] = append(p.groupMembers[g], pos)
	}
	p.buildDerived()
	return p, nil
}

// buildDerived computes the structures shared across queries: tie groups,
// cumulative prefix probabilities, and per-group cumulative masses.
func (p *Prepared) buildDerived() {
	p.buildTieGroups()
	p.cumProb = make([]float64, len(p.Tuples)+1)
	for i, tp := range p.Tuples {
		p.cumProb[i+1] = p.cumProb[i] + tp.Prob
	}
	// All per-group cumulative slices share one flat backing array, so the
	// whole index costs two allocations however many (mostly singleton)
	// groups there are — buildDerived runs on the sliding window's
	// suffix-re-prepare hot path.
	flat := make([]float64, len(p.Tuples)+len(p.groupMembers))
	p.groupCum = make([][]float64, len(p.groupMembers))
	off := 0
	for g, members := range p.groupMembers {
		cum := flat[off : off+len(members)+1 : off+len(members)+1]
		off += len(members) + 1
		for j, m := range members {
			cum[j+1] = cum[j] + p.Tuples[m].Prob
		}
		p.groupCum[g] = cum
	}
}

func (p *Prepared) buildTieGroups() {
	n := len(p.Tuples)
	p.tieStart = make([]int, n)
	p.tieEnd = make([]int, n)
	for i := 0; i < n; {
		j := i + 1
		for j < n && p.Tuples[j].Score == p.Tuples[i].Score {
			j++
		}
		for q := i; q < j; q++ {
			p.tieStart[q], p.tieEnd[q] = i, j
		}
		i = j
	}
}

// Len returns the number of tuples.
func (p *Prepared) Len() int { return len(p.Tuples) }

// NumGroups returns the number of distinct ME groups (singletons included).
func (p *Prepared) NumGroups() int { return len(p.groupMembers) }

// GroupMembers returns the prepared positions of group g's members in rank
// order. The returned slice must not be modified.
func (p *Prepared) GroupMembers(g int) []int { return p.groupMembers[g] }

// GroupSize returns the number of members of tuple position i's group.
func (p *Prepared) GroupSize(i int) int { return len(p.groupMembers[p.Tuples[i].Group]) }

// TieGroup returns the half-open position range [start, end) of the tie
// group containing position i (§2.3). A tuple with a unique score is in a
// tie group of size one.
func (p *Prepared) TieGroup(i int) (start, end int) { return p.tieStart[i], p.tieEnd[i] }

// HasTies reports whether any tie group has more than one tuple.
func (p *Prepared) HasTies() bool {
	for i := range p.Tuples {
		if p.tieEnd[i]-p.tieStart[i] > 1 {
			return true
		}
	}
	return false
}

// MExclusiveCount returns the number of tuples among the first n positions
// that are mutually exclusive with at least one other tuple anywhere in the
// table (the paper's m in the O(kmn) bound).
func (p *Prepared) MExclusiveCount(n int) int {
	if n > len(p.Tuples) {
		n = len(p.Tuples)
	}
	m := 0
	for i := 0; i < n; i++ {
		if p.GroupSize(i) > 1 {
			m++
		}
	}
	return m
}

// PrefixProbability returns the total probability of the tuples at prepared
// positions strictly less than pos — the running prefix sum of the Theorem-2
// scan, precomputed once per Prepared so that every query shares it.
func (p *Prepared) PrefixProbability(pos int) float64 { return p.cumProb[pos] }

// PrefixMass returns the total probability of group g's members at prepared
// positions strictly less than pos. This is the "consumed" group mass seen
// by a scan that has processed positions [0, pos). The per-group cumulative
// masses are precomputed in buildDerived, so a call costs one binary search
// over the member list (O(log group size)) instead of rescanning it.
func (p *Prepared) PrefixMass(g, pos int) float64 {
	// The first member index at or beyond pos is the number of members
	// strictly below it.
	n := sort.SearchInts(p.groupMembers[g], pos)
	return p.groupCum[g][n]
}

// GroupMassBefore returns, for group g, the total probability of members at
// positions strictly below limit. Identical to PrefixMass; kept as the
// reader-facing name used by rule-tuple compression.
func (p *Prepared) GroupMassBefore(g, limit int) float64 { return p.PrefixMass(g, limit) }

// UnitKind distinguishes the two kinds of dynamic-programming units of
// §3.3.3.
type UnitKind int

const (
	// UnitLeadRegion is a maximal contiguous run of lead tuples; one DP run
	// covers all exit points in the region.
	UnitLeadRegion UnitKind = iota
	// UnitNonLead is a single tuple that is not the first of its ME group;
	// it needs its own DP run with the group's higher-ranked members removed.
	UnitNonLead
)

// Unit is one dynamic-programming run: either a lead-tuple region or a
// single non-lead tuple, identified by the half-open position range
// [Start, End).
type Unit struct {
	Kind       UnitKind
	Start, End int
}

// Units decomposes positions [0, n) into the DP units of §3.3.3, in rank
// order: maximal lead-tuple regions interleaved with individual non-lead
// tuples. The returned slice is freshly allocated and owned by the caller;
// query loops should prefer UnitsPrefix, which shares the memoized full
// decomposition.
func (p *Prepared) Units(n int) []Unit {
	return append([]Unit(nil), p.UnitsPrefix(n)...)
}

// AllUnits returns the unit decomposition of the whole table, computed once
// and shared by every subsequent query (and by all queries of a batch). The
// returned slice must not be modified.
func (p *Prepared) AllUnits() []Unit {
	p.unitsOnce.Do(func() {
		n := len(p.Tuples)
		for i := 0; i < n; {
			if p.Tuples[i].Lead {
				j := i + 1
				for j < n && p.Tuples[j].Lead {
					j++
				}
				p.allUnits = append(p.allUnits, Unit{Kind: UnitLeadRegion, Start: i, End: j})
				i = j
			} else {
				p.allUnits = append(p.allUnits, Unit{Kind: UnitNonLead, Start: i, End: i + 1})
				i++
			}
		}
	})
	return p.allUnits
}

// UnitsPrefix returns the unit decomposition of positions [0, n), derived
// from the memoized full decomposition: a lead-tuple region cut by the scan
// depth is truncated, which yields exactly the decomposition of the prefix.
// The returned slice must not be modified (it may alias the memoized one).
func (p *Prepared) UnitsPrefix(n int) []Unit {
	if n > len(p.Tuples) {
		n = len(p.Tuples)
	}
	all := p.AllUnits()
	if n == len(p.Tuples) {
		return all
	}
	cut := 0
	for cut < len(all) && all[cut].End <= n {
		cut++
	}
	if cut == len(all) || all[cut].Start >= n {
		return all[:cut:cut]
	}
	trunc := all[cut]
	trunc.End = n
	return append(all[:cut:cut], trunc)
}

// TruncateTable materialises the first n prepared (rank-ordered) tuples as a
// fresh table, preserving ME group membership restricted to that prefix —
// the "truncated table" the paper's §3.3.2 extension reasons about. n beyond
// the table length is clamped.
func (p *Prepared) TruncateTable(n int) *Table {
	if n > len(p.Tuples) {
		n = len(p.Tuples)
	}
	t := NewTable()
	for i := 0; i < n; i++ {
		tp := p.Tuples[i]
		group := ""
		if p.GroupSize(i) > 1 {
			group = fmt.Sprintf("g%d", tp.Group)
		}
		t.Add(Tuple{ID: tp.ID, Score: tp.Score, Prob: tp.Prob, Group: group})
	}
	return t
}

// IDs translates prepared positions into tuple IDs.
func (p *Prepared) IDs(positions []int) []string {
	out := make([]string, len(positions))
	for i, pos := range positions {
		out[i] = p.Tuples[pos].ID
	}
	return out
}

// TotalScore sums the scores of the tuples at the given prepared positions.
func (p *Prepared) TotalScore(positions []int) float64 {
	var s float64
	for _, pos := range positions {
		s += p.Tuples[pos].Score
	}
	return s
}

// String renders a compact description, useful in test failure messages.
func (p *Prepared) String() string {
	return fmt.Sprintf("prepared{n=%d groups=%d}", len(p.Tuples), len(p.groupMembers))
}
