package uncertain

import (
	"strings"
	"testing"
)

// FuzzReadTableCSV asserts ReadCSV never panics, and that every accepted
// table satisfies the data-model invariants and survives a write/read
// round trip. Malformed probabilities, duplicate ids, overfull ME groups
// and ragged rows must all surface as errors.
func FuzzReadTableCSV(f *testing.F) {
	seeds := []string{
		"id,score,prob,group\n",
		"id,score,prob,group\na,1,0.5,\n",
		"id,score,prob,group\na,1,0.5,g\nb,2,0.4,g\nc,3,0.3,\n",
		"id,score,prob,group\na,1.5e2,1,\nb,-7,0.001,\n",
		"id,score,prob,group\na,1,1.5,\n",             // probability out of range
		"id,score,prob,group\na,1,0.5,\na,2,0.4,\n",   // duplicate id
		"id,score,prob,group\na,1,0.9,g\nb,2,0.9,g\n", // group mass > 1
		"id,score,prob,group\na,NaN,0.5,\n",
		"id,score,prob,group\na,Inf,0.5,\n",
		"id,score,prob,group\na,1,notaprob,\n",
		"id,score,prob,group\na,1\n",
		"wrong,header,entirely,\na,1,0.5,\n",
		"id,score,prob,group\n\"qu\"\"oted\",1,0.5,\"g,1\"\n",
		"",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data string) {
		tab, err := ReadCSV(strings.NewReader(data))
		if err != nil {
			return
		}
		// Accepted tables must satisfy the model invariants...
		if verr := tab.Validate(); verr != nil {
			t.Fatalf("accepted table fails Validate: %v\ninput: %q", verr, data)
		}
		// ...have unambiguous ids...
		seen := make(map[string]bool)
		for _, tp := range tab.Tuples() {
			if seen[tp.ID] {
				t.Fatalf("accepted table has duplicate id %q\ninput: %q", tp.ID, data)
			}
			seen[tp.ID] = true
		}
		// ...and round-trip through WriteCSV/ReadCSV. (encoding/csv
		// normalizes \r\n to \n inside quoted fields, so ids or groups
		// containing \r can legitimately differ; skip only those.)
		var sb strings.Builder
		if err := tab.WriteCSV(&sb); err != nil {
			t.Fatalf("WriteCSV failed on accepted table: %v", err)
		}
		back, err := ReadCSV(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("round trip rejected: %v\nwritten: %q", err, sb.String())
		}
		if back.Len() != tab.Len() {
			t.Fatalf("round trip length %d, want %d", back.Len(), tab.Len())
		}
		if strings.Contains(data, "\r") {
			return
		}
		for i := 0; i < tab.Len(); i++ {
			if tab.Tuple(i) != back.Tuple(i) {
				t.Fatalf("round trip tuple %d: %+v != %+v", i, tab.Tuple(i), back.Tuple(i))
			}
		}
	})
}
