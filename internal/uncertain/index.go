// Dynamic prepared index: a fully dynamic counterpart to Prepared.
//
// Index maintains the canonical §3.4 order (descending score, descending
// probability, remaining ties by insertion sequence) in a persistent
// order-statistic treap whose nodes carry subtree aggregates (tuple count and
// probability mass), so Insert/Delete/Update touch O(log n) nodes and
// cumProb-style prefix sums are answered in O(log n) straight from the tree.
// Per-ME-group sub-treaps over the same order replace the flat groupCum
// partial sums: GroupMass is O(1) off the sub-treap root and PrefixMass is
// O(log n + log g). Tie-group ranges are answered by two rank-by-score
// descents instead of a stored tieStart/tieEnd table.
//
// The tree is persistent (path-copying): mutations never modify reachable
// nodes, so Freeze can publish the current root as an immutable IndexView in
// O(1) and the owner can keep mutating while any number of goroutines read
// the frozen view. Materialize mints the flat *Prepared form the existing DP
// and query paths consume, reusing the unchanged rank prefix through
// PrepareSorted (the batch/oracle path) so the result is bit-identical to a
// from-scratch Prepare of the same contents; while the index is unchanged the
// same *Prepared pointer is returned, preserving its memoized §3.3.3 unit
// decomposition across queries.
package uncertain

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// inode is one persistent treap node. Nodes reachable from a published root
// are never mutated; structural changes path-copy O(log n) nodes.
type inode struct {
	t           Tuple
	seq         uint64
	prio        uint64
	left, right *inode
	// size and mass aggregate the subtree rooted here: tuple count and total
	// probability. They give O(log n) order statistics and prefix masses.
	size int
	mass float64
}

func sz(n *inode) int {
	if n == nil {
		return 0
	}
	return n.size
}

func ms(n *inode) float64 {
	if n == nil {
		return 0
	}
	return n.mass
}

// mk returns a fresh copy of n with the given children and recomputed
// aggregates — the single path-copying constructor all structural ops share.
func mk(n *inode, l, r *inode) *inode {
	return &inode{
		t: n.t, seq: n.seq, prio: n.prio,
		left: l, right: r,
		size: 1 + sz(l) + sz(r),
		mass: n.t.Prob + ms(l) + ms(r),
	}
}

// canonLess reports whether (a, aSeq) precedes (b, bSeq) in the canonical
// prepared order: descending score, then descending probability, then
// insertion sequence. Sequences are unique, so the order is total and
// identical to Prepare's stable sort of the arrival-order table.
func canonLess(a Tuple, aSeq uint64, b Tuple, bSeq uint64) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	if a.Prob != b.Prob {
		return a.Prob > b.Prob
	}
	return aSeq < bSeq
}

// splitmix64 derives a node's heap priority deterministically from its
// sequence number, so a given mutation history always builds the same tree
// shape (reproducible tests and benchmarks, no global RNG state).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// split partitions n into (before, rest) around the key (t, seq): before
// holds all nodes strictly preceding it, rest the others. Path-copies the
// split path.
func split(n *inode, t Tuple, seq uint64) (before, rest *inode) {
	if n == nil {
		return nil, nil
	}
	if canonLess(n.t, n.seq, t, seq) {
		rl, rr := split(n.right, t, seq)
		return mk(n, n.left, rl), rr
	}
	ll, lr := split(n.left, t, seq)
	return ll, mk(n, lr, n.right)
}

// merge joins two treaps where every key of l precedes every key of r.
func merge(l, r *inode) *inode {
	if l == nil {
		return r
	}
	if r == nil {
		return l
	}
	if l.prio >= r.prio {
		return mk(l, l.left, merge(l.right, r))
	}
	return mk(r, merge(l, r.left), r.right)
}

// detachMin removes n's leftmost node, returning it and the remainder.
func detachMin(n *inode) (min *inode, rest *inode) {
	if n.left == nil {
		return n, n.right
	}
	m, rl := detachMin(n.left)
	return m, mk(n, rl, n.right)
}

// treapInsert adds a node with the given key, returning the new root and the
// rank (number of preceding tuples) at which it landed.
func treapInsert(root *inode, t Tuple, seq uint64) (*inode, int) {
	l, r := split(root, t, seq)
	nd := &inode{t: t, seq: seq, prio: splitmix64(seq), size: 1, mass: t.Prob}
	return merge(merge(l, nd), r), sz(l)
}

// treapDelete removes the node with the given key (which must exist),
// returning the new root and the rank it occupied.
func treapDelete(root *inode, t Tuple, seq uint64) (*inode, int) {
	l, r := split(root, t, seq)
	_, rest := detachMin(r)
	return merge(l, rest), sz(l)
}

// nodeAt returns the node at rank pos (0-based, canonical order).
func nodeAt(n *inode, pos int) *inode {
	for {
		ls := sz(n.left)
		switch {
		case pos < ls:
			n = n.left
		case pos == ls:
			return n
		default:
			pos -= ls + 1
			n = n.right
		}
	}
}

// treePrefixMass returns the total probability of the tuples at ranks < pos.
func treePrefixMass(n *inode, pos int) float64 {
	var m float64
	for n != nil && pos > 0 {
		ls := sz(n.left)
		if pos <= ls {
			n = n.left
			continue
		}
		m += ms(n.left) + n.t.Prob
		pos -= ls + 1
		n = n.right
	}
	return m
}

// massBefore returns the total probability of nodes whose key strictly
// precedes (t, seq).
func massBefore(n *inode, t Tuple, seq uint64) float64 {
	var m float64
	for n != nil {
		if canonLess(n.t, n.seq, t, seq) {
			m += ms(n.left) + n.t.Prob
			n = n.right
		} else {
			n = n.left
		}
	}
	return m
}

// countScore returns the number of nodes with score > s, or ≥ s when orEqual
// is set. Scores descend in the canonical order, so both are single descents.
func countScore(n *inode, s float64, orEqual bool) int {
	c := 0
	for n != nil {
		if n.t.Score > s || (orEqual && n.t.Score == s) {
			c += sz(n.left) + 1
			n = n.right
		} else {
			n = n.left
		}
	}
	return c
}

// appendNodes appends n's tuples in canonical order.
func appendNodes(n *inode, buf []Tuple) []Tuple {
	if n == nil {
		return buf
	}
	buf = appendNodes(n.left, buf)
	buf = append(buf, n.t)
	return appendNodes(n.right, buf)
}

// appendFrom appends the tuples at ranks ≥ skip in canonical order, using
// subtree sizes to step over the untouched prefix.
func appendFrom(n *inode, skip int, buf []Tuple) []Tuple {
	if n == nil {
		return buf
	}
	if skip <= 0 {
		return appendNodes(n, buf)
	}
	ls := sz(n.left)
	switch {
	case skip < ls:
		buf = appendFrom(n.left, skip, buf)
		buf = append(buf, n.t)
		return appendNodes(n.right, buf)
	case skip == ls:
		buf = append(buf, n.t)
		return appendNodes(n.right, buf)
	default:
		return appendFrom(n.right, skip-ls-1, buf)
	}
}

// IndexStats counts how an Index's mutations and materializations resolved,
// for observability of the dynamic-index win in production.
type IndexStats struct {
	// Mutations is the number of Insert/Delete/Update calls (an Update counts
	// once), each costing O(log n) structural work.
	Mutations uint64
	// MemoHits is the number of Materialize calls that returned the memoized
	// *Prepared without any rebuild (index unchanged since the last one).
	MemoHits uint64
	// SuffixMaterializations is the number of materializations that had a
	// previous Prepared to reuse, re-deriving only the rank suffix below the
	// first changed position (possibly all of it, when rank 0 changed).
	SuffixMaterializations uint64
	// FullMaterializations is the number of materializations from scratch
	// (no previous Prepared — the first successful build).
	FullMaterializations uint64
	// ViewMaterializations is the number of frozen IndexViews that
	// materialized their own Prepared (view published before the owner
	// materialized). Tracked in the process-wide totals only.
	ViewMaterializations uint64
}

// indexTotals aggregates IndexStats across every Index in the process, so
// serving layers can surface the counters without tracking index ownership.
var indexTotals struct {
	mutations, memoHits, suffixMat, fullMat, viewMat atomic.Uint64
}

// IndexTotals returns the process-wide IndexStats aggregated over all
// indexes (and their frozen views).
func IndexTotals() IndexStats {
	return IndexStats{
		Mutations:              indexTotals.mutations.Load(),
		MemoHits:               indexTotals.memoHits.Load(),
		SuffixMaterializations: indexTotals.suffixMat.Load(),
		FullMaterializations:   indexTotals.fullMat.Load(),
		ViewMaterializations:   indexTotals.viewMat.Load(),
	}
}

// Index is a fully dynamic counterpart to Prepared: it maintains the
// canonical §3.4 rank order under Insert, Delete and Update in O(log n)
// structural work per mutation, wherever in the rank order the change lands.
// Order statistics (At, PrefixProbability, GroupMass, PrefixMass, TieGroup)
// are answered from subtree aggregates in O(log n) without materializing
// anything; Materialize lazily mints the flat *Prepared form for the DP and
// memoizes it while the index is unchanged.
//
// Group-mass validation follows the sliding window's semantics: Insert is
// permissive, and a group whose total probability exceeds 1 surfaces as an
// error at Materialize time, healing when members are deleted.
//
// An Index is single-owner (not safe for concurrent use); Freeze publishes
// an immutable IndexView that is.
type Index struct {
	root   *inode
	groups map[string]*inode
	bySeq  map[uint64]Tuple
	seq    uint64
	gen    uint64

	// prep memoizes the last successful Materialize; dirtyFrom is the lowest
	// rank touched since then (-1 = clean, so prep is current). buf holds
	// the canonical-order tuples of the last materialization attempt
	// (bufValid reports whether it still describes a past state of this
	// index, so its unchanged prefix can be reused instead of re-walked).
	prep      *Prepared
	prepGen   uint64
	dirtyFrom int
	buf       []Tuple
	bufValid  bool

	// frozen memoizes Freeze while the index is unchanged, so an idle index
	// keeps publishing one view identity (and downstream caches keep
	// hitting). lastView is the most recent view ever frozen, and
	// dirtySinceView the lowest rank touched since it — if a downstream
	// consumer (the engine) materializes that view, the owner adopts the
	// result as its own memo basis, so serving layers that never call the
	// owner's Materialize still get suffix reuse across mutations.
	frozen         *IndexView
	lastView       *IndexView
	dirtySinceView int

	stats IndexStats
}

// NewIndex returns an empty dynamic index.
func NewIndex() *Index {
	return &Index{
		groups:         make(map[string]*inode),
		bySeq:          make(map[uint64]Tuple),
		dirtyFrom:      -1,
		dirtySinceView: -1,
	}
}

// NewIndexOf builds an index over the given tuples in insertion order,
// validating each as Insert does.
func NewIndexOf(tuples []Tuple) (*Index, error) {
	ix := NewIndex()
	for _, t := range tuples {
		if _, err := ix.Insert(t); err != nil {
			return nil, err
		}
	}
	return ix, nil
}

// Len returns the number of tuples in the index.
func (ix *Index) Len() int { return sz(ix.root) }

// Gen returns a counter that changes on every mutation; together with the
// index's identity it keys caches of materialized state.
func (ix *Index) Gen() uint64 { return ix.gen }

// Stats returns the index's maintenance counters. ViewMaterializations is
// always 0 here: views outlive their owner and report to the process-wide
// IndexTotals instead.
func (ix *Index) Stats() IndexStats { return ix.stats }

// markDirty records that ranks at or beyond pos changed.
func (ix *Index) markDirty(pos int) {
	if ix.dirtyFrom < 0 || pos < ix.dirtyFrom {
		ix.dirtyFrom = pos
	}
}

func (ix *Index) mutated(rank int) {
	ix.markDirty(rank)
	if ix.lastView != nil && (ix.dirtySinceView < 0 || rank < ix.dirtySinceView) {
		ix.dirtySinceView = rank
	}
	ix.gen++
	ix.frozen = nil
	ix.stats.Mutations++
	indexTotals.mutations.Add(1)
}

// Insert adds a tuple, returning the sequence number that identifies it for
// later Delete/Update. The tuple is validated on entry (finite score,
// probability in (0, 1]); group-mass validation is deferred to Materialize,
// matching the sliding window's in-window semantics.
func (ix *Index) Insert(t Tuple) (seq uint64, err error) {
	if err := CheckTuple(t); err != nil {
		return 0, fmt.Errorf("uncertain: %w", err)
	}
	ix.seq++
	seq = ix.seq
	rank, err := ix.insert(t, seq)
	if err != nil {
		return 0, err
	}
	ix.mutated(rank)
	return seq, nil
}

// insert is the raw insertion shared by Insert and Update; it returns the
// rank the tuple landed at. A sequence number already present is refused
// before either treap is touched: inserting a second node under the same
// seq would leave bySeq pointing at only one of them, so a later
// Delete/Update would strand the other — from then on the main and group
// treaps disagree with bySeq and every group aggregate built from them is
// silently wrong. No caller can hit this today (Insert mints fresh seqs,
// Update removes the seq first), so the guard is cheap insurance against a
// future caller that replays external seqs.
func (ix *Index) insert(t Tuple, seq uint64) (int, error) {
	if _, dup := ix.bySeq[seq]; dup {
		return 0, fmt.Errorf("uncertain: index already has a tuple with sequence %d", seq)
	}
	var rank int
	ix.root, rank = treapInsert(ix.root, t, seq)
	if t.Group != "" {
		ix.groups[t.Group], _ = treapInsert(ix.groups[t.Group], t, seq)
	}
	ix.bySeq[seq] = t
	return rank, nil
}

// Delete removes the tuple with the given sequence number, reporting whether
// it was present.
func (ix *Index) Delete(seq uint64) (Tuple, bool) {
	t, ok := ix.bySeq[seq]
	if !ok {
		return Tuple{}, false
	}
	rank := ix.remove(t, seq)
	ix.mutated(rank)
	return t, true
}

// remove is the raw removal shared by Delete and Update; it returns the rank
// the tuple occupied.
func (ix *Index) remove(t Tuple, seq uint64) int {
	var rank int
	ix.root, rank = treapDelete(ix.root, t, seq)
	if t.Group != "" {
		g, _ := treapDelete(ix.groups[t.Group], t, seq)
		if g == nil {
			delete(ix.groups, t.Group)
		} else {
			ix.groups[t.Group] = g
		}
	}
	delete(ix.bySeq, seq)
	return rank
}

// Update replaces the tuple identified by seq with t, keeping its sequence
// number (and therefore its position among exact canonical ties). It costs
// one delete plus one insert — O(log n) — and counts as one mutation.
func (ix *Index) Update(seq uint64, t Tuple) error {
	old, ok := ix.bySeq[seq]
	if !ok {
		return fmt.Errorf("uncertain: index has no tuple with sequence %d", seq)
	}
	if err := CheckTuple(t); err != nil {
		return fmt.Errorf("uncertain: %w", err)
	}
	oldRank := ix.remove(old, seq)
	newRank, err := ix.insert(t, seq)
	if err != nil {
		// Unreachable: the seq was removed the line above. Reinstate the
		// old tuple rather than lose it to a partial update.
		ix.insert(old, seq)
		return err
	}
	if newRank < oldRank {
		oldRank = newRank
	}
	ix.mutated(oldRank)
	return nil
}

// Get returns the tuple identified by seq.
func (ix *Index) Get(seq uint64) (Tuple, bool) {
	t, ok := ix.bySeq[seq]
	return t, ok
}

// At returns the tuple at rank pos in the canonical order, in O(log n).
func (ix *Index) At(pos int) Tuple { return nodeAt(ix.root, pos).t }

// PrefixProbability returns the total probability of the tuples at ranks
// strictly less than pos — Prepared.PrefixProbability answered from subtree
// aggregates in O(log n), with no materialization.
func (ix *Index) PrefixProbability(pos int) float64 {
	if pos > sz(ix.root) {
		pos = sz(ix.root)
	}
	return treePrefixMass(ix.root, pos)
}

// GroupMass returns the total in-index probability of the named ME group, in
// O(1) from the group sub-treap's root aggregate.
func (ix *Index) GroupMass(group string) float64 { return ms(ix.groups[group]) }

// PrefixMass returns the total probability of the named group's members at
// ranks strictly less than pos — Prepared.PrefixMass answered dynamically in
// O(log n + log g).
func (ix *Index) PrefixMass(group string, pos int) float64 {
	g := ix.groups[group]
	if g == nil {
		return 0
	}
	if pos >= sz(ix.root) {
		return ms(g)
	}
	nd := nodeAt(ix.root, pos)
	return massBefore(g, nd.t, nd.seq)
}

// TieGroup returns the half-open rank range [start, end) of the tie group
// (§2.3, equal scores) containing rank pos, in O(log n) via two
// rank-by-score descents.
func (ix *Index) TieGroup(pos int) (start, end int) {
	s := nodeAt(ix.root, pos).t.Score
	return countScore(ix.root, s, false), countScore(ix.root, s, true)
}

// Tuples returns the index contents in canonical rank order.
func (ix *Index) Tuples() []Tuple {
	return appendNodes(ix.root, make([]Tuple, 0, sz(ix.root)))
}

// Materialize mints the flat *Prepared form of the current contents,
// bit-identical to a from-scratch Prepare of the same tuples. The result is
// memoized: while the index is unchanged every call returns the same
// *Prepared pointer, so its sync.Once unit-decomposition memo keeps paying
// off across queries. After mutations, only the rank suffix below the first
// changed position is re-derived (PrepareSorted's suffix re-prepare);
// group-mass validation runs on every rebuild, so an overfull ME group
// surfaces here and the memo stays dirty until the contents are fixed.
func (ix *Index) Materialize() (*Prepared, error) {
	if sz(ix.root) == 0 {
		return nil, ErrEmptyTable
	}
	ix.adopt()
	if ix.prep != nil && ix.dirtyFrom < 0 {
		ix.stats.MemoHits++
		indexTotals.memoHits.Add(1)
		return ix.prep, nil
	}
	from := ix.dirtyFrom
	if ix.prep == nil || from < 0 {
		from = 0
	}
	walk := from
	if !ix.bufValid || walk > len(ix.buf) {
		walk = 0
	}
	ix.buf = appendFrom(ix.root, walk, ix.buf[:walk])
	ix.bufValid = true
	prep, err := PrepareSorted(ix.buf, ix.prep, from)
	if err != nil {
		// Stay dirty: dirtyFrom still bounds every change since ix.prep was
		// built, so a later attempt (after the contents heal) can still
		// reuse the prefix.
		return nil, err
	}
	if ix.prep != nil {
		ix.stats.SuffixMaterializations++
		indexTotals.suffixMat.Add(1)
	} else {
		ix.stats.FullMaterializations++
		indexTotals.fullMat.Add(1)
	}
	ix.prep = prep
	ix.prepGen = ix.gen
	ix.dirtyFrom = -1
	return prep, nil
}

// Freeze publishes the current contents as an immutable IndexView. The tree
// is persistent, so this is O(1): the view captures the current root and the
// owner's future mutations path-copy around it. An unchanged index returns
// the same view on every call; if the index was materialized and unchanged,
// the view carries that same *Prepared outright, so downstream consumers
// share the memo with the owner.
func (ix *Index) Freeze() *IndexView {
	if ix.frozen != nil {
		return ix.frozen
	}
	ix.adopt()
	v := &IndexView{n: sz(ix.root), gen: ix.gen}
	if ix.prep != nil && ix.dirtyFrom < 0 {
		v.prep = ix.prep
	} else {
		v.root = ix.root
		if ix.prep != nil && ix.dirtyFrom >= 0 {
			v.hintPrep = ix.prep
			v.hintFrom = ix.dirtyFrom
		}
	}
	ix.frozen = v
	ix.lastView = v
	ix.dirtySinceView = -1
	return v
}

// adopt pulls a materialization performed by the last frozen view back into
// the owner's memo. Serving layers hand frozen views to a query engine that
// materializes them lazily; without adoption the owner would never see those
// Prepared forms, and every successive view would rebuild from an ever-staler
// hint. Adoption happens whenever the view's result is a strictly fresher
// rebuild basis (fewer ranks to re-derive) than the owner's own memo, which
// restores suffix reuse across mutations for owners that never call
// Materialize themselves.
func (ix *Index) adopt() {
	v := ix.lastView
	if v == nil {
		return
	}
	p := v.Ready()
	if p == nil || p == ix.prep {
		return
	}
	if ix.prep != nil && v.gen <= ix.prepGen {
		return // memo built at (or after) the view's generation — no fresher
	}
	ix.prep = p
	ix.prepGen = v.gen
	ix.dirtyFrom = ix.dirtySinceView
	// buf was filled against the old basis; its prefix no longer matches.
	ix.bufValid = false
}

// IndexView is an immutable frozen version of an Index: a published treap
// root (never mutated thereafter — the owner path-copies) plus a lazily
// materialized Prepared. Safe for concurrent use.
type IndexView struct {
	root *inode
	n    int
	gen  uint64

	// hintPrep/hintFrom carry the owner's last materialized Prepared and the
	// first rank that has changed since, so the view's own materialization
	// can reuse the unchanged prefix.
	hintPrep *Prepared
	hintFrom int

	once sync.Once
	done atomic.Bool
	prep *Prepared
	err  error
}

// Len returns the number of tuples in the frozen contents.
func (v *IndexView) Len() int { return v.n }

// Gen returns the owning index's generation at freeze time; (index identity,
// generation) keys caches of materialized state.
func (v *IndexView) Gen() uint64 { return v.gen }

// Materialize returns the Prepared form of the frozen contents, computing it
// at most once (errors included — the contents are immutable, so a failed
// validation is equally permanent). If the owner had already materialized
// the same generation, the owner's *Prepared is returned without any work.
func (v *IndexView) Materialize() (*Prepared, error) {
	if v.root == nil {
		// Pre-resolved at Freeze from the owner's memo.
		if v.prep == nil {
			return nil, ErrEmptyTable
		}
		return v.prep, nil
	}
	v.once.Do(func() {
		buf := appendNodes(v.root, make([]Tuple, 0, v.n))
		v.prep, v.err = PrepareSorted(buf, v.hintPrep, v.hintFrom)
		if v.err == nil {
			indexTotals.viewMat.Add(1)
		}
		v.done.Store(true)
	})
	return v.prep, v.err
}

// Ready returns the view's Prepared form if Materialize has already completed
// successfully, without triggering materialization; nil otherwise. The owning
// index uses it to adopt a view's work back into its own memo.
func (v *IndexView) Ready() *Prepared {
	if v.root == nil {
		return v.prep // pre-resolved at Freeze (nil for an empty index)
	}
	if v.done.Load() && v.err == nil {
		return v.prep
	}
	return nil
}
