package uncertain

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// canonicalSort sorts tuples the way Prepare does, stably on insertion
// order.
func canonicalSort(tuples []Tuple) []Tuple {
	out := append([]Tuple(nil), tuples...)
	sort.SliceStable(out, func(a, b int) bool {
		if out[a].Score != out[b].Score {
			return out[a].Score > out[b].Score
		}
		return out[a].Prob > out[b].Prob
	})
	return out
}

// samePrepared asserts the query-relevant derived structure of two Prepared
// tables is identical (Orig is excluded: PrepareSorted defines it as the
// prepared position).
func samePrepared(t *testing.T, label string, got, want *Prepared) {
	t.Helper()
	if got.Len() != want.Len() || got.NumGroups() != want.NumGroups() {
		t.Fatalf("%s: %v vs %v", label, got, want)
	}
	for i := 0; i < want.Len(); i++ {
		g, w := got.Tuples[i], want.Tuples[i]
		if g.ID != w.ID || g.Score != w.Score || g.Prob != w.Prob ||
			g.Group != w.Group || g.Lead != w.Lead {
			t.Fatalf("%s: position %d: %+v vs %+v", label, i, g, w)
		}
		gs, ge := got.TieGroup(i)
		ws, we := want.TieGroup(i)
		if gs != ws || ge != we {
			t.Fatalf("%s: tie group at %d: [%d,%d) vs [%d,%d)", label, i, gs, ge, ws, we)
		}
		if got.PrefixProbability(i) != want.PrefixProbability(i) {
			t.Fatalf("%s: prefix probability at %d: %v vs %v",
				label, i, got.PrefixProbability(i), want.PrefixProbability(i))
		}
	}
	for g := 0; g < want.NumGroups(); g++ {
		gm, wm := got.GroupMembers(g), want.GroupMembers(g)
		if len(gm) != len(wm) {
			t.Fatalf("%s: group %d members %v vs %v", label, g, gm, wm)
		}
		for i := range wm {
			if gm[i] != wm[i] {
				t.Fatalf("%s: group %d members %v vs %v", label, g, gm, wm)
			}
		}
	}
}

// TestPrepareSortedMatchesPrepare: building from pre-sorted tuples yields
// the same derived structure as Prepare on the unsorted table, across
// random tables with ties and ME groups.
func TestPrepareSortedMatchesPrepare(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		tab := NewTable()
		n := 1 + r.Intn(25)
		for i := 0; i < n; i++ {
			group := ""
			if r.Float64() < 0.4 {
				group = fmt.Sprintf("g%d", r.Intn(3))
			}
			tab.Add(Tuple{
				ID:    fmt.Sprintf("t%d", i),
				Score: float64(r.Intn(8)), // few distinct scores → many ties
				Prob:  0.05 + 0.2*r.Float64(),
				Group: group,
			})
		}
		if tab.Validate() != nil {
			continue
		}
		want, err := Prepare(tab)
		if err != nil {
			t.Fatal(err)
		}
		got, err := PrepareSorted(canonicalSort(tab.Tuples()), nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		samePrepared(t, fmt.Sprintf("trial %d", trial), got, want)
	}
}

// TestPrepareSortedSuffixReuse: re-preparing with a shared prefix (including
// named groups spanning prefix and suffix) equals a from-scratch build.
func TestPrepareSortedSuffixReuse(t *testing.T) {
	base := []Tuple{
		{ID: "a", Score: 90, Prob: 0.5, Group: "g"},
		{ID: "b", Score: 80, Prob: 0.9},
		{ID: "c", Score: 70, Prob: 0.3, Group: "g"},
		{ID: "d", Score: 60, Prob: 0.8},
		{ID: "e", Score: 50, Prob: 0.1, Group: "g"},
	}
	prev, err := PrepareSorted(base, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Replace the suffix from position 2: drop "c", insert two tuples, one
	// extending group g.
	next := []Tuple{
		base[0], base[1],
		{ID: "x", Score: 65, Prob: 0.6},
		{ID: "y", Score: 55, Prob: 0.05, Group: "g"},
		base[4],
	}
	got, err := PrepareSorted(next, prev, 2)
	if err != nil {
		t.Fatal(err)
	}
	want, err := PrepareSorted(next, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	samePrepared(t, "suffix reuse", got, want)
	// The reused prefix must keep prev's group identity for "g" so the
	// suffix members join the same group.
	gid := got.Tuples[0].Group
	members := got.GroupMembers(gid)
	if len(members) != 3 {
		t.Fatalf("group g members = %v, want a, y, e", members)
	}
}

// TestPrepareSortedRejectsUnsorted: out-of-order input is an error, not a
// silently wrong structure.
func TestPrepareSortedRejectsUnsorted(t *testing.T) {
	if _, err := PrepareSorted([]Tuple{
		{ID: "lo", Score: 1, Prob: 0.5},
		{ID: "hi", Score: 2, Prob: 0.5},
	}, nil, 0); err == nil {
		t.Fatal("ascending scores should be rejected")
	}
	if _, err := PrepareSorted([]Tuple{
		{ID: "a", Score: 1, Prob: 0.2},
		{ID: "b", Score: 1, Prob: 0.7},
	}, nil, 0); err == nil {
		t.Fatal("ascending probabilities within a tie should be rejected")
	}
	if _, err := PrepareSorted(nil, nil, 0); err != ErrEmptyTable {
		t.Fatal("empty input should be ErrEmptyTable")
	}
}

// TestTableVersion: the mutation counter changes on Add and is what cache
// keys rely on.
func TestTableVersion(t *testing.T) {
	tab := NewTable()
	v0 := tab.Version()
	tab.AddIndependent("a", 1, 0.5)
	if tab.Version() == v0 {
		t.Fatal("Add did not change the version")
	}
	v1 := tab.Version()
	tab.AddExclusive("b", "g", 2, 0.5)
	if tab.Version() == v1 {
		t.Fatal("AddExclusive did not change the version")
	}
	if c := tab.Clone(); c.Version() != tab.Version() {
		t.Fatal("Clone should carry the version value")
	}
}
