package uncertain

import "sync/atomic"

// snapshotIDs mints process-unique snapshot identities. IDs start at 1 so 0
// is never a valid identity, and they are monotonically increasing, so among
// snapshots of one table a larger ID always means a later state.
var snapshotIDs atomic.Uint64

// tableIDs mints process-unique table (owner) identities; see
// Table.Identity.
var tableIDs atomic.Uint64

// Snapshot is an immutable view of a table's contents, frozen at the moment
// Table.Snapshot was called, with a process-unique identity.
//
// Snapshots are the unit of isolation for concurrent serving: once obtained,
// a Snapshot never changes — queries over it need no locks, run against
// exactly the state they started from, and can proceed while the owning
// table keeps mutating. Because identities are minted from a process-wide
// counter and never reused, a Snapshot's ID is a sound cache key: two
// snapshots with the same ID are the same object with the same contents,
// whatever happened to table pointers, versions, clones or name bindings in
// between.
//
// The zero value is not useful; obtain snapshots from Table.Snapshot or
// NewSnapshot.
type Snapshot struct {
	id    uint64
	owner uint64
	// tuples is frozen: it aliases the owning table's append-only storage
	// with its capacity clamped, so neither side can ever write through it.
	tuples []Tuple
	// view is an advisory accelerator: a frozen IndexView over the same
	// contents, attached once by whoever maintains a dynamic Index for the
	// table (the sliding window, the server's mutate path). Consumers that
	// need the Prepared form may materialize from it — sharing the index's
	// suffix-reuse and memoized Prepared — instead of sorting from scratch.
	view atomic.Pointer[IndexView]
}

// NewSnapshot freezes a copy of the given tuples (in insertion order) as a
// standalone snapshot with a fresh identity and owner. The input slice is
// copied, so the caller may keep mutating it.
func NewSnapshot(tuples []Tuple) *Snapshot {
	frozen := make([]Tuple, len(tuples))
	copy(frozen, tuples)
	return OwnSnapshot(frozen)
}

// OwnSnapshot freezes tuples as a snapshot WITHOUT copying: the snapshot
// takes ownership, and the caller must never touch the slice again. For
// callers that just built a private slice (the sliding window's Freeze);
// everyone else wants NewSnapshot.
func OwnSnapshot(tuples []Tuple) *Snapshot {
	return &Snapshot{
		id:     snapshotIDs.Add(1),
		owner:  tableIDs.Add(1),
		tuples: tuples[:len(tuples):len(tuples)],
	}
}

// ID returns the snapshot's process-unique identity. IDs are never reused
// within a process, which makes them sound cache keys: an entry keyed by a
// superseded snapshot's ID is unreachable by construction.
func (s *Snapshot) ID() uint64 { return s.id }

// Owner returns the identity of the table this snapshot was taken from (see
// Table.Identity). Successive snapshots of one table share an owner, which
// lets caches eagerly drop entries for that table's superseded states.
func (s *Snapshot) Owner() uint64 { return s.owner }

// Len returns the number of tuples.
func (s *Snapshot) Len() int { return len(s.tuples) }

// Tuple returns the i-th tuple in insertion order.
func (s *Snapshot) Tuple(i int) Tuple { return s.tuples[i] }

// Tuples returns a copy of the tuple slice in insertion order.
func (s *Snapshot) Tuples() []Tuple {
	out := make([]Tuple, len(s.tuples))
	copy(out, s.tuples)
	return out
}

// Validate checks the data-model invariants on the frozen contents, exactly
// like Table.Validate.
func (s *Snapshot) Validate() error { return validateTuples(s.tuples) }

// Table materialises the snapshot as a fresh mutable table with its own
// identity.
func (s *Snapshot) Table() *Table {
	t := NewTable()
	t.tuples = s.Tuples()
	t.version = uint64(len(s.tuples))
	return t
}

// Prepare validates and sorts the frozen contents, returning the derived
// structure the query algorithms need — the snapshot-native form of the
// package-level Prepare. It never mutates the snapshot and is safe to call
// concurrently. Consumers that cache preparations (the engine) should try
// IndexView first.
func (s *Snapshot) Prepare() (*Prepared, error) { return prepareTuples(s.tuples) }

// SetIndexView attaches a frozen dynamic-index view over the same contents
// as an advisory accelerator; see Snapshot.view. It is set-once: the first
// caller wins and later calls are no-ops, so a published snapshot's view
// never changes. A view whose length disagrees with the snapshot is refused.
func (s *Snapshot) SetIndexView(v *IndexView) {
	if v == nil || v.Len() != len(s.tuples) {
		return
	}
	s.view.CompareAndSwap(nil, v)
}

// IndexView returns the attached dynamic-index view, or nil. The view holds
// the same tuples as the snapshot (in canonical rank order rather than
// insertion order — query answers are identical either way), so a consumer
// may materialize its Prepared form from the view instead of re-sorting.
func (s *Snapshot) IndexView() *IndexView { return s.view.Load() }
