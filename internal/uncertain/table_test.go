package uncertain

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func soldier() *Table {
	t := NewTable()
	t.AddIndependent("T1", 49, 0.4)
	t.AddExclusive("T2", "soldier2", 60, 0.4)
	t.AddExclusive("T3", "soldier3", 110, 0.4)
	t.AddExclusive("T4", "soldier2", 80, 0.3)
	t.AddIndependent("T5", 56, 1.0)
	t.AddExclusive("T6", "soldier3", 58, 0.5)
	t.AddExclusive("T7", "soldier2", 125, 0.3)
	return t
}

func TestValidate(t *testing.T) {
	if err := soldier().Validate(); err != nil {
		t.Fatalf("soldier table should validate: %v", err)
	}
	cases := []struct {
		name string
		tab  *Table
		want string
	}{
		{"zero prob", NewTable().AddIndependent("a", 1, 0), "probability"},
		{"negative prob", NewTable().AddIndependent("a", 1, -0.5), "probability"},
		{"prob above one", NewTable().AddIndependent("a", 1, 1.5), "probability"},
		{"nan score", NewTable().AddIndependent("a", math.NaN(), 0.5), "score"},
		{"inf score", NewTable().AddIndependent("a", math.Inf(1), 0.5), "score"},
		{"group overflow", NewTable().
			AddExclusive("a", "g", 1, 0.7).
			AddExclusive("b", "g", 2, 0.6), "total probability"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.tab.Validate()
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("err = %v, want mention of %q", err, c.want)
			}
		})
	}
}

func TestPrepareSortOrder(t *testing.T) {
	p, err := Prepare(soldier())
	if err != nil {
		t.Fatal(err)
	}
	wantIDs := []string{"T7", "T3", "T4", "T2", "T6", "T5", "T1"}
	for i, want := range wantIDs {
		if p.Tuples[i].ID != want {
			t.Fatalf("position %d = %s, want %s", i, p.Tuples[i].ID, want)
		}
	}
}

func TestPrepareSortTieBreakByProb(t *testing.T) {
	tab := NewTable().
		AddIndependent("low", 8, 0.1).
		AddIndependent("hi", 8, 0.9).
		AddIndependent("mid", 8, 0.5)
	p, err := Prepare(tab)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"hi", "mid", "low"}
	for i, w := range want {
		if p.Tuples[i].ID != w {
			t.Fatalf("tie order wrong at %d: got %s want %s", i, p.Tuples[i].ID, w)
		}
	}
	s, e := p.TieGroup(1)
	if s != 0 || e != 3 {
		t.Fatalf("tie group = [%d,%d), want [0,3)", s, e)
	}
	if !p.HasTies() {
		t.Fatal("HasTies should be true")
	}
}

func TestPrepareEmpty(t *testing.T) {
	if _, err := Prepare(NewTable()); err != ErrEmptyTable {
		t.Fatalf("err = %v, want ErrEmptyTable", err)
	}
}

func TestGroups(t *testing.T) {
	p, err := Prepare(soldier())
	if err != nil {
		t.Fatal(err)
	}
	// Sorted order: T7 T3 T4 T2 T6 T5 T1.
	// soldier2 = {T7@0, T4@2, T2@3}; soldier3 = {T3@1, T6@4}.
	g2 := p.Tuples[0].Group
	if got := p.GroupMembers(g2); len(got) != 3 || got[0] != 0 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("soldier2 members = %v", got)
	}
	if p.GroupSize(0) != 3 || p.GroupSize(1) != 2 || p.GroupSize(5) != 1 {
		t.Fatal("group sizes wrong")
	}
	if p.NumGroups() != 4 {
		t.Fatalf("NumGroups = %d, want 4", p.NumGroups())
	}
	// Leads: T7 (first of soldier2), T3 (first of soldier3), T5, T1.
	wantLead := map[string]bool{"T7": true, "T3": true, "T5": true, "T1": true}
	for _, tp := range p.Tuples {
		if tp.Lead != wantLead[tp.ID] {
			t.Fatalf("lead flag of %s = %v", tp.ID, tp.Lead)
		}
	}
	if m := p.MExclusiveCount(p.Len()); m != 5 {
		t.Fatalf("MExclusiveCount = %d, want 5", m)
	}
	if m := p.MExclusiveCount(2); m != 2 {
		t.Fatalf("MExclusiveCount(2) = %d, want 2", m)
	}
}

func TestPrefixMass(t *testing.T) {
	p, err := Prepare(soldier())
	if err != nil {
		t.Fatal(err)
	}
	g2 := p.Tuples[0].Group // soldier2: T7@0 (0.3), T4@2 (0.3), T2@3 (0.4)
	if got := p.PrefixMass(g2, 0); got != 0 {
		t.Fatalf("PrefixMass(0) = %v", got)
	}
	if got := p.PrefixMass(g2, 1); math.Abs(got-0.3) > 1e-12 {
		t.Fatalf("PrefixMass(1) = %v", got)
	}
	if got := p.PrefixMass(g2, 3); math.Abs(got-0.6) > 1e-12 {
		t.Fatalf("PrefixMass(3) = %v", got)
	}
	if got := p.PrefixMass(g2, 7); math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("PrefixMass(7) = %v", got)
	}
	if got := p.GroupMassBefore(g2, 3); math.Abs(got-0.6) > 1e-12 {
		t.Fatalf("GroupMassBefore = %v", got)
	}
}

func TestUnits(t *testing.T) {
	p, err := Prepare(soldier())
	if err != nil {
		t.Fatal(err)
	}
	// Sorted: T7(lead) T3(lead) T4(nonlead) T2(nonlead) T6(nonlead) T5(lead) T1(lead).
	units := p.Units(p.Len())
	want := []Unit{
		{UnitLeadRegion, 0, 2},
		{UnitNonLead, 2, 3},
		{UnitNonLead, 3, 4},
		{UnitNonLead, 4, 5},
		{UnitLeadRegion, 5, 7},
	}
	if len(units) != len(want) {
		t.Fatalf("units = %+v", units)
	}
	for i, u := range want {
		if units[i] != u {
			t.Fatalf("unit %d = %+v, want %+v", i, units[i], u)
		}
	}
	// Truncation mid-region.
	units = p.Units(1)
	if len(units) != 1 || units[0] != (Unit{UnitLeadRegion, 0, 1}) {
		t.Fatalf("truncated units = %+v", units)
	}
}

func TestUnitsAllIndependent(t *testing.T) {
	tab := NewTable().AddIndependent("a", 3, 0.5).AddIndependent("b", 2, 0.5).AddIndependent("c", 1, 0.5)
	p, err := Prepare(tab)
	if err != nil {
		t.Fatal(err)
	}
	units := p.Units(3)
	if len(units) != 1 || units[0] != (Unit{UnitLeadRegion, 0, 3}) {
		t.Fatalf("units = %+v, want single region", units)
	}
}

func TestIDsAndTotalScore(t *testing.T) {
	p, err := Prepare(soldier())
	if err != nil {
		t.Fatal(err)
	}
	ids := p.IDs([]int{0, 1})
	if ids[0] != "T7" || ids[1] != "T3" {
		t.Fatalf("IDs = %v", ids)
	}
	if s := p.TotalScore([]int{0, 1}); s != 235 {
		t.Fatalf("TotalScore = %v, want 235", s)
	}
}

func TestCloneIsDeep(t *testing.T) {
	a := soldier()
	b := a.Clone()
	b.AddIndependent("extra", 1, 0.5)
	if a.Len() == b.Len() {
		t.Fatal("clone shares backing storage")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	var sb strings.Builder
	if err := soldier().WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 7 {
		t.Fatalf("len = %d", got.Len())
	}
	for i := 0; i < 7; i++ {
		a, b := soldier().Tuple(i), got.Tuple(i)
		if a != b {
			t.Fatalf("tuple %d: %+v != %+v", i, a, b)
		}
	}
}

func TestCSVErrors(t *testing.T) {
	cases := []string{
		"",
		"wrong,header,here,x\n",
		"id,score,prob,group\nT1,notanumber,0.5,\n",
		"id,score,prob,group\nT1,1,notanumber,\n",
		"id,score,prob,group\nT1,1,2.0,\n",             // invalid prob
		"id,score,prob,group\nT1,1,0.5,\nT1,2,0.4,\n",  // duplicate id
		"id,score,prob,group\na,1,0.6,g\nb,2,0.6,g\n",  // group mass > 1
		"id,score,prob,group\na,NaN,0.5,\n",            // non-finite score
		"id,score,prob,group\na,1,0.5,\nb,2,0.5\n",     // short row
		"id,score,prob,group\na,1,0.5,\nb,2,0.5,x,y\n", // long row
	}
	for i, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c)); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
}

// Property: Prepare emits a permutation in non-increasing (score, prob)
// order, group memberships partition positions, and tie groups cover the
// table contiguously.
func TestPrepareProperties(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tab := NewTable()
		n := 1 + r.Intn(40)
		for i := 0; i < n; i++ {
			g := ""
			if r.Intn(3) == 0 {
				g = string(rune('a' + r.Intn(4)))
			}
			tab.Add(Tuple{
				ID:    "t",
				Score: float64(r.Intn(10)),
				Prob:  0.01 + 0.2*r.Float64(),
				Group: g,
			})
		}
		if tab.Validate() != nil {
			return true // group mass overflow: acceptable rejection
		}
		p, err := Prepare(tab)
		if err != nil {
			return false
		}
		seen := make([]bool, n)
		for i, tp := range p.Tuples {
			if seen[tp.Orig] {
				return false
			}
			seen[tp.Orig] = true
			if i > 0 {
				prev := p.Tuples[i-1]
				if prev.Score < tp.Score {
					return false
				}
				if prev.Score == tp.Score && prev.Prob < tp.Prob {
					return false
				}
			}
		}
		covered := 0
		for g := 0; g < p.NumGroups(); g++ {
			ms := p.GroupMembers(g)
			covered += len(ms)
			for j := 1; j < len(ms); j++ {
				if ms[j] <= ms[j-1] {
					return false
				}
			}
			if len(ms) > 0 && !p.Tuples[ms[0]].Lead {
				return false
			}
		}
		if covered != n {
			return false
		}
		// Units cover [0, n) exactly once.
		pos := 0
		for _, u := range p.Units(n) {
			if u.Start != pos || u.End <= u.Start {
				return false
			}
			pos = u.End
		}
		return pos == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
