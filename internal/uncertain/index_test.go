package uncertain

import (
	"flag"
	"fmt"
	"math/rand"
	"testing"
)

// dynN sizes the randomized differential harness; nightly CI raises it
// (-dynamic.n 10000) for a long soak.
var dynN = flag.Int("dynamic.n", 2000, "steps for the dynamic-index differential harness")

// mirrorEntry pairs a live tuple with its index sequence number. The mirror
// slice is kept in ascending-seq (insertion) order, which is exactly the
// tie-break Prepare's stable sort applies, so prepareTuples over the mirror
// is a from-scratch oracle for the index contents.
type mirrorEntry struct {
	seq uint64
	t   Tuple
}

// comparePrepared checks that got (materialized from an Index) and want
// (from-scratch oracle) are identical in every query-visible way. Orig is
// excluded: index-materialized tables use the prepared position itself,
// batch-prepared ones the insertion position; no query result depends on it.
func comparePrepared(t *testing.T, step int, got, want *Prepared) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("step %d: len %d != oracle %d", step, got.Len(), want.Len())
	}
	for i := range want.Tuples {
		g, w := got.Tuples[i], want.Tuples[i]
		if g.ID != w.ID || g.Score != w.Score || g.Prob != w.Prob || g.Group != w.Group || g.Lead != w.Lead {
			t.Fatalf("step %d: position %d: got %+v, oracle %+v", step, i, g, w)
		}
	}
	if got.NumGroups() != want.NumGroups() {
		t.Fatalf("step %d: groups %d != oracle %d", step, got.NumGroups(), want.NumGroups())
	}
	for g := 0; g < want.NumGroups(); g++ {
		gm, wm := got.GroupMembers(g), want.GroupMembers(g)
		if len(gm) != len(wm) {
			t.Fatalf("step %d: group %d members %v != oracle %v", step, g, gm, wm)
		}
		for j := range wm {
			if gm[j] != wm[j] {
				t.Fatalf("step %d: group %d members %v != oracle %v", step, g, gm, wm)
			}
		}
		for j := range got.groupCum[g] {
			if got.groupCum[g][j] != want.groupCum[g][j] {
				t.Fatalf("step %d: group %d cum[%d] = %v != oracle %v",
					step, g, j, got.groupCum[g][j], want.groupCum[g][j])
			}
		}
	}
	for i := 0; i <= want.Len(); i++ {
		if got.PrefixProbability(i) != want.PrefixProbability(i) {
			t.Fatalf("step %d: cumProb[%d] = %v != oracle %v",
				step, i, got.PrefixProbability(i), want.PrefixProbability(i))
		}
	}
	for i := 0; i < want.Len(); i++ {
		gs, ge := got.TieGroup(i)
		ws, we := want.TieGroup(i)
		if gs != ws || ge != we {
			t.Fatalf("step %d: tie group at %d = [%d,%d) != oracle [%d,%d)", step, i, gs, ge, ws, we)
		}
	}
}

// checkTreeAccessors validates the index's O(log n) tree-native answers
// against the oracle Prepared. Tree aggregates sum floats in a different
// association order than the flat prefix arrays, so these use a tolerance,
// unlike the bit-exact materialized comparison.
func checkTreeAccessors(t *testing.T, step int, ix *Index, want *Prepared, mirror []mirrorEntry) {
	t.Helper()
	const tol = 1e-9
	if ix.Len() != want.Len() {
		t.Fatalf("step %d: index len %d != oracle %d", step, ix.Len(), want.Len())
	}
	for i := 0; i < want.Len(); i++ {
		at := ix.At(i)
		w := want.Tuples[i]
		if at.ID != w.ID || at.Score != w.Score || at.Prob != w.Prob {
			t.Fatalf("step %d: At(%d) = %+v, oracle %+v", step, i, at, w)
		}
		gs, ge := ix.TieGroup(i)
		ws, we := want.TieGroup(i)
		if gs != ws || ge != we {
			t.Fatalf("step %d: index tie group at %d = [%d,%d) != oracle [%d,%d)", step, i, gs, ge, ws, we)
		}
	}
	probe := []int{0, want.Len() / 3, want.Len() / 2, want.Len()}
	for _, pos := range probe {
		if d := ix.PrefixProbability(pos) - want.PrefixProbability(pos); d > tol || d < -tol {
			t.Fatalf("step %d: index PrefixProbability(%d) = %v, oracle %v",
				step, pos, ix.PrefixProbability(pos), want.PrefixProbability(pos))
		}
	}
	// Per-group masses: resolve each named group to its dense oracle id via
	// any member, then compare GroupMass and PrefixMass at the probes.
	names := make(map[string]int)
	for pos, me := range mirrorByRank(want, mirror) {
		if g := me.t.Group; g != "" {
			if _, ok := names[g]; !ok {
				names[g] = want.Tuples[pos].Group
			}
		}
	}
	for name, g := range names {
		full := want.PrefixMass(g, want.Len())
		if d := ix.GroupMass(name) - full; d > tol || d < -tol {
			t.Fatalf("step %d: GroupMass(%q) = %v, oracle %v", step, name, ix.GroupMass(name), full)
		}
		for _, pos := range probe {
			if d := ix.PrefixMass(name, pos) - want.PrefixMass(g, pos); d > tol || d < -tol {
				t.Fatalf("step %d: PrefixMass(%q, %d) = %v, oracle %v",
					step, name, pos, ix.PrefixMass(name, pos), want.PrefixMass(g, pos))
			}
		}
	}
}

// mirrorByRank reorders the mirror entries into the oracle's prepared order
// (the oracle's Orig is the mirror index).
func mirrorByRank(want *Prepared, mirror []mirrorEntry) []mirrorEntry {
	out := make([]mirrorEntry, len(mirror))
	for pos, pt := range want.Tuples {
		out[pos] = mirror[pt.Orig]
	}
	return out
}

func oracleTuples(mirror []mirrorEntry) []Tuple {
	out := make([]Tuple, len(mirror))
	for i, me := range mirror {
		out[i] = me.t
	}
	return out
}

// randTuple draws from small score/probability palettes so duplicate-score
// runs, (score, prob) ties, and exact canonical ties (seq-broken) all occur
// constantly, and from a small group pool so ME membership churns.
func randTuple(rng *rand.Rand, id int) Tuple {
	t := Tuple{
		ID:    fmt.Sprintf("t%d", id),
		Score: float64(rng.Intn(12)),
		Prob:  []float64{0.05, 0.1, 0.1, 0.15, 0.2, 0.3}[rng.Intn(6)],
	}
	if rng.Intn(10) < 3 {
		t.Group = fmt.Sprintf("g%d", rng.Intn(5))
	}
	return t
}

// TestDynamicIndexDifferential drives thousands of interleaved
// Insert/Delete/Update/query steps against the from-scratch Prepare oracle,
// proving the materialized view and the tree-native accessors bit-identical
// (resp. tolerance-identical) to batch preparation at every step — including
// overfull-ME-group episodes, where both sides must fail together.
func TestDynamicIndexDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	ix := NewIndex()
	var mirror []mirrorEntry
	nextID := 0
	mutations := uint64(0)

	for step := 0; step < *dynN; step++ {
		op := rng.Intn(100)
		switch {
		case op < 50 || len(mirror) == 0: // insert
			tp := randTuple(rng, nextID)
			nextID++
			seq, err := ix.Insert(tp)
			if err != nil {
				t.Fatalf("step %d: insert: %v", step, err)
			}
			mirror = append(mirror, mirrorEntry{seq: seq, t: tp})
			mutations++
		case op < 75: // delete
			i := rng.Intn(len(mirror))
			got, ok := ix.Delete(mirror[i].seq)
			if !ok || got != mirror[i].t {
				t.Fatalf("step %d: delete seq %d: got %+v ok=%v, want %+v",
					step, mirror[i].seq, got, ok, mirror[i].t)
			}
			mirror = append(mirror[:i], mirror[i+1:]...)
			mutations++
		default: // update in place (same seq keeps the canonical tie-break)
			i := rng.Intn(len(mirror))
			tp := randTuple(rng, nextID)
			tp.ID = mirror[i].t.ID
			nextID++
			if err := ix.Update(mirror[i].seq, tp); err != nil {
				t.Fatalf("step %d: update seq %d: %v", step, mirror[i].seq, err)
			}
			mirror[i].t = tp
			mutations++
		}

		want, werr := prepareTuples(oracleTuples(mirror))
		got, gerr := ix.Materialize()
		if (werr == nil) != (gerr == nil) {
			t.Fatalf("step %d: oracle err %v, index err %v", step, werr, gerr)
		}
		if werr != nil {
			continue // overfull in-window group: both sides agree it's invalid
		}
		comparePrepared(t, step, got, want)
		checkTreeAccessors(t, step, ix, want, mirror)

		// Unchanged index: the memoized *Prepared pointer (and its units
		// memo) must be returned as-is, and Freeze must hand the same view
		// (carrying that same pointer) on every call.
		again, err := ix.Materialize()
		if err != nil || again != got {
			t.Fatalf("step %d: re-materialize got %p err %v, want memoized %p", step, again, err, got)
		}
		v := ix.Freeze()
		if ix.Freeze() != v {
			t.Fatalf("step %d: Freeze not memoized across unchanged index", step)
		}
		vp, err := v.Materialize()
		if err != nil || vp != got {
			t.Fatalf("step %d: view materialize got %p err %v, want owner's %p", step, vp, err, got)
		}
	}

	st := ix.Stats()
	if st.Mutations != mutations {
		t.Fatalf("stats.Mutations = %d, want %d", st.Mutations, mutations)
	}
	if st.FullMaterializations == 0 || st.SuffixMaterializations == 0 || st.MemoHits == 0 {
		t.Fatalf("expected all materialization modes exercised, got %+v", st)
	}
}

// TestIndexViewFrozenUnderMutation freezes a view, then keeps mutating the
// owner: the view must still materialize exactly the contents at freeze
// time (persistence), and a clean owner's later view must share the owner's
// memoized Prepared.
func TestIndexViewFrozenUnderMutation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ix := NewIndex()
	var mirror []mirrorEntry
	for i := 0; i < 200; i++ {
		tp := randTuple(rng, i)
		tp.Group = "" // keep every episode valid
		seq, err := ix.Insert(tp)
		if err != nil {
			t.Fatal(err)
		}
		mirror = append(mirror, mirrorEntry{seq: seq, t: tp})
	}
	v := ix.Freeze()
	want, err := prepareTuples(oracleTuples(mirror))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		switch rng.Intn(2) {
		case 0:
			tp := randTuple(rng, 1000+i)
			tp.Group = ""
			if _, err := ix.Insert(tp); err != nil {
				t.Fatal(err)
			}
		case 1:
			j := rng.Intn(len(mirror))
			ix.Delete(mirror[j].seq)
			mirror = append(mirror[:j], mirror[j+1:]...)
		}
	}
	got, err := v.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	comparePrepared(t, 0, got, want)
	if again, _ := v.Materialize(); again != got {
		t.Fatal("view materialization not memoized")
	}

	if _, err := ix.Materialize(); err != nil {
		t.Fatal(err)
	}
	v2 := ix.Freeze()
	p2, err := v2.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if own, _ := ix.Materialize(); own != p2 {
		t.Fatal("clean-owner view should share the owner's memoized Prepared")
	}
}

// TestIndexViewConcurrentMaterialize hammers one dirty view from many
// goroutines while the owner keeps mutating — the race detector guards the
// persistence and sync.Once contracts.
func TestIndexViewConcurrentMaterialize(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ix := NewIndex()
	for i := 0; i < 500; i++ {
		if _, err := ix.Insert(randTuple(rng, i)); err != nil {
			t.Fatal(err)
		}
	}
	v := ix.Freeze()
	done := make(chan *Prepared, 8)
	for g := 0; g < 8; g++ {
		go func() {
			p, err := v.Materialize()
			if err != nil {
				p = nil
			}
			done <- p
		}()
	}
	for i := 0; i < 500; i++ {
		if _, err := ix.Insert(randTuple(rng, 1000+i)); err != nil {
			t.Fatal(err)
		}
	}
	first := <-done
	for g := 1; g < 8; g++ {
		if p := <-done; p != first {
			t.Fatalf("concurrent view materializations disagree: %p vs %p", p, first)
		}
	}
	if first == nil {
		t.Skip("frozen contents happened to be group-overfull; covered elsewhere")
	}
	if first.Len() != 500 {
		t.Fatalf("view len %d, want the 500 frozen tuples", first.Len())
	}
}

// TestIndexOverfullGroupHeals mirrors the window semantics: an overfull ME
// group errors at Materialize and heals once a member is deleted, with the
// suffix memo still usable afterwards.
func TestIndexOverfullGroupHeals(t *testing.T) {
	ix := NewIndex()
	if _, err := ix.Insert(Tuple{ID: "a", Score: 9, Prob: 0.4}); err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Insert(Tuple{ID: "b", Score: 8, Prob: 0.7, Group: "g"}); err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Materialize(); err != nil {
		t.Fatal(err)
	}
	seq, err := ix.Insert(Tuple{ID: "c", Score: 7, Prob: 0.6, Group: "g"})
	if err != nil {
		t.Fatal(err) // Insert is permissive; the error belongs to Materialize
	}
	if _, err := ix.Materialize(); err == nil {
		t.Fatal("overfull group should fail Materialize")
	}
	if _, err := ix.Materialize(); err == nil {
		t.Fatal("error must not be memoized as success")
	}
	if _, ok := ix.Delete(seq); !ok {
		t.Fatal("delete of overfull member failed")
	}
	p, err := ix.Materialize()
	if err != nil {
		t.Fatalf("group should have healed: %v", err)
	}
	if p.Len() != 2 {
		t.Fatalf("len %d, want 2", p.Len())
	}
}

func TestIndexEmptyAndErrors(t *testing.T) {
	ix := NewIndex()
	if _, err := ix.Materialize(); err != ErrEmptyTable {
		t.Fatalf("empty Materialize err = %v, want ErrEmptyTable", err)
	}
	if _, err := ix.Freeze().Materialize(); err != ErrEmptyTable {
		t.Fatalf("empty view Materialize err = %v, want ErrEmptyTable", err)
	}
	if _, err := ix.Insert(Tuple{ID: "x", Score: 1, Prob: 0}); err == nil {
		t.Fatal("invalid probability must be rejected at Insert")
	}
	if err := ix.Update(99, Tuple{ID: "x", Score: 1, Prob: 0.5}); err == nil {
		t.Fatal("update of unknown seq must fail")
	}
	if _, ok := ix.Delete(99); ok {
		t.Fatal("delete of unknown seq must report absence")
	}
	seq, err := ix.Insert(Tuple{ID: "x", Score: 1, Prob: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Update(seq, Tuple{ID: "x", Score: 1, Prob: 2}); err == nil {
		t.Fatal("invalid replacement must be rejected at Update")
	}
	if got, ok := ix.Get(seq); !ok || got.ID != "x" || got.Prob != 0.5 {
		t.Fatalf("failed Update must leave the tuple untouched, got %+v ok=%v", got, ok)
	}
	ix.Delete(seq)
	if ix.Len() != 0 {
		t.Fatalf("len %d after deleting everything", ix.Len())
	}
	if _, err := ix.Materialize(); err != ErrEmptyTable {
		t.Fatalf("emptied Materialize err = %v, want ErrEmptyTable", err)
	}
	if _, err := ix.Freeze().Materialize(); err != ErrEmptyTable {
		t.Fatalf("emptied view err = %v, want ErrEmptyTable", err)
	}
}

// TestIndexAdoptsViewMaterialization checks the serving-layer flow where the
// owner never calls Materialize itself: views are frozen, handed to a query
// engine, and materialized there. The owner must adopt those results back
// into its memo so successive views rebuild from the freshest basis (suffix
// reuse) instead of from scratch every time.
func TestIndexAdoptsViewMaterialization(t *testing.T) {
	ix := NewIndex()
	for i := 0; i < 50; i++ {
		if _, err := ix.Insert(Tuple{ID: fmt.Sprintf("a%d", i), Score: float64(i), Prob: 0.5}); err != nil {
			t.Fatal(err)
		}
	}
	v1 := ix.Freeze()
	if v1.Ready() != nil {
		t.Fatal("Ready must be nil before the view materializes")
	}
	p1, err := v1.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if v1.Ready() != p1 {
		t.Fatal("Ready must return the materialized Prepared")
	}

	// No mutations since the freeze: the owner adopts v1's work outright and
	// its own Materialize becomes a memo hit on the very same pointer.
	p, err := ix.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if p != p1 {
		t.Fatal("owner did not adopt the view's materialization")
	}
	if got := ix.Stats(); got.MemoHits != 1 || got.FullMaterializations != 0 || got.SuffixMaterializations != 0 {
		t.Fatalf("adoption must memo-hit without any owner rebuild, stats %+v", got)
	}

	// Mutate and freeze again without touching the owner's Materialize: the
	// new view must carry the adopted prep as its suffix hint and still agree
	// with the from-scratch oracle.
	if _, err := ix.Insert(Tuple{ID: "mid", Score: 24.5, Prob: 0.5}); err != nil {
		t.Fatal(err)
	}
	v2 := ix.Freeze()
	if v2 == v1 {
		t.Fatal("mutation must mint a fresh view")
	}
	if v2.hintPrep != p1 {
		t.Fatalf("second view must reuse the adopted prep as hint, got %p want %p", v2.hintPrep, p1)
	}
	if v2.hintFrom != 25 {
		t.Fatalf("second view hintFrom = %d, want 25 (rank of the mid insert)", v2.hintFrom)
	}
	p2, err := v2.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	want, err := prepareTuples(ix.Tuples())
	if err != nil {
		t.Fatal(err)
	}
	comparePrepared(t, 0, p2, want)

	// And the adoption chain keeps extending: a third round adopts v2's
	// result the same way.
	if _, err := ix.Insert(Tuple{ID: "mid2", Score: 30.5, Prob: 0.5}); err != nil {
		t.Fatal(err)
	}
	v3 := ix.Freeze()
	if v3.hintPrep != p2 {
		t.Fatal("third view must chain off the previously adopted prep")
	}
	if _, err := v3.Materialize(); err != nil {
		t.Fatal(err)
	}
}

func TestIndexInsertDuplicateSeqRefused(t *testing.T) {
	ix := NewIndex()
	seq, err := ix.Insert(Tuple{ID: "a", Score: 9, Prob: 0.4, Group: "g"})
	if err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if _, err := ix.insert(Tuple{ID: "b", Score: 8, Prob: 0.3, Group: "g"}, seq); err == nil {
		t.Fatalf("insert accepted a duplicate sequence number")
	}
	// The refused insert must not have touched either treap: the group
	// aggregate still sees exactly one member.
	if ix.Len() != 1 {
		t.Fatalf("Len = %d after refused duplicate, want 1", ix.Len())
	}
	if got, ok := ix.Get(seq); !ok || got.ID != "a" {
		t.Fatalf("Get(%d) = %+v, %v; want tuple a", seq, got, ok)
	}
	snap, err := ix.Materialize()
	if err != nil {
		t.Fatalf("Materialize: %v", err)
	}
	if snap.Len() != 1 {
		t.Fatalf("materialized %d tuples, want 1", snap.Len())
	}
	// The index stays fully usable: the same seq can be updated and new
	// inserts mint fresh seqs past it.
	if err := ix.Update(seq, Tuple{ID: "a", Score: 10, Prob: 0.5, Group: "g"}); err != nil {
		t.Fatalf("Update after refused duplicate: %v", err)
	}
	if _, err := ix.Insert(Tuple{ID: "c", Score: 7, Prob: 0.2}); err != nil {
		t.Fatalf("Insert after refused duplicate: %v", err)
	}
	if ix.Len() != 2 {
		t.Fatalf("Len = %d, want 2", ix.Len())
	}
}
