package uncertain

import (
	"fmt"
	"math"
	"testing"
)

// naivePrefixMass is the pre-optimisation reference: rescan the group's
// member list and sum probabilities below pos.
func naivePrefixMass(p *Prepared, g, pos int) float64 {
	var s float64
	for _, m := range p.GroupMembers(g) {
		if m >= pos {
			break
		}
		s += p.Tuples[m].Prob
	}
	return s
}

// bigGroupTable builds a table dominated by one huge ME group of n members
// interleaved with independent tuples — the worst case for a linear
// PrefixMass rescan.
func bigGroupTable(n int) *Table {
	tab := NewTable()
	prob := 0.9 / float64(n)
	for i := 0; i < n; i++ {
		tab.AddExclusive(fmt.Sprintf("g%d", i), "huge", float64(2*n-i), prob)
		tab.AddIndependent(fmt.Sprintf("i%d", i), float64(2*n-i)-0.5, 0.5)
	}
	return tab
}

// TestPrefixMassMatchesNaive: the binary-search PrefixMass agrees exactly
// with the linear rescan at every (group, position), including the
// boundaries, on both Prepare and PrepareSorted outputs.
func TestPrefixMassMatchesNaive(t *testing.T) {
	tab := bigGroupTable(40)
	p, err := Prepare(tab)
	if err != nil {
		t.Fatal(err)
	}
	orig := tab.Tuples()
	sorted := make([]Tuple, p.Len())
	for i, pt := range p.Tuples {
		sorted[i] = orig[pt.Orig]
	}
	ps, err := PrepareSorted(sorted, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, prep := range []*Prepared{p, ps} {
		for g := 0; g < prep.NumGroups(); g++ {
			for pos := 0; pos <= prep.Len(); pos++ {
				got, want := prep.PrefixMass(g, pos), naivePrefixMass(prep, g, pos)
				if math.Abs(got-want) > 1e-12 {
					t.Fatalf("PrefixMass(%d, %d) = %v, want %v", g, pos, got, want)
				}
			}
		}
	}
}

// BenchmarkPrefixMass measures the precomputed binary-search path on a
// large ME group; BenchmarkPrefixMassNaive is the old linear rescan for
// comparison — the gap is the satellite win.
func BenchmarkPrefixMass(b *testing.B) {
	p := mustPrepare(b, bigGroupTable(2000))
	g := p.Tuples[0].Group
	n := p.Len()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.PrefixMass(g, (i*31)%n)
	}
}

func BenchmarkPrefixMassNaive(b *testing.B) {
	p := mustPrepare(b, bigGroupTable(2000))
	g := p.Tuples[0].Group
	n := p.Len()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = naivePrefixMass(p, g, (i*31)%n)
	}
}

func mustPrepare(tb testing.TB, tab *Table) *Prepared {
	tb.Helper()
	p, err := Prepare(tab)
	if err != nil {
		tb.Fatal(err)
	}
	return p
}
