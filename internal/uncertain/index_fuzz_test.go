package uncertain

import (
	"fmt"
	"testing"
)

// FuzzDynamicIndex decodes the input as a mutation program over a dynamic
// Index (2 bytes per op: opcode+target, payload) and cross-checks every
// intermediate state against the from-scratch Prepare oracle — the fuzzing
// twin of TestDynamicIndexDifferential. Scores, probabilities and groups are
// drawn from tiny palettes so the interesting collisions (duplicate-score
// runs, (score, prob) ties, ME churn, overfull groups) are dense in the
// input space.
func FuzzDynamicIndex(f *testing.F) {
	seeds := [][]byte{
		{},
		{0x00, 0x00},                         // single insert
		{0x00, 0x00, 0x01, 0x00},             // insert then delete it
		{0x00, 0x11, 0x00, 0x11, 0x00, 0x11}, // exact canonical ties (seq-broken)
		{0x00, 0x13, 0x04, 0x17, 0x08, 0x1b, 0x01, 0x01, 0x02, 0x3f}, // grouped churn + update
		{0x00, 0x1f, 0x00, 0x1f, 0x00, 0x1f, 0x00, 0x1f},             // overfull ME group
		{0x00, 0x20, 0x04, 0x21, 0x08, 0x22, 0x0c, 0x23, 0x01, 0x02, 0x01, 0x01, 0x02, 0x24},
		{0xff, 0xff, 0x80, 0x40, 0x20, 0x10, 0x08, 0x04, 0x02, 0x01},
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		const maxOps = 128
		ix := NewIndex()
		var mirror []mirrorEntry
		nextID := 0
		decodeTuple := func(payload byte, id int) Tuple {
			tp := Tuple{
				ID:    fmt.Sprintf("f%d", id),
				Score: float64(payload & 0x07),
				Prob:  []float64{0.1, 0.2, 0.3, 0.7}[(payload>>3)&0x03],
			}
			if g := (payload >> 5) & 0x03; g != 0 {
				tp.Group = fmt.Sprintf("g%d", g)
			}
			return tp
		}
		for i := 0; i+1 < len(data) && i/2 < maxOps; i += 2 {
			op, payload := data[i], data[i+1]
			switch {
			case op&0x03 == 1 && len(mirror) > 0: // delete
				j := int(payload) % len(mirror)
				got, ok := ix.Delete(mirror[j].seq)
				if !ok || got != mirror[j].t {
					t.Fatalf("delete seq %d: got %+v ok=%v, want %+v", mirror[j].seq, got, ok, mirror[j].t)
				}
				mirror = append(mirror[:j], mirror[j+1:]...)
			case op&0x03 == 2 && len(mirror) > 0: // update
				j := int(op>>2) % len(mirror)
				tp := decodeTuple(payload, nextID)
				tp.ID = mirror[j].t.ID
				nextID++
				if err := ix.Update(mirror[j].seq, tp); err != nil {
					t.Fatalf("update seq %d: %v", mirror[j].seq, err)
				}
				mirror[j].t = tp
			default: // insert
				tp := decodeTuple(payload, nextID)
				nextID++
				seq, err := ix.Insert(tp)
				if err != nil {
					t.Fatalf("insert %+v: %v", tp, err)
				}
				mirror = append(mirror, mirrorEntry{seq: seq, t: tp})
			}

			want, werr := prepareTuples(oracleTuples(mirror))
			got, gerr := ix.Materialize()
			if (werr == nil) != (gerr == nil) {
				t.Fatalf("after op %d: oracle err %v, index err %v", i/2, werr, gerr)
			}
			if werr != nil {
				continue
			}
			comparePrepared(t, i/2, got, want)
			if again, err := ix.Materialize(); err != nil || again != got {
				t.Fatalf("after op %d: memo broken (%p vs %p, err %v)", i/2, again, got, err)
			}
			if vp, err := ix.Freeze().Materialize(); err != nil || vp != got {
				t.Fatalf("after op %d: view disagrees with owner (%p vs %p, err %v)", i/2, vp, got, err)
			}
		}
	})
}
