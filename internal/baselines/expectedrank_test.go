package baselines

import (
	"math"
	"math/rand"
	"testing"

	"probtopk/internal/fixtures"
	"probtopk/internal/uncertain"
	"probtopk/internal/worlds"
)

// oracleExpectedRanks computes expected ranks by world enumeration.
func oracleExpectedRanks(p *uncertain.Prepared) []float64 {
	out := make([]float64, p.Len())
	worlds.Enumerate(p, func(w worlds.World) bool {
		present := make(map[int]int, len(w.Present))
		for r, pos := range w.Present {
			present[pos] = r
		}
		for i := 0; i < p.Len(); i++ {
			if r, ok := present[i]; ok {
				out[i] += w.Prob * float64(r)
			} else {
				out[i] += w.Prob * float64(len(w.Present))
			}
		}
		return true
	})
	return out
}

func TestExpectedRanksAgainstOracle(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 40; trial++ {
		tab := uncertain.NewTable()
		n := 2 + r.Intn(9)
		for i := 0; i < n; i++ {
			g := ""
			if r.Intn(3) == 0 {
				g = string(rune('a' + r.Intn(2)))
			}
			tab.Add(uncertain.Tuple{ID: "t", Score: float64(r.Intn(8)),
				Prob: 0.05 + 0.4*r.Float64(), Group: g})
		}
		if tab.Validate() != nil {
			continue
		}
		p := prep(t, tab)
		want := oracleExpectedRanks(p)
		got := ExpectedRanks(p)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-9 {
				t.Fatalf("trial %d pos %d: %v, oracle %v", trial, i, got[i], want[i])
			}
		}
	}
}

func TestExpectedRanksSoldier(t *testing.T) {
	p := prep(t, fixtures.Soldier())
	ranks := ExpectedRanks(p)
	// T7 (position 0, prob 0.3) ranks 0 when present; absent worlds average
	// the world size of the others: mates 0.4+0.3, others (1-0.3)*(0.4+1+0.5+0.4).
	want := 0.7 + 0.7*2.3
	if math.Abs(ranks[0]-want) > 1e-12 {
		t.Fatalf("E[rank T7] = %v, want %v", ranks[0], want)
	}
	top, err := ExpectedRankTopk(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	// T5 is certain (prob 1) with mid score: its expected rank is the
	// expected count of higher-ranked tuples = 0.3+0.4+0.3+0.4+0.5 = 1.9.
	if math.Abs(ranks[5]-1.9) > 1e-12 {
		t.Fatalf("E[rank T5] = %v, want 1.9", ranks[5])
	}
	if len(top) != 2 {
		t.Fatalf("top = %v", top)
	}
	if ranks[top[0]] > ranks[top[1]] {
		t.Fatal("not sorted by expected rank")
	}
}

func TestExpectedRankTopkErrors(t *testing.T) {
	p := prep(t, fixtures.Soldier())
	if _, err := ExpectedRankTopk(p, 0); err == nil {
		t.Fatal("k=0 should error")
	}
	if _, err := ExpectedRankTopk(p, 100); err == nil {
		t.Fatal("k>n should error")
	}
}
