package baselines

import (
	"fmt"
	"sort"

	"probtopk/internal/uncertain"
)

// ExpectedRanks implements the expected-rank semantics contemporaneous with
// the paper (Cormode, Li, Yi: "Semantics of Ranking Queries for Probabilistic
// Data and Expected Ranks", ICDE 2009): each tuple's rank is averaged across
// all possible worlds, where
//
//	rank(t, w) = |{u ∈ w : u ranked above t}|   if t ∈ w,
//	rank(t, w) = |w|                            if t ∉ w
//
// (a missing tuple ranks just past the end of the world). Ranks are 0-based.
// Expectation is linear, so no convolution is needed:
//
//	E[rank(t)] = p_t·Σ_{h≠g(t)} M_h + Σ_{u∈g(t), u≠t} p_u + (1−p_t)·Σ_{u∉g(t)} p_u,
//
// where M_h is the probability that group h contributes a tuple ranked above
// t, and g(t) is t's ME group.
func ExpectedRanks(p *uncertain.Prepared) []float64 {
	n := p.Len()
	out := make([]float64, n)
	// totalMass[g] = Σ probabilities of group g's members.
	totalMass := make([]float64, p.NumGroups())
	var allMass float64
	for i := 0; i < n; i++ {
		totalMass[p.Tuples[i].Group] += p.Tuples[i].Prob
		allMass += p.Tuples[i].Prob
	}
	// Scan in rank order, maintaining per-group mass above the current
	// position.
	aboveMass := make([]float64, p.NumGroups())
	var aboveAll float64
	for i := 0; i < n; i++ {
		tp := p.Tuples[i]
		g := tp.Group
		// Expected number of higher-ranked tuples given t present: groups are
		// independent and contribute at most one tuple each; t's own group
		// contributes none (mates are excluded by t's presence).
		expAbove := aboveAll - aboveMass[g]
		// Expected world size restricted to "t absent": mates contribute
		// p_u outright; others p_u(1−p_t).
		mates := totalMass[g] - tp.Prob
		others := allMass - totalMass[g]
		out[i] = tp.Prob*expAbove + mates + (1-tp.Prob)*others
		aboveMass[g] += tp.Prob
		aboveAll += tp.Prob
	}
	return out
}

// ExpectedRankTopk returns the k positions with the smallest expected rank,
// in increasing expected-rank order (ties toward higher-ranked tuples).
func ExpectedRankTopk(p *uncertain.Prepared, k int) ([]int, error) {
	if k < 1 {
		return nil, fmt.Errorf("baselines: k must be ≥ 1, got %d", k)
	}
	if p.Len() < k {
		return nil, fmt.Errorf("baselines: table has %d tuples, need %d", p.Len(), k)
	}
	ranks := ExpectedRanks(p)
	idx := make([]int, p.Len())
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		if ranks[idx[a]] != ranks[idx[b]] {
			return ranks[idx[a]] < ranks[idx[b]]
		}
		return idx[a] < idx[b]
	})
	return idx[:k], nil
}
