// Package baselines implements the pre-existing uncertain top-k semantics
// the paper compares against and discusses (§1, §6):
//
//   - U-Topk [Soliman, Ilyas, Chang; ICDE'07] — the k-tuple vector with the
//     highest probability of being the top-k (category 1).
//   - U-kRanks [same] — for each rank r ≤ k, the tuple most likely to occupy
//     rank r across all possible worlds (category 2). As the paper notes, it
//     may return the same tuple for several ranks.
//   - PT-k [Hua, Pei, Zhang, Lin; SIGMOD'08] — all tuples whose probability
//     of being in the top-k reaches a threshold (category 2).
//   - Global-Topk [Zhang, Chomicki; DBRank'08] — the k tuples with the
//     highest probability of being in the top-k (category 2).
//
// Prior work assumed injective scoring; under ties this package ranks by the
// same (score, probability)-descending order used everywhere in probtopk.
//
// The category-2 semantics share one primitive: the distribution of the
// number of higher-ranked tuples that appear, a Poisson-binomial convolution
// over the independent ME groups.
package baselines

import (
	"errors"
	"fmt"
	"sort"

	"probtopk/internal/core"
	"probtopk/internal/pmf"
	"probtopk/internal/uncertain"
)

// UTopk returns the U-Topk answer: the top-k vector with the maximum
// probability of being a top-k vector, with its probability and total score.
// It is computed from the main algorithm's exact vector tracking, which
// line coalescing provably preserves (merges keep the more probable vector).
func UTopk(p *uncertain.Prepared, k int) (vec []int, prob float64, err error) {
	res, err := core.Distribution(p, core.Params{K: k, TrackVectors: true})
	if err != nil {
		return nil, 0, err
	}
	line, ok := res.Dist.MaxVecProbLine()
	if !ok {
		return nil, 0, fmt.Errorf("baselines: no top-%d vector exists (fewer than %d tuples can co-exist)", k, k)
	}
	return line.Vec.Slice(), line.VecProb, nil
}

// UTopkLine returns the full distribution line of the U-Topk vector from an
// already-computed distribution (score, mass at that score, vector,
// probability).
func UTopkLine(d *pmf.Dist) (pmf.Line, bool) { return d.MaxVecProbLine() }

// higherRankCounts returns, for tuple position i, the probability
// distribution of the number of higher-ranked tuples (positions < i) that
// appear, excluding tuples of skipGroup (whose members cannot co-appear with
// the tuple under consideration). The returned slice is truncated at maxCount
// with the tail mass accumulated in the last entry.
func higherRankCounts(p *uncertain.Prepared, i, skipGroup, maxCount int) []float64 {
	// Bernoulli success probability per group: the chance some member at a
	// position < i appears. Groups are independent; members are exclusive,
	// so each group contributes at most one tuple.
	var masses []float64
	seen := make(map[int]float64)
	order := make([]int, 0, i)
	for pos := 0; pos < i; pos++ {
		g := p.Tuples[pos].Group
		if g == skipGroup {
			continue
		}
		if _, ok := seen[g]; !ok {
			order = append(order, g)
		}
		seen[g] += p.Tuples[pos].Prob
	}
	for _, g := range order {
		masses = append(masses, seen[g])
	}
	counts := make([]float64, maxCount+1)
	counts[0] = 1
	for _, m := range masses {
		for c := maxCount; c >= 0; c-- {
			moved := counts[c] * m
			counts[c] -= moved
			if c < maxCount {
				counts[c+1] += moved
			} else {
				counts[c] += moved // saturate: ≥ maxCount higher tuples
			}
		}
	}
	return counts
}

// InTopkProbs returns, for every prepared position, the probability that the
// tuple is among the top-k: it appears and at most k−1 higher-ranked tuples
// appear.
func InTopkProbs(p *uncertain.Prepared, k int) ([]float64, error) {
	if k < 1 {
		return nil, fmt.Errorf("baselines: k must be ≥ 1, got %d", k)
	}
	out := make([]float64, p.Len())
	for i := range out {
		tp := p.Tuples[i]
		counts := higherRankCounts(p, i, tp.Group, k)
		var below float64
		for c := 0; c < k; c++ {
			below += counts[c]
		}
		out[i] = tp.Prob * below
	}
	return out, nil
}

// RankProbs returns rank[i][r-1] = Pr(tuple at position i occupies rank r),
// for r = 1..k: the tuple appears and exactly r−1 higher-ranked tuples
// appear.
func RankProbs(p *uncertain.Prepared, k int) ([][]float64, error) {
	if k < 1 {
		return nil, fmt.Errorf("baselines: k must be ≥ 1, got %d", k)
	}
	out := make([][]float64, p.Len())
	for i := range out {
		tp := p.Tuples[i]
		counts := higherRankCounts(p, i, tp.Group, k)
		row := make([]float64, k)
		// counts[k] holds the saturated ≥k tail; ranks 1..k only read the
		// exact entries 0..k−1.
		for r := 1; r <= k; r++ {
			row[r-1] = tp.Prob * counts[r-1]
		}
		out[i] = row
	}
	return out, nil
}

// RankAnswer is one row of a U-kRanks result.
type RankAnswer struct {
	Rank     int     // 1-based rank
	Position int     // prepared position of the winning tuple
	Prob     float64 // probability the tuple occupies this rank
}

// UKRanks returns, for each rank r = 1..k, the tuple with the highest
// probability of being at rank r. Ties break toward the higher-ranked
// (lower-position) tuple, keeping the answer deterministic. The same tuple
// may win several ranks — the behaviour the paper criticises in §1.
func UKRanks(p *uncertain.Prepared, k int) ([]RankAnswer, error) {
	probs, err := RankProbs(p, k)
	if err != nil {
		return nil, err
	}
	out := make([]RankAnswer, k)
	for r := 1; r <= k; r++ {
		best := RankAnswer{Rank: r, Position: -1}
		for i := range probs {
			if pr := probs[i][r-1]; pr > best.Prob {
				best.Position = i
				best.Prob = pr
			}
		}
		out[r-1] = best
	}
	return out, nil
}

// PTk returns the positions of all tuples whose probability of being in the
// top-k is at least threshold, in rank order — the probabilistic threshold
// top-k semantics of Hua et al.
func PTk(p *uncertain.Prepared, k int, threshold float64) ([]int, error) {
	if threshold <= 0 || threshold > 1 {
		return nil, fmt.Errorf("baselines: PT-k threshold must be in (0, 1], got %v", threshold)
	}
	probs, err := InTopkProbs(p, k)
	if err != nil {
		return nil, err
	}
	var out []int
	for i, pr := range probs {
		if pr >= threshold {
			out = append(out, i)
		}
	}
	return out, nil
}

// GlobalTopk returns the k positions with the highest probability of being
// in the top-k (ties toward higher-ranked tuples), in decreasing order of
// that probability — the Global-Topk semantics of Zhang and Chomicki.
func GlobalTopk(p *uncertain.Prepared, k int) ([]int, error) {
	probs, err := InTopkProbs(p, k)
	if err != nil {
		return nil, err
	}
	if p.Len() < k {
		return nil, errors.New("baselines: table has fewer tuples than k")
	}
	idx := make([]int, p.Len())
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		if probs[idx[a]] != probs[idx[b]] {
			return probs[idx[a]] > probs[idx[b]]
		}
		return idx[a] < idx[b]
	})
	return idx[:k], nil
}
