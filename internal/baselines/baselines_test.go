package baselines

import (
	"math"
	"math/rand"
	"testing"

	"probtopk/internal/fixtures"
	"probtopk/internal/uncertain"
	"probtopk/internal/worlds"
)

func prep(t *testing.T, tab *uncertain.Table) *uncertain.Prepared {
	t.Helper()
	p, err := uncertain.Prepare(tab)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// oracleRankProbs computes Pr(position i at rank r) by world enumeration,
// ranking tuples inside a world by prepared position (the deterministic
// (score, prob) order).
func oracleRankProbs(t *testing.T, p *uncertain.Prepared, k int) [][]float64 {
	t.Helper()
	out := make([][]float64, p.Len())
	for i := range out {
		out[i] = make([]float64, k)
	}
	worlds.Enumerate(p, func(w worlds.World) bool {
		for r, pos := range w.Present {
			if r >= k {
				break
			}
			out[pos][r] += w.Prob
		}
		return true
	})
	return out
}

func TestSoldierUTopk(t *testing.T) {
	p := prep(t, fixtures.Soldier())
	vec, prob, err := UTopk(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	ids := p.IDs(vec)
	if len(ids) != 2 || ids[0] != "T2" || ids[1] != "T6" {
		t.Fatalf("U-Top2 = %v, want [T2 T6]", ids)
	}
	if math.Abs(prob-fixtures.SoldierUTopkProb) > 1e-12 {
		t.Fatalf("prob = %v, want %v", prob, fixtures.SoldierUTopkProb)
	}
}

func TestUTopkAgainstOracle(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	for trial := 0; trial < 40; trial++ {
		tab := uncertain.NewTable()
		n := 3 + r.Intn(8)
		for i := 0; i < n; i++ {
			g := ""
			if r.Intn(2) == 0 {
				g = string(rune('a' + r.Intn(3)))
			}
			tab.Add(uncertain.Tuple{ID: "t", Score: float64(r.Intn(20)) + r.Float64(),
				Prob: 0.05 + 0.28*r.Float64(), Group: g})
		}
		if tab.Validate() != nil {
			continue
		}
		p := prep(t, tab)
		k := 1 + r.Intn(3)
		wantVec, wantProb, err := worlds.UTopkOracle(p, k, 1_000_000)
		if err != nil || wantVec == nil {
			continue
		}
		_, prob, err := UTopk(p, k)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(prob-wantProb) > 1e-9 {
			t.Fatalf("trial %d: U-Topk prob %v, oracle %v", trial, prob, wantProb)
		}
	}
}

func TestUTopkNoVector(t *testing.T) {
	p := prep(t, fixtures.Soldier())
	if _, _, err := UTopk(p, 50); err == nil {
		t.Fatal("expected error when no top-k vector exists")
	}
}

func TestRankProbsAgainstOracle(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for trial := 0; trial < 40; trial++ {
		tab := uncertain.NewTable()
		n := 3 + r.Intn(8)
		for i := 0; i < n; i++ {
			g := ""
			if r.Intn(3) == 0 {
				g = string(rune('a' + r.Intn(2)))
			}
			score := float64(r.Intn(6)) // frequent ties
			tab.Add(uncertain.Tuple{ID: "t", Score: score, Prob: 0.05 + 0.4*r.Float64(), Group: g})
		}
		if tab.Validate() != nil {
			continue
		}
		p := prep(t, tab)
		k := 1 + r.Intn(4)
		want := oracleRankProbs(t, p, k)
		got, err := RankProbs(p, k)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			for rr := 0; rr < k; rr++ {
				if math.Abs(got[i][rr]-want[i][rr]) > 1e-9 {
					t.Fatalf("trial %d: Pr(pos %d at rank %d) = %v, oracle %v",
						trial, i, rr+1, got[i][rr], want[i][rr])
				}
			}
		}
		// InTopkProbs is the row sum of rank probabilities.
		inTopk, err := InTopkProbs(p, k)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			var sum float64
			for rr := 0; rr < k; rr++ {
				sum += want[i][rr]
			}
			if math.Abs(inTopk[i]-sum) > 1e-9 {
				t.Fatalf("trial %d: InTopk(pos %d) = %v, oracle %v", trial, i, inTopk[i], sum)
			}
		}
	}
}

func TestSoldierUKRanks(t *testing.T) {
	p := prep(t, fixtures.Soldier())
	answers, err := UKRanks(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != 2 {
		t.Fatalf("answers = %+v", answers)
	}
	// Rank 1: Pr(T7 first) = 0.3; Pr(T3 first) = (1-0.3)·0.4 = 0.28;
	// Pr(T4 first) = (1-.3)(1-.4)·.3 = 0.126; Pr(T2) = (1-.3)(1-.4)·... T2 is
	// in T7/T4's group: Pr = 0.4·(1-0.4) = 0.24. So rank 1 is T7.
	if id := p.Tuples[answers[0].Position].ID; id != "T7" {
		t.Fatalf("rank 1 = %s, want T7", id)
	}
	if math.Abs(answers[0].Prob-0.3) > 1e-12 {
		t.Fatalf("rank 1 prob = %v, want 0.3", answers[0].Prob)
	}
	for _, a := range answers {
		if a.Position < 0 || a.Prob <= 0 {
			t.Fatalf("degenerate answer %+v", a)
		}
	}
}

// TestUKRanksDuplicateTuple reproduces the §1 observation that U-kRanks can
// return the same tuple at multiple ranks: a dominant high-probability tuple
// wins both rank 1 and rank 2 against a sea of low-probability tuples.
func TestUKRanksDuplicateTuple(t *testing.T) {
	tab := uncertain.NewTable()
	tab.AddIndependent("big", 100, 0.9)
	for i := 0; i < 12; i++ {
		tab.AddIndependent("small", float64(90-i), 0.1)
	}
	p := prep(t, tab)
	answers, err := UKRanks(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p.Tuples[answers[0].Position].ID != "big" {
		t.Fatal("rank 1 should be the dominant tuple")
	}
	if answers[0].Position == answers[1].Position {
		return // duplicate observed, as the paper describes
	}
	// With these numbers rank 2's winner is a small tuple only if some small
	// tuple beats Pr(big at rank 2) = 0; big never ranks 2nd (nothing above
	// it), so rank 2 differs here — make the scenario sharper instead.
	// Rank 1: big wins with 0.95·(1−0.4) = 0.57 > 0.4 (above).
	// Rank 2: big wins with 0.95·0.4 = 0.38 (above can never rank 2nd).
	tab2 := uncertain.NewTable()
	tab2.AddIndependent("above", 200, 0.4)
	tab2.AddIndependent("big", 100, 0.95)
	for i := 0; i < 12; i++ {
		tab2.AddIndependent("small", float64(90-i), 0.08)
	}
	p2 := prep(t, tab2)
	answers, err = UKRanks(p2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Tuples[answers[0].Position].ID != "big" || p2.Tuples[answers[1].Position].ID != "big" {
		t.Fatalf("expected 'big' to win both ranks, got %s / %s",
			p2.Tuples[answers[0].Position].ID, p2.Tuples[answers[1].Position].ID)
	}
}

func TestPTk(t *testing.T) {
	p := prep(t, fixtures.Soldier())
	probs, err := InTopkProbs(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := PTk(p, 2, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	for _, pos := range got {
		if probs[pos] < 0.3 {
			t.Fatalf("position %d has prob %v < threshold", pos, probs[pos])
		}
	}
	for i, pr := range probs {
		if pr >= 0.3 {
			found := false
			for _, pos := range got {
				if pos == i {
					found = true
				}
			}
			if !found {
				t.Fatalf("position %d (prob %v) missing from PT-k", i, pr)
			}
		}
	}
	if _, err := PTk(p, 2, 0); err == nil {
		t.Fatal("threshold 0 should error")
	}
	if _, err := PTk(p, 2, 1.5); err == nil {
		t.Fatal("threshold > 1 should error")
	}
}

func TestGlobalTopk(t *testing.T) {
	p := prep(t, fixtures.Soldier())
	got, err := GlobalTopk(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("got %d positions", len(got))
	}
	probs, _ := InTopkProbs(p, 3)
	// Result must be the 3 highest in-top-k probabilities, descending.
	for i := 1; i < len(got); i++ {
		if probs[got[i]] > probs[got[i-1]]+1e-12 {
			t.Fatal("Global-Topk not sorted by probability")
		}
	}
	for i, pr := range probs {
		inAnswer := false
		for _, pos := range got {
			if pos == i {
				inAnswer = true
			}
		}
		if !inAnswer {
			for _, pos := range got {
				if probs[pos] < pr-1e-12 {
					t.Fatalf("excluded position %d (%v) beats included %d (%v)", i, pr, pos, probs[pos])
				}
			}
		}
	}
	if _, err := GlobalTopk(p, 100); err == nil {
		t.Fatal("k > n should error")
	}
}

func TestKValidation(t *testing.T) {
	p := prep(t, fixtures.Soldier())
	if _, err := InTopkProbs(p, 0); err == nil {
		t.Fatal("k=0 should error")
	}
	if _, err := RankProbs(p, -1); err == nil {
		t.Fatal("negative k should error")
	}
	if _, err := UKRanks(p, 0); err == nil {
		t.Fatal("k=0 should error")
	}
}
