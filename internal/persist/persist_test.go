package persist

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"probtopk/internal/uncertain"
)

func sampleState() map[string][]uncertain.Tuple {
	return map[string][]uncertain.Tuple{
		"fleet": {
			{ID: "car1", Score: 80, Prob: 0.9},
			{ID: "car2", Score: 70, Prob: 0.4, Group: "lane3"},
			{ID: "car3", Score: 65, Prob: 0.5, Group: "lane3"},
		},
		"radar": {
			{ID: "r1", Score: 12.5, Prob: 0.125},
			{ID: "r2", Score: -3, Prob: 1},
		},
		"empty": {},
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	want := sampleState()
	got, meta, err := decodeTables(encodeTables(want, 3, []uint64{42, 7, 9}))
	if err != nil {
		t.Fatal(err)
	}
	if meta.version != FormatVersion || meta.shards != 3 ||
		!reflect.DeepEqual(meta.wms, []uint64{42, 7, 9}) {
		t.Fatalf("meta = %+v", meta)
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d tables, want %d", len(got), len(want))
	}
	for name, tuples := range want {
		if len(tuples) == 0 {
			if len(got[name]) != 0 {
				t.Fatalf("table %q = %v, want empty", name, got[name])
			}
			continue
		}
		if !reflect.DeepEqual(got[name], tuples) {
			t.Fatalf("table %q = %v, want %v", name, got[name], tuples)
		}
	}
}

func TestSnapshotEncodingIsDeterministic(t *testing.T) {
	a := encodeTables(sampleState(), 2, []uint64{3, 5})
	b := encodeTables(sampleState(), 2, []uint64{3, 5})
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two encodings of the same state differ")
	}
}

func TestSnapshotDecodeRejectsCorruption(t *testing.T) {
	clean := encodeTables(sampleState(), 1, []uint64{3})
	cases := map[string][]byte{
		"empty":         {},
		"short":         clean[:10],
		"bad magic":     append([]byte("NOTASNAP"), clean[8:]...),
		"flipped byte":  flip(clean, len(clean)/2),
		"flipped crc":   flip(clean, len(clean)-1),
		"truncated":     clean[:len(clean)-9],
		"trailing data": append(append([]byte{}, clean...), 0),
	}
	for name, data := range cases {
		if _, _, err := decodeTables(data); err == nil {
			t.Errorf("%s: decode succeeded", name)
		}
	}
	// An unknown version must be refused, not guessed at. The version field
	// is inside the CRC, so rewrite it and restamp.
	vbump := append([]byte{}, clean[:len(clean)-4]...)
	vbump[8] = 99
	vbump = binary.LittleEndian.AppendUint32(vbump, crc32.Checksum(vbump, castagnoli))
	if _, _, err := decodeTables(vbump); err == nil {
		t.Error("unknown version: decode succeeded")
	}
}

// flip returns data with byte i inverted.
func flip(data []byte, i int) []byte {
	out := append([]byte{}, data...)
	out[i] ^= 0xff
	return out
}

func TestWriteReadSnapshotFile(t *testing.T) {
	dir := t.TempDir()
	// Missing file reads as an empty checkpoint with version 0.
	got, meta, err := readSnapshotFile(dir)
	if err != nil || len(got) != 0 || meta.version != 0 {
		t.Fatalf("missing file: %v, %+v, %v", got, meta, err)
	}
	if err := writeSnapshotFile(dir, sampleState(), 1, []uint64{5}, defaultOpen); err != nil {
		t.Fatal(err)
	}
	got, meta, err = readSnapshotFile(dir)
	if err != nil || meta.shards != 1 || meta.wms[0] != 5 {
		t.Fatalf("read back meta %+v, %v", meta, err)
	}
	if !reflect.DeepEqual(got["fleet"], sampleState()["fleet"]) {
		t.Fatalf("read back %v", got["fleet"])
	}
	// No staging temp file is left behind.
	if _, err := os.Stat(filepath.Join(dir, snapTmpName)); !os.IsNotExist(err) {
		t.Fatalf("staging file left behind: %v", err)
	}
	// Overwrite with different contents replaces atomically.
	if err := writeSnapshotFile(dir, map[string][]uncertain.Tuple{"solo": {{ID: "x", Score: 1, Prob: 0.5}}}, 1, []uint64{6}, defaultOpen); err != nil {
		t.Fatal(err)
	}
	got, _, err = readSnapshotFile(dir)
	if err != nil || len(got) != 1 || got["solo"][0].ID != "x" {
		t.Fatalf("after overwrite: %v, %v", got, err)
	}
}

// TestCheckpointCrashBeforeSegmentDropDoesNotDoubleApply covers the crash
// window between a checkpoint's snapshot rename and its WAL segment
// deletion: the surviving pre-watermark segment must be skipped on
// recovery, or every record it holds would apply twice (appends would
// duplicate tuples, deletes would replay against missing tables).
func TestCheckpointCrashBeforeSegmentDropDoesNotDoubleApply(t *testing.T) {
	dir := t.TempDir()
	m, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LogPut("fleet", sampleState()["fleet"][:2]); err != nil {
		t.Fatal(err)
	}
	if err := m.LogAppend("fleet", sampleState()["fleet"][2:]); err != nil {
		t.Fatal(err)
	}
	// Save the pre-checkpoint segment, checkpoint (which deletes it), then
	// restore it — exactly the state a crash between writeSnapshotFile's
	// rename and DropBefore leaves behind.
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(segs) != 1 {
		t.Fatalf("segments = %v", segs)
	}
	covered, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	tab := uncertain.NewTable()
	for _, tp := range sampleState()["fleet"] {
		tab.Add(tp)
	}
	if err := m.Checkpoint(map[string]*uncertain.Snapshot{"fleet": tab.Snapshot()}); err != nil {
		t.Fatal(err)
	}
	m.Close()
	if err := os.WriteFile(segs[0], covered, 0o644); err != nil {
		t.Fatal(err)
	}

	m2, tables, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	got := tables["fleet"].Tuples()
	if !reflect.DeepEqual(got, sampleState()["fleet"]) {
		t.Fatalf("stale segment double-applied: %v", got)
	}
	// And the stale segment was cleaned up, not left for the next boot.
	if _, err := os.Stat(segs[0]); !os.IsNotExist(err) {
		t.Fatalf("stale segment not cleaned: %v", err)
	}
}

// goldenDir copies the checked-in golden fixture into a scratch dir so
// recovery (which appends to and may truncate the WAL) cannot touch the
// fixture itself.
func goldenDir(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	entries, err := os.ReadDir(filepath.Join("testdata", "golden"))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join("testdata", "golden", e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestGoldenFixture is the format-version regression gate: the checked-in
// snapshot + WAL bytes must decode to exactly this state forever. If this
// test breaks, the reader no longer understands version-1 files written by
// older builds — bump FormatVersion and keep decoding the old one instead.
func TestGoldenFixture(t *testing.T) {
	m, tables, err := Open(goldenDir(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if info := m.ReplayInfo(); info.Truncated || info.Records != 3 {
		t.Fatalf("replay info = %+v", info)
	}
	want := map[string][]uncertain.Tuple{
		// From the checkpoint, with the WAL's append on top.
		"fleet": {
			{ID: "car1", Score: 80, Prob: 0.9},
			{ID: "car2", Score: 70, Prob: 0.4, Group: "lane3"},
			{ID: "car3", Score: 65, Prob: 0.5, Group: "lane3"},
			{ID: "car4", Score: 90, Prob: 0.7},
		},
		// Put by the WAL.
		"sensors": {
			{ID: "s1", Score: 99.5, Prob: 0.25},
			{ID: "s2", Score: 88, Prob: 0.5, Group: "pair"},
			{ID: "s3", Score: 77, Prob: 0.5, Group: "pair"},
		},
		// "radar" was in the checkpoint and deleted by the WAL.
	}
	if len(tables) != len(want) {
		t.Fatalf("recovered tables %v", keys(tables))
	}
	for name, tuples := range want {
		tab, ok := tables[name]
		if !ok {
			t.Fatalf("missing table %q", name)
		}
		if !reflect.DeepEqual(tab.Tuples(), tuples) {
			t.Fatalf("table %q = %v, want %v", name, tab.Tuples(), tuples)
		}
	}
}

func keys[V any](m map[string]V) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestGoldenTornTail asserts a torn tail and a bad mid-log CRC on the
// golden WAL are detected and cleanly truncated — recovery succeeds with
// the surviving prefix, never a mangled table.
func TestGoldenTornTail(t *testing.T) {
	t.Run("torn tail", func(t *testing.T) {
		dir := goldenDir(t)
		seg := filepath.Join(dir, "wal-00000002.seg")
		data, err := os.ReadFile(seg)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(seg, data[:len(data)-5], 0o644); err != nil {
			t.Fatal(err)
		}
		m, tables, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer m.Close()
		info := m.ReplayInfo()
		if !info.Truncated || info.Records != 2 {
			t.Fatalf("replay info = %+v", info)
		}
		// The delete was torn off: radar survives from the checkpoint.
		if _, ok := tables["radar"]; !ok {
			t.Fatalf("tables = %v", keys(tables))
		}
	})
	t.Run("bad crc", func(t *testing.T) {
		dir := goldenDir(t)
		seg := filepath.Join(dir, "wal-00000002.seg")
		data, err := os.ReadFile(seg)
		if err != nil {
			t.Fatal(err)
		}
		data[20] ^= 0xff // inside the first record's payload
		if err := os.WriteFile(seg, data, 0o644); err != nil {
			t.Fatal(err)
		}
		m, tables, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer m.Close()
		info := m.ReplayInfo()
		if !info.Truncated || info.Records != 0 {
			t.Fatalf("replay info = %+v", info)
		}
		// Only the checkpoint state survives.
		if len(tables) != 2 || tables["fleet"] == nil || tables["radar"] == nil {
			t.Fatalf("tables = %v", keys(tables))
		}
		for _, tab := range tables {
			if err := tab.Validate(); err != nil {
				t.Fatal(err)
			}
		}
	})
}

func TestManagerLogCheckpointRecover(t *testing.T) {
	dir := t.TempDir()
	m, tables, err := Open(dir, Options{Fsync: true, CheckpointEvery: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 0 {
		t.Fatalf("fresh dir recovered %v", keys(tables))
	}
	fleet := sampleState()["fleet"]
	if err := m.LogPut("fleet", fleet); err != nil {
		t.Fatal(err)
	}
	if err := m.LogAppend("fleet", []uncertain.Tuple{{ID: "car4", Score: 90, Prob: 0.7}}); err != nil {
		t.Fatal(err)
	}
	if m.CheckpointDue() {
		t.Fatal("checkpoint due after 2 of 3 records")
	}
	if err := m.LogPut("radar", sampleState()["radar"]); err != nil {
		t.Fatal(err)
	}
	if !m.CheckpointDue() {
		t.Fatal("checkpoint not due after 3 records")
	}

	// Crash before any checkpoint: the WAL alone recovers everything.
	m.Close()
	m2, tables, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 || tables["fleet"].Len() != 4 {
		t.Fatalf("recovered %v", keys(tables))
	}

	// Checkpoint, then crash: the snapshot alone recovers everything and
	// the WAL is truncated behind it.
	states := map[string]*uncertain.Snapshot{
		"fleet": tables["fleet"].Snapshot(),
		"radar": tables["radar"].Snapshot(),
	}
	if err := m2.Checkpoint(states); err != nil {
		t.Fatal(err)
	}
	st := m2.Stats()
	if st.Checkpoints != 1 || st.RecordsSinceCheckpoint != 0 || st.LastCheckpointNanos <= 0 {
		t.Fatalf("stats after checkpoint = %+v", st)
	}
	if err := m2.LogDelete("radar"); err != nil { // one post-checkpoint record
		t.Fatal(err)
	}
	m2.Close()
	m3, tables, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer m3.Close()
	if info := m3.ReplayInfo(); info.Records != 1 {
		t.Fatalf("replay info after checkpoint = %+v", info)
	}
	if len(tables) != 1 || tables["fleet"].Len() != 4 {
		t.Fatalf("recovered %v", keys(tables))
	}
	if err := tables["fleet"].Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRecoveredIdentitiesAreFresh(t *testing.T) {
	dir := t.TempDir()
	m, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LogPut("fleet", sampleState()["fleet"]); err != nil {
		t.Fatal(err)
	}
	m.Close()
	m2, tables1, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m2.Close()
	m3, tables2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m3.Close()
	s1, s2 := tables1["fleet"].Snapshot(), tables2["fleet"].Snapshot()
	if s1.ID() == s2.ID() || s1.Owner() == s2.Owner() {
		t.Fatalf("recovered identities collide: %d/%d owner %d/%d", s1.ID(), s2.ID(), s1.Owner(), s2.Owner())
	}
}
