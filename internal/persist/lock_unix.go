//go:build unix

package persist

import (
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// lockDataDir takes an exclusive advisory flock on dir/.lock, refusing to
// share a data directory with another live process: two writers appending
// to one WAL interleave frames byte-wise and delete each other's segments
// at checkpoint — corruption discovered only at the next recovery. The
// lock dies with the process (kernel-released on close or crash), so a
// kill -9 never wedges a restart. The caller closes the returned file to
// release.
func lockDataDir(dir string) (*os.File, error) {
	path := filepath.Join(dir, ".lock")
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("persist: data dir %s is locked by another process (%v)", dir, err)
	}
	return f, nil
}
