//go:build unix

package persist

import (
	"strings"
	"testing"
)

// TestDataDirSingleWriter: a second live Manager on the same data dir must
// be refused — two writers would interleave frames into one segment and
// delete each other's segments at checkpoint — and the lock must die with
// the holder, so a crash (Close) never wedges the successor.
func TestDataDirSingleWriter(t *testing.T) {
	dir := t.TempDir()
	m1, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, Options{}); err == nil || !strings.Contains(err.Error(), "locked") {
		t.Fatalf("second Open on a live dir: %v, want lock refusal", err)
	}
	m1.Close()
	m2, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open after the holder died: %v", err)
	}
	m2.Close()
}
