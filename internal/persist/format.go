// Package persist makes hosted tables durable: it pairs a snapshot file —
// a full checkpoint of every table's frozen contents — with the
// write-ahead log of internal/wal, and recovers their union on boot.
//
// # Snapshot file format (version 1)
//
// One file, checkpoint.snap, holds every table of a checkpoint:
//
//	8 bytes  magic "PTKSNAPS"
//	uint32   format version (little-endian, currently 1)
//	uvarint  WAL watermark: the first WAL segment sequence number whose
//	         records are NOT covered by this snapshot (wal.Options
//	         .MinSegment on recovery — older segments would double-apply)
//	uvarint  table count
//	  per table, in ascending name order:
//	  string   table name
//	  — ME-group section —
//	  uvarint  group count
//	  string…  group names, in order of first appearance
//	  — tuple section —
//	  uvarint  tuple count
//	    per tuple, in insertion order:
//	    string   id
//	    uvarint  group reference: 0 = independent, g+1 = groups[g]
//	    uint64   score bits (math.Float64bits, little-endian)
//	    uint64   probability bits
//	uint32   CRC32C (Castagnoli) of everything above
//
// Strings are uvarint length prefixes followed by raw bytes. The group
// section exists so repeated ME-group keys are stored once and the tuple
// rows stay fixed-width apart from their ids.
//
// The file is written to a temporary name, fsynced, and atomically renamed
// over the previous checkpoint, so a crash mid-checkpoint leaves the old
// snapshot (and the not-yet-truncated WAL) intact. The format is pinned by
// the golden files under testdata/golden: readers of today must decode
// them forever.
package persist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sort"

	"probtopk/internal/uncertain"
	"probtopk/internal/wal"
)

// snapMagic opens every snapshot file.
const snapMagic = "PTKSNAPS"

// FormatVersion is the snapshot format this package writes. Readers accept
// exactly the versions they know; an unknown version is an error, never a
// guess.
const FormatVersion = 1

// SnapshotFileName is the checkpoint file inside a data directory.
const SnapshotFileName = "checkpoint.snap"

// snapTmpName is the scratch name a checkpoint is staged under before the
// atomic rename.
const snapTmpName = "checkpoint.snap.tmp"

// maxSnapStringBytes bounds any string in a snapshot file.
const maxSnapStringBytes = 1 << 20

// castagnoli is the shared CRC32C table.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// encodeTables serializes tables deterministically (names sorted), with
// the WAL watermark, checksum included.
func encodeTables(tables map[string][]uncertain.Tuple, walSeq uint64) []byte {
	names := make([]string, 0, len(tables))
	for name := range tables {
		names = append(names, name)
	}
	sort.Strings(names)

	buf := []byte(snapMagic)
	buf = binary.LittleEndian.AppendUint32(buf, FormatVersion)
	buf = binary.AppendUvarint(buf, walSeq)
	buf = binary.AppendUvarint(buf, uint64(len(names)))
	for _, name := range names {
		buf = appendString(buf, name)
		tuples := tables[name]
		// ME-group section: distinct group keys in first-appearance order.
		var groups []string
		groupRef := make(map[string]uint64)
		for _, tp := range tuples {
			if tp.Group != "" {
				if _, ok := groupRef[tp.Group]; !ok {
					groupRef[tp.Group] = uint64(len(groups))
					groups = append(groups, tp.Group)
				}
			}
		}
		buf = binary.AppendUvarint(buf, uint64(len(groups)))
		for _, g := range groups {
			buf = appendString(buf, g)
		}
		// Tuple section.
		buf = binary.AppendUvarint(buf, uint64(len(tuples)))
		for _, tp := range tuples {
			buf = appendString(buf, tp.ID)
			ref := uint64(0)
			if tp.Group != "" {
				ref = groupRef[tp.Group] + 1
			}
			buf = binary.AppendUvarint(buf, ref)
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(tp.Score))
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(tp.Prob))
		}
	}
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, castagnoli))
}

// decodeTables parses a snapshot file's full contents. It is defensive —
// arbitrary bytes must produce an error, never a panic or a huge
// allocation — but it does not validate the data model; callers vet the
// tuples with uncertain.ValidateTuples before serving them.
func decodeTables(data []byte) (map[string][]uncertain.Tuple, uint64, error) {
	if len(data) < len(snapMagic)+4+4 {
		return nil, 0, errors.New("persist: snapshot file too short")
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.Checksum(body, castagnoli) != binary.LittleEndian.Uint32(tail) {
		return nil, 0, errors.New("persist: snapshot checksum mismatch")
	}
	if string(body[:len(snapMagic)]) != snapMagic {
		return nil, 0, errors.New("persist: bad snapshot magic")
	}
	if v := binary.LittleEndian.Uint32(body[len(snapMagic):]); v != FormatVersion {
		return nil, 0, fmt.Errorf("persist: unsupported snapshot format version %d (have %d)", v, FormatVersion)
	}
	d := wal.Decoder{Buf: body[len(snapMagic)+4:], Prefix: "persist"}
	walSeq := d.Uvarint()
	nTables := d.Uvarint()
	tables := make(map[string][]uncertain.Tuple)
	for i := uint64(0); i < nTables && d.Err() == nil; i++ {
		name := d.String(maxSnapStringBytes)
		if _, dup := tables[name]; dup {
			d.Fail("duplicate table %q", name)
			break
		}
		nGroups := d.Uvarint()
		if d.Err() == nil && nGroups > uint64(len(d.Buf))+1 {
			d.Fail("group count %d exceeds payload", nGroups)
			break
		}
		groups := make([]string, 0, min(nGroups, 1024))
		for g := uint64(0); g < nGroups && d.Err() == nil; g++ {
			groups = append(groups, d.String(maxSnapStringBytes))
		}
		nTuples := d.Uvarint()
		// A tuple costs at least 18 encoded bytes (id prefix, group ref,
		// two float64s), so a lying count cannot force a huge allocation.
		if d.Err() == nil && nTuples > uint64(len(d.Buf))/18+1 {
			d.Fail("tuple count %d exceeds payload", nTuples)
			break
		}
		var tuples []uncertain.Tuple
		if d.Err() == nil && nTuples > 0 {
			tuples = make([]uncertain.Tuple, 0, nTuples)
		}
		for j := uint64(0); j < nTuples && d.Err() == nil; j++ {
			tp := uncertain.Tuple{ID: d.String(maxSnapStringBytes)}
			ref := d.Uvarint()
			if d.Err() == nil && ref > 0 {
				if ref > uint64(len(groups)) {
					d.Fail("group reference %d out of range", ref)
					break
				}
				tp.Group = groups[ref-1]
			}
			tp.Score = math.Float64frombits(d.Uint64())
			tp.Prob = math.Float64frombits(d.Uint64())
			if d.Err() == nil {
				tuples = append(tuples, tp)
			}
		}
		if d.Err() == nil {
			tables[name] = tuples
		}
	}
	if err := d.Err(); err != nil {
		return nil, 0, err
	}
	if len(d.Buf) != 0 {
		return nil, 0, fmt.Errorf("persist: %d trailing snapshot bytes", len(d.Buf))
	}
	return tables, walSeq, nil
}

// openFunc opens a file for writing; see Options.OpenFile.
type openFunc func(path string, flag int, perm os.FileMode) (wal.File, error)

// defaultOpen is the real-filesystem openFunc.
func defaultOpen(path string, flag int, perm os.FileMode) (wal.File, error) {
	return os.OpenFile(path, flag, perm)
}

// writeSnapshotFile stages the encoded tables under a temporary name and
// atomically renames it over the checkpoint file. The staged file is
// ALWAYS fsynced before the rename (and the directory after), whatever the
// WAL's fsync policy: the WAL behind a committed checkpoint is deleted, so
// an un-flushed checkpoint surviving its rename would be an unrecoverable
// corruption, not merely a lost suffix. Checkpoints are rare; the sync is
// cheap insurance.
func writeSnapshotFile(dir string, tables map[string][]uncertain.Tuple, walSeq uint64, open openFunc) error {
	data := encodeTables(tables, walSeq)
	tmp := filepath.Join(dir, snapTmpName)
	f, err := open(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("persist: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("persist: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("persist: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, SnapshotFileName)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("persist: %w", err)
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// readSnapshotFile loads the checkpoint file of dir, returning the tables
// and the WAL watermark. A missing file is an empty checkpoint, not an
// error; a present-but-corrupt file IS an error — the WAL behind a
// checkpoint was deleted, so there is no safe fallback and the operator
// must intervene.
func readSnapshotFile(dir string) (map[string][]uncertain.Tuple, uint64, error) {
	data, err := os.ReadFile(filepath.Join(dir, SnapshotFileName))
	if errors.Is(err, os.ErrNotExist) {
		return map[string][]uncertain.Tuple{}, 0, nil
	}
	if err != nil {
		return nil, 0, fmt.Errorf("persist: %w", err)
	}
	return decodeTables(data)
}

// appendString aliases the string framing shared with the WAL codec.
func appendString(buf []byte, s string) []byte { return wal.AppendString(buf, s) }
