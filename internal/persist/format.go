// Package persist makes hosted tables durable: it pairs a snapshot file —
// a full checkpoint of every table's frozen contents — with the sharded
// write-ahead logs of internal/wal, and recovers their union on boot.
//
// # Snapshot file format (version 2)
//
// One file, checkpoint.snap, holds every table of a checkpoint:
//
//	8 bytes  magic "PTKSNAPS"
//	uint32   format version (little-endian, currently 2)
//	uvarint  WAL shard count N (tables are routed by ShardOf(name, N);
//	         shard i's log owns the segments named wal-sNN-%08d.seg)
//	uvarint  per shard, N times: the shard's WAL watermark — the first
//	         segment sequence number of that shard whose records are NOT
//	         covered by this snapshot (wal.Options.MinSegment on recovery;
//	         older segments would double-apply)
//	uvarint  table count
//	  per table, in ascending name order:
//	  string   table name
//	  — ME-group section —
//	  uvarint  group count
//	  string…  group names, in order of first appearance
//	  — tuple section —
//	  uvarint  tuple count
//	    per tuple, in insertion order:
//	    string   id
//	    uvarint  group reference: 0 = independent, g+1 = groups[g]
//	    uint64   score bits (math.Float64bits, little-endian)
//	    uint64   probability bits
//	uint32   CRC32C (Castagnoli) of everything above
//
// Version 1 — written by unsharded builds — is identical except that the
// shard-count field is absent and a single watermark follows the version:
// its one log owns the unprefixed wal-%08d.seg segments. Readers accept
// both versions forever; Open upgrades a version-1 directory in place (see
// Manager).
//
// Strings are uvarint length prefixes followed by raw bytes. The group
// section exists so repeated ME-group keys are stored once and the tuple
// rows stay fixed-width apart from their ids.
//
// The file is written to a temporary name, fsynced, and atomically renamed
// over the previous checkpoint, so a crash mid-checkpoint leaves the old
// snapshot (and the not-yet-truncated WALs) intact. The formats are pinned
// by the golden files under testdata/golden (v1) and testdata/golden-v2:
// readers of today must decode them forever.
package persist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"probtopk/internal/uncertain"
	"probtopk/internal/wal"
)

// snapMagic opens every snapshot file.
const snapMagic = "PTKSNAPS"

// FormatVersion is the snapshot format this package writes. Readers accept
// exactly the versions they know (1 and 2); an unknown version is an
// error, never a guess.
const FormatVersion = 2

// formatV1 is the unsharded legacy format: one watermark, one unprefixed
// WAL. Still readable forever; never written anymore.
const formatV1 = 1

// MaxShards bounds the WAL shard count, both configured and claimed by a
// snapshot file (a hostile count must not force 2^60 allocations or
// file creations).
const MaxShards = 256

// SnapshotFileName is the checkpoint file inside a data directory.
const SnapshotFileName = "checkpoint.snap"

// snapTmpName is the scratch name a checkpoint is staged under before the
// atomic rename.
const snapTmpName = "checkpoint.snap.tmp"

// maxSnapStringBytes bounds any string in a snapshot file.
const maxSnapStringBytes = 1 << 20

// castagnoli is the shared CRC32C table.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ShardOf routes a table name to its WAL shard: fnv-1a of the name modulo
// the shard count. Every layer that partitions by table — the WAL shards
// here, the server's registry shards and per-shard durability mutexes —
// uses this one function, so a table's records always live in exactly one
// shard's log.
func ShardOf(name string, shards int) int {
	if shards <= 1 {
		return 0
	}
	h := fnv.New32a()
	h.Write([]byte(name))
	return int(h.Sum32() % uint32(shards))
}

// shardPrefix is the segment-name prefix of shard i's log (wal-s03- for
// shard 3), distinct per shard and never colliding with the legacy
// unprefixed wal- namespace (its sequence digits never start with 's').
func shardPrefix(i int) string {
	return fmt.Sprintf("wal-s%02d-", i)
}

// parseShardSegment reports which shard owns the segment file named base,
// or ok=false for anything that is not a shard-prefixed segment (legacy
// wal-%08d.seg files, the snapshot file, strangers).
func parseShardSegment(base string) (shard int, ok bool) {
	rest, found := strings.CutPrefix(base, "wal-s")
	if !found {
		return 0, false
	}
	i := strings.IndexByte(rest, '-')
	if i <= 0 {
		return 0, false
	}
	shard64, err := strconv.ParseUint(rest[:i], 10, 16)
	if err != nil {
		return 0, false
	}
	if _, ok := wal.SeqFromName(base, shardPrefix(int(shard64))); !ok {
		return 0, false
	}
	return int(shard64), true
}

// snapMeta is a snapshot file's header: its format version, the WAL shard
// count it was written under, and one watermark per shard. version 0 means
// "no snapshot file" (a fresh or legacy-WAL-only directory).
type snapMeta struct {
	version uint32
	shards  int
	wms     []uint64 // len == shards
}

// encodeTables serializes tables deterministically (names sorted), with
// the shard count and per-shard WAL watermarks, checksum included. Always
// writes the current format version.
func encodeTables(tables map[string][]uncertain.Tuple, shards int, wms []uint64) []byte {
	names := make([]string, 0, len(tables))
	for name := range tables {
		names = append(names, name)
	}
	sort.Strings(names)

	buf := []byte(snapMagic)
	buf = binary.LittleEndian.AppendUint32(buf, FormatVersion)
	buf = binary.AppendUvarint(buf, uint64(shards))
	for _, wm := range wms {
		buf = binary.AppendUvarint(buf, wm)
	}
	buf = binary.AppendUvarint(buf, uint64(len(names)))
	for _, name := range names {
		buf = appendString(buf, name)
		tuples := tables[name]
		// ME-group section: distinct group keys in first-appearance order.
		var groups []string
		groupRef := make(map[string]uint64)
		for _, tp := range tuples {
			if tp.Group != "" {
				if _, ok := groupRef[tp.Group]; !ok {
					groupRef[tp.Group] = uint64(len(groups))
					groups = append(groups, tp.Group)
				}
			}
		}
		buf = binary.AppendUvarint(buf, uint64(len(groups)))
		for _, g := range groups {
			buf = appendString(buf, g)
		}
		// Tuple section.
		buf = binary.AppendUvarint(buf, uint64(len(tuples)))
		for _, tp := range tuples {
			buf = appendString(buf, tp.ID)
			ref := uint64(0)
			if tp.Group != "" {
				ref = groupRef[tp.Group] + 1
			}
			buf = binary.AppendUvarint(buf, ref)
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(tp.Score))
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(tp.Prob))
		}
	}
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, castagnoli))
}

// decodeTables parses a snapshot file's full contents — either format
// version. It is defensive — arbitrary bytes must produce an error, never
// a panic or a huge allocation — but it does not validate the data model;
// callers vet the tuples with uncertain.ValidateTuples before serving
// them.
func decodeTables(data []byte) (map[string][]uncertain.Tuple, snapMeta, error) {
	var meta snapMeta
	if len(data) < len(snapMagic)+4+4 {
		return nil, meta, errors.New("persist: snapshot file too short")
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.Checksum(body, castagnoli) != binary.LittleEndian.Uint32(tail) {
		return nil, meta, errors.New("persist: snapshot checksum mismatch")
	}
	if string(body[:len(snapMagic)]) != snapMagic {
		return nil, meta, errors.New("persist: bad snapshot magic")
	}
	meta.version = binary.LittleEndian.Uint32(body[len(snapMagic):])
	if meta.version != formatV1 && meta.version != FormatVersion {
		return nil, meta, fmt.Errorf("persist: unsupported snapshot format version %d (have %d)", meta.version, FormatVersion)
	}
	d := wal.Decoder{Buf: body[len(snapMagic)+4:], Prefix: "persist"}
	if meta.version == formatV1 {
		// v1: one unsharded log, a single watermark.
		meta.shards = 1
		meta.wms = []uint64{d.Uvarint()}
	} else {
		shards := d.Uvarint()
		if d.Err() == nil && (shards < 1 || shards > MaxShards) {
			d.Fail("shard count %d out of range [1, %d]", shards, MaxShards)
		}
		if d.Err() == nil {
			meta.shards = int(shards)
			meta.wms = make([]uint64, meta.shards)
			for i := range meta.wms {
				meta.wms[i] = d.Uvarint()
			}
		}
	}
	nTables := d.Uvarint()
	tables := make(map[string][]uncertain.Tuple)
	for i := uint64(0); i < nTables && d.Err() == nil; i++ {
		name := d.String(maxSnapStringBytes)
		if _, dup := tables[name]; dup {
			d.Fail("duplicate table %q", name)
			break
		}
		nGroups := d.Uvarint()
		if d.Err() == nil && nGroups > uint64(len(d.Buf))+1 {
			d.Fail("group count %d exceeds payload", nGroups)
			break
		}
		groups := make([]string, 0, min(nGroups, 1024))
		for g := uint64(0); g < nGroups && d.Err() == nil; g++ {
			groups = append(groups, d.String(maxSnapStringBytes))
		}
		nTuples := d.Uvarint()
		// A tuple costs at least 18 encoded bytes (id prefix, group ref,
		// two float64s), so a lying count cannot force a huge allocation.
		if d.Err() == nil && nTuples > uint64(len(d.Buf))/18+1 {
			d.Fail("tuple count %d exceeds payload", nTuples)
			break
		}
		var tuples []uncertain.Tuple
		if d.Err() == nil && nTuples > 0 {
			tuples = make([]uncertain.Tuple, 0, nTuples)
		}
		for j := uint64(0); j < nTuples && d.Err() == nil; j++ {
			tp := uncertain.Tuple{ID: d.String(maxSnapStringBytes)}
			ref := d.Uvarint()
			if d.Err() == nil && ref > 0 {
				if ref > uint64(len(groups)) {
					d.Fail("group reference %d out of range", ref)
					break
				}
				tp.Group = groups[ref-1]
			}
			tp.Score = math.Float64frombits(d.Uint64())
			tp.Prob = math.Float64frombits(d.Uint64())
			if d.Err() == nil {
				tuples = append(tuples, tp)
			}
		}
		if d.Err() == nil {
			tables[name] = tuples
		}
	}
	if err := d.Err(); err != nil {
		return nil, meta, err
	}
	if len(d.Buf) != 0 {
		return nil, meta, fmt.Errorf("persist: %d trailing snapshot bytes", len(d.Buf))
	}
	return tables, meta, nil
}

// openFunc opens a file for writing; see Options.OpenFile.
type openFunc func(path string, flag int, perm os.FileMode) (wal.File, error)

// defaultOpen is the real-filesystem openFunc.
func defaultOpen(path string, flag int, perm os.FileMode) (wal.File, error) {
	return os.OpenFile(path, flag, perm)
}

// writeSnapshotFile stages the encoded tables under a temporary name and
// atomically renames it over the checkpoint file. The staged file is
// ALWAYS fsynced before the rename (and the directory after), whatever the
// WAL's fsync policy: the WAL behind a committed checkpoint is deleted, so
// an un-flushed checkpoint surviving its rename would be an unrecoverable
// corruption, not merely a lost suffix. Checkpoints are rare; the sync is
// cheap insurance.
func writeSnapshotFile(dir string, tables map[string][]uncertain.Tuple, shards int, wms []uint64, open openFunc) error {
	data := encodeTables(tables, shards, wms)
	tmp := filepath.Join(dir, snapTmpName)
	f, err := open(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("persist: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("persist: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("persist: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, SnapshotFileName)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("persist: %w", err)
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// readSnapshotFile loads the checkpoint file of dir, returning the tables
// and the snapshot's header (version, shard count, watermarks). A missing
// file is an empty checkpoint with meta.version 0, not an error; a
// present-but-corrupt file IS an error — the WAL behind a checkpoint was
// deleted, so there is no safe fallback and the operator must intervene.
func readSnapshotFile(dir string) (map[string][]uncertain.Tuple, snapMeta, error) {
	data, err := os.ReadFile(filepath.Join(dir, SnapshotFileName))
	if errors.Is(err, os.ErrNotExist) {
		return map[string][]uncertain.Tuple{}, snapMeta{}, nil
	}
	if err != nil {
		return nil, snapMeta{}, fmt.Errorf("persist: %w", err)
	}
	return decodeTables(data)
}

// ReadCheckpoint loads dir's checkpoint file for replication catch-up: the
// tables it holds, the WAL shard count it was written under, and the
// per-shard watermarks (the first segment sequence whose records the
// snapshot does NOT cover). Safe to call while the owning manager keeps
// serving — checkpoints replace the file with an atomic rename, so a read
// sees either the old complete file or the new complete file, never a
// partial one. A missing file (possible only before the manager's first
// Open finished migrating the directory) returns shards == 0.
func ReadCheckpoint(dir string) (tables map[string][]uncertain.Tuple, shards int, wms []uint64, err error) {
	tables, meta, err := readSnapshotFile(dir)
	if err != nil {
		return nil, 0, nil, err
	}
	if meta.version == 0 {
		return tables, 0, nil, nil
	}
	return tables, meta.shards, meta.wms, nil
}

// appendString aliases the string framing shared with the WAL codec.
func appendString(buf []byte, s string) []byte { return wal.AppendString(buf, s) }
