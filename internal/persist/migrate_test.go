package persist

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"probtopk/internal/persist/crashtest"
	"probtopk/internal/uncertain"
)

// goldenTables is the state the v1 golden fixture recovers to (checkpoint
// plus its WAL's put/append/delete).
func goldenTables() map[string][]uncertain.Tuple {
	return map[string][]uncertain.Tuple{
		"fleet": {
			{ID: "car1", Score: 80, Prob: 0.9},
			{ID: "car2", Score: 70, Prob: 0.4, Group: "lane3"},
			{ID: "car3", Score: 65, Prob: 0.5, Group: "lane3"},
			{ID: "car4", Score: 90, Prob: 0.7},
		},
		"sensors": {
			{ID: "s1", Score: 99.5, Prob: 0.25},
			{ID: "s2", Score: 88, Prob: 0.5, Group: "pair"},
			{ID: "s3", Score: 77, Prob: 0.5, Group: "pair"},
		},
	}
}

// checkTables asserts the recovered tables match want exactly.
func checkTables(t *testing.T, tables map[string]*uncertain.Table, want map[string][]uncertain.Tuple) {
	t.Helper()
	if len(tables) != len(want) {
		t.Fatalf("recovered tables %v, want %v", keys(tables), keys(want))
	}
	for name, tuples := range want {
		tab, ok := tables[name]
		if !ok {
			t.Fatalf("missing table %q", name)
		}
		if !reflect.DeepEqual(tab.Tuples(), tuples) {
			t.Fatalf("table %q = %v, want %v", name, tab.Tuples(), tuples)
		}
	}
}

// walFiles lists the segment files of dir, sorted.
func walFiles(t *testing.T, dir string) []string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range matches {
		matches[i] = filepath.Base(m)
	}
	sort.Strings(matches)
	return matches
}

// TestGoldenV1UpgradesInPlace is the golden v1→v2 upgrade gate: opening
// the frozen format-v1 fixture must recover its tables, rewrite the
// directory as format v2 — byte-identical to the checked-in golden-v2
// fixture — and remove the legacy layout. A second open takes the
// non-migrating path and serves the same tables.
func TestGoldenV1UpgradesInPlace(t *testing.T) {
	dir := goldenDir(t)
	m, tables, err := Open(dir, Options{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	if info := m.ReplayInfo(); info.Truncated || info.Records != 3 {
		t.Fatalf("replay info = %+v", info)
	}
	checkTables(t, tables, goldenTables())
	m.Close()

	// The directory is now exactly the golden-v2 fixture: the migrated
	// snapshot and one empty shard-0 segment at the watermark.
	if got := walFiles(t, dir); !reflect.DeepEqual(got, []string{"wal-s00-00000001.seg"}) {
		t.Fatalf("post-migration segments = %v", got)
	}
	gotSnap, err := os.ReadFile(filepath.Join(dir, SnapshotFileName))
	if err != nil {
		t.Fatal(err)
	}
	wantSnap, err := os.ReadFile(filepath.Join("testdata", "golden-v2", SnapshotFileName))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotSnap, wantSnap) {
		t.Fatalf("migrated snapshot differs from the golden-v2 fixture (%d vs %d bytes)", len(gotSnap), len(wantSnap))
	}

	m2, tables, err := Open(dir, Options{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if info := m2.ReplayInfo(); info.Truncated || info.Records != 0 {
		t.Fatalf("second open replayed %+v, want nothing (all checkpointed)", info)
	}
	checkTables(t, tables, goldenTables())
}

// TestGoldenV2Fixture pins the v2 format the way TestGoldenFixture pins
// v1: the checked-in golden-v2 bytes must decode to exactly this state
// forever.
func TestGoldenV2Fixture(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "golden-v2", SnapshotFileName))
	if err != nil {
		t.Fatal(err)
	}
	state, meta, err := decodeTables(data)
	if err != nil {
		t.Fatal(err)
	}
	if meta.version != 2 || meta.shards != 1 || !reflect.DeepEqual(meta.wms, []uint64{1}) {
		t.Fatalf("golden-v2 meta = %+v", meta)
	}
	if !reflect.DeepEqual(state, goldenTables()) {
		t.Fatalf("golden-v2 state = %v", state)
	}
}

// TestMigrationAcrossShardCounts drives the same directory through 1 → 4
// → 2 shards with mutations in every life: recovery must carry the full
// state across every reshard, and each life's mutations must land in its
// own layout's shard logs.
func TestMigrationAcrossShardCounts(t *testing.T) {
	dir := t.TempDir()
	want := map[string][]uncertain.Tuple{}
	tuple := func(i int) uncertain.Tuple {
		return uncertain.Tuple{ID: fmt.Sprintf("t%d", i), Score: float64(10 + i), Prob: 0.5}
	}
	serial := 0
	for life, shards := range []int{1, 4, 2} {
		m, tables, err := Open(dir, Options{Shards: shards})
		if err != nil {
			t.Fatalf("life %d (shards=%d): %v", life, shards, err)
		}
		if m.Shards() != shards {
			t.Fatalf("life %d: Shards() = %d, want %d", life, m.Shards(), shards)
		}
		checkTables(t, tables, want)
		// Mutate a handful of tables chosen to spread across shards.
		for i := 0; i < 6; i++ {
			name := fmt.Sprintf("tab%d", i)
			serial++
			tp := tuple(serial)
			if _, ok := want[name]; !ok {
				if err := m.LogPut(name, []uncertain.Tuple{tp}); err != nil {
					t.Fatal(err)
				}
				want[name] = []uncertain.Tuple{tp}
			} else {
				if err := m.LogAppend(name, []uncertain.Tuple{tp}); err != nil {
					t.Fatal(err)
				}
				want[name] = append(want[name], tp)
			}
		}
		m.Close()
		// Every segment on disk belongs to the current layout.
		for _, base := range walFiles(t, dir) {
			shard, ok := parseShardSegment(base)
			if !ok || shard >= shards {
				t.Fatalf("life %d (shards=%d): stray segment %q", life, shards, base)
			}
		}
	}
	// A final healthy open under yet another count sees everything.
	m, tables, err := Open(dir, Options{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	checkTables(t, tables, want)
}

// TestMigrationCrashSweep injects a write failure at every byte offset of
// the v1→4-shard migration and asserts the invariant the bugfix demands:
// whatever the crash point, the directory stays readable — by the old
// layout before the snapshot commit, by the new one after — and recovers
// exactly the golden tables. No budget may leave it readable by neither
// version.
func TestMigrationCrashSweep(t *testing.T) {
	// A zero-budget open fails before writing anything; generous budgets
	// cover every boundary: four 8-byte segment magics, then the staged
	// snapshot (~200 bytes), written in that order.
	for budget := int64(0); budget <= 300; budget += 5 {
		dir := goldenDir(t)
		b := crashtest.NewBudget(budget)
		m, tables, err := Open(dir, Options{Shards: 4, OpenFile: b.OpenFile})
		if err == nil {
			// Enough budget: the migration committed in full.
			checkTables(t, tables, goldenTables())
			m.Close()
		} else if !b.Tripped() {
			t.Fatalf("budget %d: open failed without tripping: %v", budget, err)
		}
		// The recovery after the crash must always see the golden state,
		// whichever side of the commit point the crash fell on.
		m2, tables, err := Open(dir, Options{Shards: 4})
		if err != nil {
			t.Fatalf("budget %d: post-crash recovery failed: %v", budget, err)
		}
		checkTables(t, tables, goldenTables())
		m2.Close()
	}
}

// TestMigrationCrashAfterCommitCleansLegacy covers the window between the
// migration's snapshot rename and its deletion of the old layout: restore
// the legacy segment after a completed migration and recovery must ignore
// and remove it — replaying it would double-apply every record.
func TestMigrationCrashAfterCommitCleansLegacy(t *testing.T) {
	dir := goldenDir(t)
	legacy, err := os.ReadFile(filepath.Join(dir, "wal-00000002.seg"))
	if err != nil {
		t.Fatal(err)
	}
	m, _, err := Open(dir, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	m.Close()
	// The crash left the committed v2 snapshot AND the legacy segment.
	if err := os.WriteFile(filepath.Join(dir, "wal-00000002.seg"), legacy, 0o644); err != nil {
		t.Fatal(err)
	}
	m2, tables, err := Open(dir, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if info := m2.ReplayInfo(); info.Records != 0 {
		t.Fatalf("legacy leftovers replayed: %+v", info)
	}
	checkTables(t, tables, goldenTables())
	if _, err := os.Stat(filepath.Join(dir, "wal-00000002.seg")); !os.IsNotExist(err) {
		t.Fatal("legacy segment not cleaned after committed migration")
	}
}

// TestShardRouting pins ShardOf's contract: deterministic, in range, and
// collectively covering every shard for small counts (the CI smoke and
// benchmarks rely on finding names for each shard).
func TestShardRouting(t *testing.T) {
	if got := ShardOf("anything", 1); got != 0 {
		t.Fatalf("ShardOf(_, 1) = %d", got)
	}
	for _, shards := range []int{2, 4, 8} {
		seen := make(map[int]bool)
		for i := 0; i < 64*shards; i++ {
			s := ShardOf(fmt.Sprintf("table%d", i), shards)
			if s < 0 || s >= shards {
				t.Fatalf("ShardOf out of range: %d of %d", s, shards)
			}
			seen[s] = true
		}
		if len(seen) != shards {
			t.Fatalf("%d shards: only %d reached", shards, len(seen))
		}
	}
}
