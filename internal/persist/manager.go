package persist

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"probtopk/internal/uncertain"
	"probtopk/internal/wal"
)

// Options tune a Manager. The zero value fsyncs nothing, never
// auto-checkpoints, runs one WAL shard, and uses the default WAL segment
// size.
type Options struct {
	// Fsync makes every logged mutation (and every checkpoint) fsync before
	// it is acknowledged. Off, the OS flushes when it likes: a crash may
	// lose the most recent acknowledged mutations, but recovery still
	// yields a clean earlier state.
	Fsync bool
	// BatchFsync (with Fsync) group-commits: concurrent mutations logged to
	// the same shard share fsyncs (wal.SyncBatch) instead of paying one
	// each. The durability contract is unchanged — an acknowledged mutation
	// is fsynced before the Log* call returns — only the cost is amortized.
	// Ignored when Fsync is off.
	BatchFsync bool
	// MaxBatchDelay (with BatchFsync) is how long a shard's group-commit
	// batcher lingers collecting more records to share an fsync; 0 batches
	// opportunistically (whatever queued during the previous fsync). It
	// bounds the worst-case latency a mutation can see beyond its own
	// write+fsync.
	MaxBatchDelay time.Duration
	// CheckpointEvery marks a checkpoint as due after this many logged
	// records (summed across shards). <= 0 means checkpoints happen only
	// when the caller asks.
	CheckpointEvery int
	// SegmentBytes is the WAL segment-rotation threshold; 0 = the WAL
	// default.
	SegmentBytes int64
	// Shards is the number of independent WAL shards; <= 0 means 1 (the
	// unsharded behavior). Mutations are routed to shard
	// ShardOf(tableName, Shards), each shard owns its own segment files
	// (wal-sNN-%08d.seg) and its own lock, so durable mutations of tables
	// on different shards never serialize against each other. Open adopts
	// the directory's layout to this count, migrating in place when they
	// differ (see Open).
	Shards int
	// OpenFile opens files for writing (WAL segments and staged
	// snapshots). nil means os.OpenFile; tests inject failures here.
	OpenFile func(path string, flag int, perm os.FileMode) (wal.File, error)
}

// ShardStats is one WAL shard's slice of a Manager's counters.
type ShardStats struct {
	WAL                    wal.Stats
	RecordsSinceCheckpoint int
}

// Stats is a snapshot of a Manager's counters for /debug/stats. The WAL
// and RecordsSinceCheckpoint fields aggregate across shards; Shards breaks
// them down per shard.
type Stats struct {
	WAL                    wal.Stats
	RecordsSinceCheckpoint int
	Checkpoints            uint64
	CheckpointErrors       uint64
	// LastCheckpointNanos is the wall-clock cost of the most recent
	// successful checkpoint.
	LastCheckpointNanos int64
	// ReplayedRecords and ReplayTruncated describe the boot-time recovery.
	ReplayedRecords int
	ReplayTruncated bool
	Shards          []ShardStats
}

// managerShard is one WAL shard: its log and the count of records logged
// to it since the last checkpoint. The log carries its own mutex; since is
// atomic, so logging to one shard never touches another shard's state.
type managerShard struct {
	log   *wal.Log
	since atomic.Int64
}

// Manager is the durability backend for a table registry: it logs every
// mutation to the table's WAL shard before the caller publishes it, and
// checkpoints the full registry into a snapshot file, truncating every
// shard's WAL behind it. A Manager is safe for concurrent use — mutations
// of tables on different shards proceed in parallel — but the caller must
// still order logging before publication per mutation (internal/server
// holds a per-shard durability mutex across both).
type Manager struct {
	dir     string
	opts    Options
	nshards int
	lock    *os.File // held flock on the data dir; nil on non-unix
	shards  []*managerShard
	replay  wal.ReplayInfo

	// ckptMu serializes checkpoints against each other (appends never take
	// it).
	ckptMu              sync.Mutex
	checkpoints         atomic.Uint64
	checkpointErrors    atomic.Uint64
	lastCheckpointNanos atomic.Int64
}

// Open recovers the durable state of dir — the checkpoint snapshot plus
// every WAL record behind it — and returns the manager together with the
// recovered tables. The returned tables are freshly built: their
// identities and snapshot IDs are process-unique and have nothing to do
// with any pre-crash process's (identities are re-minted on every boot).
//
// When the directory's on-disk layout does not match opts.Shards — a
// format-v1 directory written by an unsharded build, a fresh directory, or
// a shard-count change — Open migrates it in place: the committed old
// layout is replayed in full, a fresh format-v2 snapshot of the recovered
// state is written atomically (the commit point), and only then are the
// old layout's files removed. A crash before the snapshot rename leaves
// the old layout fully intact; a crash after it leaves stale files the
// next Open deletes without replaying. At no point is the directory
// readable by neither layout.
func Open(dir string, opts Options) (*Manager, map[string]*uncertain.Table, error) {
	nshards := opts.Shards
	if nshards <= 0 {
		nshards = 1
	}
	if nshards > MaxShards {
		return nil, nil, fmt.Errorf("persist: %d shards exceeds the limit of %d", opts.Shards, MaxShards)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("persist: %w", err)
	}
	// One live process per data dir: a second writer would interleave
	// frames into the shared segments and delete segments the first still
	// counts on at checkpoint.
	lock, err := lockDataDir(dir)
	if err != nil {
		return nil, nil, err
	}
	m := &Manager{dir: dir, opts: opts, nshards: nshards, lock: lock}
	fail := func(err error) (*Manager, map[string]*uncertain.Table, error) {
		for _, sh := range m.shards {
			if sh != nil && sh.log != nil {
				sh.log.Close()
			}
		}
		if lock != nil {
			lock.Close()
		}
		return nil, nil, err
	}
	state, meta, err := readSnapshotFile(dir)
	if err != nil {
		return fail(err)
	}
	for name, tuples := range state {
		if err := uncertain.ValidateTuples(tuples); err != nil {
			return fail(fmt.Errorf("persist: snapshot table %q: %w", name, err))
		}
	}
	apply := func(r wal.Record) error { return applyRecord(state, r) }
	if meta.version == FormatVersion && meta.shards == nshards {
		// The layout matches: open each shard's log at its watermark and
		// replay the records behind it.
		for i := 0; i < nshards; i++ {
			log, err := wal.Open(dir, m.walOptions(shardPrefix(i), meta.wms[i]))
			if err != nil {
				return fail(err)
			}
			sh := &managerShard{log: log}
			m.shards = append(m.shards, sh)
			info, err := log.Replay(apply)
			if err != nil {
				return fail(err)
			}
			sh.since.Store(int64(info.Records))
			m.mergeReplay(info)
		}
		// Stale files a crashed migration left behind — legacy unprefixed
		// segments, or shards beyond this layout's count — are fully
		// covered by the snapshot that committed the migration; delete,
		// never replay.
		if err := removeStaleLayouts(dir, nshards); err != nil {
			return fail(err)
		}
	} else if err := m.migrate(state, meta, apply); err != nil {
		return fail(err)
	}
	tables := make(map[string]*uncertain.Table, len(state))
	for name, tuples := range state {
		tab := uncertain.NewTable()
		for _, tp := range tuples {
			tab.Add(tp)
		}
		tables[name] = tab
	}
	return m, tables, nil
}

// walOptions builds one shard log's options.
func (m *Manager) walOptions(prefix string, minSegment uint64) wal.Options {
	sync := wal.SyncNever
	if m.opts.Fsync {
		sync = wal.SyncAlways
		if m.opts.BatchFsync {
			sync = wal.SyncBatch
		}
	}
	return wal.Options{
		Sync:          sync,
		SegmentBytes:  m.opts.SegmentBytes,
		MinSegment:    minSegment,
		Prefix:        prefix,
		MaxBatchDelay: m.opts.MaxBatchDelay,
		OpenFile:      m.opts.OpenFile,
	}
}

// mergeReplay folds one shard's replay info into the aggregate.
func (m *Manager) mergeReplay(info wal.ReplayInfo) {
	m.replay.Records += info.Records
	m.replay.Segments += info.Segments
	m.replay.Truncated = m.replay.Truncated || info.Truncated
	m.replay.DroppedBytes += info.DroppedBytes
}

// migrate converts dir from the committed layout described by meta (a
// format-v1 directory, a fresh one, or a different shard count) to
// m.nshards format-v2 shards. state holds the snapshot's tables and is
// extended in place with every replayed WAL record.
//
// The commit point is the atomic snapshot rename inside
// writeSnapshotFile: before it the old layout is untouched (this boot's
// fresh segments are empty and harmless); after it the old layout's
// remaining files are all below the new snapshot's watermarks — deleted
// here, or by the next Open if we crash first.
func (m *Manager) migrate(state map[string][]uncertain.Tuple, meta snapMeta, apply func(wal.Record) error) error {
	// 1. Replay the committed old layout in full. Records of one table all
	// live in one old shard's log (ShardOf is deterministic), so replaying
	// the old logs in index order applies every table's history in order.
	oldShards := 0 // shard-prefixed logs of the old layout (0: legacy/fresh)
	var oldLogs []*wal.Log
	adopted := 0 // oldLogs[:adopted] have been handed to m.shards
	defer func() {
		// Old logs the new layout does not adopt — shard indices at or
		// beyond nshards, or everything after a mid-migration error — are
		// closed here whether the migration commits or fails (the fd must
		// not leak across the crashtest's thousand injected failures).
		for i := adopted; i < len(oldLogs); i++ {
			oldLogs[i].Close()
		}
	}()
	if meta.version == FormatVersion {
		oldShards = meta.shards
		for i := 0; i < oldShards; i++ {
			log, err := wal.Open(m.dir, m.walOptions(shardPrefix(i), meta.wms[i]))
			if err != nil {
				return err
			}
			oldLogs = append(oldLogs, log)
			info, err := log.Replay(apply)
			if err != nil {
				return err
			}
			m.mergeReplay(info)
		}
	} else {
		// A v1 snapshot's single watermark, or no snapshot at all (a
		// legacy pre-checkpoint directory, or a fresh one).
		var legacyWM uint64
		if meta.version == formatV1 {
			legacyWM = meta.wms[0]
		}
		log, err := wal.Open(m.dir, m.walOptions(wal.DefaultPrefix, legacyWM))
		if err != nil {
			return err
		}
		info, err := log.Replay(apply)
		log.Close()
		if err != nil {
			return err
		}
		m.mergeReplay(info)
	}
	// 2. Open the new layout's logs and start each one's post-snapshot
	// segment. Shard indices shared with the old layout reuse the already
	// replayed log (same prefix, same files); StartSegment places the
	// watermark above every old segment. Fresh indices may still hold
	// empty segments from an earlier crashed migration — replaying them
	// applies nothing, and StartSegment reuses an empty current segment.
	wms := make([]uint64, m.nshards)
	for i := 0; i < m.nshards; i++ {
		var log *wal.Log
		if i < oldShards {
			log = oldLogs[i]
			adopted = i + 1
		} else {
			var err error
			log, err = wal.Open(m.dir, m.walOptions(shardPrefix(i), 0))
			if err != nil {
				return err
			}
			info, err := log.Replay(apply)
			if err != nil {
				log.Close()
				return err
			}
			m.mergeReplay(info)
		}
		m.shards = append(m.shards, &managerShard{log: log})
		wm, err := log.StartSegment()
		if err != nil {
			return err
		}
		wms[i] = wm
	}
	// 3. Commit: the recovered state becomes a v2 snapshot under the new
	// shard count. Counts as a checkpoint, so since stays zero.
	if err := writeSnapshotFile(m.dir, state, m.nshards, wms, m.openFunc()); err != nil {
		return err
	}
	// 4. Only now is the old layout garbage. Drop reused shards' segments
	// below their new watermarks and delete legacy/out-of-range files (the
	// deferred cleanup closes the unadopted logs' handles).
	for i := 0; i < m.nshards && i < oldShards; i++ {
		if err := oldLogs[i].DropBefore(wms[i]); err != nil {
			return err
		}
	}
	return removeStaleLayouts(m.dir, m.nshards)
}

// removeStaleLayouts deletes segment files the committed snapshot's layout
// disowns: legacy unprefixed wal-%08d.seg files and shard-prefixed files
// with a shard index at or beyond nshards. Callers only invoke it once a
// snapshot covering those files' records has committed.
func removeStaleLayouts(dir string, nshards int) error {
	matches, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	for _, path := range matches {
		base := filepath.Base(path)
		stale := false
		if shard, ok := parseShardSegment(base); ok {
			stale = shard >= nshards
		} else if _, ok := wal.SeqFromName(base, wal.DefaultPrefix); ok {
			stale = true
		}
		if stale {
			if err := os.Remove(path); err != nil {
				return fmt.Errorf("persist: %w", err)
			}
		}
	}
	return nil
}

// openFunc resolves the file-open hook.
func (m *Manager) openFunc() openFunc {
	if m.opts.OpenFile != nil {
		return m.opts.OpenFile
	}
	return defaultOpen
}

// applyRecord folds one WAL record into the recovered state. Any rejection
// — an op that cannot apply, or contents that break the data-model
// invariants — makes the replayer truncate the log at this record, so a
// corrupt-but-checksummed record can never become a served table.
func applyRecord(state map[string][]uncertain.Tuple, r wal.Record) error {
	switch r.Op {
	case wal.OpPut:
		cand := append([]uncertain.Tuple(nil), r.Tuples...)
		if err := uncertain.ValidateTuples(cand); err != nil {
			return err
		}
		state[r.Name] = cand
	case wal.OpAppend:
		base, ok := state[r.Name]
		if !ok {
			return fmt.Errorf("append to unknown table %q", r.Name)
		}
		cand := make([]uncertain.Tuple, 0, len(base)+len(r.Tuples))
		cand = append(append(cand, base...), r.Tuples...)
		if err := uncertain.ValidateTuples(cand); err != nil {
			return err
		}
		state[r.Name] = cand
	case wal.OpDelete:
		if _, ok := state[r.Name]; !ok {
			return fmt.Errorf("delete of unknown table %q", r.Name)
		}
		delete(state, r.Name)
	default:
		return fmt.Errorf("unknown op %d", byte(r.Op))
	}
	return nil
}

// ReplayInfo describes the boot-time recovery (how many records were
// replayed across all shards, and whether a torn tail was truncated).
func (m *Manager) ReplayInfo() wal.ReplayInfo { return m.replay }

// Dir returns the manager's data directory. Replication reads the
// checkpoint file from it (ReadCheckpoint) when a follower needs a full
// resync.
func (m *Manager) Dir() string { return m.dir }

// TapShard registers fn as shard's WAL commit tap: it observes every record
// the shard acknowledges from now on, in log order, called post-fsync with
// the shard log's lock held — see wal.Log.SetCommitTap for the contract (fn
// must not block). Records committed earlier are reachable through
// ShardSegments + wal.ReadSegmentFrames.
func (m *Manager) TapShard(shard int, fn wal.CommitTap) {
	m.shards[shard].log.SetCommitTap(fn)
}

// ShardSegments returns shard's retained WAL segments and committed
// position, atomically. A concurrent checkpoint may delete listed files
// afterwards; readers retry from a fresh listing when a file has vanished.
func (m *Manager) ShardSegments(shard int) ([]wal.SegmentRef, wal.Pos, error) {
	return m.shards[shard].log.SegmentsSnapshot()
}

// ShardCommitted returns the position after shard's last acknowledged
// record.
func (m *Manager) ShardCommitted(shard int) wal.Pos {
	return m.shards[shard].log.CommittedPos()
}

// Shards returns the manager's WAL shard count.
func (m *Manager) Shards() int { return m.nshards }

// ShardOf returns the WAL shard that owns the named table's records.
func (m *Manager) ShardOf(name string) int { return ShardOf(name, m.nshards) }

// LogPut logs a create-or-replace of name with the given full contents.
// The record is durable (per the fsync policy) when LogPut returns nil;
// the caller publishes the new state only then.
func (m *Manager) LogPut(name string, tuples []uncertain.Tuple) error {
	return m.logRecord(wal.Record{Op: wal.OpPut, Name: name, Tuples: tuples})
}

// LogAppend logs appending tuples to name.
func (m *Manager) LogAppend(name string, tuples []uncertain.Tuple) error {
	return m.logRecord(wal.Record{Op: wal.OpAppend, Name: name, Tuples: tuples})
}

// LogDelete logs dropping name.
func (m *Manager) LogDelete(name string) error {
	return m.logRecord(wal.Record{Op: wal.OpDelete, Name: name})
}

func (m *Manager) logRecord(r wal.Record) error {
	sh := m.shards[m.ShardOf(r.Name)]
	if err := sh.log.Append(r); err != nil {
		return err
	}
	sh.since.Add(1)
	return nil
}

// CheckpointDue reports whether enough records have accumulated across all
// shards since the last checkpoint to warrant one (per
// Options.CheckpointEvery).
func (m *Manager) CheckpointDue() bool {
	if m.opts.CheckpointEvery <= 0 {
		return false
	}
	var since int64
	for _, sh := range m.shards {
		since += sh.since.Load()
	}
	return since >= int64(m.opts.CheckpointEvery)
}

// BeginShardCheckpoint starts shard's post-checkpoint segment and returns
// its sequence number — the shard's watermark in the snapshot a following
// CompleteCheckpoint writes. Every record logged to the shard before this
// call lands below the watermark and MUST be reflected in the states
// passed to CompleteCheckpoint; internal/server guarantees that by holding
// the shard's durability mutex across this call and the gathering of the
// shard's published states. On error the shard keeps appending to its
// current segment; the checkpoint is merely postponed.
func (m *Manager) BeginShardCheckpoint(shard int) (uint64, error) {
	seq, err := m.shards[shard].log.StartSegment()
	if err != nil {
		m.checkpointErrors.Add(1)
		return 0, err
	}
	return seq, nil
}

// CompleteCheckpoint persists states — every hosted table's current
// snapshot, gathered per shard behind the watermarks wms returned by
// BeginShardCheckpoint — into the snapshot file, then truncates every
// shard's WAL below its watermark. The write is atomic (tmp + fsync +
// rename); a crash at any boundary loses nothing: before the rename the
// old snapshot and the full WALs survive, after it the stale pre-watermark
// segments are skipped and cleaned by the next Open, never double-applied.
func (m *Manager) CompleteCheckpoint(states map[string]*uncertain.Snapshot, wms []uint64) error {
	if len(wms) != m.nshards {
		return fmt.Errorf("persist: %d watermarks for %d shards", len(wms), m.nshards)
	}
	m.ckptMu.Lock()
	defer m.ckptMu.Unlock()
	start := time.Now()
	tables := make(map[string][]uncertain.Tuple, len(states))
	for name, snap := range states {
		tables[name] = snap.Tuples()
	}
	if err := writeSnapshotFile(m.dir, tables, m.nshards, wms, m.openFunc()); err != nil {
		m.checkpointErrors.Add(1)
		return err
	}
	for i, sh := range m.shards {
		if err := sh.log.DropBefore(wms[i]); err != nil {
			m.checkpointErrors.Add(1)
			return err
		}
		// Records logged between BeginShardCheckpoint and here live above
		// the watermark and stay in the WAL, but resetting to zero only
		// delays the next auto-checkpoint by that handful of records —
		// their durability is unaffected.
		sh.since.Store(0)
	}
	m.checkpoints.Add(1)
	m.lastCheckpointNanos.Store(time.Since(start).Nanoseconds())
	return nil
}

// Checkpoint persists the given full registry state in one call: it begins
// a checkpoint on every shard and completes it with the gathered states.
// Callers must guarantee states reflects every mutation they have logged
// on ANY shard (single-threaded callers and tests do trivially;
// internal/server instead drives the Begin/Complete pair itself, holding
// each shard's durability mutex only while that shard is gathered).
func (m *Manager) Checkpoint(states map[string]*uncertain.Snapshot) error {
	wms := make([]uint64, m.nshards)
	for i := range wms {
		wm, err := m.BeginShardCheckpoint(i)
		if err != nil {
			return err
		}
		wms[i] = wm
	}
	return m.CompleteCheckpoint(states, wms)
}

// Stats returns the manager's counters.
func (m *Manager) Stats() Stats {
	st := Stats{
		Checkpoints:         m.checkpoints.Load(),
		CheckpointErrors:    m.checkpointErrors.Load(),
		LastCheckpointNanos: m.lastCheckpointNanos.Load(),
		ReplayedRecords:     m.replay.Records,
		ReplayTruncated:     m.replay.Truncated,
		Shards:              make([]ShardStats, len(m.shards)),
	}
	for i, sh := range m.shards {
		ss := ShardStats{
			WAL:                    sh.log.Stats(),
			RecordsSinceCheckpoint: int(sh.since.Load()),
		}
		st.Shards[i] = ss
		st.WAL.Appends += ss.WAL.Appends
		st.WAL.AppendBytes += ss.WAL.AppendBytes
		st.WAL.Syncs += ss.WAL.Syncs
		st.WAL.Segments += ss.WAL.Segments
		st.WAL.Drops += ss.WAL.Drops
		st.WAL.Batches += ss.WAL.Batches
		st.WAL.FsyncsSaved += ss.WAL.FsyncsSaved
		for b := range ss.WAL.BatchSizes {
			st.WAL.BatchSizes[b] += ss.WAL.BatchSizes[b]
		}
		st.WAL.DirSyncErrors += ss.WAL.DirSyncErrors
		st.RecordsSinceCheckpoint += ss.RecordsSinceCheckpoint
	}
	return st
}

// Close releases the WAL handles and the data-dir lock. It does not flush
// beyond the configured policy: closing is equivalent to a crash, which is
// exactly the guarantee recovery is tested against.
func (m *Manager) Close() error {
	var first error
	for _, sh := range m.shards {
		if err := sh.log.Close(); err != nil && first == nil {
			first = err
		}
	}
	if m.lock != nil {
		m.lock.Close() // releases the flock
		m.lock = nil
	}
	return first
}
