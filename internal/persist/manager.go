package persist

import (
	"fmt"
	"os"
	"sync"
	"time"

	"probtopk/internal/uncertain"
	"probtopk/internal/wal"
)

// Options tune a Manager. The zero value fsyncs nothing, never
// auto-checkpoints, and uses the default WAL segment size.
type Options struct {
	// Fsync makes every logged mutation (and every checkpoint) fsync before
	// it is acknowledged. Off, the OS flushes when it likes: a crash may
	// lose the most recent acknowledged mutations, but recovery still
	// yields a clean earlier state.
	Fsync bool
	// CheckpointEvery marks a checkpoint as due after this many logged
	// records. <= 0 means checkpoints happen only when the caller asks.
	CheckpointEvery int
	// SegmentBytes is the WAL segment-rotation threshold; 0 = the WAL
	// default.
	SegmentBytes int64
	// OpenFile opens files for writing (WAL segments and staged
	// snapshots). nil means os.OpenFile; tests inject failures here.
	OpenFile func(path string, flag int, perm os.FileMode) (wal.File, error)
}

// Stats is a snapshot of a Manager's counters for /debug/stats.
type Stats struct {
	WAL                    wal.Stats
	RecordsSinceCheckpoint int
	Checkpoints            uint64
	CheckpointErrors       uint64
	// LastCheckpointNanos is the wall-clock cost of the most recent
	// successful checkpoint.
	LastCheckpointNanos int64
	// ReplayedRecords and ReplayTruncated describe the boot-time recovery.
	ReplayedRecords int
	ReplayTruncated bool
}

// Manager is the durability backend for a table registry: it logs every
// mutation to the WAL before the caller publishes it, and checkpoints the
// full registry into a snapshot file, truncating the WAL behind it. A
// Manager is safe for concurrent use, but the caller must still order
// logging before publication per mutation (internal/server holds its
// durability mutex across both).
type Manager struct {
	dir  string
	opts Options

	mu                  sync.Mutex
	log                 *wal.Log
	lock                *os.File // held flock on the data dir; nil on non-unix
	since               int      // records logged since the last checkpoint
	checkpoints         uint64
	checkpointErrors    uint64
	lastCheckpointNanos int64
	replay              wal.ReplayInfo
}

// Open recovers the durable state of dir — the checkpoint snapshot plus
// every WAL record behind it — and returns the manager together with the
// recovered tables. The returned tables are freshly built: their
// identities and snapshot IDs are process-unique and have nothing to do
// with any pre-crash process's (identities are re-minted on every boot).
func Open(dir string, opts Options) (*Manager, map[string]*uncertain.Table, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("persist: %w", err)
	}
	// One live process per data dir: a second writer would interleave
	// frames into the shared segment and delete segments the first still
	// counts on at checkpoint.
	lock, err := lockDataDir(dir)
	if err != nil {
		return nil, nil, err
	}
	fail := func(err error) (*Manager, map[string]*uncertain.Table, error) {
		if lock != nil {
			lock.Close()
		}
		return nil, nil, err
	}
	state, walSeq, err := readSnapshotFile(dir)
	if err != nil {
		return fail(err)
	}
	for name, tuples := range state {
		if err := uncertain.ValidateTuples(tuples); err != nil {
			return fail(fmt.Errorf("persist: snapshot table %q: %w", name, err))
		}
	}
	sync := wal.SyncNever
	if opts.Fsync {
		sync = wal.SyncAlways
	}
	log, err := wal.Open(dir, wal.Options{
		Sync:         sync,
		SegmentBytes: opts.SegmentBytes,
		// The snapshot's watermark: segments below it are already folded
		// into state; replaying them would double-apply (they survive only
		// when a crash interrupted the previous checkpoint's cleanup).
		MinSegment: walSeq,
		OpenFile:   opts.OpenFile,
	})
	if err != nil {
		return fail(err)
	}
	info, err := log.Replay(func(r wal.Record) error { return applyRecord(state, r) })
	if err != nil {
		log.Close()
		return fail(err)
	}
	tables := make(map[string]*uncertain.Table, len(state))
	for name, tuples := range state {
		tab := uncertain.NewTable()
		for _, tp := range tuples {
			tab.Add(tp)
		}
		tables[name] = tab
	}
	m := &Manager{dir: dir, opts: opts, log: log, lock: lock, since: info.Records, replay: info}
	return m, tables, nil
}

// applyRecord folds one WAL record into the recovered state. Any rejection
// — an op that cannot apply, or contents that break the data-model
// invariants — makes the replayer truncate the log at this record, so a
// corrupt-but-checksummed record can never become a served table.
func applyRecord(state map[string][]uncertain.Tuple, r wal.Record) error {
	switch r.Op {
	case wal.OpPut:
		cand := append([]uncertain.Tuple(nil), r.Tuples...)
		if err := uncertain.ValidateTuples(cand); err != nil {
			return err
		}
		state[r.Name] = cand
	case wal.OpAppend:
		base, ok := state[r.Name]
		if !ok {
			return fmt.Errorf("append to unknown table %q", r.Name)
		}
		cand := make([]uncertain.Tuple, 0, len(base)+len(r.Tuples))
		cand = append(append(cand, base...), r.Tuples...)
		if err := uncertain.ValidateTuples(cand); err != nil {
			return err
		}
		state[r.Name] = cand
	case wal.OpDelete:
		if _, ok := state[r.Name]; !ok {
			return fmt.Errorf("delete of unknown table %q", r.Name)
		}
		delete(state, r.Name)
	default:
		return fmt.Errorf("unknown op %d", byte(r.Op))
	}
	return nil
}

// ReplayInfo describes the boot-time recovery (how many records were
// replayed, and whether a torn tail was truncated).
func (m *Manager) ReplayInfo() wal.ReplayInfo { return m.replay }

// LogPut logs a create-or-replace of name with the given full contents.
// The record is durable (per the fsync policy) when LogPut returns nil;
// the caller publishes the new state only then.
func (m *Manager) LogPut(name string, tuples []uncertain.Tuple) error {
	return m.logRecord(wal.Record{Op: wal.OpPut, Name: name, Tuples: tuples})
}

// LogAppend logs appending tuples to name.
func (m *Manager) LogAppend(name string, tuples []uncertain.Tuple) error {
	return m.logRecord(wal.Record{Op: wal.OpAppend, Name: name, Tuples: tuples})
}

// LogDelete logs dropping name.
func (m *Manager) LogDelete(name string) error {
	return m.logRecord(wal.Record{Op: wal.OpDelete, Name: name})
}

func (m *Manager) logRecord(r wal.Record) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.log.Append(r); err != nil {
		return err
	}
	m.since++
	return nil
}

// CheckpointDue reports whether enough records have accumulated since the
// last checkpoint to warrant one (per Options.CheckpointEvery).
func (m *Manager) CheckpointDue() bool {
	if m.opts.CheckpointEvery <= 0 {
		return false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.since >= m.opts.CheckpointEvery
}

// Checkpoint persists the given full registry state — every hosted table's
// current snapshot — into the snapshot file and truncates the WAL behind
// it. The caller must guarantee states reflects every mutation it has
// logged (internal/server holds its durability mutex across the gather and
// this call).
//
// The sequence is crash-safe at every boundary: first a fresh WAL segment
// is started and its sequence number becomes the snapshot's watermark;
// then the snapshot is staged, fsynced and renamed; only then are the
// segments below the watermark deleted. A crash before the rename leaves
// the old snapshot and the full WAL (nothing lost, checkpoint postponed);
// a crash after it leaves stale pre-watermark segments that recovery
// skips and cleans — never double-applies. On error nothing acknowledged
// is lost either.
func (m *Manager) Checkpoint(states map[string]*uncertain.Snapshot) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	start := time.Now()
	tables := make(map[string][]uncertain.Tuple, len(states))
	for name, snap := range states {
		tables[name] = snap.Tuples()
	}
	open := m.opts.OpenFile
	if open == nil {
		open = defaultOpen
	}
	seq, err := m.log.StartSegment()
	if err != nil {
		m.checkpointErrors++
		return err
	}
	if err := writeSnapshotFile(m.dir, tables, seq, open); err != nil {
		m.checkpointErrors++
		return err
	}
	if err := m.log.DropBefore(seq); err != nil {
		m.checkpointErrors++
		return err
	}
	m.since = 0
	m.checkpoints++
	m.lastCheckpointNanos = time.Since(start).Nanoseconds()
	return nil
}

// Stats returns the manager's counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Stats{
		WAL:                    m.log.Stats(),
		RecordsSinceCheckpoint: m.since,
		Checkpoints:            m.checkpoints,
		CheckpointErrors:       m.checkpointErrors,
		LastCheckpointNanos:    m.lastCheckpointNanos,
		ReplayedRecords:        m.replay.Records,
		ReplayTruncated:        m.replay.Truncated,
	}
}

// Close releases the WAL handle and the data-dir lock. It does not flush
// beyond the configured policy: closing is equivalent to a crash, which is
// exactly the guarantee recovery is tested against.
func (m *Manager) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	err := m.log.Close()
	if m.lock != nil {
		m.lock.Close() // releases the flock
		m.lock = nil
	}
	return err
}
