//go:build !unix

package persist

import "os"

// lockDataDir is a no-op where flock is unavailable: the data directory is
// unguarded against a second live process, which the unix build prevents.
func lockDataDir(dir string) (*os.File, error) { return nil, nil }
