package persist

import (
	"os"
	"path/filepath"
	"testing"

	"probtopk/internal/uncertain"
	"probtopk/internal/wal"
)

// FuzzReplayWAL feeds arbitrary bytes to the WAL reader as a segment file
// and recovers through the full persist.Open path. Whatever the bytes, the
// reader must never panic, recovery must never fail with anything but a
// clean error, and every recovered table must satisfy the data-model
// invariants (Snapshot.Validate) — a corrupt-but-checksummed record must
// be truncated, not served. The checked-in corpus under
// testdata/fuzz/FuzzReplayWAL pins a valid segment, a torn tail, and a
// bare header.
func FuzzReplayWAL(f *testing.F) {
	// A valid two-record segment built through the real writer.
	seedDir := f.TempDir()
	l, err := wal.Open(seedDir, wal.Options{Sync: wal.SyncNever})
	if err != nil {
		f.Fatal(err)
	}
	if _, err := l.Replay(func(wal.Record) error { return nil }); err != nil {
		f.Fatal(err)
	}
	records := []wal.Record{
		{Op: wal.OpPut, Name: "t", Tuples: []uncertain.Tuple{
			{ID: "a", Score: 1, Prob: 0.5},
			{ID: "b", Score: 2, Prob: 0.5, Group: "g"},
		}},
		{Op: wal.OpAppend, Name: "t", Tuples: []uncertain.Tuple{
			{ID: "c", Score: 3, Prob: 0.25, Group: "g"},
		}},
		{Op: wal.OpDelete, Name: "t"},
	}
	for _, r := range records {
		if err := l.Append(r); err != nil {
			f.Fatal(err)
		}
	}
	l.Close()
	valid, err := os.ReadFile(filepath.Join(seedDir, "wal-00000001.seg"))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	f.Add([]byte("PTKWAL01"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "wal-00000001.seg"), data, 0o644); err != nil {
			t.Fatal(err)
		}
		m, tables, err := Open(dir, Options{})
		if err != nil {
			return // a clean error is fine; a panic is the bug
		}
		defer m.Close()
		for name, tab := range tables {
			if err := tab.Snapshot().Validate(); err != nil {
				t.Fatalf("recovered table %q violates invariants: %v", name, err)
			}
		}
		// The truncation must be physical: a second recovery of the same
		// dir replays cleanly.
		m.Close()
		m2, _, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("second recovery failed: %v", err)
		}
		if info := m2.ReplayInfo(); info.Truncated {
			t.Fatalf("second recovery still truncating: %+v", info)
		}
		m2.Close()
	})
}
