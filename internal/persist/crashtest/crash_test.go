package crashtest

import (
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"probtopk"
	"probtopk/internal/persist"
	"probtopk/internal/uncertain"
	"probtopk/internal/wal"
)

// crashIterations is how many randomized mutate/checkpoint/crash/recover
// interleavings the property test drives (the acceptance bar is 1000+).
const crashIterations = 1000

// crashN overrides the iteration count; the nightly workflow passes
// -crashtest.n=10000 for a run too slow for PR CI.
var crashN = flag.Int("crashtest.n", 0,
	"override the crash property test's interleaving count (0 = the built-in default)")

// model is the in-memory oracle: the acknowledged state of every table.
type model map[string][]uncertain.Tuple

func (m model) clone() model {
	out := make(model, len(m))
	for name, tuples := range m {
		out[name] = append([]uncertain.Tuple(nil), tuples...)
	}
	return out
}

// snapshots freezes the oracle as the states a checkpoint persists.
func (m model) snapshots() map[string]*uncertain.Snapshot {
	out := make(map[string]*uncertain.Snapshot, len(m))
	for name, tuples := range m {
		out[name] = uncertain.NewSnapshot(tuples)
	}
	return out
}

// tableOf materializes one oracle table.
func tableOf(tuples []uncertain.Tuple) *probtopk.Table {
	tab := probtopk.NewTable()
	for _, tp := range tuples {
		tab.Add(tp)
	}
	return tab
}

// genTuples returns 1–3 fresh valid tuples for table name. ME group names
// are derived from the serial (g<serial/4>), so at most four members —
// 0.2 probability each, 0.8 total — can ever share a group however the
// tuples are distributed across puts and appends; accumulated appends can
// therefore never push a group's mass past 1 and invalidate the oracle's
// own state.
func genTuples(rng *rand.Rand, serial *int) []uncertain.Tuple {
	n := 1 + rng.Intn(3)
	out := make([]uncertain.Tuple, 0, n)
	for i := 0; i < n; i++ {
		*serial++
		tp := uncertain.Tuple{
			ID:    fmt.Sprintf("t%d", *serial),
			Score: float64(rng.Intn(50)) + rng.Float64(),
			Prob:  0.05 + 0.9*rng.Float64(),
		}
		if rng.Intn(3) == 0 {
			tp.Group = fmt.Sprintf("g%d", *serial/4)
			tp.Prob = 0.2
		}
		out = append(out, tp)
	}
	return out
}

// newestShardSegment returns the newest WAL segment of one shard's log and
// its size, or "" if the shard has none.
func newestShardSegment(t *testing.T, dir string, shard int) (string, int64) {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, fmt.Sprintf("wal-s%02d-*.seg", shard)))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 {
		return "", 0
	}
	path := matches[len(matches)-1]
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return path, fi.Size()
}

// anyShardTail returns the NEWEST segment of a randomly chosen shard that
// has one, or "". Garbage surgery must land on a shard's tail: bytes
// after the acknowledged records of the newest segment model a torn next
// write, while garbage inside an OLDER segment would (correctly) truncate
// everything after it — acknowledged records the oracle still expects.
func anyShardTail(t *testing.T, dir string, shards int, rng *rand.Rand) string {
	t.Helper()
	for _, shard := range rng.Perm(shards) {
		if path, size := newestShardSegment(t, dir, shard); path != "" && size > 0 {
			return path
		}
	}
	return ""
}

// queryIdentical asserts the recovered table answers TopKDistribution and
// CTypicalTopK bit-identically to the oracle table: same errors, and on
// success the same lines down to the float bits (reflect.DeepEqual on
// float64 is bitwise).
func queryIdentical(t *testing.T, iter int, name string, recovered, oracle *probtopk.Table, rng *rand.Rand) {
	t.Helper()
	k := 1 + rng.Intn(3)
	dr, errR := probtopk.TopKDistribution(recovered, k, nil)
	do, errO := probtopk.TopKDistribution(oracle, k, nil)
	if (errR == nil) != (errO == nil) {
		t.Fatalf("iter %d table %q k=%d: recovered err %v, oracle err %v", iter, name, k, errR, errO)
	}
	if errR == nil {
		if !reflect.DeepEqual(dr.Lines(), do.Lines()) {
			t.Fatalf("iter %d table %q k=%d: distributions differ\nrecovered %v\noracle    %v",
				iter, name, k, dr.Lines(), do.Lines())
		}
	}
	lr, errR := probtopk.CTypicalTopK(recovered, k, 2, nil)
	lo, errO := probtopk.CTypicalTopK(oracle, k, 2, nil)
	if (errR == nil) != (errO == nil) {
		t.Fatalf("iter %d table %q: typical errs %v vs %v", iter, name, errR, errO)
	}
	if errR == nil && !reflect.DeepEqual(lr, lo) {
		t.Fatalf("iter %d table %q: typical answers differ\nrecovered %v\noracle    %v", iter, name, lr, lo)
	}
}

// TestCrashRecoveryProperty drives randomized interleavings of mutations,
// checkpoints and crashes through the durability layer, under 1, 2 or 4
// WAL shards — and recovers under a possibly DIFFERENT shard count, so
// every interleaving also exercises the in-place layout migration. Crashes
// are injected three ways: a write budget that dies mid-record
// (FailingFile — including mid-checkpoint, i.e. between two shards'
// checkpoint segments being started and the snapshot committing), garbage
// appended to a shard's WAL tail (a torn next record), and a truncation
// inside the last acknowledged record's frame (a record the crash tore
// before it was durable — the oracle then forgets that op too). After
// every crash, recovery must reproduce the oracle exactly: same tables,
// same tuples, and query answers that are bit-identical.
func TestCrashRecoveryProperty(t *testing.T) {
	iterations := crashIterations
	if testing.Short() {
		iterations = 200
	}
	if *crashN > 0 {
		iterations = *crashN
	}
	base := t.TempDir()
	shardCounts := []int{1, 2, 4}
	for iter := 0; iter < iterations; iter++ {
		rng := rand.New(rand.NewSource(int64(iter) * 7919))
		dir := filepath.Join(base, fmt.Sprintf("it%04d", iter))
		shards := shardCounts[rng.Intn(len(shardCounts))]

		opts := persist.Options{
			Fsync:        iter%10 == 0, // mostly off: content survives either way, fsync paths still covered
			BatchFsync:   rng.Intn(2) == 0,
			SegmentBytes: int64(512 + rng.Intn(2048)),
			Shards:       shards,
		}
		var budget *Budget
		if iter%2 == 1 {
			budget = NewBudget(int64(200 + rng.Intn(2000)))
			opts.OpenFile = budget.OpenFile
		}

		m, recovered, err := persist.Open(dir, opts)
		if err != nil {
			// The injected budget can die during Open itself — which now
			// includes writing the initial sharded layout; that is a crash
			// before any op, and recovery below must yield nothing.
			if budget == nil || !budget.Tripped() {
				t.Fatalf("iter %d: open: %v", iter, err)
			}
		}
		if len(recovered) != 0 {
			t.Fatalf("iter %d: fresh dir recovered %d tables", iter, len(recovered))
		}

		oracle := model{}
		serial := 0
		crashed := m == nil

		// tail tracking for the torn-last-record crash mode
		var tailPath string
		var tailBefore, tailAfter int64
		var beforeLastOp model
		tailValid := false
		track := func(name string, prev model, do func() error) {
			shard := persist.ShardOf(name, shards)
			path0, size0 := newestShardSegment(t, dir, shard)
			if err := do(); err != nil {
				crashed = true
				return
			}
			path1, size1 := newestShardSegment(t, dir, shard)
			beforeLastOp, tailPath, tailBefore, tailAfter = prev, path1, size0, size1
			tailValid = path0 == path1 && size1 > size0
		}

		steps := 3 + rng.Intn(8)
		for s := 0; s < steps && !crashed; s++ {
			names := make([]string, 0, len(oracle))
			for name := range oracle {
				names = append(names, name)
			}
			pick := func() string { return names[rng.Intn(len(names))] }

			switch op := rng.Intn(10); {
			case op < 2 && len(names) > 0 && m != nil: // checkpoint
				if err := m.Checkpoint(oracle.snapshots()); err != nil {
					// The budget can trip after some shards' checkpoint
					// segments started but before the snapshot committed —
					// the "between two shards' checkpoints" crash. Nothing
					// acknowledged may be lost either way.
					crashed = true
				}
				tailValid = false
			case op < 5 || len(names) == 0: // put (create or replace)
				name := fmt.Sprintf("tab%d", rng.Intn(3))
				tuples := genTuples(rng, &serial)
				track(name, oracle.clone(), func() error { return m.LogPut(name, tuples) })
				if !crashed {
					oracle[name] = append([]uncertain.Tuple(nil), tuples...)
				}
			case op < 8: // append
				name := pick()
				tuples := genTuples(rng, &serial)
				track(name, oracle.clone(), func() error { return m.LogAppend(name, tuples) })
				if !crashed {
					oracle[name] = append(oracle[name], tuples...)
				}
			default: // delete
				name := pick()
				track(name, oracle.clone(), func() error { return m.LogDelete(name) })
				if !crashed {
					delete(oracle, name)
				}
			}
		}
		if m != nil {
			m.Close() // closing flushes nothing extra: equivalent to the crash
		}

		// Crash surgery on the dead process's files.
		switch mode := rng.Intn(3); {
		case mode == 1: // torn next record: garbage after an acknowledged tail
			if path := anyShardTail(t, dir, shards, rng); path != "" {
				f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
				if err != nil {
					t.Fatal(err)
				}
				garbage := make([]byte, 1+rng.Intn(40))
				rng.Read(garbage)
				f.Write(garbage)
				f.Close()
			}
		case mode == 2 && tailValid && !crashed: // the last record itself was torn
			cut := tailBefore + rng.Int63n(tailAfter-tailBefore)
			if err := os.Truncate(tailPath, cut); err != nil {
				t.Fatal(err)
			}
			oracle = beforeLastOp // that op was never durable
		}

		// Recover with a healthy process — under a possibly different
		// shard count, so recovery regularly IS a live migration — and
		// compare against the oracle.
		m2, tables, err := persist.Open(dir, persist.Options{Shards: shardCounts[rng.Intn(len(shardCounts))]})
		if err != nil {
			t.Fatalf("iter %d: recovery: %v", iter, err)
		}
		if len(tables) != len(oracle) {
			t.Fatalf("iter %d: recovered %d tables, oracle has %d", iter, len(tables), len(oracle))
		}
		for name, want := range oracle {
			tab, ok := tables[name]
			if !ok {
				t.Fatalf("iter %d: lost table %q", iter, name)
			}
			got := tab.Tuples()
			if len(got) == 0 && len(want) == 0 {
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("iter %d: table %q recovered %v, oracle %v", iter, name, got, want)
			}
			queryIdentical(t, iter, name, tab, tableOf(want), rng)
		}
		m2.Close()
		os.RemoveAll(dir) // keep the tempdir small across 1000 iterations
	}
}

// TestCrashBetweenShardCheckpoints pins the exact window the sharded
// checkpoint opens: shard 0's post-checkpoint segment has been started
// (BeginShardCheckpoint) but the process dies before the other shards
// begin and before the snapshot commits. Every record of every shard —
// including ones logged to shard 0 after its Begin — must survive
// recovery.
func TestCrashBetweenShardCheckpoints(t *testing.T) {
	dir := t.TempDir()
	m, _, err := persist.Open(dir, persist.Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Tables spread over all four shards.
	want := model{}
	serial := 0
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 16; i++ {
		name := fmt.Sprintf("tab%02d", i)
		tuples := genTuples(rng, &serial)
		if err := m.LogPut(name, tuples); err != nil {
			t.Fatal(err)
		}
		want[name] = append([]uncertain.Tuple(nil), tuples...)
	}
	if _, err := m.BeginShardCheckpoint(0); err != nil {
		t.Fatal(err)
	}
	// One more record lands on shard 0 AFTER its checkpoint segment
	// started; the snapshot never commits.
	post := genTuples(rng, &serial)
	postName := ""
	for i := 0; postName == ""; i++ {
		if name := fmt.Sprintf("late%d", i); persist.ShardOf(name, 4) == 0 {
			postName = name
		}
	}
	if err := m.LogPut(postName, post); err != nil {
		t.Fatal(err)
	}
	want[postName] = append([]uncertain.Tuple(nil), post...)
	m.Close() // crash between two shards' checkpoints

	m2, tables, err := persist.Open(dir, persist.Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if len(tables) != len(want) {
		t.Fatalf("recovered %d tables, want %d", len(tables), len(want))
	}
	for name, tuples := range want {
		tab, ok := tables[name]
		if !ok {
			t.Fatalf("lost table %q", name)
		}
		if !reflect.DeepEqual(tab.Tuples(), tuples) {
			t.Fatalf("table %q = %v, want %v", name, tab.Tuples(), tuples)
		}
	}
}

// syncFail is a wal.File whose Sync always fails; writes and closes pass
// through.
type syncFail struct{ f *os.File }

func (s *syncFail) Write(p []byte) (int, error) { return s.f.Write(p) }
func (s *syncFail) Sync() error                 { return ErrInjected }
func (s *syncFail) Close() error                { return s.f.Close() }

// tornDurableDir builds a data dir holding one acknowledged table whose
// shard WAL ends in garbage — the state recovery must truncate.
func tornDurableDir(t *testing.T) (string, []uncertain.Tuple) {
	t.Helper()
	dir := t.TempDir()
	m, _, err := persist.Open(dir, persist.Options{Fsync: true, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	tuples := []uncertain.Tuple{{ID: "a", Score: 80, Prob: 0.9}}
	if err := m.LogPut("fleet", tuples); err != nil {
		t.Fatal(err)
	}
	m.Close()
	segs, err := filepath.Glob(filepath.Join(dir, "wal-s00-*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no shard segments: %v %v", segs, err)
	}
	f, err := os.OpenFile(segs[len(segs)-1], os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xba, 0xdb, 0xad}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	return dir, tuples
}

// TestRecoveryTruncationFlushFailure: when recovery cannot fsync the
// torn-tail truncation, persist.Open must fail loudly — silently
// proceeding would serve state a crash could contradict. A later healthy
// recovery of the same directory succeeds with the acknowledged state.
func TestRecoveryTruncationFlushFailure(t *testing.T) {
	dir, want := tornDurableDir(t)
	_, _, err := persist.Open(dir, persist.Options{
		Fsync:  true,
		Shards: 1,
		OpenFile: func(path string, flag int, perm os.FileMode) (wal.File, error) {
			f, err := os.OpenFile(path, flag, perm)
			if err != nil {
				return nil, err
			}
			if flag == os.O_WRONLY {
				// The truncation-flush open (no O_APPEND, no O_CREATE).
				return &syncFail{f: f}, nil
			}
			return f, nil
		},
	})
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("recovery with failing truncation flush returned %v, want the injected error", err)
	}
	m, tables, err := persist.Open(dir, persist.Options{Fsync: true, Shards: 1})
	if err != nil {
		t.Fatalf("healthy recovery: %v", err)
	}
	defer m.Close()
	if tab := tables["fleet"]; tab == nil || !reflect.DeepEqual(tab.Tuples(), want) {
		t.Fatalf("healthy recovery lost the acknowledged state: %+v", tables)
	}
}

// TestRecoveryDirSyncFailure: a failed directory fsync during recovery's
// truncation must fail persist.Open the same way.
func TestRecoveryDirSyncFailure(t *testing.T) {
	dir, want := tornDurableDir(t)
	_, _, err := persist.Open(dir, persist.Options{
		Fsync:  true,
		Shards: 1,
		OpenFile: func(path string, flag int, perm os.FileMode) (wal.File, error) {
			f, err := os.OpenFile(path, flag, perm)
			if err != nil {
				return nil, err
			}
			if flag == os.O_RDONLY {
				// Only the WAL's directory fsync opens read-only through
				// the hook.
				return &syncFail{f: f}, nil
			}
			return f, nil
		},
	})
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("recovery with failing dir fsync returned %v, want the injected error", err)
	}
	m, tables, err := persist.Open(dir, persist.Options{Fsync: true, Shards: 1})
	if err != nil {
		t.Fatalf("healthy recovery: %v", err)
	}
	defer m.Close()
	if tab := tables["fleet"]; tab == nil || !reflect.DeepEqual(tab.Tuples(), want) {
		t.Fatalf("healthy recovery lost the acknowledged state: %+v", tables)
	}
}
