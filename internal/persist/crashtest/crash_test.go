package crashtest

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"probtopk"
	"probtopk/internal/persist"
	"probtopk/internal/uncertain"
)

// crashIterations is how many randomized mutate/checkpoint/crash/recover
// interleavings the property test drives (the acceptance bar is 1000+).
const crashIterations = 1000

// model is the in-memory oracle: the acknowledged state of every table.
type model map[string][]uncertain.Tuple

func (m model) clone() model {
	out := make(model, len(m))
	for name, tuples := range m {
		out[name] = append([]uncertain.Tuple(nil), tuples...)
	}
	return out
}

// snapshots freezes the oracle as the states a checkpoint persists.
func (m model) snapshots() map[string]*uncertain.Snapshot {
	out := make(map[string]*uncertain.Snapshot, len(m))
	for name, tuples := range m {
		out[name] = uncertain.NewSnapshot(tuples)
	}
	return out
}

// tableOf materializes one oracle table.
func tableOf(tuples []uncertain.Tuple) *probtopk.Table {
	tab := probtopk.NewTable()
	for _, tp := range tuples {
		tab.Add(tp)
	}
	return tab
}

// genTuples returns 1–3 fresh valid tuples for table name, keeping every
// ME group's mass under 1 however many land in it (each group member
// carries 0.2 and groups are per-batch unique-ish across ≤ 20 ops).
func genTuples(rng *rand.Rand, serial *int) []uncertain.Tuple {
	n := 1 + rng.Intn(3)
	out := make([]uncertain.Tuple, 0, n)
	for i := 0; i < n; i++ {
		*serial++
		tp := uncertain.Tuple{
			ID:    fmt.Sprintf("t%d", *serial),
			Score: float64(rng.Intn(50)) + rng.Float64(),
			Prob:  0.05 + 0.9*rng.Float64(),
		}
		if rng.Intn(3) == 0 {
			tp.Group = fmt.Sprintf("g%d", rng.Intn(3))
			tp.Prob = 0.2
		}
		out = append(out, tp)
	}
	return out
}

// newestSegment returns the newest WAL segment and its size, or "" if none.
func newestSegment(t *testing.T, dir string) (string, int64) {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 {
		return "", 0
	}
	path := matches[len(matches)-1]
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return path, fi.Size()
}

// queryIdentical asserts the recovered table answers TopKDistribution and
// CTypicalTopK bit-identically to the oracle table: same errors, and on
// success the same lines down to the float bits (reflect.DeepEqual on
// float64 is bitwise).
func queryIdentical(t *testing.T, iter int, name string, recovered, oracle *probtopk.Table, rng *rand.Rand) {
	t.Helper()
	k := 1 + rng.Intn(3)
	dr, errR := probtopk.TopKDistribution(recovered, k, nil)
	do, errO := probtopk.TopKDistribution(oracle, k, nil)
	if (errR == nil) != (errO == nil) {
		t.Fatalf("iter %d table %q k=%d: recovered err %v, oracle err %v", iter, name, k, errR, errO)
	}
	if errR == nil {
		if !reflect.DeepEqual(dr.Lines(), do.Lines()) {
			t.Fatalf("iter %d table %q k=%d: distributions differ\nrecovered %v\noracle    %v",
				iter, name, k, dr.Lines(), do.Lines())
		}
	}
	lr, errR := probtopk.CTypicalTopK(recovered, k, 2, nil)
	lo, errO := probtopk.CTypicalTopK(oracle, k, 2, nil)
	if (errR == nil) != (errO == nil) {
		t.Fatalf("iter %d table %q: typical errs %v vs %v", iter, name, errR, errO)
	}
	if errR == nil && !reflect.DeepEqual(lr, lo) {
		t.Fatalf("iter %d table %q: typical answers differ\nrecovered %v\noracle    %v", iter, name, lr, lo)
	}
}

// TestCrashRecoveryProperty drives randomized interleavings of mutations,
// checkpoints and crashes through the durability layer. Crashes are
// injected three ways: a write budget that dies mid-record (FailingFile),
// garbage appended to the WAL tail (a torn next record), and a truncation
// inside the last acknowledged record's frame (a record the crash tore
// before it was durable — the oracle then forgets that op too). After every
// crash, recovery must reproduce the oracle exactly: same tables, same
// tuples, and query answers that are bit-identical.
func TestCrashRecoveryProperty(t *testing.T) {
	iterations := crashIterations
	if testing.Short() {
		iterations = 200
	}
	base := t.TempDir()
	for iter := 0; iter < iterations; iter++ {
		rng := rand.New(rand.NewSource(int64(iter) * 7919))
		dir := filepath.Join(base, fmt.Sprintf("it%04d", iter))

		opts := persist.Options{
			Fsync:        iter%10 == 0, // mostly off: content survives either way, fsync paths still covered
			SegmentBytes: int64(512 + rng.Intn(2048)),
		}
		var budget *Budget
		if iter%2 == 1 {
			budget = NewBudget(int64(200 + rng.Intn(2000)))
			opts.OpenFile = budget.OpenFile
		}

		m, recovered, err := persist.Open(dir, opts)
		if err != nil {
			// The injected budget can die during Open itself; that is a
			// crash before any op — recovery below must yield nothing.
			if budget == nil || !budget.Tripped() {
				t.Fatalf("iter %d: open: %v", iter, err)
			}
		}
		if len(recovered) != 0 {
			t.Fatalf("iter %d: fresh dir recovered %d tables", iter, len(recovered))
		}

		oracle := model{}
		serial := 0
		crashed := m == nil

		// tail tracking for the torn-last-record crash mode
		var tailPath string
		var tailBefore, tailAfter int64
		var beforeLastOp model
		tailValid := false

		steps := 3 + rng.Intn(8)
		for s := 0; s < steps && !crashed; s++ {
			names := make([]string, 0, len(oracle))
			for name := range oracle {
				names = append(names, name)
			}
			pick := func() string { return names[rng.Intn(len(names))] }

			switch op := rng.Intn(10); {
			case op < 2 && len(names) > 0 && m != nil: // checkpoint
				if err := m.Checkpoint(oracle.snapshots()); err != nil {
					crashed = true
				}
				tailValid = false
			case op < 5 || len(names) == 0: // put (create or replace)
				name := fmt.Sprintf("tab%d", rng.Intn(3))
				tuples := genTuples(rng, &serial)
				prev := oracle.clone()
				path0, size0 := newestSegment(t, dir)
				if err := m.LogPut(name, tuples); err != nil {
					crashed = true
					break
				}
				path1, size1 := newestSegment(t, dir)
				beforeLastOp, tailPath, tailBefore, tailAfter = prev, path1, size0, size1
				tailValid = path0 == path1 && size1 > size0
				oracle[name] = append([]uncertain.Tuple(nil), tuples...)
			case op < 8: // append
				name := pick()
				tuples := genTuples(rng, &serial)
				prev := oracle.clone()
				path0, size0 := newestSegment(t, dir)
				if err := m.LogAppend(name, tuples); err != nil {
					crashed = true
					break
				}
				path1, size1 := newestSegment(t, dir)
				beforeLastOp, tailPath, tailBefore, tailAfter = prev, path1, size0, size1
				tailValid = path0 == path1 && size1 > size0
				oracle[name] = append(oracle[name], tuples...)
			default: // delete
				name := pick()
				prev := oracle.clone()
				path0, size0 := newestSegment(t, dir)
				if err := m.LogDelete(name); err != nil {
					crashed = true
					break
				}
				path1, size1 := newestSegment(t, dir)
				beforeLastOp, tailPath, tailBefore, tailAfter = prev, path1, size0, size1
				tailValid = path0 == path1 && size1 > size0
				delete(oracle, name)
			}
		}
		if m != nil {
			m.Close() // closing flushes nothing extra: equivalent to the crash
		}

		// Crash surgery on the dead process's files.
		switch mode := rng.Intn(3); {
		case mode == 1: // torn next record: garbage after the acknowledged tail
			if path, size := newestSegment(t, dir); path != "" && size > 0 {
				f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
				if err != nil {
					t.Fatal(err)
				}
				garbage := make([]byte, 1+rng.Intn(40))
				rng.Read(garbage)
				f.Write(garbage)
				f.Close()
			}
		case mode == 2 && tailValid && !crashed: // the last record itself was torn
			cut := tailBefore + rng.Int63n(tailAfter-tailBefore)
			if err := os.Truncate(tailPath, cut); err != nil {
				t.Fatal(err)
			}
			oracle = beforeLastOp // that op was never durable
		}

		// Recover with a healthy process and compare against the oracle.
		m2, tables, err := persist.Open(dir, persist.Options{})
		if err != nil {
			t.Fatalf("iter %d: recovery: %v", iter, err)
		}
		if len(tables) != len(oracle) {
			t.Fatalf("iter %d: recovered %d tables, oracle has %d", iter, len(tables), len(oracle))
		}
		for name, want := range oracle {
			tab, ok := tables[name]
			if !ok {
				t.Fatalf("iter %d: lost table %q", iter, name)
			}
			got := tab.Tuples()
			if len(got) == 0 && len(want) == 0 {
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("iter %d: table %q recovered %v, oracle %v", iter, name, got, want)
			}
			queryIdentical(t, iter, name, tab, tableOf(want), rng)
		}
		m2.Close()
		os.RemoveAll(dir) // keep the tempdir small across 1000 iterations
	}
}
