// Package crashtest is the crash-injection harness for the durability
// layer: a failure-injecting file implementation that the WAL and snapshot
// writers accept through their OpenFile hooks, plus the shared error it
// raises. The property test in this package drives randomized
// mutate/checkpoint/crash/recover interleavings through internal/persist
// and asserts recovered tables answer queries bit-identically to an
// in-memory oracle.
package crashtest

import (
	"errors"
	"os"
	"sync"

	"probtopk/internal/wal"
)

// ErrInjected is returned by a FailingFile once its write budget is
// exhausted — the simulated moment the machine dies mid-write.
var ErrInjected = errors.New("crashtest: injected write failure")

// Budget is a write allowance shared by every file of one injected
// "process": once Remaining hits zero, every further write fails, exactly
// like a process that lost its disk. A partial write consumes the rest of
// the budget and leaves torn bytes behind — the case recovery must
// truncate away. LimitSyncs adds an independent fsync allowance for
// injecting the other way a disk dies: writes land but fsyncs fail.
type Budget struct {
	mu        sync.Mutex
	remaining int64
	syncs     int64 // fsyncs still allowed; -1 = unlimited
	tripped   bool
}

// NewBudget returns a budget allowing n written bytes and unlimited
// fsyncs.
func NewBudget(n int64) *Budget { return &Budget{remaining: n, syncs: -1} }

// LimitSyncs caps the fsyncs this budget's files will perform from now
// on: after n more successful Syncs, every further Sync (file or
// directory) returns ErrInjected.
func (b *Budget) LimitSyncs(n int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.syncs = n
}

// Tripped reports whether a write or fsync has failed against this budget.
func (b *Budget) Tripped() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.tripped
}

// OpenFile is the wal/persist OpenFile hook: real files whose writes spend
// the shared budget.
func (b *Budget) OpenFile(path string, flag int, perm os.FileMode) (wal.File, error) {
	f, err := os.OpenFile(path, flag, perm)
	if err != nil {
		return nil, err
	}
	return &FailingFile{f: f, budget: b}, nil
}

// FailingFile is a real file that errors — after writing a torn prefix —
// once its budget runs out. Reads never fail: crash injection models a
// dying writer, and recovery reads whatever bytes actually landed.
type FailingFile struct {
	f      *os.File
	budget *Budget
}

// Write spends the budget. Under budget it writes fully; over it, it
// writes whatever allowance remains (the torn prefix a real crash leaves)
// and returns ErrInjected.
func (w *FailingFile) Write(p []byte) (int, error) {
	w.budget.mu.Lock()
	allowed := w.budget.remaining
	if int64(len(p)) <= allowed {
		w.budget.remaining -= int64(len(p))
		w.budget.mu.Unlock()
		return w.f.Write(p)
	}
	w.budget.remaining = 0
	w.budget.tripped = true
	w.budget.mu.Unlock()
	n, _ := w.f.Write(p[:allowed])
	return n, ErrInjected
}

// Sync passes through unless the budget's fsync allowance (LimitSyncs) is
// exhausted; by default durability failures are injected at the write, so
// the acknowledged-bytes accounting in the property test stays exact.
func (w *FailingFile) Sync() error {
	w.budget.mu.Lock()
	switch {
	case w.budget.syncs < 0:
		w.budget.mu.Unlock()
		return w.f.Sync()
	case w.budget.syncs == 0:
		w.budget.tripped = true
		w.budget.mu.Unlock()
		return ErrInjected
	default:
		w.budget.syncs--
		w.budget.mu.Unlock()
		return w.f.Sync()
	}
}

// Close passes through.
func (w *FailingFile) Close() error { return w.f.Close() }
