//go:build ignore

// Command gen regenerates the checked-in persistence fixtures:
//
//	go run internal/persist/testdata/gen.go
//
// from the repository root. It writes the format-v2 golden under
// internal/persist/testdata/golden-v2/ — the byte-exact result of
// migrating the frozen format-v1 golden in place — and the seed corpus
// under internal/persist/testdata/fuzz/FuzzReplayWAL/.
//
// The format-v1 golden under internal/persist/testdata/golden/ is FROZEN:
// it was written by the last format-v1 build and no current code path can
// produce those bytes again. It must never be regenerated or edited —
// it is the proof that today's readers still decode yesterday's files.
// Regenerating golden-v2 is only legitimate alongside a deliberate,
// versioned format change.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"probtopk/internal/persist"
	"probtopk/internal/uncertain"
	"probtopk/internal/wal"
)

func main() {
	root := filepath.Join("internal", "persist", "testdata")
	golden := filepath.Join(root, "golden")
	goldenV2 := filepath.Join(root, "golden-v2")
	corpus := filepath.Join(root, "fuzz", "FuzzReplayWAL")
	for _, dir := range []string{goldenV2, corpus} {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			log.Fatal(err)
		}
	}

	// golden-v2: the byte-exact result of persist.Open migrating a copy of
	// the frozen v1 golden in place with one shard. The migration replays
	// the v1 WAL into the state and commits it as a v2 snapshot plus one
	// empty shard-0 segment at the watermark.
	migDir, err := os.MkdirTemp("", "goldengen")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(migDir)
	entries, err := os.ReadDir(golden)
	if err != nil {
		log.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(golden, e.Name()))
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(migDir, e.Name()), data, 0o644); err != nil {
			log.Fatal(err)
		}
	}
	man, _, err := persist.Open(migDir, persist.Options{Shards: 1})
	if err != nil {
		log.Fatal(err)
	}
	man.Close()
	for _, name := range []string{persist.SnapshotFileName, "wal-s00-00000001.seg"} {
		data, err := os.ReadFile(filepath.Join(migDir, name))
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(goldenV2, name), data, 0o644); err != nil {
			log.Fatal(err)
		}
	}

	// Fuzz seeds: the golden v1 WAL segment, a torn tail, and a lone
	// magic. Built through the real writer (the record codec is
	// format-stable across v1 and v2).
	seg := buildSegment([]wal.Record{
		{Op: wal.OpPut, Name: "sensors", Tuples: []uncertain.Tuple{
			{ID: "s1", Score: 99.5, Prob: 0.25},
			{ID: "s2", Score: 88, Prob: 0.5, Group: "pair"},
			{ID: "s3", Score: 77, Prob: 0.5, Group: "pair"},
		}},
		{Op: wal.OpAppend, Name: "fleet", Tuples: []uncertain.Tuple{
			{ID: "car4", Score: 90, Prob: 0.7},
		}},
		{Op: wal.OpDelete, Name: "radar"},
	})
	seeds := map[string][]byte{
		"golden-segment": seg,
		"torn-tail":      seg[:len(seg)-7],
		"bare-magic":     []byte("PTKWAL01"),
	}
	for name, data := range seeds {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		if err := os.WriteFile(filepath.Join(corpus, name), []byte(body), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("fixtures regenerated")
}

// buildSegment appends records through a real log in a scratch dir and
// returns the resulting segment bytes.
func buildSegment(records []wal.Record) []byte {
	dir, err := os.MkdirTemp("", "walgen")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	l, err := wal.Open(dir, wal.Options{Sync: wal.SyncNever})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := l.Replay(func(wal.Record) error { return nil }); err != nil {
		log.Fatal(err)
	}
	for _, r := range records {
		if err := l.Append(r); err != nil {
			log.Fatal(err)
		}
	}
	l.Close()
	data, err := os.ReadFile(filepath.Join(dir, "wal-00000001.seg"))
	if err != nil {
		log.Fatal(err)
	}
	return data
}
