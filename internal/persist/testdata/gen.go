//go:build ignore

// Command gen regenerates the checked-in persistence fixtures:
//
//	go run internal/persist/testdata/gen.go
//
// from the repository root. It writes the golden snapshot + WAL pair under
// internal/persist/testdata/golden/ (the format-regression gate: today's
// readers must decode these bytes forever) and the seed corpus under
// internal/persist/testdata/fuzz/FuzzReplayWAL/. Regenerating is only
// legitimate alongside a deliberate, versioned format change.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"probtopk/internal/persist"
	"probtopk/internal/uncertain"
	"probtopk/internal/wal"
)

func main() {
	root := filepath.Join("internal", "persist", "testdata")
	golden := filepath.Join(root, "golden")
	corpus := filepath.Join(root, "fuzz", "FuzzReplayWAL")
	for _, dir := range []string{golden, corpus} {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			log.Fatal(err)
		}
	}

	// The checkpoint: two tables, one with ME groups, one independent-only,
	// built through the real Manager so the fixture is exactly what a
	// checkpoint writes.
	fleet := uncertain.NewTable().
		AddIndependent("car1", 80, 0.9).
		AddExclusive("car2", "lane3", 70, 0.4).
		AddExclusive("car3", "lane3", 65, 0.5)
	radar := uncertain.NewTable().
		AddIndependent("r1", 12.5, 0.125).
		AddIndependent("r2", -3, 1)
	snapDir, err := os.MkdirTemp("", "snapgen")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(snapDir)
	man, _, err := persist.Open(snapDir, persist.Options{})
	if err != nil {
		log.Fatal(err)
	}
	err = man.Checkpoint(map[string]*uncertain.Snapshot{
		"fleet": fleet.Snapshot(),
		"radar": radar.Snapshot(),
	})
	if err != nil {
		log.Fatal(err)
	}
	man.Close()
	snap, err := os.ReadFile(filepath.Join(snapDir, persist.SnapshotFileName))
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(golden, persist.SnapshotFileName), snap, 0o644); err != nil {
		log.Fatal(err)
	}

	// The WAL on top of it: a put, an append, and a delete, exercising all
	// three ops and group-carrying tuples. The segment is named at the
	// snapshot's watermark (the checkpoint above leaves walSeq=2) so the
	// reader replays it instead of skipping it as checkpoint-covered.
	seg := buildSegment([]wal.Record{
		{Op: wal.OpPut, Name: "sensors", Tuples: []uncertain.Tuple{
			{ID: "s1", Score: 99.5, Prob: 0.25},
			{ID: "s2", Score: 88, Prob: 0.5, Group: "pair"},
			{ID: "s3", Score: 77, Prob: 0.5, Group: "pair"},
		}},
		{Op: wal.OpAppend, Name: "fleet", Tuples: []uncertain.Tuple{
			{ID: "car4", Score: 90, Prob: 0.7},
		}},
		{Op: wal.OpDelete, Name: "radar"},
	})
	if err := os.WriteFile(filepath.Join(golden, "wal-00000002.seg"), seg, 0o644); err != nil {
		log.Fatal(err)
	}
	if err := os.Remove(filepath.Join(golden, "wal-00000001.seg")); err != nil && !os.IsNotExist(err) {
		log.Fatal(err)
	}

	// Fuzz seeds: the golden segment, a torn tail, and a lone magic.
	seeds := map[string][]byte{
		"golden-segment": seg,
		"torn-tail":      seg[:len(seg)-7],
		"bare-magic":     []byte("PTKWAL01"),
	}
	for name, data := range seeds {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		if err := os.WriteFile(filepath.Join(corpus, name), []byte(body), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("fixtures regenerated")
}

// buildSegment appends records through a real log in a scratch dir and
// returns the resulting segment bytes.
func buildSegment(records []wal.Record) []byte {
	dir, err := os.MkdirTemp("", "walgen")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	l, err := wal.Open(dir, wal.Options{Sync: wal.SyncNever})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := l.Replay(func(wal.Record) error { return nil }); err != nil {
		log.Fatal(err)
	}
	for _, r := range records {
		if err := l.Append(r); err != nil {
			log.Fatal(err)
		}
	}
	l.Close()
	data, err := os.ReadFile(filepath.Join(dir, "wal-00000001.seg"))
	if err != nil {
		log.Fatal(err)
	}
	return data
}
