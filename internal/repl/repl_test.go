package repl

import (
	"fmt"
	"math"
	"net"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"

	"probtopk/internal/persist"
	"probtopk/internal/persist/crashtest"
	"probtopk/internal/uncertain"
	"probtopk/internal/wal"
)

// fakeApplier is an in-memory Applier: a plain table map. It lets the
// tests assert exactly what the replication stream delivered, independent
// of the server's own apply semantics (covered by the daemon's tests).
type fakeApplier struct {
	mu     sync.Mutex
	tables map[string][]uncertain.Tuple
}

func newFakeApplier() *fakeApplier {
	return &fakeApplier{tables: make(map[string][]uncertain.Tuple)}
}

func (a *fakeApplier) ApplyPut(name string, tuples []uncertain.Tuple) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.tables[name] = append([]uncertain.Tuple(nil), tuples...)
	return nil
}

func (a *fakeApplier) ApplyAppend(name string, tuples []uncertain.Tuple) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, ok := a.tables[name]; !ok {
		return fmt.Errorf("append to unknown table %q", name)
	}
	a.tables[name] = append(a.tables[name], tuples...)
	return nil
}

func (a *fakeApplier) ApplyDelete(name string) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, ok := a.tables[name]; !ok {
		return fmt.Errorf("no table %q", name)
	}
	delete(a.tables, name)
	return nil
}

func (a *fakeApplier) TableNames() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	names := make([]string, 0, len(a.tables))
	for name := range a.tables {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// snapshot returns a deep copy with tuples sorted by ID, for
// order-insensitive comparison (a resync ships a table's full contents in
// snapshot order, not insertion order).
func (a *fakeApplier) snapshot() map[string][]uncertain.Tuple {
	a.mu.Lock()
	defer a.mu.Unlock()
	return normalize(a.tables)
}

func normalize(tables map[string][]uncertain.Tuple) map[string][]uncertain.Tuple {
	out := make(map[string][]uncertain.Tuple, len(tables))
	for name, tuples := range tables {
		cp := append([]uncertain.Tuple(nil), tuples...)
		sort.Slice(cp, func(i, j int) bool { return cp[i].ID < cp[j].ID })
		out[name] = cp
	}
	return out
}

func mkTuples(prefix string, n, from int) []uncertain.Tuple {
	tuples := make([]uncertain.Tuple, n)
	for i := range tuples {
		tuples[i] = uncertain.Tuple{
			ID:    fmt.Sprintf("%s-%04d", prefix, from+i),
			Score: float64(100 - from - i),
			Prob:  0.5,
		}
	}
	return tuples
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// startLeader serves ld on a loopback listener and returns its address.
func startLeader(t *testing.T, ld *Leader) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go ld.Serve(ln)
	return ln.Addr().String()
}

func openManager(t *testing.T, dir string, opts persist.Options) *persist.Manager {
	t.Helper()
	man, _, err := persist.Open(dir, opts)
	if err != nil {
		t.Fatalf("persist.Open: %v", err)
	}
	return man
}

// TestLiveReplication streams live mutations across four shards and
// checks the follower converges to the leader's state, with sane
// staleness reporting.
func TestLiveReplication(t *testing.T) {
	man := openManager(t, t.TempDir(), persist.Options{Shards: 4})
	defer man.Close()
	ld := NewLeader(man)
	defer ld.Close()
	addr := startLeader(t, ld)

	app := newFakeApplier()
	f := NewFollower(addr, app)
	go f.Run()
	defer f.Close()

	waitFor(t, "follower connect", func() bool { return f.Status().Connected })

	want := make(map[string][]uncertain.Tuple)
	for i := 0; i < 8; i++ {
		name := fmt.Sprintf("table-%d", i)
		tuples := mkTuples(name, 5, 0)
		if err := man.LogPut(name, tuples); err != nil {
			t.Fatalf("LogPut(%s): %v", name, err)
		}
		want[name] = tuples
	}
	extra := mkTuples("table-3", 3, 5)
	if err := man.LogAppend("table-3", extra); err != nil {
		t.Fatalf("LogAppend: %v", err)
	}
	want["table-3"] = append(want["table-3"], extra...)
	if err := man.LogDelete("table-7"); err != nil {
		t.Fatalf("LogDelete: %v", err)
	}
	delete(want, "table-7")

	wantN := normalize(want)
	waitFor(t, "follower to converge", func() bool {
		return reflect.DeepEqual(app.snapshot(), wantN)
	})

	// Heartbeats land the leader's committed positions; once idle, every
	// shard must report caught up (Behind == 0), including shards that
	// never saw a record.
	waitFor(t, "zero staleness", func() bool {
		st := f.Status()
		if len(st.Shards) != 4 {
			return false
		}
		for _, sh := range st.Shards {
			if sh.Leader.IsZero() || sh.Behind() != 0 {
				return false
			}
		}
		return true
	})
	st := f.Status()
	if st.AppliedRecords == 0 || st.ApplyErrors != 0 {
		t.Fatalf("bad counters: %+v", st)
	}
	if got := ld.Status(); got.Followers != 1 || got.FramesSent == 0 {
		t.Fatalf("bad leader status: %+v", got)
	}
}

// TestCatchUpFromSegmentsAndSnapshot connects a cold follower to a leader
// whose history is partly checkpointed (snapshot) and partly retained WAL
// segments, and checks the resync reproduces the exact state.
func TestCatchUpFromSegmentsAndSnapshot(t *testing.T) {
	man := openManager(t, t.TempDir(), persist.Options{Shards: 2})
	defer man.Close()

	state := make(map[string][]uncertain.Tuple)
	put := func(name string, tuples []uncertain.Tuple) {
		t.Helper()
		if err := man.LogPut(name, tuples); err != nil {
			t.Fatalf("LogPut(%s): %v", name, err)
		}
		state[name] = tuples
	}
	put("alpha", mkTuples("alpha", 4, 0))
	put("beta", mkTuples("beta", 6, 0))

	// Checkpoint: alpha/beta move into the snapshot, their segments drop.
	snaps := make(map[string]*uncertain.Snapshot, len(state))
	for name, tuples := range state {
		snaps[name] = uncertain.NewSnapshot(tuples)
	}
	if err := man.Checkpoint(snaps); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}

	// Post-checkpoint records stay in retained segments.
	put("gamma", mkTuples("gamma", 3, 0))
	if err := man.LogAppend("alpha", mkTuples("alpha", 2, 4)); err != nil {
		t.Fatalf("LogAppend: %v", err)
	}
	state["alpha"] = append(state["alpha"], mkTuples("alpha", 2, 4)...)

	ld := NewLeader(man)
	defer ld.Close()
	addr := startLeader(t, ld)

	app := newFakeApplier()
	f := NewFollower(addr, app)
	go f.Run()
	defer f.Close()

	wantN := normalize(state)
	waitFor(t, "cold follower to catch up", func() bool {
		return reflect.DeepEqual(app.snapshot(), wantN)
	})
	if st := f.Status(); st.Resets != 2 { // one reset per shard
		t.Fatalf("Resets = %d, want 2", st.Resets)
	}
}

// TestReconnectContinues kills the leader process (listener and
// connections) and restarts it over the same data; the follower must
// reconnect and resume WITHOUT a resync — its applied positions are still
// retained — and then receive new records.
func TestReconnectContinues(t *testing.T) {
	dir := t.TempDir()
	man := openManager(t, dir, persist.Options{Shards: 1})
	defer man.Close()

	ld1 := NewLeader(man)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	addr := ln.Addr().String()
	go ld1.Serve(ln)

	app := newFakeApplier()
	f := NewFollower(addr, app)
	go f.Run()
	defer f.Close()

	if err := man.LogPut("tab", mkTuples("tab", 4, 0)); err != nil {
		t.Fatalf("LogPut: %v", err)
	}
	waitFor(t, "initial apply", func() bool { return f.Status().AppliedRecords >= 1 })
	resetsBefore := f.Status().Resets

	ld1.Close() // drops the follower's connection and the listener

	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("re-listen on %s: %v", addr, err)
	}
	ld2 := NewLeader(man)
	defer ld2.Close()
	go ld2.Serve(ln2)

	if err := man.LogAppend("tab", mkTuples("tab", 2, 4)); err != nil {
		t.Fatalf("LogAppend: %v", err)
	}
	want := normalize(map[string][]uncertain.Tuple{"tab": mkTuples("tab", 6, 0)})
	waitFor(t, "reconnect and resume", func() bool {
		return reflect.DeepEqual(app.snapshot(), want)
	})
	st := f.Status()
	if st.Resets != resetsBefore {
		t.Fatalf("reconnect forced a resync: resets %d -> %d", resetsBefore, st.Resets)
	}
	if st.Reconnects == 0 {
		t.Fatalf("Reconnects = 0 after a leader restart")
	}
}

// TestFailedFsyncNeverShipped is the crash-injection check for the
// durability boundary: a record whose batch fsync failed was never
// acknowledged, so no follower — live at the time OR resyncing later —
// may ever observe it.
func TestFailedFsyncNeverShipped(t *testing.T) {
	budget := crashtest.NewBudget(math.MaxInt64)
	man := openManager(t, t.TempDir(), persist.Options{
		Fsync:      true,
		BatchFsync: true,
		Shards:     1,
		OpenFile:   budget.OpenFile,
	})
	defer man.Close()
	ld := NewLeader(man)
	defer ld.Close()
	addr := startLeader(t, ld)

	app := newFakeApplier()
	f := NewFollower(addr, app)
	go f.Run()
	defer f.Close()

	good := mkTuples("durable", 3, 0)
	if err := man.LogPut("durable", good); err != nil {
		t.Fatalf("LogPut: %v", err)
	}
	waitFor(t, "durable record to replicate", func() bool {
		got := app.snapshot()
		return len(got["durable"]) == 3
	})

	// From here every fsync fails: the next append's group commit fails,
	// the record is rolled back and must never be acknowledged nor shipped.
	budget.LimitSyncs(0)
	if err := man.LogPut("doomed", mkTuples("doomed", 2, 0)); err == nil {
		t.Fatalf("LogPut succeeded with failing fsync")
	}

	// The live follower must not see it (give the stream time to flush).
	time.Sleep(250 * time.Millisecond)
	if got := app.snapshot(); len(got) != 1 || len(got["durable"]) != 3 {
		t.Fatalf("follower observed unacknowledged state: %v", got)
	}

	// Neither may a follower that resyncs from the leader's files.
	app2 := newFakeApplier()
	f2 := NewFollower(addr, app2)
	go f2.Run()
	defer f2.Close()
	waitFor(t, "resync of second follower", func() bool {
		got := app2.snapshot()
		return len(got["durable"]) == 3
	})
	if got := app2.snapshot(); len(got) != 1 {
		t.Fatalf("resynced follower observed unacknowledged state: %v", got)
	}
}

// TestBadMagicRejected checks the leader hangs up on a client that does
// not speak the protocol.
func TestBadMagicRejected(t *testing.T) {
	man := openManager(t, t.TempDir(), persist.Options{})
	defer man.Close()
	ld := NewLeader(man)
	defer ld.Close()
	addr := startLeader(t, ld)

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("GET / HTTP/1.1\r\n")); err != nil {
		t.Fatalf("write: %v", err)
	}
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatalf("leader answered a non-protocol client")
	}
}

// TestProtocolRoundTrip exercises the message codec.
func TestProtocolRoundTrip(t *testing.T) {
	pos := []wal.Pos{{Seg: 3, Off: 1234}, {Seg: 7, Off: 8}}
	n, got, err := decodeHello(encodeHello(2, pos))
	if err != nil || n != 2 || !reflect.DeepEqual(got, pos) {
		t.Fatalf("hello round trip: %d %v %v", n, got, err)
	}
	if n, _, err := decodeHello(encodeHello(0, nil)); err != nil || n != 0 {
		t.Fatalf("cold hello round trip: %d %v", n, err)
	}
	if n, err := decodeReply(encodeReply(16)); err != nil || n != 16 {
		t.Fatalf("reply round trip: %d %v", n, err)
	}
	if _, err := decodeReply(encodeReply(0)); err == nil {
		t.Fatalf("reply accepted zero shards")
	}

	frame, err := wal.EncodeFrame(wal.Record{Op: wal.OpPut, Name: "t", Tuples: mkTuples("t", 2, 0)})
	if err != nil {
		t.Fatalf("EncodeFrame: %v", err)
	}
	m, err := decodeMessage(encodeRecord(1, wal.Pos{Seg: 2, Off: 99}, frame), 4)
	if err != nil || m.kind != msgRecord || m.shard != 1 || m.pos != (wal.Pos{Seg: 2, Off: 99}) {
		t.Fatalf("record round trip: %+v %v", m, err)
	}
	if rec, err := wal.DecodeFrame(m.frame); err != nil || rec.Name != "t" || len(rec.Tuples) != 2 {
		t.Fatalf("frame survived badly: %+v %v", rec, err)
	}
	if _, err := decodeMessage(encodeRecord(4, wal.Pos{}, frame), 4); err == nil {
		t.Fatalf("record with out-of-range shard accepted")
	}

	m, err = decodeMessage(encodeReset(0), 1)
	if err != nil || m.kind != msgReset || m.shard != 0 {
		t.Fatalf("reset round trip: %+v %v", m, err)
	}
	m, err = decodeMessage(encodeAdvance(2, wal.Pos{Seg: 5, Off: 42}), 4)
	if err != nil || m.kind != msgAdvance || m.shard != 2 || m.pos != (wal.Pos{Seg: 5, Off: 42}) {
		t.Fatalf("advance round trip: %+v %v", m, err)
	}
	m, err = decodeMessage(encodeHeartbeat(pos), 4)
	if err != nil || m.kind != msgHeartbeat || !reflect.DeepEqual(m.heartbeat, pos) {
		t.Fatalf("heartbeat round trip: %+v %v", m, err)
	}
	if _, err := decodeMessage([]byte{99}, 1); err == nil {
		t.Fatalf("unknown message type accepted")
	}
}

// TestShardStatusBehind pins the staleness arithmetic.
func TestShardStatusBehind(t *testing.T) {
	cases := []struct {
		applied, leader wal.Pos
		want            int64
	}{
		{wal.Pos{Seg: 1, Off: 100}, wal.Pos{Seg: 1, Off: 100}, 0},
		{wal.Pos{Seg: 2, Off: 50}, wal.Pos{Seg: 1, Off: 900}, 0}, // ahead of a stale heartbeat
		{wal.Pos{Seg: 1, Off: 100}, wal.Pos{Seg: 1, Off: 164}, 64},
		{wal.Pos{Seg: 1, Off: 100}, wal.Pos{Seg: 3, Off: 8}, -1},
	}
	for _, c := range cases {
		got := ShardStatus{Applied: c.applied, Leader: c.leader}.Behind()
		if got != c.want {
			t.Fatalf("Behind(%v, %v) = %d, want %d", c.applied, c.leader, got, c.want)
		}
	}
}
