// Package repl replicates a leader's committed WAL stream to read-only
// followers over TCP.
//
// The leader taps every shard's WAL at the group-commit batcher
// (wal.CommitTap), so only records whose fsync has succeeded — records the
// leader has acknowledged to a client — ever reach the wire. A follower
// that connects cold, or whose position is no longer retained on the
// leader, is resynced from the leader's checkpoint snapshot plus retained
// segments (a RESET); one that reconnects within the retained window
// resumes from its last applied position (a CONTINUE). Either way the
// stream then switches to the live commit tap, deduplicated by position,
// so a record is applied at most once per session.
//
// Wire format. After an 8-byte magic exchange ("PTKREPL1" both ways), every
// message is framed exactly like a WAL record: uint32 little-endian payload
// length, uint32 little-endian CRC32C of the payload, payload. The
// follower's hello payload carries its shard count and per-shard applied
// positions (uvarints); the leader's reply carries its shard count. Stream
// payloads start with a type byte:
//
//	reset     (1): uvarint shard — drop every local table of that shard
//	record    (2): uvarint shard, seg, endOff, then a raw WAL frame
//	heartbeat (3): uvarint count, then (seg, endOff) per shard — the
//	               leader's committed positions, for staleness tracking
//	advance   (4): uvarint shard, seg, endOff — everything at or below
//	               this position has been shipped; sent at the end of a
//	               shard's catch-up so an empty (or already caught-up)
//	               shard still lands on the leader's committed position
//	snapshot  (5): shaped like record — a checkpoint table shipped after a
//	               reset. Applied without the position dedup (every
//	               snapshot table of a shard rides at the same position,
//	               the checkpoint watermark)
//
// The follower never writes after its hello; the leader never reads after
// its reply. Liveness is the heartbeat (leader → follower) and the write
// error a dead peer eventually produces (follower → leader).
package repl

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"time"

	"probtopk/internal/persist"
	"probtopk/internal/wal"
)

// protocolMagic opens both directions of a replication connection.
const protocolMagic = "PTKREPL1"

const (
	msgReset     byte = 1
	msgRecord    byte = 2
	msgHeartbeat byte = 3
	msgAdvance   byte = 4
	msgSnapshot  byte = 5
)

// maxMsgBytes bounds what a hostile or corrupt length prefix can make the
// receiver allocate. WAL records are capped well below this.
const maxMsgBytes = 64 << 20

const (
	handshakeTimeout = 10 * time.Second
	// writeTimeout bounds a single buffered write or flush on the leader; a
	// follower that cannot drain a flush for this long is dropped (it will
	// reconnect and catch up from segments).
	writeTimeout = 30 * time.Second
	// readTimeout bounds the follower's wait for the next message. The
	// leader heartbeats every heartbeatInterval, so hitting this means the
	// leader is gone or wedged.
	readTimeout       = 10 * time.Second
	heartbeatInterval = 500 * time.Millisecond
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// writeMsg frames payload onto w: length, CRC32C, bytes.
func writeMsg(w io.Writer, payload []byte) error {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readMsg reads one framed payload from r, verifying length bound and CRC.
func readMsg(r io.Reader) ([]byte, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	if n > maxMsgBytes {
		return nil, fmt.Errorf("repl: message of %d bytes exceeds the %d-byte limit", n, maxMsgBytes)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(hdr[4:8]) {
		return nil, errors.New("repl: message CRC mismatch")
	}
	return payload, nil
}

// writeMagic sends the protocol magic raw (unframed — it IS the framing
// bootstrap: a peer speaking anything else fails here, before any length
// prefix is trusted).
func writeMagic(w io.Writer) error {
	_, err := w.Write([]byte(protocolMagic))
	return err
}

func readMagic(r io.Reader) error {
	buf := make([]byte, len(protocolMagic))
	if _, err := io.ReadFull(r, buf); err != nil {
		return err
	}
	if string(buf) != protocolMagic {
		return fmt.Errorf("repl: bad protocol magic %q", buf)
	}
	return nil
}

// encodeHello builds the follower's hello payload: its shard count and the
// position after the last record it applied per shard. shards == 0 requests
// an unconditional resync (cold start, or after an apply error).
func encodeHello(shards int, pos []wal.Pos) []byte {
	buf := binary.AppendUvarint(nil, uint64(shards))
	for i := 0; i < shards; i++ {
		buf = binary.AppendUvarint(buf, pos[i].Seg)
		buf = binary.AppendUvarint(buf, uint64(pos[i].Off))
	}
	return buf
}

func decodeHello(payload []byte) (int, []wal.Pos, error) {
	d := wal.Decoder{Buf: payload, Prefix: "repl"}
	n := d.Uvarint()
	if d.Err() == nil && n > persist.MaxShards {
		d.Fail("hello shard count %d exceeds %d", n, persist.MaxShards)
	}
	var pos []wal.Pos
	for i := uint64(0); i < n && d.Err() == nil; i++ {
		seg := d.Uvarint()
		off := d.Uvarint()
		pos = append(pos, wal.Pos{Seg: seg, Off: int64(off)})
	}
	if err := d.Err(); err != nil {
		return 0, nil, err
	}
	if len(d.Buf) != 0 {
		return 0, nil, errors.New("repl: trailing bytes after hello")
	}
	return int(n), pos, nil
}

// encodeReply builds the leader's handshake reply: its shard count.
func encodeReply(shards int) []byte {
	return binary.AppendUvarint(nil, uint64(shards))
}

func decodeReply(payload []byte) (int, error) {
	d := wal.Decoder{Buf: payload, Prefix: "repl"}
	n := d.Uvarint()
	if d.Err() == nil && (n < 1 || n > persist.MaxShards) {
		d.Fail("leader shard count %d out of range [1, %d]", n, persist.MaxShards)
	}
	if err := d.Err(); err != nil {
		return 0, err
	}
	if len(d.Buf) != 0 {
		return 0, errors.New("repl: trailing bytes after handshake reply")
	}
	return int(n), nil
}

// message is one decoded stream payload.
type message struct {
	kind      byte
	shard     int
	pos       wal.Pos   // record: position after the frame on the leader
	frame     []byte    // record: raw WAL frame (aliases the payload)
	heartbeat []wal.Pos // heartbeat: leader committed positions per shard
}

func encodeReset(shard int) []byte {
	return binary.AppendUvarint([]byte{msgReset}, uint64(shard))
}

func encodeRecord(shard int, pos wal.Pos, frame []byte) []byte {
	return encodeFramed(msgRecord, shard, pos, frame)
}

func encodeSnapshot(shard int, pos wal.Pos, frame []byte) []byte {
	return encodeFramed(msgSnapshot, shard, pos, frame)
}

func encodeFramed(kind byte, shard int, pos wal.Pos, frame []byte) []byte {
	buf := binary.AppendUvarint([]byte{kind}, uint64(shard))
	buf = binary.AppendUvarint(buf, pos.Seg)
	buf = binary.AppendUvarint(buf, uint64(pos.Off))
	return append(buf, frame...)
}

func encodeAdvance(shard int, pos wal.Pos) []byte {
	buf := binary.AppendUvarint([]byte{msgAdvance}, uint64(shard))
	buf = binary.AppendUvarint(buf, pos.Seg)
	return binary.AppendUvarint(buf, uint64(pos.Off))
}

func encodeHeartbeat(pos []wal.Pos) []byte {
	buf := binary.AppendUvarint([]byte{msgHeartbeat}, uint64(len(pos)))
	for _, p := range pos {
		buf = binary.AppendUvarint(buf, p.Seg)
		buf = binary.AppendUvarint(buf, uint64(p.Off))
	}
	return buf
}

// decodeMessage parses a stream payload. m.frame and m.heartbeat alias
// payload; shards bounds the shard indices a peer may claim.
func decodeMessage(payload []byte, shards int) (message, error) {
	d := wal.Decoder{Buf: payload, Prefix: "repl"}
	var m message
	m.kind = d.Byte()
	switch m.kind {
	case msgReset:
		m.shard = int(d.Uvarint())
	case msgRecord, msgSnapshot:
		m.shard = int(d.Uvarint())
		m.pos.Seg = d.Uvarint()
		m.pos.Off = int64(d.Uvarint())
		if d.Err() == nil {
			m.frame = d.Buf
			d.Buf = nil
		}
	case msgAdvance:
		m.shard = int(d.Uvarint())
		m.pos.Seg = d.Uvarint()
		m.pos.Off = int64(d.Uvarint())
	case msgHeartbeat:
		n := d.Uvarint()
		if d.Err() == nil && n > persist.MaxShards {
			d.Fail("heartbeat shard count %d exceeds %d", n, persist.MaxShards)
		}
		for i := uint64(0); i < n && d.Err() == nil; i++ {
			seg := d.Uvarint()
			off := d.Uvarint()
			m.heartbeat = append(m.heartbeat, wal.Pos{Seg: seg, Off: int64(off)})
		}
	default:
		if d.Err() == nil {
			d.Fail("unknown message type %d", m.kind)
		}
	}
	if err := d.Err(); err != nil {
		return message{}, err
	}
	if m.kind != msgHeartbeat && (m.shard < 0 || m.shard >= shards) {
		return message{}, fmt.Errorf("repl: shard %d out of range [0, %d)", m.shard, shards)
	}
	return m, nil
}
