package repl

import (
	"bufio"
	"log"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"probtopk/internal/persist"
	"probtopk/internal/wal"
)

// Applier is the state machine a follower replays the leader's records
// into. *server.Server satisfies it. Calls arrive from a single goroutine.
// An error from ApplyPut/ApplyAppend/ApplyDelete means the local state has
// diverged from the stream; the follower reacts by reconnecting with a
// forced resync, so appliers should fail loudly rather than patch around
// inconsistencies.
type Applier interface {
	// ApplyPut installs tuples as the table's full contents.
	ApplyPut(name string, tuples []Tuple) error
	// ApplyAppend appends tuples to an existing table.
	ApplyAppend(name string, tuples []Tuple) error
	// ApplyDelete drops the table; an unknown name is an error.
	ApplyDelete(name string) error
	// TableNames lists every hosted table, for resolving a shard reset
	// into the local tables to drop.
	TableNames() []string
}

const (
	minBackoff = 50 * time.Millisecond
	maxBackoff = 5 * time.Second
	// healthySession: a session that lived this long resets the backoff, so
	// a leader restart after a long-lived stream reconnects fast.
	healthySession = 10 * time.Second
	dialTimeout    = 5 * time.Second
)

// ShardStatus is one shard's replication staleness as seen by a follower.
type ShardStatus struct {
	Shard          int
	AppliedRecords uint64    // records applied this process lifetime
	Applied        wal.Pos   // position after the last applied record
	Leader         wal.Pos   // leader's committed position (last heartbeat)
	LastApplied    time.Time // zero until the first record lands
}

// Behind returns how far this shard lags the leader in WAL bytes: 0 when
// caught up, a byte count within one segment, -1 when the gap spans a
// segment rotation (byte distance across files is not meaningful).
func (s ShardStatus) Behind() int64 {
	if !s.Applied.Less(s.Leader) {
		return 0
	}
	if s.Applied.Seg == s.Leader.Seg {
		return s.Leader.Off - s.Applied.Off
	}
	return -1
}

// Status is a point-in-time snapshot of a follower's replication state.
type Status struct {
	LeaderAddr     string
	Connected      bool
	Shards         []ShardStatus
	Resets         uint64
	Reconnects     uint64
	AppliedRecords uint64
	ApplyErrors    uint64
}

// Follower maintains a replication session to the leader at addr, applying
// the stream into app. It keeps no on-disk state: a fresh process always
// resyncs from the leader's checkpoint, and a live one resumes from its
// in-memory positions.
type Follower struct {
	addr string
	app  Applier

	stop    chan struct{}
	done    chan struct{}
	once    sync.Once
	started atomic.Bool

	mu          sync.Mutex
	conn        net.Conn // live connection, closed by Close to unblock reads
	connected   bool
	shards      int
	pos         []wal.Pos
	leaderPos   []wal.Pos
	applied     []uint64
	lastApplied []time.Time
	forceReset  bool // next hello requests an unconditional resync
	sessions    uint64
	resets      uint64
	appliedAll  uint64
	applyErrors uint64
}

// NewFollower returns a follower for the leader at addr. Call Run (usually
// in a goroutine) to start it and Close to stop it.
func NewFollower(addr string, app Applier) *Follower {
	return &Follower{
		addr: addr,
		app:  app,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
}

// Run drives the replication session until Close: dial, handshake, apply
// the stream; on any error, reconnect with jittered exponential backoff.
func (f *Follower) Run() {
	f.started.Store(true)
	defer close(f.done)
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	backoff := minBackoff
	for {
		select {
		case <-f.stop:
			return
		default:
		}
		began := time.Now()
		err := f.session()
		select {
		case <-f.stop:
			return
		default:
		}
		if err != nil {
			log.Printf("repl: follower: %v (reconnecting)", err)
		}
		if time.Since(began) >= healthySession {
			backoff = minBackoff
		}
		// Jitter in [0.5, 1.5) of the nominal backoff so a herd of
		// followers does not reconnect in lockstep.
		delay := time.Duration(float64(backoff) * (0.5 + rng.Float64()))
		backoff *= 2
		if backoff > maxBackoff {
			backoff = maxBackoff
		}
		select {
		case <-f.stop:
			return
		case <-time.After(delay):
		}
	}
}

// Close stops the follower and waits for Run to return.
func (f *Follower) Close() {
	f.once.Do(func() {
		close(f.stop)
		f.mu.Lock()
		if f.conn != nil {
			f.conn.Close()
		}
		f.mu.Unlock()
	})
	if f.started.Load() {
		<-f.done
	}
}

// Status returns the follower's replication state.
func (f *Follower) Status() Status {
	f.mu.Lock()
	defer f.mu.Unlock()
	st := Status{
		LeaderAddr:     f.addr,
		Connected:      f.connected,
		Resets:         f.resets,
		AppliedRecords: f.appliedAll,
		ApplyErrors:    f.applyErrors,
	}
	if f.sessions > 1 {
		st.Reconnects = f.sessions - 1
	}
	st.Shards = make([]ShardStatus, f.shards)
	for i := 0; i < f.shards; i++ {
		st.Shards[i] = ShardStatus{
			Shard:          i,
			AppliedRecords: f.applied[i],
			Applied:        f.pos[i],
			Leader:         f.leaderPos[i],
			LastApplied:    f.lastApplied[i],
		}
	}
	return st
}

// session runs one connection's lifetime: handshake, then read-and-apply
// until an error or Close.
func (f *Follower) session() error {
	conn, err := net.DialTimeout("tcp", f.addr, dialTimeout)
	if err != nil {
		return err
	}
	f.mu.Lock()
	f.conn = conn
	hello := encodeHello(0, nil)
	if !f.forceReset && f.shards > 0 {
		hello = encodeHello(f.shards, f.pos)
	}
	f.mu.Unlock()
	defer func() {
		f.mu.Lock()
		f.conn = nil
		f.connected = false
		f.mu.Unlock()
		conn.Close()
	}()

	conn.SetDeadline(time.Now().Add(handshakeTimeout))
	if err := writeMagic(conn); err != nil {
		return err
	}
	if err := writeMsg(conn, hello); err != nil {
		return err
	}
	if err := readMagic(conn); err != nil {
		return err
	}
	r := bufio.NewReaderSize(conn, 1<<16)
	payload, err := readMsg(r)
	if err != nil {
		return err
	}
	leaderShards, err := decodeReply(payload)
	if err != nil {
		return err
	}
	conn.SetWriteDeadline(time.Time{})

	f.mu.Lock()
	if f.shards != leaderShards {
		// New layout (first connect, or the leader was rebuilt with a
		// different shard count): all positions start over. The leader saw
		// a mismatched hello and will open every shard with a reset.
		f.shards = leaderShards
		f.pos = make([]wal.Pos, leaderShards)
		f.leaderPos = make([]wal.Pos, leaderShards)
		f.applied = make([]uint64, leaderShards)
		f.lastApplied = make([]time.Time, leaderShards)
	}
	f.forceReset = false
	f.connected = true
	f.sessions++
	f.mu.Unlock()

	for {
		conn.SetReadDeadline(time.Now().Add(readTimeout))
		payload, err := readMsg(r)
		if err != nil {
			return err
		}
		m, err := decodeMessage(payload, leaderShards)
		if err != nil {
			return err
		}
		switch m.kind {
		case msgReset:
			f.applyReset(m.shard)
		case msgRecord, msgSnapshot:
			if err := f.applyRecord(m); err != nil {
				f.mu.Lock()
				f.applyErrors++
				f.forceReset = true
				f.mu.Unlock()
				return err
			}
		case msgAdvance:
			f.mu.Lock()
			if f.pos[m.shard].Less(m.pos) {
				f.pos[m.shard] = m.pos
			}
			f.mu.Unlock()
		case msgHeartbeat:
			f.mu.Lock()
			copy(f.leaderPos, m.heartbeat)
			f.mu.Unlock()
		}
	}
}

// applyReset drops every local table belonging to shard and rewinds its
// position; the leader follows with the shard's full contents.
func (f *Follower) applyReset(shard int) {
	for _, name := range f.app.TableNames() {
		if persist.ShardOf(name, f.shards) == shard {
			if err := f.app.ApplyDelete(name); err != nil {
				log.Printf("repl: follower: dropping %q for shard %d reset: %v", name, shard, err)
			}
		}
	}
	f.mu.Lock()
	f.pos[shard] = wal.Pos{}
	f.resets++
	f.mu.Unlock()
}

// applyRecord decodes and applies one record message, deduplicating by
// position (catch-up and the live tap may overlap at the seam). Snapshot
// records skip the dedup: a shard's checkpoint tables all ride at the same
// position (the watermark), and they only ever follow a reset.
func (f *Follower) applyRecord(m message) error {
	f.mu.Lock()
	cur := f.pos[m.shard]
	f.mu.Unlock()
	if m.kind != msgSnapshot && !cur.Less(m.pos) {
		return nil
	}
	rec, err := wal.DecodeFrame(m.frame)
	if err != nil {
		return err
	}
	switch rec.Op {
	case wal.OpPut:
		err = f.app.ApplyPut(rec.Name, rec.Tuples)
	case wal.OpAppend:
		err = f.app.ApplyAppend(rec.Name, rec.Tuples)
	case wal.OpDelete:
		err = f.app.ApplyDelete(rec.Name)
	}
	if err != nil {
		return err
	}
	f.mu.Lock()
	if f.pos[m.shard].Less(m.pos) {
		f.pos[m.shard] = m.pos
	}
	f.applied[m.shard]++
	f.appliedAll++
	f.lastApplied[m.shard] = time.Now()
	f.mu.Unlock()
	return nil
}
