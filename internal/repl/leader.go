package repl

import (
	"bufio"
	"errors"
	"fmt"
	"log"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"probtopk/internal/persist"
	"probtopk/internal/uncertain"
	"probtopk/internal/wal"
)

// subBuffer is the per-follower, per-shard live-feed buffer. The commit tap
// must never block, so a follower that falls this many records behind the
// live stream is cut off and made to reconnect (it then catches up from the
// segment files, where backpressure is harmless).
const subBuffer = 4096

// catchUpAttempts bounds the reset-and-retry loop when checkpoints keep
// racing the catch-up reads. Each retry requires a full checkpoint cycle to
// have completed in the middle of ours, so two is already unlikely.
const catchUpAttempts = 5

// tapMsg is one committed record as observed by the WAL tap.
type tapMsg struct {
	pos   wal.Pos
	frame []byte
}

type subscriber struct{ ch chan tapMsg }

// hub fans one shard's commit tap out to its subscribers without ever
// blocking the commit path: a subscriber whose buffer is full is removed
// and its channel closed, which the pump turns into a dropped connection.
type hub struct {
	mu   sync.Mutex
	subs map[*subscriber]struct{}
}

func newHub() *hub { return &hub{subs: make(map[*subscriber]struct{})} }

// publish runs under the shard WAL's internal lock (wal.CommitTap
// contract): non-blocking, no calls back into the log.
func (h *hub) publish(pos wal.Pos, frame []byte) {
	h.mu.Lock()
	for s := range h.subs {
		select {
		case s.ch <- tapMsg{pos: pos, frame: frame}:
		default:
			delete(h.subs, s)
			close(s.ch)
		}
	}
	h.mu.Unlock()
}

func (h *hub) subscribe() *subscriber {
	s := &subscriber{ch: make(chan tapMsg, subBuffer)}
	h.mu.Lock()
	h.subs[s] = struct{}{}
	h.mu.Unlock()
	return s
}

func (h *hub) unsubscribe(s *subscriber) {
	h.mu.Lock()
	delete(h.subs, s)
	h.mu.Unlock()
}

// sendError marks an error from writing to the follower connection, so the
// catch-up path can tell "the connection is dead" (fatal for this session)
// from "the segment file went away under us" (retry with a reset).
type sendError struct{ err error }

func (e *sendError) Error() string { return e.err.Error() }
func (e *sendError) Unwrap() error { return e.err }

// connWriter is the leader's per-connection writer: buffered, with a write
// deadline armed before every write so a wedged follower cannot hold the
// handler goroutine forever.
type connWriter struct {
	conn  net.Conn
	w     *bufio.Writer
	bytes *atomic.Uint64
}

func (cw *connWriter) writeMsg(payload []byte) error {
	cw.conn.SetWriteDeadline(time.Now().Add(writeTimeout))
	if err := writeMsg(cw.w, payload); err != nil {
		return err
	}
	cw.bytes.Add(uint64(len(payload) + 8))
	return nil
}

func (cw *connWriter) flush() error {
	cw.conn.SetWriteDeadline(time.Now().Add(writeTimeout))
	return cw.w.Flush()
}

// Leader streams the manager's committed records to followers. One Leader
// serves any number of connections; each connection gets the full shard set.
type Leader struct {
	man     *persist.Manager
	nshards int

	hubs []*hub

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup

	followers  atomic.Int64
	framesSent atomic.Uint64
	bytesSent  atomic.Uint64
	resets     atomic.Uint64
}

// LeaderStatus is a point-in-time snapshot of the leader's counters.
type LeaderStatus struct {
	Followers  int
	FramesSent uint64
	BytesSent  uint64
	Resets     uint64
}

// NewLeader registers commit taps on every shard of man and returns a
// leader ready to Serve. Close unregisters the taps.
func NewLeader(man *persist.Manager) *Leader {
	ld := &Leader{
		man:     man,
		nshards: man.Shards(),
		conns:   make(map[net.Conn]struct{}),
	}
	ld.hubs = make([]*hub, ld.nshards)
	for i := range ld.hubs {
		h := newHub()
		ld.hubs[i] = h
		man.TapShard(i, h.publish)
	}
	return ld
}

// Serve accepts follower connections on ln until Close. It returns nil
// after Close, or the first non-shutdown accept error.
func (ld *Leader) Serve(ln net.Listener) error {
	ld.mu.Lock()
	if ld.closed {
		ld.mu.Unlock()
		ln.Close()
		return errors.New("repl: leader is closed")
	}
	ld.ln = ln
	ld.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			ld.mu.Lock()
			closed := ld.closed
			ld.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		ld.mu.Lock()
		if ld.closed {
			ld.mu.Unlock()
			conn.Close()
			return nil
		}
		ld.conns[conn] = struct{}{}
		ld.wg.Add(1)
		ld.mu.Unlock()
		go func() {
			defer ld.wg.Done()
			ld.handleConn(conn)
			ld.mu.Lock()
			delete(ld.conns, conn)
			ld.mu.Unlock()
			conn.Close()
		}()
	}
}

// Close unregisters the WAL taps, stops the listener, drops every follower
// connection and waits for their handlers to finish.
func (ld *Leader) Close() error {
	ld.mu.Lock()
	if ld.closed {
		ld.mu.Unlock()
		return nil
	}
	ld.closed = true
	ln := ld.ln
	for c := range ld.conns {
		c.Close()
	}
	ld.mu.Unlock()
	for i := 0; i < ld.nshards; i++ {
		ld.man.TapShard(i, nil)
	}
	if ln != nil {
		ln.Close()
	}
	ld.wg.Wait()
	return nil
}

// Status returns the leader's counters.
func (ld *Leader) Status() LeaderStatus {
	return LeaderStatus{
		Followers:  int(ld.followers.Load()),
		FramesSent: ld.framesSent.Load(),
		BytesSent:  ld.bytesSent.Load(),
		Resets:     ld.resets.Load(),
	}
}

// handleConn runs one follower session: handshake, per-shard catch-up from
// checkpoint + retained segments, then the live tap with heartbeats.
func (ld *Leader) handleConn(conn net.Conn) {
	conn.SetReadDeadline(time.Now().Add(handshakeTimeout))
	if err := readMagic(conn); err != nil {
		log.Printf("repl: leader: rejecting %s: %v", conn.RemoteAddr(), err)
		return
	}
	payload, err := readMsg(conn)
	if err != nil {
		log.Printf("repl: leader: handshake from %s: %v", conn.RemoteAddr(), err)
		return
	}
	theirShards, theirPos, err := decodeHello(payload)
	if err != nil {
		log.Printf("repl: leader: handshake from %s: %v", conn.RemoteAddr(), err)
		return
	}
	// The follower never writes again; clear the read deadline and rely on
	// write errors (heartbeats flow constantly) to detect a dead peer.
	conn.SetReadDeadline(time.Time{})

	cw := &connWriter{conn: conn, w: bufio.NewWriterSize(conn, 1<<16), bytes: &ld.bytesSent}
	if err := writeMagic(conn); err != nil {
		return
	}
	if err := cw.writeMsg(encodeReply(ld.nshards)); err != nil {
		return
	}
	if err := cw.flush(); err != nil {
		return
	}

	// A follower from a different shard layout starts over from scratch.
	from := make([]wal.Pos, ld.nshards)
	if theirShards == ld.nshards {
		copy(from, theirPos)
	}

	// Subscribe BEFORE reading the committed positions that bound catch-up,
	// so no record can fall between the file reads and the live feed. The
	// overlap is deduplicated by position in the steady-state loop.
	subs := make([]*subscriber, ld.nshards)
	for i := range subs {
		subs[i] = ld.hubs[i].subscribe()
	}
	defer func() {
		for i, s := range subs {
			ld.hubs[i].unsubscribe(s)
		}
	}()

	ld.followers.Add(1)
	defer ld.followers.Add(-1)

	sent := make([]wal.Pos, ld.nshards)
	for s := 0; s < ld.nshards; s++ {
		sp, err := ld.catchUpShard(cw, s, from[s])
		if err != nil {
			log.Printf("repl: leader: catch-up of %s shard %d: %v", conn.RemoteAddr(), s, err)
			return
		}
		sent[s] = sp
		// Land the follower on the committed position even when nothing
		// was shipped (empty or already caught-up shard), so its staleness
		// reporting starts from a real position instead of zero.
		if err := cw.writeMsg(encodeAdvance(s, sp)); err != nil {
			return
		}
	}
	if err := cw.flush(); err != nil {
		return
	}

	ld.streamLive(cw, subs, sent)
}

// catchUpShard brings one shard of the follower to the leader's committed
// position, retrying with a full reset when a concurrent checkpoint
// invalidates the files mid-read. It returns the position after the last
// record shipped (the live stream's dedup floor).
func (ld *Leader) catchUpShard(cw *connWriter, shard int, from wal.Pos) (wal.Pos, error) {
	for attempt := 0; attempt < catchUpAttempts; attempt++ {
		sent, retry, err := ld.tryCatchUp(cw, shard, from)
		if err != nil {
			return wal.Pos{}, err
		}
		if !retry {
			return sent, nil
		}
		// Whatever we managed to send is about to be superseded: the next
		// attempt opens with a reset, which wipes the shard on the follower.
		from = wal.Pos{}
	}
	return wal.Pos{}, fmt.Errorf("repl: shard %d catch-up kept racing checkpoints after %d attempts", shard, catchUpAttempts)
}

// tryCatchUp makes one catch-up attempt. retry=true means a checkpoint
// raced us (snapshot stale, or a segment vanished mid-read) and the caller
// should start over with a reset; a non-nil err means the connection is
// unusable or the leader's own state is unreadable.
func (ld *Leader) tryCatchUp(cw *connWriter, shard int, from wal.Pos) (sent wal.Pos, retry bool, err error) {
	segs, committed, err := ld.man.ShardSegments(shard)
	if err != nil {
		return wal.Pos{}, false, err
	}
	reset := from.IsZero() || committed.Less(from) || len(segs) == 0 || from.Seg < segs[0].Seq
	if !reset {
		// CONTINUE: everything from the follower's position is retained.
		return ld.streamSegments(cw, shard, segs, from, committed)
	}

	// RESET: ship the checkpoint snapshot's tables for this shard, then the
	// retained segments from the snapshot's watermark. Read the snapshot
	// FIRST, list segments SECOND: the listing then proves whether the
	// snapshot is current (its watermark at or above the oldest retained
	// segment) — a checkpoint that completed in between is detected as a
	// stale snapshot and retried, never silently skipped records.
	tables, snapShards, wms, err := persist.ReadCheckpoint(ld.man.Dir())
	if err != nil {
		return wal.Pos{}, false, fmt.Errorf("reading checkpoint: %w", err)
	}
	if snapShards != ld.nshards {
		// Open rewrites the checkpoint on any layout change, so this means
		// the data directory is not the one the manager opened.
		return wal.Pos{}, false, fmt.Errorf("checkpoint has %d shards, manager has %d", snapShards, ld.nshards)
	}
	wm := wms[shard]
	segs, committed, err = ld.man.ShardSegments(shard)
	if err != nil {
		return wal.Pos{}, false, err
	}
	if len(segs) > 0 && segs[0].Seq > wm {
		return wal.Pos{}, true, nil // snapshot already superseded
	}
	if err := cw.writeMsg(encodeReset(shard)); err != nil {
		return wal.Pos{}, false, err
	}
	ld.resets.Add(1)

	start := wal.Pos{Seg: wm, Off: wal.SegmentDataStart}
	names := make([]string, 0, len(tables))
	for name := range tables {
		if persist.ShardOf(name, ld.nshards) == shard {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		frame, err := wal.EncodeFrame(wal.Record{Op: wal.OpPut, Name: name, Tuples: tables[name]})
		if err != nil {
			return wal.Pos{}, false, fmt.Errorf("encoding snapshot table %q: %w", name, err)
		}
		// Snapshot tables ride at the watermark position: anything the
		// segments replay is strictly after it. They go as snapshot
		// messages — all at the same position, so the follower must apply
		// them without its duplicate-position guard.
		if err := cw.writeMsg(encodeSnapshot(shard, start, frame)); err != nil {
			return wal.Pos{}, false, err
		}
		ld.framesSent.Add(1)
	}
	return ld.streamSegments(cw, shard, segs, start, committed)
}

// streamSegments ships the committed frames in (start, committed] from the
// listed segment files. A file error (vanished or truncated by a concurrent
// checkpoint) is a retry; a connection error is fatal.
func (ld *Leader) streamSegments(cw *connWriter, shard int, segs []wal.SegmentRef, start, committed wal.Pos) (wal.Pos, bool, error) {
	for _, seg := range segs {
		if seg.Seq < start.Seg || seg.Seq > committed.Seg {
			continue
		}
		from := wal.SegmentDataStart
		if seg.Seq == start.Seg {
			from = start.Off
		}
		err := wal.ReadSegmentFrames(seg.Path, seg.Seq, from, committed, func(pos wal.Pos, frame []byte) error {
			if err := cw.writeMsg(encodeRecord(shard, pos, frame)); err != nil {
				return &sendError{err: err}
			}
			ld.framesSent.Add(1)
			return nil
		})
		if err != nil {
			var se *sendError
			if errors.As(err, &se) {
				return wal.Pos{}, false, se.err
			}
			return wal.Pos{}, true, nil
		}
	}
	// Every committed record at listing time has been shipped; later ones
	// are waiting in the live subscription.
	return committed, false, nil
}

// outFrame is one live record on its way from a shard pump to the writer.
type outFrame struct {
	shard int
	pos   wal.Pos
	frame []byte
}

// streamLive forwards the live tap until the connection dies or a pump
// overruns. sent holds the per-shard dedup floor from catch-up.
func (ld *Leader) streamLive(cw *connWriter, subs []*subscriber, sent []wal.Pos) {
	out := make(chan outFrame, 256)
	overrun := make(chan int, len(subs))
	stop := make(chan struct{})
	var pumps sync.WaitGroup
	defer pumps.Wait()
	defer close(stop)
	for i, sub := range subs {
		pumps.Add(1)
		go func(shard int, ch <-chan tapMsg) {
			defer pumps.Done()
			for {
				select {
				case m, ok := <-ch:
					if !ok {
						// The hub cut us off: this follower fell more than
						// subBuffer records behind the commit stream.
						select {
						case overrun <- shard:
						default:
						}
						return
					}
					select {
					case out <- outFrame{shard: shard, pos: m.pos, frame: m.frame}:
					case <-stop:
						return
					}
				case <-stop:
					return
				}
			}
		}(i, sub.ch)
	}

	send := func(f outFrame) error {
		if !sent[f.shard].Less(f.pos) {
			return nil // already shipped during catch-up
		}
		if err := cw.writeMsg(encodeRecord(f.shard, f.pos, f.frame)); err != nil {
			return err
		}
		sent[f.shard] = f.pos
		ld.framesSent.Add(1)
		return nil
	}

	ticker := time.NewTicker(heartbeatInterval)
	defer ticker.Stop()
	for {
		select {
		case f := <-out:
			if err := send(f); err != nil {
				return
			}
			// Drain whatever else is queued before paying for a flush.
			for drained := false; !drained; {
				select {
				case f := <-out:
					if err := send(f); err != nil {
						return
					}
				default:
					drained = true
				}
			}
			if err := cw.flush(); err != nil {
				return
			}
		case <-ticker.C:
			hb := make([]wal.Pos, ld.nshards)
			for i := range hb {
				hb[i] = ld.man.ShardCommitted(i)
			}
			if err := cw.writeMsg(encodeHeartbeat(hb)); err != nil {
				return
			}
			if err := cw.flush(); err != nil {
				return
			}
		case shard := <-overrun:
			log.Printf("repl: leader: follower %s overran shard %d's live buffer; dropping it to re-sync from segments", cw.conn.RemoteAddr(), shard)
			return
		}
	}
}

// Tuples is the element type the apply path traffics in; declared here so
// follower.go's Applier doc can reference it without importing uncertain in
// every consumer. (Type alias — identical to probtopk.Tuple.)
type Tuple = uncertain.Tuple
