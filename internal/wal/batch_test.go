package wal

import (
	"errors"
	"fmt"
	"os"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"probtopk/internal/uncertain"
)

// batchRecord returns a small distinct record for concurrent-append tests.
func batchRecord(i int) Record {
	return Record{Op: OpPut, Name: fmt.Sprintf("t%03d", i), Tuples: []uncertain.Tuple{
		{ID: fmt.Sprintf("id%d", i), Score: float64(i), Prob: 0.5},
	}}
}

// TestBatchAppendReplayRoundTrip: concurrent SyncBatch appends are all
// acknowledged, all replayable, and actually shared fsyncs (the whole
// point): with a linger window collecting the stragglers, 8 records must
// cost fewer than 8 fsyncs.
func TestBatchAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, recs, _ := open(t, dir, Options{Sync: SyncBatch, MaxBatchDelay: 200 * time.Millisecond})
	if len(recs) != 0 {
		t.Fatalf("fresh log replayed %v", recs)
	}
	const n = 8
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = l.Append(batchRecord(i))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	st := l.Stats()
	if st.Appends != n {
		t.Fatalf("Appends = %d, want %d", st.Appends, n)
	}
	if st.Batches == 0 || st.FsyncsSaved == 0 {
		t.Fatalf("no group commit happened: %+v", st)
	}
	var sizes uint64
	for _, c := range st.BatchSizes {
		sizes += c
	}
	if sizes != st.Batches {
		t.Fatalf("BatchSizes histogram sums to %d, want Batches = %d", sizes, st.Batches)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, got, info := open(t, dir, Options{})
	if info.Truncated || len(got) != n {
		t.Fatalf("recovered %d records (truncated=%v), want %d", len(got), info.Truncated, n)
	}
	names := make([]string, len(got))
	for i, r := range got {
		names[i] = r.Name
	}
	sort.Strings(names)
	for i, name := range names {
		if want := fmt.Sprintf("t%03d", i); name != want {
			t.Fatalf("recovered names %v", names)
		}
	}
}

// TestBatchEnqueueOrderIsLogOrder: records enqueued by one producer land
// in the log in enqueue order even when one group commit carries them all.
func TestBatchEnqueueOrderIsLogOrder(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := open(t, dir, Options{Sync: SyncBatch, MaxBatchDelay: 100 * time.Millisecond})
	const n = 16
	handles := make([]*commit, n)
	for i := 0; i < n; i++ {
		c, err := l.enqueue(mustFrame(t, batchRecord(i)))
		if err != nil {
			t.Fatal(err)
		}
		handles[i] = c
	}
	for i, c := range handles {
		if err := c.wait(); err != nil {
			t.Fatalf("commit %d: %v", i, err)
		}
	}
	l.Close()
	_, got, _ := open(t, dir, Options{})
	if len(got) != n {
		t.Fatalf("recovered %d records, want %d", len(got), n)
	}
	for i, r := range got {
		if !reflect.DeepEqual(r, batchRecord(i)) {
			t.Fatalf("record %d out of order: %+v", i, r)
		}
	}
}

func mustFrame(t *testing.T, r Record) []byte {
	t.Helper()
	frame, err := encodeFrame(r)
	if err != nil {
		t.Fatal(err)
	}
	return frame
}

// TestBatchRotationMidCommit: a group commit larger than a segment splits
// across rotations, every record survives, and waiters of fully-fsynced
// chunks are released as committed.
func TestBatchRotationMidCommit(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := open(t, dir, Options{Sync: SyncBatch, SegmentBytes: 128, MaxBatchDelay: 100 * time.Millisecond})
	const n = 12
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := l.Append(batchRecord(i)); err != nil {
				t.Errorf("append %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	st := l.Stats()
	if st.Segments < 2 {
		t.Fatalf("expected rotation, got %d segments", st.Segments)
	}
	l.Close()
	_, got, info := open(t, dir, Options{})
	if info.Truncated || len(got) != n {
		t.Fatalf("recovered %d records (truncated=%v), want %d", len(got), info.Truncated, n)
	}
}

// TestBatchFsyncFailureFailsWholeBatch: when the shared fsync fails, every
// waiter in the batch gets the error (none may believe its record is
// durable), the log is broken, and the rolled-back records do not replay.
func TestBatchFsyncFailureFailsWholeBatch(t *testing.T) {
	dir := t.TempDir()
	budget := int64(1 << 20)
	ff := &failFile{budget: &budget}
	opts := Options{
		Sync:          SyncBatch,
		MaxBatchDelay: 200 * time.Millisecond,
		OpenFile: func(path string, flag int, perm os.FileMode) (File, error) {
			f, err := os.OpenFile(path, flag, perm)
			if err != nil || !strings.HasSuffix(path, ".seg") {
				return f, err
			}
			ff.f = f
			return ff, nil
		},
	}
	l, _, _ := open(t, dir, opts)
	if err := l.Append(sampleRecords()[0]); err != nil {
		t.Fatal(err)
	}
	ff.failSync = true
	const n = 4
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = l.Append(batchRecord(i))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, errInjected) && !errors.Is(err, errBroken) {
			t.Fatalf("append %d returned %v, want injected failure or broken log", i, err)
		}
	}
	ff.failSync = false
	if err := l.Append(batchRecord(99)); !errors.Is(err, errBroken) {
		t.Fatalf("append after failed batch fsync returned %v, want broken log", err)
	}
	l.Close()
	_, got, info := open(t, dir, Options{})
	if info.Truncated {
		t.Fatalf("batch rollback left torn bytes: %+v", info)
	}
	if len(got) != 1 || !reflect.DeepEqual(got[0], sampleRecords()[0]) {
		t.Fatalf("recovered %+v, want only the acknowledged record", got)
	}
}

// TestBatchedAppendStress hammers one SyncBatch log from many goroutines
// with rotations in play; run with -race in CI it checks the batcher's
// synchronization, and the replay checks no acknowledged record was lost.
func TestBatchedAppendStress(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := open(t, dir, Options{Sync: SyncBatch, SegmentBytes: 4096})
	const writers, each = 8, 40
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if err := l.Append(batchRecord(w*each + i)); err != nil {
					t.Errorf("writer %d append %d: %v", w, i, err)
					return
				}
			}
		}(w)
	}
	// Concurrent readers of the counters keep Stats race-checked too.
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				l.Stats()
			}
		}
	}()
	wg.Wait()
	close(stop)
	if st := l.Stats(); st.Appends != writers*each {
		t.Fatalf("Appends = %d, want %d", st.Appends, writers*each)
	}
	l.Close()
	_, got, info := open(t, dir, Options{})
	if info.Truncated || len(got) != writers*each {
		t.Fatalf("recovered %d records (truncated=%v), want %d", len(got), info.Truncated, writers*each)
	}
}

// TestBatchCloseResolvesQueuedAppends: Close stops the batcher only after
// draining the ring — an already-enqueued append is committed, not leaked.
func TestBatchCloseResolvesQueuedAppends(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := open(t, dir, Options{Sync: SyncBatch})
	handles := make([]*commit, 8)
	for i := range handles {
		c, err := l.enqueue(mustFrame(t, batchRecord(i)))
		if err != nil {
			t.Fatal(err)
		}
		handles[i] = c
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	for i, c := range handles {
		if err := c.wait(); err != nil {
			t.Fatalf("queued commit %d failed at Close: %v", i, err)
		}
	}
	if _, err := l.enqueue(mustFrame(t, batchRecord(99))); !errors.Is(err, errClosed) {
		t.Fatalf("enqueue after Close returned %v, want closed", err)
	}
	_, got, _ := open(t, dir, Options{})
	if len(got) != len(handles) {
		t.Fatalf("recovered %d records, want %d", len(got), len(handles))
	}
}

// tornTailDir builds a log whose last segment ends in garbage, forcing
// Replay into the truncation path.
func tornTailDir(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	l, _, _ := open(t, dir, Options{Sync: SyncNever})
	for _, r := range sampleRecords()[:2] {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	st := l.Stats()
	if st.Segments != 1 {
		t.Fatalf("expected one segment, got %d", st.Segments)
	}
	l.Close()
	segs, _ := os.ReadDir(dir)
	if len(segs) != 1 {
		t.Fatalf("expected one segment file, got %d", len(segs))
	}
	path := dir + "/" + segs[0].Name()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xde, 0xad, 0xbe}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	return dir
}

// syncFailFile passes writes through and fails every Sync.
type syncFailFile struct{ f *os.File }

func (s *syncFailFile) Write(p []byte) (int, error) { return s.f.Write(p) }
func (s *syncFailFile) Sync() error                 { return errInjected }
func (s *syncFailFile) Close() error                { return s.f.Close() }

// TestTruncationFlushFailurePropagates: a failed fsync of the torn-tail
// truncation must fail Replay — recovery silently proceeding would serve
// state a crash could contradict (the old bug swallowed this error).
func TestTruncationFlushFailurePropagates(t *testing.T) {
	t.Run("sync fails", func(t *testing.T) {
		dir := tornTailDir(t)
		l, err := Open(dir, Options{
			OpenFile: func(path string, flag int, perm os.FileMode) (File, error) {
				f, err := os.OpenFile(path, flag, perm)
				if err != nil {
					return nil, err
				}
				if flag == os.O_WRONLY {
					// The truncation-flush open (no O_APPEND, no O_CREATE).
					return &syncFailFile{f: f}, nil
				}
				return f, nil
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := l.Replay(func(Record) error { return nil }); !errors.Is(err, errInjected) {
			t.Fatalf("Replay with failing truncation flush returned %v, want the injected error", err)
		}
	})
	t.Run("open fails", func(t *testing.T) {
		dir := tornTailDir(t)
		l, err := Open(dir, Options{
			OpenFile: func(path string, flag int, perm os.FileMode) (File, error) {
				if flag == os.O_WRONLY {
					return nil, errInjected
				}
				return os.OpenFile(path, flag, perm)
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := l.Replay(func(Record) error { return nil }); !errors.Is(err, errInjected) {
			t.Fatalf("Replay with failing truncation open returned %v, want the injected error", err)
		}
	})
}

// failDirOpts returns Options whose directory fsyncs fail whenever *on is
// true; segment files are untouched.
func failDirOpts(dir string, on *bool, base Options) Options {
	base.OpenFile = func(path string, flag int, perm os.FileMode) (File, error) {
		f, err := os.OpenFile(path, flag, perm)
		if err != nil {
			return nil, err
		}
		if path == dir && *on {
			return &syncFailFile{f: f}, nil
		}
		return f, nil
	}
	return base
}

// TestDirSyncFailureSurfaces: a failed directory fsync is no longer
// best-effort — segment creation (fresh log, rotation) and checkpoint
// truncation report it, and Stats counts it.
func TestDirSyncFailureSurfaces(t *testing.T) {
	t.Run("fresh log", func(t *testing.T) {
		dir := t.TempDir()
		on := true
		l, err := Open(dir, failDirOpts(dir, &on, Options{Sync: SyncAlways}))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := l.Replay(func(Record) error { return nil }); !errors.Is(err, errInjected) {
			t.Fatalf("Replay with failing dir fsync returned %v, want the injected error", err)
		}
	})
	t.Run("rotation", func(t *testing.T) {
		dir := t.TempDir()
		on := false
		l, _, _ := open(t, dir, failDirOpts(dir, &on, Options{Sync: SyncAlways, SegmentBytes: 64}))
		if err := l.Append(sampleRecords()[0]); err != nil {
			t.Fatal(err)
		}
		on = true
		if err := l.Append(sampleRecords()[1]); !errors.Is(err, errInjected) {
			t.Fatalf("rotating append with failing dir fsync returned %v", err)
		}
		if st := l.Stats(); st.DirSyncErrors == 0 {
			t.Fatalf("DirSyncErrors not counted: %+v", st)
		}
		// The failure postponed the rotation rather than breaking the log.
		on = false
		if err := l.Append(sampleRecords()[1]); err != nil {
			t.Fatal(err)
		}
		l.Close()
		_, got, info := open(t, dir, Options{})
		if info.Truncated || len(got) != 2 {
			t.Fatalf("recovered %d records (truncated=%v), want 2", len(got), info.Truncated)
		}
	})
	t.Run("checkpoint drop", func(t *testing.T) {
		dir := t.TempDir()
		on := false
		l, _, _ := open(t, dir, failDirOpts(dir, &on, Options{Sync: SyncAlways}))
		if err := l.Append(sampleRecords()[0]); err != nil {
			t.Fatal(err)
		}
		seq, err := l.StartSegment()
		if err != nil {
			t.Fatal(err)
		}
		on = true
		if err := l.DropBefore(seq); !errors.Is(err, errInjected) {
			t.Fatalf("DropBefore with failing dir fsync returned %v", err)
		}
		if st := l.Stats(); st.DirSyncErrors == 0 {
			t.Fatalf("DirSyncErrors not counted: %+v", st)
		}
	})
}
