// Package wal implements the segmented append-only write-ahead log behind
// durable hosted tables: every table mutation (create/replace, append,
// delete) is encoded as one length-prefixed, CRC32C-framed record and
// appended to the current segment file before the mutation is published.
//
// # On-disk format
//
// A log is a directory of segment files named wal-%08d.seg, replayed in
// name order. Each segment starts with the 8-byte magic "PTKWAL01" (the
// trailing digits are the format version) followed by records framed as
//
//	uint32 payload length (little-endian)
//	uint32 CRC32C of the payload (Castagnoli, little-endian)
//	payload bytes
//
// The payload encodes the operation, the table name, and — for put/append —
// the tuples (id, group, score bits, probability bits), all length-prefixed
// with uvarints.
//
// # Recovery
//
// Replay validates every frame. The first bad record — a torn tail from a
// crash mid-write, a CRC mismatch from corruption, an undecodable payload,
// or a record the caller's apply function rejects — ends the replay: the
// containing segment is truncated at the bad record's offset, later
// segments are deleted, and the log resumes appending from the surviving
// prefix. Nothing after a bad record can be trusted (later records may
// depend on the lost one), so clean truncation is the only safe recovery.
//
// # Durability
//
// With SyncAlways every Append fsyncs the segment (and directory-changing
// operations fsync the directory), so a record that Append acknowledged
// survives a machine crash. SyncNever leaves flushing to the OS: much
// faster, but a crash may lose the most recent acknowledged records —
// replay still recovers a clean prefix.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"probtopk/internal/uncertain"
)

// segMagic opens every segment file; the trailing "01" is the format
// version. Readers reject segments with any other magic.
const segMagic = "PTKWAL01"

// DefaultPrefix is the segment-name prefix of an unsharded log
// (wal-%08d.seg). Sharded deployments give each shard's log its own prefix
// (internal/persist uses wal-sNN-), so many logs share one directory
// without touching each other's files.
const DefaultPrefix = "wal-"

// frameHeaderLen is the fixed per-record framing overhead: payload length
// and payload CRC32C.
const frameHeaderLen = 8

// DefaultSegmentBytes is the default segment-rotation threshold.
const DefaultSegmentBytes = 4 << 20

// maxRecordBytes bounds a single record's payload, both appended and
// replayed. A replayed frame claiming more is treated as corruption, which
// also stops a hostile length prefix from forcing a huge allocation.
const maxRecordBytes = 32 << 20

// maxNameBytes bounds the table name inside a record.
const maxNameBytes = 4096

// maxStringBytes bounds tuple id and group strings inside a record.
const maxStringBytes = 1 << 20

// castagnoli is the CRC32C table shared by all framing.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Op identifies what a record does to its named table.
type Op byte

const (
	// OpPut installs the record's tuples as the table's full contents,
	// creating or replacing it.
	OpPut Op = 1
	// OpAppend appends the record's tuples to an existing table.
	OpAppend Op = 2
	// OpDelete removes the table.
	OpDelete Op = 3
)

// String returns the op's wire name.
func (o Op) String() string {
	switch o {
	case OpPut:
		return "put"
	case OpAppend:
		return "append"
	case OpDelete:
		return "delete"
	default:
		return fmt.Sprintf("op(%d)", byte(o))
	}
}

// Record is one logged mutation. Tuples is nil for OpDelete.
type Record struct {
	Op     Op
	Name   string
	Tuples []uncertain.Tuple
}

// SyncPolicy selects when the log fsyncs; see the package comment.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every Append and after every
	// directory-changing operation. Acknowledged records survive crashes.
	SyncAlways SyncPolicy = iota
	// SyncNever never fsyncs; the OS flushes when it likes.
	SyncNever
)

// File is the writable handle the log appends through. *os.File satisfies
// it; tests substitute failure-injecting implementations via
// Options.OpenFile.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// Options tune a Log. The zero value means SyncAlways, the default segment
// size, and real files.
type Options struct {
	// Sync is the fsync policy.
	Sync SyncPolicy
	// SegmentBytes is the rotation threshold: an Append that would grow the
	// current segment past it starts a new segment first. 0 means
	// DefaultSegmentBytes.
	SegmentBytes int64
	// MinSegment is the checkpoint watermark: segments with a smaller
	// sequence number are already covered by a snapshot and are deleted at
	// Open instead of replayed (they survive only when a crash interrupted
	// the checkpoint between persisting the snapshot and dropping them —
	// replaying them would double-apply their records). 0 means replay
	// everything.
	MinSegment uint64
	// Prefix is the segment-name prefix: this log owns exactly the files
	// named Prefix + zero-padded sequence number + ".seg". Empty means
	// DefaultPrefix. Files in the directory that merely share the prefix
	// but don't match the pattern (a sharded sibling's wal-s03-…seg under
	// the plain wal- prefix) are ignored, never replayed or deleted.
	Prefix string
	// OpenFile opens segment files for writing. nil means os.OpenFile.
	// Replay always reads through the real filesystem; the hook exists so
	// tests can inject write failures (see internal/persist/crashtest).
	OpenFile func(path string, flag int, perm os.FileMode) (File, error)
}

// Stats counts a Log's activity since Open.
type Stats struct {
	// Appends and AppendBytes count acknowledged records and their framed
	// bytes.
	Appends     uint64
	AppendBytes uint64
	// Syncs counts segment fsyncs.
	Syncs uint64
	// Segments is the current number of segment files.
	Segments int
	// Drops counts checkpoint truncations (DropBefore calls).
	Drops uint64
}

// ReplayInfo describes what Replay found.
type ReplayInfo struct {
	// Records is the number of records applied.
	Records int
	// Segments is the number of segment files scanned.
	Segments int
	// Truncated reports that a torn or corrupt record was found and the log
	// was truncated at it.
	Truncated bool
	// DroppedBytes is the number of bytes discarded by that truncation,
	// including any later segments.
	DroppedBytes int64
}

// Log is a segmented write-ahead log rooted at one directory. Open it,
// Replay it exactly once, then Append. A Log is safe for concurrent use.
type Log struct {
	dir  string
	opts Options

	mu       sync.Mutex
	segments []string // absolute segment paths, replay order
	nextSeq  uint64   // sequence number for the next new segment
	cur      File
	curPath  string
	curSize  int64
	replayed bool
	broken   bool
	// badOffset is where replaySegment found the first bad record; only
	// meaningful between replaySegment and truncateFrom, both under mu.
	badOffset int64

	appends     uint64
	appendBytes uint64
	syncs       uint64
	drops       uint64
}

// errNotReplayed is returned by Append/Reset before Replay has run.
var errNotReplayed = errors.New("wal: log not replayed yet")

// errBroken is returned once a failed write could not be rolled back; the
// segment tail is untrustworthy and the log refuses further appends.
var errBroken = errors.New("wal: log broken by an unrecoverable write failure")

// Open scans dir (creating it if needed) for existing segments, deleting
// any below the MinSegment watermark (their records are covered by a
// snapshot; replaying them would double-apply). It reads nothing else:
// call Replay to recover the records and position the writer.
func Open(dir string, opts Options) (*Log, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if opts.Prefix == "" {
		opts.Prefix = DefaultPrefix
	}
	if opts.OpenFile == nil {
		opts.OpenFile = func(path string, flag int, perm os.FileMode) (File, error) {
			return os.OpenFile(path, flag, perm)
		}
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	matches, err := filepath.Glob(filepath.Join(dir, opts.Prefix+"*.seg"))
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	sort.Strings(matches)
	// nextSeq must clear the watermark even if every segment at or beyond
	// it is gone, or a fresh segment would be numbered below the snapshot's
	// watermark and skipped by the next boot.
	l := &Log{dir: dir, opts: opts, nextSeq: max(1, opts.MinSegment)}
	for _, path := range matches {
		seq, ok := SeqFromName(filepath.Base(path), opts.Prefix)
		if !ok {
			// Shares the prefix but not the pattern: another log's file
			// (wal-s03-…seg under the plain wal- prefix). Not ours.
			continue
		}
		if seq < opts.MinSegment {
			// Checkpointed leftovers from a crash mid-drop.
			if err := os.Remove(path); err != nil {
				return nil, fmt.Errorf("wal: %w", err)
			}
			continue
		}
		l.segments = append(l.segments, path)
		if seq >= l.nextSeq {
			l.nextSeq = seq + 1
		}
	}
	return l, nil
}

// SeqFromName parses the sequence number of a segment file named
// prefix + digits + ".seg". ok is false when base belongs to a different
// namespace sharing the directory — callers skip those files rather than
// treating them as corruption.
func SeqFromName(base, prefix string) (seq uint64, ok bool) {
	digits, found := strings.CutPrefix(base, prefix)
	if !found {
		return 0, false
	}
	digits, found = strings.CutSuffix(digits, ".seg")
	if !found || digits == "" {
		return 0, false
	}
	for i := 0; i < len(digits); i++ {
		c := digits[i]
		if c < '0' || c > '9' {
			return 0, false
		}
		d := uint64(c - '0')
		if seq > (math.MaxUint64-d)/10 {
			return 0, false
		}
		seq = seq*10 + d
	}
	return seq, true
}

// segmentSeq parses a segment path's sequence number under this log's
// prefix; the path comes from l.segments, so it always matches.
func (l *Log) segmentSeq(path string) (uint64, error) {
	seq, ok := SeqFromName(filepath.Base(path), l.opts.Prefix)
	if !ok {
		return 0, fmt.Errorf("wal: unparseable segment name %q", filepath.Base(path))
	}
	return seq, nil
}

// Replay reads every record of every segment in order, calling apply on
// each. The first torn, corrupt or rejected record truncates the log at
// that point (see the package comment); that is recovery, not failure, and
// is reported through ReplayInfo. Replay must be called exactly once,
// before the first Append.
func (l *Log) Replay(apply func(Record) error) (ReplayInfo, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.replayed {
		return ReplayInfo{}, errors.New("wal: already replayed")
	}
	var info ReplayInfo
	info.Segments = len(l.segments)
	for i, path := range l.segments {
		stop, err := l.replaySegment(path, apply, &info)
		if err != nil {
			return info, err
		}
		if stop {
			if err := l.truncateFrom(i, &info); err != nil {
				return info, err
			}
			break
		}
	}
	if err := l.openForAppendLocked(); err != nil {
		return info, err
	}
	l.replayed = true
	return info, nil
}

// replaySegment scans one segment. It returns stop=true when a bad record
// was found at l.badOffset (recorded in info), and a non-nil error only for
// environmental failures (the segment cannot be read at all).
func (l *Log) replaySegment(path string, apply func(Record) error, info *ReplayInfo) (stop bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return false, fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	magic := make([]byte, len(segMagic))
	if _, err := io.ReadFull(f, magic); err != nil || string(magic) != segMagic {
		l.badOffset, info.Truncated = 0, true
		return true, nil
	}
	offset := int64(len(segMagic))
	header := make([]byte, frameHeaderLen)
	for {
		_, err := io.ReadFull(f, header)
		if err == io.EOF {
			return false, nil // clean segment end
		}
		if err != nil { // torn frame header
			l.badOffset, info.Truncated = offset, true
			return true, nil
		}
		payloadLen := binary.LittleEndian.Uint32(header[0:4])
		wantCRC := binary.LittleEndian.Uint32(header[4:8])
		if payloadLen > maxRecordBytes {
			l.badOffset, info.Truncated = offset, true
			return true, nil
		}
		payload := make([]byte, payloadLen)
		if _, err := io.ReadFull(f, payload); err != nil { // torn payload
			l.badOffset, info.Truncated = offset, true
			return true, nil
		}
		if crc32.Checksum(payload, castagnoli) != wantCRC {
			l.badOffset, info.Truncated = offset, true
			return true, nil
		}
		rec, err := decodeRecord(payload)
		if err != nil {
			l.badOffset, info.Truncated = offset, true
			return true, nil
		}
		if err := apply(rec); err != nil {
			l.badOffset, info.Truncated = offset, true
			return true, nil
		}
		info.Records++
		offset += frameHeaderLen + int64(payloadLen)
	}
}

// truncateFrom discards the bad record at l.badOffset of segment i and
// everything after it: segment i is truncated (or deleted outright when
// even its header is bad), segments beyond i are deleted.
func (l *Log) truncateFrom(i int, info *ReplayInfo) error {
	path := l.segments[i]
	size := func(p string) int64 {
		if fi, err := os.Stat(p); err == nil {
			return fi.Size()
		}
		return 0
	}
	for _, later := range l.segments[i+1:] {
		info.DroppedBytes += size(later)
		if err := os.Remove(later); err != nil {
			return fmt.Errorf("wal: %w", err)
		}
	}
	if l.badOffset < int64(len(segMagic)) {
		// The segment header itself is unusable; drop the whole file.
		info.DroppedBytes += size(path)
		if err := os.Remove(path); err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		l.segments = l.segments[:i]
	} else {
		info.DroppedBytes += size(path) - l.badOffset
		if err := os.Truncate(path, l.badOffset); err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		// Flush the truncation so a crash cannot resurrect the bad tail.
		if f, err := os.OpenFile(path, os.O_WRONLY, 0o644); err == nil {
			f.Sync()
			f.Close()
		}
		l.segments = l.segments[:i+1]
	}
	l.syncDir()
	return nil
}

// openForAppendLocked positions the writer: it opens the last surviving
// segment for appending, or creates the first segment of an empty log.
func (l *Log) openForAppendLocked() error {
	if n := len(l.segments); n > 0 {
		path := l.segments[n-1]
		fi, err := os.Stat(path)
		if err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		f, err := l.opts.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		l.cur, l.curPath, l.curSize = f, path, fi.Size()
		return nil
	}
	return l.createSegmentLocked()
}

// createSegmentLocked starts a fresh segment and makes it current.
func (l *Log) createSegmentLocked() error {
	path := filepath.Join(l.dir, fmt.Sprintf("%s%08d.seg", l.opts.Prefix, l.nextSeq))
	f, err := l.opts.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if _, err := f.Write([]byte(segMagic)); err != nil {
		f.Close()
		os.Remove(path)
		return fmt.Errorf("wal: %w", err)
	}
	if l.opts.Sync == SyncAlways {
		if err := f.Sync(); err != nil {
			f.Close()
			os.Remove(path)
			return fmt.Errorf("wal: %w", err)
		}
		l.syncs++
	}
	l.nextSeq++
	if l.cur != nil {
		l.cur.Close()
	}
	l.cur, l.curPath, l.curSize = f, path, int64(len(segMagic))
	l.segments = append(l.segments, path)
	l.syncDir()
	return nil
}

// Append encodes r, frames it, and appends it to the current segment,
// rotating first if the segment is full. With SyncAlways the record is
// fsynced before Append returns: an acknowledged record survives a crash.
// On a failed or short write the torn bytes are truncated away so the
// segment stays a clean prefix of acknowledged records; if that rollback
// itself fails the log marks itself broken and refuses further appends.
func (l *Log) Append(r Record) error {
	payload, err := encodeRecord(r)
	if err != nil {
		return err
	}
	if len(payload) > maxRecordBytes {
		return fmt.Errorf("wal: record of %d bytes exceeds the %d-byte limit", len(payload), maxRecordBytes)
	}
	frame := make([]byte, frameHeaderLen+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, castagnoli))
	copy(frame[frameHeaderLen:], payload)

	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.replayed {
		return errNotReplayed
	}
	if l.broken {
		return errBroken
	}
	if l.cur == nil {
		// A failed segment creation left no current segment; try again
		// rather than crash (createSegmentLocked never discards a working
		// one).
		if err := l.createSegmentLocked(); err != nil {
			return err
		}
	}
	if l.curSize+int64(len(frame)) > l.opts.SegmentBytes && l.curSize > int64(len(segMagic)) {
		if err := l.createSegmentLocked(); err != nil {
			return err
		}
	}
	if _, err := l.cur.Write(frame); err != nil {
		// Roll the torn bytes back so the segment remains a clean prefix.
		l.rollbackLocked()
		return fmt.Errorf("wal: append: %w", err)
	}
	if l.opts.Sync == SyncAlways {
		if err := l.cur.Sync(); err != nil {
			// The frame is fully written but its durability is unknown, and
			// the caller will NOT publish the mutation — so the record must
			// not replay either. Roll it back, then refuse further appends
			// regardless: after a failed fsync the kernel may have dropped
			// dirty pages and marked them clean, so no later fsync result
			// on this file can be trusted. A restart replays what actually
			// survived and starts from that truth.
			l.rollbackLocked()
			l.broken = true
			return fmt.Errorf("wal: sync: %w", err)
		}
		l.syncs++
	}
	l.curSize += int64(len(frame))
	l.appends++
	l.appendBytes += uint64(len(frame))
	return nil
}

// rollbackLocked truncates the current segment back to its last
// acknowledged size, discarding a record that failed mid-append, and
// fsyncs the truncation — without the sync, a machine crash could bring
// the complete frame back from the page cache and replay a mutation the
// client was told failed. If the truncation or its sync fails the segment
// tail is untrustworthy and the log marks itself broken. Callers hold
// l.mu.
func (l *Log) rollbackLocked() {
	if err := os.Truncate(l.curPath, l.curSize); err != nil {
		l.broken = true
		return
	}
	if err := l.cur.Sync(); err != nil {
		l.broken = true
	}
}

// StartSegment returns the checkpoint watermark: the sequence number of a
// fresh segment such that every record logged before the call lives in a
// segment below it and every record logged after lives at or beyond it.
// When the current segment is still empty — a retry after a failed
// checkpoint with no records in between — it IS that fresh segment and is
// reused, so failing checkpoints do not leak one segment per attempt. On
// error the current segment keeps appending; the checkpoint is merely
// postponed.
func (l *Log) StartSegment() (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.replayed {
		return 0, errNotReplayed
	}
	if l.cur != nil && l.curSize == int64(len(segMagic)) {
		return l.segmentSeq(l.curPath)
	}
	seq := l.nextSeq
	if err := l.createSegmentLocked(); err != nil {
		return 0, err
	}
	return seq, nil
}

// DropBefore deletes every segment with a sequence number below seq —
// their records are covered by the snapshot the caller just persisted. A
// crash that interrupts the deletion is harmless: Open skips (and cleans)
// segments below the snapshot's watermark.
func (l *Log) DropBefore(seq uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.replayed {
		return errNotReplayed
	}
	kept := l.segments[:0]
	for _, path := range l.segments {
		s, err := l.segmentSeq(path)
		if err != nil {
			return err
		}
		if s >= seq {
			kept = append(kept, path)
			continue
		}
		if err := os.Remove(path); err != nil {
			return fmt.Errorf("wal: %w", err)
		}
	}
	l.segments = kept
	l.syncDir()
	l.drops++
	return nil
}

// Sync forces an fsync of the current segment regardless of policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.cur == nil {
		return nil
	}
	if err := l.cur.Sync(); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	l.syncs++
	return nil
}

// Close releases the current segment handle. It does not fsync (Append
// already enforced the policy); a Close-less crash loses nothing more than
// the policy allows.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.cur == nil {
		return nil
	}
	err := l.cur.Close()
	l.cur = nil
	return err
}

// Stats returns the log's counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Stats{
		Appends:     l.appends,
		AppendBytes: l.appendBytes,
		Syncs:       l.syncs,
		Segments:    len(l.segments),
		Drops:       l.drops,
	}
}

// syncDir fsyncs the log directory (best effort) so segment creations,
// deletions and truncations are themselves durable under SyncAlways.
func (l *Log) syncDir() {
	if l.opts.Sync != SyncAlways {
		return
	}
	if d, err := os.Open(l.dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// --- record payload codec ---

// encodeRecord serializes r's payload (the framing is Append's job).
func encodeRecord(r Record) ([]byte, error) {
	switch r.Op {
	case OpPut, OpAppend, OpDelete:
	default:
		return nil, fmt.Errorf("wal: unknown op %d", byte(r.Op))
	}
	if r.Name == "" {
		return nil, errors.New("wal: empty table name")
	}
	if len(r.Name) > maxNameBytes {
		return nil, fmt.Errorf("wal: table name of %d bytes exceeds the %d-byte limit", len(r.Name), maxNameBytes)
	}
	buf := []byte{byte(r.Op)}
	buf = appendString(buf, r.Name)
	if r.Op == OpDelete {
		return buf, nil
	}
	buf = binary.AppendUvarint(buf, uint64(len(r.Tuples)))
	for _, tp := range r.Tuples {
		if len(tp.ID) > maxStringBytes || len(tp.Group) > maxStringBytes {
			return nil, fmt.Errorf("wal: tuple string exceeds the %d-byte limit", maxStringBytes)
		}
		buf = appendString(buf, tp.ID)
		buf = appendString(buf, tp.Group)
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(tp.Score))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(tp.Prob))
	}
	return buf, nil
}

// minTupleBytes is the smallest possible encoded tuple (two empty strings
// plus two float64s); claimed tuple counts are checked against it so a
// lying count cannot force a huge allocation.
const minTupleBytes = 1 + 1 + 8 + 8

// decodeRecord parses a payload produced by encodeRecord, defensively: any
// structural violation is an error (the replayer treats it as corruption).
func decodeRecord(payload []byte) (Record, error) {
	d := Decoder{Buf: payload, Prefix: "wal"}
	op := Op(d.Byte())
	name := d.String(maxNameBytes)
	r := Record{Op: op, Name: name}
	switch op {
	case OpDelete:
	case OpPut, OpAppend:
		n := d.Uvarint()
		if d.Err() == nil && n > uint64(len(d.Buf)/minTupleBytes)+1 {
			return Record{}, fmt.Errorf("wal: tuple count %d exceeds payload", n)
		}
		if d.Err() == nil && n > 0 {
			r.Tuples = make([]uncertain.Tuple, 0, n)
		}
		for i := uint64(0); i < n && d.Err() == nil; i++ {
			tp := uncertain.Tuple{
				ID:    d.String(maxStringBytes),
				Group: d.String(maxStringBytes),
				Score: math.Float64frombits(d.Uint64()),
				Prob:  math.Float64frombits(d.Uint64()),
			}
			if d.Err() == nil {
				r.Tuples = append(r.Tuples, tp)
			}
		}
	default:
		return Record{}, fmt.Errorf("wal: unknown op %d", byte(op))
	}
	if err := d.Err(); err != nil {
		return Record{}, err
	}
	if name == "" {
		return Record{}, errors.New("wal: empty table name")
	}
	if len(d.Buf) != 0 {
		return Record{}, fmt.Errorf("wal: %d trailing payload bytes", len(d.Buf))
	}
	return r, nil
}

// AppendString appends a uvarint length prefix and the bytes of s — the
// string framing shared by the WAL record codec and the snapshot file
// codec (internal/persist).
func AppendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// appendString is the package-internal alias kept for the encoder's
// readability.
func appendString(buf []byte, s string) []byte { return AppendString(buf, s) }

// Decoder reads a length-prefixed binary payload sequentially, latching
// the first error: once anything fails, every further read is a no-op and
// Err reports the cause. Shared by the WAL record codec and the snapshot
// file codec so both formats reject hostile input identically; Prefix
// names the format in error messages.
type Decoder struct {
	Buf    []byte
	Prefix string
	err    error
}

// Err returns the first error any read latched, or nil.
func (d *Decoder) Err() error { return d.err }

// Fail latches a formatted error if none is latched yet.
func (d *Decoder) Fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf(d.Prefix+": "+format, args...)
	}
}

// Byte consumes one byte.
func (d *Decoder) Byte() byte {
	if d.err != nil {
		return 0
	}
	if len(d.Buf) < 1 {
		d.Fail("truncated payload")
		return 0
	}
	b := d.Buf[0]
	d.Buf = d.Buf[1:]
	return b
}

// Uvarint consumes one unsigned varint.
func (d *Decoder) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.Buf)
	if n <= 0 {
		d.Fail("bad uvarint")
		return 0
	}
	d.Buf = d.Buf[n:]
	return v
}

// Uint64 consumes one little-endian uint64.
func (d *Decoder) Uint64() uint64 {
	if d.err != nil {
		return 0
	}
	if len(d.Buf) < 8 {
		d.Fail("truncated payload")
		return 0
	}
	v := binary.LittleEndian.Uint64(d.Buf)
	d.Buf = d.Buf[8:]
	return v
}

// String consumes one length-prefixed string of at most limit bytes. The
// limit check also caps what a hostile length prefix can allocate.
func (d *Decoder) String(limit int) string {
	n := d.Uvarint()
	if d.err != nil {
		return ""
	}
	if n > uint64(limit) || n > uint64(len(d.Buf)) {
		d.Fail("string of %d bytes exceeds payload or limit", n)
		return ""
	}
	s := string(d.Buf[:n])
	d.Buf = d.Buf[n:]
	return s
}
