// Package wal implements the segmented append-only write-ahead log behind
// durable hosted tables: every table mutation (create/replace, append,
// delete) is encoded as one length-prefixed, CRC32C-framed record and
// appended to the current segment file before the mutation is published.
//
// # On-disk format
//
// A log is a directory of segment files named wal-%08d.seg, replayed in
// name order. Each segment starts with the 8-byte magic "PTKWAL01" (the
// trailing digits are the format version) followed by records framed as
//
//	uint32 payload length (little-endian)
//	uint32 CRC32C of the payload (Castagnoli, little-endian)
//	payload bytes
//
// The payload encodes the operation, the table name, and — for put/append —
// the tuples (id, group, score bits, probability bits), all length-prefixed
// with uvarints.
//
// # Recovery
//
// Replay validates every frame. The first bad record — a torn tail from a
// crash mid-write, a CRC mismatch from corruption, an undecodable payload,
// or a record the caller's apply function rejects — ends the replay: the
// containing segment is truncated at the bad record's offset, later
// segments are deleted, and the log resumes appending from the surviving
// prefix. Nothing after a bad record can be trusted (later records may
// depend on the lost one), so clean truncation is the only safe recovery.
//
// # Durability
//
// With SyncAlways every Append fsyncs the segment (and directory-changing
// operations fsync the directory), so a record that Append acknowledged
// survives a machine crash. SyncNever leaves flushing to the OS: much
// faster, but a crash may lose the most recent acknowledged records —
// replay still recovers a clean prefix.
//
// SyncBatch keeps SyncAlways's contract — an acknowledged record survives a
// machine crash — but amortizes the fsync: Append enqueues the framed
// record onto the log's commit ring and blocks on a commit handle; a
// dedicated batcher goroutine drains everything queued, writes all pending
// frames with one write+fsync, and releases every waiter in the batch at
// once. Concurrent appenders therefore share fsyncs instead of paying one
// each; a lone appender degenerates to SyncAlways (batches of one). A
// failed batch fsync fails every waiter in the batch and marks the log
// broken, exactly like a failed SyncAlways fsync — no caller ever gets an
// error for a record that might replay, and no caller gets success for a
// record that might not.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"math/bits"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"probtopk/internal/uncertain"
)

// segMagic opens every segment file; the trailing "01" is the format
// version. Readers reject segments with any other magic.
const segMagic = "PTKWAL01"

// SegmentDataStart is the byte offset of the first frame in any segment
// file — the data begins right after the magic.
const SegmentDataStart = int64(len(segMagic))

// DefaultPrefix is the segment-name prefix of an unsharded log
// (wal-%08d.seg). Sharded deployments give each shard's log its own prefix
// (internal/persist uses wal-sNN-), so many logs share one directory
// without touching each other's files.
const DefaultPrefix = "wal-"

// frameHeaderLen is the fixed per-record framing overhead: payload length
// and payload CRC32C.
const frameHeaderLen = 8

// DefaultSegmentBytes is the default segment-rotation threshold.
const DefaultSegmentBytes = 4 << 20

// maxRecordBytes bounds a single record's payload, both appended and
// replayed. A replayed frame claiming more is treated as corruption, which
// also stops a hostile length prefix from forcing a huge allocation.
const maxRecordBytes = 32 << 20

// maxNameBytes bounds the table name inside a record.
const maxNameBytes = 4096

// maxStringBytes bounds tuple id and group strings inside a record.
const maxStringBytes = 1 << 20

// castagnoli is the CRC32C table shared by all framing.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Op identifies what a record does to its named table.
type Op byte

const (
	// OpPut installs the record's tuples as the table's full contents,
	// creating or replacing it.
	OpPut Op = 1
	// OpAppend appends the record's tuples to an existing table.
	OpAppend Op = 2
	// OpDelete removes the table.
	OpDelete Op = 3
)

// String returns the op's wire name.
func (o Op) String() string {
	switch o {
	case OpPut:
		return "put"
	case OpAppend:
		return "append"
	case OpDelete:
		return "delete"
	default:
		return fmt.Sprintf("op(%d)", byte(o))
	}
}

// Record is one logged mutation. Tuples is nil for OpDelete.
type Record struct {
	Op     Op
	Name   string
	Tuples []uncertain.Tuple
}

// Pos addresses a point in one log's record stream: the byte offset Off
// inside segment Seg. Every acknowledged record has the position of its
// frame's END — so a Pos doubles as "everything up to here", the unit of
// the replication handshake (internal/repl) and of CommittedPos. Positions
// are totally ordered by (Seg, Off); the zero Pos sorts before every real
// position.
type Pos struct {
	Seg uint64
	Off int64
}

// Less reports whether p addresses an earlier point than q.
func (p Pos) Less(q Pos) bool {
	return p.Seg < q.Seg || (p.Seg == q.Seg && p.Off < q.Off)
}

// IsZero reports whether p is the zero position (before any record).
func (p Pos) IsZero() bool { return p.Seg == 0 && p.Off == 0 }

// String formats p for logs.
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Seg, p.Off) }

// CommitTap observes acknowledged records; see Log.SetCommitTap.
type CommitTap func(pos Pos, frame []byte)

// SyncPolicy selects when the log fsyncs; see the package comment.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every Append and after every
	// directory-changing operation. Acknowledged records survive crashes.
	SyncAlways SyncPolicy = iota
	// SyncNever never fsyncs; the OS flushes when it likes.
	SyncNever
	// SyncBatch fsyncs like SyncAlways — every acknowledged record is
	// durable before Append returns — but group-commits: concurrent
	// appends queued while an fsync is in flight are flushed together by
	// the next one. See the package comment.
	SyncBatch
)

// File is the writable handle the log appends through. *os.File satisfies
// it; tests substitute failure-injecting implementations via
// Options.OpenFile.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// Options tune a Log. The zero value means SyncAlways, the default segment
// size, and real files.
type Options struct {
	// Sync is the fsync policy.
	Sync SyncPolicy
	// SegmentBytes is the rotation threshold: an Append that would grow the
	// current segment past it starts a new segment first. 0 means
	// DefaultSegmentBytes.
	SegmentBytes int64
	// MinSegment is the checkpoint watermark: segments with a smaller
	// sequence number are already covered by a snapshot and are deleted at
	// Open instead of replayed (they survive only when a crash interrupted
	// the checkpoint between persisting the snapshot and dropping them —
	// replaying them would double-apply their records). 0 means replay
	// everything.
	MinSegment uint64
	// Prefix is the segment-name prefix: this log owns exactly the files
	// named Prefix + zero-padded sequence number + ".seg". Empty means
	// DefaultPrefix. Files in the directory that merely share the prefix
	// but don't match the pattern (a sharded sibling's wal-s03-…seg under
	// the plain wal- prefix) are ignored, never replayed or deleted.
	Prefix string
	// MaxBatchDelay (SyncBatch only) is how long the batcher lingers after
	// the first record of a batch arrives, collecting more records to share
	// its fsync. 0 adds no wait: a batch is whatever queued while the
	// previous fsync was in flight, so batching is driven purely by
	// concurrency. The worst-case added acknowledgement latency of an
	// Append is MaxBatchDelay plus one fsync already in flight.
	MaxBatchDelay time.Duration
	// OpenFile opens the files the log syncs through: segment files for
	// writing, the truncation flush during Replay, and the directory
	// fsyncs. nil means os.OpenFile. Replay's record reads always go
	// through the real filesystem; the hook exists so tests can inject
	// write and fsync failures (see internal/persist/crashtest).
	OpenFile func(path string, flag int, perm os.FileMode) (File, error)
}

// batchSizeBuckets sizes the Stats.BatchSizes histogram: bucket i counts
// group commits of 2^i .. 2^(i+1)-1 records; the last bucket is open-ended.
const batchSizeBuckets = 8

// batchBucket maps a batch size (>= 1) to its histogram bucket.
func batchBucket(n int) int {
	b := bits.Len(uint(n)) - 1
	if b >= batchSizeBuckets {
		b = batchSizeBuckets - 1
	}
	return b
}

// Stats counts a Log's activity since Open.
type Stats struct {
	// Appends and AppendBytes count acknowledged records and their framed
	// bytes.
	Appends     uint64
	AppendBytes uint64
	// Syncs counts segment fsyncs.
	Syncs uint64
	// Segments is the current number of segment files.
	Segments int
	// Drops counts checkpoint truncations (DropBefore calls).
	Drops uint64
	// Batches counts completed group commits (SyncBatch only).
	Batches uint64
	// FsyncsSaved counts acknowledged records that shared another record's
	// fsync instead of paying their own — the fsyncs SyncAlways would have
	// issued minus the fsyncs SyncBatch actually did.
	FsyncsSaved uint64
	// BatchSizes is a power-of-two histogram of group-commit sizes: bucket
	// i counts batches of 2^i .. 2^(i+1)-1 records (last bucket
	// open-ended).
	BatchSizes [batchSizeBuckets]uint64
	// DirSyncErrors counts failed directory fsyncs. Any non-zero value
	// came with an error returned to a caller; the counter exists so the
	// failure stays visible in aggregated stats after the request is gone.
	DirSyncErrors uint64
}

// ReplayInfo describes what Replay found.
type ReplayInfo struct {
	// Records is the number of records applied.
	Records int
	// Segments is the number of segment files scanned.
	Segments int
	// Truncated reports that a torn or corrupt record was found and the log
	// was truncated at it.
	Truncated bool
	// DroppedBytes is the number of bytes discarded by that truncation,
	// including any later segments.
	DroppedBytes int64
}

// Log is a segmented write-ahead log rooted at one directory. Open it,
// Replay it exactly once, then Append. A Log is safe for concurrent use.
type Log struct {
	dir  string
	opts Options

	replayed atomic.Bool

	mu       sync.Mutex
	segments []string // absolute segment paths, replay order
	nextSeq  uint64   // sequence number for the next new segment
	cur      File
	curPath  string
	curSeq   uint64 // sequence number of the current segment
	curSize  int64
	broken   bool
	// committed is the position after the last ACKNOWLEDGED record: a frame
	// at or below it has been written and (under a syncing policy) fsynced;
	// bytes beyond it may be mid-write or doomed to roll back after a failed
	// fsync, so no reader outside mu may trust them. Replication catch-up
	// reads segment files up to exactly this bound.
	committed Pos
	// tap, when set, observes every acknowledged record in log order; see
	// SetCommitTap.
	tap CommitTap
	// badOffset is where replaySegment found the first bad record; only
	// meaningful between replaySegment and truncateFrom, both under mu.
	badOffset int64

	appends       uint64
	appendBytes   uint64
	syncs         uint64
	drops         uint64
	batches       uint64
	fsyncsSaved   uint64
	batchSizes    [batchSizeBuckets]uint64
	dirSyncErrors uint64

	// Group-commit machinery (SyncBatch only). Append enqueues a commit
	// handle on ring; the batcher goroutine (batchLoop, started by Replay)
	// drains it and flushes every queued frame with shared fsyncs. ringMu
	// serializes enqueue against Close and is never held across I/O, so
	// the enqueue path cannot block behind an in-flight fsync (which runs
	// under mu).
	ring        chan *commit
	ringMu      sync.Mutex
	closed      atomic.Bool
	batcherOn   bool          // batcher goroutine started; guarded by mu
	batcherDone chan struct{} // closed when the batcher exits
}

// commit is the handle of one enqueued SyncBatch append. The batcher
// resolves err before closing done, so wait's read is ordered after it.
type commit struct {
	frame []byte
	done  chan struct{}
	err   error
}

// wait blocks until the batcher committed or failed the record.
func (c *commit) wait() error {
	<-c.done
	return c.err
}

// ringSize bounds enqueued-but-uncommitted appends; a full ring makes
// enqueue block until the batcher drains (backpressure), it never drops.
const ringSize = 1024

// maxBatchRecords caps how many records one group commit flushes.
const maxBatchRecords = 1024

// errNotReplayed is returned by Append/Reset before Replay has run.
var errNotReplayed = errors.New("wal: log not replayed yet")

// errBroken is returned once a failed write could not be rolled back; the
// segment tail is untrustworthy and the log refuses further appends.
var errBroken = errors.New("wal: log broken by an unrecoverable write failure")

// errClosed is returned by a SyncBatch Append that raced Close.
var errClosed = errors.New("wal: log closed")

// Open scans dir (creating it if needed) for existing segments, deleting
// any below the MinSegment watermark (their records are covered by a
// snapshot; replaying them would double-apply). It reads nothing else:
// call Replay to recover the records and position the writer.
func Open(dir string, opts Options) (*Log, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if opts.Prefix == "" {
		opts.Prefix = DefaultPrefix
	}
	if opts.OpenFile == nil {
		opts.OpenFile = func(path string, flag int, perm os.FileMode) (File, error) {
			return os.OpenFile(path, flag, perm)
		}
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	matches, err := filepath.Glob(filepath.Join(dir, opts.Prefix+"*.seg"))
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	sort.Strings(matches)
	// nextSeq must clear the watermark even if every segment at or beyond
	// it is gone, or a fresh segment would be numbered below the snapshot's
	// watermark and skipped by the next boot.
	l := &Log{dir: dir, opts: opts, nextSeq: max(1, opts.MinSegment)}
	if opts.Sync == SyncBatch {
		l.ring = make(chan *commit, ringSize)
		l.batcherDone = make(chan struct{})
	}
	for _, path := range matches {
		seq, ok := SeqFromName(filepath.Base(path), opts.Prefix)
		if !ok {
			// Shares the prefix but not the pattern: another log's file
			// (wal-s03-…seg under the plain wal- prefix). Not ours.
			continue
		}
		if seq < opts.MinSegment {
			// Checkpointed leftovers from a crash mid-drop.
			if err := os.Remove(path); err != nil {
				return nil, fmt.Errorf("wal: %w", err)
			}
			continue
		}
		l.segments = append(l.segments, path)
		if seq >= l.nextSeq {
			l.nextSeq = seq + 1
		}
	}
	return l, nil
}

// SeqFromName parses the sequence number of a segment file named
// prefix + digits + ".seg". ok is false when base belongs to a different
// namespace sharing the directory — callers skip those files rather than
// treating them as corruption.
func SeqFromName(base, prefix string) (seq uint64, ok bool) {
	digits, found := strings.CutPrefix(base, prefix)
	if !found {
		return 0, false
	}
	digits, found = strings.CutSuffix(digits, ".seg")
	if !found || digits == "" {
		return 0, false
	}
	for i := 0; i < len(digits); i++ {
		c := digits[i]
		if c < '0' || c > '9' {
			return 0, false
		}
		d := uint64(c - '0')
		if seq > (math.MaxUint64-d)/10 {
			return 0, false
		}
		seq = seq*10 + d
	}
	return seq, true
}

// segmentSeq parses a segment path's sequence number under this log's
// prefix; the path comes from l.segments, so it always matches.
func (l *Log) segmentSeq(path string) (uint64, error) {
	seq, ok := SeqFromName(filepath.Base(path), l.opts.Prefix)
	if !ok {
		return 0, fmt.Errorf("wal: unparseable segment name %q", filepath.Base(path))
	}
	return seq, nil
}

// Replay reads every record of every segment in order, calling apply on
// each. The first torn, corrupt or rejected record truncates the log at
// that point (see the package comment); that is recovery, not failure, and
// is reported through ReplayInfo. Replay must be called exactly once,
// before the first Append.
func (l *Log) Replay(apply func(Record) error) (ReplayInfo, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.replayed.Load() {
		return ReplayInfo{}, errors.New("wal: already replayed")
	}
	var info ReplayInfo
	info.Segments = len(l.segments)
	for i, path := range l.segments {
		stop, err := l.replaySegment(path, apply, &info)
		if err != nil {
			return info, err
		}
		if stop {
			if err := l.truncateFrom(i, &info); err != nil {
				return info, err
			}
			break
		}
	}
	if err := l.openForAppendLocked(); err != nil {
		return info, err
	}
	l.replayed.Store(true)
	if l.opts.Sync == SyncBatch {
		l.batcherOn = true
		go l.batchLoop()
	}
	return info, nil
}

// replaySegment scans one segment. It returns stop=true when a bad record
// was found at l.badOffset (recorded in info), and a non-nil error only for
// environmental failures (the segment cannot be read at all).
func (l *Log) replaySegment(path string, apply func(Record) error, info *ReplayInfo) (stop bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return false, fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	magic := make([]byte, len(segMagic))
	if _, err := io.ReadFull(f, magic); err != nil || string(magic) != segMagic {
		l.badOffset, info.Truncated = 0, true
		return true, nil
	}
	offset := int64(len(segMagic))
	header := make([]byte, frameHeaderLen)
	for {
		_, err := io.ReadFull(f, header)
		if err == io.EOF {
			return false, nil // clean segment end
		}
		if err != nil { // torn frame header
			l.badOffset, info.Truncated = offset, true
			return true, nil
		}
		payloadLen := binary.LittleEndian.Uint32(header[0:4])
		wantCRC := binary.LittleEndian.Uint32(header[4:8])
		if payloadLen > maxRecordBytes {
			l.badOffset, info.Truncated = offset, true
			return true, nil
		}
		payload := make([]byte, payloadLen)
		if _, err := io.ReadFull(f, payload); err != nil { // torn payload
			l.badOffset, info.Truncated = offset, true
			return true, nil
		}
		if crc32.Checksum(payload, castagnoli) != wantCRC {
			l.badOffset, info.Truncated = offset, true
			return true, nil
		}
		rec, err := decodeRecord(payload)
		if err != nil {
			l.badOffset, info.Truncated = offset, true
			return true, nil
		}
		if err := apply(rec); err != nil {
			l.badOffset, info.Truncated = offset, true
			return true, nil
		}
		info.Records++
		offset += frameHeaderLen + int64(payloadLen)
	}
}

// truncateFrom discards the bad record at l.badOffset of segment i and
// everything after it: segment i is truncated (or deleted outright when
// even its header is bad), segments beyond i are deleted.
func (l *Log) truncateFrom(i int, info *ReplayInfo) error {
	path := l.segments[i]
	size := func(p string) int64 {
		if fi, err := os.Stat(p); err == nil {
			return fi.Size()
		}
		return 0
	}
	for _, later := range l.segments[i+1:] {
		info.DroppedBytes += size(later)
		if err := os.Remove(later); err != nil {
			return fmt.Errorf("wal: %w", err)
		}
	}
	if l.badOffset < int64(len(segMagic)) {
		// The segment header itself is unusable; drop the whole file.
		info.DroppedBytes += size(path)
		if err := os.Remove(path); err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		l.segments = l.segments[:i]
	} else {
		info.DroppedBytes += size(path) - l.badOffset
		if err := os.Truncate(path, l.badOffset); err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		// Flush the truncation so a crash cannot resurrect the bad tail.
		// A failure here must fail the whole recovery: proceeding would
		// serve state a crash could contradict (the truncated-away tail
		// coming back and replaying records the recovered state never
		// saw). The file is opened through the OpenFile hook so tests can
		// inject exactly that failure.
		f, err := l.opts.OpenFile(path, os.O_WRONLY, 0o644)
		if err != nil {
			return fmt.Errorf("wal: flush truncation: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("wal: flush truncation: %w", err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("wal: flush truncation: %w", err)
		}
		l.segments = l.segments[:i+1]
	}
	return l.syncDirLocked()
}

// openForAppendLocked positions the writer: it opens the last surviving
// segment for appending, or creates the first segment of an empty log.
func (l *Log) openForAppendLocked() error {
	if n := len(l.segments); n > 0 {
		path := l.segments[n-1]
		seq, err := l.segmentSeq(path)
		if err != nil {
			return err
		}
		fi, err := os.Stat(path)
		if err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		f, err := l.opts.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		l.cur, l.curPath, l.curSeq, l.curSize = f, path, seq, fi.Size()
		// Everything replay accepted is committed: replay already truncated
		// anything torn or corrupt away.
		l.committed = Pos{Seg: seq, Off: l.curSize}
		return nil
	}
	return l.createSegmentLocked()
}

// createSegmentLocked starts a fresh segment and makes it current.
func (l *Log) createSegmentLocked() error {
	path := filepath.Join(l.dir, fmt.Sprintf("%s%08d.seg", l.opts.Prefix, l.nextSeq))
	f, err := l.opts.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if _, err := f.Write([]byte(segMagic)); err != nil {
		f.Close()
		os.Remove(path)
		return fmt.Errorf("wal: %w", err)
	}
	if l.opts.Sync != SyncNever {
		if err := f.Sync(); err != nil {
			f.Close()
			os.Remove(path)
			return fmt.Errorf("wal: %w", err)
		}
		l.syncs++
	}
	// The directory entry must be durable before any acknowledged record
	// lands in the file: a crash after a failed (formerly best-effort)
	// directory fsync could lose the whole just-created segment, records
	// and all. Fail the segment creation instead; the current segment (if
	// any) keeps appending and the caller's operation reports the error.
	if err := l.syncDirLocked(); err != nil {
		f.Close()
		os.Remove(path)
		return err
	}
	seq := l.nextSeq
	l.nextSeq++
	if l.cur != nil {
		l.cur.Close()
	}
	l.cur, l.curPath, l.curSeq, l.curSize = f, path, seq, int64(len(segMagic))
	// No records exist between the previous segment's end and this one's
	// start, so advancing the committed position to the fresh segment's data
	// start skips nothing.
	l.committed = Pos{Seg: seq, Off: l.curSize}
	l.segments = append(l.segments, path)
	return nil
}

// Append encodes r, frames it, and appends it to the current segment,
// rotating first if the segment is full. With SyncAlways the record is
// fsynced before Append returns: an acknowledged record survives a crash.
// With SyncBatch the record is enqueued for the batcher and Append blocks
// until the group commit carrying it has fsynced — same contract, shared
// fsyncs. On a failed or short write the torn bytes are truncated away so
// the segment stays a clean prefix of acknowledged records; if that
// rollback itself fails the log marks itself broken and refuses further
// appends.
func (l *Log) Append(r Record) error {
	frame, err := encodeFrame(r)
	if err != nil {
		return err
	}
	if l.opts.Sync == SyncBatch {
		c, err := l.enqueue(frame)
		if err != nil {
			return err
		}
		return c.wait()
	}
	return l.appendNow(frame)
}

// encodeFrame serializes r and wraps it in the length+CRC frame Append
// writes; it runs outside any lock.
func encodeFrame(r Record) ([]byte, error) {
	payload, err := encodeRecord(r)
	if err != nil {
		return nil, err
	}
	if len(payload) > maxRecordBytes {
		return nil, fmt.Errorf("wal: record of %d bytes exceeds the %d-byte limit", len(payload), maxRecordBytes)
	}
	frame := make([]byte, frameHeaderLen+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, castagnoli))
	copy(frame[frameHeaderLen:], payload)
	return frame, nil
}

// appendNow is the unbatched append path (SyncAlways / SyncNever).
func (l *Log) appendNow(frame []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.replayed.Load() {
		return errNotReplayed
	}
	if l.broken {
		return errBroken
	}
	if l.cur == nil {
		// A failed segment creation left no current segment; try again
		// rather than crash (createSegmentLocked never discards a working
		// one).
		if err := l.createSegmentLocked(); err != nil {
			return err
		}
	}
	if l.curSize+int64(len(frame)) > l.opts.SegmentBytes && l.curSize > int64(len(segMagic)) {
		if err := l.createSegmentLocked(); err != nil {
			return err
		}
	}
	if _, err := l.cur.Write(frame); err != nil {
		// Roll the torn bytes back so the segment remains a clean prefix.
		l.rollbackLocked()
		return fmt.Errorf("wal: append: %w", err)
	}
	if l.opts.Sync == SyncAlways {
		if err := l.cur.Sync(); err != nil {
			// The frame is fully written but its durability is unknown, and
			// the caller will NOT publish the mutation — so the record must
			// not replay either. Roll it back, then refuse further appends
			// regardless: after a failed fsync the kernel may have dropped
			// dirty pages and marked them clean, so no later fsync result
			// on this file can be trusted. A restart replays what actually
			// survived and starts from that truth.
			l.rollbackLocked()
			l.broken = true
			return fmt.Errorf("wal: sync: %w", err)
		}
		l.syncs++
	}
	l.curSize += int64(len(frame))
	l.appends++
	l.appendBytes += uint64(len(frame))
	l.committed = Pos{Seg: l.curSeq, Off: l.curSize}
	if l.tap != nil {
		l.tap(l.committed, frame)
	}
	return nil
}

// enqueue hands a framed record to the batcher and returns its commit
// handle. It deliberately does not touch l.mu — the batcher holds that
// across its write+fsync — so an appender is never blocked behind an
// in-flight fsync; it blocks only in wait, on the fsync that carries its
// own record (or, when the ring is full, on backpressure).
func (l *Log) enqueue(frame []byte) (*commit, error) {
	if !l.replayed.Load() {
		return nil, errNotReplayed
	}
	c := &commit{frame: frame, done: make(chan struct{})}
	l.ringMu.Lock()
	if l.closed.Load() {
		l.ringMu.Unlock()
		return nil, errClosed
	}
	l.ring <- c
	l.ringMu.Unlock()
	return c, nil
}

// batchLoop is the batcher goroutine: it runs from Replay until Close
// closes the ring, turning each wave of queued records into one group
// commit.
func (l *Log) batchLoop() {
	defer close(l.batcherDone)
	for first := range l.ring {
		l.commitBatch(l.gatherBatch(first))
	}
}

// gatherBatch collects the records that will share the next group commit:
// everything already queued, plus — when MaxBatchDelay is set — whatever
// more arrives within that window.
func (l *Log) gatherBatch(first *commit) []*commit {
	batch := append(make([]*commit, 0, 16), first)
	if d := l.opts.MaxBatchDelay; d > 0 {
		timer := time.NewTimer(d)
		defer timer.Stop()
		for len(batch) < maxBatchRecords {
			select {
			case c, ok := <-l.ring:
				if !ok {
					return batch
				}
				batch = append(batch, c)
			case <-timer.C:
				return batch
			}
		}
		return batch
	}
	drain := func() bool { // false once the ring has been closed
		for len(batch) < maxBatchRecords {
			select {
			case c, ok := <-l.ring:
				if !ok {
					return false
				}
				batch = append(batch, c)
			default:
				return true
			}
		}
		return true
	}
	if drain() && len(batch) < maxBatchRecords {
		// Releasing the previous batch has just made its waiters runnable,
		// and their next records arrive microseconds behind `first`; without
		// this yield the batcher would commit `first` alone and fragment the
		// cohort into size-1 batches. A timer cannot fill this gap — Go
		// timers do not fire reliably under ~1ms, a hundred times the cost
		// of one Gosched.
		runtime.Gosched()
		drain()
	}
	return batch
}

// commitBatch writes every frame of batch with as few fsyncs as possible —
// one per segment touched — and resolves each waiter. A chunk whose fsync
// succeeded is durable even when a later chunk fails: its waiters are
// released as committed, so an error never reaches a caller whose record
// will replay, and (via rollback of the failing chunk) success never
// reaches a caller whose record won't.
func (l *Log) commitBatch(batch []*commit) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.broken {
		failCommits(batch, errBroken)
		return
	}
	syncs := 0
	rest := batch
	for len(rest) > 0 {
		if l.cur == nil {
			if err := l.createSegmentLocked(); err != nil {
				failCommits(rest, err)
				return
			}
		}
		// Pack the longest prefix of rest that fits the current segment;
		// a fresh segment always takes at least one record (a single
		// oversized frame goes in alone, as in the unbatched path).
		n, total := 0, int64(0)
		for _, c := range rest {
			fl := int64(len(c.frame))
			if n > 0 && l.curSize+total+fl > l.opts.SegmentBytes {
				break
			}
			if n == 0 && l.curSize+fl > l.opts.SegmentBytes && l.curSize > int64(len(segMagic)) {
				break
			}
			n, total = n+1, total+fl
		}
		if n == 0 {
			if err := l.createSegmentLocked(); err != nil {
				failCommits(rest, err)
				return
			}
			continue
		}
		chunk := rest[:n]
		buf := make([]byte, 0, total)
		for _, c := range chunk {
			buf = append(buf, c.frame...)
		}
		if _, err := l.cur.Write(buf); err != nil {
			// Truncate the torn bytes so the segment stays a clean prefix
			// of acknowledged records, then fail every waiter from this
			// chunk on (their frames are the ones rolled back).
			l.rollbackLocked()
			failCommits(rest, fmt.Errorf("wal: append: %w", err))
			return
		}
		if err := l.cur.Sync(); err != nil {
			// The chunk is written but its durability is unknown, and
			// every waiter in it will be told failure — so none of its
			// records may replay. Roll the whole chunk back and mark the
			// log broken: after a failed fsync the kernel may have dropped
			// dirty pages and marked them clean, so no later fsync result
			// on this file can be trusted (see the unbatched path).
			l.rollbackLocked()
			l.broken = true
			failCommits(rest, fmt.Errorf("wal: sync: %w", err))
			return
		}
		l.syncs++
		syncs++
		off := l.curSize
		l.curSize += total
		l.appends += uint64(n)
		l.appendBytes += uint64(total)
		l.committed = Pos{Seg: l.curSeq, Off: l.curSize}
		for _, c := range chunk {
			// The whole chunk is durable; surface each record to the tap at
			// its own end position, in log order, before releasing anyone.
			off += int64(len(c.frame))
			if l.tap != nil {
				l.tap(Pos{Seg: l.curSeq, Off: off}, c.frame)
			}
			close(c.done) // err stays nil: committed and durable
		}
		rest = rest[n:]
	}
	l.batches++
	l.fsyncsSaved += uint64(len(batch) - syncs)
	l.batchSizes[batchBucket(len(batch))]++
}

// failCommits resolves every still-waiting handle in cs with err.
func failCommits(cs []*commit, err error) {
	for _, c := range cs {
		c.err = err
		close(c.done)
	}
}

// rollbackLocked truncates the current segment back to its last
// acknowledged size, discarding a record that failed mid-append, and
// fsyncs the truncation — without the sync, a machine crash could bring
// the complete frame back from the page cache and replay a mutation the
// client was told failed. If the truncation or its sync fails the segment
// tail is untrustworthy and the log marks itself broken. Callers hold
// l.mu.
func (l *Log) rollbackLocked() {
	if err := os.Truncate(l.curPath, l.curSize); err != nil {
		l.broken = true
		return
	}
	if err := l.cur.Sync(); err != nil {
		l.broken = true
	}
}

// StartSegment returns the checkpoint watermark: the sequence number of a
// fresh segment such that every record logged before the call lives in a
// segment below it and every record logged after lives at or beyond it.
// When the current segment is still empty — a retry after a failed
// checkpoint with no records in between — it IS that fresh segment and is
// reused, so failing checkpoints do not leak one segment per attempt. On
// error the current segment keeps appending; the checkpoint is merely
// postponed.
func (l *Log) StartSegment() (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.replayed.Load() {
		return 0, errNotReplayed
	}
	if l.cur != nil && l.curSize == int64(len(segMagic)) {
		return l.segmentSeq(l.curPath)
	}
	seq := l.nextSeq
	if err := l.createSegmentLocked(); err != nil {
		return 0, err
	}
	return seq, nil
}

// DropBefore deletes every segment with a sequence number below seq —
// their records are covered by the snapshot the caller just persisted. A
// crash that interrupts the deletion is harmless: Open skips (and cleans)
// segments below the snapshot's watermark.
func (l *Log) DropBefore(seq uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.replayed.Load() {
		return errNotReplayed
	}
	kept := l.segments[:0]
	for _, path := range l.segments {
		s, err := l.segmentSeq(path)
		if err != nil {
			return err
		}
		if s >= seq {
			kept = append(kept, path)
			continue
		}
		if err := os.Remove(path); err != nil {
			return fmt.Errorf("wal: %w", err)
		}
	}
	l.segments = kept
	l.drops++
	// Surface a failed directory fsync to the checkpoint path: the
	// deletions may not be durable, and the caller counts the checkpoint
	// as errored rather than silently complete. (Resurrected segments
	// below the watermark are cleaned at the next Open either way.)
	return l.syncDirLocked()
}

// Sync forces an fsync of the current segment regardless of policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.cur == nil {
		return nil
	}
	if err := l.cur.Sync(); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	l.syncs++
	return nil
}

// Close releases the current segment handle. Under SyncBatch it first
// stops the batcher: records already enqueued are still group-committed
// (their waiters resolve normally) and an Append racing Close gets an
// error, never silence. It does not fsync beyond that (Append already
// enforced the policy); a Close-less crash loses nothing more than the
// policy allows.
func (l *Log) Close() error {
	if l.opts.Sync == SyncBatch {
		l.ringMu.Lock()
		if !l.closed.Swap(true) {
			close(l.ring)
		}
		l.ringMu.Unlock()
		l.mu.Lock()
		started := l.batcherOn
		l.mu.Unlock()
		if started {
			<-l.batcherDone
		}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.cur == nil {
		return nil
	}
	err := l.cur.Close()
	l.cur = nil
	return err
}

// Stats returns the log's counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Stats{
		Appends:       l.appends,
		AppendBytes:   l.appendBytes,
		Syncs:         l.syncs,
		Segments:      len(l.segments),
		Drops:         l.drops,
		Batches:       l.batches,
		FsyncsSaved:   l.fsyncsSaved,
		BatchSizes:    l.batchSizes,
		DirSyncErrors: l.dirSyncErrors,
	}
}

// SetCommitTap registers fn to observe every record this log acknowledges
// from now on, in log order. fn runs on the committing goroutine with the
// log's internal lock held, immediately after the write (and, under a
// syncing policy, the fsync) that made the record's acknowledgement true —
// so a record whose fsync failed is never surfaced, and a surfaced record
// can never be rolled back. fn MUST NOT block (it stalls every append) and
// MUST NOT call back into the log; it must treat the frame bytes as
// read-only and may retain them. Replication (internal/repl) uses the tap
// as its live feed; records committed before registration are reachable
// through SegmentsSnapshot + ReadSegmentFrames. A nil fn unregisters.
func (l *Log) SetCommitTap(fn CommitTap) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.tap = fn
}

// CommittedPos returns the position after the last acknowledged record.
// Bytes beyond it in the current segment file — a frame being written, or
// one about to be truncated away after a failed fsync — are not trustworthy
// and must never be read.
func (l *Log) CommittedPos() Pos {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.committed
}

// SegmentRef names one retained segment file.
type SegmentRef struct {
	Seq  uint64
	Path string
}

// SegmentsSnapshot returns the currently retained segments in replay order
// together with the committed position, atomically — the committed bound is
// guaranteed to lie within the returned segments. The files themselves may
// be deleted by a concurrent checkpoint (DropBefore) after the snapshot is
// taken; readers treat a vanished file as "retry", not corruption.
func (l *Log) SegmentsSnapshot() ([]SegmentRef, Pos, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	refs := make([]SegmentRef, 0, len(l.segments))
	for _, path := range l.segments {
		seq, err := l.segmentSeq(path)
		if err != nil {
			return nil, Pos{}, err
		}
		refs = append(refs, SegmentRef{Seq: seq, Path: path})
	}
	return refs, l.committed, nil
}

// ReadSegmentFrames reads the committed frames of the segment file at path
// (sequence seq), starting at byte offset from (SegmentDataStart, or a
// Pos.Off previously returned for this segment), and calls fn with each
// frame's end position and raw frame bytes (header + payload, exactly as
// written; valid only during the call). limit is the owning log's committed
// position: a segment below limit.Seg is read to its end, the segment AT
// limit.Seg is read up to exactly limit.Off, and a segment beyond it is
// skipped — so a frame that is mid-write, or written but not yet fsynced
// (and thus still able to fail and roll back), is never surfaced. Within
// the limit, a torn or corrupt frame is an error: committed bytes are by
// contract a clean prefix. An error from fn aborts the read and is returned
// unwrapped.
func ReadSegmentFrames(path string, seq uint64, from int64, limit Pos, fn func(pos Pos, frame []byte) error) error {
	if seq > limit.Seg {
		return nil
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if from < SegmentDataStart {
		from = SegmentDataStart
	}
	magic := make([]byte, len(segMagic))
	if _, err := io.ReadFull(f, magic); err != nil || string(magic) != segMagic {
		return fmt.Errorf("wal: bad segment magic in %s", filepath.Base(path))
	}
	end := int64(math.MaxInt64)
	if seq == limit.Seg {
		end = limit.Off
	}
	if from > SegmentDataStart {
		if _, err := f.Seek(from, io.SeekStart); err != nil {
			return fmt.Errorf("wal: %w", err)
		}
	}
	r := bufio.NewReaderSize(f, 1<<16)
	offset := from
	header := make([]byte, frameHeaderLen)
	for offset < end {
		if _, err := io.ReadFull(r, header); err != nil {
			if err == io.EOF && end == int64(math.MaxInt64) {
				return nil // clean end of a fully committed segment
			}
			return fmt.Errorf("wal: committed frame torn at %s:%d: %w", filepath.Base(path), offset, err)
		}
		payloadLen := binary.LittleEndian.Uint32(header[0:4])
		wantCRC := binary.LittleEndian.Uint32(header[4:8])
		if payloadLen > maxRecordBytes {
			return fmt.Errorf("wal: frame at %s:%d claims %d bytes", filepath.Base(path), offset, payloadLen)
		}
		frameEnd := offset + frameHeaderLen + int64(payloadLen)
		if frameEnd > end {
			return fmt.Errorf("wal: frame at %s:%d crosses the committed bound %d", filepath.Base(path), offset, end)
		}
		frame := make([]byte, frameHeaderLen+int(payloadLen))
		copy(frame, header)
		if _, err := io.ReadFull(r, frame[frameHeaderLen:]); err != nil {
			return fmt.Errorf("wal: committed frame torn at %s:%d: %w", filepath.Base(path), offset, err)
		}
		if crc32.Checksum(frame[frameHeaderLen:], castagnoli) != wantCRC {
			return fmt.Errorf("wal: CRC mismatch at %s:%d", filepath.Base(path), offset)
		}
		if err := fn(Pos{Seg: seq, Off: frameEnd}, frame); err != nil {
			return err
		}
		offset = frameEnd
	}
	return nil
}

// EncodeFrame serializes r exactly as Append writes it — length, CRC32C,
// payload. Replication uses it to synthesize catch-up records (snapshot
// tables shipped as put frames) in the same wire shape as live ones.
func EncodeFrame(r Record) ([]byte, error) { return encodeFrame(r) }

// DecodeFrame validates a raw frame (as surfaced by a commit tap or
// ReadSegmentFrames) and decodes its record.
func DecodeFrame(frame []byte) (Record, error) {
	if len(frame) < frameHeaderLen {
		return Record{}, errors.New("wal: frame shorter than its header")
	}
	payloadLen := binary.LittleEndian.Uint32(frame[0:4])
	if int64(payloadLen) != int64(len(frame)-frameHeaderLen) {
		return Record{}, fmt.Errorf("wal: frame length %d does not match its %d-byte payload", payloadLen, len(frame)-frameHeaderLen)
	}
	payload := frame[frameHeaderLen:]
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(frame[4:8]) {
		return Record{}, errors.New("wal: frame CRC mismatch")
	}
	return decodeRecord(payload)
}

// syncDirLocked fsyncs the log directory so segment creations, deletions
// and truncations are themselves durable under a syncing policy (it is a
// no-op under SyncNever). Failures are counted in Stats.DirSyncErrors and
// returned: on the create/rotate/checkpoint paths a lost directory entry
// can lose a whole acknowledged segment, so the caller must fail loudly
// rather than proceed. The directory is opened through the OpenFile hook
// so tests can inject failures. Callers hold l.mu.
func (l *Log) syncDirLocked() error {
	if l.opts.Sync == SyncNever {
		return nil
	}
	d, err := l.opts.OpenFile(l.dir, os.O_RDONLY, 0)
	if err != nil {
		l.dirSyncErrors++
		return fmt.Errorf("wal: sync dir: %w", err)
	}
	if err := d.Sync(); err != nil {
		d.Close()
		l.dirSyncErrors++
		return fmt.Errorf("wal: sync dir: %w", err)
	}
	d.Close()
	return nil
}

// --- record payload codec ---

// encodeRecord serializes r's payload (the framing is Append's job).
func encodeRecord(r Record) ([]byte, error) {
	switch r.Op {
	case OpPut, OpAppend, OpDelete:
	default:
		return nil, fmt.Errorf("wal: unknown op %d", byte(r.Op))
	}
	if r.Name == "" {
		return nil, errors.New("wal: empty table name")
	}
	if len(r.Name) > maxNameBytes {
		return nil, fmt.Errorf("wal: table name of %d bytes exceeds the %d-byte limit", len(r.Name), maxNameBytes)
	}
	buf := []byte{byte(r.Op)}
	buf = appendString(buf, r.Name)
	if r.Op == OpDelete {
		return buf, nil
	}
	buf = binary.AppendUvarint(buf, uint64(len(r.Tuples)))
	for _, tp := range r.Tuples {
		if len(tp.ID) > maxStringBytes || len(tp.Group) > maxStringBytes {
			return nil, fmt.Errorf("wal: tuple string exceeds the %d-byte limit", maxStringBytes)
		}
		buf = appendString(buf, tp.ID)
		buf = appendString(buf, tp.Group)
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(tp.Score))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(tp.Prob))
	}
	return buf, nil
}

// minTupleBytes is the smallest possible encoded tuple (two empty strings
// plus two float64s); claimed tuple counts are checked against it so a
// lying count cannot force a huge allocation.
const minTupleBytes = 1 + 1 + 8 + 8

// decodeRecord parses a payload produced by encodeRecord, defensively: any
// structural violation is an error (the replayer treats it as corruption).
func decodeRecord(payload []byte) (Record, error) {
	d := Decoder{Buf: payload, Prefix: "wal"}
	op := Op(d.Byte())
	name := d.String(maxNameBytes)
	r := Record{Op: op, Name: name}
	switch op {
	case OpDelete:
	case OpPut, OpAppend:
		n := d.Uvarint()
		if d.Err() == nil && n > uint64(len(d.Buf)/minTupleBytes)+1 {
			return Record{}, fmt.Errorf("wal: tuple count %d exceeds payload", n)
		}
		if d.Err() == nil && n > 0 {
			r.Tuples = make([]uncertain.Tuple, 0, n)
		}
		for i := uint64(0); i < n && d.Err() == nil; i++ {
			tp := uncertain.Tuple{
				ID:    d.String(maxStringBytes),
				Group: d.String(maxStringBytes),
				Score: math.Float64frombits(d.Uint64()),
				Prob:  math.Float64frombits(d.Uint64()),
			}
			if d.Err() == nil {
				r.Tuples = append(r.Tuples, tp)
			}
		}
	default:
		return Record{}, fmt.Errorf("wal: unknown op %d", byte(op))
	}
	if err := d.Err(); err != nil {
		return Record{}, err
	}
	if name == "" {
		return Record{}, errors.New("wal: empty table name")
	}
	if len(d.Buf) != 0 {
		return Record{}, fmt.Errorf("wal: %d trailing payload bytes", len(d.Buf))
	}
	return r, nil
}

// AppendString appends a uvarint length prefix and the bytes of s — the
// string framing shared by the WAL record codec and the snapshot file
// codec (internal/persist).
func AppendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// appendString is the package-internal alias kept for the encoder's
// readability.
func appendString(buf []byte, s string) []byte { return AppendString(buf, s) }

// Decoder reads a length-prefixed binary payload sequentially, latching
// the first error: once anything fails, every further read is a no-op and
// Err reports the cause. Shared by the WAL record codec and the snapshot
// file codec so both formats reject hostile input identically; Prefix
// names the format in error messages.
type Decoder struct {
	Buf    []byte
	Prefix string
	err    error
}

// Err returns the first error any read latched, or nil.
func (d *Decoder) Err() error { return d.err }

// Fail latches a formatted error if none is latched yet.
func (d *Decoder) Fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf(d.Prefix+": "+format, args...)
	}
}

// Byte consumes one byte.
func (d *Decoder) Byte() byte {
	if d.err != nil {
		return 0
	}
	if len(d.Buf) < 1 {
		d.Fail("truncated payload")
		return 0
	}
	b := d.Buf[0]
	d.Buf = d.Buf[1:]
	return b
}

// Uvarint consumes one unsigned varint.
func (d *Decoder) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.Buf)
	if n <= 0 {
		d.Fail("bad uvarint")
		return 0
	}
	d.Buf = d.Buf[n:]
	return v
}

// Uint64 consumes one little-endian uint64.
func (d *Decoder) Uint64() uint64 {
	if d.err != nil {
		return 0
	}
	if len(d.Buf) < 8 {
		d.Fail("truncated payload")
		return 0
	}
	v := binary.LittleEndian.Uint64(d.Buf)
	d.Buf = d.Buf[8:]
	return v
}

// String consumes one length-prefixed string of at most limit bytes. The
// limit check also caps what a hostile length prefix can allocate.
func (d *Decoder) String(limit int) string {
	n := d.Uvarint()
	if d.err != nil {
		return ""
	}
	if n > uint64(limit) || n > uint64(len(d.Buf)) {
		d.Fail("string of %d bytes exceeds payload or limit", n)
		return ""
	}
	s := string(d.Buf[:n])
	d.Buf = d.Buf[n:]
	return s
}
