package wal

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"probtopk/internal/uncertain"
)

// open opens dir and replays it into a record slice, failing the test on
// environmental errors.
func open(t *testing.T, dir string, opts Options) (*Log, []Record, ReplayInfo) {
	t.Helper()
	l, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	var recs []Record
	info, err := l.Replay(func(r Record) error {
		recs = append(recs, r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return l, recs, info
}

func sampleRecords() []Record {
	return []Record{
		{Op: OpPut, Name: "fleet", Tuples: []uncertain.Tuple{
			{ID: "a", Score: 80, Prob: 0.9},
			{ID: "b", Score: 70, Prob: 0.4, Group: "lane3"},
		}},
		{Op: OpAppend, Name: "fleet", Tuples: []uncertain.Tuple{
			{ID: "c", Score: 65, Prob: 0.5, Group: "lane3"},
		}},
		{Op: OpPut, Name: "radar", Tuples: nil},
		{Op: OpDelete, Name: "radar"},
	}
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, recs, info := open(t, dir, Options{})
	if len(recs) != 0 || info.Records != 0 {
		t.Fatalf("fresh log replayed %v", recs)
	}
	want := sampleRecords()
	for _, r := range want {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if st := l.Stats(); st.Appends != 4 || st.Segments != 1 || st.Syncs == 0 {
		t.Fatalf("stats = %+v", st)
	}
	l.Close()

	_, got, info := open(t, t.TempDir(), Options{})
	if len(got) != 0 {
		t.Fatalf("unrelated dir replayed %v", got)
	}
	l2, got, info := open(t, dir, Options{})
	defer l2.Close()
	if info.Truncated || info.Records != len(want) {
		t.Fatalf("replay info = %+v", info)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("replayed %+v, want %+v", got, want)
	}
	// The reopened log keeps appending where the old one stopped.
	if err := l2.Append(Record{Op: OpDelete, Name: "fleet"}); err != nil {
		t.Fatal(err)
	}
	l2.Close()
	_, got, _ = open(t, dir, Options{})
	if len(got) != len(want)+1 || got[len(got)-1].Op != OpDelete {
		t.Fatalf("after reopen-append, replayed %d records", len(got))
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := open(t, dir, Options{SegmentBytes: 128, Sync: SyncNever})
	for i := 0; i < 20; i++ {
		if err := l.Append(sampleRecords()[0]); err != nil {
			t.Fatal(err)
		}
	}
	st := l.Stats()
	if st.Segments < 2 {
		t.Fatalf("expected rotation, stats = %+v", st)
	}
	l.Close()
	_, got, info := open(t, dir, Options{})
	if len(got) != 20 || info.Segments != st.Segments || info.Truncated {
		t.Fatalf("replayed %d records over %d segments (truncated=%v)", len(got), info.Segments, info.Truncated)
	}
}

func TestCheckpointTruncation(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := open(t, dir, Options{})
	for _, r := range sampleRecords() {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	// The checkpoint sequence: start a fresh segment (the watermark), then
	// drop everything below it.
	seq, err := l.StartSegment()
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(Record{Op: OpDelete, Name: "x"}); err != nil {
		t.Fatal(err) // lands at/beyond the watermark
	}
	if err := l.DropBefore(seq); err != nil {
		t.Fatal(err)
	}
	if st := l.Stats(); st.Segments != 1 || st.Drops != 1 {
		t.Fatalf("stats after drop = %+v", st)
	}
	l.Close()
	// Records beyond the watermark replay; records before it are gone.
	_, got, _ := open(t, dir, Options{})
	if len(got) != 1 || got[0].Name != "x" {
		t.Fatalf("replayed %+v after checkpoint truncation", got)
	}
}

// TestMinSegmentSkipsCoveredSegments covers the crash window between a
// checkpoint's snapshot rename and its segment deletion: segments below
// the watermark must be skipped (and cleaned), never replayed, and a
// fresh log must never number new segments below the watermark.
func TestMinSegmentSkipsCoveredSegments(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := open(t, dir, Options{})
	if err := l.Append(sampleRecords()[0]); err != nil {
		t.Fatal(err)
	}
	seq, err := l.StartSegment()
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(Record{Op: OpDelete, Name: "x"}); err != nil {
		t.Fatal(err)
	}
	l.Close() // crash before DropBefore: the covered segment survives

	l2, got, _ := open(t, dir, Options{MinSegment: seq})
	if len(got) != 1 || got[0].Name != "x" {
		t.Fatalf("replayed %+v, want only the post-watermark record", got)
	}
	if remaining, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg")); len(remaining) != 1 {
		t.Fatalf("covered segment not cleaned: %v", remaining)
	}
	l2.Close()

	// Even with every segment gone, a new segment must clear the watermark.
	empty := t.TempDir()
	l3, _, _ := open(t, empty, Options{MinSegment: 7})
	if err := l3.Append(sampleRecords()[0]); err != nil {
		t.Fatal(err)
	}
	l3.Close()
	seg := lastSegment(t, empty)
	if s, ok := SeqFromName(filepath.Base(seg), DefaultPrefix); !ok || s < 7 {
		t.Fatalf("new segment %q numbered below the watermark", seg)
	}
	_, got, _ = open(t, empty, Options{MinSegment: 7})
	if len(got) != 1 {
		t.Fatalf("post-watermark record lost: %v", got)
	}
}

// lastSegment returns the newest segment file of dir.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no segments in %s", dir)
	}
	return matches[len(matches)-1]
}

func TestTornTailIsTruncated(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := open(t, dir, Options{})
	for _, r := range sampleRecords() {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	seg := lastSegment(t, dir)
	clean, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	for _, tear := range []struct {
		name string
		data []byte
	}{
		{"partial frame header", append(append([]byte{}, clean...), 0x07, 0x00)},
		{"partial payload", append(append([]byte{}, clean...), 0x40, 0, 0, 0, 1, 2, 3, 4, 9, 9)},
		{"garbage", append(append([]byte{}, clean...), bytes.Repeat([]byte{0xff}, 31)...)},
	} {
		t.Run(tear.name, func(t *testing.T) {
			if err := os.WriteFile(seg, tear.data, 0o644); err != nil {
				t.Fatal(err)
			}
			l, got, info := open(t, dir, Options{})
			l.Close()
			if !info.Truncated || info.DroppedBytes == 0 {
				t.Fatalf("info = %+v, want truncation", info)
			}
			if len(got) != len(sampleRecords()) {
				t.Fatalf("replayed %d records, want %d", len(got), len(sampleRecords()))
			}
			// The truncation is physical: a second replay is clean.
			l2, got2, info2 := open(t, dir, Options{})
			l2.Close()
			if info2.Truncated || len(got2) != len(got) {
				t.Fatalf("second replay info = %+v", info2)
			}
		})
	}
}

func TestBadCRCTruncatesRestOfLog(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := open(t, dir, Options{SegmentBytes: 64, Sync: SyncNever})
	for i := 0; i < 10; i++ {
		if err := l.Append(sampleRecords()[3]); err != nil { // small deletes
			t.Fatal(err)
		}
	}
	st := l.Stats()
	if st.Segments < 3 {
		t.Fatalf("want >= 3 segments, stats %+v", st)
	}
	l.Close()
	// Flip one payload byte in the FIRST segment: everything from that
	// record on — including whole later segments — must be dropped.
	matches, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	data, err := os.ReadFile(matches[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(segMagic)+frameHeaderLen] ^= 0xff // first payload byte of record 0
	if err := os.WriteFile(matches[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, got, info := open(t, dir, Options{})
	defer l2.Close()
	if !info.Truncated || len(got) != 0 {
		t.Fatalf("replayed %d records, info %+v", len(got), info)
	}
	if remaining, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg")); len(remaining) != 1 {
		t.Fatalf("later segments not deleted: %v", remaining)
	}
	// The log is usable again.
	if err := l2.Append(sampleRecords()[0]); err != nil {
		t.Fatal(err)
	}
}

func TestApplyErrorTruncates(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := open(t, dir, Options{})
	for _, r := range sampleRecords() {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	info, err := l2.Replay(func(r Record) error {
		n++
		if n == 3 {
			return errors.New("rejected")
		}
		return nil
	})
	l2.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !info.Truncated || info.Records != 2 {
		t.Fatalf("info = %+v, want 2 records then truncation", info)
	}
	_, got, info := open(t, dir, Options{})
	if info.Truncated || len(got) != 2 {
		t.Fatalf("after truncation replayed %d (info %+v)", len(got), info)
	}
}

func TestAppendBeforeReplayRejected(t *testing.T) {
	l, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(sampleRecords()[0]); !errors.Is(err, errNotReplayed) {
		t.Fatalf("append before replay: %v", err)
	}
}

func TestEncodeRejectsBadRecords(t *testing.T) {
	cases := []Record{
		{Op: 0, Name: "x"},
		{Op: OpPut, Name: ""},
		{Op: OpDelete, Name: string(bytes.Repeat([]byte{'a'}, maxNameBytes+1))},
	}
	for _, r := range cases {
		if _, err := encodeRecord(r); err == nil {
			t.Errorf("encodeRecord(%+v) succeeded", r)
		}
	}
}

func TestDecodeRejectsTrailingBytes(t *testing.T) {
	payload, err := encodeRecord(Record{Op: OpDelete, Name: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := decodeRecord(append(payload, 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
	if rec, err := decodeRecord(payload); err != nil || rec.Name != "x" {
		t.Fatalf("decodeRecord = %+v, %v", rec, err)
	}
}

// failFile fails every write after budget bytes, simulating a disk that
// dies mid-record (the full harness lives in internal/persist/crashtest).
type failFile struct {
	f        *os.File
	budget   *int64
	failSync bool
}

var errInjected = errors.New("injected write failure")

func (w *failFile) Write(p []byte) (int, error) {
	if *w.budget <= 0 {
		return 0, errInjected
	}
	if int64(len(p)) <= *w.budget {
		*w.budget -= int64(len(p))
		return w.f.Write(p)
	}
	n, _ := w.f.Write(p[:*w.budget])
	*w.budget = 0
	return n, errInjected
}
func (w *failFile) Sync() error {
	if w.failSync {
		return errInjected
	}
	return w.f.Sync()
}
func (w *failFile) Close() error { return w.f.Close() }

func TestFailedWriteRollsBackTornBytes(t *testing.T) {
	dir := t.TempDir()
	budget := int64(1 << 20)
	opts := Options{
		Sync: SyncNever,
		OpenFile: func(path string, flag int, perm os.FileMode) (File, error) {
			f, err := os.OpenFile(path, flag, perm)
			if err != nil {
				return nil, err
			}
			return &failFile{f: f, budget: &budget}, nil
		},
	}
	l, _, _ := open(t, dir, opts)
	if err := l.Append(sampleRecords()[0]); err != nil {
		t.Fatal(err)
	}
	// Allow exactly 5 more bytes: the next append tears mid-frame, errors,
	// and must be rolled back so the acknowledged prefix stays clean.
	budget = 5
	if err := l.Append(sampleRecords()[1]); !errors.Is(err, errInjected) {
		t.Fatalf("torn append returned %v", err)
	}
	budget = 0
	if err := l.Append(sampleRecords()[1]); !errors.Is(err, errInjected) {
		t.Fatalf("failed append returned %v", err)
	}
	l.Close()
	_, got, info := open(t, dir, Options{})
	if info.Truncated {
		t.Fatalf("rollback left torn bytes: %+v", info)
	}
	if len(got) != 1 || !reflect.DeepEqual(got[0], sampleRecords()[0]) {
		t.Fatalf("recovered %+v", got)
	}
}

// TestFailedSyncRollsBackWrittenRecord: when the frame is fully written
// but the fsync fails, the caller will NOT publish the mutation — so the
// record must not replay either, or a restart would apply a mutation the
// client was told failed.
func TestFailedSyncRollsBackWrittenRecord(t *testing.T) {
	dir := t.TempDir()
	budget := int64(1 << 20)
	ff := &failFile{budget: &budget}
	opts := Options{
		Sync: SyncAlways,
		OpenFile: func(path string, flag int, perm os.FileMode) (File, error) {
			f, err := os.OpenFile(path, flag, perm)
			if err != nil || !strings.HasSuffix(path, ".seg") {
				// Directory-fsync opens pass through untouched; this test
				// injects failures into the segment file only.
				return f, err
			}
			ff.f = f
			return ff, nil
		},
	}
	l, _, _ := open(t, dir, opts)
	if err := l.Append(sampleRecords()[0]); err != nil {
		t.Fatal(err)
	}
	ff.failSync = true
	if err := l.Append(sampleRecords()[1]); !errors.Is(err, errInjected) {
		t.Fatalf("append with failing sync returned %v", err)
	}
	ff.failSync = false
	// After a failed fsync the disk state is unknowable (the kernel may
	// have dropped the dirty pages), so the log refuses further appends
	// until a restart replays what actually survived.
	if err := l.Append(sampleRecords()[2]); !errors.Is(err, errBroken) {
		t.Fatalf("append after failed sync returned %v, want broken log", err)
	}
	l.Close()
	l2, got, info := open(t, dir, Options{})
	if info.Truncated {
		t.Fatalf("sync rollback left torn bytes: %+v", info)
	}
	if len(got) != 1 || !reflect.DeepEqual(got[0], sampleRecords()[0]) {
		t.Fatalf("recovered %+v, want only the acknowledged record", got)
	}
	// The reopened log works again.
	if err := l2.Append(sampleRecords()[2]); err != nil {
		t.Fatal(err)
	}
	l2.Close()
}
