package server

import (
	"net/http"
	"strings"
	"testing"

	"probtopk"
)

// TestFollowerReadOnly checks a follower-mode server rejects every client
// write with 403 naming the leader, while replicated applies and queries
// keep working.
func TestFollowerReadOnly(t *testing.T) {
	s := New(Config{FollowerOf: "leader.example:8081"})
	if !s.ReadOnly() {
		t.Fatalf("ReadOnly() = false with FollowerOf set")
	}

	// Client writes: refused, with the leader's address in header and body.
	for _, c := range []struct{ method, path, body string }{
		{"PUT", "/tables/s", soldierJSON},
		{"POST", "/tables/s/tuples", `{"tuples":[{"id":"X","score":1,"prob":0.5}]}`},
		{"DELETE", "/tables/s", ""},
	} {
		w := do(t, s, c.method, c.path, c.body)
		body := mustStatus(t, w, http.StatusForbidden)
		if got := w.Header().Get("X-Topk-Leader"); got != "leader.example:8081" {
			t.Fatalf("%s %s: X-Topk-Leader = %q", c.method, c.path, got)
		}
		if !strings.Contains(body, "leader.example:8081") {
			t.Fatalf("%s %s: body does not name the leader: %s", c.method, c.path, body)
		}
	}

	// The replication apply path bypasses the guard: install a table the
	// way the follower's stream does, then query it like any client.
	tab := probtopk.NewTable()
	tab.Add(probtopk.Tuple{ID: "T1", Score: 100, Prob: 0.9})
	tab.Add(probtopk.Tuple{ID: "T2", Score: 90, Prob: 0.8})
	if err := s.ApplyPut("s", tab.Tuples()); err != nil {
		t.Fatalf("ApplyPut: %v", err)
	}
	mustStatus(t, do(t, s, "GET", "/tables/s/topk?k=1", ""), http.StatusOK)

	if err := s.ApplyAppend("s", []probtopk.Tuple{{ID: "T3", Score: 80, Prob: 0.7}}); err != nil {
		t.Fatalf("ApplyAppend: %v", err)
	}
	body := mustStatus(t, do(t, s, "GET", "/tables/s", ""), http.StatusOK)
	if !strings.Contains(body, `"tuples":3`) {
		t.Fatalf("table info after ApplyAppend: %s", body)
	}
	if err := s.ApplyDelete("s"); err != nil {
		t.Fatalf("ApplyDelete: %v", err)
	}
	mustStatus(t, do(t, s, "GET", "/tables/s", ""), http.StatusNotFound)
	if err := s.ApplyDelete("s"); err == nil {
		t.Fatalf("ApplyDelete of a missing table succeeded")
	}
	if err := s.ApplyAppend("s", nil); err == nil {
		t.Fatalf("ApplyAppend to a missing table succeeded")
	}
}

// TestApplyAppendValidates checks a replicated append that breaks the
// table's invariants is refused (the follower treats it as divergence),
// leaving the published state untouched.
func TestApplyAppendValidates(t *testing.T) {
	s := New(Config{})
	tab := probtopk.NewTable()
	tab.Add(probtopk.Tuple{ID: "T1", Score: 100, Prob: 0.4, Group: "g"})
	if err := s.ApplyPut("s", tab.Tuples()); err != nil {
		t.Fatalf("ApplyPut: %v", err)
	}
	// Same ID again: uniqueness violation.
	if err := s.ApplyAppend("s", []probtopk.Tuple{{ID: "T1", Score: 1, Prob: 0.1}}); err == nil {
		t.Fatalf("ApplyAppend accepted a duplicate tuple ID")
	}
	// Group mass over 1: validation failure.
	if err := s.ApplyAppend("s", []probtopk.Tuple{{ID: "T2", Score: 2, Prob: 0.5, Group: "g"}}); err != nil {
		t.Fatalf("ApplyAppend of a valid tuple: %v", err)
	}
	if err := s.ApplyAppend("s", []probtopk.Tuple{{ID: "T3", Score: 3, Prob: 0.9, Group: "g"}}); err == nil {
		t.Fatalf("ApplyAppend accepted group mass > 1")
	}
	body := mustStatus(t, do(t, s, "GET", "/tables/s", ""), http.StatusOK)
	if !strings.Contains(body, `"tuples":2`) {
		t.Fatalf("failed appends leaked state: %s", body)
	}
}

// TestReplicationStatsHook checks the /debug/stats replication block is
// absent by default and rendered through the registered hook.
func TestReplicationStatsHook(t *testing.T) {
	s := New(Config{FollowerOf: "leader:9"})
	if st := getStats(t, s); st.Replication != nil {
		t.Fatalf("replication block present with no hook: %+v", st.Replication)
	}
	s.SetReplicationStats(func() *ReplicationJSON {
		return &ReplicationJSON{
			Role: "follower", Leader: "leader:9", Connected: true,
			Shards: []ReplicationShardJSON{{Shard: 0, AppliedRecords: 7, BehindBytes: 42}},
		}
	})
	st := getStats(t, s)
	if st.Replication == nil || st.Replication.Role != "follower" || !st.Replication.Connected {
		t.Fatalf("replication block = %+v", st.Replication)
	}
	if len(st.Replication.Shards) != 1 || st.Replication.Shards[0].BehindBytes != 42 {
		t.Fatalf("shard staleness = %+v", st.Replication.Shards)
	}
	s.SetReplicationStats(nil)
	if st := getStats(t, s); st.Replication != nil {
		t.Fatalf("replication block survived hook removal")
	}
}
