// Package anscache is the server's derived-answer cache: a bounded LRU from
// fully-resolved query descriptions to their encoded JSON answers.
//
// A derived answer (a top-k score distribution, a c-typical set, a baseline
// answer) is a pure function of the table contents and the resolved query
// parameters, so the cache key is (table name, snapshot identity, canonical
// query fingerprint). The snapshot identity is the process-unique,
// never-reused stamp every published table state already carries
// (probtopk.Snapshot.ID), which makes stale hits impossible by
// construction: every key minted for a superseded state is unreachable,
// regardless of how cache fills race with mutations. (Table.Version alone
// would not do — it counts Adds, so two different uploads of n tuples
// share version n.) InvalidateTable additionally drops a table's entries
// eagerly on mutation or deletion, so dead answers don't occupy LRU slots
// until they age out — it reclaims space; it is not load-bearing for
// correctness.
package anscache

import (
	"container/list"
	"sync"
)

// Key identifies one derived answer.
type Key struct {
	// Table is the registry name of the table.
	Table string
	// Snapshot is the identity (probtopk.Snapshot.ID) of the published
	// table state the answer was derived from; identities are
	// process-unique and never reused.
	Snapshot uint64
	// Query is the canonical fingerprint of the query kind and its fully
	// resolved parameters (sentinels already substituted), so that two
	// requests spelled differently but meaning the same computation share
	// an entry.
	Query string
}

// Stats is a snapshot of the cache counters.
type Stats struct {
	Hits, Misses, Evictions uint64
	// Invalidations counts entries dropped by InvalidateTable.
	Invalidations uint64
	Entries       int
}

type entry struct {
	key Key
	val []byte
}

// Cache is a bounded LRU of encoded answers, safe for concurrent use.
type Cache struct {
	capacity int

	mu      sync.Mutex
	byKey   map[Key]*list.Element // of *entry
	byTable map[string]map[Key]*list.Element
	lru     *list.List // front = most recently used

	hits, misses, evictions, invalidations uint64
}

// New returns a cache holding up to capacity answers. capacity <= 0 disables
// caching: Get always misses and Put is a no-op (misses are still counted,
// so a disabled cache yields meaningful cold-path stats).
func New(capacity int) *Cache {
	return &Cache{
		capacity: capacity,
		byKey:    make(map[Key]*list.Element),
		byTable:  make(map[string]map[Key]*list.Element),
		lru:      list.New(),
	}
}

// Get returns the cached answer for k, if present. The returned bytes are
// shared and must not be modified.
func (c *Cache) Get(k Key) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[k]
	if !ok {
		c.misses++
		return nil, false
	}
	c.lru.MoveToFront(el)
	c.hits++
	return el.Value.(*entry).val, true
}

// Put stores the answer for k, evicting the least recently used entries
// beyond the capacity. The cache takes ownership of val.
func (c *Cache) Put(k Key, val []byte) {
	if c.capacity <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[k]; ok {
		el.Value.(*entry).val = val
		c.lru.MoveToFront(el)
		return
	}
	el := c.lru.PushFront(&entry{key: k, val: val})
	c.byKey[k] = el
	tk := c.byTable[k.Table]
	if tk == nil {
		tk = make(map[Key]*list.Element)
		c.byTable[k.Table] = tk
	}
	tk[k] = el
	for c.lru.Len() > c.capacity {
		c.remove(c.lru.Back())
		c.evictions++
	}
}

// remove unlinks el from every index. Callers hold c.mu.
func (c *Cache) remove(el *list.Element) {
	k := el.Value.(*entry).key
	c.lru.Remove(el)
	delete(c.byKey, k)
	if tk := c.byTable[k.Table]; tk != nil {
		delete(tk, k)
		if len(tk) == 0 {
			delete(c.byTable, k.Table)
		}
	}
}

// InvalidateTable drops every cached answer derived from the named table,
// whatever the version. Called on mutation and deletion.
func (c *Cache) InvalidateTable(table string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, el := range c.byTable[table] {
		c.lru.Remove(el)
		delete(c.byKey, el.Value.(*entry).key)
		c.invalidations++
	}
	delete(c.byTable, table)
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:          c.hits,
		Misses:        c.misses,
		Evictions:     c.evictions,
		Invalidations: c.invalidations,
		Entries:       c.lru.Len(),
	}
}
