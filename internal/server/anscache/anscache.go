// Package anscache is the server's derived-answer cache: a bounded map from
// fully-resolved query descriptions to their encoded JSON answers.
//
// A derived answer (a top-k score distribution, a c-typical set, a baseline
// answer) is a pure function of the table contents and the resolved query
// parameters, so the cache key is (table name, snapshot identity, canonical
// query fingerprint). The snapshot identity is the process-unique,
// never-reused stamp every published table state already carries
// (probtopk.Snapshot.ID), which makes stale hits impossible by
// construction: every key minted for a superseded state is unreachable,
// regardless of how cache fills race with mutations. (Table.Version alone
// would not do — it counts Adds, so two different uploads of n tuples
// share version n.) InvalidateTable additionally drops a table's entries
// eagerly on mutation or deletion, so dead answers don't occupy cache
// slots until they age out — it reclaims space; it is not load-bearing for
// correctness.
//
// # Eviction policy
//
// Answers are wildly unequal: a warm hit costs ~12µs to serve while the
// cold dynamic programs behind them span 12µs to >100ms. Plain LRU treats
// a 163ms top-k distribution and a dozen trivial baseline answers as peers,
// so a burst of cheap distinct queries evicts exactly the entries worth
// keeping. The default policy is therefore GDSF (Greedy-Dual-Size-
// Frequency): each entry carries priority
//
//	H = L + frequency × cost / size
//
// where cost is the measured recompute latency, size the encoded answer
// bytes, and L a monotone "inflation" set to the priority of the last
// evicted entry. Eviction removes the minimum-H entry; hits bump frequency
// and re-inflate H. Cheap, large, rarely-hit answers cycle out first, and
// the inflation term ages entries so a once-hot answer cannot squat
// forever. NewLRU keeps the plain recency policy for comparison
// benchmarks.
package anscache

import (
	"container/heap"
	"container/list"
	"sync"
	"time"
)

// Key identifies one derived answer.
type Key struct {
	// Table is the registry name of the table.
	Table string
	// Snapshot is the identity (probtopk.Snapshot.ID) of the published
	// table state the answer was derived from; identities are
	// process-unique and never reused.
	Snapshot uint64
	// Query is the canonical fingerprint of the query kind and its fully
	// resolved parameters (sentinels already substituted), so that two
	// requests spelled differently but meaning the same computation share
	// an entry.
	Query string
}

// Stats is a snapshot of the cache counters.
type Stats struct {
	Hits, Misses, Evictions uint64
	// Invalidations counts entries dropped by InvalidateTable.
	Invalidations uint64
	Entries       int
	// SavedNanos sums the recorded recompute cost of every hit: the total
	// latency the cache spared its callers (the currency the cost-aware
	// policy maximizes).
	SavedNanos uint64
}

// entry is one cached answer with the bookkeeping both policies need.
type entry struct {
	key  Key
	val  []byte
	cost time.Duration

	// LRU policy position.
	el *list.Element
	// GDSF policy state: hit count, cached priority, heap index.
	freq uint64
	h    float64
	idx  int
}

// priority computes the GDSF H for an entry under inflation l.
func (e *entry) priority(l float64) float64 {
	size := len(e.val)
	if size <= 0 {
		size = 1
	}
	return l + float64(e.freq)*float64(e.cost)/float64(size)
}

// gdHeap is a min-heap over entry priority H; the root is the next
// eviction victim.
type gdHeap []*entry

func (h gdHeap) Len() int           { return len(h) }
func (h gdHeap) Less(i, j int) bool { return h[i].h < h[j].h }
func (h gdHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i]; h[i].idx = i; h[j].idx = j }
func (h *gdHeap) Push(x any)        { e := x.(*entry); e.idx = len(*h); *h = append(*h, e) }
func (h *gdHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	e.idx = -1
	return e
}

// Cache is a bounded cache of encoded answers, safe for concurrent use.
// New builds the cost-aware (GDSF) cache the server runs; NewLRU builds
// the plain recency baseline.
type Cache struct {
	capacity  int
	costAware bool

	mu      sync.Mutex
	byKey   map[Key]*entry
	byTable map[string]map[Key]*entry
	lru     *list.List // LRU policy: front = most recently used
	heap    gdHeap     // GDSF policy: min-H
	infl    float64    // GDSF inflation L

	hits, misses, evictions, invalidations, savedNanos uint64
}

// New returns a cost-aware (GDSF) cache holding up to capacity answers.
// capacity <= 0 disables caching: Get always misses and Put is a no-op
// (misses are still counted, so a disabled cache yields meaningful
// cold-path stats).
func New(capacity int) *Cache {
	c := newCache(capacity)
	c.costAware = true
	return c
}

// NewLRU returns a plain least-recently-used cache; it exists as the
// baseline the cost-aware policy is benchmarked against.
func NewLRU(capacity int) *Cache {
	return newCache(capacity)
}

func newCache(capacity int) *Cache {
	return &Cache{
		capacity: capacity,
		byKey:    make(map[Key]*entry),
		byTable:  make(map[string]map[Key]*entry),
		lru:      list.New(),
	}
}

// Get returns the cached answer for k, if present. The returned bytes are
// shared and must not be modified.
func (c *Cache) Get(k Key) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.byKey[k]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.savedNanos += uint64(e.cost)
	if c.costAware {
		e.freq++
		e.h = e.priority(c.infl)
		heap.Fix(&c.heap, e.idx)
	} else {
		c.lru.MoveToFront(e.el)
	}
	return e.val, true
}

// Put stores the answer for k along with its measured recompute cost,
// evicting the lowest-priority entries beyond the capacity (minimum GDSF H
// for the cost-aware cache, least recently used for the LRU baseline). The
// cache takes ownership of val.
func (c *Cache) Put(k Key, val []byte, cost time.Duration) {
	if c.capacity <= 0 {
		return
	}
	if cost < 0 {
		cost = 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.byKey[k]; ok {
		e.val = val
		e.cost = cost
		if c.costAware {
			e.h = e.priority(c.infl)
			heap.Fix(&c.heap, e.idx)
		} else {
			c.lru.MoveToFront(e.el)
		}
		return
	}
	e := &entry{key: k, val: val, cost: cost, freq: 1}
	if c.costAware {
		e.h = e.priority(c.infl)
		heap.Push(&c.heap, e)
	} else {
		e.el = c.lru.PushFront(e)
	}
	c.byKey[k] = e
	tk := c.byTable[k.Table]
	if tk == nil {
		tk = make(map[Key]*entry)
		c.byTable[k.Table] = tk
	}
	tk[k] = e
	for len(c.byKey) > c.capacity {
		c.evictOne()
		c.evictions++
	}
}

// evictOne removes the policy's victim: the heap root (minimum H, which
// then becomes the new inflation floor) or the LRU tail. Callers hold c.mu.
func (c *Cache) evictOne() {
	var victim *entry
	if c.costAware {
		victim = heap.Pop(&c.heap).(*entry)
		c.infl = victim.h
	} else {
		victim = c.lru.Back().Value.(*entry)
		c.lru.Remove(victim.el)
	}
	c.unlink(victim)
}

// unlink drops e from the key and table indexes (not from the policy
// structure). Callers hold c.mu.
func (c *Cache) unlink(e *entry) {
	delete(c.byKey, e.key)
	if tk := c.byTable[e.key.Table]; tk != nil {
		delete(tk, e.key)
		if len(tk) == 0 {
			delete(c.byTable, e.key.Table)
		}
	}
}

// InvalidateTable drops every cached answer derived from the named table,
// whatever the version. Called on mutation and deletion.
func (c *Cache) InvalidateTable(table string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, e := range c.byTable[table] {
		if c.costAware {
			heap.Remove(&c.heap, e.idx)
		} else {
			c.lru.Remove(e.el)
		}
		delete(c.byKey, e.key)
		c.invalidations++
	}
	delete(c.byTable, table)
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:          c.hits,
		Misses:        c.misses,
		Evictions:     c.evictions,
		Invalidations: c.invalidations,
		Entries:       len(c.byKey),
		SavedNanos:    c.savedNanos,
	}
}
