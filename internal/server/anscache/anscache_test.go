package anscache

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func key(table string, snapID uint64, q string) Key {
	return Key{Table: table, Snapshot: snapID, Query: q}
}

func TestHitMissAndSnapshotSeparation(t *testing.T) {
	c := New(8)
	k1 := key("t", 1, "topk?k=2")
	if _, ok := c.Get(k1); ok {
		t.Fatal("unexpected hit on empty cache")
	}
	c.Put(k1, []byte("a"), time.Millisecond)
	got, ok := c.Get(k1)
	if !ok || string(got) != "a" {
		t.Fatalf("Get = %q, %v", got, ok)
	}
	// Same query at a newer snapshot is a distinct entry.
	k2 := key("t", 2, "topk?k=2")
	if _, ok := c.Get(k2); ok {
		t.Fatal("a new snapshot identity must not hit the old answer")
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 2 || s.Entries != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.SavedNanos != uint64(time.Millisecond) {
		t.Fatalf("saved = %d, want 1ms of spared recompute", s.SavedNanos)
	}
}

func TestLRUEviction(t *testing.T) {
	c := NewLRU(2)
	c.Put(key("t", 1, "a"), []byte("a"), 0)
	c.Put(key("t", 1, "b"), []byte("b"), 0)
	c.Get(key("t", 1, "a")) // refresh a; b is now LRU
	c.Put(key("t", 1, "c"), []byte("c"), 0)
	if _, ok := c.Get(key("t", 1, "b")); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := c.Get(key("t", 1, "a")); !ok {
		t.Fatal("a should have survived")
	}
	if s := c.Stats(); s.Evictions != 1 || s.Entries != 2 {
		t.Fatalf("stats = %+v", s)
	}
}

// The cost-aware policy keeps the expensive answer when cheap distinct
// queries flood past capacity — the exact trace where plain LRU evicts it.
func TestCostAwareKeepsExpensiveAnswer(t *testing.T) {
	const capacity = 4
	expensive := key("t", 1, "hard")
	trace := func(c *Cache) bool {
		c.Put(expensive, []byte("deep"), 150*time.Millisecond)
		for i := 0; i < 3*capacity; i++ {
			c.Put(key("t", 1, fmt.Sprintf("cheap%d", i)), []byte("shallow-but-long-answer"), 12*time.Microsecond)
		}
		_, ok := c.Get(expensive)
		return ok
	}
	if trace(NewLRU(capacity)) {
		t.Fatal("LRU kept the expensive answer through a cheap flood; baseline assumption broken")
	}
	if !trace(New(capacity)) {
		t.Fatal("cost-aware cache evicted the expensive answer for cheap fill")
	}
}

// Frequency matters too: among equal-cost entries, the repeatedly-hit one
// outlives the never-hit ones.
func TestCostAwareFrequency(t *testing.T) {
	c := New(2)
	hot := key("t", 1, "hot")
	c.Put(hot, []byte("x"), time.Millisecond)
	c.Put(key("t", 1, "cold"), []byte("x"), time.Millisecond)
	for i := 0; i < 5; i++ {
		c.Get(hot)
	}
	for i := 0; i < 4; i++ {
		c.Put(key("t", 1, fmt.Sprintf("new%d", i)), []byte("x"), time.Millisecond)
	}
	if _, ok := c.Get(hot); !ok {
		t.Fatal("frequently-hit entry evicted before never-hit peers")
	}
}

func TestInvalidateTable(t *testing.T) {
	for name, c := range map[string]*Cache{"gdsf": New(8), "lru": NewLRU(8)} {
		c.Put(key("x", 1, "a"), []byte("a"), 0)
		c.Put(key("x", 2, "a"), []byte("a2"), 0)
		c.Put(key("y", 1, "a"), []byte("ya"), 0)
		c.InvalidateTable("x")
		if _, ok := c.Get(key("x", 1, "a")); ok {
			t.Fatalf("%s: x@1 should be gone", name)
		}
		if _, ok := c.Get(key("x", 2, "a")); ok {
			t.Fatalf("%s: x@2 should be gone", name)
		}
		if _, ok := c.Get(key("y", 1, "a")); !ok {
			t.Fatalf("%s: y should survive", name)
		}
		s := c.Stats()
		if s.Invalidations != 2 || s.Entries != 1 {
			t.Fatalf("%s: stats = %+v", name, s)
		}
		// Invalidating an absent table is a no-op.
		c.InvalidateTable("zzz")
	}
}

func TestPutReplaces(t *testing.T) {
	for name, c := range map[string]*Cache{"gdsf": New(2), "lru": NewLRU(2)} {
		k := key("t", 1, "a")
		c.Put(k, []byte("old"), time.Second)
		c.Put(k, []byte("new"), time.Millisecond)
		got, ok := c.Get(k)
		if !ok || string(got) != "new" {
			t.Fatalf("%s: Get = %q, %v", name, got, ok)
		}
		if s := c.Stats(); s.Entries != 1 {
			t.Fatalf("%s: entries = %d", name, s.Entries)
		}
		// The replacement's cost is what a hit saves now.
		if s := c.Stats(); s.SavedNanos != uint64(time.Millisecond) {
			t.Fatalf("%s: saved = %d", name, s.SavedNanos)
		}
	}
}

func TestDisabled(t *testing.T) {
	c := New(0)
	c.Put(key("t", 1, "a"), []byte("a"), time.Second)
	if _, ok := c.Get(key("t", 1, "a")); ok {
		t.Fatal("disabled cache must not hit")
	}
	if s := c.Stats(); s.Misses != 1 || s.Entries != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestConcurrent(t *testing.T) {
	for _, c := range []*Cache{New(16), NewLRU(16)} {
		var wg sync.WaitGroup
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < 200; i++ {
					k := key(fmt.Sprintf("t%d", i%4), uint64(i%3), "q")
					switch i % 3 {
					case 0:
						c.Put(k, []byte{byte(w)}, time.Duration(i)*time.Microsecond)
					case 1:
						c.Get(k)
					default:
						c.InvalidateTable(k.Table)
					}
				}
			}(w)
		}
		wg.Wait()
		c.Stats()
	}
}
