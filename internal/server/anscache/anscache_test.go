package anscache

import (
	"fmt"
	"sync"
	"testing"
)

func key(table string, snapID uint64, q string) Key {
	return Key{Table: table, Snapshot: snapID, Query: q}
}

func TestHitMissAndSnapshotSeparation(t *testing.T) {
	c := New(8)
	k1 := key("t", 1, "topk?k=2")
	if _, ok := c.Get(k1); ok {
		t.Fatal("unexpected hit on empty cache")
	}
	c.Put(k1, []byte("a"))
	got, ok := c.Get(k1)
	if !ok || string(got) != "a" {
		t.Fatalf("Get = %q, %v", got, ok)
	}
	// Same query at a newer snapshot is a distinct entry.
	k2 := key("t", 2, "topk?k=2")
	if _, ok := c.Get(k2); ok {
		t.Fatal("a new snapshot identity must not hit the old answer")
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 2 || s.Entries != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(2)
	c.Put(key("t", 1, "a"), []byte("a"))
	c.Put(key("t", 1, "b"), []byte("b"))
	c.Get(key("t", 1, "a")) // refresh a; b is now LRU
	c.Put(key("t", 1, "c"), []byte("c"))
	if _, ok := c.Get(key("t", 1, "b")); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := c.Get(key("t", 1, "a")); !ok {
		t.Fatal("a should have survived")
	}
	if s := c.Stats(); s.Evictions != 1 || s.Entries != 2 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestInvalidateTable(t *testing.T) {
	c := New(8)
	c.Put(key("x", 1, "a"), []byte("a"))
	c.Put(key("x", 2, "a"), []byte("a2"))
	c.Put(key("y", 1, "a"), []byte("ya"))
	c.InvalidateTable("x")
	if _, ok := c.Get(key("x", 1, "a")); ok {
		t.Fatal("x@1 should be gone")
	}
	if _, ok := c.Get(key("x", 2, "a")); ok {
		t.Fatal("x@2 should be gone")
	}
	if _, ok := c.Get(key("y", 1, "a")); !ok {
		t.Fatal("y should survive")
	}
	s := c.Stats()
	if s.Invalidations != 2 || s.Entries != 1 {
		t.Fatalf("stats = %+v", s)
	}
	// Invalidating an absent table is a no-op.
	c.InvalidateTable("zzz")
}

func TestPutReplaces(t *testing.T) {
	c := New(2)
	k := key("t", 1, "a")
	c.Put(k, []byte("old"))
	c.Put(k, []byte("new"))
	got, ok := c.Get(k)
	if !ok || string(got) != "new" {
		t.Fatalf("Get = %q, %v", got, ok)
	}
	if s := c.Stats(); s.Entries != 1 {
		t.Fatalf("entries = %d", s.Entries)
	}
}

func TestDisabled(t *testing.T) {
	c := New(0)
	c.Put(key("t", 1, "a"), []byte("a"))
	if _, ok := c.Get(key("t", 1, "a")); ok {
		t.Fatal("disabled cache must not hit")
	}
	if s := c.Stats(); s.Misses != 1 || s.Entries != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestConcurrent(t *testing.T) {
	c := New(16)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := key(fmt.Sprintf("t%d", i%4), uint64(i%3), "q")
				switch i % 3 {
				case 0:
					c.Put(k, []byte{byte(w)})
				case 1:
					c.Get(k)
				default:
					c.InvalidateTable(k.Table)
				}
			}
		}(w)
	}
	wg.Wait()
	c.Stats()
}
