package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/url"
	"strconv"
	"strings"

	"probtopk"
)

// maxBatchQueries bounds one batch request.
const maxBatchQueries = 256

// TupleJSON is the wire form of one uncertain tuple.
type TupleJSON struct {
	ID    string  `json:"id"`
	Score float64 `json:"score"`
	Prob  float64 `json:"prob"`
	Group string  `json:"group,omitempty"`
}

// TableRequest is the JSON body of a table upload or append.
type TableRequest struct {
	Tuples []TupleJSON `json:"tuples"`
}

// TableInfo describes one hosted table.
type TableInfo struct {
	Name   string `json:"name"`
	Tuples int    `json:"tuples"`
	// Version counts the table's mutations (Adds); it orders the states of
	// one table but is reusable across replace and delete/recreate.
	Version uint64 `json:"version"`
	// Snapshot is the process-unique identity of the published state — the
	// stamp every derived answer is keyed by. It changes on every create,
	// replace and append, and is never reused.
	Snapshot uint64 `json:"snapshot"`
}

// TablesResponse is the body of GET /tables.
type TablesResponse struct {
	Tables []TableInfo `json:"tables"`
}

// BatchQueryJSON is one member of a batched query.
type BatchQueryJSON struct {
	K int `json:"k"`
	// Threshold follows the same wire sentinel as QueryRequest.Threshold.
	Threshold float64 `json:"threshold,omitempty"`
	Exact     bool    `json:"exact,omitempty"`
}

// QueryRequest is the decoded form of a query, from a JSON body (POST) or
// URL parameters (GET). Fields that don't apply to the queried endpoint must
// be left zero; the server rejects, say, a batch list on a typical query.
//
// Threshold carries the library's wire sentinel: 0 (or omitted) means the
// paper's 0.001 default, a negative value — or Exact — means the exact,
// unthresholded computation.
type QueryRequest struct {
	K                int              `json:"k"`
	C                int              `json:"c,omitempty"`
	Threshold        float64          `json:"threshold,omitempty"`
	Exact            bool             `json:"exact,omitempty"`
	Algorithm        string           `json:"algorithm,omitempty"`
	MaxLines         int              `json:"maxLines,omitempty"`
	WeightedCoalesce bool             `json:"weightedCoalesce,omitempty"`
	Normalize        bool             `json:"normalize,omitempty"`
	P                float64          `json:"p,omitempty"` // PT-k probability threshold
	Queries          []BatchQueryJSON `json:"queries,omitempty"`
}

// decodeQueryJSON parses a JSON query body. Unknown fields and trailing
// garbage are errors, so typos ("topk" for "k") fail loudly instead of
// silently querying with defaults.
func decodeQueryJSON(data []byte) (*QueryRequest, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	q := &QueryRequest{}
	if err := dec.Decode(q); err != nil {
		return nil, fmt.Errorf("bad query JSON: %w", err)
	}
	if err := dec.Decode(&struct{}{}); err != io.EOF {
		return nil, errors.New("bad query JSON: trailing data after the query object")
	}
	return q, nil
}

// decodeQueryParams parses a GET query string into the same request shape.
// Batch queries have no parameter form; use POST.
func decodeQueryParams(vals url.Values) (*QueryRequest, error) {
	q := &QueryRequest{}
	for key, vs := range vals {
		v := vs[len(vs)-1]
		var err error
		switch key {
		case "k":
			q.K, err = strconv.Atoi(v)
		case "c":
			q.C, err = strconv.Atoi(v)
		case "threshold":
			q.Threshold, err = strconv.ParseFloat(v, 64)
		case "exact":
			q.Exact, err = strconv.ParseBool(v)
		case "algorithm":
			q.Algorithm = v
		case "maxLines":
			q.MaxLines, err = strconv.Atoi(v)
		case "weightedCoalesce":
			q.WeightedCoalesce, err = strconv.ParseBool(v)
		case "normalize":
			q.Normalize, err = strconv.ParseBool(v)
		case "p":
			q.P, err = strconv.ParseFloat(v, 64)
		default:
			return nil, fmt.Errorf("unknown query parameter %q", key)
		}
		if err != nil {
			return nil, fmt.Errorf("bad query parameter %s=%q", key, v)
		}
	}
	return q, nil
}

// queryKind names the family of query an endpoint serves; it selects which
// request fields apply and prefixes the cache fingerprint.
type queryKind string

const (
	kindTopK     queryKind = "topk"
	kindBatch    queryKind = "batch"
	kindTypical  queryKind = "typical"
	kindBaseline queryKind = "baseline"
)

// baselineKinds are the §5 comparison semantics served under
// /tables/{name}/baseline/{semantic}.
var baselineKinds = map[string]bool{
	"utopk":        true,
	"ukranks":      true,
	"ptk":          true,
	"globaltopk":   true,
	"intopk":       true,
	"expectedrank": true,
}

// resolvedQuery is a query with every wire sentinel substituted, ready to
// execute and to fingerprint. threshold == 0 and maxLines == 0 here mean
// exact / unlimited (the resolution of the public API's sentinels), never
// "defaulted".
type resolvedQuery struct {
	kind      queryKind
	baseline  string // set when kind is a baseline query
	k, c      int
	algorithm probtopk.Algorithm
	threshold float64
	maxLines  int
	weighted  bool
	normalize bool
	p         float64
	batch     []probtopk.BatchQuery
}

// resolveThreshold maps the wire sentinel to the resolved value: negative or
// exact → 0 (exact), 0 → the paper's 0.001 default, positive → itself.
func resolveThreshold(t float64, exact bool) (float64, error) {
	switch {
	case exact && t > 0:
		return 0, fmt.Errorf("exact conflicts with threshold %v: exact requests the unthresholded computation", t)
	case exact, t < 0:
		return 0, nil
	case t == 0:
		return 0.001, nil
	default:
		return t, nil
	}
}

// resolveAlgorithm maps the wire name to the Algorithm constant.
func resolveAlgorithm(name string) (probtopk.Algorithm, error) {
	switch name {
	case "", "main":
		return probtopk.AlgorithmMain, nil
	case "state-expansion":
		return probtopk.AlgorithmStateExpansion, nil
	case "k-combo":
		return probtopk.AlgorithmKCombo, nil
	default:
		return 0, fmt.Errorf("unknown algorithm %q (want main, state-expansion or k-combo)", name)
	}
}

// resolve validates q against the endpoint kind and substitutes every
// sentinel. kind is kindTopK/kindBatch/kindTypical; baselines pass the
// semantic name instead.
func (q *QueryRequest) resolve(kind queryKind, baseline string) (*resolvedQuery, error) {
	r := &resolvedQuery{kind: kind, baseline: baseline, k: q.K, c: q.C,
		weighted: q.WeightedCoalesce, normalize: q.Normalize, p: q.P}
	// Batch requests carry k per member; everywhere else k is required.
	if kind != kindBatch && q.K < 1 {
		return nil, fmt.Errorf("k must be ≥ 1, got %d", q.K)
	}
	var err error
	if r.algorithm, err = resolveAlgorithm(q.Algorithm); err != nil {
		return nil, err
	}
	if r.threshold, err = resolveThreshold(q.Threshold, q.Exact); err != nil {
		return nil, err
	}
	switch {
	case q.Exact && q.MaxLines > 0:
		return nil, fmt.Errorf("exact conflicts with maxLines %d: exact lifts the line cap", q.MaxLines)
	case q.Exact, q.MaxLines < 0:
		r.maxLines = 0
	case q.MaxLines == 0:
		r.maxLines = probtopk.DefaultMaxLines
	default:
		r.maxLines = q.MaxLines
	}
	if kind != kindTypical && q.C != 0 {
		return nil, fmt.Errorf("c applies only to typical queries")
	}
	if kind != kindBatch && len(q.Queries) != 0 {
		return nil, fmt.Errorf("queries applies only to batch queries")
	}
	if baseline != "ptk" && q.P != 0 {
		return nil, fmt.Errorf("p applies only to the ptk baseline")
	}
	switch kind {
	case kindTypical:
		if q.C < 1 {
			return nil, fmt.Errorf("c must be ≥ 1, got %d", q.C)
		}
	case kindBatch:
		if r.algorithm != probtopk.AlgorithmMain {
			return nil, fmt.Errorf("batch queries support only the main algorithm")
		}
		if q.K != 0 {
			return nil, fmt.Errorf("batch requests set k per query, not at the top level")
		}
		if q.Threshold != 0 || q.Exact {
			return nil, fmt.Errorf("batch requests set threshold/exact per query, not at the top level")
		}
		if len(q.Queries) == 0 {
			return nil, fmt.Errorf("batch request has no queries")
		}
		if len(q.Queries) > maxBatchQueries {
			return nil, fmt.Errorf("batch has %d queries, max %d", len(q.Queries), maxBatchQueries)
		}
		r.batch = make([]probtopk.BatchQuery, len(q.Queries))
		for i, bq := range q.Queries {
			if bq.K < 1 {
				return nil, fmt.Errorf("batch query %d: k must be ≥ 1, got %d", i, bq.K)
			}
			thr, err := resolveThreshold(bq.Threshold, bq.Exact)
			if err != nil {
				return nil, fmt.Errorf("batch query %d: %v", i, err)
			}
			if thr == 0 {
				// The public BatchQuery sentinel: negative requests the
				// exact computation, 0 would mean the 0.001 default again.
				thr = -1
			}
			r.batch[i] = probtopk.BatchQuery{K: bq.K, Threshold: thr}
		}
	}
	if baseline != "" {
		if baseline == "ptk" {
			if !(q.P > 0 && q.P <= 1) {
				return nil, fmt.Errorf("ptk requires p in (0, 1], got %v", q.P)
			}
		}
		// Baselines fix their own computation; distribution knobs don't
		// apply.
		if q.Algorithm != "" || q.Threshold != 0 || q.Exact || q.MaxLines != 0 ||
			q.WeightedCoalesce || q.Normalize {
			return nil, fmt.Errorf("baseline queries accept only k (and p for ptk)")
		}
	}
	return r, nil
}

// options builds the public Options equivalent of the resolved query. The
// resolved values map onto the public sentinels without ambiguity: exact
// threshold (0) becomes the negative sentinel, unlimited lines (0) becomes
// the negative sentinel.
func (r *resolvedQuery) options() *probtopk.Options {
	o := &probtopk.Options{
		Algorithm:        r.algorithm,
		WeightedCoalesce: r.weighted,
		Normalize:        r.normalize,
	}
	if r.threshold == 0 {
		o.Threshold = -1
	} else {
		o.Threshold = r.threshold
	}
	if r.maxLines == 0 {
		o.MaxLines = -1
	} else {
		o.MaxLines = r.maxLines
	}
	return o
}

// fingerprint renders the resolved query canonically for the answer-cache
// key. Two requests spelled differently but resolving identically (omitted
// threshold vs explicit 0.001, exact vs threshold -1) share a fingerprint.
func (r *resolvedQuery) fingerprint() string {
	var b strings.Builder
	if r.baseline != "" {
		fmt.Fprintf(&b, "baseline/%s?k=%d", r.baseline, r.k)
		if r.baseline == "ptk" {
			fmt.Fprintf(&b, "&p=%g", r.p)
		}
		return b.String()
	}
	fmt.Fprintf(&b, "%s?k=%d&alg=%d&thr=%g&lines=%d&w=%t&norm=%t",
		r.kind, r.k, r.algorithm, r.threshold, r.maxLines, r.weighted, r.normalize)
	if r.kind == kindTypical {
		fmt.Fprintf(&b, "&c=%d", r.c)
	}
	for _, q := range r.batch {
		fmt.Fprintf(&b, "&q=%d:%g", q.K, q.Threshold)
	}
	return b.String()
}

// LineJSON is the wire form of one distribution line.
type LineJSON struct {
	Score      float64  `json:"score"`
	Prob       float64  `json:"prob"`
	Vector     []string `json:"vector,omitempty"`
	VectorProb float64  `json:"vectorProb,omitempty"`
}

// DistStatsJSON summarises a non-empty distribution.
type DistStatsJSON struct {
	Mean   float64 `json:"mean"`
	StdDev float64 `json:"stdDev"`
	Median float64 `json:"median"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
}

// DistributionResponse is the body of a top-k distribution answer. TotalMass
// is Pr(a top-k vector exists); an empty Lines with TotalMass 0 means no k
// tuples can co-exist (k larger than any possible world).
type DistributionResponse struct {
	K         int            `json:"k"`
	ScanDepth int            `json:"scanDepth"`
	TotalMass float64        `json:"totalMass"`
	Lines     []LineJSON     `json:"lines"`
	Stats     *DistStatsJSON `json:"stats,omitempty"`
}

// BatchResponse is the body of a batched distribution answer, indexed like
// the request's queries.
type BatchResponse struct {
	Results []DistributionResponse `json:"results"`
}

// TypicalResponse is the body of a c-typical answer: the c chosen lines, the
// achieved expected distance (the Definition-1 objective), and the §4
// vector-spread summary.
type TypicalResponse struct {
	K          int        `json:"k"`
	C          int        `json:"c"`
	Cost       float64    `json:"cost"`
	Lines      []LineJSON `json:"lines"`
	SpreadMean float64    `json:"spreadMean"`
	SpreadMax  int        `json:"spreadMax"`
}

// RankedTupleJSON is one U-kRanks row.
type RankedTupleJSON struct {
	Rank  int     `json:"rank"`
	ID    string  `json:"id"`
	Score float64 `json:"score"`
	Prob  float64 `json:"prob"`
}

// TupleProbJSON is one tuple with its in-top-k probability.
type TupleProbJSON struct {
	ID     string  `json:"id"`
	Score  float64 `json:"score"`
	Prob   float64 `json:"prob"`
	InTopK float64 `json:"inTopK"`
}

// ExpectedRankJSON is one expected-rank row.
type ExpectedRankJSON struct {
	ID    string  `json:"id"`
	Score float64 `json:"score"`
	Prob  float64 `json:"prob"`
	Rank  float64 `json:"rank"`
}

// BaselineResponse is the body of a baseline answer; exactly one field
// besides Semantic and K is set, matching the semantic.
type BaselineResponse struct {
	Semantic string             `json:"semantic"`
	K        int                `json:"k"`
	P        float64            `json:"p,omitempty"`
	Line     *LineJSON          `json:"line,omitempty"`
	Ranks    []RankedTupleJSON  `json:"ranks,omitempty"`
	Tuples   []TupleProbJSON    `json:"tuples,omitempty"`
	Expected []ExpectedRankJSON `json:"expected,omitempty"`
}

// ErrorResponse is the uniform error body.
type ErrorResponse struct {
	Error string `json:"error"`
}

// CacheStatsJSON mirrors a cache's counters on /debug/stats.
type CacheStatsJSON struct {
	Hits          uint64 `json:"hits"`
	Misses        uint64 `json:"misses"`
	Evictions     uint64 `json:"evictions"`
	Invalidations uint64 `json:"invalidations,omitempty"`
	Entries       int    `json:"entries"`
	// SavedNanos sums the recorded recompute cost of every hit: the total
	// latency the cache spared its callers (answer cache only).
	SavedNanos uint64 `json:"savedNs,omitempty"`
}

// FairnessLevelJSON is one SFB level's occupancy on /debug/stats.
type FairnessLevelJSON struct {
	Level int `json:"level"`
	// HotBuckets counts buckets holding a nonzero drop probability; MaxP is
	// the largest probability in the level.
	HotBuckets int     `json:"hotBuckets"`
	MaxP       float64 `json:"maxP"`
	// Sheds sums the level's per-bucket shed attributions.
	Sheds uint64 `json:"sheds"`
}

// FairnessJSON mirrors the SFB throttler's counters on /debug/stats;
// present only when the server runs with fairness enabled (topkd
// -fairness).
type FairnessJSON struct {
	// Decisions counts admission decisions; Sheds the requests shed, split
	// into ProbSheds (SFB drop at the door) and QueueSheds (cold-query
	// compute capacity exhausted — the genuine-shortage events that raise
	// drop probabilities).
	Decisions  uint64 `json:"decisions"`
	Sheds      uint64 `json:"sheds"`
	ProbSheds  uint64 `json:"probSheds"`
	QueueSheds uint64 `json:"queueSheds"`
	// Rotations counts level re-seedings (collision healing).
	Rotations uint64 `json:"rotations"`
	// ComputeInFlight / ComputeWaiters describe the cold-query gate at
	// snapshot time.
	ComputeInFlight int                 `json:"computeInFlight"`
	ComputeWaiters  int                 `json:"computeWaiters"`
	Levels          []FairnessLevelJSON `json:"levels"`
	// TopShedders maps client ids to their shed counts, bounded to the
	// first distinct shedding clients; SheddersOverflow counts sheds by
	// clients beyond the bound.
	TopShedders      map[string]uint64 `json:"topShedders,omitempty"`
	SheddersOverflow uint64            `json:"sheddersOverflow,omitempty"`
}

// LatencyJSON is one latency counter: completed requests and their summed
// wall-clock time.
type LatencyJSON struct {
	Count   uint64 `json:"count"`
	TotalNs uint64 `json:"totalNs"`
}

// DurabilityShardJSON is one WAL shard's slice of the durability counters.
type DurabilityShardJSON struct {
	Shard                  int    `json:"shard"`
	WALRecords             uint64 `json:"walRecords"`
	WALBytes               uint64 `json:"walBytes"`
	WALSyncs               uint64 `json:"walSyncs"`
	WALSegments            int    `json:"walSegments"`
	WALBatches             uint64 `json:"walBatches,omitempty"`
	WALFsyncsSaved         uint64 `json:"walFsyncsSaved,omitempty"`
	RecordsSinceCheckpoint int    `json:"recordsSinceCheckpoint"`
}

// DurabilityJSON mirrors the WAL and checkpoint counters on /debug/stats;
// present only when the server runs with a durability backend. The
// top-level WAL figures aggregate across shards; Shards breaks them down.
type DurabilityJSON struct {
	WALRecords  uint64 `json:"walRecords"`
	WALBytes    uint64 `json:"walBytes"`
	WALSyncs    uint64 `json:"walSyncs"`
	WALSegments int    `json:"walSegments"`
	// WALBatches / WALFsyncsSaved / WALBatchSizes describe group commits
	// under -fsync=batch: completed batches, the fsyncs batching avoided
	// versus one-per-record, and a power-of-two batch-size histogram
	// (bucket i counts batches of 2^i .. 2^(i+1)-1 records).
	WALBatches             uint64                `json:"walBatches,omitempty"`
	WALFsyncsSaved         uint64                `json:"walFsyncsSaved,omitempty"`
	WALBatchSizes          []uint64              `json:"walBatchSizes,omitempty"`
	WALDirSyncErrors       uint64                `json:"walDirSyncErrors,omitempty"`
	RecordsSinceCheckpoint int                   `json:"recordsSinceCheckpoint"`
	Checkpoints            uint64                `json:"checkpoints"`
	CheckpointErrors       uint64                `json:"checkpointErrors"`
	LastCheckpointNs       int64                 `json:"lastCheckpointNs"`
	ReplayedRecords        int                   `json:"replayedRecords"`
	ReplayTruncated        bool                  `json:"replayTruncated,omitempty"`
	Shards                 []DurabilityShardJSON `json:"shards,omitempty"`
}

// DynamicIndexJSON mirrors the process-wide dynamic-index counters on
// /debug/stats: how table mutations and snapshot preparations resolved
// against the per-table uncertain.Index structures.
type DynamicIndexJSON struct {
	// Mutations counts O(log n) index mutations (tuple inserts/deletes).
	Mutations uint64 `json:"mutations"`
	// ViewPrepares counts engine preparations served by materializing a
	// snapshot's attached index view instead of sorting from scratch.
	ViewPrepares uint64 `json:"viewPrepares"`
	// MemoHits counts materializations answered from an index's memo with no
	// rebuild at all.
	MemoHits uint64 `json:"memoHits"`
	// SuffixRebuilds / FullRebuilds split owner materializations by whether
	// the unchanged rank prefix of a previous prepared form was reused.
	SuffixRebuilds uint64 `json:"suffixRebuilds"`
	FullRebuilds   uint64 `json:"fullRebuilds"`
	// ViewRebuilds counts materializations performed by frozen views
	// (typically the engine preparing a just-mutated table's snapshot).
	ViewRebuilds uint64 `json:"viewRebuilds"`
}

// ReplicationShardJSON is one leader shard's staleness as seen by a
// follower: how far its applied position trails the leader's committed
// position, in records applied, bytes, and age.
type ReplicationShardJSON struct {
	Shard int `json:"shard"`
	// AppliedRecords counts replicated records applied to this shard since
	// the follower process started.
	AppliedRecords uint64 `json:"appliedRecords"`
	// AppliedSeg/AppliedOff is the follower's applied WAL position;
	// LeaderSeg/LeaderOff is the leader's committed position from its most
	// recent heartbeat.
	AppliedSeg uint64 `json:"appliedSeg"`
	AppliedOff int64  `json:"appliedOff"`
	LeaderSeg  uint64 `json:"leaderSeg"`
	LeaderOff  int64  `json:"leaderOff"`
	// BehindBytes is how many committed WAL bytes the follower has not yet
	// applied: 0 when caught up, -1 when the gap spans a segment rotation
	// (at least one full segment behind; the exact byte count is unknown).
	BehindBytes int64 `json:"behindBytes"`
	// AgeSeconds is the time since this shard last applied a record (0.0
	// when it never has).
	AgeSeconds float64 `json:"ageSeconds"`
}

// ReplicationJSON mirrors the replication state on /debug/stats; present
// only when the process replicates (topkd -follow or -repl-addr).
type ReplicationJSON struct {
	// Role is "follower" or "leader".
	Role string `json:"role"`
	// Leader is the leader's replication address (follower role).
	Leader string `json:"leader,omitempty"`
	// Connected reports a live replication session (follower role).
	Connected bool `json:"connected,omitempty"`
	// Followers counts currently connected followers (leader role).
	Followers int `json:"followers,omitempty"`
	// Resets counts full shard resyncs; Reconnects counts re-established
	// sessions after the first.
	Resets     uint64 `json:"resets,omitempty"`
	Reconnects uint64 `json:"reconnects,omitempty"`
	// AppliedRecords (follower) / FramesSent+BytesSent (leader) count
	// replicated records.
	AppliedRecords uint64 `json:"appliedRecords,omitempty"`
	ApplyErrors    uint64 `json:"applyErrors,omitempty"`
	FramesSent     uint64 `json:"framesSent,omitempty"`
	BytesSent      uint64 `json:"bytesSent,omitempty"`
	// Shards breaks the follower's staleness down per leader WAL shard.
	Shards []ReplicationShardJSON `json:"shards,omitempty"`
}

// StatsResponse is the body of GET /debug/stats.
type StatsResponse struct {
	Tables int `json:"tables"`
	// Shards is the serving stack's shard count (registry, mutation
	// mutexes, WAL shards, prepared-cache partitions).
	Shards int `json:"shards"`
	// AnswerCache counts derived-answer (encoded JSON) cache traffic.
	AnswerCache CacheStatsJSON `json:"answerCache"`
	// PreparedCache counts the engine's prepared-table cache traffic.
	PreparedCache CacheStatsJSON `json:"preparedCache"`
	// PreparedCachePartitions is the per-partition entry count of the
	// prepared cache.
	PreparedCachePartitions []int `json:"preparedCachePartitions,omitempty"`
	// EngineQueries aggregates the DP computations the engine ran.
	EngineQueries LatencyJSON `json:"engineQueries"`
	// DynamicIndex surfaces the dynamic prepared-index maintenance counters.
	DynamicIndex DynamicIndexJSON `json:"dynamicIndex"`
	// CachedQueries / ComputedQueries / CoalescedQueries split served query
	// requests by whether the derived-answer cache answered them, the
	// engine computed them, or they shared another caller's in-flight
	// computation (request coalescing).
	CachedQueries    LatencyJSON `json:"cachedQueries"`
	ComputedQueries  LatencyJSON `json:"computedQueries"`
	CoalescedQueries LatencyJSON `json:"coalescedQueries"`
	// QueryErrors counts query requests that ended in an error response.
	QueryErrors   uint64  `json:"queryErrors"`
	UptimeSeconds float64 `json:"uptimeSeconds"`
	// Durability carries the WAL/checkpoint counters when the server runs
	// with a durability backend; omitted otherwise.
	Durability *DurabilityJSON `json:"durability,omitempty"`
	// Replication carries the replication role and per-shard staleness when
	// the process replicates; omitted otherwise.
	Replication *ReplicationJSON `json:"replication,omitempty"`
	// Fairness carries the SFB throttler counters when fairness is enabled;
	// omitted otherwise.
	Fairness *FairnessJSON `json:"fairness,omitempty"`
}

func lineJSON(l probtopk.Line) LineJSON {
	return LineJSON{Score: l.Score, Prob: l.Prob, Vector: l.Vector, VectorProb: l.VectorProb}
}

func distResponse(k int, d *probtopk.Distribution) DistributionResponse {
	resp := DistributionResponse{
		K:         k,
		ScanDepth: d.ScanDepth,
		TotalMass: d.TotalMass(),
		Lines:     []LineJSON{},
	}
	for _, l := range d.Lines() {
		resp.Lines = append(resp.Lines, lineJSON(l))
	}
	if len(resp.Lines) > 0 {
		resp.Stats = &DistStatsJSON{
			Mean: d.Mean(), StdDev: d.StdDev(), Median: d.Median(),
			Min: d.Min(), Max: d.Max(),
		}
	}
	return resp
}
