package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// soldierJSON is the paper's running example (Example 1, Figure 1) as an
// upload body; same contents as fixtures.Soldier.
const soldierJSON = `{"tuples": [
	{"id": "T1", "score": 49, "prob": 0.4},
	{"id": "T2", "score": 60, "prob": 0.4, "group": "soldier2"},
	{"id": "T3", "score": 110, "prob": 0.4, "group": "soldier3"},
	{"id": "T4", "score": 80, "prob": 0.3, "group": "soldier2"},
	{"id": "T5", "score": 56, "prob": 1.0},
	{"id": "T6", "score": 58, "prob": 0.5, "group": "soldier3"},
	{"id": "T7", "score": 125, "prob": 0.3, "group": "soldier2"}
]}`

const soldierCSV = `id,score,prob,group
T1,49,0.4,
T2,60,0.4,soldier2
T3,110,0.4,soldier3
T4,80,0.3,soldier2
T5,56,1.0,
T6,58,0.5,soldier3
T7,125,0.3,soldier2
`

// do runs one request directly against the handler.
func do(t *testing.T, s *Server, method, path, body string, header ...string) *httptest.ResponseRecorder {
	t.Helper()
	var req *http.Request
	if body == "" {
		req = httptest.NewRequest(method, path, nil)
	} else {
		req = httptest.NewRequest(method, path, strings.NewReader(body))
	}
	for i := 0; i+1 < len(header); i += 2 {
		req.Header.Set(header[i], header[i+1])
	}
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	return w
}

// mustStatus asserts the response code and returns the body.
func mustStatus(t *testing.T, w *httptest.ResponseRecorder, want int) string {
	t.Helper()
	if w.Code != want {
		t.Fatalf("status = %d, want %d; body: %s", w.Code, want, w.Body.String())
	}
	return w.Body.String()
}

// newSoldierServer returns a server hosting the soldier table as "s".
func newSoldierServer(t *testing.T) *Server {
	t.Helper()
	s := New(Config{})
	mustStatus(t, do(t, s, "PUT", "/tables/s", soldierJSON), http.StatusCreated)
	return s
}

func getStats(t *testing.T, s *Server) StatsResponse {
	t.Helper()
	body := mustStatus(t, do(t, s, "GET", "/debug/stats", ""), http.StatusOK)
	var st StatsResponse
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("stats body: %v\n%s", err, body)
	}
	return st
}

func TestUploadQueryLifecycle(t *testing.T) {
	s := New(Config{})

	// CSV upload, then info, list, csv download.
	mustStatus(t, do(t, s, "PUT", "/tables/sold", soldierCSV, "Content-Type", "text/csv"), http.StatusCreated)
	var info TableInfo
	if err := json.Unmarshal([]byte(mustStatus(t, do(t, s, "GET", "/tables/sold", ""), http.StatusOK)), &info); err != nil {
		t.Fatal(err)
	}
	if info.Tuples != 7 || info.Name != "sold" {
		t.Fatalf("info = %+v", info)
	}
	var list TablesResponse
	if err := json.Unmarshal([]byte(mustStatus(t, do(t, s, "GET", "/tables", ""), http.StatusOK)), &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Tables) != 1 || list.Tables[0].Name != "sold" {
		t.Fatalf("list = %+v", list)
	}
	csv := mustStatus(t, do(t, s, "GET", "/tables/sold/csv", ""), http.StatusOK)
	if !strings.HasPrefix(csv, "id,score,prob,group\n") || !strings.Contains(csv, "T7") {
		t.Fatalf("csv download:\n%s", csv)
	}

	// Query: the soldier example's top-2 distribution (paper Figure 3) has
	// mean ≈ 164.1 when computed exactly.
	body := mustStatus(t, do(t, s, "POST", "/tables/sold/topk", `{"k": 2, "exact": true}`), http.StatusOK)
	var dist DistributionResponse
	if err := json.Unmarshal([]byte(body), &dist); err != nil {
		t.Fatal(err)
	}
	if dist.K != 2 || dist.Stats == nil || len(dist.Lines) == 0 {
		t.Fatalf("dist = %+v", dist)
	}
	if diff := dist.Stats.Mean - 164.1; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("mean = %v, want 164.1", dist.Stats.Mean)
	}

	// Typical answer set.
	body = mustStatus(t, do(t, s, "GET", "/tables/sold/typical?k=2&c=3&exact=true", ""), http.StatusOK)
	var typ TypicalResponse
	if err := json.Unmarshal([]byte(body), &typ); err != nil {
		t.Fatal(err)
	}
	if len(typ.Lines) != 3 {
		t.Fatalf("typical = %+v", typ)
	}
	// The paper's 3-typical scores for the soldier example.
	want := []float64{118, 183, 235}
	for i, l := range typ.Lines {
		if l.Score != want[i] {
			t.Fatalf("typical scores = %+v, want %v", typ.Lines, want)
		}
	}

	// Baselines.
	body = mustStatus(t, do(t, s, "GET", "/tables/sold/baseline/utopk?k=2", ""), http.StatusOK)
	var base BaselineResponse
	if err := json.Unmarshal([]byte(body), &base); err != nil {
		t.Fatal(err)
	}
	if base.Line == nil || len(base.Line.Vector) != 2 {
		t.Fatalf("utopk = %+v", base)
	}
	for _, sem := range []string{"ukranks", "globaltopk", "intopk", "expectedrank"} {
		mustStatus(t, do(t, s, "GET", "/tables/sold/baseline/"+sem+"?k=2", ""), http.StatusOK)
	}
	mustStatus(t, do(t, s, "GET", "/tables/sold/baseline/ptk?k=2&p=0.3", ""), http.StatusOK)

	// Batch: two queries in one call.
	body = mustStatus(t, do(t, s, "POST", "/tables/sold/topk/batch",
		`{"queries": [{"k": 1}, {"k": 2, "exact": true}]}`), http.StatusOK)
	var batch BatchResponse
	if err := json.Unmarshal([]byte(body), &batch); err != nil {
		t.Fatal(err)
	}
	if len(batch.Results) != 2 || batch.Results[0].K != 1 || batch.Results[1].K != 2 {
		t.Fatalf("batch = %+v", batch)
	}

	// Delete.
	mustStatus(t, do(t, s, "DELETE", "/tables/sold", ""), http.StatusNoContent)
	mustStatus(t, do(t, s, "GET", "/tables/sold", ""), http.StatusNotFound)
}

// TestAnswerCacheHitAndInvalidation is the acceptance check: a repeated
// identical query is a derived-cache hit, and mutation invalidates it.
func TestAnswerCacheHitAndInvalidation(t *testing.T) {
	s := newSoldierServer(t)

	first := mustStatus(t, do(t, s, "GET", "/tables/s/topk?k=2", ""), http.StatusOK)
	st := getStats(t, s)
	if st.AnswerCache.Hits != 0 || st.AnswerCache.Misses != 1 || st.AnswerCache.Entries != 1 {
		t.Fatalf("after first query: %+v", st.AnswerCache)
	}
	if st.ComputedQueries.Count != 1 || st.CachedQueries.Count != 0 {
		t.Fatalf("latency counters: %+v", st)
	}

	// The identical query — and every differently-spelled equivalent — hits.
	second := mustStatus(t, do(t, s, "GET", "/tables/s/topk?k=2", ""), http.StatusOK)
	if second != first {
		t.Fatalf("cache hit changed the answer:\n%s\nvs\n%s", first, second)
	}
	equivalents := []struct{ method, path, body string }{
		{"GET", "/tables/s/topk?k=2&threshold=0.001", ""}, // explicit default
		{"POST", "/tables/s/topk", `{"k": 2}`},            // JSON spelling
		{"POST", "/tables/s/topk", `{"k": 2, "threshold": 0.001}`},
	}
	for _, eq := range equivalents {
		got := mustStatus(t, do(t, s, eq.method, eq.path, eq.body), http.StatusOK)
		if got != first {
			t.Fatalf("%s %s missed the cache or changed the answer", eq.method, eq.path)
		}
	}
	st = getStats(t, s)
	if st.AnswerCache.Hits != 4 || st.AnswerCache.Misses != 1 {
		t.Fatalf("after equivalent queries: %+v", st.AnswerCache)
	}
	if st.CachedQueries.Count != 4 || st.ComputedQueries.Count != 1 {
		t.Fatalf("latency counters: %+v", st)
	}

	// Mutation invalidates: the same query recomputes against the new
	// contents and the answer actually changes.
	mustStatus(t, do(t, s, "POST", "/tables/s/tuples",
		`{"tuples": [{"id": "T8", "score": 130, "prob": 0.9}]}`), http.StatusOK)
	st = getStats(t, s)
	if st.AnswerCache.Entries != 0 || st.AnswerCache.Invalidations == 0 {
		t.Fatalf("after mutation: %+v", st.AnswerCache)
	}
	third := mustStatus(t, do(t, s, "GET", "/tables/s/topk?k=2", ""), http.StatusOK)
	if third == first {
		t.Fatal("mutation did not change the served answer")
	}
	st = getStats(t, s)
	if st.AnswerCache.Misses != 2 || st.ComputedQueries.Count != 2 {
		t.Fatalf("after re-query: %+v", st)
	}

	// Replacing the table also invalidates.
	mustStatus(t, do(t, s, "GET", "/tables/s/topk?k=2", ""), http.StatusOK) // warm
	mustStatus(t, do(t, s, "PUT", "/tables/s", soldierJSON), http.StatusOK)
	if st = getStats(t, s); st.AnswerCache.Entries != 0 {
		t.Fatalf("after replace: %+v", st.AnswerCache)
	}
	fourth := mustStatus(t, do(t, s, "GET", "/tables/s/topk?k=2", ""), http.StatusOK)
	if fourth != first {
		t.Fatal("replaced table should serve the original answer again")
	}
}

func TestAnswerCacheDisabled(t *testing.T) {
	s := New(Config{AnswerCacheSize: -1})
	mustStatus(t, do(t, s, "PUT", "/tables/s", soldierJSON), http.StatusCreated)
	mustStatus(t, do(t, s, "GET", "/tables/s/topk?k=2", ""), http.StatusOK)
	mustStatus(t, do(t, s, "GET", "/tables/s/topk?k=2", ""), http.StatusOK)
	st := getStats(t, s)
	if st.AnswerCache.Hits != 0 || st.AnswerCache.Entries != 0 {
		t.Fatalf("disabled cache: %+v", st.AnswerCache)
	}
	if st.ComputedQueries.Count != 2 {
		t.Fatalf("latency counters: %+v", st)
	}
}

// TestEndpointErrors is the endpoint × error-case matrix: missing tables,
// bad and oversized k, sentinel misuse, malformed bodies. Every error body
// must be the uniform JSON envelope and must not leak process internals.
func TestEndpointErrors(t *testing.T) {
	s := newSoldierServer(t)
	cases := []struct {
		name         string
		method, path string
		body         string
		want         int
	}{
		// Missing table, on every endpoint that takes one.
		{"topk missing table", "GET", "/tables/none/topk?k=2", "", 404},
		{"topk post missing table", "POST", "/tables/none/topk", `{"k": 2}`, 404},
		{"batch missing table", "POST", "/tables/none/topk/batch", `{"queries": [{"k": 1}]}`, 404},
		{"typical missing table", "GET", "/tables/none/typical?k=2&c=1", "", 404},
		{"baseline missing table", "GET", "/tables/none/baseline/utopk?k=2", "", 404},
		{"info missing table", "GET", "/tables/none", "", 404},
		{"csv missing table", "GET", "/tables/none/csv", "", 404},
		{"delete missing table", "DELETE", "/tables/none", "", 404},
		{"append missing table", "POST", "/tables/none/tuples", `{"tuples": [{"id": "x", "score": 1, "prob": 0.5}]}`, 404},

		// Bad k.
		{"k missing", "GET", "/tables/s/topk", "", 400},
		{"k zero", "GET", "/tables/s/topk?k=0", "", 400},
		{"k negative", "POST", "/tables/s/topk", `{"k": -3}`, 400},
		{"k not a number", "GET", "/tables/s/topk?k=two", "", 400},
		{"typical k zero", "GET", "/tables/s/typical?k=0&c=1", "", 400},
		{"baseline k zero", "GET", "/tables/s/baseline/utopk?k=0", "", 400},

		// k > n: distributions answer with zero mass (200, asserted
		// below); semantics that require k co-existing tuples are 422.
		{"typical k>n", "GET", "/tables/s/typical?k=9&c=2", "", 422},
		{"utopk k>n", "GET", "/tables/s/baseline/utopk?k=9", "", 422},
		{"globaltopk k>n", "GET", "/tables/s/baseline/globaltopk?k=9", "", 422},
		{"expectedrank k>n", "GET", "/tables/s/baseline/expectedrank?k=9", "", 422},

		// Options sentinel misuse and unknown knobs.
		{"exact+threshold conflict", "POST", "/tables/s/topk", `{"k": 2, "exact": true, "threshold": 0.01}`, 400},
		{"exact+maxLines conflict", "POST", "/tables/s/topk", `{"k": 2, "exact": true, "maxLines": 10}`, 400},
		{"unknown algorithm", "GET", "/tables/s/topk?k=2&algorithm=quantum", "", 400},
		{"unknown parameter", "GET", "/tables/s/topk?k=2&kk=3", "", 400},
		{"unknown JSON field", "POST", "/tables/s/topk", `{"k": 2, "kk": 3}`, 400},
		{"trailing JSON", "POST", "/tables/s/topk", `{"k": 2}{"k": 3}`, 400},
		{"empty body", "POST", "/tables/s/topk", "", 400},
		{"c on topk", "GET", "/tables/s/topk?k=2&c=3", "", 400},
		{"queries on topk", "POST", "/tables/s/topk", `{"k": 2, "queries": [{"k": 1}]}`, 400},
		{"p on topk", "GET", "/tables/s/topk?k=2&p=0.5", "", 400},

		// Typical.
		{"typical c missing", "GET", "/tables/s/typical?k=2", "", 400},
		{"typical c zero", "GET", "/tables/s/typical?k=2&c=0", "", 400},

		// Batch.
		{"batch empty", "POST", "/tables/s/topk/batch", `{"queries": []}`, 400},
		{"batch no body", "POST", "/tables/s/topk/batch", "", 400},
		{"batch member k zero", "POST", "/tables/s/topk/batch", `{"queries": [{"k": 0}]}`, 400},
		{"batch top-level k", "POST", "/tables/s/topk/batch", `{"k": 2, "queries": [{"k": 1}]}`, 400},
		{"batch top-level threshold", "POST", "/tables/s/topk/batch", `{"threshold": 0.5, "queries": [{"k": 1}]}`, 400},
		{"batch top-level exact", "POST", "/tables/s/topk/batch", `{"exact": true, "queries": [{"k": 1}]}`, 400},
		{"batch non-main algorithm", "POST", "/tables/s/topk/batch", `{"algorithm": "state-expansion", "queries": [{"k": 1}]}`, 400},

		// Baselines.
		{"unknown baseline", "GET", "/tables/s/baseline/fancy?k=2", "", 400},
		{"ptk missing p", "GET", "/tables/s/baseline/ptk?k=2", "", 400},
		{"ptk p out of range", "GET", "/tables/s/baseline/ptk?k=2&p=1.5", "", 400},
		{"baseline with threshold", "GET", "/tables/s/baseline/utopk?k=2&threshold=0.1", "", 400},

		// Uploads and mutations.
		{"put bad name", "PUT", "/tables/bad%2Fname", soldierJSON, 400},
		{"put bad csv", "PUT", "/tables/x", "id,score\n1,2\n", 400},
		{"put csv bad prob", "PUT", "/tables/x", "id,score,prob,group\na,1,1.5,\n", 400},
		{"put duplicate ids", "PUT", "/tables/x", `{"tuples": [{"id": "a", "score": 1, "prob": 0.5}, {"id": "a", "score": 2, "prob": 0.5}]}`, 400},
		{"put group mass > 1", "PUT", "/tables/x", `{"tuples": [{"id": "a", "score": 1, "prob": 0.7, "group": "g"}, {"id": "b", "score": 2, "prob": 0.7, "group": "g"}]}`, 400},
		{"put bad json", "PUT", "/tables/x", `{"tuples": [`, 400},
		{"put unknown field", "PUT", "/tables/x", `{"rows": []}`, 400},
		{"put trailing data", "PUT", "/tables/x", `{"tuples": []}{"tuples": []}`, 400},
		{"append trailing data", "POST", "/tables/s/tuples", `{"tuples": [{"id": "T9", "score": 1, "prob": 0.5}]}extra`, 400},
		{"append empty", "POST", "/tables/s/tuples", `{"tuples": []}`, 400},
		{"append duplicate of existing", "POST", "/tables/s/tuples", `{"tuples": [{"id": "T1", "score": 1, "prob": 0.5}]}`, 400},
		{"append bad prob", "POST", "/tables/s/tuples", `{"tuples": [{"id": "T9", "score": 1, "prob": 7}]}`, 400},
		{"append overflowing group", "POST", "/tables/s/tuples", `{"tuples": [{"id": "T9", "score": 1, "prob": 0.9, "group": "soldier2"}]}`, 400},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var hdr []string
			if strings.HasPrefix(tc.body, "id,score") {
				hdr = []string{"Content-Type", "text/csv"}
			}
			w := do(t, s, tc.method, tc.path, tc.body, hdr...)
			body := mustStatus(t, w, tc.want)
			var e ErrorResponse
			if err := json.Unmarshal([]byte(body), &e); err != nil || e.Error == "" {
				t.Fatalf("error body is not the JSON envelope: %s", body)
			}
			for _, leak := range []string{"/root", "/home", "/usr", ".go:", "goroutine"} {
				if strings.Contains(e.Error, leak) {
					t.Fatalf("error body leaks %q: %s", leak, e.Error)
				}
			}
		})
	}

	// Failed mutations must not have changed the table.
	var info TableInfo
	if err := json.Unmarshal([]byte(mustStatus(t, do(t, s, "GET", "/tables/s", ""), http.StatusOK)), &info); err != nil {
		t.Fatal(err)
	}
	if info.Tuples != 7 {
		t.Fatalf("table mutated by failed requests: %+v", info)
	}
}

// TestKLargerThanNDistribution: k beyond any possible world is not an error
// for the distribution itself — it is the zero-mass distribution.
func TestKLargerThanNDistribution(t *testing.T) {
	s := newSoldierServer(t)
	body := mustStatus(t, do(t, s, "GET", "/tables/s/topk?k=9", ""), http.StatusOK)
	var dist DistributionResponse
	if err := json.Unmarshal([]byte(body), &dist); err != nil {
		t.Fatal(err)
	}
	if dist.TotalMass != 0 || len(dist.Lines) != 0 || dist.Stats != nil {
		t.Fatalf("k>n dist = %+v", dist)
	}
}

// TestBatchDuplicateQueries: duplicates within a batch are answered
// independently and identically.
func TestBatchDuplicateQueries(t *testing.T) {
	s := newSoldierServer(t)
	body := mustStatus(t, do(t, s, "POST", "/tables/s/topk/batch",
		`{"queries": [{"k": 2}, {"k": 1}, {"k": 2}]}`), http.StatusOK)
	var batch BatchResponse
	if err := json.Unmarshal([]byte(body), &batch); err != nil {
		t.Fatal(err)
	}
	if len(batch.Results) != 3 {
		t.Fatalf("results = %d", len(batch.Results))
	}
	a, _ := json.Marshal(batch.Results[0])
	b, _ := json.Marshal(batch.Results[2])
	if string(a) != string(b) {
		t.Fatalf("duplicate batch queries disagree:\n%s\nvs\n%s", a, b)
	}
	if batch.Results[1].K != 1 {
		t.Fatalf("middle result = %+v", batch.Results[1])
	}
}

// TestAlgorithmsAgreeOverHTTP: the three §3 algorithms serve the same exact
// answer (and are cached under distinct fingerprints).
func TestAlgorithmsAgreeOverHTTP(t *testing.T) {
	s := newSoldierServer(t)
	get := func(alg string) DistributionResponse {
		t.Helper()
		body := mustStatus(t, do(t, s, "GET", "/tables/s/topk?k=2&exact=true&algorithm="+alg, ""), http.StatusOK)
		var d DistributionResponse
		if err := json.Unmarshal([]byte(body), &d); err != nil {
			t.Fatal(err)
		}
		return d
	}
	main, se, kc := get("main"), get("state-expansion"), get("k-combo")
	for _, other := range []DistributionResponse{se, kc} {
		if len(main.Lines) != len(other.Lines) {
			t.Fatalf("line counts differ: %d vs %d", len(main.Lines), len(other.Lines))
		}
		for i := range main.Lines {
			if d := main.Lines[i].Prob - other.Lines[i].Prob; d > 1e-12 || d < -1e-12 {
				t.Fatalf("line %d prob differs: %v vs %v", i, main.Lines[i].Prob, other.Lines[i].Prob)
			}
			if main.Lines[i].Score != other.Lines[i].Score {
				t.Fatalf("line %d score differs", i)
			}
		}
	}
	if st := getStats(t, s); st.AnswerCache.Entries != 3 {
		t.Fatalf("expected 3 distinct cache entries, got %+v", st.AnswerCache)
	}
}

// TestDeleteRecreateServesFreshAnswers: a recreated table with the same
// name, tuple count and version (Version just counts Adds) must never be
// served answers derived from its predecessor — the answer cache keys on a
// never-reused generation, not the reusable version.
func TestDeleteRecreateServesFreshAnswers(t *testing.T) {
	s := New(Config{})
	mustStatus(t, do(t, s, "PUT", "/tables/r",
		`{"tuples": [{"id": "a", "score": 10, "prob": 0.5}, {"id": "b", "score": 5, "prob": 0.5}]}`),
		http.StatusCreated)
	first := mustStatus(t, do(t, s, "GET", "/tables/r/topk?k=1", ""), http.StatusOK)
	mustStatus(t, do(t, s, "DELETE", "/tables/r", ""), http.StatusNoContent)
	// Same tuple count → same Table.Version, different contents.
	mustStatus(t, do(t, s, "PUT", "/tables/r",
		`{"tuples": [{"id": "a", "score": 99, "prob": 0.5}, {"id": "b", "score": 5, "prob": 0.5}]}`),
		http.StatusCreated)
	second := mustStatus(t, do(t, s, "GET", "/tables/r/topk?k=1", ""), http.StatusOK)
	if first == second {
		t.Fatal("recreated table served its predecessor's answer")
	}
	var dist DistributionResponse
	if err := json.Unmarshal([]byte(second), &dist); err != nil {
		t.Fatal(err)
	}
	if dist.Stats == nil || dist.Stats.Max != 99 {
		t.Fatalf("recreated answer = %+v", dist)
	}
}

func TestHealthz(t *testing.T) {
	s := New(Config{})
	body := mustStatus(t, do(t, s, "GET", "/healthz", ""), http.StatusOK)
	if !strings.Contains(body, "ok") {
		t.Fatalf("healthz = %s", body)
	}
}

func TestTableNameValidation(t *testing.T) {
	for _, name := range []string{"ok-1", "A.b_c"} {
		if err := checkTableName(name); err != nil {
			t.Fatalf("%q rejected: %v", name, err)
		}
	}
	long := strings.Repeat("x", maxTableNameLen+1)
	for _, name := range []string{"", "sp ace", "sl/ash", "uni\x00de", long} {
		if err := checkTableName(name); err == nil {
			t.Fatalf("%q accepted", name)
		}
	}
}

// TestNormalizeAndWeightedKnobs: the optional knobs round-trip and change
// the answer as documented.
func TestNormalizeAndWeightedKnobs(t *testing.T) {
	s := newSoldierServer(t)
	body := mustStatus(t, do(t, s, "GET", "/tables/s/topk?k=2&normalize=true", ""), http.StatusOK)
	var dist DistributionResponse
	if err := json.Unmarshal([]byte(body), &dist); err != nil {
		t.Fatal(err)
	}
	if d := dist.TotalMass - 1; d > 1e-9 || d < -1e-9 {
		t.Fatalf("normalized mass = %v", dist.TotalMass)
	}
	mustStatus(t, do(t, s, "GET", "/tables/s/topk?k=2&weightedCoalesce=true&maxLines=4", ""), http.StatusOK)
}

func TestStatsShapeIsStable(t *testing.T) {
	s := newSoldierServer(t)
	mustStatus(t, do(t, s, "GET", "/tables/s/topk?k=2", ""), http.StatusOK)
	st := getStats(t, s)
	if st.Tables != 1 {
		t.Fatalf("tables = %d", st.Tables)
	}
	if st.PreparedCache.Misses == 0 {
		t.Fatalf("engine cache counters not plumbed: %+v", st.PreparedCache)
	}
	if st.EngineQueries.Count == 0 || st.EngineQueries.TotalNs == 0 {
		t.Fatalf("engine query counters not plumbed: %+v", st.EngineQueries)
	}
	if st.UptimeSeconds < 0 {
		t.Fatalf("uptime = %v", st.UptimeSeconds)
	}
}

func ExampleServer() {
	s := New(Config{})
	w := httptest.NewRecorder()
	req := httptest.NewRequest("PUT", "/tables/demo",
		strings.NewReader(`{"tuples": [{"id": "a", "score": 10, "prob": 0.9}, {"id": "b", "score": 8, "prob": 0.5}]}`))
	s.ServeHTTP(w, req)
	fmt.Println(w.Code)
	w = httptest.NewRecorder()
	s.ServeHTTP(w, httptest.NewRequest("GET", "/tables/demo/topk?k=1", nil))
	fmt.Println(w.Code)
	// Output:
	// 201
	// 200
}

// TestAppendReusesDynamicIndex exercises the mutate path's dynamic-index
// wiring: every published snapshot carries a frozen index view, appends
// extend the table's live index instead of abandoning the prepared order,
// the engine prepares post-append snapshots from the view, and the answers
// stay byte-identical to a table uploaded whole.
func TestAppendReusesDynamicIndex(t *testing.T) {
	s := newSoldierServer(t)
	st, ok := s.reg.load("s")
	if !ok || st.snap.IndexView() == nil {
		t.Fatal("published snapshot must carry the dynamic-index view")
	}
	before := getStats(t, s).DynamicIndex

	query := `{"k": 2, "exact": true}`
	mustStatus(t, do(t, s, "POST", "/tables/s/topk", query), http.StatusOK)

	appendBody := `{"tuples": [
		{"id": "T8", "score": 90, "prob": 0.5},
		{"id": "T9", "score": 10, "prob": 0.09, "group": "soldier3"}
	]}`
	mustStatus(t, do(t, s, "POST", "/tables/s/tuples", appendBody), http.StatusOK)
	st2, ok := s.reg.load("s")
	if !ok || st2.snap.IndexView() == nil {
		t.Fatal("post-append snapshot must carry the dynamic-index view")
	}
	if st2.snap.IndexView() == st.snap.IndexView() {
		t.Fatal("append must freeze a fresh view")
	}
	got := mustStatus(t, do(t, s, "POST", "/tables/s/topk", query), http.StatusOK)

	after := getStats(t, s).DynamicIndex
	if d := after.Mutations - before.Mutations; d < 2 {
		t.Fatalf("append of 2 tuples recorded %d index mutations", d)
	}
	if after.ViewPrepares <= before.ViewPrepares {
		t.Fatalf("queries must prepare through the snapshot's index view: %+v -> %+v", before, after)
	}
	if after.ViewRebuilds <= before.ViewRebuilds {
		t.Fatalf("expected at least one view materialization: %+v -> %+v", before, after)
	}

	// Oracle: the same 9 tuples uploaded in one shot answer identically.
	oracle := New(Config{})
	all := `{"tuples": [
		{"id": "T1", "score": 49, "prob": 0.4},
		{"id": "T2", "score": 60, "prob": 0.4, "group": "soldier2"},
		{"id": "T3", "score": 110, "prob": 0.4, "group": "soldier3"},
		{"id": "T4", "score": 80, "prob": 0.3, "group": "soldier2"},
		{"id": "T5", "score": 56, "prob": 1.0},
		{"id": "T6", "score": 58, "prob": 0.5, "group": "soldier3"},
		{"id": "T7", "score": 125, "prob": 0.3, "group": "soldier2"},
		{"id": "T8", "score": 90, "prob": 0.5},
		{"id": "T9", "score": 10, "prob": 0.09, "group": "soldier3"}
	]}`
	mustStatus(t, do(t, oracle, "PUT", "/tables/s", all), http.StatusCreated)
	want := mustStatus(t, do(t, oracle, "POST", "/tables/s/topk", query), http.StatusOK)
	if got != want {
		t.Fatalf("append-path answer differs from whole-upload answer:\n%s\nvs\n%s", got, want)
	}
}
