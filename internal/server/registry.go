package server

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"probtopk"
	"probtopk/internal/persist"
	"probtopk/internal/uncertain"
)

// maxTableNameLen bounds registry names so they stay usable as cache keys
// and log fields.
const maxTableNameLen = 128

// tableState is one published, immutable state of a hosted table: the table
// value — never mutated after publication; appends build and publish a
// fresh one — and its snapshot, whose process-unique identity stamps the
// state for every cache above.
type tableState struct {
	tab  *probtopk.Table
	snap *probtopk.Snapshot
}

// tableEntry is one hosted table. Readers load the published state from the
// atomic pointer and then hold NOTHING: the snapshot they got is immutable,
// so the whole query — preparation, dynamic program, cache fill — runs
// lock-free and can never block or be blocked by a mutation. The mutex
// serializes mutations (append, replace) against each other only.
type tableEntry struct {
	mu    sync.Mutex // held by mutations; never by queries
	state atomic.Pointer[tableState]
	// idx is the table's live dynamic index, maintained across mutations
	// under mu (never touched by queries): appends insert into it in O(log n)
	// instead of abandoning the previous prepared order, and each published
	// snapshot carries its frozen view so the engine materializes the
	// prepared form from the index — reusing the unchanged rank prefix —
	// rather than sorting from scratch. nil only if index construction failed
	// (defensive; validated tables always index cleanly), in which case
	// queries fall back to the sort-based Prepare.
	idx *uncertain.Index
}

// newTableState publishes tab as an immutable state with a freshly built
// dynamic index: the returned snapshot carries the index's frozen view.
func newTableState(tab *probtopk.Table) (*tableState, *uncertain.Index) {
	st := &tableState{tab: tab, snap: tab.Snapshot()}
	idx, err := uncertain.NewIndexOf(tab.Tuples())
	if err != nil {
		return st, nil
	}
	st.snap.SetIndexView(idx.Freeze())
	return st, idx
}

// registryShard is one slice of the name→table map with its own lock.
// Names are routed by persist.ShardOf — the same hash that picks a durable
// mutation's WAL shard — so a table's map entry, its durability mutex and
// its WAL segments all live on one shard and mutations of tables on
// different shards share no lock at all.
type registryShard struct {
	mu     sync.RWMutex
	tables map[string]*tableEntry
}

// registry maps names to hosted tables, split across one or more shards.
// Each shard's lock only guards its map; per-table state is published
// through each entry's atomic pointer, so a query on one table never
// blocks anything — not mutations of the same table, not other tables.
type registry struct {
	shards []*registryShard
}

func newRegistry(shards int) *registry {
	if shards < 1 {
		shards = 1
	}
	r := &registry{shards: make([]*registryShard, shards)}
	for i := range r.shards {
		r.shards[i] = &registryShard{tables: make(map[string]*tableEntry)}
	}
	return r
}

// shardIndex routes a table name to its shard.
func (r *registry) shardIndex(name string) int {
	return persist.ShardOf(name, len(r.shards))
}

// shard returns the shard owning name.
func (r *registry) shard(name string) *registryShard {
	return r.shards[r.shardIndex(name)]
}

// checkTableName validates a registry name: non-empty, bounded, and limited
// to [A-Za-z0-9._-] so names embed cleanly in URLs and fingerprints.
func checkTableName(name string) error {
	if name == "" {
		return fmt.Errorf("empty table name")
	}
	if len(name) > maxTableNameLen {
		return fmt.Errorf("table name longer than %d bytes", maxTableNameLen)
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return fmt.Errorf("table name contains invalid byte %q (allowed: letters, digits, '.', '_', '-')", c)
		}
	}
	return nil
}

// entry returns the tableEntry for name.
func (r *registry) entry(name string) (*tableEntry, bool) {
	sh := r.shard(name)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	e, ok := sh.tables[name]
	return e, ok
}

// load returns name's currently published state. This is the whole read
// path: one map read and one atomic load, no per-table lock. The returned
// state is immutable; a concurrent delete or replace cannot invalidate it,
// and answers derived from it are keyed by its snapshot identity, which is
// never reused.
func (r *registry) load(name string) (*tableState, bool) {
	e, ok := r.entry(name)
	if !ok {
		return nil, false
	}
	return e.state.Load(), true
}

// acquireMutate returns name's entry with its mutation lock held and the
// state published at lock time, re-checking registration so a mutation
// cannot land on an entry a concurrent delete has orphaned (it must surface
// as "no table", not as an acknowledged write no lookup can see). The
// caller must e.mu.Unlock.
func (r *registry) acquireMutate(name string) (*tableEntry, *tableState, bool) {
	for {
		e, ok := r.entry(name)
		if !ok {
			return nil, nil, false
		}
		e.mu.Lock()
		if cur, ok := r.entry(name); ok && cur == e {
			return e, e.state.Load(), true
		}
		e.mu.Unlock()
	}
}

// put installs the pre-built state (and its dynamic index) under name,
// replacing any previous table. It returns the newly published state and the
// replaced one (nil if the name is new, so the caller can release cache
// entries derived from it). The state and index come from newTableState,
// built by the caller outside the registry locks.
func (r *registry) put(name string, st *tableState, idx *uncertain.Index) (published, replaced *tableState) {
	sh := r.shard(name)
	for {
		sh.mu.Lock()
		e, ok := sh.tables[name]
		if !ok {
			e = &tableEntry{idx: idx}
			e.state.Store(st)
			sh.tables[name] = e
			sh.mu.Unlock()
			return st, nil
		}
		sh.mu.Unlock()
		// Replace under the entry's mutation lock (serializing against
		// appends), then re-check the entry is still registered: a
		// concurrent delete may have orphaned it, and swapping onto an
		// orphan would acknowledge an upload that no lookup can ever see.
		// In-flight queries are unaffected either way — they hold the old
		// immutable state.
		e.mu.Lock()
		cur, ok := r.entry(name)
		if !ok || cur != e {
			e.mu.Unlock()
			continue
		}
		replaced = e.state.Load()
		e.idx = idx
		e.state.Store(st)
		e.mu.Unlock()
		return st, replaced
	}
}

// remove deletes name, returning the removed state. It never waits:
// in-flight queries over the removed table finish against the immutable
// state they already hold.
func (r *registry) remove(name string) (*tableState, bool) {
	sh := r.shard(name)
	sh.mu.Lock()
	e, ok := sh.tables[name]
	if ok {
		delete(sh.tables, name)
	}
	sh.mu.Unlock()
	if !ok {
		return nil, false
	}
	return e.state.Load(), true
}

// names returns every hosted table name, sorted.
func (r *registry) names() []string {
	var out []string
	for _, sh := range r.shards {
		sh.mu.RLock()
		for n := range sh.tables {
			out = append(out, n)
		}
		sh.mu.RUnlock()
	}
	sort.Strings(out)
	return out
}

// shardNames returns the names hosted on one shard (unsorted).
func (r *registry) shardNames(shard int) []string {
	sh := r.shards[shard]
	sh.mu.RLock()
	out := make([]string, 0, len(sh.tables))
	for n := range sh.tables {
		out = append(out, n)
	}
	sh.mu.RUnlock()
	return out
}

// len returns the number of hosted tables.
func (r *registry) len() int {
	n := 0
	for _, sh := range r.shards {
		sh.mu.RLock()
		n += len(sh.tables)
		sh.mu.RUnlock()
	}
	return n
}
