package server

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"probtopk"
)

// maxTableNameLen bounds registry names so they stay usable as cache keys
// and log fields.
const maxTableNameLen = 128

// tableState is one published, immutable state of a hosted table: the table
// value — never mutated after publication; appends build and publish a
// fresh one — and its snapshot, whose process-unique identity stamps the
// state for every cache above.
type tableState struct {
	tab  *probtopk.Table
	snap *probtopk.Snapshot
}

// tableEntry is one hosted table. Readers load the published state from the
// atomic pointer and then hold NOTHING: the snapshot they got is immutable,
// so the whole query — preparation, dynamic program, cache fill — runs
// lock-free and can never block or be blocked by a mutation. The mutex
// serializes mutations (append, replace) against each other only.
type tableEntry struct {
	mu    sync.Mutex // held by mutations; never by queries
	state atomic.Pointer[tableState]
}

// registry maps names to hosted tables. The registry lock only guards the
// map; per-table state is published through each entry's atomic pointer, so
// a query on one table never blocks anything — not mutations of the same
// table, not other tables.
type registry struct {
	mu     sync.RWMutex
	tables map[string]*tableEntry
}

func newRegistry() *registry {
	return &registry{tables: make(map[string]*tableEntry)}
}

// checkTableName validates a registry name: non-empty, bounded, and limited
// to [A-Za-z0-9._-] so names embed cleanly in URLs and fingerprints.
func checkTableName(name string) error {
	if name == "" {
		return fmt.Errorf("empty table name")
	}
	if len(name) > maxTableNameLen {
		return fmt.Errorf("table name longer than %d bytes", maxTableNameLen)
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return fmt.Errorf("table name contains invalid byte %q (allowed: letters, digits, '.', '_', '-')", c)
		}
	}
	return nil
}

// entry returns the tableEntry for name.
func (r *registry) entry(name string) (*tableEntry, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.tables[name]
	return e, ok
}

// load returns name's currently published state. This is the whole read
// path: one map read and one atomic load, no per-table lock. The returned
// state is immutable; a concurrent delete or replace cannot invalidate it,
// and answers derived from it are keyed by its snapshot identity, which is
// never reused.
func (r *registry) load(name string) (*tableState, bool) {
	e, ok := r.entry(name)
	if !ok {
		return nil, false
	}
	return e.state.Load(), true
}

// acquireMutate returns name's entry with its mutation lock held and the
// state published at lock time, re-checking registration so a mutation
// cannot land on an entry a concurrent delete has orphaned (it must surface
// as "no table", not as an acknowledged write no lookup can see). The
// caller must e.mu.Unlock.
func (r *registry) acquireMutate(name string) (*tableEntry, *tableState, bool) {
	for {
		e, ok := r.entry(name)
		if !ok {
			return nil, nil, false
		}
		e.mu.Lock()
		if cur, ok := r.entry(name); ok && cur == e {
			return e, e.state.Load(), true
		}
		e.mu.Unlock()
	}
}

// put installs tab under name, replacing any previous table. It returns the
// newly published state and the replaced one (nil if the name is new, so
// the caller can release cache entries derived from it).
func (r *registry) put(name string, tab *probtopk.Table) (published, replaced *tableState) {
	st := &tableState{tab: tab, snap: tab.Snapshot()}
	for {
		r.mu.Lock()
		e, ok := r.tables[name]
		if !ok {
			e = &tableEntry{}
			e.state.Store(st)
			r.tables[name] = e
			r.mu.Unlock()
			return st, nil
		}
		r.mu.Unlock()
		// Replace under the entry's mutation lock (serializing against
		// appends), then re-check the entry is still registered: a
		// concurrent delete may have orphaned it, and swapping onto an
		// orphan would acknowledge an upload that no lookup can ever see.
		// In-flight queries are unaffected either way — they hold the old
		// immutable state.
		e.mu.Lock()
		cur, ok := r.entry(name)
		if !ok || cur != e {
			e.mu.Unlock()
			continue
		}
		replaced = e.state.Load()
		e.state.Store(st)
		e.mu.Unlock()
		return st, replaced
	}
}

// remove deletes name, returning the removed state. It never waits:
// in-flight queries over the removed table finish against the immutable
// state they already hold.
func (r *registry) remove(name string) (*tableState, bool) {
	r.mu.Lock()
	e, ok := r.tables[name]
	if ok {
		delete(r.tables, name)
	}
	r.mu.Unlock()
	if !ok {
		return nil, false
	}
	return e.state.Load(), true
}

// names returns the sorted table names.
func (r *registry) names() []string {
	r.mu.RLock()
	out := make([]string, 0, len(r.tables))
	for n := range r.tables {
		out = append(out, n)
	}
	r.mu.RUnlock()
	sort.Strings(out)
	return out
}

// len returns the number of hosted tables.
func (r *registry) len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.tables)
}
