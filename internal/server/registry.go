package server

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"probtopk"
)

// maxTableNameLen bounds registry names so they stay usable as cache keys
// and log fields.
const maxTableNameLen = 128

// tableEntry is one hosted table. Its RWMutex serializes mutations against
// queries: queries hold the read lock for their whole computation (the Table
// contract forbids mutation while queries are in flight), mutations hold the
// write lock.
type tableEntry struct {
	mu  sync.RWMutex
	tab *probtopk.Table
	// gen is a registry-wide, never-reused stamp of this published table
	// state, reassigned on every create, replace and append (guarded by
	// mu). The answer cache keys on it instead of Table.Version, which can
	// repeat across replaces and delete/recreate (it just counts Adds) —
	// with gen, an answer cached from a superseded state is unreachable by
	// construction, whatever the invalidation ordering.
	gen uint64
}

// registry maps names to hosted tables. The registry lock only guards the
// map; per-table work happens under the entry lock, so a slow query on one
// table never blocks operations on another.
type registry struct {
	mu     sync.RWMutex
	tables map[string]*tableEntry

	gens atomic.Uint64
}

func newRegistry() *registry {
	return &registry{tables: make(map[string]*tableEntry)}
}

// nextGen mints a fresh generation stamp.
func (r *registry) nextGen() uint64 { return r.gens.Add(1) }

// checkTableName validates a registry name: non-empty, bounded, and limited
// to [A-Za-z0-9._-] so names embed cleanly in URLs and fingerprints.
func checkTableName(name string) error {
	if name == "" {
		return fmt.Errorf("empty table name")
	}
	if len(name) > maxTableNameLen {
		return fmt.Errorf("table name longer than %d bytes", maxTableNameLen)
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return fmt.Errorf("table name contains invalid byte %q (allowed: letters, digits, '.', '_', '-')", c)
		}
	}
	return nil
}

// get returns the entry for name.
func (r *registry) get(name string) (*tableEntry, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.tables[name]
	return e, ok
}

// acquireRead returns name's entry with its read lock held, guaranteeing
// the entry is still the one registered under name at lock time — a bare
// get-then-lock would let a concurrent delete (and recreate) complete in
// the window, and an answer cached from the orphaned entry could outlive
// the delete's invalidation. The caller must mu.RUnlock the entry.
func (r *registry) acquireRead(name string) (*tableEntry, bool) {
	for {
		e, ok := r.get(name)
		if !ok {
			return nil, false
		}
		e.mu.RLock()
		if cur, ok := r.get(name); ok && cur == e {
			return e, true
		}
		e.mu.RUnlock()
	}
}

// acquireWrite is acquireRead with the write lock: mutations on an entry
// that has been concurrently deleted must surface as "no table", not
// silently land on an orphan. The caller must mu.Unlock the entry.
func (r *registry) acquireWrite(name string) (*tableEntry, bool) {
	for {
		e, ok := r.get(name)
		if !ok {
			return nil, false
		}
		e.mu.Lock()
		if cur, ok := r.get(name); ok && cur == e {
			return e, true
		}
		e.mu.Unlock()
	}
}

// put installs tab under name, replacing any previous table. It returns the
// replaced table (nil if the name is new) so the caller can release engine
// cache entries for it.
func (r *registry) put(name string, tab *probtopk.Table) (replaced *probtopk.Table) {
	for {
		r.mu.Lock()
		e, ok := r.tables[name]
		if !ok {
			r.tables[name] = &tableEntry{tab: tab, gen: r.nextGen()}
			r.mu.Unlock()
			return nil
		}
		r.mu.Unlock()
		// Replace under the entry lock so in-flight queries on the old
		// table drain first — then re-check the entry is still registered:
		// a concurrent delete may have orphaned it, and swapping onto an
		// orphan would acknowledge an upload that no lookup can ever see.
		e.mu.Lock()
		r.mu.RLock()
		cur, ok := r.tables[name]
		r.mu.RUnlock()
		if !ok || cur != e {
			e.mu.Unlock()
			continue
		}
		replaced = e.tab
		e.tab = tab
		e.gen = r.nextGen()
		e.mu.Unlock()
		return replaced
	}
}

// remove deletes name, returning the removed table.
func (r *registry) remove(name string) (*probtopk.Table, bool) {
	r.mu.Lock()
	e, ok := r.tables[name]
	if ok {
		delete(r.tables, name)
	}
	r.mu.Unlock()
	if !ok {
		return nil, false
	}
	// Wait for in-flight queries before handing the table back for engine
	// invalidation.
	e.mu.Lock()
	tab := e.tab
	e.mu.Unlock()
	return tab, true
}

// names returns the sorted table names.
func (r *registry) names() []string {
	r.mu.RLock()
	out := make([]string, 0, len(r.tables))
	for n := range r.tables {
		out = append(out, n)
	}
	r.mu.RUnlock()
	sort.Strings(out)
	return out
}

// len returns the number of hosted tables.
func (r *registry) len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.tables)
}
