package server

import (
	"testing"

	"probtopk"
)

// FuzzDecodeQuery asserts the server's JSON query decoder never panics and
// that every accepted query resolves (for some endpoint kind) into
// well-formed engine inputs: positive k, a known algorithm, a
// fully-substituted threshold and line cap, and a deterministic
// fingerprint.
func FuzzDecodeQuery(f *testing.F) {
	seeds := []string{
		`{"k": 2}`,
		`{"k": 2, "exact": true}`,
		`{"k": 2, "threshold": 0.001}`,
		`{"k": 2, "threshold": -1, "maxLines": -1}`,
		`{"k": 3, "c": 2, "normalize": true}`,
		`{"k": 2, "algorithm": "state-expansion"}`,
		`{"queries": [{"k": 1}, {"k": 2, "exact": true}]}`,
		`{"k": 2, "p": 0.5}`,
		`{"k": 1e9}`,
		`{"k": 2, "kk": 3}`,
		`{"k": 2}{"k": 3}`,
		`[1, 2, 3]`,
		`null`,
		`{`,
		``,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	kinds := []struct {
		kind     queryKind
		baseline string
	}{
		{kindTopK, ""}, {kindBatch, ""}, {kindTypical, ""},
		{kindBaseline, "utopk"}, {kindBaseline, "ptk"},
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		q, err := decodeQueryJSON(data)
		if err != nil {
			return
		}
		for _, kb := range kinds {
			rq, err := q.resolve(kb.kind, kb.baseline)
			if err != nil {
				continue
			}
			if kb.kind != kindBatch && rq.k < 1 {
				t.Fatalf("resolved k = %d from %q", rq.k, data)
			}
			switch rq.algorithm {
			case probtopk.AlgorithmMain, probtopk.AlgorithmStateExpansion, probtopk.AlgorithmKCombo:
			default:
				t.Fatalf("resolved unknown algorithm %v from %q", rq.algorithm, data)
			}
			if rq.threshold < 0 || rq.threshold > 1e308 {
				t.Fatalf("resolved threshold %v from %q", rq.threshold, data)
			}
			if rq.maxLines < 0 {
				t.Fatalf("resolved maxLines %d from %q", rq.maxLines, data)
			}
			for i, bq := range rq.batch {
				if bq.K < 1 {
					t.Fatalf("resolved batch k[%d] = %d from %q", i, bq.K, data)
				}
			}
			// The options must embed without tripping the public API's
			// zero sentinels, and the fingerprint must be deterministic.
			opts := rq.options()
			if opts.Threshold == 0 || opts.MaxLines == 0 {
				t.Fatalf("options left a zero sentinel: %+v from %q", opts, data)
			}
			if rq.fingerprint() != rq.fingerprint() {
				t.Fatalf("unstable fingerprint for %q", data)
			}
		}
	})
}
