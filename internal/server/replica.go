package server

import (
	"fmt"
	"net/http"

	"probtopk"
)

// This file is the server's follower-side replication surface: the
// read-only guard on the mutating endpoints, the Apply* methods the
// replication stream feeds replicated records through, and the stats hook
// that lets /debug/stats render replication state without this package
// importing internal/repl (repl imports server's types, never the other
// way around — the daemon wires the two together).

// readOnlyError rejects a write on a follower. 403 (not 405): the method
// and route are fine, this PROCESS refuses writes by policy, and the body
// tells the client where they go.
func (s *Server) readOnlyError(w http.ResponseWriter) {
	w.Header().Set("X-Topk-Leader", s.followerOf)
	writeError(w, http.StatusForbidden,
		fmt.Errorf("read-only follower: writes go to the leader at %s", s.followerOf))
}

// ReadOnly reports whether the server rejects writes (follower mode).
func (s *Server) ReadOnly() bool { return s.followerOf != "" }

// SetReplicationStats registers fn as the source of the /debug/stats
// replication block. fn is called per stats request and must be safe for
// concurrent use; nil detaches. The daemon wires a follower's (or leader's)
// live status here.
func (s *Server) SetReplicationStats(fn func() *ReplicationJSON) {
	s.replStats.Store(&fn)
}

// replicationJSON resolves the registered stats hook, if any.
func (s *Server) replicationJSON() *ReplicationJSON {
	if p := s.replStats.Load(); p != nil && *p != nil {
		return (*p)()
	}
	return nil
}

// TableNames returns every hosted table name, sorted. The replication
// stream uses it to resolve a shard reset into the local tables to drop.
func (s *Server) TableNames() []string { return s.reg.names() }

// ApplyPut installs tuples as table name's full contents — the replication
// apply path for a put record. Like RestoreTable it validates but never
// logs (the record is already durable on the leader) and never triggers a
// checkpoint; unlike the HTTP path it bypasses the read-only guard, which
// exists to keep CLIENT writes off a follower, not replicated ones.
func (s *Server) ApplyPut(name string, tuples []probtopk.Tuple) error {
	tab := probtopk.NewTable()
	for _, tp := range tuples {
		tab.Add(tp)
	}
	_, _, err := s.installTable(name, tab, false)
	return err
}

// ApplyAppend applies a replicated append record: clone, validate, publish,
// exactly like the HTTP append path minus logging and the durability mutex
// (the follower has no WAL to order against; per-table order comes from the
// entry lock, and the replication stream is single-threaded per shard
// anyway). An append that does not validate against the local state means
// the follower has diverged — the caller treats the error as "resync".
func (s *Server) ApplyAppend(name string, tuples []probtopk.Tuple) error {
	e, old, ok := s.reg.acquireMutate(name)
	if !ok {
		return fmt.Errorf("append to unknown table %q", name)
	}
	candidate := old.tab.Clone()
	for _, tp := range tuples {
		candidate.Add(tp)
	}
	if err := candidate.Validate(); err != nil {
		e.mu.Unlock()
		return err
	}
	if err := checkUniqueIDs(candidate); err != nil {
		e.mu.Unlock()
		return err
	}
	next := &tableState{tab: candidate, snap: candidate.Snapshot()}
	if e.idx != nil {
		indexed := true
		for _, tp := range tuples {
			if _, err := e.idx.Insert(tp); err != nil {
				// Unreachable for a validated candidate; drop the (now
				// partially updated) index rather than serve a divergent one.
				e.idx = nil
				indexed = false
				break
			}
		}
		if indexed {
			next.snap.SetIndexView(e.idx.Freeze())
		}
	}
	e.state.Store(next)
	e.mu.Unlock()
	s.cache.InvalidateTable(name)
	s.engine.Invalidate(old.tab)
	return nil
}

// ApplyDelete applies a replicated delete record (or a shard reset's
// table drop).
func (s *Server) ApplyDelete(name string) error {
	st, ok := s.reg.remove(name)
	if !ok {
		return fmt.Errorf("no table %q", name)
	}
	s.cache.InvalidateTable(name)
	s.engine.Invalidate(st.tab)
	return nil
}
