// Package server is the HTTP/JSON front-end over the probtopk query engine:
// a registry of named uncertain tables (uploaded as CSV or JSON, mutable by
// appending tuples) and query endpoints for top-k score distributions
// (single and batched), c-typical answer sets, and the §5 baseline
// semantics, all routed through one shared Engine.
//
// # Endpoints
//
//	GET    /healthz                           liveness probe
//	GET    /debug/stats                       cache and latency counters
//	GET    /tables                            list hosted tables
//	PUT    /tables/{name}                     create or replace a table
//	                                          (body: text/csv or JSON {"tuples": [...]})
//	GET    /tables/{name}                     table info (tuple count, version)
//	GET    /tables/{name}/csv                 download as CSV
//	DELETE /tables/{name}                     drop the table
//	POST   /tables/{name}/tuples              append tuples (JSON {"tuples": [...]})
//	GET    /tables/{name}/topk                top-k score distribution
//	POST   /tables/{name}/topk                same, query in the JSON body
//	POST   /tables/{name}/topk/batch          many (k, threshold) queries in one call
//	GET    /tables/{name}/typical             c-typical answer set
//	POST   /tables/{name}/typical             same, query in the JSON body
//	GET    /tables/{name}/baseline/{semantic} utopk | ukranks | ptk | globaltopk |
//	POST   /tables/{name}/baseline/{semantic}   intopk | expectedrank
//
// # Snapshot isolation
//
// Every published table state is an immutable probtopk.Snapshot with a
// process-unique identity, installed in the registry by an atomic pointer
// swap. A query loads the current snapshot and then holds NOTHING: the
// whole computation — preparation, dynamic program, cache fill — runs
// lock-free against frozen contents, so a slow query never delays an
// append, an append never waits behind queries, and a query always answers
// against exactly the state it started from (never a half-mutated one).
// Mutations build the successor state on a clone and publish it with one
// atomic swap; only mutations of the same table serialize against each
// other.
//
// # Derived-answer cache
//
// Every successful query answer is cached as its encoded JSON, keyed by
// (table name, snapshot identity, canonical query fingerprint). A repeated
// identical query — even one spelled differently but resolving to the same
// computation — is served from the cache without touching the dynamic
// program or re-encoding. Any mutation publishes a snapshot with a fresh,
// never-reused identity, so a hit can never be stale — even across
// delete/recreate cycles and however cache fills race with mutations —
// while the eager invalidation on mutation reclaims the dead entries' LRU
// slots. GET /debug/stats exposes hit/miss/latency counters for both this
// cache and the engine's prepared-snapshot cache.
//
// # Durability
//
// With Config.Durability set (topkd -data-dir), every mutation — table
// upload, append, delete — is appended to a write-ahead log BEFORE its new
// state is published: an acknowledged mutation survives a restart, and a
// mutation that cannot be logged is rejected with 503, leaving the served
// state untouched. A checkpoint periodically persists every table's
// current snapshot into a snapshot file and truncates the WAL behind it
// (see internal/persist). Queries are completely unaffected: they load
// immutable snapshots and never touch the log. On boot the daemon replays
// snapshot + WAL and installs the recovered tables with RestoreTable;
// snapshot identities are process-unique, so recovered tables carry fresh
// ones and no cache entry from a previous life can ever be resurrected.
// GET /debug/stats exposes WAL and checkpoint counters.
//
// # Sharding
//
// Config.Shards splits the serving stack N ways: the registry map, the
// mutation/durability mutex and the WAL (one segment sequence per shard)
// are sharded by table name (shard = persist.ShardOf(name, N), fnv32a),
// and the engine's prepared cache is split into N partitions of its own,
// routed by table identity — a different key, so a cache partition does
// not correspond to a registry shard. A mutation holds only its own
// shard's durability mutex across clone+validate+log+publish, so durable
// mutations of tables on different shards never serialize against each
// other; a checkpoint visits shards one at a time and writes the snapshot
// file with no mutation lock held. Queries hold no lock at any shard
// count and answers are byte-identical. GET /debug/stats breaks the WAL
// and cache counters down per shard.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	httppprof "net/http/pprof"
	"sync"
	"sync/atomic"
	"time"

	"probtopk"
	"probtopk/internal/persist"
	"probtopk/internal/server/anscache"
	"probtopk/internal/server/fairness"
	"probtopk/internal/server/flight"
)

// DefaultAnswerCacheSize is the default bound on cached derived answers.
const DefaultAnswerCacheSize = 1024

// maxBodyBytes bounds uploaded request bodies.
const maxBodyBytes = 32 << 20

// Config tunes a Server. The zero value serves with the default cache
// sizes, one shard, and no durability.
type Config struct {
	// AnswerCacheSize bounds the derived-answer cache: 0 means
	// DefaultAnswerCacheSize, negative disables the cache (every query
	// recomputes — the benchmark baseline).
	AnswerCacheSize int
	// EngineCacheSize bounds the engine's prepared-table cache: 0 means
	// probtopk.DefaultEngineCacheSize, negative disables it.
	EngineCacheSize int
	// Shards splits the serving stack N ways: the registry map and the
	// mutation/durability mutex by table name (persist.ShardOf), and the
	// engine's prepared cache into N identity-routed partitions. Mutations
	// — durable or not — of tables on different shards never serialize
	// against each other; queries are lock-free regardless and are
	// unaffected. <= 1 means one shard (the historical behavior). When
	// Durability is set the manager's shard count wins — the on-disk
	// layout is the truth — and this field is ignored.
	Shards int
	// Durability, when non-nil, makes every table mutation durable: the
	// mutation is appended to the table's WAL shard (fsynced per the
	// manager's policy) BEFORE the new state is published, so a mutation
	// the client saw acknowledged survives a restart. A mutation that
	// cannot be logged is rejected with 503 and leaves the served state
	// untouched. Recovered tables are installed at boot with RestoreTable.
	// The server adopts the manager's shard count.
	Durability *persist.Manager
	// EnablePprof mounts the net/http/pprof profiling handlers under
	// /debug/pprof/ (index, cmdline, profile, symbol, trace and the named
	// runtime profiles). Off by default: the handlers expose internals and
	// a CPU profile pauses nothing but costs cycles, so production
	// deployments opt in explicitly (topkd -pprof).
	EnablePprof bool
	// FollowerOf, when non-empty, is the replication address of the leader
	// this server mirrors (topkd -follow). It puts the server in READ-ONLY
	// mode: every mutating endpoint (table upload, append, delete) returns
	// 403 naming the leader, while queries serve from the local registry
	// exactly as usual — replicated state arrives through the Apply*
	// methods, never through HTTP. Mutually exclusive with Durability (a
	// follower's truth is the leader's WAL, not its own).
	FollowerOf string
	// Fairness, when non-nil, mounts the Stochastic Fair BLUE throttler in
	// front of every endpoint (topkd -fairness): requests from clients that
	// repeatedly exhausted the cold-query compute capacity are shed with
	// 429 + Retry-After, cold computations are gated by a bounded
	// concurrency semaphore, and queue-full events penalize only the
	// responsible client's buckets. The zero Config value selects the
	// defaults; see package fairness.
	Fairness *fairness.Config
}

// latency is a lock-free (count, total duration) pair.
type latency struct {
	count atomic.Uint64
	nanos atomic.Uint64
}

func (l *latency) record(d time.Duration) {
	l.count.Add(1)
	l.nanos.Add(uint64(d))
}

func (l *latency) json() LatencyJSON {
	return LatencyJSON{Count: l.count.Load(), TotalNs: l.nanos.Load()}
}

// Server hosts tables and serves queries over them. Construct with New; a
// Server is an http.Handler safe for concurrent use.
type Server struct {
	engine *probtopk.Engine
	reg    *registry
	cache  *anscache.Cache
	mux    *http.ServeMux
	start  time.Time

	// throttler, when non-nil, is the SFB fair-admission filter; handler is
	// the mux wrapped in its middleware (or the mux itself when fairness is
	// off). flight coalesces concurrent identical cold queries — keyed by
	// (table, snapshot id, fingerprint), so a mutation mid-flight changes
	// the key and stale fan-out is impossible.
	throttler *fairness.Throttler
	handler   http.Handler
	flight    flight.Group[flightResult]

	// durable, when non-nil, is the WAL+snapshot backend every mutation
	// logs to before publishing. durMu[s] orders logging against
	// publication for the tables of shard s. Appends hold it SHARED: their
	// per-table order is already serialized by the entry's mutation lock
	// (held across log+publish), so concurrent appends to different tables
	// of one shard may interleave freely in the shard's log — and under a
	// group-commit WAL (persist.Options.BatchFsync) they overlap their
	// fsyncs instead of queueing one behind another. Put and delete hold
	// it EXCLUSIVE (create/replace/remove races span tables), and a
	// checkpoint holds it exclusive while gathering the shard's states
	// after starting the shard's post-checkpoint segment — no append can
	// be between its log write and its publish at that instant, so a
	// checkpoint can never truncate a logged-but-unpublished record.
	// Mutations of tables on different shards hold different mutexes and
	// proceed in parallel; queries never touch any of them. Without a
	// durability backend the mutexes are unused (publication is just the
	// atomic swap under the entry lock), but nshards still shards the
	// registry map and the engine's cache partitions.
	durable *persist.Manager
	nshards int
	durMu   []sync.RWMutex
	// ckptMu serializes whole checkpoints (never held by mutations).
	ckptMu sync.Mutex

	// followerOf, when non-empty, is the leader address every rejected
	// write points at; see Config.FollowerOf.
	followerOf string
	// replStats, when set, supplies the /debug/stats replication block; see
	// SetReplicationStats.
	replStats atomic.Pointer[func() *ReplicationJSON]

	cached      latency // queries answered by the derived-answer cache
	computed    latency // queries that ran the engine
	coalesced   latency // queries that shared another caller's in-flight compute
	queryErrors atomic.Uint64
}

// shardOf routes a table name to its shard index.
func (s *Server) shardOf(name string) int { return persist.ShardOf(name, s.nshards) }

// Shards returns the server's shard count.
func (s *Server) Shards() int { return s.nshards }

// New returns a Server ready to serve.
func New(cfg Config) *Server {
	answerCap := cfg.AnswerCacheSize
	if answerCap == 0 {
		answerCap = DefaultAnswerCacheSize
	}
	engineCap := cfg.EngineCacheSize
	if engineCap == 0 {
		engineCap = probtopk.DefaultEngineCacheSize
	}
	nshards := cfg.Shards
	if nshards < 1 {
		nshards = 1
	}
	if cfg.Durability != nil {
		// The on-disk layout decides: the manager routes records with its
		// own shard count, and the per-shard durability mutex must cover
		// exactly the tables whose records it orders.
		nshards = cfg.Durability.Shards()
	}
	s := &Server{
		engine:     probtopk.NewEngineSharded(engineCap, nshards),
		reg:        newRegistry(nshards),
		cache:      anscache.New(answerCap),
		mux:        http.NewServeMux(),
		start:      time.Now(),
		durable:    cfg.Durability,
		nshards:    nshards,
		durMu:      make([]sync.RWMutex, nshards),
		followerOf: cfg.FollowerOf,
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /debug/stats", s.handleStats)
	s.mux.HandleFunc("GET /tables", s.handleListTables)
	s.mux.HandleFunc("PUT /tables/{name}", s.handlePutTable)
	s.mux.HandleFunc("GET /tables/{name}", s.handleGetTable)
	s.mux.HandleFunc("GET /tables/{name}/csv", s.handleGetTableCSV)
	s.mux.HandleFunc("DELETE /tables/{name}", s.handleDeleteTable)
	s.mux.HandleFunc("POST /tables/{name}/tuples", s.handleAppendTuples)
	s.mux.HandleFunc("GET /tables/{name}/topk", s.handleTopK)
	s.mux.HandleFunc("POST /tables/{name}/topk", s.handleTopK)
	s.mux.HandleFunc("POST /tables/{name}/topk/batch", s.handleBatch)
	s.mux.HandleFunc("GET /tables/{name}/typical", s.handleTypical)
	s.mux.HandleFunc("POST /tables/{name}/typical", s.handleTypical)
	s.mux.HandleFunc("GET /tables/{name}/baseline/{semantic}", s.handleBaseline)
	s.mux.HandleFunc("POST /tables/{name}/baseline/{semantic}", s.handleBaseline)
	if cfg.EnablePprof {
		s.mux.HandleFunc("GET /debug/pprof/", httppprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", httppprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", httppprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", httppprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", httppprof.Trace)
	}
	s.handler = s.mux
	if cfg.Fairness != nil {
		s.throttler = fairness.New(*cfg.Fairness)
		s.handler = s.throttler.Middleware(s.mux)
	}
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	s.handler.ServeHTTP(w, r)
}

// Engine returns the server's query engine (for tests and embedding).
func (s *Server) Engine() *probtopk.Engine { return s.engine }

// writeJSON encodes v as the response body with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		// Marshalling our own response types cannot fail unless a value is
		// non-finite; fail closed without echoing it.
		writeError(w, http.StatusInternalServerError, fmt.Errorf("encoding response: %v", err))
		return
	}
	writeRaw(w, status, data)
}

// writeRaw writes already-encoded JSON.
func writeRaw(w http.ResponseWriter, status int, data []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(data)
	w.Write([]byte("\n"))
}

// writeError writes the uniform error body. Error text reaching clients is
// built from request data and library validation messages only — never from
// file paths or other process internals.
func writeError(w http.ResponseWriter, status int, err error) {
	data, merr := json.Marshal(ErrorResponse{Error: err.Error()})
	if merr != nil {
		http.Error(w, `{"error":"internal error"}`, http.StatusInternalServerError)
		return
	}
	writeRaw(w, status, data)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	ans := s.cache.Stats()
	eng := s.engine.CacheStats()
	var dur *DurabilityJSON
	if s.durable != nil {
		st := s.durable.Stats()
		dur = &DurabilityJSON{
			WALRecords: st.WAL.Appends, WALBytes: st.WAL.AppendBytes,
			WALSyncs: st.WAL.Syncs, WALSegments: st.WAL.Segments,
			WALBatches:             st.WAL.Batches,
			WALFsyncsSaved:         st.WAL.FsyncsSaved,
			WALDirSyncErrors:       st.WAL.DirSyncErrors,
			RecordsSinceCheckpoint: st.RecordsSinceCheckpoint,
			Checkpoints:            st.Checkpoints,
			CheckpointErrors:       st.CheckpointErrors,
			LastCheckpointNs:       st.LastCheckpointNanos,
			ReplayedRecords:        st.ReplayedRecords,
			ReplayTruncated:        st.ReplayTruncated,
		}
		if st.WAL.Batches > 0 {
			dur.WALBatchSizes = append([]uint64(nil), st.WAL.BatchSizes[:]...)
		}
		for i, ss := range st.Shards {
			dur.Shards = append(dur.Shards, DurabilityShardJSON{
				Shard:      i,
				WALRecords: ss.WAL.Appends, WALBytes: ss.WAL.AppendBytes,
				WALSyncs: ss.WAL.Syncs, WALSegments: ss.WAL.Segments,
				WALBatches:             ss.WAL.Batches,
				WALFsyncsSaved:         ss.WAL.FsyncsSaved,
				RecordsSinceCheckpoint: ss.RecordsSinceCheckpoint,
			})
		}
	}
	var fair *FairnessJSON
	if s.throttler != nil {
		fs := s.throttler.Stats()
		fair = &FairnessJSON{
			Decisions: fs.Decisions, Sheds: fs.Sheds,
			ProbSheds: fs.ProbSheds, QueueSheds: fs.QueueSheds,
			Rotations:        fs.Rotations,
			ComputeInFlight:  fs.ComputeInFlight,
			ComputeWaiters:   fs.ComputeWaiters,
			TopShedders:      fs.Shedders,
			SheddersOverflow: fs.SheddersOverflow,
		}
		for i, l := range fs.Levels {
			fair.Levels = append(fair.Levels, FairnessLevelJSON{
				Level: i, HotBuckets: l.HotBuckets, MaxP: l.MaxP, Sheds: l.Sheds,
			})
		}
	}
	writeJSON(w, http.StatusOK, StatsResponse{
		Durability:  dur,
		Replication: s.replicationJSON(),
		Fairness:    fair,
		Shards:      s.nshards,
		Tables:      s.reg.len(),
		AnswerCache: CacheStatsJSON{
			Hits: ans.Hits, Misses: ans.Misses, Evictions: ans.Evictions,
			Invalidations: ans.Invalidations, Entries: ans.Entries,
			SavedNanos: ans.SavedNanos,
		},
		PreparedCache: CacheStatsJSON{
			Hits: eng.Hits, Misses: eng.Misses, Evictions: eng.Evictions,
			Entries: eng.Entries,
		},
		PreparedCachePartitions: eng.PartitionEntries,
		EngineQueries:           LatencyJSON{Count: eng.Queries, TotalNs: uint64(eng.QueryTime)},
		DynamicIndex: DynamicIndexJSON{
			Mutations:      eng.IndexMutations,
			ViewPrepares:   eng.ViewPrepares,
			MemoHits:       eng.IndexMemoHits,
			SuffixRebuilds: eng.IndexSuffixRebuilds,
			FullRebuilds:   eng.IndexFullRebuilds,
			ViewRebuilds:   eng.IndexViewRebuilds,
		},
		CachedQueries:    s.cached.json(),
		ComputedQueries:  s.computed.json(),
		CoalescedQueries: s.coalesced.json(),
		QueryErrors:      s.queryErrors.Load(),
		UptimeSeconds:    time.Since(s.start).Seconds(),
	})
}
