package server

import (
	"net/http/httptest"
	"testing"
)

func TestPprofGated(t *testing.T) {
	get := func(s *Server, path string) int {
		w := httptest.NewRecorder()
		s.ServeHTTP(w, httptest.NewRequest("GET", path, nil))
		return w.Code
	}
	off := New(Config{})
	if code := get(off, "/debug/pprof/"); code != 404 {
		t.Errorf("pprof disabled: GET /debug/pprof/ = %d, want 404", code)
	}
	on := New(Config{EnablePprof: true})
	if code := get(on, "/debug/pprof/"); code != 200 {
		t.Errorf("pprof enabled: GET /debug/pprof/ = %d, want 200", code)
	}
	if code := get(on, "/debug/pprof/heap"); code != 200 {
		t.Errorf("pprof enabled: GET /debug/pprof/heap = %d, want 200", code)
	}
}
