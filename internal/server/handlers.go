package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"probtopk"
	"probtopk/internal/server/anscache"
)

// --- table registry endpoints ---

func (s *Server) handleListTables(w http.ResponseWriter, r *http.Request) {
	resp := TablesResponse{Tables: []TableInfo{}}
	for _, name := range s.reg.names() {
		e, ok := s.reg.get(name)
		if !ok {
			continue // deleted between listing and lookup
		}
		e.mu.RLock()
		resp.Tables = append(resp.Tables, TableInfo{
			Name: name, Tuples: e.tab.Len(), Version: e.tab.Version(),
		})
		e.mu.RUnlock()
	}
	writeJSON(w, http.StatusOK, resp)
}

// checkUniqueIDs rejects tables with duplicate tuple ids: answers reference
// tuples by id, so ids must be unambiguous.
func checkUniqueIDs(tab *probtopk.Table) error {
	seen := make(map[string]bool, tab.Len())
	for _, tp := range tab.Tuples() {
		if seen[tp.ID] {
			return fmt.Errorf("duplicate tuple id %q", tp.ID)
		}
		seen[tp.ID] = true
	}
	return nil
}

// decodeTuplesJSON strictly parses the JSON {"tuples": [...]} body shared
// by table uploads and appends: unknown fields and trailing data are
// errors, like the query decoder.
func decodeTuplesJSON(body io.Reader) (*TableRequest, error) {
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	var req TableRequest
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("bad tuples JSON: %w", err)
	}
	if err := dec.Decode(&struct{}{}); err != io.EOF {
		return nil, fmt.Errorf("bad tuples JSON: trailing data after the object")
	}
	return &req, nil
}

// decodeTableBody parses an uploaded table: CSV when the Content-Type says
// so, the JSON {"tuples": [...]} shape otherwise.
func decodeTableBody(r *http.Request) (*probtopk.Table, error) {
	if ct := r.Header.Get("Content-Type"); strings.HasPrefix(ct, "text/csv") {
		tab, err := probtopk.ReadTableCSV(r.Body)
		if err != nil {
			return nil, err
		}
		return tab, nil
	}
	req, err := decodeTuplesJSON(r.Body)
	if err != nil {
		return nil, err
	}
	tab := probtopk.NewTable()
	for _, tp := range req.Tuples {
		tab.Add(probtopk.Tuple{ID: tp.ID, Score: tp.Score, Prob: tp.Prob, Group: tp.Group})
	}
	return tab, nil
}

// CreateTable installs tab under name, replacing any previous table — the
// programmatic equivalent of PUT /tables/{name}, used by the daemon's
// startup loader. It reports whether the name was new.
func (s *Server) CreateTable(name string, tab *probtopk.Table) (created bool, err error) {
	if err := checkTableName(name); err != nil {
		return false, err
	}
	if err := tab.Validate(); err != nil {
		return false, err
	}
	if err := checkUniqueIDs(tab); err != nil {
		return false, err
	}
	replaced := s.reg.put(name, tab)
	s.cache.InvalidateTable(name)
	if replaced != nil {
		s.engine.Invalidate(replaced)
	}
	return replaced == nil, nil
}

func (s *Server) handlePutTable(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	tab, err := decodeTableBody(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	created, err := s.CreateTable(name, tab)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	status := http.StatusOK
	if created {
		status = http.StatusCreated
	}
	writeJSON(w, status, TableInfo{Name: name, Tuples: tab.Len(), Version: tab.Version()})
}

func (s *Server) handleGetTable(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	e, ok := s.reg.acquireRead(name)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no table %q", name))
		return
	}
	info := TableInfo{Name: name, Tuples: e.tab.Len(), Version: e.tab.Version()}
	e.mu.RUnlock()
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleGetTableCSV(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	e, ok := s.reg.acquireRead(name)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no table %q", name))
		return
	}
	var buf bytes.Buffer
	err := e.tab.WriteCSV(&buf)
	e.mu.RUnlock()
	if err != nil {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("encoding csv"))
		return
	}
	w.Header().Set("Content-Type", "text/csv")
	w.WriteHeader(http.StatusOK)
	w.Write(buf.Bytes())
}

func (s *Server) handleDeleteTable(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	tab, ok := s.reg.remove(name)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no table %q", name))
		return
	}
	s.cache.InvalidateTable(name)
	s.engine.Invalidate(tab)
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleAppendTuples(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	req, err := decodeTuplesJSON(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(req.Tuples) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("no tuples to append"))
		return
	}
	e, ok := s.reg.acquireWrite(name)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no table %q", name))
		return
	}
	// Append onto a clone and validate the whole candidate, so a bad batch
	// leaves the served table untouched (all-or-nothing) and queries never
	// observe a half-appended state.
	old := e.tab
	candidate := old.Clone()
	for _, tp := range req.Tuples {
		candidate.Add(probtopk.Tuple{ID: tp.ID, Score: tp.Score, Prob: tp.Prob, Group: tp.Group})
	}
	if err := candidate.Validate(); err != nil {
		e.mu.Unlock()
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := checkUniqueIDs(candidate); err != nil {
		e.mu.Unlock()
		writeError(w, http.StatusBadRequest, err)
		return
	}
	e.tab = candidate
	e.gen = s.reg.nextGen()
	info := TableInfo{Name: name, Tuples: candidate.Len(), Version: candidate.Version()}
	e.mu.Unlock()
	s.cache.InvalidateTable(name) // reclaims the old generation's entries
	s.engine.Invalidate(old)
	writeJSON(w, http.StatusOK, info)
}

// --- query endpoints ---

// decodeRequest extracts the query from URL parameters (GET) or the JSON
// body (POST).
func decodeRequest(r *http.Request) (*QueryRequest, error) {
	if r.Method == http.MethodGet {
		return decodeQueryParams(r.URL.Query())
	}
	data, err := io.ReadAll(r.Body)
	if err != nil {
		return nil, fmt.Errorf("reading body: %v", err)
	}
	if len(bytes.TrimSpace(data)) == 0 {
		return nil, fmt.Errorf("empty query body")
	}
	return decodeQueryJSON(data)
}

func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	s.serveQuery(w, r, kindTopK, "")
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	s.serveQuery(w, r, kindBatch, "")
}

func (s *Server) handleTypical(w http.ResponseWriter, r *http.Request) {
	s.serveQuery(w, r, kindTypical, "")
}

func (s *Server) handleBaseline(w http.ResponseWriter, r *http.Request) {
	semantic := r.PathValue("semantic")
	if !baselineKinds[semantic] {
		writeError(w, http.StatusBadRequest, fmt.Errorf("unknown baseline %q (want utopk, ukranks, ptk, globaltopk, intopk or expectedrank)", semantic))
		return
	}
	s.serveQuery(w, r, kindBaseline, semantic)
}

// serveQuery is the shared read path: decode and resolve the query, try the
// derived-answer cache under the table's read lock, compute and fill on a
// miss.
func (s *Server) serveQuery(w http.ResponseWriter, r *http.Request, kind queryKind, baseline string) {
	start := time.Now()
	q, err := decodeRequest(r)
	if err != nil {
		s.queryErrors.Add(1)
		writeError(w, http.StatusBadRequest, err)
		return
	}
	rq, err := q.resolve(kind, baseline)
	if err != nil {
		s.queryErrors.Add(1)
		writeError(w, http.StatusBadRequest, err)
		return
	}
	name := r.PathValue("name")
	e, ok := s.reg.acquireRead(name)
	if !ok {
		s.queryErrors.Add(1)
		writeError(w, http.StatusNotFound, fmt.Errorf("no table %q", name))
		return
	}
	// The read lock is held through compute and the cache fill, but
	// released before any write to the client: a stalled client connection
	// must not wedge the table's pending writers (and, behind them, every
	// other reader). The generation in the key pins the exact published
	// state the answer came from, so the late Put of a query racing a
	// mutation can never be served for the successor state.
	key := anscache.Key{Table: name, Generation: e.gen, Query: rq.fingerprint()}
	if data, ok := s.cache.Get(key); ok {
		e.mu.RUnlock()
		s.cached.record(time.Since(start))
		writeRaw(w, http.StatusOK, data)
		return
	}
	resp, err := s.compute(e.tab, rq)
	if err != nil {
		e.mu.RUnlock()
		// The request was well-formed; the current table contents make it
		// unanswerable (empty table, no k co-existing tuples, ...).
		s.queryErrors.Add(1)
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	data, err := json.Marshal(resp)
	if err != nil {
		e.mu.RUnlock()
		s.queryErrors.Add(1)
		writeError(w, http.StatusInternalServerError, fmt.Errorf("encoding response: %v", err))
		return
	}
	s.cache.Put(key, data)
	e.mu.RUnlock()
	s.computed.record(time.Since(start))
	writeRaw(w, http.StatusOK, data)
}

// compute runs the resolved query against tab through the shared engine.
func (s *Server) compute(tab *probtopk.Table, rq *resolvedQuery) (any, error) {
	switch rq.kind {
	case kindTopK:
		d, err := s.engine.TopKDistribution(tab, rq.k, rq.options())
		if err != nil {
			return nil, err
		}
		return distResponse(rq.k, d), nil
	case kindBatch:
		ds, err := s.engine.TopKDistributionBatch(tab, rq.batch, rq.options())
		if err != nil {
			return nil, err
		}
		resp := BatchResponse{Results: make([]DistributionResponse, len(ds))}
		for i, d := range ds {
			resp.Results[i] = distResponse(rq.batch[i].K, d)
		}
		return resp, nil
	case kindTypical:
		d, err := s.engine.TopKDistribution(tab, rq.k, rq.options())
		if err != nil {
			return nil, err
		}
		lines, cost, err := d.Typical(rq.c)
		if err != nil {
			return nil, err
		}
		resp := TypicalResponse{K: rq.k, C: rq.c, Cost: cost, Lines: []LineJSON{}}
		for _, l := range lines {
			resp.Lines = append(resp.Lines, lineJSON(l))
		}
		resp.SpreadMean, resp.SpreadMax = probtopk.TypicalSpread(lines)
		return resp, nil
	case kindBaseline:
		return s.computeBaseline(tab, rq)
	}
	return nil, fmt.Errorf("unknown query kind %q", rq.kind)
}

func (s *Server) computeBaseline(tab *probtopk.Table, rq *resolvedQuery) (any, error) {
	resp := BaselineResponse{Semantic: rq.baseline, K: rq.k}
	switch rq.baseline {
	case "utopk":
		l, err := s.engine.UTopK(tab, rq.k)
		if err != nil {
			return nil, err
		}
		lj := lineJSON(l)
		resp.Line = &lj
	case "ukranks":
		rows, err := s.engine.UKRanks(tab, rq.k)
		if err != nil {
			return nil, err
		}
		resp.Ranks = []RankedTupleJSON{}
		for _, a := range rows {
			resp.Ranks = append(resp.Ranks, RankedTupleJSON{Rank: a.Rank, ID: a.ID, Score: a.Score, Prob: a.Prob})
		}
	case "ptk":
		resp.P = rq.p
		tps, err := s.engine.PTk(tab, rq.k, rq.p)
		if err != nil {
			return nil, err
		}
		resp.Tuples = tupleProbJSON(tps)
	case "globaltopk":
		tps, err := s.engine.GlobalTopK(tab, rq.k)
		if err != nil {
			return nil, err
		}
		resp.Tuples = tupleProbJSON(tps)
	case "intopk":
		tps, err := s.engine.InTopKProbs(tab, rq.k)
		if err != nil {
			return nil, err
		}
		resp.Tuples = tupleProbJSON(tps)
	case "expectedrank":
		rows, err := s.engine.ExpectedRankTopK(tab, rq.k)
		if err != nil {
			return nil, err
		}
		resp.Expected = []ExpectedRankJSON{}
		for _, a := range rows {
			resp.Expected = append(resp.Expected, ExpectedRankJSON{ID: a.ID, Score: a.Score, Prob: a.Prob, Rank: a.Rank})
		}
	default:
		return nil, fmt.Errorf("unknown baseline %q", rq.baseline)
	}
	return resp, nil
}

func tupleProbJSON(tps []probtopk.TupleProb) []TupleProbJSON {
	out := []TupleProbJSON{}
	for _, tp := range tps {
		out = append(out, TupleProbJSON{ID: tp.ID, Score: tp.Score, Prob: tp.Prob, InTopK: tp.InTopK})
	}
	return out
}
