package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"strings"
	"time"

	"probtopk"
	"probtopk/internal/server/anscache"
	"probtopk/internal/server/fairness"
)

// --- table registry endpoints ---

func (s *Server) handleListTables(w http.ResponseWriter, r *http.Request) {
	resp := TablesResponse{Tables: []TableInfo{}}
	for _, name := range s.reg.names() {
		st, ok := s.reg.load(name)
		if !ok {
			continue // deleted between listing and lookup
		}
		resp.Tables = append(resp.Tables, tableInfo(name, st))
	}
	writeJSON(w, http.StatusOK, resp)
}

// tableInfo describes one published table state.
func tableInfo(name string, st *tableState) TableInfo {
	return TableInfo{
		Name: name, Tuples: st.tab.Len(), Version: st.tab.Version(),
		Snapshot: st.snap.ID(),
	}
}

// checkUniqueIDs rejects tables with duplicate tuple ids: answers reference
// tuples by id, so ids must be unambiguous.
func checkUniqueIDs(tab *probtopk.Table) error {
	seen := make(map[string]bool, tab.Len())
	for _, tp := range tab.Tuples() {
		if seen[tp.ID] {
			return fmt.Errorf("duplicate tuple id %q", tp.ID)
		}
		seen[tp.ID] = true
	}
	return nil
}

// decodeTuplesJSON strictly parses the JSON {"tuples": [...]} body shared
// by table uploads and appends: unknown fields and trailing data are
// errors, like the query decoder.
func decodeTuplesJSON(body io.Reader) (*TableRequest, error) {
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	var req TableRequest
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("bad tuples JSON: %w", err)
	}
	if err := dec.Decode(&struct{}{}); err != io.EOF {
		return nil, fmt.Errorf("bad tuples JSON: trailing data after the object")
	}
	return &req, nil
}

// decodeTableBody parses an uploaded table: CSV when the Content-Type says
// so, the JSON {"tuples": [...]} shape otherwise.
func decodeTableBody(r *http.Request) (*probtopk.Table, error) {
	if ct := r.Header.Get("Content-Type"); strings.HasPrefix(ct, "text/csv") {
		tab, err := probtopk.ReadTableCSV(r.Body)
		if err != nil {
			return nil, err
		}
		return tab, nil
	}
	req, err := decodeTuplesJSON(r.Body)
	if err != nil {
		return nil, err
	}
	tab := probtopk.NewTable()
	for _, tp := range req.Tuples {
		tab.Add(probtopk.Tuple{ID: tp.ID, Score: tp.Score, Prob: tp.Prob, Group: tp.Group})
	}
	return tab, nil
}

// CreateTable installs tab under name, replacing any previous table — the
// programmatic equivalent of PUT /tables/{name}, used by the daemon's
// startup loader. It reports whether the name was new. On a durable server
// the installation is logged like any other mutation.
func (s *Server) CreateTable(name string, tab *probtopk.Table) (created bool, err error) {
	_, created, err = s.installTable(name, tab, true)
	return created, err
}

// RestoreTable installs a recovered table WITHOUT logging it: it came from
// the log, so it is already durable, and re-logging recovered state on
// every boot would grow the WAL without bound. The daemon calls this for
// each table persist.Open returned, before serving starts. The restored
// table's snapshot identity is freshly minted (identities are
// process-unique), so no cache entry from a previous process's life can be
// resurrected for it.
func (s *Server) RestoreTable(name string, tab *probtopk.Table) error {
	_, _, err := s.installTable(name, tab, false)
	return err
}

// createTable validates and publishes tab, returning the published state.
func (s *Server) createTable(name string, tab *probtopk.Table) (*tableState, bool, error) {
	return s.installTable(name, tab, true)
}

// installTable validates tab and publishes it under name. With logIt on a
// durable server, the put record is appended to the table's WAL shard
// before the registry swap, under the shard's durability mutex that orders
// that shard's serial log history against publication.
func (s *Server) installTable(name string, tab *probtopk.Table, logIt bool) (*tableState, bool, error) {
	if err := checkTableName(name); err != nil {
		return nil, false, err
	}
	if err := tab.Validate(); err != nil {
		return nil, false, err
	}
	if err := checkUniqueIDs(tab); err != nil {
		return nil, false, err
	}
	// Build the published state — snapshot plus dynamic index — outside the
	// durability critical section; the WAL append below only serializes the
	// cheap registry swap.
	st, idx := newTableState(tab)
	var published, replaced *tableState
	if s.durable != nil && logIt {
		shard := s.shardOf(name)
		s.durMu[shard].Lock()
		if err := s.durable.LogPut(name, tab.Tuples()); err != nil {
			s.durMu[shard].Unlock()
			return nil, false, &durabilityError{err}
		}
		published, replaced = s.reg.put(name, st, idx)
		s.durMu[shard].Unlock()
	} else {
		published, replaced = s.reg.put(name, st, idx)
	}
	s.cache.InvalidateTable(name)
	if replaced != nil {
		s.engine.Invalidate(replaced.tab)
	}
	if logIt {
		// Never on the restore path: mid-boot the registry holds only the
		// tables restored so far, and a checkpoint would truncate the WAL
		// against that partial state.
		s.maybeCheckpoint()
	}
	return published, replaced == nil, nil
}

// durabilityError marks a mutation rejected because it could not be made
// durable. The served state is untouched and the caller should retry;
// handlers map it to 503. Error carries the full cause so non-HTTP
// callers (the daemon's boot-time loader) surface it to the operator; the
// HTTP path writes a fixed message instead, because the cause may name
// file paths that must never reach clients.
type durabilityError struct{ err error }

func (e *durabilityError) Error() string { return "durability: " + e.err.Error() }
func (e *durabilityError) Unwrap() error { return e.err }

// writeMutationError routes a mutation failure to the right status:
// durability failures are 503 (retryable, server-side, detail logged but
// not echoed), everything else is the caller's 400.
func (s *Server) writeMutationError(w http.ResponseWriter, err error) {
	var de *durabilityError
	if errors.As(err, &de) {
		log.Printf("server: %v (mutation not applied)", de)
		writeError(w, http.StatusServiceUnavailable,
			errors.New("durable log unavailable; mutation not applied"))
		return
	}
	writeError(w, http.StatusBadRequest, err)
}

// maybeCheckpoint checkpoints the registry when enough mutations have
// accumulated, one shard at a time: for each shard it holds that shard's
// durability mutex just long enough to start the shard's post-checkpoint
// WAL segment (the watermark) and gather the shard's published states — so
// the persisted snapshot reflects every record below the watermark and the
// truncation behind it can never drop a record the snapshot missed — then
// moves on. Mutations only ever wait for their own shard's short gather
// window, never for the snapshot write; queries are unaffected throughout.
func (s *Server) maybeCheckpoint() {
	if s.durable == nil || !s.durable.CheckpointDue() {
		return
	}
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	if !s.durable.CheckpointDue() { // a racing mutation already checkpointed
		return
	}
	states := make(map[string]*probtopk.Snapshot)
	wms := make([]uint64, s.nshards)
	for shard := 0; shard < s.nshards; shard++ {
		s.durMu[shard].Lock()
		wm, err := s.durable.BeginShardCheckpoint(shard)
		if err != nil {
			s.durMu[shard].Unlock()
			// Nothing is lost: every shard's WAL still holds every record
			// and the old snapshot is intact. Retried after the next
			// mutation; segments already started are reused then.
			log.Printf("server: checkpoint failed (will retry): %v", err)
			return
		}
		wms[shard] = wm
		// Every record logged to this shard is also published while we
		// hold its mutex (log-before-publish runs under it), so the
		// gathered snapshots cover everything below the watermark.
		for _, name := range s.reg.shardNames(shard) {
			if st, ok := s.reg.load(name); ok {
				states[name] = st.snap
			}
		}
		s.durMu[shard].Unlock()
	}
	if err := s.durable.CompleteCheckpoint(states, wms); err != nil {
		log.Printf("server: checkpoint failed (will retry): %v", err)
	}
}

func (s *Server) handlePutTable(w http.ResponseWriter, r *http.Request) {
	if s.ReadOnly() {
		s.readOnlyError(w)
		return
	}
	name := r.PathValue("name")
	tab, err := decodeTableBody(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	st, created, err := s.createTable(name, tab)
	if err != nil {
		s.writeMutationError(w, err)
		return
	}
	status := http.StatusOK
	if created {
		status = http.StatusCreated
	}
	writeJSON(w, status, tableInfo(name, st))
}

func (s *Server) handleGetTable(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	st, ok := s.reg.load(name)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no table %q", name))
		return
	}
	writeJSON(w, http.StatusOK, tableInfo(name, st))
}

func (s *Server) handleGetTableCSV(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	st, ok := s.reg.load(name)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no table %q", name))
		return
	}
	// The published table is immutable; encoding needs no lock.
	var buf bytes.Buffer
	if err := st.tab.WriteCSV(&buf); err != nil {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("encoding csv"))
		return
	}
	w.Header().Set("Content-Type", "text/csv")
	w.WriteHeader(http.StatusOK)
	w.Write(buf.Bytes())
}

func (s *Server) handleDeleteTable(w http.ResponseWriter, r *http.Request) {
	if s.ReadOnly() {
		s.readOnlyError(w)
		return
	}
	name := r.PathValue("name")
	var st *tableState
	var ok bool
	if s.durable != nil {
		// Log before removing, under the table's shard durability mutex:
		// every mutation of this shard holds it, so the existence check
		// cannot go stale between the log append and the removal.
		shard := s.shardOf(name)
		s.durMu[shard].Lock()
		if _, ok = s.reg.load(name); !ok {
			s.durMu[shard].Unlock()
			writeError(w, http.StatusNotFound, fmt.Errorf("no table %q", name))
			return
		}
		if err := s.durable.LogDelete(name); err != nil {
			s.durMu[shard].Unlock()
			s.writeMutationError(w, &durabilityError{err})
			return
		}
		st, ok = s.reg.remove(name)
		s.durMu[shard].Unlock()
	} else {
		st, ok = s.reg.remove(name)
	}
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no table %q", name))
		return
	}
	s.cache.InvalidateTable(name)
	s.engine.Invalidate(st.tab)
	s.maybeCheckpoint()
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleAppendTuples(w http.ResponseWriter, r *http.Request) {
	if s.ReadOnly() {
		s.readOnlyError(w)
		return
	}
	name := r.PathValue("name")
	req, err := decodeTuplesJSON(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(req.Tuples) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("no tuples to append"))
		return
	}
	// Lock order on a durable server: the table's shard durability mutex,
	// then the entry's mutation lock — the same order the put path takes
	// through reg.put, so the two can never deadlock (no path ever holds
	// two shards' mutexes at once). Queries take neither. Appends hold the
	// shard mutex SHARED: per-table log/publish order comes from the entry
	// lock held across both, while appends to different tables of the same
	// shard overlap — under a group-commit WAL their fsyncs coalesce into
	// one (see the durMu comment in server.go). Appends to tables on
	// different shards hold different mutexes entirely.
	shard := s.shardOf(name)
	if s.durable != nil {
		s.durMu[shard].RLock()
	}
	e, old, ok := s.reg.acquireMutate(name)
	if !ok {
		if s.durable != nil {
			s.durMu[shard].RUnlock()
		}
		writeError(w, http.StatusNotFound, fmt.Errorf("no table %q", name))
		return
	}
	unlock := func() {
		e.mu.Unlock()
		if s.durable != nil {
			s.durMu[shard].RUnlock()
		}
	}
	// Append onto a clone and validate the whole candidate, so a bad batch
	// leaves the served table untouched (all-or-nothing) and queries never
	// observe a half-appended state. Only other mutations wait on the entry
	// lock; in-flight queries keep reading the old published snapshot and
	// never delay the swap.
	candidate := old.tab.Clone()
	appended := make([]probtopk.Tuple, 0, len(req.Tuples))
	for _, tp := range req.Tuples {
		appended = append(appended, probtopk.Tuple{ID: tp.ID, Score: tp.Score, Prob: tp.Prob, Group: tp.Group})
		candidate.Add(appended[len(appended)-1])
	}
	if err := candidate.Validate(); err != nil {
		unlock()
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := checkUniqueIDs(candidate); err != nil {
		unlock()
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// Log the (validated) append before the swap: an acknowledged append
	// is durable, a failed log leaves the served table untouched.
	if s.durable != nil {
		if err := s.durable.LogAppend(name, appended); err != nil {
			unlock()
			s.writeMutationError(w, &durabilityError{err})
			return
		}
	}
	next := &tableState{tab: candidate, snap: candidate.Snapshot()}
	// Extend the table's live dynamic index with the appended tuples —
	// O(log n) each, wherever they land in the rank order — and attach its
	// frozen view to the new snapshot, so the engine's next preparation
	// re-derives only the rank suffix below the lowest insertion instead of
	// sorting the whole table. The index's sequence numbers follow arrival
	// order, so its canonical tie-breaking is identical to Prepare's stable
	// sort of the snapshot.
	if e.idx != nil {
		indexed := true
		for _, tp := range appended {
			if _, err := e.idx.Insert(tp); err != nil {
				// Unreachable for a validated candidate; drop the (now
				// partially updated) index rather than serve a divergent one.
				e.idx = nil
				indexed = false
				break
			}
		}
		if indexed {
			next.snap.SetIndexView(e.idx.Freeze())
		}
	}
	e.state.Store(next)
	unlock()
	s.cache.InvalidateTable(name) // reclaims the old snapshot's entries
	s.engine.Invalidate(old.tab)
	s.maybeCheckpoint()
	writeJSON(w, http.StatusOK, tableInfo(name, next))
}

// --- query endpoints ---

// decodeRequest extracts the query from URL parameters (GET) or the JSON
// body (POST).
func decodeRequest(r *http.Request) (*QueryRequest, error) {
	if r.Method == http.MethodGet {
		return decodeQueryParams(r.URL.Query())
	}
	data, err := io.ReadAll(r.Body)
	if err != nil {
		return nil, fmt.Errorf("reading body: %v", err)
	}
	if len(bytes.TrimSpace(data)) == 0 {
		return nil, fmt.Errorf("empty query body")
	}
	return decodeQueryJSON(data)
}

func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	s.serveQuery(w, r, kindTopK, "")
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	s.serveQuery(w, r, kindBatch, "")
}

func (s *Server) handleTypical(w http.ResponseWriter, r *http.Request) {
	s.serveQuery(w, r, kindTypical, "")
}

func (s *Server) handleBaseline(w http.ResponseWriter, r *http.Request) {
	semantic := r.PathValue("semantic")
	if !baselineKinds[semantic] {
		writeError(w, http.StatusBadRequest, fmt.Errorf("unknown baseline %q (want utopk, ukranks, ptk, globaltopk, intopk or expectedrank)", semantic))
		return
	}
	s.serveQuery(w, r, kindBaseline, semantic)
}

// flightResult is the value fanned out by a coalesced cold-query flight:
// an encoded answer on success, an HTTP status + message otherwise. The
// zero value (status 0) marks a flight whose leader died; followers map it
// to 500.
type flightResult struct {
	data   []byte
	status int
	errMsg string
}

// serveQuery is the shared read path: decode and resolve the query, load
// the table's published snapshot, try the derived-answer cache, and on a
// miss join the coalesced flight that computes and fills. No lock is held
// at any point — the snapshot is immutable, so the dynamic program runs
// entirely outside the mutation path, a slow query never delays an append,
// and a stalled client connection can wedge nothing. The snapshot identity
// in both the cache key and the flight key pins the exact published state
// the answer came from, so the late Put of a query racing a mutation can
// never be served for the successor state, and a flight follower can never
// receive an answer for a snapshot other than the one it asked about.
func (s *Server) serveQuery(w http.ResponseWriter, r *http.Request, kind queryKind, baseline string) {
	start := time.Now()
	q, err := decodeRequest(r)
	if err != nil {
		s.queryErrors.Add(1)
		writeError(w, http.StatusBadRequest, err)
		return
	}
	rq, err := q.resolve(kind, baseline)
	if err != nil {
		s.queryErrors.Add(1)
		writeError(w, http.StatusBadRequest, err)
		return
	}
	name := r.PathValue("name")
	st, ok := s.reg.load(name)
	if !ok {
		s.queryErrors.Add(1)
		writeError(w, http.StatusNotFound, fmt.Errorf("no table %q", name))
		return
	}
	key := anscache.Key{Table: name, Snapshot: st.snap.ID(), Query: rq.fingerprint()}
	if data, ok := s.cache.Get(key); ok {
		s.cached.record(time.Since(start))
		writeRaw(w, http.StatusOK, data)
		return
	}
	var client string
	if s.throttler != nil {
		client = fairness.ClientID(r)
	}
	fkey := fmt.Sprintf("%s\x00%d\x00%s", name, st.snap.ID(), rq.fingerprint())
	res, shared := s.flight.Do(fkey, func() flightResult {
		return s.computeAndFill(st.snap, rq, key, client)
	})
	if res.status != http.StatusOK {
		s.queryErrors.Add(1)
		switch {
		case res.status == http.StatusTooManyRequests && s.throttler != nil:
			// Genuine shortage: the cold-query gate was exhausted. The
			// throttler already penalized the client; answer like the
			// middleware would.
			s.throttler.WriteShed(w)
		case res.status == 0:
			writeError(w, http.StatusInternalServerError, fmt.Errorf("internal error"))
		default:
			writeError(w, res.status, fmt.Errorf("%s", res.errMsg))
		}
		return
	}
	if shared {
		s.coalesced.record(time.Since(start))
	} else {
		s.computed.record(time.Since(start))
	}
	writeRaw(w, http.StatusOK, res.data)
}

// computeAndFill is the flight leader's body: pass the fairness compute
// gate, run the engine against the pinned snapshot, encode, and fill the
// cache recording the measured recompute cost (what a future hit saves —
// the currency of the cost-aware eviction policy).
func (s *Server) computeAndFill(snap *probtopk.Snapshot, rq *resolvedQuery, key anscache.Key, client string) flightResult {
	if s.throttler != nil {
		release, ok := s.throttler.AcquireCompute(client)
		if !ok {
			return flightResult{status: http.StatusTooManyRequests, errMsg: "overloaded: cold-query capacity exhausted"}
		}
		defer release()
	}
	costStart := time.Now()
	resp, err := s.compute(snap, rq)
	if err != nil {
		// The request was well-formed; the queried contents make it
		// unanswerable (empty table, no k co-existing tuples, ...).
		return flightResult{status: http.StatusUnprocessableEntity, errMsg: err.Error()}
	}
	data, err := json.Marshal(resp)
	if err != nil {
		return flightResult{status: http.StatusInternalServerError, errMsg: fmt.Sprintf("encoding response: %v", err)}
	}
	s.cache.Put(key, data, time.Since(costStart))
	return flightResult{data: data, status: http.StatusOK}
}

// compute runs the resolved query against the immutable snapshot through
// the shared engine.
func (s *Server) compute(snap *probtopk.Snapshot, rq *resolvedQuery) (any, error) {
	switch rq.kind {
	case kindTopK:
		d, err := s.engine.TopKDistributionSnapshot(snap, rq.k, rq.options())
		if err != nil {
			return nil, err
		}
		return distResponse(rq.k, d), nil
	case kindBatch:
		ds, err := s.engine.TopKDistributionBatchSnapshot(snap, rq.batch, rq.options())
		if err != nil {
			return nil, err
		}
		resp := BatchResponse{Results: make([]DistributionResponse, len(ds))}
		for i, d := range ds {
			resp.Results[i] = distResponse(rq.batch[i].K, d)
		}
		return resp, nil
	case kindTypical:
		d, err := s.engine.TopKDistributionSnapshot(snap, rq.k, rq.options())
		if err != nil {
			return nil, err
		}
		lines, cost, err := d.Typical(rq.c)
		if err != nil {
			return nil, err
		}
		resp := TypicalResponse{K: rq.k, C: rq.c, Cost: cost, Lines: []LineJSON{}}
		for _, l := range lines {
			resp.Lines = append(resp.Lines, lineJSON(l))
		}
		resp.SpreadMean, resp.SpreadMax = probtopk.TypicalSpread(lines)
		return resp, nil
	case kindBaseline:
		return s.computeBaseline(snap, rq)
	}
	return nil, fmt.Errorf("unknown query kind %q", rq.kind)
}

func (s *Server) computeBaseline(snap *probtopk.Snapshot, rq *resolvedQuery) (any, error) {
	resp := BaselineResponse{Semantic: rq.baseline, K: rq.k}
	switch rq.baseline {
	case "utopk":
		l, err := s.engine.UTopKSnapshot(snap, rq.k)
		if err != nil {
			return nil, err
		}
		lj := lineJSON(l)
		resp.Line = &lj
	case "ukranks":
		rows, err := s.engine.UKRanksSnapshot(snap, rq.k)
		if err != nil {
			return nil, err
		}
		resp.Ranks = []RankedTupleJSON{}
		for _, a := range rows {
			resp.Ranks = append(resp.Ranks, RankedTupleJSON{Rank: a.Rank, ID: a.ID, Score: a.Score, Prob: a.Prob})
		}
	case "ptk":
		resp.P = rq.p
		tps, err := s.engine.PTkSnapshot(snap, rq.k, rq.p)
		if err != nil {
			return nil, err
		}
		resp.Tuples = tupleProbJSON(tps)
	case "globaltopk":
		tps, err := s.engine.GlobalTopKSnapshot(snap, rq.k)
		if err != nil {
			return nil, err
		}
		resp.Tuples = tupleProbJSON(tps)
	case "intopk":
		tps, err := s.engine.InTopKProbsSnapshot(snap, rq.k)
		if err != nil {
			return nil, err
		}
		resp.Tuples = tupleProbJSON(tps)
	case "expectedrank":
		rows, err := s.engine.ExpectedRankTopKSnapshot(snap, rq.k)
		if err != nil {
			return nil, err
		}
		resp.Expected = []ExpectedRankJSON{}
		for _, a := range rows {
			resp.Expected = append(resp.Expected, ExpectedRankJSON{ID: a.ID, Score: a.Score, Prob: a.Prob, Rank: a.Rank})
		}
	default:
		return nil, fmt.Errorf("unknown baseline %q", rq.baseline)
	}
	return resp, nil
}

func tupleProbJSON(tps []probtopk.TupleProb) []TupleProbJSON {
	out := []TupleProbJSON{}
	for _, tp := range tps {
		out = append(out, TupleProbJSON{ID: tp.ID, Score: tp.Score, Prob: tp.Prob, InTopK: tp.InTopK})
	}
	return out
}
