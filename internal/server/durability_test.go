package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"probtopk/internal/persist"
	"probtopk/internal/persist/crashtest"
)

// durableLife is one process life of a durable server: boot recovers the
// data dir, crash abandons it (closing flushes nothing — it only releases
// the data-dir lock a successor needs).
type durableLife struct {
	*Server
	man *persist.Manager
}

func (l *durableLife) crash() { l.man.Close() }

// bootDurable opens a durability manager over dir, restores whatever it
// recovered, and returns the serving life — the daemon's boot sequence in
// miniature. Crash the previous life first: the data dir is flock-guarded
// against two live processes.
func bootDurable(t *testing.T, dir string, opts persist.Options) *durableLife {
	t.Helper()
	man, tables, err := persist.Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { man.Close() })
	s := New(Config{Durability: man})
	names := make([]string, 0, len(tables))
	for name := range tables {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if err := s.RestoreTable(name, tables[name]); err != nil {
			t.Fatal(err)
		}
	}
	return &durableLife{Server: s, man: man}
}

func doReq(t *testing.T, s http.Handler, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	var req *http.Request
	if body == "" {
		req = httptest.NewRequest(method, path, nil)
	} else {
		req = httptest.NewRequest(method, path, strings.NewReader(body))
	}
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	return w
}

const durableFleet = `{"tuples": [
	{"id": "car1", "score": 80, "prob": 0.9},
	{"id": "car2", "score": 70, "prob": 0.4, "group": "lane3"},
	{"id": "car3", "score": 65, "prob": 0.5, "group": "lane3"}]}`

// TestDurableMutationsSurviveRestart drives the full HTTP mutation surface
// against a durable server, "crashes" it, boots a successor over the same
// directory, and asserts the successor serves byte-identical answers.
func TestDurableMutationsSurviveRestart(t *testing.T) {
	dir := t.TempDir()
	s1 := bootDurable(t, dir, persist.Options{})
	if w := doReq(t, s1, "PUT", "/tables/fleet", durableFleet); w.Code != http.StatusCreated {
		t.Fatalf("put: %d %s", w.Code, w.Body.String())
	}
	if w := doReq(t, s1, "POST", "/tables/fleet/tuples", `{"tuples": [{"id": "car4", "score": 90, "prob": 0.7}]}`); w.Code != http.StatusOK {
		t.Fatalf("append: %d %s", w.Code, w.Body.String())
	}
	if w := doReq(t, s1, "PUT", "/tables/doomed", `{"tuples": [{"id": "x", "score": 1, "prob": 0.5}]}`); w.Code != http.StatusCreated {
		t.Fatalf("put doomed: %d", w.Code)
	}
	if w := doReq(t, s1, "DELETE", "/tables/doomed", ""); w.Code != http.StatusNoContent {
		t.Fatalf("delete: %d", w.Code)
	}
	// A rejected mutation must not be logged: the bad batch leaves no trace.
	if w := doReq(t, s1, "POST", "/tables/fleet/tuples", `{"tuples": [{"id": "bad", "score": 1, "prob": 7}]}`); w.Code != http.StatusBadRequest {
		t.Fatalf("bad append: %d", w.Code)
	}
	answers := func(s http.Handler) map[string]string {
		out := map[string]string{}
		for _, q := range []string{
			"/tables/fleet/topk?k=2",
			"/tables/fleet/typical?k=2&c=2",
			"/tables/fleet/baseline/utopk?k=2",
		} {
			w := doReq(t, s, "GET", q, "")
			if w.Code != http.StatusOK {
				t.Fatalf("query %s: %d %s", q, w.Code, w.Body.String())
			}
			out[q] = w.Body.String()
		}
		return out
	}
	before := answers(s1)

	// The successor process: same dir, fresh manager, fresh server.
	s1.crash()
	s2 := bootDurable(t, dir, persist.Options{})
	if w := doReq(t, s2, "GET", "/tables/doomed", ""); w.Code != http.StatusNotFound {
		t.Fatalf("deleted table resurrected: %d", w.Code)
	}
	after := answers(s2)
	for q, want := range before {
		if after[q] != want {
			t.Fatalf("query %s differs after restart:\nbefore %s\nafter  %s", q, want, after[q])
		}
	}
	// And the recovered table keeps accepting durable mutations.
	if w := doReq(t, s2, "POST", "/tables/fleet/tuples", `{"tuples": [{"id": "car5", "score": 60, "prob": 0.3}]}`); w.Code != http.StatusOK {
		t.Fatalf("append after restart: %d %s", w.Code, w.Body.String())
	}
	s2.crash()
	s3 := bootDurable(t, dir, persist.Options{})
	var info TableInfo
	if w := doReq(t, s3, "GET", "/tables/fleet", ""); w.Code != http.StatusOK {
		t.Fatalf("info: %d", w.Code)
	} else if err := json.Unmarshal(w.Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}
	if info.Tuples != 5 {
		t.Fatalf("after second restart fleet has %d tuples, want 5", info.Tuples)
	}
}

// TestDurableCheckpointing exercises the auto-checkpoint path: with
// CheckpointEvery=2 a burst of mutations must checkpoint, truncate the
// WAL, and still recover everything — including when the replayed WAL is
// already past the threshold at boot (restore must never checkpoint a
// partially rebuilt registry).
func TestDurableCheckpointing(t *testing.T) {
	dir := t.TempDir()
	s1 := bootDurable(t, dir, persist.Options{CheckpointEvery: 2})
	for _, name := range []string{"a", "b", "c", "d"} {
		if w := doReq(t, s1, "PUT", "/tables/"+name, durableFleet); w.Code != http.StatusCreated {
			t.Fatalf("put %s: %d", name, w.Code)
		}
	}
	var stats StatsResponse
	if w := doReq(t, s1, "GET", "/debug/stats", ""); w.Code != http.StatusOK {
		t.Fatalf("stats: %d", w.Code)
	} else if err := json.Unmarshal(w.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Durability == nil {
		t.Fatal("stats missing durability block")
	}
	if stats.Durability.Checkpoints == 0 {
		t.Fatalf("no checkpoint after 4 mutations at every=2: %+v", stats.Durability)
	}
	if stats.Durability.RecordsSinceCheckpoint >= 2 {
		t.Fatalf("WAL not truncated: %+v", stats.Durability)
	}

	// Boot a successor with a tiny threshold whose replayed WAL may
	// already be "due": all four tables must survive restore.
	s1.crash()
	s2 := bootDurable(t, dir, persist.Options{CheckpointEvery: 1})
	w := doReq(t, s2, "GET", "/tables", "")
	var tl TablesResponse
	if err := json.Unmarshal(w.Body.Bytes(), &tl); err != nil {
		t.Fatal(err)
	}
	if len(tl.Tables) != 4 {
		t.Fatalf("recovered %d tables, want 4: %s", len(tl.Tables), w.Body.String())
	}
	// One more mutation flushes the due checkpoint against the FULL
	// registry; a third boot still sees everything.
	if w := doReq(t, s2, "DELETE", "/tables/d", ""); w.Code != http.StatusNoContent {
		t.Fatalf("delete: %d", w.Code)
	}
	s2.crash()
	s3 := bootDurable(t, dir, persist.Options{})
	w = doReq(t, s3, "GET", "/tables", "")
	if err := json.Unmarshal(w.Body.Bytes(), &tl); err != nil {
		t.Fatal(err)
	}
	if len(tl.Tables) != 3 {
		t.Fatalf("after checkpointed delete recovered %d tables: %s", len(tl.Tables), w.Body.String())
	}
}

// TestDurabilityFailureRejectsMutation injects a dead disk (zero write
// budget) and asserts mutations are rejected with 503, leave the served
// state exactly as it was, and leak no internal details to the client.
func TestDurabilityFailureRejectsMutation(t *testing.T) {
	dir := t.TempDir()
	// A healthy first life hosts a table.
	s1 := bootDurable(t, dir, persist.Options{})
	if w := doReq(t, s1, "PUT", "/tables/fleet", durableFleet); w.Code != http.StatusCreated {
		t.Fatalf("put: %d", w.Code)
	}
	// The second life's disk dies after boot: the WAL open succeeds (the
	// budget covers it), then every logged write fails.
	s1.crash()
	budget := crashtest.NewBudget(16) // enough for nothing beyond open
	s2 := bootDurable(t, dir, persist.Options{OpenFile: budget.OpenFile})

	if w := doReq(t, s2, "POST", "/tables/fleet/tuples", `{"tuples": [{"id": "car9", "score": 9, "prob": 0.9}]}`); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("append on dead disk: %d %s", w.Code, w.Body.String())
	} else if strings.Contains(w.Body.String(), dir) {
		t.Fatalf("error leaks the data dir: %s", w.Body.String())
	}
	if w := doReq(t, s2, "PUT", "/tables/other", durableFleet); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("put on dead disk: %d", w.Code)
	}
	if w := doReq(t, s2, "DELETE", "/tables/fleet", ""); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("delete on dead disk: %d", w.Code)
	}
	// The served state is exactly the pre-failure state...
	var info TableInfo
	w := doReq(t, s2, "GET", "/tables/fleet", "")
	if err := json.Unmarshal(w.Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}
	if info.Tuples != 3 {
		t.Fatalf("failed mutations changed the table: %+v", info)
	}
	if w := doReq(t, s2, "GET", "/tables/other", ""); w.Code != http.StatusNotFound {
		t.Fatalf("failed put half-registered a table: %d", w.Code)
	}
	// ...and so is the durable state.
	s2.crash()
	s3 := bootDurable(t, dir, persist.Options{})
	w = doReq(t, s3, "GET", "/tables/fleet", "")
	if err := json.Unmarshal(w.Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}
	if info.Tuples != 3 {
		t.Fatalf("durable state drifted: %+v", info)
	}
}

// TestNonDurableServerHasNoDurabilityStats pins the zero-config behavior:
// no durability block, mutations untouched.
func TestNonDurableServerHasNoDurabilityStats(t *testing.T) {
	s := New(Config{})
	if w := doReq(t, s, "PUT", "/tables/fleet", durableFleet); w.Code != http.StatusCreated {
		t.Fatalf("put: %d", w.Code)
	}
	var stats StatsResponse
	w := doReq(t, s, "GET", "/debug/stats", "")
	if err := json.Unmarshal(w.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Durability != nil {
		t.Fatalf("unexpected durability block: %+v", stats.Durability)
	}
}

// TestBatchedDurabilitySurvivesRestart: a server on a group-commit WAL
// (-fsync=batch) acknowledges concurrent appends, reports batch counters
// on /debug/stats, and a successor recovers every acknowledged mutation.
func TestBatchedDurabilitySurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	opts := persist.Options{Fsync: true, BatchFsync: true, MaxBatchDelay: 50 * time.Millisecond}
	s1 := bootDurable(t, dir, opts)
	names := []string{"fleet0", "fleet1", "fleet2", "fleet3"}
	for _, name := range names {
		if w := doReq(t, s1, "PUT", "/tables/"+name, durableFleet); w.Code != http.StatusCreated {
			t.Fatalf("put %s: %d", name, w.Code)
		}
	}
	var wg sync.WaitGroup
	codes := make([]int, len(names))
	for i, name := range names {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			w := doReq(t, s1, "POST", "/tables/"+name+"/tuples", `{"tuples": [{"id": "x", "score": 90, "prob": 0.7}]}`)
			codes[i] = w.Code
		}(i, name)
	}
	wg.Wait()
	for i, code := range codes {
		if code != http.StatusOK {
			t.Fatalf("batched append %d: %d", i, code)
		}
	}
	var stats StatsResponse
	w := doReq(t, s1, "GET", "/debug/stats", "")
	if err := json.Unmarshal(w.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Durability == nil || stats.Durability.WALBatches == 0 {
		t.Fatalf("no group commits reported: %+v", stats.Durability)
	}
	var hist uint64
	for _, c := range stats.Durability.WALBatchSizes {
		hist += c
	}
	if hist != stats.Durability.WALBatches {
		t.Fatalf("batch histogram sums to %d, want %d", hist, stats.Durability.WALBatches)
	}
	s1.crash()
	s2 := bootDurable(t, dir, persist.Options{})
	for _, name := range names {
		var info TableInfo
		w := doReq(t, s2, "GET", "/tables/"+name, "")
		if err := json.Unmarshal(w.Body.Bytes(), &info); err != nil {
			t.Fatal(err)
		}
		if info.Tuples != 4 {
			t.Fatalf("recovered %s with %d tuples, want 4", name, info.Tuples)
		}
	}
}

// TestBatchFsyncFailure503sWholeBatch: when the shared group-commit fsync
// fails, EVERY request in the batch gets 503 — none may be told its
// mutation is durable — the served state stays exactly as it was, and so
// does the durable state a successor recovers.
func TestBatchFsyncFailure503sWholeBatch(t *testing.T) {
	dir := t.TempDir()
	s1 := bootDurable(t, dir, persist.Options{})
	names := []string{"fleet0", "fleet1", "fleet2", "fleet3"}
	for _, name := range names {
		if w := doReq(t, s1, "PUT", "/tables/"+name, durableFleet); w.Code != http.StatusCreated {
			t.Fatalf("put %s: %d", name, w.Code)
		}
	}
	s1.crash()
	budget := crashtest.NewBudget(1 << 20) // writes land; the fsync is what dies
	s2 := bootDurable(t, dir, persist.Options{
		Fsync: true, BatchFsync: true, MaxBatchDelay: 50 * time.Millisecond,
		OpenFile: budget.OpenFile,
	})
	budget.LimitSyncs(0)
	var wg sync.WaitGroup
	codes := make([]int, len(names))
	bodies := make([]string, len(names))
	for i, name := range names {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			w := doReq(t, s2, "POST", "/tables/"+name+"/tuples", `{"tuples": [{"id": "x", "score": 90, "prob": 0.7}]}`)
			codes[i], bodies[i] = w.Code, w.Body.String()
		}(i, name)
	}
	wg.Wait()
	for i, code := range codes {
		if code != http.StatusServiceUnavailable {
			t.Fatalf("append %d in failed batch: %d %s", i, code, bodies[i])
		}
		if strings.Contains(bodies[i], dir) {
			t.Fatalf("error leaks the data dir: %s", bodies[i])
		}
	}
	// The log is broken: later mutations stay rejected.
	if w := doReq(t, s2, "POST", "/tables/fleet0/tuples", `{"tuples": [{"id": "y", "score": 1, "prob": 0.5}]}`); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("append after failed batch fsync: %d", w.Code)
	}
	// Served state unchanged...
	for _, name := range names {
		var info TableInfo
		w := doReq(t, s2, "GET", "/tables/"+name, "")
		if err := json.Unmarshal(w.Body.Bytes(), &info); err != nil {
			t.Fatal(err)
		}
		if info.Tuples != 3 {
			t.Fatalf("failed batch changed served table %s: %+v", name, info)
		}
	}
	// ...and so is the durable state.
	s2.crash()
	s3 := bootDurable(t, dir, persist.Options{})
	for _, name := range names {
		var info TableInfo
		w := doReq(t, s3, "GET", "/tables/"+name, "")
		if err := json.Unmarshal(w.Body.Bytes(), &info); err != nil {
			t.Fatal(err)
		}
		if info.Tuples != 3 {
			t.Fatalf("failed batch leaked into durable state of %s: %+v", name, info)
		}
	}
}
