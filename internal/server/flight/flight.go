// Package flight coalesces concurrent duplicate computations: when many
// callers ask for the same key at once (a cache-miss stampede on a popular
// cold query), exactly one runs the computation and every concurrent
// caller shares its result.
//
// Unlike a cache, a Group holds no state for quiescent keys — the moment
// the leader finishes, the key is forgotten and a later call computes
// afresh. The store of record (here, the answer cache) sits in front; the
// Group only absorbs the window where the store is cold AND popular.
//
// Staleness is the caller's contract: the key must pin everything the
// result depends on. The server keys flights on (table, snapshot id, query
// fingerprint), and snapshot ids are process-unique and never reused, so a
// follower joining a flight can only ever receive the answer for exactly
// the snapshot it asked about — a mutation mid-flight changes the id and
// therefore the key.
package flight

import "sync"

// call is one in-progress computation: followers block on done and then
// read val.
type call[V any] struct {
	done chan struct{}
	val  V
}

// Group deduplicates concurrent calls by key. The zero value is ready to
// use; a Group must not be copied after first use.
type Group[V any] struct {
	mu sync.Mutex
	m  map[string]*call[V]
}

// Do runs fn once per key among concurrent callers: the first caller for a
// key (the leader) executes fn, every caller that arrives before the
// leader finishes blocks and receives the leader's value, and shared
// reports whether the value came from another caller's execution. The key
// is forgotten once the leader returns, so sequential calls re-execute.
//
// If fn panics, the panic propagates to the leader and followers receive
// V's zero value rather than deadlocking; callers whose zero value is not
// self-describing should encode failure inside V.
func (g *Group[V]) Do(key string, fn func() V) (v V, shared bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*call[V])
	}
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		<-c.done
		return c.val, true
	}
	c := &call[V]{done: make(chan struct{})}
	g.m[key] = c
	g.mu.Unlock()

	defer func() {
		g.mu.Lock()
		delete(g.m, key)
		g.mu.Unlock()
		close(c.done)
	}()
	c.val = fn()
	return c.val, false
}

// InFlight reports the number of keys currently being computed.
func (g *Group[V]) InFlight() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.m)
}
