package flight

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// N concurrent callers on one cold key execute fn exactly once and all see
// the leader's value.
func TestCoalesce(t *testing.T) {
	var g Group[int]
	var execs atomic.Int32
	gate := make(chan struct{})
	const n = 16
	var wg sync.WaitGroup
	vals := make([]int, n)
	shared := make([]bool, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			vals[i], shared[i] = g.Do("k", func() int {
				<-gate
				return int(execs.Add(1)) * 100
			})
		}(i)
	}
	// Let every goroutine reach Do before the leader finishes.
	for g.InFlight() == 0 {
	}
	close(gate)
	wg.Wait()
	if got := execs.Load(); got != 1 {
		t.Fatalf("fn executed %d times, want 1", got)
	}
	var leaders int
	for i := 0; i < n; i++ {
		if vals[i] != 100 {
			t.Fatalf("caller %d got %d, want 100", i, vals[i])
		}
		if !shared[i] {
			leaders++
		}
	}
	if leaders != 1 {
		t.Fatalf("%d leaders, want 1", leaders)
	}
	if g.InFlight() != 0 {
		t.Fatalf("key leaked: %d in flight", g.InFlight())
	}
}

// Sequential calls re-execute: the group is a stampede absorber, not a
// cache.
func TestSequentialCallsRecompute(t *testing.T) {
	var g Group[int]
	calls := 0
	for i := 0; i < 3; i++ {
		v, shared := g.Do("k", func() int { calls++; return calls })
		if shared || v != i+1 {
			t.Fatalf("call %d: v=%d shared=%v", i, v, shared)
		}
	}
}

// Distinct keys never coalesce.
func TestDistinctKeys(t *testing.T) {
	var g Group[string]
	var wg sync.WaitGroup
	for _, k := range []string{"a", "b", "c"} {
		wg.Add(1)
		go func(k string) {
			defer wg.Done()
			if v, _ := g.Do(k, func() string { return k }); v != k {
				t.Errorf("key %q got %q", k, v)
			}
		}(k)
	}
	wg.Wait()
}

// A panicking leader must not strand followers: they unblock with the zero
// value and the key is forgotten.
func TestLeaderPanicUnblocksFollowers(t *testing.T) {
	var g Group[int]
	gate := make(chan struct{})
	done := make(chan int, 1)
	go func() {
		defer func() { recover() }()
		g.Do("k", func() int { <-gate; panic("boom") })
	}()
	for g.InFlight() == 0 {
	}
	var followerRan atomic.Bool
	go func() {
		v, _ := g.Do("k", func() int { followerRan.Store(true); return 7 })
		done <- v
	}()
	// Give the follower time to join the flight; if it loses the race and
	// becomes a fresh leader instead, the assertions below account for it.
	time.Sleep(10 * time.Millisecond)
	close(gate)
	v := <-done
	if followerRan.Load() {
		if v != 7 {
			t.Fatalf("late caller ran fn but got %d", v)
		}
	} else if v != 0 {
		t.Fatalf("follower of panicked leader got %d, want zero value", v)
	}
	if v, shared := g.Do("k", func() int { return 7 }); shared || v != 7 {
		t.Fatalf("key not forgotten after panic: v=%d shared=%v", v, shared)
	}
}
