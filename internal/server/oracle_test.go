package server

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"sort"
	"testing"

	"probtopk"
	"probtopk/internal/uncertain"
	"probtopk/internal/worlds"
)

// oracleTolerance bounds the probability disagreement allowed between the
// possible-worlds enumeration and every efficient path. Scores are drawn
// from a small integer grid so total scores are exact in float64 and line
// identity never hinges on rounding.
const oracleTolerance = 1e-12

// randomOracleTable builds a small random table: ≤ 12 tuples, a mix of
// independent tuples and up to three ME groups, and scores from an integer
// grid of 6 values so score ties are frequent and deliberate.
func randomOracleTable(r *rand.Rand) *probtopk.Table {
	n := 1 + r.Intn(12)
	tab := probtopk.NewTable()
	groupMass := make(map[string]float64)
	for i := 0; i < n; i++ {
		score := float64(10 * (1 + r.Intn(6)))
		prob := float64(1+r.Intn(19)) / 20 // 0.05 .. 0.95
		group := ""
		if r.Intn(3) == 0 {
			g := fmt.Sprintf("g%d", r.Intn(3))
			if groupMass[g]+prob <= 1 {
				group = g
				groupMass[g] += prob
			}
		}
		tab.Add(probtopk.Tuple{ID: fmt.Sprintf("t%d", i), Score: score, Prob: prob, Group: group})
	}
	return tab
}

// scoreProb is one (score, probability) atom for comparison.
type scoreProb struct {
	score, prob float64
}

// assertSameDist fails unless the two line sets agree within
// oracleTolerance. Both inputs must be sorted by ascending score with
// distinct scores (every path under test emits coalesced exact atoms).
func assertSameDist(t *testing.T, label string, got, want []scoreProb) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d lines, oracle has %d\n got: %v\nwant: %v", label, len(got), len(want), got, want)
	}
	for i := range got {
		if got[i].score != want[i].score {
			t.Fatalf("%s: line %d score %v, oracle %v", label, i, got[i].score, want[i].score)
		}
		if math.Abs(got[i].prob-want[i].prob) > oracleTolerance {
			t.Fatalf("%s: line %d (score %v) prob %v, oracle %v (diff %g)",
				label, i, got[i].score, got[i].prob, want[i].prob,
				math.Abs(got[i].prob-want[i].prob))
		}
	}
}

func distLines(d *probtopk.Distribution) []scoreProb {
	out := []scoreProb{}
	for _, l := range d.Lines() {
		out = append(out, scoreProb{l.Score, l.Prob})
	}
	return out
}

// TestOracleCrossCheck asserts, on randomized small tables with mixed ME
// groups and deliberate score ties, that the exact possible-worlds
// enumeration, AlgorithmMain, AlgorithmStateExpansion,
// Engine.TopKDistributionBatch and the HTTP handler's decoded JSON response
// all produce the same top-k score distribution.
func TestOracleCrossCheck(t *testing.T) {
	r := rand.New(rand.NewSource(20090629))
	srv := New(Config{})
	eng := probtopk.NewEngine()
	exact := probtopk.Exact()

	trials := 80
	if testing.Short() {
		trials = 15
	}
	for trial := 0; trial < trials; trial++ {
		tab := randomOracleTable(r)
		k := 1 + r.Intn(4)
		if r.Intn(8) == 0 {
			k = tab.Len() + 1 + r.Intn(2) // occasionally force the empty answer
		}
		label := func(path string) string {
			return fmt.Sprintf("trial %d (n=%d, k=%d): %s", trial, tab.Len(), k, path)
		}

		// Ground truth: full possible-worlds enumeration.
		prep, err := uncertain.Prepare(tab)
		if err != nil {
			t.Fatal(err)
		}
		exactDist, err := worlds.ExactDistribution(prep, k, 0)
		if err != nil {
			t.Fatal(err)
		}
		oracle := []scoreProb{}
		for _, l := range exactDist.Lines() {
			oracle = append(oracle, scoreProb{l.Score, l.Prob})
		}
		sort.Slice(oracle, func(a, b int) bool { return oracle[a].score < oracle[b].score })

		// Path 1: the main dynamic program, exact options.
		dMain, err := probtopk.TopKDistribution(tab, k, exact)
		if err != nil {
			t.Fatalf("%s: %v", label("main"), err)
		}
		assertSameDist(t, label("AlgorithmMain"), distLines(dMain), oracle)

		// Path 2: the state-expansion baseline.
		seOpts := *exact
		seOpts.Algorithm = probtopk.AlgorithmStateExpansion
		dSE, err := probtopk.TopKDistribution(tab, k, &seOpts)
		if err != nil {
			t.Fatalf("%s: %v", label("state-expansion"), err)
		}
		assertSameDist(t, label("AlgorithmStateExpansion"), distLines(dSE), oracle)

		// Path 3: the batched engine entry point (exact per-query
		// threshold via the negative sentinel).
		batch, err := eng.TopKDistributionBatch(tab,
			[]probtopk.BatchQuery{{K: k, Threshold: -1}}, exact)
		if err != nil {
			t.Fatalf("%s: %v", label("batch"), err)
		}
		assertSameDist(t, label("Engine.TopKDistributionBatch"), distLines(batch[0]), oracle)

		// Path 4: the HTTP handler, end to end through upload, JSON query
		// and response decoding.
		body, err := json.Marshal(map[string]any{"tuples": tableTuples(tab)})
		if err != nil {
			t.Fatal(err)
		}
		w := do(t, srv, "PUT", "/tables/oracle", string(body))
		if w.Code != http.StatusCreated && w.Code != http.StatusOK {
			t.Fatalf("%s: upload status %d: %s", label("http"), w.Code, w.Body.String())
		}
		w = do(t, srv, "POST", "/tables/oracle/topk", fmt.Sprintf(`{"k": %d, "exact": true}`, k))
		respBody := mustStatus(t, w, http.StatusOK)
		var resp DistributionResponse
		if err := json.Unmarshal([]byte(respBody), &resp); err != nil {
			t.Fatalf("%s: %v", label("http decode"), err)
		}
		httpLines := []scoreProb{}
		for _, l := range resp.Lines {
			httpLines = append(httpLines, scoreProb{l.Score, l.Prob})
		}
		assertSameDist(t, label("HTTP handler"), httpLines, oracle)

		// The handler's aggregates must match the oracle too.
		if math.Abs(resp.TotalMass-exactDist.TotalMass()) > oracleTolerance {
			t.Fatalf("%s: total mass %v, oracle %v", label("http mass"), resp.TotalMass, exactDist.TotalMass())
		}
	}
}

func tableTuples(tab *probtopk.Table) []TupleJSON {
	out := []TupleJSON{}
	for _, tp := range tab.Tuples() {
		out = append(out, TupleJSON{ID: tp.ID, Score: tp.Score, Prob: tp.Prob, Group: tp.Group})
	}
	return out
}

// TestOracleVectorProbs cross-checks the per-vector probability the server
// reports for the U-Topk line against the exact enumeration.
func TestOracleVectorProbs(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	srv := New(Config{})
	trials := 40
	if testing.Short() {
		trials = 10
	}
	for trial := 0; trial < trials; trial++ {
		tab := randomOracleTable(r)
		k := 1 + r.Intn(3)
		if k > tab.Len() {
			k = tab.Len()
		}
		prep, err := uncertain.Prepare(tab)
		if err != nil {
			t.Fatal(err)
		}
		_, wantProb, err := worlds.UTopkOracle(prep, k, 0)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := json.Marshal(map[string]any{"tuples": tableTuples(tab)})
		w := do(t, srv, "PUT", "/tables/vp", string(body))
		if w.Code != http.StatusCreated && w.Code != http.StatusOK {
			t.Fatalf("upload: %d", w.Code)
		}
		w = do(t, srv, "GET", fmt.Sprintf("/tables/vp/baseline/utopk?k=%d", k), "")
		if w.Code == http.StatusUnprocessableEntity {
			// No k tuples co-exist; the oracle must agree.
			if wantProb > 0 {
				t.Fatalf("trial %d: server says no vector, oracle prob %v", trial, wantProb)
			}
			continue
		}
		respBody := mustStatus(t, w, http.StatusOK)
		var resp BaselineResponse
		if err := json.Unmarshal([]byte(respBody), &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Line == nil {
			t.Fatalf("trial %d: missing line", trial)
		}
		if math.Abs(resp.Line.VectorProb-wantProb) > oracleTolerance {
			t.Fatalf("trial %d (k=%d): U-Topk vector prob %v, oracle %v",
				trial, k, resp.Line.VectorProb, wantProb)
		}
	}
}
