package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"probtopk/internal/server/fairness"
	"probtopk/internal/synth"
)

// synthTableJSON is the JSON upload body of the 200-tuple synthetic table —
// big enough that one cold top-k DP takes tens of milliseconds, which is
// the window the stampede and mid-flight tests rely on.
func synthTableJSON(tb testing.TB) string {
	tb.Helper()
	tab, err := synth.Generate(synth.Config{Seed: 1}.WithDefaults())
	if err != nil {
		tb.Fatal(err)
	}
	tuples := []TupleJSON{}
	for _, tp := range tab.Tuples() {
		tuples = append(tuples, TupleJSON{ID: tp.ID, Score: tp.Score, Prob: tp.Prob, Group: tp.Group})
	}
	body, err := json.Marshal(TableRequest{Tuples: tuples})
	if err != nil {
		tb.Fatal(err)
	}
	return string(body)
}

// N concurrent identical cold queries run the dynamic program exactly once:
// the first caller leads the flight, everyone else either joins it or hits
// the cache the leader filled.
func TestStampedeSingleDP(t *testing.T) {
	s := New(Config{})
	mustStatus(t, do(t, s, "PUT", "/tables/st", synthTableJSON(t)), http.StatusCreated)
	dpBefore := s.Engine().CacheStats().Queries

	const n = 16
	var wg sync.WaitGroup
	start := make(chan struct{})
	bodies := make([]string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			w := do(t, s, "GET", "/tables/st/topk?k=10", "")
			if w.Code != http.StatusOK {
				t.Errorf("caller %d: status %d: %s", i, w.Code, w.Body.String())
				return
			}
			bodies[i] = w.Body.String()
		}(i)
	}
	close(start)
	wg.Wait()

	if dp := s.Engine().CacheStats().Queries - dpBefore; dp != 1 {
		t.Fatalf("stampede of %d identical cold queries ran %d DPs, want 1", n, dp)
	}
	for i := 1; i < n; i++ {
		if bodies[i] != bodies[0] {
			t.Fatalf("caller %d got a different answer than caller 0", i)
		}
	}
	st := getStats(t, s)
	total := st.CachedQueries.Count + st.ComputedQueries.Count + st.CoalescedQueries.Count
	if total != n || st.ComputedQueries.Count != 1 {
		t.Fatalf("cached %d + computed %d + coalesced %d, want %d total with 1 computed",
			st.CachedQueries.Count, st.ComputedQueries.Count, st.CoalescedQueries.Count, n)
	}
}

// A mutation between a flight's enqueue and its cache fill never publishes
// the old snapshot's answer under the new snapshot id: the flight and
// cache keys pin the snapshot identity, so the post-mutation query
// recomputes against the new state.
func TestMutationMidFlightNoStaleFill(t *testing.T) {
	s := New(Config{})
	mustStatus(t, do(t, s, "PUT", "/tables/mf", synthTableJSON(t)), http.StatusCreated)

	type result struct {
		code int
		body string
	}
	leaderDone := make(chan result, 1)
	go func() {
		w := do(t, s, "GET", "/tables/mf/topk?k=10", "")
		leaderDone <- result{w.Code, w.Body.String()}
	}()
	// Wait for the cold query's flight to be in progress, then mutate the
	// table under it: an unmissable new top scorer.
	deadline := time.Now().Add(5 * time.Second)
	for s.flight.InFlight() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("flight never started")
		}
	}
	mustStatus(t, do(t, s, "POST", "/tables/mf/tuples",
		`{"tuples":[{"id":"GIANT","score":1e9,"prob":1.0}]}`), http.StatusOK)

	leader := <-leaderDone
	if leader.code != http.StatusOK {
		t.Fatalf("in-flight query failed: %d %s", leader.code, leader.body)
	}
	if strings.Contains(leader.body, "GIANT") {
		t.Fatal("pre-mutation flight observed the mutation: snapshot isolation broken")
	}

	dpBefore := s.Engine().CacheStats().Queries
	w := do(t, s, "GET", "/tables/mf/topk?k=10", "")
	body := mustStatus(t, w, http.StatusOK)
	if body == leader.body {
		t.Fatal("post-mutation query served the old snapshot's answer")
	}
	if !strings.Contains(body, "GIANT") {
		t.Fatalf("post-mutation answer misses the new top scorer: %s", body)
	}
	if dp := s.Engine().CacheStats().Queries - dpBefore; dp != 1 {
		t.Fatalf("post-mutation query ran %d DPs, want 1 fresh compute (a stale fill would be 0)", dp)
	}
}

// End-to-end fairness: a flooding client saturating the cold-query gate is
// shed with 429 + Retry-After and lands in the shed counters; a
// well-behaved client on warm queries never sees an error and never
// appears in them.
func TestFairnessFlooderShedPoliteUntouched(t *testing.T) {
	s := New(Config{Fairness: &fairness.Config{
		MaxConcurrent: 1,
		MaxWaiters:    1,
		MaxWait:       5 * time.Millisecond,
		Seed:          42,
	}})
	mustStatus(t, do(t, s, "PUT", "/tables/fx", synthTableJSON(t)), http.StatusCreated)
	// Warm the polite client's query so it never needs the compute gate.
	mustStatus(t, do(t, s, "GET", "/tables/fx/topk?k=5", "", fairness.ClientHeader, "polite"), http.StatusOK)

	var flooder429 int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				// Distinct thresholds make every flood query cold.
				path := fmt.Sprintf("/tables/fx/topk?k=10&threshold=0.00%d%d1", g, i)
				w := do(t, s, "GET", path, "", fairness.ClientHeader, "flooder")
				if w.Code == http.StatusTooManyRequests {
					if w.Header().Get("Retry-After") == "" {
						t.Error("429 without Retry-After")
					}
					mu.Lock()
					flooder429++
					mu.Unlock()
				}
			}
		}(g)
	}
	// The polite client keeps querying its warm answer during the flood.
	for i := 0; i < 50; i++ {
		w := do(t, s, "GET", "/tables/fx/topk?k=5", "", fairness.ClientHeader, "polite")
		if w.Code != http.StatusOK {
			t.Fatalf("well-behaved client got %d during flood: %s", w.Code, w.Body.String())
		}
	}
	wg.Wait()

	if flooder429 == 0 {
		t.Fatal("flooder was never shed")
	}
	st := getStats(t, s)
	if st.Fairness == nil {
		t.Fatal("no fairness block in stats")
	}
	if st.Fairness.QueueSheds == 0 || st.Fairness.Sheds == 0 {
		t.Fatalf("shed counters empty: %+v", st.Fairness)
	}
	if st.Fairness.TopShedders["flooder"] == 0 {
		t.Fatalf("flooder missing from shed attribution: %v", st.Fairness.TopShedders)
	}
	if n, ok := st.Fairness.TopShedders["polite"]; ok && n > 0 {
		t.Fatalf("well-behaved client attributed %d sheds", n)
	}
	var hot int
	for _, l := range st.Fairness.Levels {
		hot += l.HotBuckets
	}
	if hot == 0 {
		t.Fatal("no hot buckets after a flood")
	}
}
