// Package fairness is the serving stack's fair-admission and load-shedding
// layer: a Stochastic Fair BLUE (SFB) throttler usable as http.Handler
// middleware, plus a bounded-concurrency admission gate for expensive
// (cold-query) work.
//
// # Stochastic Fair BLUE
//
// SFB keeps constant memory per client population: L independent levels of
// B buckets each, every level hashing client ids with its own seed. A
// client maps to one bucket per level, and its drop probability is the
// MINIMUM p across its L buckets — a well-behaved client that shares some
// buckets with a flooder is throttled only if it collides on EVERY level,
// which the independent hashes make vanishingly unlikely. Bucket p values
// move like BLUE's: they increment only on genuine-shortage events (a
// request that found the compute capacity exhausted — never on mere
// traffic) and decay toward zero whenever shortage stops, so an idle or
// recovered service throttles nobody. Periodic seed rotation re-seeds one
// level at a time (zeroing its buckets), so a client unlucky enough to be
// hash-collided with a heavy hitter is separated from it within a few
// rotation periods; the heavy hitter re-penalizes its fresh buckets within
// milliseconds, so the un-throttled window is short.
//
// # Genuine shortage
//
// The shortage signal is the compute gate: AcquireCompute bounds how many
// expensive computations run at once (MaxConcurrent) and how many callers
// may wait for a slot (MaxWaiters, up to MaxWait each). A caller that
// cannot get a slot in time is shed with 429 and its client's buckets are
// penalized. Cheap work — cache hits, table reads — never touches the
// gate, so a client whose requests are all warm is structurally immune to
// shedding no matter how loaded the cold path is.
//
// # Client identity
//
// Clients identify themselves with the X-Topk-Client header; requests
// without one are keyed by remote IP. Identity is advisory — a client that
// lies spreads its penalty across buckets of its own choosing, but every
// identity it burns still has to flood before it is throttled.
package fairness

import (
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Defaults for Config fields left zero.
const (
	DefaultLevels        = 3
	DefaultBuckets       = 64
	DefaultIncrement     = 0.05
	DefaultDecrement     = 0.01
	DefaultDecayInterval = 100 * time.Millisecond
	DefaultRotateEvery   = 30 * time.Second
	DefaultMaxWait       = 100 * time.Millisecond
	DefaultRetryAfter    = time.Second
)

// ClientHeader is the request header naming the client for fair admission.
const ClientHeader = "X-Topk-Client"

// maxClientIDLen bounds the accepted client identity so arbitrary header
// values cannot bloat the shedder table.
const maxClientIDLen = 128

// maxTrackedShedders bounds the per-client shed counter map (a debugging
// aid; the bloom buckets, not this map, are the throttling state).
const maxTrackedShedders = 32

// Config tunes a Throttler. The zero value of any field selects its
// default.
type Config struct {
	// Levels and Buckets shape the SFB filter: Levels independent hash
	// levels of Buckets buckets each. Memory is Levels × Buckets × ~16
	// bytes regardless of client count.
	Levels  int
	Buckets int
	// Increment is added to each of a client's bucket p values on a
	// genuine-shortage shed; Decrement is subtracted from every bucket
	// once per DecayInterval, so p drains to zero when shortage stops.
	Increment     float64
	Decrement     float64
	DecayInterval time.Duration
	// RotateEvery re-seeds one level (round-robin, zeroing its buckets)
	// per interval, separating hash-collided clients. Negative disables
	// rotation.
	RotateEvery time.Duration
	// MaxConcurrent bounds concurrently running expensive computations
	// (the AcquireCompute gate); 0 means 2 × GOMAXPROCS. MaxWaiters
	// bounds callers queued for a slot (0 means 2 × MaxConcurrent), each
	// waiting at most MaxWait before being shed.
	MaxConcurrent int
	MaxWaiters    int
	MaxWait       time.Duration
	// RetryAfter is the delay advertised on 429 responses.
	RetryAfter time.Duration
	// Seed fixes the hash and drop randomness for reproducible tests;
	// 0 seeds from the clock.
	Seed int64
}

// withDefaults resolves every zero field.
func (c Config) withDefaults() Config {
	if c.Levels <= 0 {
		c.Levels = DefaultLevels
	}
	if c.Buckets <= 0 {
		c.Buckets = DefaultBuckets
	}
	if c.Increment <= 0 {
		c.Increment = DefaultIncrement
	}
	if c.Decrement <= 0 {
		c.Decrement = DefaultDecrement
	}
	if c.DecayInterval <= 0 {
		c.DecayInterval = DefaultDecayInterval
	}
	if c.RotateEvery == 0 {
		c.RotateEvery = DefaultRotateEvery
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 2 * runtime.GOMAXPROCS(0)
	}
	if c.MaxWaiters <= 0 {
		c.MaxWaiters = 2 * c.MaxConcurrent
	}
	if c.MaxWait <= 0 {
		c.MaxWait = DefaultMaxWait
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = DefaultRetryAfter
	}
	return c
}

// bucket is one SFB cell: the BLUE drop probability and a shed counter for
// observability.
type bucket struct {
	p     float64
	sheds uint64
}

// LevelStats describes one SFB level on /debug/stats.
type LevelStats struct {
	// HotBuckets counts buckets with p > 0; MaxP is the largest p.
	HotBuckets int
	MaxP       float64
	// Sheds sums the level's per-bucket shed attributions.
	Sheds uint64
}

// Stats is a snapshot of the throttler's counters.
type Stats struct {
	// Decisions counts admission decisions; Sheds the requests shed, split
	// into ProbSheds (the SFB probabilistic drop at the door) and
	// QueueSheds (compute capacity exhausted — the events that raise p).
	Decisions  uint64
	Sheds      uint64
	ProbSheds  uint64
	QueueSheds uint64
	// Rotations counts level re-seedings.
	Rotations uint64
	// ComputeInFlight / ComputeWaiters describe the compute gate right now.
	ComputeInFlight int
	ComputeWaiters  int
	Levels          []LevelStats
	// Shedders maps client ids to their shed counts (bounded to the first
	// maxTrackedShedders distinct shedding clients; SheddersOverflow counts
	// sheds by clients beyond that bound).
	Shedders         map[string]uint64
	SheddersOverflow uint64
}

// Throttler is the SFB fair-admission filter plus the compute gate. Safe
// for concurrent use; construct with New.
type Throttler struct {
	cfg Config

	mu         sync.Mutex
	levels     [][]bucket
	seeds      []uint64
	rng        *rand.Rand
	lastDecay  time.Time
	lastRotate time.Time
	rotateNext int

	decisions, sheds, probSheds, queueSheds, rotations uint64
	shedders                                           map[string]uint64
	sheddersOverflow                                   uint64

	slots    chan struct{}
	waiters  atomic.Int32
	inFlight atomic.Int32

	// now is the clock, swappable by tests.
	now func() time.Time
}

// New returns a ready Throttler.
func New(cfg Config) *Throttler {
	cfg = cfg.withDefaults()
	t := &Throttler{
		cfg:      cfg,
		levels:   make([][]bucket, cfg.Levels),
		seeds:    make([]uint64, cfg.Levels),
		shedders: make(map[string]uint64),
		slots:    make(chan struct{}, cfg.MaxConcurrent),
		now:      time.Now,
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	t.rng = rand.New(rand.NewSource(seed))
	for l := range t.levels {
		t.levels[l] = make([]bucket, cfg.Buckets)
		t.seeds[l] = t.rng.Uint64()
	}
	start := t.now()
	t.lastDecay, t.lastRotate = start, start
	return t
}

// ClientID derives the fair-admission identity of a request: the
// X-Topk-Client header when present (trimmed, length-bounded), the remote
// IP otherwise.
func ClientID(r *http.Request) string {
	if id := strings.TrimSpace(r.Header.Get(ClientHeader)); id != "" {
		if len(id) > maxClientIDLen {
			id = id[:maxClientIDLen]
		}
		return id
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil || host == "" {
		return r.RemoteAddr
	}
	return host
}

// bucketIndex hashes client into level l's bucket (seeded FNV-1a with a
// final avalanche, so nearby ids spread).
func (t *Throttler) bucketIndex(l int, client string) int {
	h := t.seeds[l] ^ 14695981039346656037
	for i := 0; i < len(client); i++ {
		h ^= uint64(client[i])
		h *= 1099511628211
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return int(h % uint64(t.cfg.Buckets))
}

// touchLocked applies lazy time-based maintenance: bucket decay (Decrement
// per elapsed DecayInterval) and one level rotation per elapsed
// RotateEvery. Callers hold t.mu.
func (t *Throttler) touchLocked(now time.Time) {
	if steps := int64(now.Sub(t.lastDecay) / t.cfg.DecayInterval); steps > 0 {
		dec := float64(steps) * t.cfg.Decrement
		for l := range t.levels {
			for i := range t.levels[l] {
				if p := t.levels[l][i].p; p > 0 {
					t.levels[l][i].p = max(0, p-dec)
				}
			}
		}
		t.lastDecay = t.lastDecay.Add(time.Duration(steps) * t.cfg.DecayInterval)
	}
	if t.cfg.RotateEvery > 0 && now.Sub(t.lastRotate) >= t.cfg.RotateEvery {
		t.rotateLocked()
		t.lastRotate = now
	}
}

// rotateLocked re-seeds the next level round-robin and zeroes its buckets.
func (t *Throttler) rotateLocked() {
	l := t.rotateNext
	t.rotateNext = (t.rotateNext + 1) % len(t.levels)
	t.seeds[l] = t.rng.Uint64()
	for i := range t.levels[l] {
		t.levels[l][i] = bucket{}
	}
	t.rotations++
}

// pminLocked is the client's SFB drop probability: the minimum p across its
// per-level buckets. Callers hold t.mu.
func (t *Throttler) pminLocked(client string) float64 {
	p := 1.0
	for l := range t.levels {
		if bp := t.levels[l][t.bucketIndex(l, client)].p; bp < p {
			p = bp
		}
	}
	return p
}

// recordShedLocked attributes one shed to the client's buckets. Only
// genuine-shortage sheds (queue = true) raise p — BLUE increments on
// capacity events, never on traffic. Callers hold t.mu.
func (t *Throttler) recordShedLocked(client string, queue bool) {
	t.sheds++
	if queue {
		t.queueSheds++
	} else {
		t.probSheds++
	}
	for l := range t.levels {
		b := &t.levels[l][t.bucketIndex(l, client)]
		b.sheds++
		if queue {
			b.p = min(1, b.p+t.cfg.Increment)
		}
	}
	if _, ok := t.shedders[client]; ok || len(t.shedders) < maxTrackedShedders {
		t.shedders[client]++
	} else {
		t.sheddersOverflow++
	}
}

// Decide makes the SFB admission decision for one request from client:
// true means shed (respond 429). A client whose buckets are all cold
// (pmin 0) is never shed; one whose every level is hot is shed with
// probability pmin. A shed here does not raise p — only genuine shortage
// (QueueShed / a failed AcquireCompute) does.
func (t *Throttler) Decide(client string) bool {
	now := t.now()
	t.mu.Lock()
	defer t.mu.Unlock()
	t.touchLocked(now)
	t.decisions++
	p := t.pminLocked(client)
	if p <= 0 {
		return false
	}
	if p < 1 && t.rng.Float64() >= p {
		return false
	}
	t.recordShedLocked(client, false)
	return true
}

// QueueShed records a genuine-shortage shed for client (capacity exhausted
// while handling its request), raising its buckets' drop probabilities.
func (t *Throttler) QueueShed(client string) {
	now := t.now()
	t.mu.Lock()
	defer t.mu.Unlock()
	t.touchLocked(now)
	t.recordShedLocked(client, true)
}

// AcquireCompute claims one expensive-computation slot for client. It
// returns a release function the caller must invoke when the computation
// finishes. When every slot is busy it waits — bounded by MaxWait and by
// the MaxWaiters queue — and on failure records the genuine-shortage shed
// against client and reports ok = false: the caller should respond 429
// (WriteShed).
func (t *Throttler) AcquireCompute(client string) (release func(), ok bool) {
	rel := func() {
		t.inFlight.Add(-1)
		<-t.slots
	}
	select {
	case t.slots <- struct{}{}:
		t.inFlight.Add(1)
		return rel, true
	default:
	}
	if int(t.waiters.Add(1)) > t.cfg.MaxWaiters {
		t.waiters.Add(-1)
		t.QueueShed(client)
		return nil, false
	}
	defer t.waiters.Add(-1)
	timer := time.NewTimer(t.cfg.MaxWait)
	defer timer.Stop()
	select {
	case t.slots <- struct{}{}:
		t.inFlight.Add(1)
		return rel, true
	case <-timer.C:
		t.QueueShed(client)
		return nil, false
	}
}

// WriteShed writes the 429 shed response: Retry-After in whole seconds
// (rounded up, at least 1) and the server's uniform JSON error body.
func (t *Throttler) WriteShed(w http.ResponseWriter) {
	secs := int((t.cfg.RetryAfter + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusTooManyRequests)
	fmt.Fprintln(w, `{"error":"overloaded: request shed for fairness; retry later"}`)
}

// exemptPath reports whether a path bypasses admission: liveness and
// debugging endpoints must answer during overload — they are how overload
// is diagnosed.
func exemptPath(path string) bool {
	return path == "/healthz" || strings.HasPrefix(path, "/debug/")
}

// Middleware wraps next with the SFB admission decision: shed requests are
// answered 429 with Retry-After and never reach next. /healthz and
// /debug/ are exempt.
func (t *Throttler) Middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !exemptPath(r.URL.Path) && t.Decide(ClientID(r)) {
			t.WriteShed(w)
			return
		}
		next.ServeHTTP(w, r)
	})
}

// Stats returns a snapshot of the counters.
func (t *Throttler) Stats() Stats {
	now := t.now()
	t.mu.Lock()
	defer t.mu.Unlock()
	t.touchLocked(now)
	s := Stats{
		Decisions:        t.decisions,
		Sheds:            t.sheds,
		ProbSheds:        t.probSheds,
		QueueSheds:       t.queueSheds,
		Rotations:        t.rotations,
		ComputeInFlight:  int(t.inFlight.Load()),
		ComputeWaiters:   int(t.waiters.Load()),
		Levels:           make([]LevelStats, len(t.levels)),
		SheddersOverflow: t.sheddersOverflow,
	}
	if len(t.shedders) > 0 {
		s.Shedders = make(map[string]uint64, len(t.shedders))
		for c, n := range t.shedders {
			s.Shedders[c] = n
		}
	}
	for l := range t.levels {
		ls := &s.Levels[l]
		for i := range t.levels[l] {
			b := t.levels[l][i]
			ls.Sheds += b.sheds
			if b.p > 0 {
				ls.HotBuckets++
				if b.p > ls.MaxP {
					ls.MaxP = b.p
				}
			}
		}
	}
	return s
}
