package fairness

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// testThrottler builds a throttler with a deterministic seed and an
// injectable clock the test advances by hand.
func testThrottler(t *testing.T, cfg Config) (*Throttler, *time.Time) {
	t.Helper()
	if cfg.Seed == 0 {
		cfg.Seed = 42
	}
	tr := New(cfg)
	now := time.Unix(1_000_000, 0)
	tr.now = func() time.Time { return now }
	tr.mu.Lock()
	tr.lastDecay, tr.lastRotate = now, now
	tr.mu.Unlock()
	return tr, &now
}

func TestDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.Levels != DefaultLevels || cfg.Buckets != DefaultBuckets {
		t.Fatalf("shape defaults: %+v", cfg)
	}
	if cfg.MaxConcurrent <= 0 || cfg.MaxWaiters != 2*cfg.MaxConcurrent {
		t.Fatalf("gate defaults: %+v", cfg)
	}
	if cfg.Increment != DefaultIncrement || cfg.Decrement != DefaultDecrement {
		t.Fatalf("p defaults: %+v", cfg)
	}
}

// A client that never caused a genuine-shortage event keeps pmin = 0 and is
// never shed, even while another client is penalized to saturation.
func TestCleanClientNeverThrottled(t *testing.T) {
	tr, _ := testThrottler(t, Config{})
	for i := 0; i < 100; i++ {
		tr.QueueShed("flooder")
	}
	tr.mu.Lock()
	wb := tr.pminLocked("polite")
	fl := tr.pminLocked("flooder")
	tr.mu.Unlock()
	if wb != 0 {
		t.Fatalf("clean client pmin = %v, want 0", wb)
	}
	if fl != 1 {
		t.Fatalf("flooder pmin = %v, want 1", fl)
	}
	for i := 0; i < 1000; i++ {
		if tr.Decide("polite") {
			t.Fatal("clean client shed")
		}
	}
	if !tr.Decide("flooder") {
		t.Fatal("saturated flooder admitted")
	}
}

// p decays toward zero while no shortage events arrive, and never rises on
// idle time alone.
func TestDecayDrainsP(t *testing.T) {
	tr, now := testThrottler(t, Config{Increment: 0.2, Decrement: 0.1, DecayInterval: time.Second})
	for i := 0; i < 5; i++ {
		tr.QueueShed("c")
	}
	pmin := func() float64 {
		tr.mu.Lock()
		defer tr.mu.Unlock()
		tr.touchLocked(*now)
		return tr.pminLocked("c")
	}
	if p := pmin(); p != 1 {
		t.Fatalf("pmin after 5 increments = %v, want 1", p)
	}
	last := 1.0
	for i := 0; i < 12; i++ {
		*now = now.Add(time.Second)
		p := pmin()
		if p > last {
			t.Fatalf("decay raised pmin: %v -> %v", last, p)
		}
		last = p
	}
	if last != 0 {
		t.Fatalf("pmin after full decay = %v, want 0", last)
	}
	if tr.Decide("c") {
		t.Fatal("fully decayed client shed")
	}
}

// Rotation re-seeds one level at a time round-robin and zeroes its
// buckets; after Levels rotations every level has been refreshed.
func TestRotation(t *testing.T) {
	tr, now := testThrottler(t, Config{RotateEvery: 10 * time.Second, DecayInterval: time.Hour})
	tr.QueueShed("flooder")
	for r := 1; r <= DefaultLevels; r++ {
		*now = now.Add(10 * time.Second)
		if s := tr.Stats(); s.Rotations != uint64(r) {
			t.Fatalf("rotations = %d, want %d", s.Rotations, r)
		}
	}
	tr.mu.Lock()
	p := tr.pminLocked("flooder")
	var hot int
	for l := range tr.levels {
		for i := range tr.levels[l] {
			if tr.levels[l][i].p != 0 {
				hot++
			}
		}
	}
	tr.mu.Unlock()
	if p != 0 || hot != 0 {
		t.Fatalf("after full rotation cycle: pmin=%v hot=%d, want 0/0", p, hot)
	}
}

// The compute gate: slots bound concurrency, a timed-out waiter is shed
// and the shed is attributed as genuine shortage (raising p).
func TestAcquireCompute(t *testing.T) {
	tr := New(Config{MaxConcurrent: 1, MaxWaiters: 1, MaxWait: 20 * time.Millisecond, Seed: 7})
	rel, ok := tr.AcquireCompute("busy")
	if !ok {
		t.Fatal("first acquire failed")
	}
	if _, ok := tr.AcquireCompute("victim"); ok {
		t.Fatal("second acquire succeeded past a full gate")
	}
	s := tr.Stats()
	if s.QueueSheds != 1 || s.Sheds != 1 {
		t.Fatalf("queue sheds = %d (sheds %d), want 1", s.QueueSheds, s.Sheds)
	}
	if s.Shedders["victim"] != 1 {
		t.Fatalf("shedders = %v, want victim:1", s.Shedders)
	}
	tr.mu.Lock()
	p := tr.pminLocked("victim")
	tr.mu.Unlock()
	if p != DefaultIncrement {
		t.Fatalf("victim pmin = %v, want %v", p, DefaultIncrement)
	}
	rel()
	rel2, ok := tr.AcquireCompute("busy")
	if !ok {
		t.Fatal("acquire after release failed")
	}
	rel2()
}

func TestClientID(t *testing.T) {
	r := httptest.NewRequest("GET", "/t", nil)
	r.RemoteAddr = "198.51.100.7:4242"
	if got := ClientID(r); got != "198.51.100.7" {
		t.Fatalf("ip fallback: %q", got)
	}
	r.Header.Set(ClientHeader, "  analytics-1  ")
	if got := ClientID(r); got != "analytics-1" {
		t.Fatalf("header id: %q", got)
	}
	r.Header.Set(ClientHeader, strings.Repeat("x", 500))
	if got := ClientID(r); len(got) != maxClientIDLen {
		t.Fatalf("unbounded id len %d", len(got))
	}
}

// The middleware sheds saturated clients with 429 + Retry-After, passes
// clean clients through, and always exempts health/debug endpoints.
func TestMiddleware(t *testing.T) {
	tr, _ := testThrottler(t, Config{RetryAfter: 3 * time.Second})
	for i := 0; i < 100; i++ {
		tr.QueueShed("flooder")
	}
	var served int
	h := tr.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served++
		w.WriteHeader(http.StatusOK)
	}))
	do := func(path, client string) *httptest.ResponseRecorder {
		r := httptest.NewRequest("GET", path, nil)
		if client != "" {
			r.Header.Set(ClientHeader, client)
		}
		w := httptest.NewRecorder()
		h.ServeHTTP(w, r)
		return w
	}
	if w := do("/tables/x/topk", "flooder"); w.Code != http.StatusTooManyRequests {
		t.Fatalf("flooder status = %d, want 429", w.Code)
	} else if w.Header().Get("Retry-After") != "3" {
		t.Fatalf("Retry-After = %q, want 3", w.Header().Get("Retry-After"))
	} else if !strings.Contains(w.Body.String(), "error") {
		t.Fatalf("shed body %q has no error field", w.Body.String())
	}
	if w := do("/tables/x/topk", "polite"); w.Code != http.StatusOK {
		t.Fatalf("polite client status = %d, want 200", w.Code)
	}
	if w := do("/healthz", "flooder"); w.Code != http.StatusOK {
		t.Fatalf("healthz shed: %d", w.Code)
	}
	if w := do("/debug/stats", "flooder"); w.Code != http.StatusOK {
		t.Fatalf("debug shed: %d", w.Code)
	}
	if served != 3 {
		t.Fatalf("served = %d, want 3", served)
	}
}

func TestStatsShape(t *testing.T) {
	tr, _ := testThrottler(t, Config{})
	tr.QueueShed("a")
	tr.Decide("a")
	s := tr.Stats()
	if len(s.Levels) != DefaultLevels {
		t.Fatalf("levels = %d", len(s.Levels))
	}
	var hot int
	var sheds uint64
	for _, l := range s.Levels {
		hot += l.HotBuckets
		sheds += l.Sheds
		if l.MaxP < 0 || l.MaxP > 1 {
			t.Fatalf("MaxP out of range: %v", l.MaxP)
		}
	}
	if hot != DefaultLevels {
		t.Fatalf("hot buckets = %d, want %d (one per level)", hot, DefaultLevels)
	}
	if sheds < uint64(DefaultLevels) {
		t.Fatalf("per-level sheds = %d", sheds)
	}
	if s.QueueSheds != 1 || s.Decisions != 1 {
		t.Fatalf("counters: %+v", s)
	}
}

// The shedder table is bounded: beyond maxTrackedShedders distinct clients
// the overflow counter absorbs the rest.
func TestShedderTableBounded(t *testing.T) {
	tr, _ := testThrottler(t, Config{})
	for i := 0; i < maxTrackedShedders+10; i++ {
		tr.QueueShed(strings.Repeat("x", 1+i%64) + "c")
	}
	s := tr.Stats()
	if len(s.Shedders) > maxTrackedShedders {
		t.Fatalf("shedder table grew to %d", len(s.Shedders))
	}
	if s.SheddersOverflow == 0 {
		t.Fatal("overflow counter stayed 0")
	}
}
