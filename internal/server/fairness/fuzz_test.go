package fairness

import (
	"bytes"
	"testing"
	"time"
)

// FuzzFairnessDecision drives a throttler with an arbitrary (client set,
// event sequence) pair and checks the SFB safety properties against an
// exact oracle:
//
//  1. no input panics the throttler;
//  2. a client whose per-level buckets were not ALL penalized since their
//     level's last rotation has pmin exactly 0 and is never shed — in
//     particular a client with zero shed events is never throttled;
//  3. idle time is monotone: advancing the clock without shortage events
//     never increases any client's pmin (decay and rotation only drain p).
//
// The oracle tracks the set of (level, bucket) pairs that received a
// genuine-shortage penalty, clearing a level's entries when it rotates.
// Only property-2's direction is claimed: an unpenalized bucket must be
// exactly 0 (decay can zero a penalized bucket early, which is fine).
func FuzzFairnessDecision(f *testing.F) {
	f.Add([]byte("alice\x00bob\x00carol"), []byte{0, 1, 5, 2, 9, 13, 1, 0, 6, 3})
	f.Add([]byte("flooder"), []byte{0, 0, 0, 0, 1, 2, 1, 2, 1})
	f.Add([]byte(""), []byte{1, 2, 3, 0})
	f.Add([]byte("a\x00b\x00c\x00d\x00e\x00f\x00g\x00h"), bytes.Repeat([]byte{0, 4, 8, 12, 1, 5, 9, 13, 2, 6, 3}, 8))
	f.Fuzz(func(t *testing.T, clientBytes, events []byte) {
		var ids []string
		for _, part := range bytes.Split(clientBytes, []byte{0}) {
			if len(part) > 0 && len(ids) < 8 {
				ids = append(ids, string(part))
			}
		}
		if len(ids) == 0 {
			ids = []string{"c0"}
		}
		if len(events) > 4096 {
			events = events[:4096]
		}
		cfg := Config{
			Levels: 3, Buckets: 8,
			Increment: 0.25, Decrement: 0.25,
			DecayInterval: time.Second,
			RotateEvery:   5 * time.Second,
			MaxConcurrent: 1024,
			Seed:          42,
		}
		tr := New(cfg)
		now := time.Unix(1_000_000, 0)
		tr.now = func() time.Time { return now }
		tr.mu.Lock()
		tr.lastDecay, tr.lastRotate = now, now
		tr.mu.Unlock()

		type cell struct{ level, bucket int }
		penalized := map[cell]bool{}

		// pmins applies pending maintenance and snapshots every client's
		// pmin plus whether the oracle says all its buckets are hot.
		pmins := func() ([]float64, []bool) {
			tr.mu.Lock()
			defer tr.mu.Unlock()
			tr.touchLocked(now)
			ps := make([]float64, len(ids))
			all := make([]bool, len(ids))
			for i, c := range ids {
				ps[i] = tr.pminLocked(c)
				all[i] = true
				for l := 0; l < cfg.Levels; l++ {
					if !penalized[cell{l, tr.bucketIndex(l, c)}] {
						all[i] = false
					}
				}
			}
			return ps, all
		}
		// advance moves the clock and updates the oracle for the at-most-one
		// lazy rotation the next touch performs.
		advance := func(d time.Duration) {
			now = now.Add(d)
			tr.mu.Lock()
			before, level := tr.rotations, tr.rotateNext
			tr.touchLocked(now)
			rotated := tr.rotations > before
			tr.mu.Unlock()
			if rotated {
				for b := 0; b < cfg.Buckets; b++ {
					delete(penalized, cell{level, b})
				}
			}
		}

		for _, ev := range events {
			op, arg := ev%4, int(ev/4)
			c := ids[arg%len(ids)]
			switch op {
			case 0: // genuine-shortage shed
				tr.QueueShed(c)
				tr.mu.Lock()
				for l := 0; l < cfg.Levels; l++ {
					penalized[cell{l, tr.bucketIndex(l, c)}] = true
				}
				tr.mu.Unlock()
			case 1: // admission decision + oracle check
				ps, all := pmins()
				i := arg % len(ids)
				if !all[i] && ps[i] != 0 {
					t.Fatalf("client %q: pmin=%v with an unpenalized bucket", c, ps[i])
				}
				if tr.Decide(c) && !all[i] {
					t.Fatalf("client %q shed with an unpenalized bucket", c)
				}
			case 2: // idle time: decay/rotation monotonicity
				before, _ := pmins()
				advance(time.Duration(arg+1) * 250 * time.Millisecond)
				after, _ := pmins()
				for i := range ids {
					if after[i] > before[i]+1e-12 {
						t.Fatalf("client %q: idle time raised pmin %v -> %v", ids[i], before[i], after[i])
					}
				}
			case 3: // exercise stats + gate under the same sequence
				s := tr.Stats()
				if s.Sheds != s.ProbSheds+s.QueueSheds {
					t.Fatalf("shed counters disagree: %+v", s)
				}
				if rel, ok := tr.AcquireCompute(c); ok {
					rel()
				}
			}
		}
	})
}
