package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"probtopk"
)

// TestServerConcurrentMutateQuery hammers one server from many goroutines:
// writers append tuples and replace/drop tables while readers run every
// query endpoint, with private Streams pushing through the shared engine
// pools at the same time. Run under -race (CI does), this is the
// concurrency contract check for the registry locks, the answer cache and
// the engine.
func TestServerConcurrentMutateQuery(t *testing.T) {
	s := New(Config{AnswerCacheSize: 64})
	tables := []string{"alpha", "beta", "gamma"}
	for _, name := range tables {
		mustStatus(t, do(t, s, "PUT", "/tables/"+name, soldierJSON), http.StatusCreated)
	}

	// iters stays divisible by len(tables) so every table receives the same
	// number of appends (asserted at the end).
	iters := 120
	if testing.Short() {
		iters = 24
	}
	// Allowed statuses: 404/409-free by construction, but queries race with
	// deletes and appends, so "no table" and "unanswerable" are legitimate.
	allowed := map[int]bool{
		http.StatusOK: true, http.StatusCreated: true, http.StatusNoContent: true,
		http.StatusNotFound: true, http.StatusUnprocessableEntity: true,
	}
	var unexpected atomic.Int64
	check := func(w *httptest.ResponseRecorder, what string) {
		if !allowed[w.Code] {
			unexpected.Add(1)
			t.Errorf("%s: status %d: %s", what, w.Code, w.Body.String())
		}
		if ct := w.Header().Get("Content-Type"); strings.HasPrefix(ct, "application/json") {
			if !json.Valid(w.Body.Bytes()) {
				unexpected.Add(1)
				t.Errorf("%s: invalid JSON body: %s", what, w.Body.String())
			}
		}
	}

	var wg sync.WaitGroup
	run := func(fn func(w int)) {
		for w := 0; w < 3; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				fn(w)
			}(w)
		}
	}

	// Appenders: grow each table with fresh independent tuples.
	run(func(worker int) {
		for i := 0; i < iters; i++ {
			name := tables[i%len(tables)]
			body := fmt.Sprintf(`{"tuples": [{"id": "w%d-%d", "score": %d, "prob": 0.5}]}`,
				worker, i, 10+i%90)
			check(do(t, s, "POST", "/tables/"+name+"/tuples", body), "append")
		}
	})
	// Query mix across every endpoint.
	run(func(worker int) {
		for i := 0; i < iters; i++ {
			name := tables[(worker+i)%len(tables)]
			switch i % 6 {
			case 0:
				check(do(t, s, "GET", "/tables/"+name+"/topk?k=2", ""), "topk")
			case 1:
				check(do(t, s, "POST", "/tables/"+name+"/topk/batch",
					`{"queries": [{"k": 1}, {"k": 2}, {"k": 3}]}`), "batch")
			case 2:
				check(do(t, s, "GET", "/tables/"+name+"/typical?k=2&c=2", ""), "typical")
			case 3:
				check(do(t, s, "GET", "/tables/"+name+"/baseline/utopk?k=2", ""), "utopk")
			case 4:
				check(do(t, s, "GET", "/tables/"+name+"/baseline/ptk?k=2&p=0.2", ""), "ptk")
			default:
				check(do(t, s, "GET", "/tables/"+name+"/baseline/expectedrank?k=2", ""), "expectedrank")
			}
		}
	})
	// Admin churn: list, stats, csv download, create/replace/drop scratch
	// tables.
	run(func(worker int) {
		scratch := fmt.Sprintf("scratch-%d", worker)
		for i := 0; i < iters; i++ {
			switch i % 5 {
			case 0:
				check(do(t, s, "GET", "/tables", ""), "list")
			case 1:
				check(do(t, s, "GET", "/debug/stats", ""), "stats")
			case 2:
				check(do(t, s, "PUT", "/tables/"+scratch, soldierJSON), "put scratch")
			case 3:
				check(do(t, s, "GET", "/tables/"+scratch+"/topk?k=1", ""), "query scratch")
			default:
				check(do(t, s, "DELETE", "/tables/"+scratch, ""), "delete scratch")
			}
		}
	})
	// Streams: each goroutine owns a private window (Streams are
	// single-owner by contract) pushing and querying through the same
	// process-wide scratch pools the server uses.
	run(func(worker int) {
		st, err := probtopk.NewStream(16)
		if err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < iters; i++ {
			if _, err := st.Push(probtopk.Tuple{
				ID: fmt.Sprintf("s%d-%d", worker, i), Score: float64(i % 50), Prob: 0.5,
			}); err != nil {
				t.Errorf("stream push: %v", err)
				return
			}
			if i%4 == 3 {
				if _, err := st.TopKDistribution(2, nil); err != nil {
					t.Errorf("stream query: %v", err)
					return
				}
			}
		}
	})
	wg.Wait()

	if unexpected.Load() != 0 {
		t.Fatalf("%d unexpected responses", unexpected.Load())
	}
	// The survivors must still serve consistent answers: version equals
	// tuple count history and a fresh query matches a recomputation.
	for _, name := range tables {
		var info TableInfo
		if err := json.Unmarshal([]byte(mustStatus(t, do(t, s, "GET", "/tables/"+name, ""), http.StatusOK)), &info); err != nil {
			t.Fatal(err)
		}
		// 3 appender workers each spread iters appends round-robin over
		// the tables, so each table gains exactly iters tuples.
		if info.Tuples != 7+iters {
			t.Fatalf("%s: %d tuples, want %d", name, info.Tuples, 7+iters)
		}
		first := mustStatus(t, do(t, s, "GET", "/tables/"+name+"/topk?k=3", ""), http.StatusOK)
		again := mustStatus(t, do(t, s, "GET", "/tables/"+name+"/topk?k=3", ""), http.StatusOK)
		if first != again {
			t.Fatalf("%s: unstable answer after stress", name)
		}
	}
}
