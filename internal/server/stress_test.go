package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"probtopk"
	"probtopk/internal/synth"
)

// TestServerConcurrentMutateQuery hammers one server from many goroutines:
// writers append tuples and replace/drop tables while readers run every
// query endpoint, with private Streams pushing through the shared engine
// pools at the same time. Run under -race (CI does), this is the
// concurrency contract check for the registry locks, the answer cache and
// the engine.
func TestServerConcurrentMutateQuery(t *testing.T) {
	s := New(Config{AnswerCacheSize: 64})
	tables := []string{"alpha", "beta", "gamma"}
	for _, name := range tables {
		mustStatus(t, do(t, s, "PUT", "/tables/"+name, soldierJSON), http.StatusCreated)
	}

	// iters stays divisible by len(tables) so every table receives the same
	// number of appends (asserted at the end).
	iters := 120
	if testing.Short() {
		iters = 24
	}
	// Allowed statuses: 404/409-free by construction, but queries race with
	// deletes and appends, so "no table" and "unanswerable" are legitimate.
	allowed := map[int]bool{
		http.StatusOK: true, http.StatusCreated: true, http.StatusNoContent: true,
		http.StatusNotFound: true, http.StatusUnprocessableEntity: true,
	}
	var unexpected atomic.Int64
	check := func(w *httptest.ResponseRecorder, what string) {
		if !allowed[w.Code] {
			unexpected.Add(1)
			t.Errorf("%s: status %d: %s", what, w.Code, w.Body.String())
		}
		if ct := w.Header().Get("Content-Type"); strings.HasPrefix(ct, "application/json") {
			if !json.Valid(w.Body.Bytes()) {
				unexpected.Add(1)
				t.Errorf("%s: invalid JSON body: %s", what, w.Body.String())
			}
		}
	}

	var wg sync.WaitGroup
	run := func(fn func(w int)) {
		for w := 0; w < 3; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				fn(w)
			}(w)
		}
	}

	// Appenders: grow each table with fresh independent tuples.
	run(func(worker int) {
		for i := 0; i < iters; i++ {
			name := tables[i%len(tables)]
			body := fmt.Sprintf(`{"tuples": [{"id": "w%d-%d", "score": %d, "prob": 0.5}]}`,
				worker, i, 10+i%90)
			check(do(t, s, "POST", "/tables/"+name+"/tuples", body), "append")
		}
	})
	// Query mix across every endpoint.
	run(func(worker int) {
		for i := 0; i < iters; i++ {
			name := tables[(worker+i)%len(tables)]
			switch i % 6 {
			case 0:
				check(do(t, s, "GET", "/tables/"+name+"/topk?k=2", ""), "topk")
			case 1:
				check(do(t, s, "POST", "/tables/"+name+"/topk/batch",
					`{"queries": [{"k": 1}, {"k": 2}, {"k": 3}]}`), "batch")
			case 2:
				check(do(t, s, "GET", "/tables/"+name+"/typical?k=2&c=2", ""), "typical")
			case 3:
				check(do(t, s, "GET", "/tables/"+name+"/baseline/utopk?k=2", ""), "utopk")
			case 4:
				check(do(t, s, "GET", "/tables/"+name+"/baseline/ptk?k=2&p=0.2", ""), "ptk")
			default:
				check(do(t, s, "GET", "/tables/"+name+"/baseline/expectedrank?k=2", ""), "expectedrank")
			}
		}
	})
	// Admin churn: list, stats, csv download, create/replace/drop scratch
	// tables.
	run(func(worker int) {
		scratch := fmt.Sprintf("scratch-%d", worker)
		for i := 0; i < iters; i++ {
			switch i % 5 {
			case 0:
				check(do(t, s, "GET", "/tables", ""), "list")
			case 1:
				check(do(t, s, "GET", "/debug/stats", ""), "stats")
			case 2:
				check(do(t, s, "PUT", "/tables/"+scratch, soldierJSON), "put scratch")
			case 3:
				check(do(t, s, "GET", "/tables/"+scratch+"/topk?k=1", ""), "query scratch")
			default:
				check(do(t, s, "DELETE", "/tables/"+scratch, ""), "delete scratch")
			}
		}
	})
	// Streams: each goroutine owns a private window (Streams are
	// single-owner by contract) pushing and querying through the same
	// process-wide scratch pools the server uses.
	run(func(worker int) {
		st, err := probtopk.NewStream(16)
		if err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < iters; i++ {
			if _, err := st.Push(probtopk.Tuple{
				ID: fmt.Sprintf("s%d-%d", worker, i), Score: float64(i % 50), Prob: 0.5,
			}); err != nil {
				t.Errorf("stream push: %v", err)
				return
			}
			if i%4 == 3 {
				if _, err := st.TopKDistribution(2, nil); err != nil {
					t.Errorf("stream query: %v", err)
					return
				}
			}
		}
	})
	wg.Wait()

	if unexpected.Load() != 0 {
		t.Fatalf("%d unexpected responses", unexpected.Load())
	}
	// The survivors must still serve consistent answers: version equals
	// tuple count history and a fresh query matches a recomputation.
	for _, name := range tables {
		var info TableInfo
		if err := json.Unmarshal([]byte(mustStatus(t, do(t, s, "GET", "/tables/"+name, ""), http.StatusOK)), &info); err != nil {
			t.Fatal(err)
		}
		// 3 appender workers each spread iters appends round-robin over
		// the tables, so each table gains exactly iters tuples.
		if info.Tuples != 7+iters {
			t.Fatalf("%s: %d tuples, want %d", name, info.Tuples, 7+iters)
		}
		first := mustStatus(t, do(t, s, "GET", "/tables/"+name+"/topk?k=3", ""), http.StatusOK)
		again := mustStatus(t, do(t, s, "GET", "/tables/"+name+"/topk?k=3", ""), http.StatusOK)
		if first != again {
			t.Fatalf("%s: unstable answer after stress", name)
		}
	}
}

// TestAppendsDoNotWaitForSlowQueries is the lock-free-read latency
// assertion, not just an absence-of-races check: appends issued while
// deliberately slow queries are in flight on the SAME table must complete
// without waiting for them. Under the old per-table RWMutex a writer waited
// for the in-flight reader's whole dynamic program; with snapshot
// publication an append only swaps an atomic pointer, so its latency is
// decoupled from query cost by orders of magnitude. The assertion is
// deliberately loose (a third of one query) to stay robust on slow or
// race-instrumented machines while still failing hard if appends ever
// queue behind queries again.
func TestAppendsDoNotWaitForSlowQueries(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive; skipped in -short")
	}
	// Answer cache disabled so every query runs the full dynamic program.
	s := New(Config{AnswerCacheSize: -1})
	tab, err := synth.Generate(synth.Config{N: 500, Seed: 5}.WithDefaults())
	if err != nil {
		t.Fatal(err)
	}
	var tuples []TupleJSON
	for _, tp := range tab.Tuples() {
		tuples = append(tuples, TupleJSON{ID: tp.ID, Score: tp.Score, Prob: tp.Prob, Group: tp.Group})
	}
	body, err := json.Marshal(TableRequest{Tuples: tuples})
	if err != nil {
		t.Fatal(err)
	}
	mustStatus(t, do(t, s, "PUT", "/tables/big", string(body)), http.StatusCreated)

	// Calibrate a query slow enough to dwarf any honest append: escalate k
	// until one uncontended run takes at least minSlow.
	const minSlow = 200 * time.Millisecond
	var (
		query string
		slow  time.Duration
	)
	for _, k := range []int{10, 20, 40, 60} {
		query = fmt.Sprintf("/tables/big/topk?k=%d", k)
		start := time.Now()
		mustStatus(t, do(t, s, "GET", query, ""), http.StatusOK)
		if slow = time.Since(start); slow >= minSlow {
			break
		}
	}
	if slow < minSlow {
		t.Skipf("machine too fast to build a slow query (best %v)", slow)
	}
	t.Logf("slow query %s takes %v uncontended", query, slow)

	// Keep slow queries continuously in flight on the same table.
	stop := make(chan struct{})
	var inflight atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				inflight.Add(1)
				w := do(t, s, "GET", query, "")
				inflight.Add(-1)
				if w.Code != http.StatusOK {
					t.Errorf("background query: status %d", w.Code)
					return
				}
			}
		}()
	}
	for inflight.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	// Give the in-flight query time to be deep inside its computation.
	time.Sleep(20 * time.Millisecond)

	var maxAppend time.Duration
	for i := 0; i < 20; i++ {
		b := fmt.Sprintf(`{"tuples": [{"id": "fast%d", "score": 50.5, "prob": 0.5}]}`, i)
		start := time.Now()
		mustStatus(t, do(t, s, "POST", "/tables/big/tuples", b), http.StatusOK)
		if d := time.Since(start); d > maxAppend {
			maxAppend = d
		}
	}
	stillRunning := inflight.Load() > 0
	close(stop)
	wg.Wait()

	t.Logf("max append latency under slow queries: %v (query in flight at end: %v)", maxAppend, stillRunning)
	if maxAppend > slow/3 {
		t.Fatalf("append took %v while a %v query was in flight — appends are waiting on queries", maxAppend, slow)
	}
}
