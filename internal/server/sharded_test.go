package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"

	"probtopk/internal/persist"
)

// shardSpread returns n table names covering n distinct shards (index i
// lands on shard i), so tests can address every shard deliberately.
func shardSpread(t *testing.T, n int) []string {
	t.Helper()
	names := make([]string, n)
	for i, found := 0, 0; found < n; i++ {
		if i > 100000 {
			t.Fatal("could not cover every shard")
		}
		name := fmt.Sprintf("tbl%03d", i)
		if s := persist.ShardOf(name, n); names[s] == "" {
			names[s] = name
			found++
		}
	}
	return names
}

// TestShardedDurableServerRecovery drives mutations onto tables covering
// all four shards of a durable server, crashes it, and boots successors —
// first under the same shard count, then under a different one (an
// in-place layout migration) — asserting byte-identical answers both
// times.
func TestShardedDurableServerRecovery(t *testing.T) {
	dir := t.TempDir()
	names := shardSpread(t, 4)
	s1 := bootDurable(t, dir, persist.Options{Shards: 4})
	if got := s1.Shards(); got != 4 {
		t.Fatalf("Shards() = %d, want 4", got)
	}
	for _, name := range names {
		if w := doReq(t, s1, "PUT", "/tables/"+name, durableFleet); w.Code != http.StatusCreated {
			t.Fatalf("put %s: %d %s", name, w.Code, w.Body.String())
		}
		if w := doReq(t, s1, "POST", "/tables/"+name+"/tuples",
			`{"tuples": [{"id": "extra-`+name+`", "score": 91, "prob": 0.6}]}`); w.Code != http.StatusOK {
			t.Fatalf("append %s: %d %s", name, w.Code, w.Body.String())
		}
	}
	// One delete so recovery replays a tombstone too.
	if w := doReq(t, s1, "PUT", "/tables/doomed", durableFleet); w.Code != http.StatusCreated {
		t.Fatalf("put doomed: %d", w.Code)
	}
	if w := doReq(t, s1, "DELETE", "/tables/doomed", ""); w.Code != http.StatusNoContent {
		t.Fatalf("delete doomed: %d", w.Code)
	}
	answers := func(s http.Handler) map[string]string {
		out := map[string]string{}
		for _, name := range names {
			for _, q := range []string{
				"/tables/" + name + "/topk?k=2",
				"/tables/" + name + "/typical?k=2&c=2",
			} {
				w := doReq(t, s, "GET", q, "")
				if w.Code != http.StatusOK {
					t.Fatalf("query %s: %d %s", q, w.Code, w.Body.String())
				}
				out[q] = w.Body.String()
			}
		}
		return out
	}
	before := answers(s1)
	s1.crash()

	s2 := bootDurable(t, dir, persist.Options{Shards: 4})
	if w := doReq(t, s2, "GET", "/tables/doomed", ""); w.Code != http.StatusNotFound {
		t.Fatalf("deleted table resurrected: %d", w.Code)
	}
	after := answers(s2)
	for q, want := range before {
		if after[q] != want {
			t.Fatalf("query %s differs after restart:\nbefore %s\nafter  %s", q, want, after[q])
		}
	}
	s2.crash()

	// A different shard count: recovery migrates the layout in place; the
	// served answers must not change in a single byte.
	s3 := bootDurable(t, dir, persist.Options{Shards: 2})
	if got := s3.Shards(); got != 2 {
		t.Fatalf("after reshard Shards() = %d, want 2", got)
	}
	resharded := answers(s3)
	for q, want := range before {
		if resharded[q] != want {
			t.Fatalf("query %s differs after reshard:\nbefore %s\nafter  %s", q, want, resharded[q])
		}
	}
}

// TestShardedStats asserts /debug/stats reports the shard count, the
// per-shard durability counters, and the prepared-cache partitions — and
// that records land on the shard ShardOf says they do.
func TestShardedStats(t *testing.T) {
	dir := t.TempDir()
	names := shardSpread(t, 4)
	s := bootDurable(t, dir, persist.Options{Shards: 4})
	for _, name := range names[:2] { // mutate shards 0 and 1 only
		if w := doReq(t, s, "PUT", "/tables/"+name, durableFleet); w.Code != http.StatusCreated {
			t.Fatalf("put %s: %d", name, w.Code)
		}
	}
	var stats StatsResponse
	w := doReq(t, s, "GET", "/debug/stats", "")
	if err := json.Unmarshal(w.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Shards != 4 {
		t.Fatalf("stats.Shards = %d, want 4", stats.Shards)
	}
	if stats.Durability == nil || len(stats.Durability.Shards) != 4 {
		t.Fatalf("durability shard stats = %+v", stats.Durability)
	}
	for i, ss := range stats.Durability.Shards {
		want := uint64(0)
		if i < 2 {
			want = 1
		}
		if ss.Shard != i || ss.WALRecords != want {
			t.Fatalf("shard %d stats = %+v, want %d records", i, ss, want)
		}
	}
	if got := stats.Durability.WALRecords; got != 2 {
		t.Fatalf("aggregate WAL records = %d, want 2", got)
	}
	if len(stats.PreparedCachePartitions) != 4 {
		t.Fatalf("prepared cache partitions = %v", stats.PreparedCachePartitions)
	}
}

// TestShardedConcurrentMutateQuery hammers a 4-shard non-durable server
// with concurrent uploads, appends, deletes and queries across tables on
// every shard — race-detector fodder for the sharded registry and
// partitioned engine cache.
func TestShardedConcurrentMutateQuery(t *testing.T) {
	s := New(Config{Shards: 4})
	names := shardSpread(t, 4)
	var wg sync.WaitGroup
	for _, name := range names {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				if w := doReq(t, s, "PUT", "/tables/"+name, durableFleet); w.Code != http.StatusCreated && w.Code != http.StatusOK {
					t.Errorf("put %s: %d", name, w.Code)
					return
				}
				body := fmt.Sprintf(`{"tuples": [{"id": "x%d", "score": 50, "prob": 0.5}]}`, i)
				if w := doReq(t, s, "POST", "/tables/"+name+"/tuples", body); w.Code != http.StatusOK {
					t.Errorf("append %s: %d", name, w.Code)
					return
				}
				if w := doReq(t, s, "GET", "/tables/"+name+"/topk?k=2", ""); w.Code != http.StatusOK {
					t.Errorf("query %s: %d", name, w.Code)
					return
				}
			}
			if w := doReq(t, s, "DELETE", "/tables/"+name, ""); w.Code != http.StatusNoContent {
				t.Errorf("delete %s: %d", name, w.Code)
			}
		}(name)
	}
	wg.Wait()
	if s.reg.len() != 0 {
		t.Fatalf("tables left: %v", s.reg.names())
	}
}
