package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"probtopk/internal/synth"
)

// benchServer returns a server hosting a 200-tuple synthetic table (the
// paper's Figure-13a baseline workload) as "bench".
func benchServer(b *testing.B, cfg Config) *Server {
	b.Helper()
	tab, err := synth.Generate(synth.Config{Seed: 1}.WithDefaults())
	if err != nil {
		b.Fatal(err)
	}
	s := New(cfg)
	tuples := []TupleJSON{}
	for _, tp := range tab.Tuples() {
		tuples = append(tuples, TupleJSON{ID: tp.ID, Score: tp.Score, Prob: tp.Prob, Group: tp.Group})
	}
	body, err := json.Marshal(TableRequest{Tuples: tuples})
	if err != nil {
		b.Fatal(err)
	}
	req := httptest.NewRequest("PUT", "/tables/bench", strings.NewReader(string(body)))
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusCreated {
		b.Fatalf("upload: %d %s", w.Code, w.Body.String())
	}
	return s
}

func benchQuery(b *testing.B, s *Server) {
	b.Helper()
	req := httptest.NewRequest("GET", "/tables/bench/topk?k=10", nil)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		b.Fatalf("query: %d %s", w.Code, w.Body.String())
	}
}

// BenchmarkServerQuery measures the serving path end to end (request
// decode, engine, JSON encode): cold with the derived-answer cache
// disabled, hit with the cache warm. The gap is what the cache buys a
// read-heavy workload.
func BenchmarkServerQuery(b *testing.B) {
	b.Run("cold", func(b *testing.B) {
		s := benchServer(b, Config{AnswerCacheSize: -1})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			benchQuery(b, s)
		}
	})
	b.Run("hit", func(b *testing.B) {
		s := benchServer(b, Config{})
		benchQuery(b, s) // warm the derived-answer cache
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			benchQuery(b, s)
		}
	})
}
