package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"probtopk/internal/persist"
	"probtopk/internal/synth"
)

// benchUploadBody is the JSON upload of the 200-tuple synthetic table (the
// paper's Figure-13a baseline workload).
func benchUploadBody(b *testing.B) string {
	b.Helper()
	tab, err := synth.Generate(synth.Config{Seed: 1}.WithDefaults())
	if err != nil {
		b.Fatal(err)
	}
	tuples := []TupleJSON{}
	for _, tp := range tab.Tuples() {
		tuples = append(tuples, TupleJSON{ID: tp.ID, Score: tp.Score, Prob: tp.Prob, Group: tp.Group})
	}
	body, err := json.Marshal(TableRequest{Tuples: tuples})
	if err != nil {
		b.Fatal(err)
	}
	return string(body)
}

// benchServer returns a server hosting the synthetic benchmark table as
// "bench".
func benchServer(b *testing.B, cfg Config) *Server {
	b.Helper()
	s := New(cfg)
	req := httptest.NewRequest("PUT", "/tables/bench", strings.NewReader(benchUploadBody(b)))
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusCreated {
		b.Fatalf("upload: %d %s", w.Code, w.Body.String())
	}
	return s
}

func benchQuery(b *testing.B, s *Server) {
	b.Helper()
	req := httptest.NewRequest("GET", "/tables/bench/topk?k=10", nil)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		b.Fatalf("query: %d %s", w.Code, w.Body.String())
	}
}

// BenchmarkServerQuery measures the serving path end to end (request
// decode, engine, JSON encode): cold with the derived-answer cache
// disabled, hit with the cache warm. The gap is what the cache buys a
// read-heavy workload.
func BenchmarkServerQuery(b *testing.B) {
	b.Run("cold", func(b *testing.B) {
		s := benchServer(b, Config{AnswerCacheSize: -1})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			benchQuery(b, s)
		}
	})
	b.Run("hit", func(b *testing.B) {
		s := benchServer(b, Config{})
		benchQuery(b, s) // warm the derived-answer cache
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			benchQuery(b, s)
		}
	})
}

// BenchmarkMutateUnderQuery is the acceptance benchmark for snapshot
// isolation: the latency of appending one tuple, uncontended versus while
// goroutines keep deliberately slow queries (k=20, answer cache disabled,
// so every request runs the full dynamic program) in flight on the SAME
// table. Under the old per-table RWMutex the contended figure tracked the
// query duration (tens of milliseconds); with atomic snapshot publication
// both figures are microseconds — appends never wait for queries.
func BenchmarkMutateUnderQuery(b *testing.B) {
	upload := ""
	run := func(b *testing.B, queriers int) {
		s := benchServer(b, Config{AnswerCacheSize: -1})
		if upload == "" {
			upload = benchUploadBody(b)
		}
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for w := 0; w < queriers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					req := httptest.NewRequest("GET", "/tables/bench/topk?k=20", nil)
					rec := httptest.NewRecorder()
					s.ServeHTTP(rec, req)
				}
			}()
		}
		if queriers > 0 {
			// Let the slow queries actually get into their computations.
			time.Sleep(20 * time.Millisecond)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if i > 0 && i%512 == 0 {
				// Periodically reset the table so the append's clone cost
				// stays representative instead of growing with b.N.
				b.StopTimer()
				req := httptest.NewRequest("PUT", "/tables/bench", strings.NewReader(upload))
				rec := httptest.NewRecorder()
				s.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					b.Fatalf("reset: %d %s", rec.Code, rec.Body.String())
				}
				b.StartTimer()
			}
			body := fmt.Sprintf(`{"tuples": [{"id": "m%d", "score": 50.5, "prob": 0.5}]}`, i)
			req := httptest.NewRequest("POST", "/tables/bench/tuples", strings.NewReader(body))
			rec := httptest.NewRecorder()
			s.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				b.Fatalf("append: %d %s", rec.Code, rec.Body.String())
			}
		}
		b.StopTimer()
		close(stop)
		wg.Wait()
	}
	b.Run("uncontended", func(b *testing.B) { run(b, 0) })
	b.Run("under-slow-query", func(b *testing.B) { run(b, 2) })
}

// BenchmarkAppendDurable measures what the durable log adds to one
// appended tuple on the serving path: the in-memory baseline, the WAL
// without fsync (the OS flushes), and the WAL fsyncing every record (an
// acknowledged append survives a machine crash). Compare the three in the
// bench JSON alongside the "durability" figure of topk-bench.
func BenchmarkAppendDurable(b *testing.B) {
	upload := benchUploadBody(b)
	run := func(b *testing.B, durable, fsync bool) {
		cfg := Config{}
		if durable {
			man, _, err := persist.Open(b.TempDir(), persist.Options{Fsync: fsync})
			if err != nil {
				b.Fatal(err)
			}
			defer man.Close()
			cfg.Durability = man
		}
		s := benchServer(b, cfg)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if i > 0 && i%512 == 0 {
				// Reset the table so the append's clone cost stays
				// representative instead of growing with b.N.
				b.StopTimer()
				req := httptest.NewRequest("PUT", "/tables/bench", strings.NewReader(upload))
				rec := httptest.NewRecorder()
				s.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					b.Fatalf("reset: %d %s", rec.Code, rec.Body.String())
				}
				b.StartTimer()
			}
			body := fmt.Sprintf(`{"tuples": [{"id": "d%d", "score": 50.5, "prob": 0.5}]}`, i)
			req := httptest.NewRequest("POST", "/tables/bench/tuples", strings.NewReader(body))
			rec := httptest.NewRecorder()
			s.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				b.Fatalf("append: %d %s", rec.Code, rec.Body.String())
			}
		}
	}
	b.Run("memory", func(b *testing.B) { run(b, false, false) })
	b.Run("wal", func(b *testing.B) { run(b, true, false) })
	b.Run("wal-fsync", func(b *testing.B) { run(b, true, true) })
}
