package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"probtopk/internal/persist"
	"probtopk/internal/synth"
	"probtopk/internal/uncertain"
)

// benchUploadBody is the JSON upload of the 200-tuple synthetic table (the
// paper's Figure-13a baseline workload).
func benchUploadBody(b *testing.B) string {
	b.Helper()
	tab, err := synth.Generate(synth.Config{Seed: 1}.WithDefaults())
	if err != nil {
		b.Fatal(err)
	}
	tuples := []TupleJSON{}
	for _, tp := range tab.Tuples() {
		tuples = append(tuples, TupleJSON{ID: tp.ID, Score: tp.Score, Prob: tp.Prob, Group: tp.Group})
	}
	body, err := json.Marshal(TableRequest{Tuples: tuples})
	if err != nil {
		b.Fatal(err)
	}
	return string(body)
}

// benchServer returns a server hosting the synthetic benchmark table as
// "bench".
func benchServer(b *testing.B, cfg Config) *Server {
	b.Helper()
	s := New(cfg)
	req := httptest.NewRequest("PUT", "/tables/bench", strings.NewReader(benchUploadBody(b)))
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusCreated {
		b.Fatalf("upload: %d %s", w.Code, w.Body.String())
	}
	return s
}

func benchQuery(b *testing.B, s *Server) {
	b.Helper()
	req := httptest.NewRequest("GET", "/tables/bench/topk?k=10", nil)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		b.Fatalf("query: %d %s", w.Code, w.Body.String())
	}
}

// BenchmarkServerQuery measures the serving path end to end (request
// decode, engine, JSON encode): cold with the derived-answer cache
// disabled, hit with the cache warm. The gap is what the cache buys a
// read-heavy workload.
func BenchmarkServerQuery(b *testing.B) {
	b.Run("cold", func(b *testing.B) {
		s := benchServer(b, Config{AnswerCacheSize: -1})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			benchQuery(b, s)
		}
	})
	b.Run("hit", func(b *testing.B) {
		s := benchServer(b, Config{})
		benchQuery(b, s) // warm the derived-answer cache
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			benchQuery(b, s)
		}
	})
}

// BenchmarkMutateUnderQuery is the acceptance benchmark for snapshot
// isolation: the latency of appending one tuple, uncontended versus while
// goroutines keep deliberately slow queries (k=20, answer cache disabled,
// so every request runs the full dynamic program) in flight on the SAME
// table. Under the old per-table RWMutex the contended figure tracked the
// query duration (tens of milliseconds); with atomic snapshot publication
// both figures are microseconds — appends never wait for queries.
func BenchmarkMutateUnderQuery(b *testing.B) {
	upload := ""
	run := func(b *testing.B, queriers int) {
		s := benchServer(b, Config{AnswerCacheSize: -1})
		if upload == "" {
			upload = benchUploadBody(b)
		}
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for w := 0; w < queriers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					req := httptest.NewRequest("GET", "/tables/bench/topk?k=20", nil)
					rec := httptest.NewRecorder()
					s.ServeHTTP(rec, req)
				}
			}()
		}
		if queriers > 0 {
			// Let the slow queries actually get into their computations.
			time.Sleep(20 * time.Millisecond)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if i > 0 && i%512 == 0 {
				// Periodically reset the table so the append's clone cost
				// stays representative instead of growing with b.N.
				b.StopTimer()
				req := httptest.NewRequest("PUT", "/tables/bench", strings.NewReader(upload))
				rec := httptest.NewRecorder()
				s.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					b.Fatalf("reset: %d %s", rec.Code, rec.Body.String())
				}
				b.StartTimer()
			}
			body := fmt.Sprintf(`{"tuples": [{"id": "m%d", "score": 50.5, "prob": 0.5}]}`, i)
			req := httptest.NewRequest("POST", "/tables/bench/tuples", strings.NewReader(body))
			rec := httptest.NewRecorder()
			s.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				b.Fatalf("append: %d %s", rec.Code, rec.Body.String())
			}
		}
		b.StopTimer()
		close(stop)
		wg.Wait()
	}
	b.Run("uncontended", func(b *testing.B) { run(b, 0) })
	b.Run("under-slow-query", func(b *testing.B) { run(b, 2) })
}

// BenchmarkAppendDurable measures what the durable log adds to one
// appended tuple on the serving path: the in-memory baseline, the WAL
// without fsync (the OS flushes), and the WAL fsyncing every record (an
// acknowledged append survives a machine crash). Compare the three in the
// bench JSON alongside the "durability" figure of topk-bench.
func BenchmarkAppendDurable(b *testing.B) {
	upload := benchUploadBody(b)
	run := func(b *testing.B, durable, fsync bool) {
		cfg := Config{}
		if durable {
			man, _, err := persist.Open(b.TempDir(), persist.Options{Fsync: fsync})
			if err != nil {
				b.Fatal(err)
			}
			defer man.Close()
			cfg.Durability = man
		}
		s := benchServer(b, cfg)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if i > 0 && i%512 == 0 {
				// Reset the table so the append's clone cost stays
				// representative instead of growing with b.N.
				b.StopTimer()
				req := httptest.NewRequest("PUT", "/tables/bench", strings.NewReader(upload))
				rec := httptest.NewRecorder()
				s.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					b.Fatalf("reset: %d %s", rec.Code, rec.Body.String())
				}
				b.StartTimer()
			}
			body := fmt.Sprintf(`{"tuples": [{"id": "d%d", "score": 50.5, "prob": 0.5}]}`, i)
			req := httptest.NewRequest("POST", "/tables/bench/tuples", strings.NewReader(body))
			rec := httptest.NewRecorder()
			s.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				b.Fatalf("append: %d %s", rec.Code, rec.Body.String())
			}
		}
	}
	b.Run("memory", func(b *testing.B) { run(b, false, false) })
	b.Run("wal", func(b *testing.B) { run(b, true, false) })
	b.Run("wal-fsync", func(b *testing.B) { run(b, true, true) })
}

// shardedTableNames returns `n` table names landing on `n` distinct shards
// under persist.ShardOf(·, n), indexed by shard. With a 1-shard server the
// same names all share the one mutex — the comparison the sharded
// benchmark needs.
func shardedTableNames(b *testing.B, n int) []string {
	b.Helper()
	names := make([]string, n)
	for i, found := 0, 0; found < n; i++ {
		if i > 100000 {
			b.Fatal("could not cover every shard")
		}
		name := fmt.Sprintf("w%03d", i)
		if s := persist.ShardOf(name, n); names[s] == "" {
			names[s] = name
			found++
		}
	}
	return names
}

// shardedUploadBody is a deliberately small table (16 tuples) so the
// serialized clone+validate span stays short and the durable fsync
// dominates — the cost the sharding is meant to parallelize.
func shardedUploadBody(b *testing.B) string {
	b.Helper()
	tuples := make([]TupleJSON, 16)
	for i := range tuples {
		tuples[i] = TupleJSON{ID: fmt.Sprintf("base%d", i), Score: float64(100 - i), Prob: 0.5}
	}
	body, err := json.Marshal(TableRequest{Tuples: tuples})
	if err != nil {
		b.Fatal(err)
	}
	return string(body)
}

// benchWriters runs the sharded-append workload: `writers` goroutines,
// each owning one table, appending durably until b.N is spent. ns/op is
// aggregate (wall time over all writers' appends), so the ratio of a
// shards=1 and a shards=8 run is the aggregate durable-append throughput
// gain of sharding.
func benchWriters(b *testing.B, writers int, appendOne func(w int, name string, i int)) {
	names := shardedTableNames(b, writers)
	// RunParallel spawns GOMAXPROCS×parallelism goroutines; round up so at
	// least `writers` run whatever the host's core count.
	procs := runtime.GOMAXPROCS(0)
	b.SetParallelism((writers + procs - 1) / procs)
	var wids atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		w := int(wids.Add(1)-1) % writers
		name := names[w]
		for i := 0; pb.Next(); i++ {
			appendOne(w, name, i)
		}
	})
}

// BenchmarkAppendDurableSharded is the acceptance benchmark for the
// sharded durability stack: 8 writers append durably (WAL + fsync per
// record) to 8 tables that live on 8 DISTINCT shards of an 8-shard
// deployment, versus the same workload on 1 shard where every durable
// append serializes behind the single durability mutex.
//
// The "log" pair isolates the durability path itself — encode, frame,
// write, fsync — which is what the global mutex used to serialize: with 8
// shards the fsyncs of distinct segment files overlap in the kernel
// (journal group commit), so the gain survives even low core counts. The
// "http" pair is the full serving path (decode, clone, validate, log,
// fsync, publish, respond); its CPU half additionally parallelizes across
// cores, so on multi-core hardware it shows the same ≥4x — on a
// single-core host it is capped by the serialized CPU work instead.
// Compare shards=1 vs shards=8 within a pair; the target is ≥4x aggregate
// throughput at 8 writers.
func BenchmarkAppendDurableSharded(b *testing.B) {
	const writers = 8
	names := shardedTableNames(b, writers)
	upload := shardedUploadBody(b)

	logRun := func(b *testing.B, shards int) {
		man, _, err := persist.Open(b.TempDir(), persist.Options{Fsync: true, Shards: shards})
		if err != nil {
			b.Fatal(err)
		}
		defer man.Close()
		for _, name := range names {
			if err := man.LogPut(name, []uncertain.Tuple{{ID: "base", Score: 1, Prob: 0.5}}); err != nil {
				b.Fatal(err)
			}
		}
		benchWriters(b, writers, func(w int, name string, i int) {
			tp := uncertain.Tuple{ID: fmt.Sprintf("a%d-%d", w, i), Score: 50.5, Prob: 0.5}
			if err := man.LogAppend(name, []uncertain.Tuple{tp}); err != nil {
				b.Fatal(err)
			}
		})
	}

	httpRun := func(b *testing.B, shards int) {
		man, _, err := persist.Open(b.TempDir(), persist.Options{Fsync: true, Shards: shards})
		if err != nil {
			b.Fatal(err)
		}
		defer man.Close()
		s := New(Config{AnswerCacheSize: -1, Durability: man})
		put := func(name string) {
			req := httptest.NewRequest("PUT", "/tables/"+name, strings.NewReader(upload))
			rec := httptest.NewRecorder()
			s.ServeHTTP(rec, req)
			if rec.Code != http.StatusCreated && rec.Code != http.StatusOK {
				b.Fatalf("put %s: %d %s", name, rec.Code, rec.Body.String())
			}
		}
		for _, name := range names {
			put(name)
		}
		benchWriters(b, writers, func(w int, name string, i int) {
			if i > 0 && i%256 == 0 {
				// Reset so the clone cost stays representative instead of
				// growing with b.N (a PUT is itself a durable mutation on
				// the same shard).
				put(name)
			}
			body := fmt.Sprintf(`{"tuples": [{"id": "a%d-%d", "score": 50.5, "prob": 0.5}]}`, w, i)
			req := httptest.NewRequest("POST", "/tables/"+name+"/tuples", strings.NewReader(body))
			rec := httptest.NewRecorder()
			s.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				b.Fatalf("append: %d %s", rec.Code, rec.Body.String())
			}
		})
	}

	b.Run("log/shards=1", func(b *testing.B) { logRun(b, 1) })
	b.Run(fmt.Sprintf("log/shards=%d", writers), func(b *testing.B) { logRun(b, writers) })
	b.Run("http/shards=1", func(b *testing.B) { httpRun(b, 1) })
	b.Run(fmt.Sprintf("http/shards=%d", writers), func(b *testing.B) { httpRun(b, writers) })
}

// BenchmarkAppendDurableBatched is the acceptance benchmark for WAL group
// commit: concurrent writers append durably to tables that all live on ONE
// shard — the workload sharding cannot help — under SyncAlways (every
// append pays its own fsync, serialized by the shard's durability mutex)
// versus SyncBatch (appends queue on the shard's batcher and share fsyncs;
// the durability mutex is held shared so writers overlap).
//
// With 1 writer the two policies are equivalent (every batch holds one
// record); the gap opens with concurrency, because a batch of n concurrent
// appends costs one fsync instead of n. The target is ≥3x aggregate
// throughput at 8 writers, batch over always. The "http" pair is the same
// comparison on the full serving path. Compare alongside the "durability"
// figure of topk-bench.
func BenchmarkAppendDurableBatched(b *testing.B) {
	open := func(b *testing.B, batch bool) *persist.Manager {
		b.Helper()
		man, _, err := persist.Open(b.TempDir(), persist.Options{
			Fsync: true, BatchFsync: batch, Shards: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		return man
	}

	logRun := func(b *testing.B, writers int, batch bool) {
		man := open(b, batch)
		defer man.Close()
		names := shardedTableNames(b, writers)
		for _, name := range names {
			if err := man.LogPut(name, []uncertain.Tuple{{ID: "base", Score: 1, Prob: 0.5}}); err != nil {
				b.Fatal(err)
			}
		}
		benchWriters(b, writers, func(w int, name string, i int) {
			tp := uncertain.Tuple{ID: fmt.Sprintf("b%d-%d", w, i), Score: 50.5, Prob: 0.5}
			if err := man.LogAppend(name, []uncertain.Tuple{tp}); err != nil {
				b.Fatal(err)
			}
		})
	}

	httpRun := func(b *testing.B, writers int, batch bool) {
		man := open(b, batch)
		defer man.Close()
		s := New(Config{AnswerCacheSize: -1, Shards: 1, Durability: man})
		upload := shardedUploadBody(b)
		names := shardedTableNames(b, writers)
		put := func(name string) {
			req := httptest.NewRequest("PUT", "/tables/"+name, strings.NewReader(upload))
			rec := httptest.NewRecorder()
			s.ServeHTTP(rec, req)
			if rec.Code != http.StatusCreated && rec.Code != http.StatusOK {
				b.Fatalf("put %s: %d %s", name, rec.Code, rec.Body.String())
			}
		}
		for _, name := range names {
			put(name)
		}
		benchWriters(b, writers, func(w int, name string, i int) {
			if i > 0 && i%256 == 0 {
				put(name) // keep the clone cost flat (see AppendDurableSharded)
			}
			body := fmt.Sprintf(`{"tuples": [{"id": "b%d-%d", "score": 50.5, "prob": 0.5}]}`, w, i)
			req := httptest.NewRequest("POST", "/tables/"+name+"/tuples", strings.NewReader(body))
			rec := httptest.NewRecorder()
			s.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				b.Fatalf("append: %d %s", rec.Code, rec.Body.String())
			}
		})
	}

	for _, writers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("log/always/writers=%d", writers),
			func(b *testing.B) { logRun(b, writers, false) })
		b.Run(fmt.Sprintf("log/batch/writers=%d", writers),
			func(b *testing.B) { logRun(b, writers, true) })
	}
	b.Run("http/always/writers=8", func(b *testing.B) { httpRun(b, 8, false) })
	b.Run("http/batch/writers=8", func(b *testing.B) { httpRun(b, 8, true) })
}
