package stream

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"probtopk/internal/uncertain"
)

// suffixWindow reimplements the pre-dynamic-index window maintenance as the
// benchmark baseline: the canonical rank order lived in a flat slice, so a
// mid-rank push paid an O(n) memmove on insert and another on eviction
// (before the query then re-prepared the whole rank suffix below the change).
// The dynamic index replaces this with O(log n) structural work per push.
type suffixWindow struct {
	capacity int
	seq      int64
	arrival  []sentry
	ranked   []sentry
}

type sentry struct {
	seq   int64
	tuple uncertain.Tuple
}

func canonBefore(a, b sentry) bool {
	if a.tuple.Score != b.tuple.Score {
		return a.tuple.Score > b.tuple.Score
	}
	if a.tuple.Prob != b.tuple.Prob {
		return a.tuple.Prob > b.tuple.Prob
	}
	return a.seq < b.seq
}

func (w *suffixWindow) push(t uncertain.Tuple) {
	if len(w.arrival) == w.capacity {
		old := w.arrival[0]
		copy(w.arrival, w.arrival[1:])
		w.arrival = w.arrival[:len(w.arrival)-1]
		pos := sort.Search(len(w.ranked), func(i int) bool { return !canonBefore(w.ranked[i], old) })
		for pos < len(w.ranked) && w.ranked[pos].seq != old.seq {
			pos++
		}
		copy(w.ranked[pos:], w.ranked[pos+1:])
		w.ranked = w.ranked[:len(w.ranked)-1]
	}
	w.seq++
	e := sentry{seq: w.seq, tuple: t}
	w.arrival = append(w.arrival, e)
	pos := sort.Search(len(w.ranked), func(i int) bool { return canonBefore(e, w.ranked[i]) })
	w.ranked = append(w.ranked, sentry{})
	copy(w.ranked[pos+1:], w.ranked[pos:])
	w.ranked[pos] = e
}

// benchTuples pre-generates a full window plus the pushes, with uniform
// random scores so each push lands mid-rank on average.
func benchTuples(n, pushes int) (fill, push []uncertain.Tuple) {
	rng := rand.New(rand.NewSource(1))
	mk := func(i int) uncertain.Tuple {
		return uncertain.Tuple{ID: fmt.Sprintf("t%d", i), Score: rng.Float64() * float64(n), Prob: 0.5}
	}
	for i := 0; i < n; i++ {
		fill = append(fill, mk(i))
	}
	for i := 0; i < pushes; i++ {
		push = append(push, mk(n+i))
	}
	return fill, push
}

// BenchmarkPushMidRank measures the per-push structural cost of maintaining
// the canonical rank order at window size n when pushes land mid-rank:
// the old suffix-era flat slice (O(n) memmove) against the dynamic index
// (O(log n) treap work). This is the tentpole's headline number; the
// bench-compare CI gate watches the dynamic variants via the topk-bench
// "dynamic" figure.
func BenchmarkPushMidRank(b *testing.B) {
	for _, n := range []int{10_000, 100_000} {
		fill, push := benchTuples(n, 4096)
		b.Run(fmt.Sprintf("n=%d/suffix", n), func(b *testing.B) {
			w := &suffixWindow{capacity: n}
			for _, t := range fill {
				w.push(t)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w.push(push[i%len(push)])
			}
		})
		b.Run(fmt.Sprintf("n=%d/dynamic", n), func(b *testing.B) {
			w, err := NewWindow(n)
			if err != nil {
				b.Fatal(err)
			}
			for _, t := range fill {
				if _, err := w.Push(t); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := w.Push(push[i%len(push)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPushMidRankThenQuery includes the lazy materialization a query
// pays after each push, for the end-to-end push+query cycle. Both designs
// re-derive the rank suffix below the change (the dynamic index reuses the
// same PrepareSorted), so the gap here is the structural maintenance that
// the flat slice adds on top.
func BenchmarkPushMidRankThenQuery(b *testing.B) {
	for _, n := range []int{10_000} {
		fill, push := benchTuples(n, 4096)
		b.Run(fmt.Sprintf("n=%d/dynamic", n), func(b *testing.B) {
			w, err := NewWindow(n)
			if err != nil {
				b.Fatal(err)
			}
			for _, t := range fill {
				if _, err := w.Push(t); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := w.Push(push[i%len(push)]); err != nil {
					b.Fatal(err)
				}
				if _, err := w.Prepared(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
